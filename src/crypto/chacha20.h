// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// The rekey protocol is cipher-agnostic: every encryption {k'}_k is a
// 16-byte key encrypted under another 16-byte key. We use ChaCha20 with a
// per-encryption deterministic nonce so that ciphertexts carry no explicit
// IV (see crypto/keys.h for the nonce discipline).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace rekey::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  ChaCha20(std::span<const std::uint8_t, kKeySize> key,
           std::span<const std::uint8_t, kNonceSize> nonce,
           std::uint32_t initial_counter = 0);

  // XOR the keystream into `data` in place (encryption == decryption).
  void apply(std::span<std::uint8_t> data);

  // One 64-byte keystream block (exposed for tests against RFC vectors).
  std::array<std::uint8_t, 64> keystream_block(std::uint32_t counter) const;

 private:
  std::array<std::uint32_t, 16> state_;
  std::uint32_t counter_;
  std::array<std::uint8_t, 64> pending_{};
  std::size_t pending_used_ = 64;  // 64 == empty
};

}  // namespace rekey::crypto
