#include "crypto/hmac.h"

#include <array>
#include <cstring>

namespace rekey::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const auto d = Sha256::hash(key);
    std::memcpy(block.data(), d.data(), d.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

bool tags_equal(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace rekey::crypto
