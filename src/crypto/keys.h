// Key material and the key-encryption primitive {k'}_k.
//
// Every key in the key tree (group key, auxiliary keys, individual keys) is
// a 16-byte symmetric key. A rekey message carries "encryptions": a new key
// encrypted under another key. On the wire an encryption entry is
//
//     4-byte encryption id | 16-byte ciphertext | 2-byte integrity tag
//
// i.e. 22 bytes — which yields the paper's 46 encryptions per 1027-byte ENC
// packet. The ChaCha20 nonce is derived deterministically from the rekey
// message id and the encryption id, so no IV travels on the wire; the tag is
// a truncated HMAC that lets a user detect a corrupted or mis-keyed entry.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace rekey::crypto {

struct SymmetricKey {
  static constexpr std::size_t kSize = 16;
  std::array<std::uint8_t, kSize> bytes{};

  friend bool operator==(const SymmetricKey&, const SymmetricKey&) = default;
};

struct EncryptedKey {
  std::array<std::uint8_t, SymmetricKey::kSize> ciphertext{};
  std::uint16_t tag = 0;

  friend bool operator==(const EncryptedKey&, const EncryptedKey&) = default;
};

// Encrypt `plain` under `kek` for (rekey message `msg_id`, encryption
// `enc_id`). The (msg_id, enc_id) pair must be unique per kek, which the
// protocol guarantees: each key encrypts at most one key per rekey message.
EncryptedKey encrypt_key(const SymmetricKey& kek, const SymmetricKey& plain,
                         std::uint32_t msg_id, std::uint64_t enc_id);

// Decrypt and verify; returns nullopt when the tag does not match (wrong
// key, wrong ids, or corruption).
std::optional<SymmetricKey> decrypt_key(const SymmetricKey& kek,
                                        const EncryptedKey& enc,
                                        std::uint32_t msg_id,
                                        std::uint64_t enc_id);

// Deterministic key generator: derives an endless sequence of fresh keys
// from a master secret via HMAC-SHA256, so a simulation run is reproducible.
//
// The master key is fixed for the generator's lifetime, so the HMAC
// ipad/opad blocks are compressed once here and every next() resumes from
// the cached mid-states — 2 compressions per key instead of 4, with output
// identical to hmac_sha256(master, counter).
class KeyGenerator {
 public:
  explicit KeyGenerator(std::uint64_t master_seed);

  SymmetricKey next();

  // The draw stream is a pure function of (master seed, counter): key_at
  // computes the key of an arbitrary counter value without touching the
  // generator's own position. It is const and uses only the cached
  // mid-states, so concurrent key_at calls from worker threads are safe —
  // the sharded marking phase assigns every draw its counter index up front
  // and materializes the keys in parallel, bit-identical to a serial
  // next() sequence.
  SymmetricKey key_at(std::uint64_t counter) const;

  // Stream position: the counter the next next() will consume. Snapshots
  // persist it so a restored server continues the exact draw sequence an
  // uninterrupted run would have produced.
  std::uint64_t counter() const { return counter_; }
  void set_counter(std::uint64_t counter) { counter_ = counter; }
  // Consume n draws without computing them (deferred materialization).
  void skip(std::uint64_t n) { counter_ += n; }

 private:
  std::array<std::uint8_t, 32> master_{};
  Sha256::State inner_mid_{};  // state after absorbing master ^ ipad
  Sha256::State outer_mid_{};  // state after absorbing master ^ opad
  std::uint64_t counter_ = 0;
};

// Authenticator over an entire rekey message; stands in for the paper's
// digital signature (DESIGN.md §4, substitution 4).
Sha256::Digest message_authenticator(const SymmetricKey& auth_key,
                                     std::span<const std::uint8_t> message);

}  // namespace rekey::crypto
