// SHA-256 compression via the x86 SHA extensions (SHA-NI).
//
// One sha256rnds2 instruction retires four rounds, with sha256msg1/msg2
// doing the message-schedule expansion — the whole 64-round compression
// runs in ~32 instructions instead of the scalar ~300. This follows the
// canonical scheduling first published in Intel's SHA extensions paper
// (Gulley et al.) and used by every mainstream implementation; the state
// is carried in the (ABEF, CDGH) register split the instructions expect.
//
// This translation unit is compiled with -msha -mssse3 -msse4.1 only; the
// dispatcher (sha256.cpp) calls in only after checking CPUID, so no other
// code here may be reached on a CPU without the extension.
#include <cpuid.h>
#include <immintrin.h>

#include "crypto/sha256.h"

namespace rekey::crypto::detail {

bool cpu_has_sha_extensions() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  if (!(ebx & (1u << 29))) return false;  // CPUID.7.0:EBX.SHA
  // The kernel below also uses pshufb (SSSE3) and pblendw (SSE4.1).
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 9)) && (ecx & (1u << 19));
}

void compress_sha_ni(Sha256::State& state, const std::uint8_t* blocks,
                     std::size_t nblocks) {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // state[] is {a..h}; the instructions want (ABEF, CDGH).
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);  // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);  // EFGH
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);   // ABEF
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);        // CDGH

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* data = blocks + 64 * blk;
    const __m128i save0 = st0;
    const __m128i save1 = st1;
    __m128i msg, msg0, msg1, msg2, msg3;

    // Rounds 0-3
    msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    msg0 = _mm_shuffle_epi8(msg, kShuffle);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFLL, 0x71374491428A2F98LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 4-7
    msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4LL, 0x59F111F13956C25BLL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3243185BELL, 0x12835B01D807AA98LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC19BF1749BDC06A7LL, 0x80DEB1FE72BE5D74LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x240CA1CC0FC19DC6LL, 0xEFBE4786E49B69C1LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x76F988DA5CB0A9DCLL, 0x4A7484AA2DE92C6FLL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xBF597FC7B00327C8LL, 0xA831C66D983E5152LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x1429296706CA6351LL, 0xD5A79147C6E00BF3LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x53380D134D2C6DFCLL, 0x2E1B213827B70A85LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x92722C8581C2C92ELL, 0x766A0ABB650A7354LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xC76C51A3C24B8B70LL, 0xA81A664BA2BFE8A1LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x106AA070F40E3585LL, 0xD6990624D192E819LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x34B0BCB52748774CLL, 0x1E376C0819A4C116LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FLL, 0x4ED8AA4A391C0CB3LL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC7020884C87814LL, 0x78A5636F748F82EELL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7LL, 0xA4506CEB90BEFFFALL));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    st0 = _mm_add_epi32(st0, save0);
    st1 = _mm_add_epi32(st1, save1);
  }

  // (ABEF, CDGH) back to {a..h}.
  tmp = _mm_shuffle_epi32(st0, 0x1B);        // FEBA
  st1 = _mm_shuffle_epi32(st1, 0xB1);        // DCHG
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);     // DCBA
  st1 = _mm_alignr_epi8(st1, tmp, 8);        // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), st1);
}

}  // namespace rekey::crypto::detail
