// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
#pragma once

#include <cstdint>
#include <span>

#include "crypto/sha256.h"

namespace rekey::crypto {

Sha256::Digest hmac_sha256(std::span<const std::uint8_t> key,
                           std::span<const std::uint8_t> message);

// Constant-time comparison of equal-length tags.
bool tags_equal(std::span<const std::uint8_t> a,
                std::span<const std::uint8_t> b);

}  // namespace rekey::crypto
