#include "crypto/sha256.h"

#include <cstring>
#include <string_view>

#include "common/ensure.h"
#include "common/env.h"

namespace rekey::crypto {

#if defined(REKEY_SHA_NI)
namespace detail {
// crypto/sha256_ni.cpp — compiled with the SHA/SSE4.1 ISA flags.
void compress_sha_ni(Sha256::State& state, const std::uint8_t* blocks,
                     std::size_t nblocks);
bool cpu_has_sha_extensions();
}  // namespace detail
#endif

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void compress_scalar(Sha256::State& state, const std::uint8_t* blocks,
                     std::size_t nblocks) {
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* block = blocks + 64 * blk;
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
             static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
             static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

using CompressFn = void (*)(Sha256::State&, const std::uint8_t*, std::size_t);

struct CompressPath {
  CompressFn fn;
  const char* name;
};

CompressPath resolve_compress_path() {
#if defined(REKEY_SHA_NI)
  // REKEY_SIMD=scalar forces the reference path (same convention as the
  // FEC kernels); any other value keeps autodetection — the ISA names it
  // takes (ssse3/avx2/neon) say nothing about the SHA extension.
  const auto env = rekey::env::raw("REKEY_SIMD");
  const bool force_scalar = env.has_value() && *env == "scalar";
  if (!force_scalar && detail::cpu_has_sha_extensions())
    return {detail::compress_sha_ni, "sha_ni"};
#endif
  return {compress_scalar, "scalar"};
}

const CompressPath& active_compress_path() {
  static const CompressPath path = resolve_compress_path();
  return path;
}

}  // namespace

void Sha256::compress(State& state, const std::uint8_t* blocks,
                      std::size_t nblocks) {
  active_compress_path().fn(state, blocks, nblocks);
}

const char* Sha256::compress_path_name() {
  return active_compress_path().name;
}

Sha256::Sha256() : state_(kInitialState) {}

Sha256::Sha256(const State& state, std::uint64_t blocks_done)
    : state_(state), total_bytes_(blocks_done * 64) {}

void Sha256::update(std::span<const std::uint8_t> data) {
  REKEY_ENSURE(!finished_);
  total_bytes_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == buffer_.size()) {
      compress(state_, buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  if (off + 64 <= data.size()) {
    const std::size_t nblocks = (data.size() - off) / 64;
    compress(state_, data.data() + off, nblocks);
    off += nblocks * 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

Sha256::Digest Sha256::finish() {
  REKEY_ENSURE(!finished_);
  finished_ = true;
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t rem = static_cast<std::size_t>(total_bytes_ % 64);
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i)
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  finished_ = false;  // allow the two internal updates below
  update({pad, pad_len});
  update({len_be, 8});
  finished_ = true;

  Digest d;
  for (int i = 0; i < 8; ++i) {
    d[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    d[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    d[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    d[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return d;
}

Sha256::Digest Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

}  // namespace rekey::crypto
