// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the key server for key derivation and (via HMAC) for packet
// integrity tags and the rekey-message authenticator that stands in for the
// paper's digital signature (see DESIGN.md §4).
//
// The compression function is runtime-dispatched like the FEC kernels
// (fec/gf256_simd.h): a SHA-NI path when the build and CPU support it,
// the portable scalar rounds otherwise, REKEY_SIMD=scalar forcing the
// latter. Both paths are exact FIPS 180-4 and produce identical digests;
// key derivation is the marking algorithm's dominant cost (one HMAC per
// fresh key), so this is a key-server hot path, not just a checksum.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace rekey::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;
  // Internal chaining state after some number of whole 64-byte blocks.
  using State = std::array<std::uint32_t, 8>;
  // FIPS 180-4 §5.3.3 initial hash value (the state before any block).
  static constexpr State kInitialState = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                          0xa54ff53a, 0x510e527f, 0x9b05688c,
                                          0x1f83d9ab, 0x5be0cd19};

  Sha256();
  // Resume from a precomputed mid-state with `blocks_done` whole blocks
  // already absorbed (HMAC ipad/opad caching — see KeyGenerator).
  Sha256(const State& state, std::uint64_t blocks_done);

  void update(std::span<const std::uint8_t> data);
  Digest finish();  // may be called once; resets are not supported

  static Digest hash(std::span<const std::uint8_t> data);

  // Compress `nblocks` consecutive 64-byte blocks into `state` via the
  // active path. Exposed for mid-state precomputation.
  static void compress(State& state, const std::uint8_t* blocks,
                       std::size_t nblocks);

  // "sha_ni" or "scalar" — whichever compress() dispatches to.
  static const char* compress_path_name();

 private:
  State state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace rekey::crypto
