// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the key server for key derivation and (via HMAC) for packet
// integrity tags and the rekey-message authenticator that stands in for the
// paper's digital signature (see DESIGN.md §4).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace rekey::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(std::span<const std::uint8_t> data);
  Digest finish();  // may be called once; resets are not supported

  static Digest hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace rekey::crypto
