#include "crypto/keys.h"

#include <cstring>

#include "crypto/hmac.h"

namespace rekey::crypto {

namespace {

// Expand a 16-byte key-tree key into the 32-byte ChaCha20 key and derive
// the 12-byte nonce from (msg_id, enc_id).
struct CipherParams {
  std::array<std::uint8_t, ChaCha20::kKeySize> key;
  std::array<std::uint8_t, ChaCha20::kNonceSize> nonce;
};

CipherParams derive_params(const SymmetricKey& kek, std::uint32_t msg_id,
                           std::uint64_t enc_id) {
  CipherParams p;
  // key = SHA256("kdf" || kek)
  Sha256 kdf;
  static const std::uint8_t label[] = {'k', 'd', 'f'};
  kdf.update(label);
  kdf.update(kek.bytes);
  const auto digest = kdf.finish();
  std::memcpy(p.key.data(), digest.data(), p.key.size());

  p.nonce = {};
  for (int i = 0; i < 4; ++i)
    p.nonce[i] = static_cast<std::uint8_t>(msg_id >> (24 - 8 * i));
  for (int i = 0; i < 8; ++i)
    p.nonce[4 + i] = static_cast<std::uint8_t>(enc_id >> (56 - 8 * i));
  return p;
}

std::uint16_t compute_tag(const SymmetricKey& kek,
                          std::span<const std::uint8_t> ciphertext,
                          std::uint32_t msg_id, std::uint64_t enc_id) {
  std::array<std::uint8_t, 12 + SymmetricKey::kSize> msg{};
  for (int i = 0; i < 4; ++i)
    msg[i] = static_cast<std::uint8_t>(msg_id >> (24 - 8 * i));
  for (int i = 0; i < 8; ++i)
    msg[4 + i] = static_cast<std::uint8_t>(enc_id >> (56 - 8 * i));
  std::memcpy(msg.data() + 12, ciphertext.data(), ciphertext.size());
  const auto mac = hmac_sha256(kek.bytes, msg);
  return static_cast<std::uint16_t>(mac[0] << 8 | mac[1]);
}

}  // namespace

EncryptedKey encrypt_key(const SymmetricKey& kek, const SymmetricKey& plain,
                         std::uint32_t msg_id, std::uint64_t enc_id) {
  const auto params = derive_params(kek, msg_id, enc_id);
  EncryptedKey out;
  out.ciphertext = plain.bytes;
  ChaCha20 cipher(params.key, params.nonce);
  cipher.apply(out.ciphertext);
  out.tag = compute_tag(kek, out.ciphertext, msg_id, enc_id);
  return out;
}

std::optional<SymmetricKey> decrypt_key(const SymmetricKey& kek,
                                        const EncryptedKey& enc,
                                        std::uint32_t msg_id,
                                        std::uint64_t enc_id) {
  if (compute_tag(kek, enc.ciphertext, msg_id, enc_id) != enc.tag)
    return std::nullopt;
  const auto params = derive_params(kek, msg_id, enc_id);
  SymmetricKey plain;
  plain.bytes = enc.ciphertext;
  ChaCha20 cipher(params.key, params.nonce);
  cipher.apply(plain.bytes);
  return plain;
}

KeyGenerator::KeyGenerator(std::uint64_t master_seed) {
  std::array<std::uint8_t, 8> seed_bytes;
  for (int i = 0; i < 8; ++i)
    seed_bytes[i] = static_cast<std::uint8_t>(master_seed >> (56 - 8 * i));
  master_ = Sha256::hash(seed_bytes);

  // Precompute the HMAC pad mid-states (master_ is 32 bytes, so the key
  // block is master_ zero-padded to 64 — same as hmac_sha256 builds it).
  std::array<std::uint8_t, 64> ipad{};
  std::array<std::uint8_t, 64> opad{};
  for (std::size_t i = 0; i < master_.size(); ++i) {
    ipad[i] = static_cast<std::uint8_t>(master_[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(master_[i] ^ 0x5c);
  }
  for (std::size_t i = master_.size(); i < 64; ++i) {
    ipad[i] = 0x36;
    opad[i] = 0x5c;
  }
  inner_mid_ = Sha256::kInitialState;
  outer_mid_ = Sha256::kInitialState;
  Sha256::compress(inner_mid_, ipad.data(), 1);
  Sha256::compress(outer_mid_, opad.data(), 1);
}

SymmetricKey KeyGenerator::next() { return key_at(counter_++); }

SymmetricKey KeyGenerator::key_at(std::uint64_t counter) const {
  std::array<std::uint8_t, 8> ctr;
  for (int i = 0; i < 8; ++i)
    ctr[i] = static_cast<std::uint8_t>(counter >> (56 - 8 * i));
  Sha256 inner(inner_mid_, 1);
  inner.update(ctr);
  const auto inner_digest = inner.finish();
  Sha256 outer(outer_mid_, 1);
  outer.update(inner_digest);
  const auto mac = outer.finish();
  SymmetricKey k;
  std::memcpy(k.bytes.data(), mac.data(), k.bytes.size());
  return k;
}

Sha256::Digest message_authenticator(const SymmetricKey& auth_key,
                                     std::span<const std::uint8_t> message) {
  return hmac_sha256(auth_key.bytes, message);
}

}  // namespace rekey::crypto
