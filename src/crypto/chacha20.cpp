#include "crypto/chacha20.h"

namespace rekey::crypto {

namespace {

std::uint32_t rotl(std::uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t, kKeySize> key,
                   std::span<const std::uint8_t, kNonceSize> nonce,
                   std::uint32_t initial_counter)
    : counter_(initial_counter) {
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load_le32(key.data() + 4 * i);
  state_[12] = 0;  // counter slot, filled per block
  for (int i = 0; i < 3; ++i) state_[13 + i] = load_le32(nonce.data() + 4 * i);
}

std::array<std::uint8_t, 64> ChaCha20::keystream_block(
    std::uint32_t counter) const {
  std::array<std::uint32_t, 16> x = state_;
  x[12] = counter;
  std::array<std::uint32_t, 16> w = x;
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + x[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  return out;
}

void ChaCha20::apply(std::span<std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (pending_used_ == 64) {
      pending_ = keystream_block(counter_++);
      pending_used_ = 0;
    }
    data[i] ^= pending_[pending_used_++];
  }
}

}  // namespace rekey::crypto
