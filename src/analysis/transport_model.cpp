#include "analysis/transport_model.h"

#include <cmath>

#include "common/ensure.h"

namespace rekey::analysis {

double combined_loss(double p_source, double p_receiver) {
  return 1.0 - (1.0 - p_source) * (1.0 - p_receiver);
}

double prob_at_least(std::size_t n, double p_success, std::size_t need) {
  REKEY_ENSURE(p_success >= 0.0 && p_success <= 1.0);
  if (need == 0) return 1.0;
  if (need > n) return 0.0;
  // Sum the binomial pmf from `need` to n in log space per term.
  double total = 0.0;
  const double lp = std::log(p_success);
  const double lq = std::log1p(-p_success);
  for (std::size_t i = need; i <= n; ++i) {
    if (p_success == 0.0) break;
    if (p_success == 1.0) {
      total = 1.0;
      break;
    }
    const double lc = std::lgamma(static_cast<double>(n) + 1.0) -
                      std::lgamma(static_cast<double>(i) + 1.0) -
                      std::lgamma(static_cast<double>(n - i) + 1.0);
    total += std::exp(lc + static_cast<double>(i) * lp +
                      static_cast<double>(n - i) * lq);
  }
  return std::min(1.0, total);
}

double round1_failure_prob(std::size_t k, std::size_t proactive, double p) {
  // Own packet lost, and fewer than k of the other k + a - 1 arrive.
  const double own_lost = p;
  const double others_ok =
      prob_at_least(k + proactive - 1, 1.0 - p, k);
  return own_lost * (1.0 - others_ok);
}

double expected_round1_nacks(std::size_t n_users, double alpha, double p_high,
                             double p_low, double p_source, std::size_t k,
                             std::size_t proactive) {
  const double ph = combined_loss(p_source, p_high);
  const double pl = combined_loss(p_source, p_low);
  const double n_high = alpha * static_cast<double>(n_users);
  const double n_low = static_cast<double>(n_users) - n_high;
  // A NACK is seen by the server only if the reverse path delivers it.
  const double fail_high = round1_failure_prob(k, proactive, ph) * (1.0 - ph);
  const double fail_low = round1_failure_prob(k, proactive, pl) * (1.0 - pl);
  return n_high * fail_high + n_low * fail_low;
}

double needs_more_than_rounds(std::size_t k, std::size_t proactive, double p,
                              int rounds) {
  REKEY_ENSURE(rounds >= 0);
  if (rounds == 0) return 1.0;
  // Round 1 as modelled above. Each later round resupplies the user's
  // outstanding need a; the user clears it when all a parities (plus any
  // extra the block aggregate carries — ignored, making this slightly
  // pessimistic) arrive... the expected outstanding need is small, so we
  // model rounds >= 2 as independent trials needing a single representative
  // retransmission batch of E[a | failure] parities, any k of which would
  // do. We approximate E[a | failure] with 1 + p*k/2.
  double prob = round1_failure_prob(k, proactive, p);
  const std::size_t retrans =
      static_cast<std::size_t>(std::ceil(1.0 + p * static_cast<double>(k) / 2.0));
  for (int r = 2; r <= rounds; ++r) {
    // Fails again if not all of its missing parities arrive; with `retrans`
    // packets resent and needing all of its own missing ones (~1 expected),
    // the per-round clear probability is P(at least 1 of retrans arrives)
    // raised to the representative need of 1.
    const double clear = prob_at_least(retrans, 1.0 - p, 1);
    prob *= (1.0 - clear);
  }
  return prob;
}

double expected_user_rounds(std::size_t k, std::size_t proactive, double p,
                            int max_rounds) {
  // E[R] = sum_{r>=0} P(R > r).
  double e = 0.0;
  for (int r = 0; r < max_rounds; ++r)
    e += needs_more_than_rounds(k, proactive, p, r);
  return e;
}

}  // namespace rekey::analysis
