// Analytic models of the rekey transport under memoryless (Bernoulli)
// loss: per-user round-1 failure probability, the expected NACK count the
// server sees, and the distribution of rounds a user needs. These are the
// SIGCOMM paper's style of transport analysis; the A2 bench validates them
// against the packet-level simulator run with Bernoulli links.
#pragma once

#include <cstddef>
#include <vector>

namespace rekey::analysis {

// End-to-end per-packet loss probability across source + receiver link.
double combined_loss(double p_source, double p_receiver);

// P(Bin(n, p_success) >= need): at least `need` of n packets arrive.
double prob_at_least(std::size_t n, double p_success, std::size_t need);

// P(a user cannot recover after one round): its own ENC packet is lost AND
// fewer than k of the block's k + a packets arrived (a = proactive
// parities per block).
double round1_failure_prob(std::size_t k, std::size_t proactive, double p);

// Expected NACKs after round 1 for a heterogeneous population: alpha*N
// users at p_high, the rest at p_low, behind a p_source source link. NACKs
// themselves traverse the reverse path and can be lost.
double expected_round1_nacks(std::size_t n_users, double alpha, double p_high,
                             double p_low, double p_source, std::size_t k,
                             std::size_t proactive);

// P(a user needs more than r rounds), modelling each later round as the
// server supplying exactly the missing parities (amax semantics) so the
// user fails again only if its fresh need is not met.
double needs_more_than_rounds(std::size_t k, std::size_t proactive, double p,
                              int rounds);

// Expected number of rounds needed by one user (capped at max_rounds).
double expected_user_rounds(std::size_t k, std::size_t proactive, double p,
                            int max_rounds = 30);

}  // namespace rekey::analysis
