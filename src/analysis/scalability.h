// Key-server scalability model (the SIGCOMM paper's capacity analysis):
// given measured unit costs — key encryption, RSE parity byte, message
// signing — and the server's bandwidth budget, how fast can a group of N
// users be rekeyed, and what is the smallest sustainable rekey interval?
//
// The A3 bench feeds this model with unit costs measured on the host by
// the micro-benchmarks, reproducing the paper's "a single server can
// support groups of size X at interval T" conclusions.
#pragma once

#include <cstddef>

namespace rekey::analysis {

struct ServerCostParams {
  double encrypt_per_key_us = 2.0;   // one {k'}_k encryption
  // Marking + payload bookkeeping per emitted encryption (tree walk,
  // labels, UKA scratch), measured by the KS1/A4 benches. 0 keeps the
  // historical encryption-only model.
  double marking_per_enc_us = 0.0;
  double fec_per_byte_ns = 1.0;      // GF(256) multiply-accumulate per byte
  double sign_us = 5000.0;           // one rekey-message signature
  double bandwidth_bps = 10e6;       // server multicast budget
  double send_interval_ms = 100.0;   // pacing (10 pkt/s in the paper)
};

struct ScalabilityPoint {
  std::size_t group_size = 0;
  double encryptions = 0.0;       // expected per message
  double enc_packets = 0.0;       // expected per message
  double cpu_ms = 0.0;            // server processing per message
  double bytes = 0.0;             // multicast bytes per message
  double pacing_s = 0.0;          // wall time to push packets at the rate
  double min_interval_s = 0.0;    // smallest sustainable rekey interval
  double max_rekeys_per_hour = 0.0;
};

// Evaluate the model at one group size for a J/L batch with block size k,
// proactivity rho, and packet/capacity parameters.
ScalabilityPoint evaluate_scalability(std::size_t N, std::size_t J,
                                      std::size_t L, unsigned d,
                                      std::size_t k, double rho,
                                      std::size_t packet_size,
                                      std::size_t capacity,
                                      const ServerCostParams& params);

}  // namespace rekey::analysis
