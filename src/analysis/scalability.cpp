#include "analysis/scalability.h"

#include <algorithm>
#include <cmath>

#include "analysis/batch_cost.h"
#include "common/ensure.h"

namespace rekey::analysis {

ScalabilityPoint evaluate_scalability(std::size_t N, std::size_t J,
                                      std::size_t L, unsigned d,
                                      std::size_t k, double rho,
                                      std::size_t packet_size,
                                      std::size_t capacity,
                                      const ServerCostParams& params) {
  REKEY_ENSURE(k >= 1 && rho >= 1.0);
  ScalabilityPoint p;
  p.group_size = N;
  p.encryptions = expected_encryptions(N, J, L, d);
  p.enc_packets = expected_enc_packets(N, J, L, d, capacity);

  const double blocks = std::ceil(p.enc_packets / static_cast<double>(k));
  const double parities =
      blocks * std::ceil((rho - 1.0) * static_cast<double>(k));
  const double packets = blocks * static_cast<double>(k) + parities;

  // CPU: encryptions (crypto + marking/bookkeeping overhead) + FEC encode
  // (k source bytes per parity byte) + sign.
  const double fec_bytes = parities * static_cast<double>(k) *
                           static_cast<double>(packet_size);
  p.cpu_ms = p.encryptions *
                 (params.encrypt_per_key_us + params.marking_per_enc_us) /
                 1e3 +
             fec_bytes * params.fec_per_byte_ns / 1e6 +
             params.sign_us / 1e3;

  p.bytes = packets * static_cast<double>(packet_size);
  const double bw_s = p.bytes * 8.0 / params.bandwidth_bps;
  p.pacing_s = packets * params.send_interval_ms / 1e3;

  p.min_interval_s = std::max({p.cpu_ms / 1e3, bw_s, p.pacing_s});
  p.max_rekeys_per_hour =
      p.min_interval_s > 0.0 ? 3600.0 / p.min_interval_s : 0.0;
  return p;
}

}  // namespace rekey::analysis
