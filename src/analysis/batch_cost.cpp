#include "analysis/batch_cost.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace rekey::analysis {

double log_choose(std::size_t n, std::size_t k) {
  REKEY_ENSURE(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double prob_no_departure(std::size_t N, std::size_t L, std::size_t m) {
  REKEY_ENSURE(L <= N && m <= N);
  if (L == 0) return 1.0;
  if (m + L > N) return 0.0;
  return std::exp(log_choose(N - m, L) - log_choose(N, L));
}

double prob_all_departed(std::size_t N, std::size_t L, std::size_t m) {
  REKEY_ENSURE(L <= N && m <= N);
  if (m > L) return 0.0;
  return std::exp(log_choose(N - m, L - m) - log_choose(N, L));
}

namespace {

// Height of the full balanced tree holding N users.
unsigned tree_height(std::size_t N, unsigned d) {
  unsigned h = 1;
  std::size_t cap = d;
  while (cap < N) {
    cap *= d;
    ++h;
  }
  return h;
}

// Exact expectation for the J <= L regime.
double expected_j_le_l(std::size_t N, std::size_t J, std::size_t L,
                       unsigned d) {
  const unsigned h = tree_height(N, d);
  // Replaced slots do not prune; only the L - J pure leaves can.
  // "x changed" = any departure among x's leaves (replacement or removal).
  // "c survives" (internal) = not all of c's leaves are *pure* leaves;
  // since replaced slots survive, c dies only if all its leaves are among
  // the L - J removals. Removals are a uniform subset of the L departures,
  // which are uniform over N, so the m removals-only event has the same
  // hypergeometric form with L' = L - J... conditioned jointly with "x
  // changed". We use the decomposition
  //   P(edge) = P(c survives) - P(x unchanged)
  // where "x unchanged" = no departure among x's M leaves, and
  //   P(c survives) = 1 - P(all m of c's leaves are pure removals).
  const std::size_t pure = L - J;
  double total = 0.0;
  std::size_t nodes_at_level = 1;  // root level
  for (unsigned level = 0; level < h; ++level) {
    // children of a level-`level` node span m leaves each. When N is not
    // a power of d the full-tree capacity d^h exceeds N, so the top
    // levels' nominal spans overshoot the group; a node can never span
    // more leaves than exist, so clamp both spans to N (the departure
    // probabilities below are monotone in the span, and the clamped span
    // is exact for the root).
    std::size_t m = 1;
    for (unsigned i = 0; i + level + 1 < h; ++i) m *= d;
    m = std::min(m, N);
    const std::size_t M = std::min(m * d, N);
    // P(all m leaves of c are pure removals): choose departures such that
    // c's m leaves all depart AND all m are among the unreplaced ones.
    // Departed slots are uniform; of the L departed, the J smallest-id are
    // replaced. Exact treatment of "smallest-id" correlates with position;
    // the standard analysis (and ours) uses the symmetric approximation
    // that each departed slot is replaced with probability J/L,
    // independently of location:
    //   P(c dies) = P(all m depart) * P(all m unreplaced | depart)
    //            ~= prob_all_departed * prod_{i<m} (L-J-i)/(L-i).
    double p_all_unreplaced = 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (L - i == 0) {
        p_all_unreplaced = 0.0;
        break;
      }
      p_all_unreplaced *= pure > i
                              ? static_cast<double>(pure - i) /
                                    static_cast<double>(L - i)
                              : 0.0;
    }
    const double p_c_dies = prob_all_departed(N, L, m) * p_all_unreplaced;
    const double p_edge =
        (1.0 - p_c_dies) - prob_no_departure(N, L, M);
    total += static_cast<double>(nodes_at_level) * d *
             std::max(0.0, p_edge);
    nodes_at_level *= d;
  }
  return total;
}

// Deterministic fill/split model for the J > L regime on a full tree:
// L slots are replaced in place; the remaining J - L joins split
// ceil((J-L)/(d-1)) consecutive u-nodes, each split producing a new
// k-node with d children, plus the changed ancestors of both the replaced
// slots (random) and the split range (contiguous).
double expected_j_gt_l(std::size_t N, std::size_t J, std::size_t L,
                       unsigned d) {
  const unsigned h = tree_height(N, d);
  const std::size_t extra = J - L;
  const std::size_t splits = (extra + d - 2) / (d - 1);

  // Replaced slots contribute like the J = L regime on L replacements.
  double total = L > 0 ? expected_j_le_l(N, L, L, d) : 0.0;

  // Split nodes: d encryptions each.
  total += static_cast<double>(splits * d);

  // Ancestors of the contiguous split range: at height i above the leaves
  // roughly splits / d^i changed nodes, each with d children; stop at the
  // root. (These partially overlap the replaced slots' ancestors; the
  // overlap is second-order for the J >> L workloads this regime covers.)
  double width = static_cast<double>(splits);
  for (unsigned i = 1; i <= h && width > 0; ++i) {
    width = std::ceil(width / d);
    total += width * d;
    if (width <= 1.0) {
      // Remaining path straight to the root.
      if (i < h) total += static_cast<double>((h - i)) * d;
      break;
    }
  }
  return total;
}

}  // namespace

double expected_encryptions(std::size_t N, std::size_t J, std::size_t L,
                            unsigned d) {
  REKEY_ENSURE(d >= 2);
  REKEY_ENSURE(L <= N);
  if (J == 0 && L == 0) return 0.0;
  if (J <= L) return expected_j_le_l(N, J, L, d);
  return expected_j_gt_l(N, J, L, d);
}

double duplication_overhead_bound(std::size_t N, unsigned d,
                                  std::size_t capacity) {
  const unsigned h = tree_height(N, d);
  if (h <= 1) return 0.0;
  return static_cast<double>(h - 1) / static_cast<double>(capacity);
}

double expected_enc_packets(std::size_t N, std::size_t J, std::size_t L,
                            unsigned d, std::size_t capacity) {
  REKEY_ENSURE(capacity >= 1);
  const double encs = expected_encryptions(N, J, L, d);
  const double dup = duplication_overhead_bound(N, d, capacity);
  return encs * (1.0 + dup) / static_cast<double>(capacity);
}

}  // namespace rekey::analysis
