// Analytic cost model of periodic batch rekeying — the "performance
// analysis" core of the SIGCOMM 2001 paper: how many encryptions a batch of
// J joins and L leaves costs on a key tree of N users and degree d.
//
// For J <= L on an initially full, balanced tree the expectation is exact:
// leaves depart uniformly without replacement, so subtree-survival events
// are hypergeometric. For each edge (x, c) with c spanning m leaves and x
// spanning M = d*m:
//
//   P(edge in rekey subtree) = P(c survives) - P(x has no change)
//
// because "x changed" requires a departure (or replacement) under x, and a
// surviving c implies a surviving x. Pure-leave (J=0) and replace (J=L)
// regimes differ only in whether subtrees can be pruned. For J > L the
// extra joins fill and split deterministically; expected_encryptions
// handles that regime with the deterministic fill/split count.
#pragma once

#include <cstddef>

namespace rekey::analysis {

// ln C(n, k); 0 for k<0 or k>n handled by callers.
double log_choose(std::size_t n, std::size_t k);

// P(a fixed set of m leaves contains no departed leaf | L of N depart).
double prob_no_departure(std::size_t N, std::size_t L, std::size_t m);

// P(all m leaves of a fixed set depart | L of N depart).
double prob_all_departed(std::size_t N, std::size_t L, std::size_t m);

// Expected number of encryptions in the rekey subtree for a batch (J, L)
// on a full balanced d-ary tree with N = d^h users. Exact for J <= L;
// deterministic fill/split model for J > L.
double expected_encryptions(std::size_t N, std::size_t J, std::size_t L,
                            unsigned d);

// Expected number of ENC packets given the per-packet encryption capacity
// (46 for 1027-byte packets), including a duplication-overhead estimate.
double expected_enc_packets(std::size_t N, std::size_t J, std::size_t L,
                            unsigned d, std::size_t capacity);

// The paper's empirical duplication bound: (log_d N - 1) / capacity.
double duplication_overhead_bound(std::size_t N, unsigned d,
                                  std::size_t capacity);

}  // namespace rekey::analysis
