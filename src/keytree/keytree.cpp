#include "keytree/keytree.h"

#include <cmath>

#include "common/ensure.h"

namespace rekey::tree {

KeyTree::KeyTree(unsigned degree, std::uint64_t key_seed)
    : degree_(degree), keygen_(key_seed) {
  REKEY_ENSURE_MSG(degree >= 2, "key tree degree must be >= 2");
}

void KeyTree::populate(std::size_t n, MemberId first_member) {
  REKEY_ENSURE_MSG(empty(), "populate requires an empty tree");
  if (n == 0) return;

  // Smallest height whose leaf level can hold n users. A single user still
  // gets a k-node root above it so the root always carries the group key.
  unsigned height = 1;
  std::size_t capacity = degree_;
  while (capacity < n) {
    capacity *= degree_;
    ++height;
  }

  const NodeId first_leaf = first_id_at_level(height, degree_);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId slot = first_leaf + i;
    Node u;
    u.kind = NodeKind::UNode;
    u.key = keygen_.next();
    u.member = first_member + static_cast<MemberId>(i);
    nodes_.emplace(slot, u);
    unode_ids_.insert(slot);
    slot_of_member_.emplace(u.member, slot);
    // Create missing ancestors as k-nodes.
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, degree_);
      if (nodes_.count(id)) break;
      Node k;
      k.kind = NodeKind::KNode;
      k.key = keygen_.next();
      nodes_.emplace(id, k);
      knode_ids_.insert(id);
    }
  }
}

KeyTree KeyTree::from_nodes(unsigned degree, std::uint64_t key_seed,
                            const std::map<NodeId, Node>& nodes) {
  KeyTree t(degree, key_seed);
  for (const auto& [id, n] : nodes) {
    t.nodes_.emplace(id, n);
    if (n.kind == NodeKind::KNode) {
      t.knode_ids_.insert(id);
    } else {
      t.unode_ids_.insert(id);
      const auto [it, inserted] = t.slot_of_member_.emplace(n.member, id);
      (void)it;
      REKEY_ENSURE_MSG(inserted, "duplicate member in node data");
    }
  }
  t.check_invariants();
  return t;
}

const Node& KeyTree::node(NodeId id) const {
  const auto it = nodes_.find(id);
  REKEY_ENSURE_MSG(it != nodes_.end(), "node does not exist (n-node)");
  return it->second;
}

std::optional<NodeId> KeyTree::max_knode_id() const {
  if (knode_ids_.empty()) return std::nullopt;
  return *knode_ids_.rbegin();
}

std::vector<NodeId> KeyTree::user_slots() const {
  return {unode_ids_.begin(), unode_ids_.end()};
}

NodeId KeyTree::slot_of(MemberId m) const {
  const auto it = slot_of_member_.find(m);
  REKEY_ENSURE_MSG(it != slot_of_member_.end(), "unknown member");
  return it->second;
}

bool KeyTree::has_member(MemberId m) const {
  return slot_of_member_.count(m) != 0;
}

const crypto::SymmetricKey& KeyTree::group_key() const {
  const Node& root = node(kRootId);
  REKEY_ENSURE_MSG(root.kind == NodeKind::KNode, "root is not a k-node");
  return root.key;
}

std::vector<std::pair<NodeId, crypto::SymmetricKey>> KeyTree::keys_for_slot(
    NodeId slot) const {
  std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys;
  for (const NodeId id : path_to_root(slot, degree_))
    keys.emplace_back(id, node(id).key);
  return keys;
}

unsigned KeyTree::height() const {
  if (nodes_.empty()) return 0;
  // u-nodes have the largest ids, and ids grow with depth within the
  // expanded tree, so the deepest node is the one with the largest id.
  const NodeId deepest = nodes_.rbegin()->first;
  return level_of(deepest, degree_);
}

void KeyTree::check_invariants() const {
  // Bookkeeping sets match the node map.
  REKEY_ENSURE(knode_ids_.size() + unode_ids_.size() == nodes_.size());
  for (const auto& [id, n] : nodes_) {
    if (n.kind == NodeKind::KNode) {
      REKEY_ENSURE(knode_ids_.count(id) == 1);
    } else {
      REKEY_ENSURE(unode_ids_.count(id) == 1);
      REKEY_ENSURE(slot_of_member_.at(n.member) == id);
    }
    // I1: parent exists and is a k-node.
    if (id != kRootId) {
      const auto pit = nodes_.find(parent_of(id, degree_));
      REKEY_ENSURE_MSG(pit != nodes_.end(), "orphan node");
      REKEY_ENSURE_MSG(pit->second.kind == NodeKind::KNode,
                       "parent is not a k-node");
    }
  }
  REKEY_ENSURE(slot_of_member_.size() == unode_ids_.size());

  // I2: every k-node has a u-node descendant. Equivalent check: every
  // k-node has at least one child, and (inductively, leaves of the k-node
  // subgraph must be u-nodes' parents) every childless node is a u-node.
  for (const NodeId id : knode_ids_) {
    bool has_child = false;
    for (unsigned j = 0; j < degree_ && !has_child; ++j)
      has_child = nodes_.count(child_of(id, j, degree_)) != 0;
    REKEY_ENSURE_MSG(has_child, "k-node with no children");
  }

  // I3 + I4.
  if (!knode_ids_.empty() && !unode_ids_.empty()) {
    const NodeId nk = *knode_ids_.rbegin();
    const NodeId min_u = *unode_ids_.begin();
    const NodeId max_u = *unode_ids_.rbegin();
    REKEY_ENSURE_MSG(nk < min_u, "Lemma 4.1 violated");
    REKEY_ENSURE_MSG(max_u <= nk * degree_ + degree_,
                     "u-node beyond d*nk+d");
  }
}

}  // namespace rekey::tree
