#include "keytree/keytree.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::tree {

KeyTree::KeyTree(unsigned degree, std::uint64_t key_seed)
    : degree_(degree), keygen_(key_seed) {
  REKEY_ENSURE_MSG(degree >= 2, "key tree degree must be >= 2");
}

void KeyTree::fill_node(NodeId id, Node& out) const {
  if (id < state_.size() && state_[id] != kAbsent) {
    out.kind = state_[id] == kKNode ? NodeKind::KNode : NodeKind::UNode;
    out.key = key_[id];
    out.member = state_[id] == kUNode ? member_[id] : 0;
    return;
  }
  const OverflowNode* n = overflow_.find(id);
  REKEY_ENSURE_MSG(n != nullptr && n->state != kAbsent,
                   "node does not exist (n-node)");
  out.kind = n->state == kKNode ? NodeKind::KNode : NodeKind::UNode;
  out.key = n->key;
  out.member = n->state == kUNode ? n->member : 0;
}

void KeyTree::set_knode(NodeId id, const crypto::SymmetricKey& key) {
  REKEY_ENSURE(state_at(id) == kAbsent);
  if (id < state_.size()) {
    state_[id] = kKNode;
    key_[id] = key;
  } else {
    OverflowNode n;
    n.state = kKNode;
    n.key = key;
    overflow_.insert(id, n);
  }
  ++num_knodes_;
  if (num_knodes_ == 1) {
    kmax_ = id;
    kmax_valid_ = true;
  } else if (id > kmax_) {
    kmax_ = id;  // still exact if it was; still an upper bound otherwise
  }
}

void KeyTree::set_unode(NodeId id, const crypto::SymmetricKey& key,
                        MemberId m) {
  REKEY_ENSURE(state_at(id) == kAbsent);
  if (id < state_.size()) {
    state_[id] = kUNode;
    key_[id] = key;
    member_[id] = m;
  } else {
    OverflowNode n;
    n.state = kUNode;
    n.key = key;
    n.member = m;
    overflow_.insert(id, n);
  }
  ++num_unodes_;
  REKEY_ENSURE_MSG(slot_of_member_.insert(m, id), "duplicate member");
}

void KeyTree::remove_node(NodeId id) {
  if (id < state_.size() && state_[id] != kAbsent) {
    if (state_[id] == kUNode) {
      slot_of_member_.erase(member_[id]);
      --num_unodes_;
    } else {
      --num_knodes_;
      if (id == kmax_) kmax_valid_ = false;
    }
    state_[id] = kAbsent;
    return;
  }
  OverflowNode* n = overflow_.find(id);
  REKEY_ENSURE_MSG(n != nullptr && n->state != kAbsent, "removing an n-node");
  if (n->state == kUNode) {
    slot_of_member_.erase(n->member);
    --num_unodes_;
  } else {
    --num_knodes_;
    if (id == kmax_) kmax_valid_ = false;
  }
  overflow_.erase(id);
}

crypto::SymmetricKey& KeyTree::key_ref(NodeId id) {
  if (id < state_.size() && state_[id] != kAbsent) return key_[id];
  OverflowNode* n = overflow_.find(id);
  REKEY_ENSURE_MSG(n != nullptr && n->state != kAbsent,
                   "node does not exist (n-node)");
  return n->key;
}

const crypto::SymmetricKey& KeyTree::key_cref(NodeId id) const {
  return const_cast<KeyTree*>(this)->key_ref(id);
}

const crypto::SymmetricKey& KeyTree::key_of(NodeId id) const {
  return key_cref(id);
}

MemberId KeyTree::member_at(NodeId id) const {
  if (id < state_.size() && state_[id] == kUNode) return member_[id];
  const OverflowNode* n = overflow_.find(id);
  REKEY_ENSURE_MSG(n != nullptr && n->state == kUNode, "not a u-node");
  return n->member;
}

void KeyTree::grow_dense(std::size_t new_cap) {
  if (new_cap <= state_.size()) return;
  state_.resize(new_cap, kAbsent);
  key_.resize(new_cap);
  member_.resize(new_cap, 0);
  if (overflow_.empty()) return;
  // Migrate overflow entries that the grown dense region now covers.
  std::vector<std::pair<NodeId, OverflowNode>> moved;
  overflow_.for_each([&](NodeId id, const OverflowNode& n) {
    if (id < new_cap) moved.emplace_back(id, n);
  });
  for (const auto& [id, n] : moved) {
    state_[id] = n.state;
    key_[id] = n.key;
    if (n.state == kUNode) member_[id] = n.member;
    overflow_.erase(id);
  }
}

void KeyTree::rebalance() {
  const std::size_t target = std::max<std::size_t>(
      256, 2 * static_cast<std::size_t>(degree_) * num_nodes());
  if (target > state_.size()) grow_dense(target);
}

std::vector<NodeId> KeyTree::sorted_overflow_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(overflow_.size());
  overflow_.for_each([&](NodeId id, const OverflowNode&) {
    ids.push_back(id);
  });
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<NodeId> KeyTree::sorted_overflow_unodes() const {
  std::vector<NodeId> ids;
  overflow_.for_each([&](NodeId id, const OverflowNode& n) {
    if (n.state == kUNode) ids.push_back(id);
  });
  std::sort(ids.begin(), ids.end());
  return ids;
}

void KeyTree::populate(std::size_t n, MemberId first_member) {
  REKEY_ENSURE_MSG(empty(), "populate requires an empty tree");
  if (n == 0) return;

  // Smallest height whose leaf level can hold n users. A single user still
  // gets a k-node root above it so the root always carries the group key.
  unsigned height = 1;
  std::size_t capacity = degree_;
  while (capacity < n) {
    capacity *= degree_;
    ++height;
  }

  const NodeId first_leaf = first_id_at_level(height, degree_);
  // Size the dense region to cover every id up front: populate only ever
  // creates ids <= first_leaf + n - 1.
  grow_dense(std::max<std::size_t>(256, first_leaf + n));
  slot_of_member_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId slot = first_leaf + i;
    // Key-generator call order (u-node first, then missing ancestors
    // bottom-up) is part of the determinism contract with the goldens.
    set_unode(slot, keygen_.next(), first_member + static_cast<MemberId>(i));
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, degree_);
      if (state_at(id) != kAbsent) break;
      set_knode(id, keygen_.next());
    }
  }
  rebalance();
}

KeyTree KeyTree::from_nodes(unsigned degree, std::uint64_t key_seed,
                            const std::map<NodeId, Node>& nodes) {
  KeyTree t(degree, key_seed);
  NodeId max_id = 0;
  for (const auto& [id, n] : nodes) max_id = std::max(max_id, id);
  const std::size_t target = std::max<std::size_t>(
      256, 2 * static_cast<std::size_t>(degree) * nodes.size());
  // Dense when the sizing policy covers the ids; sparse tails overflow.
  t.grow_dense(target);
  for (const auto& [id, n] : nodes) {
    if (n.kind == NodeKind::KNode) {
      t.set_knode(id, n.key);
    } else {
      REKEY_ENSURE_MSG(!t.slot_of_member_.contains(n.member),
                       "duplicate member in node data");
      t.set_unode(id, n.key, n.member);
    }
  }
  t.check_invariants();
  return t;
}

Node KeyTree::node(NodeId id) const {
  Node out;
  fill_node(id, out);
  return out;
}

std::optional<NodeId> KeyTree::max_knode_id() const {
  if (num_knodes_ == 0) return std::nullopt;
  if (!kmax_valid_) {
    // Lazy rescan after the previous max was removed. All overflow ids are
    // beyond the dense range, so an overflow k-node (if any) is the max;
    // otherwise scan the dense state bytes downward from the stale bound.
    bool found = false;
    NodeId best = 0;
    overflow_.for_each([&](NodeId id, const OverflowNode& n) {
      if (n.state == kKNode && (!found || id > best)) {
        best = id;
        found = true;
      }
    });
    if (!found) {
      NodeId id = std::min<NodeId>(kmax_, state_.empty() ? 0
                                                         : state_.size() - 1);
      while (true) {
        if (state_[id] == kKNode) {
          best = id;
          found = true;
          break;
        }
        if (id == 0) break;
        --id;
      }
    }
    REKEY_ENSURE_MSG(found, "k-node count is positive but none found");
    kmax_ = best;
    kmax_valid_ = true;
  }
  return kmax_;
}

std::vector<NodeId> KeyTree::user_slots() const {
  std::vector<NodeId> out;
  user_slots_into(out);
  return out;
}

void KeyTree::user_slots_into(std::vector<NodeId>& out) const {
  out.clear();
  out.reserve(num_unodes_);
  for_each_user_slot([&](NodeId id) { out.push_back(id); });
}

NodeId KeyTree::slot_of(MemberId m) const {
  const NodeId* slot = slot_of_member_.find(m);
  REKEY_ENSURE_MSG(slot != nullptr, "unknown member");
  return *slot;
}

bool KeyTree::has_member(MemberId m) const {
  return slot_of_member_.contains(m);
}

const crypto::SymmetricKey& KeyTree::group_key() const {
  REKEY_ENSURE_MSG(state_at(kRootId) == kKNode, "root is not a k-node");
  return key_[kRootId];
}

std::vector<std::pair<NodeId, crypto::SymmetricKey>> KeyTree::keys_for_slot(
    NodeId slot) const {
  std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys;
  keys_for_slot_into(slot, keys);
  return keys;
}

void KeyTree::keys_for_slot_into(
    NodeId slot,
    std::vector<std::pair<NodeId, crypto::SymmetricKey>>& out) const {
  out.clear();
  NodeId id = slot;
  while (true) {
    out.emplace_back(id, key_cref(id));
    if (id == kRootId) break;
    id = parent_of(id, degree_);
  }
}

unsigned KeyTree::height() const {
  if (empty()) return 0;
  // u-nodes have the largest ids, and ids grow with depth within the
  // expanded tree, so the deepest node is the one with the largest id.
  NodeId deepest = 0;
  if (!overflow_.empty()) {
    overflow_.for_each([&](NodeId id, const OverflowNode&) {
      deepest = std::max(deepest, id);
    });
  } else {
    NodeId id = state_.size() - 1;
    while (state_[id] == kAbsent && id > 0) --id;
    deepest = id;
  }
  return level_of(deepest, degree_);
}

std::map<NodeId, Node> KeyTree::nodes() const {
  std::map<NodeId, Node> out;
  for_each_node([&](NodeId id, const Node& n) { out.emplace(id, n); });
  return out;
}

std::size_t KeyTree::arena_bytes() const {
  return state_.capacity() * sizeof(std::uint8_t) +
         key_.capacity() * sizeof(crypto::SymmetricKey) +
         member_.capacity() * sizeof(MemberId) + overflow_.memory_bytes() +
         slot_of_member_.memory_bytes();
}

void KeyTree::check_invariants() const {
  // Arena bookkeeping: counters, member map, overflow placement.
  std::size_t knodes = 0, unodes = 0;
  std::optional<NodeId> max_k, min_u, max_u;
  for_each_node([&](NodeId id, const Node& n) {
    if (n.kind == NodeKind::KNode) {
      ++knodes;
      if (!max_k || id > *max_k) max_k = id;
    } else {
      ++unodes;
      if (!min_u) min_u = id;
      max_u = id;
      const NodeId* slot = slot_of_member_.find(n.member);
      REKEY_ENSURE(slot != nullptr && *slot == id);
    }
    // I1: parent exists and is a k-node.
    if (id != kRootId) {
      const std::uint8_t p = state_at(parent_of(id, degree_));
      REKEY_ENSURE_MSG(p != kAbsent, "orphan node");
      REKEY_ENSURE_MSG(p == kKNode, "parent is not a k-node");
    }
  });
  REKEY_ENSURE(knodes == num_knodes_ && unodes == num_unodes_);
  REKEY_ENSURE(slot_of_member_.size() == num_unodes_);
  if (max_k) REKEY_ENSURE(max_knode_id().value() == *max_k);
  overflow_.for_each([&](NodeId id, const OverflowNode& n) {
    REKEY_ENSURE_MSG(id >= state_.size(), "overflow id inside dense range");
    REKEY_ENSURE(n.state == kKNode || n.state == kUNode);
  });

  // I2: every k-node has a u-node descendant. Equivalent check: every
  // k-node has at least one child, and (inductively, leaves of the k-node
  // subgraph must be u-nodes' parents) every childless node is a u-node.
  for_each_node([&](NodeId id, const Node& n) {
    if (n.kind != NodeKind::KNode) return;
    bool has_child = false;
    for (unsigned j = 0; j < degree_ && !has_child; ++j)
      has_child = state_at(child_of(id, j, degree_)) != kAbsent;
    REKEY_ENSURE_MSG(has_child, "k-node with no children");
  });

  // I3 + I4.
  if (max_k && min_u) {
    REKEY_ENSURE_MSG(*max_k < *min_u, "Lemma 4.1 violated");
    REKEY_ENSURE_MSG(*max_u <= *max_k * degree_ + degree_,
                     "u-node beyond d*nk+d");
  }
}

}  // namespace rekey::tree
