// Sharding plan for the key tree (million-user groups).
//
// The tree is partitioned at a fixed cut level L: the 2^s shards own the
// d^L cut-level subtrees in contiguous blocks, and an aggregator owns the
// top of the tree (every node strictly above the cut). L is the smallest
// level with d^L >= shards, so each shard owns at least one cut subtree
// and the aggregator region stays tiny (< d/(d-1) * d^L nodes).
//
// Ownership is a pure function of the node id: ids below the first
// cut-level id belong to the aggregator; any other id maps to the shard
// of its cut-level ancestor. Because a path from a slot to the root stays
// inside one cut subtree until it crosses the cut, per-shard path walks
// touch only that shard's ids plus aggregator ids — the property that
// makes per-shard marking tasks race-free and their merged output
// identical to the serial walk (see marking.h).
//
// Determinism contract: sharding changes who computes what, never what is
// computed. The sharded pipeline must produce bit-identical payloads and
// packets to the serial one for every shard count and thread count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "keytree/keytree.h"

namespace rekey::tree {

struct ShardPlan {
  // Sentinel shard index for nodes above the cut (aggregator-owned).
  static constexpr unsigned kAggregator = ~0u;

  unsigned degree = 4;
  unsigned shards = 1;          // power of two, >= 1
  unsigned cut_level = 0;       // smallest L with d^L >= shards
  NodeId first_cut_id = 0;      // first_id_at_level(cut_level, degree)
  std::uint64_t cut_roots = 1;  // d^cut_level

  // Builds the plan; `shards` must be a power of two in [1, 256].
  static ShardPlan make(unsigned degree, unsigned shards);

  // Owner of a node id: kAggregator above the cut, else the shard of the
  // id's cut-level ancestor. Cut subtrees map to shards in contiguous
  // blocks (cut root index r -> shard r * shards / cut_roots).
  unsigned shard_of(NodeId id) const;

  // Independent tasks per batch phase: one per shard plus the aggregator.
  unsigned task_count() const { return shards + 1; }
};

// Per-batch observability of the sharded pipeline (and the handle tests
// use to inspect the partition the merge consumed).
struct ShardBatchStats {
  // Changed k-nodes collected below the cut, per shard.
  std::vector<std::size_t> shard_changed;
  // Changed k-nodes at or above the cut (aggregator-owned).
  std::size_t aggregator_changed = 0;
  // Encryptions generated per shard (aggregator entry last).
  std::vector<std::size_t> shard_encryptions;
};

// Shard-aware invariant checks (the sharded counterpart of
// KeyTree::check_invariants): every id in shard s's set must be owned by
// s (no cross-shard NodeId leakage), and every id in the aggregator set
// must lie strictly above the cut (aggregator-only ownership of cut-level
// ancestors). Each set must be sorted and duplicate-free. Throws
// EnsureError on violation.
void check_shard_partition(const ShardPlan& plan,
                           std::span<const std::vector<NodeId>> shard_sets,
                           const std::vector<NodeId>& aggregator_set);

// Tree-level variant: verifies the base invariants plus plan/tree degree
// agreement and that ownership of every present node is well defined.
void check_sharded_tree(const KeyTree& tree, const ShardPlan& plan);

// Merge of pairwise-disjoint sorted id vectors into one sorted vector —
// the deterministic merge step of the sharded pipeline. The result is
// identical to concatenating and sort+unique-ing the inputs, but costs
// O(total * log(parts)).
std::vector<NodeId> merge_disjoint_sorted(
    std::vector<std::vector<NodeId>> parts);

}  // namespace rekey::tree
