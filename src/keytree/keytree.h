// The logical key hierarchy (LKH) key tree (paper §2.1).
//
// The tree is a d-ary hierarchy whose root holds the group key, internal
// k-nodes hold auxiliary keys, and u-nodes (always below every k-node in id
// order — Lemma 4.1) hold users' individual keys. n-nodes of the expanded
// tree are represented implicitly: an id with no entry is an n-node.
//
// Structural invariants maintained across batches (checked by
// KeyTree::check_invariants and enforced in tests):
//   I1  every non-root node's parent exists and is a k-node;
//   I2  every k-node has at least one u-node descendant;
//   I3  (Lemma 4.1) max k-node id < min u-node id;
//   I4  every u-node id lies in (nk, d*nk + d] where nk = max k-node id.
//
// Mutation happens only through the marking algorithm (keytree/marking.h),
// which is the paper's batch-rekeying update.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "crypto/keys.h"
#include "keytree/ids.h"

namespace rekey::tree {

// Stable identity of a group member across tree restructurings. Slots
// (NodeIds) move when the marking algorithm splits nodes; MemberIds do not.
using MemberId = std::uint32_t;

enum class NodeKind : std::uint8_t { KNode, UNode };

struct Node {
  NodeKind kind = NodeKind::KNode;
  crypto::SymmetricKey key;
  MemberId member = 0;  // meaningful only for u-nodes
};

class KeyTree {
 public:
  // An empty tree of the given degree; keys are drawn deterministically
  // from key_seed so runs are reproducible.
  KeyTree(unsigned degree, std::uint64_t key_seed);

  // Build the initial tree for members [first_member, first_member + n):
  // height ceil(log_d n), users packed into the leftmost leaf slots.
  // Requires an empty tree.
  void populate(std::size_t n, MemberId first_member = 0);

  unsigned degree() const { return degree_; }
  std::size_t num_users() const { return slot_of_member_.size(); }
  bool empty() const { return nodes_.empty(); }

  bool contains(NodeId id) const { return nodes_.count(id) != 0; }
  const Node& node(NodeId id) const;
  // nullopt when the tree is empty or holds a single u-node at the root.
  std::optional<NodeId> max_knode_id() const;

  // Sorted u-node ids.
  std::vector<NodeId> user_slots() const;
  NodeId slot_of(MemberId m) const;
  bool has_member(MemberId m) const;

  // The group key (root key). Requires a non-empty tree with a k-node root.
  const crypto::SymmetricKey& group_key() const;

  // All keys a user at `slot` holds: its individual key plus every k-node
  // key on the path to the root (paper §2.1).
  std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys_for_slot(
      NodeId slot) const;

  // Tree height = level of the deepest node (0 for a root-only tree).
  unsigned height() const;

  // Verifies I1-I4; throws EnsureError on violation.
  void check_invariants() const;

  crypto::KeyGenerator& key_generator() { return keygen_; }

  // Read-only iteration over all nodes, ordered by id (snapshots, tests).
  const std::map<NodeId, Node>& nodes() const { return nodes_; }

  // Rebuild a tree from node data (snapshot restore). Validates the
  // structural invariants; throws EnsureError on inconsistent input.
  static KeyTree from_nodes(unsigned degree, std::uint64_t key_seed,
                            const std::map<NodeId, Node>& nodes);

 private:
  friend class Marker;  // the marking algorithm mutates the tree

  unsigned degree_;
  crypto::KeyGenerator keygen_;
  std::map<NodeId, Node> nodes_;
  std::set<NodeId> knode_ids_;
  std::set<NodeId> unode_ids_;
  std::map<MemberId, NodeId> slot_of_member_;
};

}  // namespace rekey::tree
