// The logical key hierarchy (LKH) key tree (paper §2.1).
//
// The tree is a d-ary hierarchy whose root holds the group key, internal
// k-nodes hold auxiliary keys, and u-nodes (always below every k-node in id
// order — Lemma 4.1) hold users' individual keys. n-nodes of the expanded
// tree are represented implicitly: an id with no entry is an n-node.
//
// Storage is a flat arena, not a node-per-allocation map: the dense id
// range [0, dense_capacity()) lives in three parallel arrays (state byte,
// key, member) indexed directly by NodeId — the BFS numbering makes
// id -> index the identity for complete levels — and the sparse tail of
// ids beyond the dense range spills into one open-addressed overflow map.
// Lookups in the hot path are a byte load + array index; there is no
// per-node allocation and no pointer chasing. The dense capacity is
// resized (never shrunk) at batch boundaries to max(256, 2*d*num_nodes),
// which covers every id of a balanced tree (max id <= N*d/(d-1) there)
// while bounding memory for pathologically sparse deep trees.
//
// Structural invariants maintained across batches (checked by
// KeyTree::check_invariants and enforced in tests):
//   I1  every non-root node's parent exists and is a k-node;
//   I2  every k-node has at least one u-node descendant;
//   I3  (Lemma 4.1) max k-node id < min u-node id;
//   I4  every u-node id lies in (nk, d*nk + d] where nk = max k-node id.
//
// Mutation happens only through the marking algorithm (keytree/marking.h),
// which is the paper's batch-rekeying update.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "crypto/keys.h"
#include "keytree/ids.h"

namespace rekey::tree {

// Stable identity of a group member across tree restructurings. Slots
// (NodeIds) move when the marking algorithm splits nodes; MemberIds do not.
using MemberId = std::uint32_t;

enum class NodeKind : std::uint8_t { KNode, UNode };

struct Node {
  NodeKind kind = NodeKind::KNode;
  crypto::SymmetricKey key;
  MemberId member = 0;  // meaningful only for u-nodes
};

class KeyTree {
 public:
  // An empty tree of the given degree; keys are drawn deterministically
  // from key_seed so runs are reproducible.
  KeyTree(unsigned degree, std::uint64_t key_seed);

  // Build the initial tree for members [first_member, first_member + n):
  // height ceil(log_d n), users packed into the leftmost leaf slots.
  // Requires an empty tree.
  void populate(std::size_t n, MemberId first_member = 0);

  unsigned degree() const { return degree_; }
  std::size_t num_users() const { return num_unodes_; }
  std::size_t num_nodes() const { return num_knodes_ + num_unodes_; }
  bool empty() const { return num_nodes() == 0; }

  bool contains(NodeId id) const { return state_at(id) != kAbsent; }
  // A materialized copy of the node (n-node ids throw).
  Node node(NodeId id) const;
  // nullopt when the tree is empty or holds a single u-node at the root.
  std::optional<NodeId> max_knode_id() const;

  // Sorted u-node ids.
  std::vector<NodeId> user_slots() const;
  // Allocation-free variant: clears and refills `out` (no allocation once
  // its capacity has warmed up).
  void user_slots_into(std::vector<NodeId>& out) const;
  // Visits every u-node id in ascending order without materializing a
  // vector. Allocation-free whenever no node lives in the overflow map.
  template <typename F>
  void for_each_user_slot(F&& fn) const {
    for (std::size_t id = 0; id < state_.size(); ++id)
      if (state_[id] == kUNode) fn(static_cast<NodeId>(id));
    if (!overflow_.empty()) {
      std::vector<NodeId> ids = sorted_overflow_unodes();
      for (const NodeId id : ids) fn(id);
    }
  }

  NodeId slot_of(MemberId m) const;
  bool has_member(MemberId m) const;

  // The group key (root key). Requires a non-empty tree with a k-node root.
  const crypto::SymmetricKey& group_key() const;

  // All keys a user at `slot` holds: its individual key plus every k-node
  // key on the path to the root (paper §2.1).
  std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys_for_slot(
      NodeId slot) const;
  // Allocation-free variant: clears and refills `out`.
  void keys_for_slot_into(
      NodeId slot,
      std::vector<std::pair<NodeId, crypto::SymmetricKey>>& out) const;

  // Direct reference to a present node's key in the arena (n-node ids
  // throw). The reference is invalidated by the next mutation.
  const crypto::SymmetricKey& key_of(NodeId id) const;

  // Tree height = level of the deepest node (0 for a root-only tree).
  unsigned height() const;

  // Verifies I1-I4 plus arena bookkeeping; throws EnsureError on
  // violation. Cold path: tests, snapshot restore — never per batch.
  void check_invariants() const;

  crypto::KeyGenerator& key_generator() { return keygen_; }
  // Read-only access (sharded snapshots persist the stream counter).
  const crypto::KeyGenerator& key_generator() const { return keygen_; }

  // Read-only iteration over all nodes in ascending id order (snapshots,
  // tests). The Node reference is a per-call scratch — copy what you keep.
  template <typename F>
  void for_each_node(F&& fn) const {
    Node scratch;
    for (std::size_t id = 0; id < state_.size(); ++id) {
      if (state_[id] == kAbsent) continue;
      fill_node(static_cast<NodeId>(id), scratch);
      fn(static_cast<NodeId>(id), scratch);
    }
    if (!overflow_.empty()) {
      std::vector<NodeId> ids = sorted_overflow_ids();
      for (const NodeId id : ids) {
        fill_node(id, scratch);
        fn(id, scratch);
      }
    }
  }

  // Materialized ordered node map (cold: tests and debugging only).
  std::map<NodeId, Node> nodes() const;

  // Rebuild a tree from node data (snapshot restore). Validates the
  // structural invariants; throws EnsureError on inconsistent input.
  static KeyTree from_nodes(unsigned degree, std::uint64_t key_seed,
                            const std::map<NodeId, Node>& nodes);

  // Bytes held by the arena (dense arrays + overflow + member map).
  std::size_t arena_bytes() const;
  std::size_t dense_capacity() const { return state_.size(); }

 private:
  friend class Marker;  // the marking algorithm mutates the tree

  static constexpr std::uint8_t kAbsent = 0, kKNode = 1, kUNode = 2;

  struct OverflowNode {
    std::uint8_t state = kAbsent;
    MemberId member = 0;
    crypto::SymmetricKey key;
  };

  std::uint8_t state_at(NodeId id) const {
    if (id < state_.size()) return state_[id];
    const OverflowNode* n = overflow_.find(id);
    return n == nullptr ? kAbsent : n->state;
  }

  void fill_node(NodeId id, Node& out) const;

  // Mutators shared by populate, from_nodes, and the Marker. They keep
  // the counters, member map, and max-k-node tracking consistent.
  void set_knode(NodeId id, const crypto::SymmetricKey& key);
  void set_unode(NodeId id, const crypto::SymmetricKey& key, MemberId m);
  void remove_node(NodeId id);  // present node -> n-node

  crypto::SymmetricKey& key_ref(NodeId id);  // present nodes only
  const crypto::SymmetricKey& key_cref(NodeId id) const;
  MemberId member_at(NodeId id) const;  // u-nodes only

  // Grows the dense arrays to cover max(256, 2*d*num_nodes) and migrates
  // overflow entries that now fit. Never shrinks (high-water policy), so
  // ids that were dense stay dense. Called at batch boundaries only.
  void rebalance();
  void grow_dense(std::size_t new_cap);

  std::vector<NodeId> sorted_overflow_ids() const;
  std::vector<NodeId> sorted_overflow_unodes() const;

  unsigned degree_;
  crypto::KeyGenerator keygen_;

  // Dense arena, indexed directly by NodeId.
  std::vector<std::uint8_t> state_;
  std::vector<crypto::SymmetricKey> key_;
  std::vector<MemberId> member_;
  // Sparse tail: ids >= dense_capacity().
  FlatMap<NodeId, OverflowNode> overflow_;

  FlatMap<MemberId, NodeId> slot_of_member_;
  std::size_t num_knodes_ = 0;
  std::size_t num_unodes_ = 0;

  // Exact max k-node id while `kmax_valid_`; after removing the max it
  // degrades to an upper bound and max_knode_id() lazily rescans.
  mutable NodeId kmax_ = 0;
  mutable bool kmax_valid_ = true;
};

}  // namespace rekey::tree
