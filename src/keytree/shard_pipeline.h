// Sharded rekey-payload generation (the batch pipeline's middle stage).
//
// The serial generator (keytree/rekey_subtree.h) already writes to fixed,
// precomputed output offsets; this variant re-partitions the same work by
// shard ownership: every changed k-node's encryption block is counted and
// filled by the task owning its shard (aggregator nodes by the aggregator
// task), and the user-needs CSR passes fan out in fixed chunks derived
// from the shard count. All offsets are laid out serially between the
// fan-outs, so the resulting RekeyPayload is byte-identical to the serial
// generator's for every shard count, thread count, and task execution
// order — the determinism contract sharding must keep.
//
// Encryption-id disjointness across shards holds by construction (an
// encryption id is the encrypting child's node id, each child has one
// parent, and node-id ownership is a partition); check_enc_id_disjointness
// verifies it, so per-shard outputs can be merged — and later parsed on
// the wire — without any shard tag or id-space offset.
#pragma once

#include "common/parallel.h"
#include "keytree/rekey_subtree.h"
#include "keytree/shard.h"

namespace rekey::tree {

// Fills `out` exactly as generate_rekey_payload_into(tree, update, msg_id,
// out) would, using one task per shard (plus the aggregator) on `runner`.
// When `stats` is non-null its shard_encryptions vector is filled
// (entries [0, shards) per shard, entry [shards] for the aggregator).
void generate_rekey_payload_sharded(const KeyTree& tree,
                                    const BatchUpdate& update,
                                    std::uint32_t msg_id, RekeyPayload& out,
                                    const ShardPlan& plan,
                                    rekey::TaskRunner& runner,
                                    ShardBatchStats* stats = nullptr);

// Verifies that the payload's encryption ids are globally unique and that
// each id has a well-defined owning shard under `plan` — the property the
// transport layer relies on to keep (msg_id, enc_id) nonces and wire
// entries collision-free when shards' outputs are interleaved. Throws
// EnsureError on violation.
void check_enc_id_disjointness(const RekeyPayload& payload,
                               const ShardPlan& plan);

}  // namespace rekey::tree
