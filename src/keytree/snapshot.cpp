#include "keytree/snapshot.h"

#include <cstring>

#include "common/ensure.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace rekey::tree {

namespace {

constexpr std::uint32_t kTreeMagic = 0x524B5453;  // "RKTS"
constexpr std::uint32_t kViewMagic = 0x524B5653;  // "RKVS"
constexpr std::uint8_t kVersion = 1;
// v2: sharded layout — per-shard node sections + the keygen counter.
constexpr std::uint8_t kShardedVersion = 2;

}  // namespace

void snapshot_seal(Bytes& blob) {
  const auto digest = crypto::Sha256::hash(blob);
  blob.insert(blob.end(), digest.begin(), digest.end());
}

std::optional<std::span<const std::uint8_t>> snapshot_open(const Bytes& blob) {
  if (blob.size() < crypto::Sha256::kDigestSize) return std::nullopt;
  const std::size_t body_len = blob.size() - crypto::Sha256::kDigestSize;
  const std::span<const std::uint8_t> body(blob.data(), body_len);
  const auto digest = crypto::Sha256::hash(body);
  if (!crypto::tags_equal(digest,
                          std::span(blob.data() + body_len,
                                    crypto::Sha256::kDigestSize)))
    return std::nullopt;
  return body;
}

namespace {

// Local aliases: the formats below predate the public seal/open names.
void append_digest(Bytes& blob) { snapshot_seal(blob); }

std::optional<std::span<const std::uint8_t>> checked_body(const Bytes& blob) {
  return snapshot_open(blob);
}

}  // namespace

Bytes snapshot_tree(const KeyTree& tree) {
  ByteWriter w;
  w.put_u32(kTreeMagic);
  w.put_u8(kVersion);
  w.put_u8(static_cast<std::uint8_t>(tree.degree()));
  w.put_u32(static_cast<std::uint32_t>(tree.num_nodes()));
  tree.for_each_node([&](NodeId id, const Node& n) {
    w.put_u64(id);
    w.put_u8(static_cast<std::uint8_t>(n.kind));
    w.put_u32(n.kind == NodeKind::UNode ? n.member : 0);
    w.put_bytes(n.key.bytes);
  });
  Bytes blob = std::move(w).take();
  append_digest(blob);
  return blob;
}

std::optional<KeyTree> restore_tree(const Bytes& blob,
                                    std::uint64_t key_seed) {
  const auto body = checked_body(blob);
  if (!body) return std::nullopt;
  try {
    ByteReader r(*body);
    if (r.get_u32() != kTreeMagic) return std::nullopt;
    if (r.get_u8() != kVersion) return std::nullopt;
    const unsigned degree = r.get_u8();
    const std::uint32_t count = r.get_u32();
    std::map<NodeId, Node> nodes;
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeId id = r.get_u64();
      Node n;
      n.kind = static_cast<NodeKind>(r.get_u8());
      if (n.kind != NodeKind::KNode && n.kind != NodeKind::UNode)
        return std::nullopt;
      n.member = r.get_u32();
      const Bytes key = r.get_bytes(crypto::SymmetricKey::kSize);
      std::copy(key.begin(), key.end(), n.key.bytes.begin());
      if (!nodes.emplace(id, n).second) return std::nullopt;
    }
    if (r.remaining() != 0) return std::nullopt;
    return KeyTree::from_nodes(degree, key_seed, nodes);
  } catch (const EnsureError&) {
    // Truncated fields or invariant violations: a corrupt snapshot.
    return std::nullopt;
  }
}

Bytes snapshot_sharded_tree(const KeyTree& tree, const ShardPlan& plan) {
  REKEY_ENSURE_MSG(tree.degree() == plan.degree,
                   "shard plan degree does not match the tree");
  // Group nodes by owner: sections [0, shards) hold each shard's subtree
  // nodes, section `shards` holds the aggregator's top-of-tree nodes.
  // Within a section ids stay ascending (for_each_node order).
  const unsigned S = plan.shards;
  std::vector<std::vector<std::pair<NodeId, Node>>> sections(S + 1);
  tree.for_each_node([&](NodeId id, const Node& n) {
    const unsigned s = plan.shard_of(id);
    sections[s == ShardPlan::kAggregator ? S : s].emplace_back(id, n);
  });

  ByteWriter w;
  w.put_u32(kTreeMagic);
  w.put_u8(kShardedVersion);
  w.put_u8(static_cast<std::uint8_t>(tree.degree()));
  w.put_u32(S);
  w.put_u32(plan.cut_level);
  w.put_u64(tree.key_generator().counter());
  for (unsigned s = 0; s <= S; ++s) {
    w.put_u32(s);
    w.put_u32(static_cast<std::uint32_t>(sections[s].size()));
    for (const auto& [id, n] : sections[s]) {
      w.put_u64(id);
      w.put_u8(static_cast<std::uint8_t>(n.kind));
      w.put_u32(n.kind == NodeKind::UNode ? n.member : 0);
      w.put_bytes(n.key.bytes);
    }
  }
  Bytes blob = std::move(w).take();
  append_digest(blob);
  return blob;
}

std::optional<KeyTree> restore_sharded_tree(const Bytes& blob,
                                            std::uint64_t key_seed,
                                            ShardPlan* plan_out) {
  const auto body = checked_body(blob);
  if (!body) return std::nullopt;
  try {
    ByteReader r(*body);
    if (r.get_u32() != kTreeMagic) return std::nullopt;
    if (r.get_u8() != kShardedVersion) return std::nullopt;
    const unsigned degree = r.get_u8();
    const std::uint32_t shards = r.get_u32();
    const std::uint32_t cut_level = r.get_u32();
    const std::uint64_t counter = r.get_u64();
    if (degree < 2 || shards < 1 || shards > 256 ||
        (shards & (shards - 1)) != 0)
      return std::nullopt;
    const ShardPlan plan = ShardPlan::make(degree, shards);
    if (plan.cut_level != cut_level) return std::nullopt;

    std::map<NodeId, Node> nodes;
    for (std::uint32_t s = 0; s <= shards; ++s) {
      if (r.get_u32() != s) return std::nullopt;
      const std::uint32_t count = r.get_u32();
      for (std::uint32_t i = 0; i < count; ++i) {
        const NodeId id = r.get_u64();
        // Section ownership check: a node filed under the wrong shard
        // (or a below-cut node in the aggregator section) means the
        // shard boundary is corrupt.
        const unsigned own = plan.shard_of(id);
        if (s == shards) {
          if (own != ShardPlan::kAggregator) return std::nullopt;
        } else if (own != s) {
          return std::nullopt;
        }
        Node n;
        n.kind = static_cast<NodeKind>(r.get_u8());
        if (n.kind != NodeKind::KNode && n.kind != NodeKind::UNode)
          return std::nullopt;
        n.member = r.get_u32();
        const Bytes key = r.get_bytes(crypto::SymmetricKey::kSize);
        std::copy(key.begin(), key.end(), n.key.bytes.begin());
        if (!nodes.emplace(id, n).second) return std::nullopt;
      }
    }
    if (r.remaining() != 0) return std::nullopt;
    KeyTree tree = KeyTree::from_nodes(degree, key_seed, nodes);
    // Resume the draw stream exactly where the snapshotted server left
    // it: the next batch's keys match an uninterrupted run bit for bit.
    tree.key_generator().set_counter(counter);
    check_sharded_tree(tree, plan);
    if (plan_out != nullptr) *plan_out = plan;
    return tree;
  } catch (const EnsureError&) {
    return std::nullopt;
  }
}

Bytes snapshot_view(const UserKeyView& view, unsigned degree) {
  ByteWriter w;
  w.put_u32(kViewMagic);
  w.put_u8(kVersion);
  w.put_u8(static_cast<std::uint8_t>(degree));
  w.put_u32(view.member());
  w.put_u64(view.id());
  w.put_u32(static_cast<std::uint32_t>(view.keys().size()));
  for (const auto& [id, key] : view.keys()) {
    w.put_u64(id);
    w.put_bytes(key.bytes);
  }
  Bytes blob = std::move(w).take();
  append_digest(blob);
  return blob;
}

std::optional<UserKeyView> restore_view(const Bytes& blob) {
  const auto body = checked_body(blob);
  if (!body) return std::nullopt;
  try {
    ByteReader r(*body);
    if (r.get_u32() != kViewMagic) return std::nullopt;
    if (r.get_u8() != kVersion) return std::nullopt;
    const unsigned degree = r.get_u8();
    const MemberId member = r.get_u32();
    const NodeId slot = r.get_u64();
    const std::uint32_t count = r.get_u32();
    std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys;
    keys.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const NodeId id = r.get_u64();
      crypto::SymmetricKey key;
      const Bytes bytes = r.get_bytes(crypto::SymmetricKey::kSize);
      std::copy(bytes.begin(), bytes.end(), key.bytes.begin());
      keys.emplace_back(id, key);
    }
    if (r.remaining() != 0) return std::nullopt;
    return UserKeyView(member, slot, degree, keys);
  } catch (const EnsureError&) {
    return std::nullopt;
  }
}

}  // namespace rekey::tree
