// Node identification in the (conceptually expanded) full balanced d-ary
// key tree (paper §4.1).
//
// Nodes are numbered in BFS order: the root is 0 and the children of node m
// are d*m+1 .. d*m+d, so parent(m) = floor((m-1)/d). A key's id is its
// node's id; an encryption {k'}_k is identified by the id of the
// *encrypting* key k (each key encrypts at most one key per rekey message);
// a user's id is its u-node's id.
//
// Theorem 4.2 lets a user re-derive its id after the marking algorithm has
// restructured the tree, knowing only its old id m and the maximum k-node
// id nk: with f(x) = d^x * m + (d^x - 1)/(d - 1), the new id is the unique
// f(x) in (nk, d*nk + d].
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rekey::tree {

using NodeId = std::uint64_t;

constexpr NodeId kRootId = 0;

// Parent of a non-root node.
NodeId parent_of(NodeId id, unsigned degree);

// j-th child (0-based) of a node.
NodeId child_of(NodeId id, unsigned j, unsigned degree);

// Depth of a node (root = level 0).
unsigned level_of(NodeId id, unsigned degree);

// Smallest id at a given level: (d^level - 1) / (d - 1).
NodeId first_id_at_level(unsigned level, unsigned degree);

// ids from `id` up to and including the root.
std::vector<NodeId> path_to_root(NodeId id, unsigned degree);

// True if `anc` is a (possibly improper) ancestor of `id`.
bool is_ancestor(NodeId anc, NodeId id, unsigned degree);

// f(x) of Theorem 4.2: the id of m's leftmost descendant x levels below.
NodeId leftmost_descendant(NodeId m, unsigned x, unsigned degree);

// Theorem 4.2: derive a user's new id from its pre-batch id and the
// post-batch maximum k-node id. Returns nullopt only if no f(x) falls in
// (max_kid, d*max_kid + d], which cannot happen for ids produced by the
// marking algorithm (the theorem guarantees existence and uniqueness).
std::optional<NodeId> derive_new_user_id(NodeId old_id, NodeId max_kid,
                                         unsigned degree);

}  // namespace rekey::tree
