#include "keytree/shard.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::tree {

ShardPlan ShardPlan::make(unsigned degree, unsigned shards) {
  REKEY_ENSURE_MSG(degree >= 2, "degree must be at least 2");
  REKEY_ENSURE_MSG(shards >= 1 && shards <= 256, "shard count out of range");
  REKEY_ENSURE_MSG((shards & (shards - 1)) == 0,
                   "shard count must be a power of two");
  ShardPlan plan;
  plan.degree = degree;
  plan.shards = shards;
  plan.cut_level = 0;
  plan.cut_roots = 1;
  while (plan.cut_roots < shards) {
    plan.cut_roots *= degree;
    ++plan.cut_level;
  }
  plan.first_cut_id = first_id_at_level(plan.cut_level, degree);
  return plan;
}

unsigned ShardPlan::shard_of(NodeId id) const {
  // Ids at level >= cut_level are exactly the ids >= first_cut_id (BFS
  // numbering packs levels contiguously).
  if (id < first_cut_id) return kAggregator;
  NodeId a = id;
  unsigned level = level_of(a, degree);
  while (level > cut_level) {
    a = parent_of(a, degree);
    --level;
  }
  const std::uint64_t idx = a - first_cut_id;
  return static_cast<unsigned>(idx * shards / cut_roots);
}

void check_shard_partition(const ShardPlan& plan,
                           std::span<const std::vector<NodeId>> shard_sets,
                           const std::vector<NodeId>& aggregator_set) {
  REKEY_ENSURE_MSG(shard_sets.size() == plan.shards,
                   "shard set count does not match the plan");
  for (unsigned s = 0; s < plan.shards; ++s) {
    const std::vector<NodeId>& set = shard_sets[s];
    REKEY_ENSURE_MSG(std::is_sorted(set.begin(), set.end()) &&
                         std::adjacent_find(set.begin(), set.end()) ==
                             set.end(),
                     "shard set is not sorted and unique");
    for (const NodeId id : set)
      REKEY_ENSURE_MSG(plan.shard_of(id) == s,
                       "cross-shard node id leaked into a shard set");
  }
  REKEY_ENSURE_MSG(
      std::is_sorted(aggregator_set.begin(), aggregator_set.end()) &&
          std::adjacent_find(aggregator_set.begin(), aggregator_set.end()) ==
              aggregator_set.end(),
      "aggregator set is not sorted and unique");
  for (const NodeId id : aggregator_set)
    REKEY_ENSURE_MSG(id < plan.first_cut_id,
                     "below-cut node id leaked into the aggregator set");
}

void check_sharded_tree(const KeyTree& tree, const ShardPlan& plan) {
  tree.check_invariants();
  REKEY_ENSURE_MSG(tree.degree() == plan.degree,
                   "shard plan degree does not match the tree");
  // Ownership sanity over the live tree: a node's owner is either its
  // parent's owner or, exactly at the cut, a shard whose parent is the
  // aggregator. Anything else means the plan arithmetic (or a restored
  // per-shard section) is corrupt.
  tree.for_each_node([&](NodeId id, const Node&) {
    const unsigned own = plan.shard_of(id);
    if (id == kRootId) {
      REKEY_ENSURE(own == ShardPlan::kAggregator || plan.cut_level == 0);
      return;
    }
    const unsigned parent_own = plan.shard_of(parent_of(id, plan.degree));
    if (own == ShardPlan::kAggregator)
      REKEY_ENSURE_MSG(parent_own == ShardPlan::kAggregator,
                       "aggregator node below a shard-owned node");
    else
      REKEY_ENSURE_MSG(parent_own == own ||
                           parent_own == ShardPlan::kAggregator,
                       "node's parent is owned by a different shard");
  });
}

std::vector<NodeId> merge_disjoint_sorted(
    std::vector<std::vector<NodeId>> parts) {
  if (parts.empty()) return {};
  // Pairwise merge rounds: log(parts) passes over the data.
  while (parts.size() > 1) {
    std::vector<std::vector<NodeId>> next;
    next.reserve((parts.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
      std::vector<NodeId> merged;
      merged.reserve(parts[i].size() + parts[i + 1].size());
      std::merge(parts[i].begin(), parts[i].end(), parts[i + 1].begin(),
                 parts[i + 1].end(), std::back_inserter(merged));
      next.push_back(std::move(merged));
    }
    if (parts.size() % 2 == 1) next.push_back(std::move(parts.back()));
    parts = std::move(next);
  }
  return std::move(parts.front());
}

}  // namespace rekey::tree
