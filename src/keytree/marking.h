// The marking algorithm: periodic batch rekeying (paper §2.2, Appendix B).
//
// At the end of a rekey interval the key server has collected J join and L
// leave requests. The marking algorithm updates the key tree:
//
//   J = L : departed u-nodes are replaced by joined users;
//   J < L : the J smallest-id departed slots are replaced, the remaining
//           L-J become n-nodes, and k-nodes left without u-descendants are
//           pruned (become n-nodes);
//   J > L : departed slots are replaced first, then extra joins fill
//           n-node slots with ids in (nk, d*nk+d] from low to high; when
//           those run out, the u-node with id nk+1 is split — it becomes a
//           k-node and its user moves to its leftmost child — freeing d-1
//           sibling slots, repeatedly.
//
// Every k-node on a path from a changed slot to the root receives a fresh
// key; the rekey subtree (keytree/rekey_subtree.h) is derived from this
// changed set.
//
// Key draws are deferred: the structural pass assigns every draw its
// serial counter index (KeyGenerator::skip) and records where the key
// belongs; materialization then computes key_at(index) for each live
// draw and writes it to its final location. Because the stream is a pure
// function of (seed, counter), materialization order is irrelevant — the
// serial run materializes inline, the sharded run fans the draws out
// across a TaskRunner, and both produce the byte-identical tree a fully
// inline next() sequence would. Two draw classes exist:
//   * user draws, keyed by MemberId so a split relocating the slot still
//     lands the key in the member's final slot;
//   * k-node draws, keyed by NodeId. A k-node creation draw is dead in a
//     non-bootstrap batch (every created k-node is in the changed set and
//     its key is overwritten by the final refresh), so only the counter
//     advances; in bootstrap there is no refresh and the draw is live.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "common/ensure.h"
#include "keytree/keytree.h"
#include "keytree/shard.h"

namespace rekey {
class TaskRunner;
}

namespace rekey::tree {

// A sorted, de-duplicated set of node ids stored contiguously. Lookups are
// binary searches; construction is a batch sort+unique — the marking hot
// path never pays per-insert tree rebalancing.
class NodeIdSet {
 public:
  using const_iterator = std::vector<NodeId>::const_iterator;

  NodeIdSet() = default;

  // Takes ownership of arbitrary ids; sorts and de-duplicates.
  void assign(std::vector<NodeId> ids) {
    ids_ = std::move(ids);
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }

  // Takes ownership of ids that are already sorted and duplicate-free
  // (the sharded merge produces exactly that); verified, not re-sorted.
  void assign_sorted(std::vector<NodeId> ids) {
    REKEY_ENSURE_MSG(std::is_sorted(ids.begin(), ids.end()) &&
                         std::adjacent_find(ids.begin(), ids.end()) ==
                             ids.end(),
                     "assign_sorted input is not sorted and unique");
    ids_ = std::move(ids);
  }

  const_iterator begin() const { return ids_.begin(); }
  const_iterator end() const { return ids_.end(); }
  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  void clear() { ids_.clear(); }

  bool contains(NodeId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }
  std::size_t count(NodeId id) const { return contains(id) ? 1 : 0; }

  // Position of `id` in the ascending order, or size() when absent.
  std::size_t index_of(NodeId id) const {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) return ids_.size();
    return static_cast<std::size_t>(it - ids_.begin());
  }

  NodeId operator[](std::size_t i) const { return ids_[i]; }

  friend bool operator==(const NodeIdSet& a, const NodeIdSet& b) {
    return a.ids_ == b.ids_;
  }
  friend bool operator==(const NodeIdSet& a, const std::set<NodeId>& b) {
    return a.ids_.size() == b.size() &&
           std::equal(a.ids_.begin(), a.ids_.end(), b.begin());
  }
  friend bool operator==(const std::set<NodeId>& a, const NodeIdSet& b) {
    return b == a;
  }

 private:
  std::vector<NodeId> ids_;
};

// Outcome of one batch, consumed by encryption generation and by tests.
struct BatchUpdate {
  // k-nodes whose keys were refreshed (includes newly created k-nodes).
  NodeIdSet changed_knodes;
  // Members placed this batch, with their slots.
  std::map<MemberId, NodeId> joined;
  // Members removed this batch, with their former slots.
  std::map<MemberId, NodeId> departed;
  // Users relocated by splitting: old slot -> new slot.
  std::map<NodeId, NodeId> moved;
  // Maximum k-node id after the batch (the ENC packet maxKID field).
  NodeId max_kid = 0;
};

class Marker {
 public:
  explicit Marker(KeyTree& tree) : tree_(tree) {}

  // Applies one batch. `joins` are fresh member ids (must not be in the
  // tree); `leaves` are current member ids. Returns the update summary.
  BatchUpdate run(std::span<const MemberId> joins,
                  std::span<const MemberId> leaves);

  // Sharded variant: the structural pass runs serially (it is O(batch)),
  // then changed-set collection runs as one independent task per shard
  // plus an aggregator task on `runner`, the per-shard sorted sets merge
  // deterministically (shard-order-independent), and the deferred key
  // draws materialize in parallel. The resulting tree, update, and key
  // material are bit-identical to run() for every shard/thread count.
  // When `stats` is non-null it is filled with per-shard changed counts
  // and the partition is validated with check_shard_partition.
  BatchUpdate run_sharded(std::span<const MemberId> joins,
                          std::span<const MemberId> leaves,
                          const ShardPlan& plan, rekey::TaskRunner& runner,
                          ShardBatchStats* stats = nullptr);

 private:
  // One deferred key draw: stream index plus the final destination.
  struct Draw {
    std::uint64_t counter = 0;
    NodeId node = 0;      // k-node draws
    MemberId member = 0;  // user draws (slot resolved at materialization)
    bool is_member = false;
  };

  NodeId place_user(MemberId m, NodeId slot);           // create u-node
  void prune_upwards(NodeId from_parent);               // drop empty k-nodes
  void create_ancestors(NodeId slot, bool live_draws);  // n-node -> k-node
  void split_first_user(BatchUpdate& upd,
                        std::vector<NodeId>& free_slots);

  void defer_user_draw(MemberId m);
  void defer_knode_draw(NodeId id, bool live);
  // Computes every recorded live draw via key_at and writes it home. With
  // a runner and chunks > 1 the draws fan out in fixed chunks (disjoint
  // destinations, so any execution order is safe).
  void materialize(rekey::TaskRunner* runner, std::size_t chunks);

  // The marking algorithm proper (draws deferred). Returns true when the
  // bootstrap path ran, in which case upd is complete except for
  // materialization; otherwise fills upd's membership maps and
  // changed_slots, leaving changed-set collection to the caller.
  bool structural_pass(std::span<const MemberId> joins,
                       std::span<const MemberId> leaves, BatchUpdate& upd,
                       std::vector<NodeId>& changed_slots);

  KeyTree& tree_;
  // Ids of k-nodes created or path-touched this batch, with duplicates;
  // sorted+uniqued once into BatchUpdate::changed_knodes.
  std::vector<NodeId> changed_scratch_;
  std::vector<Draw> draws_;
};

}  // namespace rekey::tree
