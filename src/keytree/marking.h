// The marking algorithm: periodic batch rekeying (paper §2.2, Appendix B).
//
// At the end of a rekey interval the key server has collected J join and L
// leave requests. The marking algorithm updates the key tree:
//
//   J = L : departed u-nodes are replaced by joined users;
//   J < L : the J smallest-id departed slots are replaced, the remaining
//           L-J become n-nodes, and k-nodes left without u-descendants are
//           pruned (become n-nodes);
//   J > L : departed slots are replaced first, then extra joins fill
//           n-node slots with ids in (nk, d*nk+d] from low to high; when
//           those run out, the u-node with id nk+1 is split — it becomes a
//           k-node and its user moves to its leftmost child — freeing d-1
//           sibling slots, repeatedly.
//
// Every k-node on a path from a changed slot to the root receives a fresh
// key; the rekey subtree (keytree/rekey_subtree.h) is derived from this
// changed set.
#pragma once

#include <map>
#include <set>
#include <span>
#include <vector>

#include "keytree/keytree.h"

namespace rekey::tree {

// Outcome of one batch, consumed by encryption generation and by tests.
struct BatchUpdate {
  // k-nodes whose keys were refreshed (includes newly created k-nodes).
  std::set<NodeId> changed_knodes;
  // Members placed this batch, with their slots.
  std::map<MemberId, NodeId> joined;
  // Members removed this batch, with their former slots.
  std::map<MemberId, NodeId> departed;
  // Users relocated by splitting: old slot -> new slot.
  std::map<NodeId, NodeId> moved;
  // Maximum k-node id after the batch (the ENC packet maxKID field).
  NodeId max_kid = 0;
};

class Marker {
 public:
  explicit Marker(KeyTree& tree) : tree_(tree) {}

  // Applies one batch. `joins` are fresh member ids (must not be in the
  // tree); `leaves` are current member ids. Returns the update summary.
  BatchUpdate run(std::span<const MemberId> joins,
                  std::span<const MemberId> leaves);

 private:
  NodeId place_user(MemberId m, NodeId slot);           // create u-node
  void remove_user_slot(NodeId slot);                   // u-node -> n-node
  void prune_upwards(NodeId from_parent);               // drop empty k-nodes
  void create_ancestors(NodeId slot, BatchUpdate& upd); // n-node -> k-node
  void split_first_user(BatchUpdate& upd,
                        std::vector<NodeId>& free_slots);

  KeyTree& tree_;
};

}  // namespace rekey::tree
