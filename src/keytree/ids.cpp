#include "keytree/ids.h"

#include "common/ensure.h"

namespace rekey::tree {

NodeId parent_of(NodeId id, unsigned degree) {
  REKEY_ENSURE(id != kRootId);
  REKEY_ENSURE(degree >= 2);
  return (id - 1) / degree;
}

NodeId child_of(NodeId id, unsigned j, unsigned degree) {
  REKEY_ENSURE(j < degree);
  return id * degree + 1 + j;
}

unsigned level_of(NodeId id, unsigned degree) {
  unsigned level = 0;
  while (id != kRootId) {
    id = parent_of(id, degree);
    ++level;
  }
  return level;
}

NodeId first_id_at_level(unsigned level, unsigned degree) {
  // (d^level - 1) / (d - 1), computed iteratively to avoid overflow paths.
  NodeId id = 0;
  for (unsigned i = 0; i < level; ++i) id = id * degree + 1;
  return id;
}

std::vector<NodeId> path_to_root(NodeId id, unsigned degree) {
  std::vector<NodeId> path;
  path.push_back(id);
  while (id != kRootId) {
    id = parent_of(id, degree);
    path.push_back(id);
  }
  return path;
}

bool is_ancestor(NodeId anc, NodeId id, unsigned degree) {
  while (true) {
    if (id == anc) return true;
    if (id == kRootId) return false;
    id = parent_of(id, degree);
  }
}

NodeId leftmost_descendant(NodeId m, unsigned x, unsigned degree) {
  NodeId id = m;
  for (unsigned i = 0; i < x; ++i) id = id * degree + 1;
  return id;
}

std::optional<NodeId> derive_new_user_id(NodeId old_id, NodeId max_kid,
                                         unsigned degree) {
  const NodeId hi = max_kid * degree + degree;
  NodeId id = old_id;
  for (unsigned x = 0; x < 64; ++x) {
    if (id > max_kid && id <= hi) return id;
    if (id > hi) return std::nullopt;
    id = id * degree + 1;  // next leftmost descendant
  }
  return std::nullopt;
}

}  // namespace rekey::tree
