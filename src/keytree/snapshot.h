// Key-tree and member-view snapshots.
//
// A key server must survive restarts without re-keying the whole group:
// the tree (structure + key material + member bindings) serializes to a
// self-describing byte blob and restores to an identical tree. Member
// views snapshot the same way, so a client can persist its key state
// across reconnects. Blobs are versioned and integrity-checked with a
// SHA-256 trailer; they contain raw key material, so at-rest encryption
// is the caller's responsibility (out of scope here, as in the paper).
#pragma once

#include <optional>

#include "common/bytes.h"
#include "keytree/keytree.h"
#include "keytree/user_view.h"

namespace rekey::tree {

// Serialize the full key tree (degree, nodes, member bindings).
Bytes snapshot_tree(const KeyTree& tree);

// Restore; nullopt when the blob is truncated, corrupt, or of an
// unknown version. `key_seed` seeds the generator for *future* keys.
std::optional<KeyTree> restore_tree(const Bytes& blob,
                                    std::uint64_t key_seed);

// Serialize a member's key view (member id, slot, held keys).
Bytes snapshot_view(const UserKeyView& view, unsigned degree);

std::optional<UserKeyView> restore_view(const Bytes& blob);

}  // namespace rekey::tree
