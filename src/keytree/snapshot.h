// Key-tree and member-view snapshots.
//
// A key server must survive restarts without re-keying the whole group:
// the tree (structure + key material + member bindings) serializes to a
// self-describing byte blob and restores to an identical tree. Member
// views snapshot the same way, so a client can persist its key state
// across reconnects. Blobs are versioned and integrity-checked with a
// SHA-256 trailer; they contain raw key material, so at-rest encryption
// is the caller's responsibility (out of scope here, as in the paper).
#pragma once

#include <optional>
#include <span>

#include "common/bytes.h"
#include "keytree/keytree.h"
#include "keytree/shard.h"
#include "keytree/user_view.h"

namespace rekey::tree {

// Integrity trailer shared by every snapshot format. snapshot_seal
// appends the SHA-256 of the blob so far; snapshot_open verifies and
// strips it, returning the body span (nullopt on truncation or any
// corruption). Exposed so higher-level snapshot formats (the wire
// layer's full-server snapshot embeds a tree snapshot) seal and check
// the same way instead of inventing a second trailer.
void snapshot_seal(Bytes& blob);
std::optional<std::span<const std::uint8_t>> snapshot_open(const Bytes& blob);

// Serialize the full key tree (degree, nodes, member bindings).
Bytes snapshot_tree(const KeyTree& tree);

// Restore; nullopt when the blob is truncated, corrupt, or of an
// unknown version. `key_seed` seeds the generator for *future* keys.
std::optional<KeyTree> restore_tree(const Bytes& blob,
                                    std::uint64_t key_seed);

// Sharded snapshot (format v2): nodes are grouped into one section per
// shard plus an aggregator section, and the key generator's stream
// counter is persisted, so a restored server resumes the exact draw
// sequence — the next sharded (or serial) batch is bit-identical to an
// uninterrupted run's, even mid-epoch. Restore validates that every node
// in a shard section is owned by that shard under the recorded plan; a
// corrupted shard boundary yields nullopt.
Bytes snapshot_sharded_tree(const KeyTree& tree, const ShardPlan& plan);

std::optional<KeyTree> restore_sharded_tree(const Bytes& blob,
                                            std::uint64_t key_seed,
                                            ShardPlan* plan_out = nullptr);

// Serialize a member's key view (member id, slot, held keys).
Bytes snapshot_view(const UserKeyView& view, unsigned degree);

std::optional<UserKeyView> restore_view(const Bytes& blob);

}  // namespace rekey::tree
