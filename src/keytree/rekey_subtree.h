// Rekey subtree construction and encryption generation (paper §2.1, §2.2,
// Appendix B).
//
// The rekey subtree consists of the k-nodes whose keys changed in a batch,
// their direct children, and the connecting edges. For every edge
// (changed k-node x, child c) the server emits the encryption
// {newkey(x)}_{key(c)} — where key(c) is c's new key if c is itself a
// changed k-node, or c's (possibly brand-new) individual key if c is a
// u-node. The encryption's id is c's node id: each node's key encrypts at
// most one key per rekey message, so the id is unique and self-describing
// (the target is always the parent's key).
//
// Appendix-B labels (Unchanged / Join / Leave / Replace) are also computed:
// a changed k-node is labelled Join when the only changes beneath it are
// joins, Replace when some user beneath departed or was relocated by a
// split. They are diagnostic here (encryption generation does not depend on
// them) but are exercised by tests and by the analysis module.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/keys.h"
#include "keytree/marking.h"

namespace rekey::tree {

enum class Label : std::uint8_t { Join, Replace };

struct Encryption {
  NodeId enc_id = 0;     // id of the encrypting node (the child c)
  NodeId target_id = 0;  // id of the node whose new key is carried (parent)
  crypto::EncryptedKey payload;
};

struct RekeyPayload {
  std::uint32_t msg_id = 0;
  unsigned degree = 4;
  NodeId max_kid = 0;
  // Bottom-up generation order (deepest subtrees first).
  std::vector<Encryption> encryptions;
  // For every current user slot: indices into `encryptions` it needs,
  // ordered bottom-up along its path. Users with no changed ancestor have
  // no entry.
  std::map<NodeId, std::vector<std::uint32_t>> user_needs;
  // Appendix-B labels of the changed k-nodes.
  std::map<NodeId, Label> labels;
};

// Generates the rekey message payload for a batch that was just applied to
// `tree` (whose keys are already the *new* keys).
RekeyPayload generate_rekey_payload(const KeyTree& tree,
                                    const BatchUpdate& update,
                                    std::uint32_t msg_id);

}  // namespace rekey::tree
