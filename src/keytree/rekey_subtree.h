// Rekey subtree construction and encryption generation (paper §2.1, §2.2,
// Appendix B).
//
// The rekey subtree consists of the k-nodes whose keys changed in a batch,
// their direct children, and the connecting edges. For every edge
// (changed k-node x, child c) the server emits the encryption
// {newkey(x)}_{key(c)} — where key(c) is c's new key if c is itself a
// changed k-node, or c's (possibly brand-new) individual key if c is a
// u-node. The encryption's id is c's node id: each node's key encrypts at
// most one key per rekey message, so the id is unique and self-describing
// (the target is always the parent's key).
//
// Appendix-B labels (Unchanged / Join / Leave / Replace) are also computed:
// a changed k-node is labelled Join when the only changes beneath it are
// joins, Replace when some user beneath departed or was relocated by a
// split. They are diagnostic here (encryption generation does not depend on
// them) but are exercised by tests and by the analysis module.
//
// The payload containers are flat: user needs live in one CSR
// (slots / offsets / indices) instead of a map of vectors, and labels are
// a sorted array parallel to the changed-k-node set. Generation is a
// single pass over preallocated buffers; pass a ThreadPool to fan the
// encryption and user-needs passes out over worker threads — output
// positions are fixed up front, so the result is bit-identical to the
// serial path regardless of thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/ensure.h"
#include "crypto/keys.h"
#include "keytree/marking.h"

namespace rekey {
class ThreadPool;
class TaskRunner;
}

namespace rekey::tree {

struct ShardPlan;        // keytree/shard.h
struct ShardBatchStats;  // keytree/shard.h
struct RekeyPayload;
struct BatchUpdate;

// Sharded generator (keytree/shard_pipeline.h); declared here so the flat
// payload containers can befriend it.
void generate_rekey_payload_sharded(const KeyTree& tree,
                                    const BatchUpdate& update,
                                    std::uint32_t msg_id, RekeyPayload& out,
                                    const ShardPlan& plan,
                                    rekey::TaskRunner& runner,
                                    ShardBatchStats* stats);

enum class Label : std::uint8_t { Join, Replace };

struct Encryption {
  NodeId enc_id = 0;     // id of the encrypting node (the child c)
  NodeId target_id = 0;  // id of the node whose new key is carried (parent)
  crypto::EncryptedKey payload;
};

struct RekeyPayload;

// For every current user slot with at least one needed encryption: the
// indices into RekeyPayload::encryptions it needs, ordered bottom-up along
// its path. Stored as one CSR (sorted slots, offsets, flat index pool) —
// iteration yields (slot, span) pairs in ascending slot order.
class UserNeeds {
 public:
  using needs_span = std::span<const std::uint32_t>;

  class const_iterator {
   public:
    using value_type = std::pair<NodeId, needs_span>;
    using difference_type = std::ptrdiff_t;

    const_iterator() = default;
    const_iterator(const UserNeeds* un, std::size_t i) : un_(un), i_(i) {}

    value_type operator*() const {
      return {un_->slots_[i_], un_->needs_at(i_)};
    }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    const UserNeeds* un_ = nullptr;
    std::size_t i_ = 0;
  };

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, slots_.size()}; }
  std::size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  void clear() {
    slots_.clear();
    offsets_.clear();
    indices_.clear();
  }

  std::size_t count(NodeId slot) const {
    return index_of(slot) < slots_.size() ? 1 : 0;
  }
  // Throws when the slot has no needs (mirrors std::map::at).
  needs_span at(NodeId slot) const {
    const std::size_t i = index_of(slot);
    REKEY_ENSURE_MSG(i < slots_.size(), "slot has no needed encryptions");
    return needs_at(i);
  }
  // Empty span when the slot has no needs.
  needs_span needs_of(NodeId slot) const {
    const std::size_t i = index_of(slot);
    return i < slots_.size() ? needs_at(i) : needs_span{};
  }

 private:
  friend void generate_rekey_payload_into(const KeyTree&, const BatchUpdate&,
                                          std::uint32_t, RekeyPayload&,
                                          rekey::ThreadPool*);
  friend void generate_rekey_payload_sharded(const KeyTree&,
                                             const BatchUpdate&,
                                             std::uint32_t, RekeyPayload&,
                                             const ShardPlan&,
                                             rekey::TaskRunner&,
                                             ShardBatchStats*);

  std::size_t index_of(NodeId slot) const {
    const auto it = std::lower_bound(slots_.begin(), slots_.end(), slot);
    if (it == slots_.end() || *it != slot) return slots_.size();
    return static_cast<std::size_t>(it - slots_.begin());
  }
  needs_span needs_at(std::size_t i) const {
    return needs_span(indices_.data() + offsets_[i],
                      offsets_[i + 1] - offsets_[i]);
  }

  std::vector<NodeId> slots_;            // ascending user slots with needs
  std::vector<std::uint32_t> offsets_;   // size slots_.size() + 1
  std::vector<std::uint32_t> indices_;   // flat pool of encryption indices
};

// Appendix-B labels of the changed k-nodes: a sorted (node id, label)
// array parallel to BatchUpdate::changed_knodes.
class LabelMap {
 public:
  using value_type = std::pair<NodeId, Label>;
  using const_iterator = std::vector<value_type>::const_iterator;

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  std::size_t count(NodeId id) const {
    return index_of(id) < entries_.size() ? 1 : 0;
  }
  Label at(NodeId id) const {
    const std::size_t i = index_of(id);
    REKEY_ENSURE_MSG(i < entries_.size(), "node has no label");
    return entries_[i].second;
  }

 private:
  friend void generate_rekey_payload_into(const KeyTree&, const BatchUpdate&,
                                          std::uint32_t, RekeyPayload&,
                                          rekey::ThreadPool*);
  friend void generate_rekey_payload_sharded(const KeyTree&,
                                             const BatchUpdate&,
                                             std::uint32_t, RekeyPayload&,
                                             const ShardPlan&,
                                             rekey::TaskRunner&,
                                             ShardBatchStats*);

  std::size_t index_of(NodeId id) const {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const value_type& e, NodeId v) { return e.first < v; });
    if (it == entries_.end() || it->first != id) return entries_.size();
    return static_cast<std::size_t>(it - entries_.begin());
  }

  std::vector<value_type> entries_;  // sorted by node id
};

struct RekeyPayload {
  std::uint32_t msg_id = 0;
  unsigned degree = 4;
  NodeId max_kid = 0;
  // Bottom-up generation order (deepest subtrees first).
  std::vector<Encryption> encryptions;
  // For every current user slot: indices into `encryptions` it needs,
  // ordered bottom-up along its path. Users with no changed ancestor have
  // no entry.
  UserNeeds user_needs;
  // Appendix-B labels of the changed k-nodes.
  LabelMap labels;
};

// Generates the rekey message payload for a batch that was just applied to
// `tree` (whose keys are already the *new* keys). A non-null `pool` with
// more than one worker fans the encryption and user-needs passes out
// across threads; the result is bit-identical to the serial path.
RekeyPayload generate_rekey_payload(const KeyTree& tree,
                                    const BatchUpdate& update,
                                    std::uint32_t msg_id,
                                    rekey::ThreadPool* pool = nullptr);

// Reuse-friendly variant: clears and refills `out`, keeping its buffer
// capacity across batches (the steady-state server loop allocates
// nothing here once warm).
void generate_rekey_payload_into(const KeyTree& tree,
                                 const BatchUpdate& update,
                                 std::uint32_t msg_id, RekeyPayload& out,
                                 rekey::ThreadPool* pool = nullptr);

}  // namespace rekey::tree
