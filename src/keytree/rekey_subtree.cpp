#include "keytree/rekey_subtree.h"

#include <algorithm>
#include <unordered_map>

#include "common/ensure.h"

namespace rekey::tree {

RekeyPayload generate_rekey_payload(const KeyTree& tree,
                                    const BatchUpdate& update,
                                    std::uint32_t msg_id) {
  RekeyPayload out;
  out.msg_id = msg_id;
  out.degree = tree.degree();
  out.max_kid = update.max_kid;
  const unsigned d = tree.degree();

  // Labels: a changed k-node above any departed or split-relocated slot is
  // Replace; one whose changes are joins only is Join.
  for (const NodeId x : update.changed_knodes) out.labels[x] = Label::Join;
  auto taint = [&](NodeId slot) {
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, d);
      const auto it = out.labels.find(id);
      if (it != out.labels.end()) it->second = Label::Replace;
    }
  };
  for (const auto& [member, slot] : update.departed) taint(slot);
  for (const auto& [old_slot, new_slot] : update.moved) {
    taint(old_slot);
    // The split node itself hides a relocation from users beneath it.
    const auto it = out.labels.find(old_slot);
    if (it != out.labels.end()) it->second = Label::Replace;
  }

  // Encryptions, deepest changed k-nodes first (bottom-up traversal).
  std::vector<NodeId> order(update.changed_knodes.begin(),
                            update.changed_knodes.end());
  std::sort(order.begin(), order.end(), std::greater<NodeId>());

  std::unordered_map<NodeId, std::uint32_t> index_of_enc;
  for (const NodeId x : order) {
    const crypto::SymmetricKey& new_key = tree.node(x).key;
    for (unsigned j = 0; j < d; ++j) {
      const NodeId c = child_of(x, j, d);
      if (!tree.contains(c)) continue;  // n-node
      Encryption e;
      e.enc_id = c;
      e.target_id = x;
      e.payload = crypto::encrypt_key(tree.node(c).key, new_key, msg_id, c);
      index_of_enc.emplace(c, static_cast<std::uint32_t>(
                                  out.encryptions.size()));
      out.encryptions.push_back(e);
    }
  }

  // Which encryptions each user needs: for every node c on the user's path
  // (excluding the root), the encryption with id c exists iff parent(c)
  // changed. Changed sets are upward-closed, so these form the top segment
  // of the path; we record them bottom-up so a receiver can decrypt in
  // order with the keys it already holds.
  for (const NodeId slot : tree.user_slots()) {
    std::vector<std::uint32_t> needs;
    for (NodeId c = slot; c != kRootId; c = parent_of(c, d)) {
      if (update.changed_knodes.count(parent_of(c, d))) {
        const auto it = index_of_enc.find(c);
        REKEY_ENSURE_MSG(it != index_of_enc.end(),
                         "missing encryption for an existing child");
        needs.push_back(it->second);
      }
    }
    if (!needs.empty()) out.user_needs.emplace(slot, std::move(needs));
  }
  return out;
}

}  // namespace rekey::tree
