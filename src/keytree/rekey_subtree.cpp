#include "keytree/rekey_subtree.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/parallel.h"

namespace rekey::tree {

namespace {

// Work below this size is not worth fanning out.
constexpr std::size_t kParallelEncThreshold = 256;
constexpr std::size_t kParallelNeedsThreshold = 4096;

// Splits [0, n) into roughly even chunks and runs fn(begin, end) for each
// across the pool.
void parallel_chunks(rekey::ThreadPool& pool, std::size_t n,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t chunks =
      std::min<std::size_t>(n, static_cast<std::size_t>(pool.size()) * 8);
  pool.for_each_index(chunks, [&](std::size_t c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    if (begin < end) fn(begin, end);
  });
}

}  // namespace

RekeyPayload generate_rekey_payload(const KeyTree& tree,
                                    const BatchUpdate& update,
                                    std::uint32_t msg_id,
                                    rekey::ThreadPool* pool) {
  RekeyPayload out;
  generate_rekey_payload_into(tree, update, msg_id, out, pool);
  return out;
}

void generate_rekey_payload_into(const KeyTree& tree,
                                 const BatchUpdate& update,
                                 std::uint32_t msg_id, RekeyPayload& out,
                                 rekey::ThreadPool* pool) {
  out.msg_id = msg_id;
  out.degree = tree.degree();
  out.max_kid = update.max_kid;
  out.encryptions.clear();
  out.user_needs.clear();
  out.labels.clear();

  const unsigned d = tree.degree();
  const NodeIdSet& changed = update.changed_knodes;
  const std::size_t n_changed = changed.size();
  const bool parallel = pool != nullptr && pool->size() > 1;

  // Labels: a changed k-node above any departed or split-relocated slot is
  // Replace; one whose changes are joins only is Join. The label array is
  // parallel to the (sorted) changed set, so the taint walk is a binary
  // search per ancestor. Replace labels are upward-closed at every step,
  // so a walk may stop at an already-Replace node — everything above it is
  // already tainted. (It must NOT stop at an unlabeled ancestor: pruning
  // can leave gaps of absent nodes below changed ones.)
  auto& labels = out.labels.entries_;
  labels.reserve(n_changed);
  for (std::size_t i = 0; i < n_changed; ++i)
    labels.emplace_back(changed[i], Label::Join);
  auto taint = [&](NodeId slot) {
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, d);
      const std::size_t i = changed.index_of(id);
      if (i == n_changed) continue;
      if (labels[i].second == Label::Replace) break;
      labels[i].second = Label::Replace;
    }
  };
  for (const auto& [member, slot] : update.departed) taint(slot);
  for (const auto& [old_slot, new_slot] : update.moved) {
    taint(old_slot);
    // The split node itself hides a relocation from users beneath it.
    const std::size_t i = changed.index_of(old_slot);
    if (i != n_changed) labels[i].second = Label::Replace;
  }

  // Encryptions, deepest changed k-nodes first (bottom-up traversal).
  // Descending position k corresponds to ascending index n_changed-1-k;
  // enc_offset[k] is the first encryption of that k-node's children.
  std::vector<std::uint32_t> enc_offset(n_changed + 1, 0);
  if (parallel && n_changed >= kParallelEncThreshold) {
    // Fixed output slots make the fan-out bit-identical to the serial
    // pass: count children first, prefix-sum, then encrypt in place.
    parallel_chunks(*pool, n_changed, [&](std::size_t b, std::size_t e) {
      for (std::size_t k = b; k < e; ++k) {
        const NodeId x = changed[n_changed - 1 - k];
        std::uint32_t cnt = 0;
        for (unsigned j = 0; j < d; ++j)
          if (tree.contains(child_of(x, j, d))) ++cnt;
        enc_offset[k + 1] = cnt;
      }
    });
    for (std::size_t k = 0; k < n_changed; ++k)
      enc_offset[k + 1] += enc_offset[k];
    out.encryptions.resize(enc_offset[n_changed]);
    parallel_chunks(*pool, n_changed, [&](std::size_t b, std::size_t e) {
      for (std::size_t k = b; k < e; ++k) {
        const NodeId x = changed[n_changed - 1 - k];
        const crypto::SymmetricKey& new_key = tree.key_of(x);
        std::uint32_t at = enc_offset[k];
        for (unsigned j = 0; j < d; ++j) {
          const NodeId c = child_of(x, j, d);
          if (!tree.contains(c)) continue;  // n-node
          Encryption& enc = out.encryptions[at++];
          enc.enc_id = c;
          enc.target_id = x;
          enc.payload =
              crypto::encrypt_key(tree.key_of(c), new_key, msg_id, c);
        }
      }
    });
  } else {
    for (std::size_t k = 0; k < n_changed; ++k) {
      const NodeId x = changed[n_changed - 1 - k];
      const crypto::SymmetricKey& new_key = tree.key_of(x);
      for (unsigned j = 0; j < d; ++j) {
        const NodeId c = child_of(x, j, d);
        if (!tree.contains(c)) continue;  // n-node
        Encryption& enc = out.encryptions.emplace_back();
        enc.enc_id = c;
        enc.target_id = x;
        enc.payload = crypto::encrypt_key(tree.key_of(c), new_key, msg_id, c);
      }
      enc_offset[k + 1] = static_cast<std::uint32_t>(out.encryptions.size());
    }
  }

  // Index of the encryption whose enc_id is child c of changed k-node p:
  // locate p's block via its position in the descending order, then scan
  // the <= d entries of that block.
  auto enc_index = [&](NodeId c, NodeId p) -> std::uint32_t {
    const std::size_t k = n_changed - 1 - changed.index_of(p);
    for (std::uint32_t i = enc_offset[k]; i < enc_offset[k + 1]; ++i)
      if (out.encryptions[i].enc_id == c) return i;
    REKEY_ENSURE_MSG(false, "missing encryption for an existing child");
    return 0;  // unreachable
  };

  // Which encryptions each user needs: for every node c on the user's path
  // (excluding the root), the encryption with id c exists iff parent(c)
  // changed. Changed sets are upward-closed, so these form the top segment
  // of the path; we record them bottom-up so a receiver can decrypt in
  // order with the keys it already holds.
  UserNeeds& un = out.user_needs;
  if (n_changed == 0) return;
  if (parallel && tree.num_users() >= kParallelNeedsThreshold) {
    std::vector<NodeId> slots;
    slots.reserve(tree.num_users());
    tree.user_slots_into(slots);
    // Pass 1: per-user need counts.
    std::vector<std::uint32_t> counts(slots.size(), 0);
    parallel_chunks(*pool, slots.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        std::uint32_t cnt = 0;
        for (NodeId c = slots[i]; c != kRootId; c = parent_of(c, d))
          if (changed.contains(parent_of(c, d))) ++cnt;
        counts[i] = cnt;
      }
    });
    // Compact to users with needs and lay out the CSR.
    std::uint32_t total = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (counts[i] == 0) continue;
      un.slots_.push_back(slots[i]);
      un.offsets_.push_back(total);
      total += counts[i];
    }
    un.offsets_.push_back(total);
    un.indices_.resize(total);
    // Pass 2: fill each user's fixed span.
    parallel_chunks(*pool, un.slots_.size(),
                    [&](std::size_t b, std::size_t e) {
                      for (std::size_t i = b; i < e; ++i) {
                        std::uint32_t at = un.offsets_[i];
                        for (NodeId c = un.slots_[i]; c != kRootId;
                             c = parent_of(c, d)) {
                          const NodeId p = parent_of(c, d);
                          if (changed.contains(p))
                            un.indices_[at++] = enc_index(c, p);
                        }
                      }
                    });
  } else {
    tree.for_each_user_slot([&](NodeId slot) {
      const std::size_t before = un.indices_.size();
      for (NodeId c = slot; c != kRootId; c = parent_of(c, d)) {
        const NodeId p = parent_of(c, d);
        if (changed.contains(p)) un.indices_.push_back(enc_index(c, p));
      }
      if (un.indices_.size() != before) {
        un.slots_.push_back(slot);
        un.offsets_.push_back(static_cast<std::uint32_t>(before));
      }
    });
    un.offsets_.push_back(static_cast<std::uint32_t>(un.indices_.size()));
  }
}

}  // namespace rekey::tree
