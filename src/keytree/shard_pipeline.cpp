#include "keytree/shard_pipeline.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::tree {

void generate_rekey_payload_sharded(const KeyTree& tree,
                                    const BatchUpdate& update,
                                    std::uint32_t msg_id, RekeyPayload& out,
                                    const ShardPlan& plan,
                                    rekey::TaskRunner& runner,
                                    ShardBatchStats* stats) {
  REKEY_ENSURE_MSG(plan.degree == tree.degree(),
                   "shard plan degree does not match the tree");
  out.msg_id = msg_id;
  out.degree = tree.degree();
  out.max_kid = update.max_kid;
  out.encryptions.clear();
  out.user_needs.clear();
  out.labels.clear();

  const unsigned d = tree.degree();
  const NodeIdSet& changed = update.changed_knodes;
  const std::size_t n_changed = changed.size();
  const unsigned S = plan.shards;

  // Labels stay serial: the taint walks write shared entries (a departed
  // slot in one shard taints aggregator ancestors), and the pass is ~10%
  // of payload cost. Identical to the serial generator's block.
  auto& labels = out.labels.entries_;
  labels.reserve(n_changed);
  for (std::size_t i = 0; i < n_changed; ++i)
    labels.emplace_back(changed[i], Label::Join);
  auto taint = [&](NodeId slot) {
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, d);
      const std::size_t i = changed.index_of(id);
      if (i == n_changed) continue;
      if (labels[i].second == Label::Replace) break;
      labels[i].second = Label::Replace;
    }
  };
  for (const auto& [member, slot] : update.departed) taint(slot);
  for (const auto& [old_slot, new_slot] : update.moved) {
    taint(old_slot);
    // The split node itself hides a relocation from users beneath it.
    const std::size_t i = changed.index_of(old_slot);
    if (i != n_changed) labels[i].second = Label::Replace;
  }

  // Partition the descending positions k (block order of the serial
  // generator: k <-> changed[n_changed-1-k]) by shard ownership of the
  // changed k-node. Owners are computed in shard-count-derived chunks;
  // binning is a serial O(n_changed) pass.
  std::vector<std::uint32_t> owner(n_changed);
  if (n_changed > 0) {
    const std::size_t chunks = std::min<std::size_t>(n_changed, S * 2);
    runner.run(chunks, [&](std::size_t c) {
      const std::size_t b = n_changed * c / chunks;
      const std::size_t e = n_changed * (c + 1) / chunks;
      for (std::size_t k = b; k < e; ++k) {
        const unsigned s = plan.shard_of(changed[n_changed - 1 - k]);
        owner[k] = s == ShardPlan::kAggregator ? S : s;
      }
    });
  }
  std::vector<std::vector<std::uint32_t>> shard_ks(S + 1);
  for (std::size_t k = 0; k < n_changed; ++k)
    shard_ks[owner[k]].push_back(static_cast<std::uint32_t>(k));

  // Count -> prefix-sum -> fill, with each shard's task touching only the
  // enc_offset entries and encryption blocks of its own k positions. The
  // offsets (and therefore every byte of the output) match the serial
  // generator exactly.
  std::vector<std::uint32_t> enc_offset(n_changed + 1, 0);
  runner.run(S + 1, [&](std::size_t t) {
    for (const std::uint32_t k : shard_ks[t]) {
      const NodeId x = changed[n_changed - 1 - k];
      std::uint32_t cnt = 0;
      for (unsigned j = 0; j < d; ++j)
        if (tree.contains(child_of(x, j, d))) ++cnt;
      enc_offset[k + 1] = cnt;
    }
  });
  if (stats != nullptr) {
    stats->shard_encryptions.assign(S + 1, 0);
    for (unsigned t = 0; t <= S; ++t)
      for (const std::uint32_t k : shard_ks[t])
        stats->shard_encryptions[t] += enc_offset[k + 1];
  }
  for (std::size_t k = 0; k < n_changed; ++k)
    enc_offset[k + 1] += enc_offset[k];
  out.encryptions.resize(enc_offset[n_changed]);
  runner.run(S + 1, [&](std::size_t t) {
    for (const std::uint32_t k : shard_ks[t]) {
      const NodeId x = changed[n_changed - 1 - k];
      const crypto::SymmetricKey& new_key = tree.key_of(x);
      std::uint32_t at = enc_offset[k];
      for (unsigned j = 0; j < d; ++j) {
        const NodeId c = child_of(x, j, d);
        if (!tree.contains(c)) continue;  // n-node
        Encryption& enc = out.encryptions[at++];
        enc.enc_id = c;
        enc.target_id = x;
        enc.payload = crypto::encrypt_key(tree.key_of(c), new_key, msg_id, c);
      }
    }
  });

  // Index of the encryption whose enc_id is child c of changed k-node p
  // (same lookup as the serial generator).
  auto enc_index = [&](NodeId c, NodeId p) -> std::uint32_t {
    const std::size_t k = n_changed - 1 - changed.index_of(p);
    for (std::uint32_t i = enc_offset[k]; i < enc_offset[k + 1]; ++i)
      if (out.encryptions[i].enc_id == c) return i;
    REKEY_ENSURE_MSG(false, "missing encryption for an existing child");
    return 0;  // unreachable
  };

  // User needs: counts and fills fan out in shard-derived chunks over the
  // ascending slot array; the CSR compaction between them is serial, so
  // slot order (and the flat index pool) is identical to the serial pass.
  UserNeeds& un = out.user_needs;
  if (n_changed == 0) return;
  std::vector<NodeId> slots;
  slots.reserve(tree.num_users());
  tree.user_slots_into(slots);
  std::vector<std::uint32_t> counts(slots.size(), 0);
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(slots.size(), S * 4));
  runner.run(chunks, [&](std::size_t c) {
    const std::size_t b = slots.size() * c / chunks;
    const std::size_t e = slots.size() * (c + 1) / chunks;
    for (std::size_t i = b; i < e; ++i) {
      std::uint32_t cnt = 0;
      for (NodeId n = slots[i]; n != kRootId; n = parent_of(n, d))
        if (changed.contains(parent_of(n, d))) ++cnt;
      counts[i] = cnt;
    }
  });
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (counts[i] == 0) continue;
    un.slots_.push_back(slots[i]);
    un.offsets_.push_back(total);
    total += counts[i];
  }
  un.offsets_.push_back(total);
  un.indices_.resize(total);
  const std::size_t fill_chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(un.slots_.size(), S * 4));
  runner.run(fill_chunks, [&](std::size_t c) {
    const std::size_t b = un.slots_.size() * c / fill_chunks;
    const std::size_t e = un.slots_.size() * (c + 1) / fill_chunks;
    for (std::size_t i = b; i < e; ++i) {
      std::uint32_t at = un.offsets_[i];
      for (NodeId n = un.slots_[i]; n != kRootId; n = parent_of(n, d)) {
        const NodeId p = parent_of(n, d);
        if (changed.contains(p)) un.indices_[at++] = enc_index(n, p);
      }
    }
  });
}

void check_enc_id_disjointness(const RekeyPayload& payload,
                               const ShardPlan& plan) {
  std::vector<NodeId> ids;
  ids.reserve(payload.encryptions.size());
  for (const Encryption& e : payload.encryptions) {
    // Every id must have a well-defined owner (shard or aggregator); the
    // encrypting child of a changed k-node always does.
    const unsigned s = plan.shard_of(e.enc_id);
    REKEY_ENSURE(s == ShardPlan::kAggregator || s < plan.shards);
    ids.push_back(e.enc_id);
  }
  std::sort(ids.begin(), ids.end());
  REKEY_ENSURE_MSG(std::adjacent_find(ids.begin(), ids.end()) == ids.end(),
                   "duplicate encryption id across shards");
}

}  // namespace rekey::tree
