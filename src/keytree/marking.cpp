#include "keytree/marking.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::tree {

NodeId Marker::place_user(MemberId m, NodeId slot) {
  // Key-generator call order matters: one draw per placed user, exactly as
  // the map-based implementation made them (determinism contract).
  tree_.set_unode(slot, tree_.keygen_.next(), m);
  return slot;
}

void Marker::prune_upwards(NodeId from_parent) {
  NodeId id = from_parent;
  while (true) {
    if (tree_.state_at(id) != KeyTree::kKNode) return;
    bool has_child = false;
    for (unsigned j = 0; j < tree_.degree_ && !has_child; ++j)
      has_child = tree_.state_at(child_of(id, j, tree_.degree_)) !=
                  KeyTree::kAbsent;
    if (has_child) return;
    tree_.remove_node(id);
    if (id == kRootId) return;
    id = parent_of(id, tree_.degree_);
  }
}

void Marker::create_ancestors(NodeId slot) {
  NodeId id = slot;
  while (id != kRootId) {
    id = parent_of(id, tree_.degree_);
    const std::uint8_t s = tree_.state_at(id);
    if (s != KeyTree::kAbsent) {
      REKEY_ENSURE(s == KeyTree::kKNode);
      return;  // existing ancestors are all present (invariant I1)
    }
    tree_.set_knode(id, tree_.keygen_.next());
    changed_scratch_.push_back(id);
  }
}

void Marker::split_first_user(BatchUpdate& upd,
                              std::vector<NodeId>& free_slots) {
  REKEY_ENSURE(free_slots.empty());
  const auto nk = tree_.max_knode_id();
  REKEY_ENSURE_MSG(nk.has_value(), "split on an empty tree");
  const NodeId s = *nk + 1;
  REKEY_ENSURE_MSG(tree_.state_at(s) == KeyTree::kUNode,
                   "split target is not a u-node");

  // The user at s descends to s's leftmost child; s becomes a k-node.
  const crypto::SymmetricKey user_key = tree_.key_cref(s);
  const MemberId member = tree_.member_at(s);
  const NodeId dest = child_of(s, 0, tree_.degree_);
  tree_.remove_node(s);
  tree_.set_unode(dest, user_key, member);

  tree_.set_knode(s, tree_.keygen_.next());
  changed_scratch_.push_back(s);
  upd.moved[s] = dest;
  // If the relocated user joined in this very batch, report its final slot.
  const auto jit = upd.joined.find(member);
  if (jit != upd.joined.end()) jit->second = dest;

  // d-1 fresh sibling slots, stored descending so pop_back yields the
  // smallest id first ("in order from low to high").
  for (unsigned j = tree_.degree_ - 1; j >= 1; --j)
    free_slots.push_back(child_of(s, j, tree_.degree_));
}

BatchUpdate Marker::run(std::span<const MemberId> joins,
                        std::span<const MemberId> leaves) {
  BatchUpdate upd;
  changed_scratch_.clear();

  for (const MemberId m : joins)
    REKEY_ENSURE_MSG(!tree_.has_member(m), "join of an existing member");
  for (const MemberId m : leaves)
    REKEY_ENSURE_MSG(tree_.has_member(m), "leave of an unknown member");

  // Bootstrap: an empty tree is (re)built directly; every k-node is new and
  // therefore changed. No final refresh — all keys are already fresh.
  if (tree_.empty()) {
    REKEY_ENSURE(leaves.empty());
    if (joins.empty()) return upd;
    unsigned height = 1;
    std::size_t capacity = tree_.degree_;
    while (capacity < joins.size()) {
      capacity *= tree_.degree_;
      ++height;
    }
    const NodeId first_leaf = first_id_at_level(height, tree_.degree_);
    tree_.grow_dense(
        std::max<std::size_t>(256, first_leaf + joins.size()));
    for (std::size_t i = 0; i < joins.size(); ++i) {
      const NodeId slot = first_leaf + i;
      place_user(joins[i], slot);
      create_ancestors(slot);
      upd.joined.emplace(joins[i], slot);
    }
    upd.changed_knodes.assign(std::move(changed_scratch_));
    changed_scratch_ = {};
    upd.max_kid = tree_.max_knode_id().value_or(0);
    tree_.rebalance();
    return upd;
  }

  const std::size_t J = joins.size();
  const std::size_t L = leaves.size();

  std::vector<NodeId> departed;
  departed.reserve(L);
  for (const MemberId m : leaves) {
    const NodeId slot = tree_.slot_of(m);
    departed.push_back(slot);
    upd.departed.emplace(m, slot);
  }
  std::sort(departed.begin(), departed.end());

  std::vector<NodeId> changed_slots;
  changed_slots.reserve(std::max(J, L));

  // Replace the min(J, L) smallest-id departed slots with joins. The new
  // member gets a fresh individual key (the old one is known to the
  // departed user).
  const std::size_t replaced = std::min(J, L);
  for (std::size_t i = 0; i < replaced; ++i) {
    const NodeId slot = departed[i];
    tree_.remove_node(slot);
    place_user(joins[i], slot);
    upd.joined.emplace(joins[i], slot);
    changed_slots.push_back(slot);
  }

  if (J < L) {
    // Remaining departures become n-nodes; childless k-nodes are pruned.
    for (std::size_t i = J; i < L; ++i) {
      const NodeId slot = departed[i];
      tree_.remove_node(slot);
      changed_slots.push_back(slot);
      if (slot != kRootId) prune_upwards(parent_of(slot, tree_.degree_));
    }
  } else if (J > L) {
    // Free n-node slots in (nk, d*nk+d], ascending; stored descending so
    // pop_back is the smallest. Only J-L slots can ever be consumed, so
    // the scan stops early instead of enumerating the whole range.
    const std::size_t need = J - L;
    std::vector<NodeId> free_slots;
    {
      const auto nk = tree_.max_knode_id();
      REKEY_ENSURE(nk.has_value());
      const NodeId lo = *nk + 1;
      const NodeId hi = *nk * tree_.degree_ + tree_.degree_;
      std::vector<NodeId> ascending;
      ascending.reserve(std::min<std::size_t>(need, 64));
      for (NodeId id = lo; id <= hi && ascending.size() < need; ++id)
        if (tree_.state_at(id) == KeyTree::kAbsent) ascending.push_back(id);
      free_slots.assign(ascending.rbegin(), ascending.rend());
    }

    for (std::size_t i = L; i < J; ++i) {
      if (free_slots.empty()) split_first_user(upd, free_slots);
      const NodeId slot = free_slots.back();
      free_slots.pop_back();
      place_user(joins[i], slot);
      create_ancestors(slot);
      upd.joined.emplace(joins[i], slot);
      changed_slots.push_back(slot);
    }
  }

  // Users relocated by splits count as changed slots too.
  for (const auto& [old_slot, new_slot] : upd.moved)
    changed_slots.push_back(new_slot);

  // Every existing k-node on a path from a changed slot to the root gets a
  // fresh key. (Ancestors pruned away no longer exist and need none.)
  // Collected with duplicates and batch-sorted: the ascending refresh
  // order below is identical to the old std::set iteration.
  for (const NodeId slot : changed_slots) {
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, tree_.degree_);
      if (tree_.state_at(id) == KeyTree::kKNode)
        changed_scratch_.push_back(id);
    }
  }
  upd.changed_knodes.assign(std::move(changed_scratch_));
  changed_scratch_ = {};
  for (const NodeId x : upd.changed_knodes) {
    // A k-node can have been marked changed (created during placement) and
    // pruned afterwards only in the J<L path, which never creates nodes;
    // so every changed k-node still exists.
    REKEY_ENSURE(tree_.state_at(x) == KeyTree::kKNode);
    tree_.key_ref(x) = tree_.keygen_.next();
  }

  upd.max_kid = tree_.max_knode_id().value_or(0);
  tree_.rebalance();
  return upd;
}

}  // namespace rekey::tree
