#include "keytree/marking.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/parallel.h"

namespace rekey::tree {

void Marker::defer_user_draw(MemberId m) {
  draws_.push_back({tree_.keygen_.counter(), 0, m, true});
  tree_.keygen_.skip(1);
}

void Marker::defer_knode_draw(NodeId id, bool live) {
  // Dead draws (creation draws overwritten by the final refresh) still
  // consume their counter index — the stream position must match the
  // fully inline draw sequence exactly.
  if (live) draws_.push_back({tree_.keygen_.counter(), id, 0, false});
  tree_.keygen_.skip(1);
}

void Marker::materialize(rekey::TaskRunner* runner, std::size_t chunks) {
  const std::size_t n = draws_.size();
  if (n == 0) return;
  auto fill_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const Draw& d = draws_[i];
      const crypto::SymmetricKey key = tree_.keygen_.key_at(d.counter);
      // Distinct draws target distinct nodes (one draw per member, one
      // refresh per k-node), so writes are disjoint across chunks.
      const NodeId id = d.is_member ? tree_.slot_of(d.member) : d.node;
      tree_.key_ref(id) = key;
    }
  };
  if (runner != nullptr && chunks > 1) {
    const std::size_t parts = std::min(chunks, n);
    runner->run(parts, [&](std::size_t c) {
      fill_range(n * c / parts, n * (c + 1) / parts);
    });
  } else {
    fill_range(0, n);
  }
  draws_.clear();
}

NodeId Marker::place_user(MemberId m, NodeId slot) {
  // Key-generator call order matters: one draw per placed user, exactly as
  // the inline implementation made them (determinism contract). The key
  // itself is deferred; the arena holds a placeholder until materialize.
  tree_.set_unode(slot, crypto::SymmetricKey{}, m);
  defer_user_draw(m);
  return slot;
}

void Marker::prune_upwards(NodeId from_parent) {
  NodeId id = from_parent;
  while (true) {
    if (tree_.state_at(id) != KeyTree::kKNode) return;
    bool has_child = false;
    for (unsigned j = 0; j < tree_.degree_ && !has_child; ++j)
      has_child = tree_.state_at(child_of(id, j, tree_.degree_)) !=
                  KeyTree::kAbsent;
    if (has_child) return;
    tree_.remove_node(id);
    if (id == kRootId) return;
    id = parent_of(id, tree_.degree_);
  }
}

void Marker::create_ancestors(NodeId slot, bool live_draws) {
  NodeId id = slot;
  while (id != kRootId) {
    id = parent_of(id, tree_.degree_);
    const std::uint8_t s = tree_.state_at(id);
    if (s != KeyTree::kAbsent) {
      REKEY_ENSURE(s == KeyTree::kKNode);
      return;  // existing ancestors are all present (invariant I1)
    }
    tree_.set_knode(id, crypto::SymmetricKey{});
    defer_knode_draw(id, live_draws);
    changed_scratch_.push_back(id);
  }
}

void Marker::split_first_user(BatchUpdate& upd,
                              std::vector<NodeId>& free_slots) {
  REKEY_ENSURE(free_slots.empty());
  const auto nk = tree_.max_knode_id();
  REKEY_ENSURE_MSG(nk.has_value(), "split on an empty tree");
  const NodeId s = *nk + 1;
  REKEY_ENSURE_MSG(tree_.state_at(s) == KeyTree::kUNode,
                   "split target is not a u-node");

  // The user at s descends to s's leftmost child; s becomes a k-node.
  // The key copy may be a placeholder when the user was placed this very
  // batch — its deferred draw is member-keyed, so materialization writes
  // the real key to the final slot either way.
  const crypto::SymmetricKey user_key = tree_.key_cref(s);
  const MemberId member = tree_.member_at(s);
  const NodeId dest = child_of(s, 0, tree_.degree_);
  tree_.remove_node(s);
  tree_.set_unode(dest, user_key, member);

  tree_.set_knode(s, crypto::SymmetricKey{});
  // s is in the changed set, so its creation draw is dead (refreshed).
  defer_knode_draw(s, false);
  changed_scratch_.push_back(s);
  upd.moved[s] = dest;
  // If the relocated user joined in this very batch, report its final slot.
  const auto jit = upd.joined.find(member);
  if (jit != upd.joined.end()) jit->second = dest;

  // d-1 fresh sibling slots, stored descending so pop_back yields the
  // smallest id first ("in order from low to high").
  for (unsigned j = tree_.degree_ - 1; j >= 1; --j)
    free_slots.push_back(child_of(s, j, tree_.degree_));
}

bool Marker::structural_pass(std::span<const MemberId> joins,
                             std::span<const MemberId> leaves,
                             BatchUpdate& upd,
                             std::vector<NodeId>& changed_slots) {
  changed_scratch_.clear();
  draws_.clear();

  for (const MemberId m : joins)
    REKEY_ENSURE_MSG(!tree_.has_member(m), "join of an existing member");
  for (const MemberId m : leaves)
    REKEY_ENSURE_MSG(tree_.has_member(m), "leave of an unknown member");

  // Bootstrap: an empty tree is (re)built directly; every k-node is new and
  // therefore changed. No final refresh — all draws are live.
  if (tree_.empty()) {
    REKEY_ENSURE(leaves.empty());
    if (joins.empty()) return true;
    unsigned height = 1;
    std::size_t capacity = tree_.degree_;
    while (capacity < joins.size()) {
      capacity *= tree_.degree_;
      ++height;
    }
    const NodeId first_leaf = first_id_at_level(height, tree_.degree_);
    tree_.grow_dense(
        std::max<std::size_t>(256, first_leaf + joins.size()));
    for (std::size_t i = 0; i < joins.size(); ++i) {
      const NodeId slot = first_leaf + i;
      place_user(joins[i], slot);
      create_ancestors(slot, /*live_draws=*/true);
      upd.joined.emplace(joins[i], slot);
    }
    upd.changed_knodes.assign(std::move(changed_scratch_));
    changed_scratch_ = {};
    upd.max_kid = tree_.max_knode_id().value_or(0);
    return true;
  }

  const std::size_t J = joins.size();
  const std::size_t L = leaves.size();

  std::vector<NodeId> departed;
  departed.reserve(L);
  for (const MemberId m : leaves) {
    const NodeId slot = tree_.slot_of(m);
    departed.push_back(slot);
    upd.departed.emplace(m, slot);
  }
  std::sort(departed.begin(), departed.end());

  changed_slots.reserve(std::max(J, L));

  // Replace the min(J, L) smallest-id departed slots with joins. The new
  // member gets a fresh individual key (the old one is known to the
  // departed user).
  const std::size_t replaced = std::min(J, L);
  for (std::size_t i = 0; i < replaced; ++i) {
    const NodeId slot = departed[i];
    tree_.remove_node(slot);
    place_user(joins[i], slot);
    upd.joined.emplace(joins[i], slot);
    changed_slots.push_back(slot);
  }

  if (J < L) {
    // Remaining departures become n-nodes; childless k-nodes are pruned.
    for (std::size_t i = J; i < L; ++i) {
      const NodeId slot = departed[i];
      tree_.remove_node(slot);
      changed_slots.push_back(slot);
      if (slot != kRootId) prune_upwards(parent_of(slot, tree_.degree_));
    }
  } else if (J > L) {
    // Free n-node slots in (nk, d*nk+d], ascending; stored descending so
    // pop_back is the smallest. Only J-L slots can ever be consumed, so
    // the scan stops early instead of enumerating the whole range.
    const std::size_t need = J - L;
    std::vector<NodeId> free_slots;
    {
      const auto nk = tree_.max_knode_id();
      REKEY_ENSURE(nk.has_value());
      const NodeId lo = *nk + 1;
      const NodeId hi = *nk * tree_.degree_ + tree_.degree_;
      std::vector<NodeId> ascending;
      ascending.reserve(std::min<std::size_t>(need, 64));
      for (NodeId id = lo; id <= hi && ascending.size() < need; ++id)
        if (tree_.state_at(id) == KeyTree::kAbsent) ascending.push_back(id);
      free_slots.assign(ascending.rbegin(), ascending.rend());
    }

    for (std::size_t i = L; i < J; ++i) {
      if (free_slots.empty()) split_first_user(upd, free_slots);
      const NodeId slot = free_slots.back();
      free_slots.pop_back();
      place_user(joins[i], slot);
      create_ancestors(slot, /*live_draws=*/false);
      upd.joined.emplace(joins[i], slot);
      changed_slots.push_back(slot);
    }
  }

  // Users relocated by splits count as changed slots too.
  for (const auto& [old_slot, new_slot] : upd.moved)
    changed_slots.push_back(new_slot);
  return false;
}

BatchUpdate Marker::run(std::span<const MemberId> joins,
                        std::span<const MemberId> leaves) {
  BatchUpdate upd;
  std::vector<NodeId> changed_slots;
  if (structural_pass(joins, leaves, upd, changed_slots)) {
    materialize(nullptr, 1);
    if (!tree_.empty()) tree_.rebalance();
    return upd;
  }

  // Every existing k-node on a path from a changed slot to the root gets a
  // fresh key. (Ancestors pruned away no longer exist and need none.)
  // Collected with duplicates and batch-sorted: the ascending refresh
  // order below is identical to the old std::set iteration.
  for (const NodeId slot : changed_slots) {
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, tree_.degree_);
      if (tree_.state_at(id) == KeyTree::kKNode)
        changed_scratch_.push_back(id);
    }
  }
  upd.changed_knodes.assign(std::move(changed_scratch_));
  changed_scratch_ = {};
  for (const NodeId x : upd.changed_knodes) {
    // A k-node can have been marked changed (created during placement) and
    // pruned afterwards only in the J<L path, which never creates nodes;
    // so every changed k-node still exists.
    REKEY_ENSURE(tree_.state_at(x) == KeyTree::kKNode);
    defer_knode_draw(x, /*live=*/true);
  }
  materialize(nullptr, 1);

  upd.max_kid = tree_.max_knode_id().value_or(0);
  tree_.rebalance();
  return upd;
}

BatchUpdate Marker::run_sharded(std::span<const MemberId> joins,
                                std::span<const MemberId> leaves,
                                const ShardPlan& plan,
                                rekey::TaskRunner& runner,
                                ShardBatchStats* stats) {
  REKEY_ENSURE_MSG(plan.degree == tree_.degree_,
                   "shard plan degree does not match the tree");
  BatchUpdate upd;
  std::vector<NodeId> changed_slots;
  if (structural_pass(joins, leaves, upd, changed_slots)) {
    // Bootstrap builds the whole changed set serially; only the key
    // materialization (the HMAC-heavy part) fans out.
    materialize(&runner, plan.shards);
    if (!tree_.empty()) tree_.rebalance();
    if (stats != nullptr) {
      stats->shard_changed.assign(plan.shards, 0);
      stats->aggregator_changed = 0;
      for (std::size_t i = 0; i < upd.changed_knodes.size(); ++i) {
        const unsigned s = plan.shard_of(upd.changed_knodes[i]);
        if (s == ShardPlan::kAggregator)
          ++stats->aggregator_changed;
        else
          ++stats->shard_changed[s];
      }
    }
    return upd;
  }

  const unsigned S = plan.shards;
  // Bin changed slots by owning shard; slots above the cut (tiny trees)
  // go to the aggregator task's bin.
  std::vector<std::vector<NodeId>> slot_bins(S + 1);
  for (const NodeId slot : changed_slots) {
    const unsigned s = plan.shard_of(slot);
    slot_bins[s == ShardPlan::kAggregator ? S : s].push_back(slot);
  }

  // Per-shard path walks. A slot's ancestors at or below the cut stay in
  // the slot's own shard (they share its cut-level ancestor), so each
  // task writes only its own below-cut vector; above-cut ancestors go to
  // the task's private aggregator contribution. Created k-nodes need no
  // separate seeding: every one is an ancestor of some changed slot, so
  // the walks rediscover them, exactly as the serial scratch collection
  // does after sort+unique.
  std::vector<std::vector<NodeId>> shard_sets(S);
  std::vector<std::vector<NodeId>> agg_contrib(S + 1);
  runner.run(S + 1, [&](std::size_t t) {
    std::vector<NodeId>& above = agg_contrib[t];
    std::vector<NodeId>* below = t < S ? &shard_sets[t] : nullptr;
    for (const NodeId slot : slot_bins[t]) {
      NodeId id = slot;
      while (id != kRootId) {
        id = parent_of(id, tree_.degree_);
        if (tree_.state_at(id) != KeyTree::kKNode) continue;
        if (below != nullptr && id >= plan.first_cut_id)
          below->push_back(id);
        else
          above.push_back(id);
      }
    }
    if (below != nullptr) {
      std::sort(below->begin(), below->end());
      below->erase(std::unique(below->begin(), below->end()), below->end());
    }
  });

  // Aggregator set: the region above the cut is tiny (< d^cut_level
  // * d/(d-1) ids), so a serial sort+unique of the contributions is noise.
  std::vector<NodeId> aggregator;
  for (const std::vector<NodeId>& contrib : agg_contrib)
    aggregator.insert(aggregator.end(), contrib.begin(), contrib.end());
  std::sort(aggregator.begin(), aggregator.end());
  aggregator.erase(std::unique(aggregator.begin(), aggregator.end()),
                   aggregator.end());

  if (stats != nullptr) {
    stats->shard_changed.assign(S, 0);
    for (unsigned s = 0; s < S; ++s)
      stats->shard_changed[s] = shard_sets[s].size();
    stats->aggregator_changed = aggregator.size();
    check_shard_partition(plan, shard_sets, aggregator);
  }

  // Deterministic merge: aggregator ids all precede the first cut id, and
  // the per-shard sets are pairwise disjoint, so the merged vector equals
  // the serial sort+unique of the full scratch regardless of the order
  // the shard tasks completed in.
  std::vector<std::vector<NodeId>> parts;
  parts.reserve(S + 1);
  parts.push_back(std::move(aggregator));
  for (std::vector<NodeId>& set : shard_sets) parts.push_back(std::move(set));
  upd.changed_knodes.assign_sorted(merge_disjoint_sorted(std::move(parts)));

  for (const NodeId x : upd.changed_knodes) {
    REKEY_ENSURE(tree_.state_at(x) == KeyTree::kKNode);
    defer_knode_draw(x, /*live=*/true);
  }
  materialize(&runner, plan.shards);

  upd.max_kid = tree_.max_knode_id().value_or(0);
  tree_.rebalance();
  return upd;
}

}  // namespace rekey::tree
