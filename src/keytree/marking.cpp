#include "keytree/marking.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::tree {

NodeId Marker::place_user(MemberId m, NodeId slot) {
  REKEY_ENSURE(tree_.nodes_.count(slot) == 0);
  Node u;
  u.kind = NodeKind::UNode;
  u.key = tree_.keygen_.next();
  u.member = m;
  tree_.nodes_.emplace(slot, u);
  tree_.unode_ids_.insert(slot);
  tree_.slot_of_member_.emplace(m, slot);
  return slot;
}

void Marker::remove_user_slot(NodeId slot) {
  const auto it = tree_.nodes_.find(slot);
  REKEY_ENSURE(it != tree_.nodes_.end() &&
               it->second.kind == NodeKind::UNode);
  tree_.slot_of_member_.erase(it->second.member);
  tree_.unode_ids_.erase(slot);
  tree_.nodes_.erase(it);
}

void Marker::prune_upwards(NodeId from_parent) {
  NodeId id = from_parent;
  while (true) {
    const auto it = tree_.nodes_.find(id);
    if (it == tree_.nodes_.end() || it->second.kind != NodeKind::KNode) return;
    bool has_child = false;
    for (unsigned j = 0; j < tree_.degree_ && !has_child; ++j)
      has_child = tree_.nodes_.count(child_of(id, j, tree_.degree_)) != 0;
    if (has_child) return;
    tree_.knode_ids_.erase(id);
    tree_.nodes_.erase(it);
    if (id == kRootId) return;
    id = parent_of(id, tree_.degree_);
  }
}

void Marker::create_ancestors(NodeId slot, BatchUpdate& upd) {
  NodeId id = slot;
  while (id != kRootId) {
    id = parent_of(id, tree_.degree_);
    if (tree_.nodes_.count(id)) {
      REKEY_ENSURE(tree_.nodes_.at(id).kind == NodeKind::KNode);
      return;  // existing ancestors are all present (invariant I1)
    }
    Node k;
    k.kind = NodeKind::KNode;
    k.key = tree_.keygen_.next();
    tree_.nodes_.emplace(id, k);
    tree_.knode_ids_.insert(id);
    upd.changed_knodes.insert(id);
  }
}

void Marker::split_first_user(BatchUpdate& upd,
                              std::vector<NodeId>& free_slots) {
  REKEY_ENSURE(free_slots.empty());
  const auto nk = tree_.max_knode_id();
  REKEY_ENSURE_MSG(nk.has_value(), "split on an empty tree");
  const NodeId s = *nk + 1;
  const auto it = tree_.nodes_.find(s);
  REKEY_ENSURE_MSG(it != tree_.nodes_.end() &&
                       it->second.kind == NodeKind::UNode,
                   "split target is not a u-node");

  // The user at s descends to s's leftmost child; s becomes a k-node.
  const Node user = it->second;
  const NodeId dest = child_of(s, 0, tree_.degree_);
  tree_.unode_ids_.erase(s);
  tree_.nodes_.erase(it);
  tree_.nodes_.emplace(dest, user);
  tree_.unode_ids_.insert(dest);
  tree_.slot_of_member_[user.member] = dest;

  Node k;
  k.kind = NodeKind::KNode;
  k.key = tree_.keygen_.next();
  tree_.nodes_.emplace(s, k);
  tree_.knode_ids_.insert(s);
  upd.changed_knodes.insert(s);
  upd.moved[s] = dest;
  // If the relocated user joined in this very batch, report its final slot.
  const auto jit = upd.joined.find(user.member);
  if (jit != upd.joined.end()) jit->second = dest;

  // d-1 fresh sibling slots, stored descending so pop_back yields the
  // smallest id first ("in order from low to high").
  for (unsigned j = tree_.degree_ - 1; j >= 1; --j)
    free_slots.push_back(child_of(s, j, tree_.degree_));
}

BatchUpdate Marker::run(std::span<const MemberId> joins,
                        std::span<const MemberId> leaves) {
  BatchUpdate upd;

  for (const MemberId m : joins)
    REKEY_ENSURE_MSG(!tree_.has_member(m), "join of an existing member");
  for (const MemberId m : leaves)
    REKEY_ENSURE_MSG(tree_.has_member(m), "leave of an unknown member");

  // Bootstrap: an empty tree is (re)built directly; every k-node is new and
  // therefore changed.
  if (tree_.empty()) {
    REKEY_ENSURE(leaves.empty());
    if (joins.empty()) return upd;
    unsigned height = 1;
    std::size_t capacity = tree_.degree_;
    while (capacity < joins.size()) {
      capacity *= tree_.degree_;
      ++height;
    }
    const NodeId first_leaf = first_id_at_level(height, tree_.degree_);
    for (std::size_t i = 0; i < joins.size(); ++i) {
      const NodeId slot = first_leaf + i;
      place_user(joins[i], slot);
      create_ancestors(slot, upd);
      upd.joined.emplace(joins[i], slot);
    }
    upd.max_kid = tree_.max_knode_id().value_or(0);
    return upd;
  }

  const std::size_t J = joins.size();
  const std::size_t L = leaves.size();

  std::vector<NodeId> departed;
  departed.reserve(L);
  for (const MemberId m : leaves) {
    const NodeId slot = tree_.slot_of(m);
    departed.push_back(slot);
    upd.departed.emplace(m, slot);
  }
  std::sort(departed.begin(), departed.end());

  std::vector<NodeId> changed_slots;

  // Replace the min(J, L) smallest-id departed slots with joins. The new
  // member gets a fresh individual key (the old one is known to the
  // departed user).
  const std::size_t replaced = std::min(J, L);
  for (std::size_t i = 0; i < replaced; ++i) {
    const NodeId slot = departed[i];
    remove_user_slot(slot);
    place_user(joins[i], slot);
    upd.joined.emplace(joins[i], slot);
    changed_slots.push_back(slot);
  }

  if (J < L) {
    // Remaining departures become n-nodes; childless k-nodes are pruned.
    for (std::size_t i = J; i < L; ++i) {
      const NodeId slot = departed[i];
      remove_user_slot(slot);
      changed_slots.push_back(slot);
      if (slot != kRootId) prune_upwards(parent_of(slot, tree_.degree_));
    }
  } else if (J > L) {
    // Free n-node slots in (nk, d*nk+d], ascending; stored descending so
    // pop_back is the smallest.
    std::vector<NodeId> free_slots;
    {
      const auto nk = tree_.max_knode_id();
      REKEY_ENSURE(nk.has_value());
      const NodeId lo = *nk + 1;
      const NodeId hi = *nk * tree_.degree_ + tree_.degree_;
      std::vector<NodeId> ascending;
      NodeId next = lo;
      for (auto it = tree_.unode_ids_.lower_bound(lo);
           it != tree_.unode_ids_.end() && *it <= hi; ++it) {
        for (NodeId id = next; id < *it; ++id) ascending.push_back(id);
        next = *it + 1;
      }
      for (NodeId id = next; id <= hi; ++id) ascending.push_back(id);
      free_slots.assign(ascending.rbegin(), ascending.rend());
    }

    for (std::size_t i = L; i < J; ++i) {
      if (free_slots.empty()) split_first_user(upd, free_slots);
      const NodeId slot = free_slots.back();
      free_slots.pop_back();
      place_user(joins[i], slot);
      create_ancestors(slot, upd);
      upd.joined.emplace(joins[i], slot);
      changed_slots.push_back(slot);
    }
  }

  // Users relocated by splits count as changed slots too.
  for (const auto& [old_slot, new_slot] : upd.moved)
    changed_slots.push_back(new_slot);

  // Every existing k-node on a path from a changed slot to the root gets a
  // fresh key. (Ancestors pruned away no longer exist and need none.)
  for (const NodeId slot : changed_slots) {
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, tree_.degree_);
      const auto it = tree_.nodes_.find(id);
      if (it != tree_.nodes_.end() && it->second.kind == NodeKind::KNode)
        upd.changed_knodes.insert(id);
    }
  }
  for (const NodeId x : upd.changed_knodes) {
    const auto it = tree_.nodes_.find(x);
    // A k-node can have been marked changed (created during placement) and
    // pruned afterwards only in the J<L path, which never creates nodes;
    // so every changed k-node still exists.
    REKEY_ENSURE(it != tree_.nodes_.end() &&
                 it->second.kind == NodeKind::KNode);
    it->second.key = tree_.keygen_.next();
  }

  upd.max_kid = tree_.max_knode_id().value_or(0);
  return upd;
}

}  // namespace rekey::tree
