#include "keytree/user_view.h"

#include "common/ensure.h"

namespace rekey::tree {

UserKeyView::UserKeyView(
    MemberId member, NodeId slot, unsigned degree,
    std::span<const std::pair<NodeId, crypto::SymmetricKey>> keys)
    : member_(member), slot_(slot), degree_(degree) {
  for (const auto& [id, key] : keys) keys_.emplace(id, key);
  REKEY_ENSURE_MSG(keys_.count(slot_) == 1,
                   "view must include the individual key");
}

void UserKeyView::update_slot(NodeId max_kid) {
  const auto derived = derive_new_user_id(slot_, max_kid, degree_);
  REKEY_ENSURE_MSG(derived.has_value(), "Theorem 4.2 id derivation failed");
  if (*derived == slot_) return;
  // The individual key travels with the user to its new slot; the old slot
  // is now a k-node whose fresh key arrives via the rekey message.
  const auto it = keys_.find(slot_);
  REKEY_ENSURE(it != keys_.end());
  const crypto::SymmetricKey individual = it->second;
  keys_.erase(it);
  keys_.emplace(*derived, individual);
  slot_ = *derived;
}

std::size_t UserKeyView::apply(std::uint32_t msg_id, NodeId max_kid,
                               std::span<const Encryption> encryptions) {
  update_slot(max_kid);
  std::size_t learned = 0;
  // Encryptions arrive in bottom-up generation order, so a single pass
  // suffices: a path key learned from one entry unlocks the next one up.
  for (const Encryption& e : encryptions) {
    // Only ancestors of our slot matter; everything else is other users'.
    if (!is_ancestor(e.enc_id, slot_, degree_)) continue;
    const auto kit = keys_.find(e.enc_id);
    if (kit == keys_.end()) continue;
    const auto plain =
        crypto::decrypt_key(kit->second, e.payload, msg_id, e.enc_id);
    if (!plain.has_value()) continue;  // stale key or corrupted entry
    auto [tit, inserted] = keys_.insert_or_assign(e.target_id, *plain);
    (void)tit;
    ++learned;
    (void)inserted;
  }
  return learned;
}

std::optional<crypto::SymmetricKey> UserKeyView::key_at(NodeId id) const {
  const auto it = keys_.find(id);
  if (it == keys_.end()) return std::nullopt;
  return it->second;
}

std::optional<crypto::SymmetricKey> UserKeyView::group_key() const {
  return key_at(kRootId);
}

}  // namespace rekey::tree
