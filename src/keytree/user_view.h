// A group member's view of the key tree: the keys it holds (its individual
// key plus the k-node keys on its path to the root), its current user id,
// and the logic to apply a rekey message.
//
// The member re-derives its id from the maxKID field of any ENC packet
// (Theorem 4.2) and decrypts, bottom-up, every encryption whose encrypting
// key it holds. The per-encryption integrity tag makes stale-key decryption
// attempts fail cleanly, so the member can simply offer every encryption in
// its ENC packet to the view.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>

#include "keytree/rekey_subtree.h"

namespace rekey::tree {

class UserKeyView {
 public:
  // State handed over by the registration component: the member's slot and
  // individual key, plus the current keys on its path to the root.
  UserKeyView(MemberId member, NodeId slot, unsigned degree,
              std::span<const std::pair<NodeId, crypto::SymmetricKey>> keys);

  MemberId member() const { return member_; }
  NodeId id() const { return slot_; }

  // Re-derive this user's id from the advertised maximum k-node id
  // (Theorem 4.2). Safe to call repeatedly; moves the individual key when
  // the slot changed because of splits.
  void update_slot(NodeId max_kid);

  // Apply the encryptions of a rekey message (typically the contents of
  // this user's ENC or USR packet). Returns the number of path keys newly
  // learned. Encryptions that do not concern this user, or that were
  // produced under keys this user does not hold, are ignored.
  std::size_t apply(std::uint32_t msg_id, NodeId max_kid,
                    std::span<const Encryption> encryptions);

  // The key this view holds for a node, if any.
  std::optional<crypto::SymmetricKey> key_at(NodeId id) const;

  // The group key (root key) as currently known.
  std::optional<crypto::SymmetricKey> group_key() const;

  std::size_t num_keys() const { return keys_.size(); }

  // Read-only iteration over the held keys (snapshots, tests).
  const std::map<NodeId, crypto::SymmetricKey>& keys() const {
    return keys_;
  }

 private:
  MemberId member_;
  NodeId slot_;
  unsigned degree_;
  std::map<NodeId, crypto::SymmetricKey> keys_;
};

}  // namespace rekey::tree
