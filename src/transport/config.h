// Protocol configuration for the rekey transport (server and users).
//
// Defaults follow the paper's evaluation: k=10, 1027-byte ENC packets,
// 10 packets/s send rate, NACK target numNACK=20.
#pragma once

#include <cstddef>

namespace rekey::transport {

struct ProtocolConfig {
  // FEC block size k (paper §5). Limited to 127 by the wire format.
  std::size_t block_size = 10;
  // Initial proactivity factor rho; parities per block = ceil((rho-1)*k).
  double initial_rho = 1.0;
  // Run the AdjustRho adaptation (paper §6.2) after round 1 of each
  // message. When false, rho stays fixed at initial_rho.
  bool adaptive_rho = true;
  // Target number of NACKs (numNACK) and its upper bound (maxNACK).
  int num_nack_target = 20;
  int max_nack = 100;
  // Adapt numNACK from deadline misses (paper §6.2 heuristics). Only
  // meaningful when deadline_rounds > 0.
  bool adapt_num_nack = false;

  // Multicast rounds before switching to unicast; 0 = multicast only
  // (rounds repeat until every user recovers).
  int max_multicast_rounds = 0;
  // Optional early switch: unicast as soon as the USR bytes owed are no
  // larger than the parity bytes the next multicast round would send
  // (paper §7.1).
  bool early_unicast_by_size = false;
  // Initial number of duplicate USR packets per straggler (Fig 22).
  int usr_initial_duplicates = 2;
  // Unicast waves before the server gives up on the stragglers that are
  // still unreachable (0 = retry forever). Under a persistent outage the
  // escalating-duplicates loop would otherwise spin without bound; with a
  // cap, every user ends a message either recovered or explicitly
  // accounted as given up (MessageMetrics::gave_up_users).
  int unicast_max_waves = 0;

  // Soft real-time deadline in rounds (0 = no deadline accounting).
  int deadline_rounds = 0;

  // Wire and pacing parameters.
  std::size_t packet_size = 1027;
  double send_interval_ms = 100.0;  // 10 packets/s
  double round_slack_ms = 50.0;     // timeout slack beyond max RTT

  // Interleave packets across blocks when sending (paper §5.1).
  bool interleave = true;

  // Wide (v2) slot ids: ENC/USR packets carry 32-bit maxKID/frm/to fields
  // instead of 16-bit ones. Must match what the receivers negotiated —
  // the wire daemon sets this from the Sub/SubAck version exchange. Off by
  // default so every existing narrow byte stream stays bit-identical.
  bool wide_slots = false;

  // Safety cap for multicast-only mode.
  int max_rounds_cap = 200;

  void validate() const;  // throws EnsureError on nonsense
};

}  // namespace rekey::transport
