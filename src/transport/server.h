// The key server's rekey transport (paper Fig 2, Fig 26, §6).
//
// RhoController carries the adaptive state that persists *across* rekey
// messages: the proactivity factor rho (kept internally as the integer
// number of proactive parities per block, so ceil((rho-1)k) is exact) and
// the NACK target numNACK with its deadline-driven adaptation.
//
// ServerTransport owns one rekey message in flight: ENC slots with block
// ids assigned, per-block RSE state, per-round parity generation from the
// amax[] NACK aggregate, the straggler set R, and USR packet construction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "fec/block.h"
#include "fec/rse.h"
#include "packet/assign.h"
#include "transport/config.h"

namespace rekey::transport {

class RhoController {
 public:
  RhoController(const ProtocolConfig& config, std::uint64_t seed);

  // Proactive parities per block = ceil((rho - 1) * k).
  int proactive_parities() const { return proactive_parities_; }
  double rho() const;
  int num_nack_target() const { return num_nack_; }

  // AdjustRho (paper Fig 11): A holds, per received NACK, the largest
  // parity count that user requested. Called at the end of round 1.
  // `degraded` marks feedback gathered while the network was in a known
  // pathological state (a blackout window overlapped the round): NACKs
  // were likely swallowed wholesale, so silence must not trigger the
  // probabilistic back-off, and whatever NACKs did get through must not
  // escalate rho by more than one parity — otherwise a single outage
  // ratchets rho to the code-space cap and every later message pays for
  // it in proactive bandwidth.
  void on_round1_feedback(std::vector<std::uint8_t> A, bool degraded = false);

  // numNACK heuristics (paper §6.2): called once per completed message
  // when deadline accounting is enabled.
  void on_deadline_report(std::size_t misses);

  // Snapshot/restore of the adaptive state (replicated-server failover).
  // A restored controller's future decision stream — including the
  // probabilistic rho back-off draws — is bit-identical to the donor's.
  struct State {
    int proactive_parities = 0;
    int num_nack = 0;
    std::array<std::uint64_t, 4> rng{};
  };
  State state() const;
  // False when the state is out of range for this config (negative or
  // cap-exceeding parity count, degenerate RNG state).
  bool restore(const State& s);

 private:
  // Largest proactive-parity count that still leaves at least k reactive
  // parity indices free in the RSE code's 256-index space.
  int parity_cap() const;

  ProtocolConfig config_;
  int proactive_parities_;
  int num_nack_;
  Rng rng_;
};

class ServerTransport {
 public:
  // `assignment` is consumed; `payload` must outlive the transport (USR
  // packets are built from it). msg_id is the 6-bit message sequence.
  ServerTransport(const ProtocolConfig& config,
                  const tree::RekeyPayload& payload,
                  packet::Assignment assignment, int proactive_parities,
                  std::uint8_t msg_id);

  std::size_t num_blocks() const { return partition_.num_blocks(); }
  std::size_t num_slots() const { return partition_.num_slots(); }
  std::size_t enc_packets() const { return num_enc_packets_; }

  // Serialized packets for a round, in send order. Round 1: all ENC slots
  // plus the proactive parities; later rounds: amax[b] fresh parities per
  // block (and amax is reset).
  std::vector<Bytes> round_packets(int round);

  // Zero-copy walk of the same send order, for the wire path (the UDP
  // daemon hands frames to sendmmsg without materializing a per-round
  // vector of slot copies). `stable` receives wires whose storage lives
  // as long as this transport (the serialized ENC slots); `fresh`
  // receives newly encoded parities by value. Exactly one of
  // round_packets / for_each_round_wire may drive a given round — both
  // consume the round's amax aggregate.
  void for_each_round_wire(int round,
                           const std::function<void(const Bytes&)>& stable,
                           const std::function<void(Bytes&&)>& fresh);

  // A NACK from topology-level user `user`; entries as received.
  void accept_nack(std::size_t user,
                   const std::vector<packet::NackEntry>& entries);

  // Per-NACK maxima collected this round (consumed by RhoController).
  std::vector<std::uint8_t> take_feedback();

  // Users that have NACKed at any point (the unicast straggler set R).
  const std::set<std::size_t>& straggler_set() const { return nackers_; }
  bool knows_user(std::size_t user) const { return nackers_.count(user); }

  // Parity packets the next multicast round would send (for the §7.1
  // early-unicast size comparison).
  std::size_t pending_parities() const;

  // Unicast USR packet for the user at (post-batch) slot id `new_id`.
  packet::UsrPacket usr_for(std::uint32_t new_id) const;

  // Wire bytes (incl. UDP/IP) of usr_for(new_id): the single source of
  // truth for both the §7.1 early-unicast switch estimate and the unicast
  // phase's bandwidth accounting, so the two can never disagree. Users
  // with no pending keys cost a bare header (usr_for would refuse them).
  std::size_t usr_wire_bytes(std::uint32_t new_id) const;

  // Eager-mode interface (see transport/eager.h): one fresh parity for a
  // block, and the number of shards (ENC slots + parities) produced for it
  // so far — the in-flight ledger used for NACK deduplication.
  Bytes fresh_parity(std::size_t block);
  std::size_t shards_scheduled(std::size_t block) const;

 private:
  Bytes make_parity(std::size_t block, int parity_index) const;

  const ProtocolConfig& config_;
  const tree::RekeyPayload& payload_;
  std::uint8_t msg_id_;
  std::size_t num_enc_packets_;
  fec::BlockPartition partition_;
  fec::RseCoder coder_;
  int proactive_parities_;

  // Serialized ENC slot wires, indexed block * k + seq.
  std::vector<Bytes> slot_wires_;
  // FEC input regions per block (the covered bytes of each slot).
  std::vector<std::vector<Bytes>> block_regions_;
  std::vector<int> next_parity_;
  std::vector<std::uint8_t> amax_;
  std::vector<std::uint8_t> feedback_;  // A of the current round
  std::set<std::size_t> feedback_users_;  // dedups A against redelivery
  std::set<std::size_t> nackers_;
};

}  // namespace rekey::transport
