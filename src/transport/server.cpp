#include "transport/server.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"
#include "common/obs.h"

namespace rekey::transport {

RhoController::RhoController(const ProtocolConfig& config, std::uint64_t seed)
    : config_(config),
      proactive_parities_(static_cast<int>(std::ceil(
          (config.initial_rho - 1.0) * static_cast<double>(config.block_size) -
          1e-9))),
      num_nack_(config.num_nack_target),
      rng_(seed) {
  config.validate();
  if (proactive_parities_ < 0) proactive_parities_ = 0;
  // A huge initial_rho must not exceed the code space: without this clamp
  // the round-1 parity sequence numbers would pass 255 and truncate on the
  // wire (the AdjustRho path below has always been capped; the constructor
  // path was not).
  proactive_parities_ = std::min(proactive_parities_, parity_cap());
}

int RhoController::parity_cap() const {
  return std::max(1, 256 - 2 * static_cast<int>(config_.block_size));
}

double RhoController::rho() const {
  return 1.0 + static_cast<double>(proactive_parities_) /
                   static_cast<double>(config_.block_size);
}

void RhoController::on_round1_feedback(std::vector<std::uint8_t> A,
                                       bool degraded) {
  const int n = static_cast<int>(A.size());
  const double rho_before = rho();
  if (degraded && n < num_nack_) {
    // Blackout round with fewer NACKs than targeted: the silence is the
    // outage's, not the code's — skip the back-off entirely.
    obs::MetricsRegistry::global().counter("transport.rho_clamped").add();
    if (obs::trace_enabled())
      obs::Trace::emit("rho_clamp", {{"nacks", n},
                                     {"num_nack_target", num_nack_},
                                     {"rho", rho_before}});
    return;
  }
  if (n > num_nack_) {
    // More NACKs than targeted: raise rho so that the (numNACK+1)-th
    // neediest user of this round would have been satisfied proactively.
    std::sort(A.begin(), A.end(), std::greater<std::uint8_t>());
    int step = A[static_cast<std::size_t>(num_nack_)];
    if (degraded && step > 1) {
      // Escalation clamp: a blackout distorts both how many NACKs arrive
      // and what they ask for; creep up one parity at most per message.
      step = 1;
      obs::MetricsRegistry::global().counter("transport.rho_clamped").add();
      if (obs::trace_enabled())
        obs::Trace::emit("rho_clamp", {{"nacks", n},
                                       {"num_nack_target", num_nack_},
                                       {"rho", rho_before}});
    }
    proactive_parities_ += step;
    // Keep at least k reactive parity indices in the code's index space.
    proactive_parities_ = std::min(proactive_parities_, parity_cap());
  } else if (n < num_nack_ && num_nack_ > 0) {
    // Fewer than targeted: rho may be too high; back off one parity with
    // probability (numNACK - 2*|A|) / numNACK.
    const double prob =
        std::max(0.0, static_cast<double>(num_nack_ - 2 * n) /
                          static_cast<double>(num_nack_));
    if (rng_.next_bool(prob))
      proactive_parities_ = std::max(0, proactive_parities_ - 1);
  }
  if (obs::trace_enabled())
    obs::Trace::emit("adjust_rho", {{"nacks", n},
                                    {"num_nack_target", num_nack_},
                                    {"rho_before", rho_before},
                                    {"rho_after", rho()}});
}

void RhoController::on_deadline_report(std::size_t misses) {
  if (misses == 0) {
    num_nack_ = std::min(num_nack_ + 1, config_.max_nack);
  } else {
    num_nack_ = std::max(num_nack_ - static_cast<int>(misses), 0);
  }
}

RhoController::State RhoController::state() const {
  return State{proactive_parities_, num_nack_, rng_.state()};
}

bool RhoController::restore(const State& s) {
  if (s.proactive_parities < 0 || s.proactive_parities > parity_cap())
    return false;
  if (s.num_nack < 0) return false;
  if (!rng_.set_state(s.rng)) return false;
  proactive_parities_ = s.proactive_parities;
  num_nack_ = s.num_nack;
  return true;
}

ServerTransport::ServerTransport(const ProtocolConfig& config,
                                 const tree::RekeyPayload& payload,
                                 packet::Assignment assignment,
                                 int proactive_parities, std::uint8_t msg_id)
    : config_(config),
      payload_(payload),
      msg_id_(msg_id),
      num_enc_packets_(assignment.packets.size()),
      partition_(assignment.packets.empty() ? 1 : assignment.packets.size(),
                 config.block_size),
      coder_(static_cast<int>(config.block_size)),
      proactive_parities_(proactive_parities) {
  REKEY_ENSURE_MSG(!assignment.packets.empty(),
                   "rekey message with no ENC packets");
  REKEY_ENSURE(proactive_parities >= 0);
  // Round 1 sends parity indices [0, proactive_parities) per block; more
  // than the code offers cannot be represented on the wire.
  REKEY_ENSURE_MSG(proactive_parities <= coder_.max_parity(),
                   "proactive parities exceed the RSE code space");

  // Assign block ids / sequence numbers and serialize every slot.
  slot_wires_.resize(partition_.num_slots());
  block_regions_.resize(partition_.num_blocks());
  for (std::size_t b = 0; b < partition_.num_blocks(); ++b) {
    block_regions_[b].resize(config.block_size);
    for (std::size_t s = 0; s < config.block_size; ++s) {
      const fec::BlockSlot slot = partition_.slot(b, s);
      packet::EncPacket pkt = assignment.packets[slot.packet];
      pkt.block_id = static_cast<std::uint16_t>(b);
      pkt.seq = static_cast<std::uint8_t>(s);
      pkt.duplicate = slot.duplicate;
      Bytes wire = pkt.serialize(config.packet_size, config.wide_slots);
      block_regions_[b][s].assign(wire.begin() + packet::kFecOffset,
                                  wire.end());
      slot_wires_[b * config.block_size + s] = std::move(wire);
    }
  }
  next_parity_.assign(partition_.num_blocks(), 0);
  amax_.assign(partition_.num_blocks(), 0);
}

Bytes ServerTransport::make_parity(std::size_t block, int parity_index) const {
  // parity_seq travels as a uint8_t; an index outside the code space would
  // truncate silently and make users decode with a wrong parity index.
  REKEY_ENSURE_MSG(parity_index >= 0 && parity_index < coder_.max_parity(),
                   "parity sequence number outside the RSE code space");
  packet::ParityPacket p;
  p.msg_id = msg_id_;
  p.block_id = static_cast<std::uint16_t>(block);
  p.parity_seq = static_cast<std::uint8_t>(parity_index);
  // Encode straight into the packet's FEC field: one vectorized region
  // pass per data slot over the whole covered-byte buffer.
  p.fec.resize(block_regions_[block][0].size());
  coder_.encode_one_into(block_regions_[block], parity_index, p.fec);
  return p.serialize();
}

void ServerTransport::for_each_round_wire(
    int round, const std::function<void(const Bytes&)>& stable,
    const std::function<void(Bytes&&)>& fresh) {
  const std::size_t nb = partition_.num_blocks();
  const std::size_t k = config_.block_size;

  if (round == 1) {
    // ENC slots, interleaved across blocks (or block-sequential).
    const auto order = config_.interleave ? partition_.interleaved_order()
                                          : partition_.sequential_order();
    for (const fec::BlockSlot& s : order)
      stable(slot_wires_[s.block * k + s.seq]);
    // Proactive parities, interleaved the same way.
    std::size_t parities = 0;
    for (int p = 0; p < proactive_parities_; ++p)
      for (std::size_t b = 0; b < nb; ++b, ++parities)
        fresh(make_parity(b, next_parity_[b]++));
    if (obs::trace_enabled())
      obs::Trace::emit("server_round",
                       {{"msg", static_cast<int>(msg_id_)},
                        {"round", round},
                        {"enc_slots", static_cast<std::int64_t>(order.size())},
                        {"parities", static_cast<std::int64_t>(parities)},
                        {"amax_total", 0}});
    return;
  }

  // Reactive round: amax[b] fresh parities per block.
  const std::size_t amax_total = pending_parities();
  std::size_t parities = 0;
  int max_amax = 0;
  for (std::size_t b = 0; b < nb; ++b)
    max_amax = std::max(max_amax, static_cast<int>(amax_[b]));
  for (int p = 0; p < max_amax; ++p) {
    for (std::size_t b = 0; b < nb; ++b) {
      if (static_cast<int>(amax_[b]) <= p) continue;
      // Fresh parity indices; wrap around if a pathological run exhausts
      // the code (re-sent parities are still useful to whoever lost them).
      if (next_parity_[b] >= coder_.max_parity()) next_parity_[b] = 0;
      fresh(make_parity(b, next_parity_[b]++));
      ++parities;
    }
  }
  std::fill(amax_.begin(), amax_.end(), 0);
  if (obs::trace_enabled())
    obs::Trace::emit("server_round",
                     {{"msg", static_cast<int>(msg_id_)},
                      {"round", round},
                      {"enc_slots", 0},
                      {"parities", static_cast<std::int64_t>(parities)},
                      {"amax_total", static_cast<std::int64_t>(amax_total)}});
}

std::vector<Bytes> ServerTransport::round_packets(int round) {
  std::vector<Bytes> out;
  if (round == 1)
    out.reserve(partition_.num_slots() +
                partition_.num_blocks() *
                    static_cast<std::size_t>(proactive_parities_));
  for_each_round_wire(
      round, [&out](const Bytes& w) { out.push_back(w); },
      [&out](Bytes&& w) { out.push_back(std::move(w)); });
  return out;
}

void ServerTransport::accept_nack(
    std::size_t user, const std::vector<packet::NackEntry>& entries) {
  REKEY_ENSURE(!entries.empty());
  std::uint8_t worst = 0;
  for (const packet::NackEntry& e : entries) {
    // A user whose block estimate is a range may request parities for
    // block ids beyond the message's real block count (the Appendix-D
    // upper bound assumes one user per packet); those are ignored.
    if (e.block_id < partition_.num_blocks())
      amax_[e.block_id] = std::max(amax_[e.block_id], e.parities_needed);
    worst = std::max(worst, e.parities_needed);
  }
  // Idempotent per round: duplicated NACKs (network duplication, storm
  // amplification) fold into the amax maxima above but contribute one
  // AdjustRho feedback entry per user — a storm must not read as "many
  // users are short of parities" and ratchet rho.
  if (feedback_users_.insert(user).second) feedback_.push_back(worst);
  nackers_.insert(user);
}

std::vector<std::uint8_t> ServerTransport::take_feedback() {
  std::vector<std::uint8_t> out;
  out.swap(feedback_);
  feedback_users_.clear();
  return out;
}

std::size_t ServerTransport::pending_parities() const {
  std::size_t total = 0;
  for (const std::uint8_t a : amax_) total += a;
  return total;
}

Bytes ServerTransport::fresh_parity(std::size_t block) {
  REKEY_ENSURE(block < partition_.num_blocks());
  if (next_parity_[block] >= coder_.max_parity()) next_parity_[block] = 0;
  return make_parity(block, next_parity_[block]++);
}

std::size_t ServerTransport::shards_scheduled(std::size_t block) const {
  REKEY_ENSURE(block < partition_.num_blocks());
  return config_.block_size + static_cast<std::size_t>(next_parity_[block]);
}

std::size_t ServerTransport::usr_wire_bytes(std::uint32_t new_id) const {
  const auto needs = payload_.user_needs.needs_of(new_id);
  const std::size_t header = config_.wide_slots ? packet::kUsrHeaderSizeWide
                                                : packet::kUsrHeaderSize;
  return header + packet::kEntrySize * needs.size() +
         packet::kUdpIpOverheadBytes;
}

packet::UsrPacket ServerTransport::usr_for(std::uint32_t new_id) const {
  packet::UsrPacket usr;
  usr.msg_id = msg_id_;
  usr.new_user_id = new_id;
  usr.max_kid = static_cast<std::uint32_t>(payload_.max_kid);
  const auto needs = payload_.user_needs.needs_of(new_id);
  REKEY_ENSURE_MSG(!needs.empty(),
                   "USR requested for a user with no pending keys");
  usr.entries.reserve(needs.size());
  for (const std::uint32_t idx : needs)
    usr.entries.push_back(
        packet::to_wire_entry(payload_.encryptions[idx]));
  return usr;
}

}  // namespace rekey::transport
