// Workload generation for the evaluation: a group of N users, a batch of J
// joins and L leaves (leaves uniform over the group, as in the paper), run
// through the marking algorithm, encryption generation and UKA.
//
// Each generated message is an independent snapshot (fresh tree), matching
// the paper's per-rekey-message statistics at fixed (N, J, L).
#pragma once

#include <cstdint>
#include <vector>

#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "packet/assign.h"

namespace rekey::transport {

struct WorkloadConfig {
  std::size_t group_size = 4096;  // N before the batch
  std::size_t joins = 0;          // J
  std::size_t leaves = 1024;      // L
  unsigned degree = 4;            // d
  std::size_t packet_size = 1027;
};

struct GeneratedMessage {
  tree::RekeyPayload payload;
  packet::Assignment assignment;
  // Pre-batch ids of the current users, aligned with the sorted post-batch
  // slot order (joiners: their assigned slot; split-relocated users: their
  // old slot).
  std::vector<std::uint16_t> old_ids;
  std::size_t num_users = 0;  // users after the batch
};

GeneratedMessage generate_message(const WorkloadConfig& config,
                                  std::uint64_t seed, std::uint32_t msg_id);

}  // namespace rekey::transport
