#include "transport/eager.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/obs.h"

namespace rekey::transport {

namespace {

// Per-user eager receiver state around the core Fig-27 machine.
struct EagerUser {
  explicit EagerUser(UserTransport ut) : transport(std::move(ut)) {}
  UserTransport transport;
  bool nack_outstanding = false;
  int nacks_sent = 0;
  double recovered_at_ms = -1.0;
};

}  // namespace

EagerSession::EagerSession(simnet::Topology& topology,
                           const ProtocolConfig& config)
    : topology_(topology), config_(config) {
  config.validate();
}

EagerMetrics EagerSession::run_message(const tree::RekeyPayload& payload,
                                       packet::Assignment assignment,
                                       std::span<const std::uint16_t> old_ids,
                                       int proactive_parities) {
  const std::size_t n_users = old_ids.size();
  REKEY_ENSURE(topology_.num_users() >= n_users);

  EagerMetrics m;
  m.users = n_users;
  m.enc_packets = assignment.packets.size();

  ServerTransport server(config_, payload, std::move(assignment),
                         proactive_parities, /*msg_id=*/1);
  PacketPool pool;
  std::vector<EagerUser> users;
  users.reserve(n_users);
  for (std::size_t u = 0; u < n_users; ++u)
    users.emplace_back(UserTransport(old_ids[u], config_.block_size,
                                     payload.degree, &pool));

  simnet::EventLoop loop;
  loop.run_until(clock_ms_);  // resume the session clock
  std::size_t unrecovered = n_users;

  // The server's transmit queue is paced at send_interval_ms; next_send
  // tracks the next free slot.
  double next_send = clock_ms_;
  const double start_ms = clock_ms_;

  // In-flight ledger: per block, the (scheduled) send time of each shard,
  // indexed by shard index (ENC seq, then k + parity index). A NACK is
  // deduplicated only against shards sent recently enough that they could
  // still reach the user — older ones are presumed lost for that user.
  std::vector<std::vector<double>> shard_send_time(server.num_blocks());
  const double flight_window =
      topology_.max_rtt_ms() + config_.round_slack_ms;

  // Forward declarations of the event handlers (they reference each other).
  // `force` bypasses the completeness gate (used by the end-of-transmission
  // safety check and by retries, when no further packets may be coming).
  std::function<void(std::size_t)> send_packet;
  std::function<void(std::size_t, double, bool)> user_check;

  auto schedule_wire = [&](Bytes wire) {
    const std::size_t idx = pool.size();
    next_send = std::max(next_send, loop.now());
    // Record the shard in the ledger (both ENC slots and parities).
    if (const auto eh = packet::parse_enc_header(wire)) {
      auto& times = shard_send_time[eh->block_id];
      if (times.size() <= eh->seq) times.resize(eh->seq + 1, -1e18);
      times[eh->seq] = next_send;
    } else if (const auto ph = packet::parse_parity_header(wire)) {
      auto& times = shard_send_time[ph->block_id];
      const std::size_t shard = config_.block_size + ph->parity_seq;
      if (times.size() <= shard) times.resize(shard + 1, -1e18);
      times[shard] = next_send;
    }
    pool.push_back(std::move(wire));
    loop.schedule_at(next_send, [&, idx] { send_packet(idx); });
    next_send += config_.send_interval_ms;
  };

  // A user (re-)evaluates its state and possibly emits a NACK.
  user_check = [&](std::size_t u, double t, bool force) {
    EagerUser& eu = users[u];
    if (eu.transport.recovered()) return;
    if (eu.nack_outstanding) return;
    if (!force && !eu.transport.initial_pass_complete()) return;
    // Fig-27 evaluation: decode what is decodable, compute what is missing.
    const auto entries = eu.transport.end_of_round(1);
    if (eu.transport.recovered()) {
      eu.recovered_at_ms = t;
      if (eu.nacks_sent == 0) ++m.first_pass_recoveries;
      --unrecovered;
      return;
    }
    REKEY_ENSURE(!entries.empty());
    eu.nack_outstanding = true;
    REKEY_ENSURE_MSG(++eu.nacks_sent <= 200, "eager NACK storm");
    // NACK traverses user uplink then source uplink. The user's own uplink
    // is a per-user process, so drawing it here (for its arrival time tn)
    // stays monotone; the *shared* source uplink is drawn at the NACK's
    // arrival event, where loop time is globally monotone — drawing it
    // here, at t + 2*delay(u), would interleave backwards queries across
    // users with different delays and freeze the Gilbert chain.
    const double tn = t + topology_.delay_ms(u);
    if (!topology_.user_uplink_lost(u, tn)) {
      loop.schedule_at(tn + topology_.delay_ms(u), [&, u, entries] {
        if (topology_.source_uplink_lost(loop.now())) return;
        ++m.nacks_received;
        // Dedup against the in-flight ledger: shards beyond what the user
        // saw, sent within the flight window (or still queued), may yet
        // arrive; only the shortfall is scheduled.
        const double horizon = loop.now() - flight_window;
        for (const packet::NackEntry& e : entries) {
          if (e.block_id >= server.num_blocks()) continue;
          const auto& times = shard_send_time[e.block_id];
          std::size_t pending = 0;
          for (std::size_t i =
                   static_cast<std::size_t>(e.max_shard_seen) + 1;
               i < times.size(); ++i) {
            if (times[i] > horizon) ++pending;
          }
          if (pending >= e.parities_needed) continue;
          const std::size_t shortfall = e.parities_needed - pending;
          for (std::size_t i = 0; i < shortfall; ++i)
            schedule_wire(server.fresh_parity(e.block_id));
        }
        (void)u;
      });
    }
    // Retry after an RTT-scaled timeout whether or not the NACK survived.
    // Retry with exponential backoff: the server may be draining a long
    // paced queue, and hammering it with NACKs every RTT would recreate
    // the implosion problem the round-based design avoids.
    const double base = topology_.rtt_ms(u) + config_.round_slack_ms;
    const double backoff =
        static_cast<double>(1u << std::min(eu.nacks_sent - 1, 2));
    loop.schedule_at(t + base * backoff, [&, u] {
      users[u].nack_outstanding = false;
      user_check(u, loop.now(), /*force=*/true);
    });
  };

  send_packet = [&](std::size_t idx) {
    ++m.multicast_sent;
    const double ts = loop.now();
    if (topology_.source_lost(ts)) return;
    for (std::size_t u = 0; u < n_users; ++u) {
      EagerUser& eu = users[u];
      if (eu.transport.recovered()) continue;
      const double ta = ts + topology_.delay_ms(u);
      if (topology_.user_lost(u, ta)) continue;
      eu.transport.on_packet(idx, /*round=*/1);
      if (eu.transport.recovered()) {
        eu.recovered_at_ms = ta;
        --unrecovered;
        if (eu.transport.recovery_round() == 1 && eu.nacks_sent == 0)
          ++m.first_pass_recoveries;
        continue;
      }
      // Eager trigger: every block that could hold this user's packet has
      // provably finished its initial transmission, yet none decodes.
      if (eu.transport.initial_pass_complete() && !eu.nack_outstanding) {
        loop.schedule_at(ta,
                         [&, u] { user_check(u, loop.now(), false); });
      }
    }
  };

  // Initial transmission: ENC slots interleaved, then proactive parities.
  for (Bytes& w : server.round_packets(1)) schedule_wire(std::move(w));
  // Safety check for users that receive nothing at all: evaluate shortly
  // after the initial transmission should have fully arrived.
  const double tail_time = next_send + topology_.max_rtt_ms() +
                           config_.round_slack_ms;
  for (std::size_t u = 0; u < n_users; ++u)
    loop.schedule_at(tail_time,
                     [&, u] { user_check(u, loop.now(), /*force=*/true); });

  loop.run(/*max_events=*/50'000'000);
  REKEY_ENSURE_MSG(unrecovered == 0, "eager session left users behind");

  double total = 0.0;
  for (const EagerUser& eu : users) {
    REKEY_ENSURE(eu.recovered_at_ms >= start_ms);
    const double latency = eu.recovered_at_ms - start_ms;
    total += latency;
    m.max_latency_ms = std::max(m.max_latency_ms, latency);
  }
  m.mean_latency_ms = n_users ? total / static_cast<double>(n_users) : 0.0;
  clock_ms_ = std::max(loop.now(), next_send) + flight_window;
  if (obs::trace_enabled())
    obs::Trace::emit(
        "eager_message",
        {{"users", static_cast<std::int64_t>(n_users)},
         {"multicast_sent", static_cast<std::int64_t>(m.multicast_sent)},
         {"nacks_received", static_cast<std::int64_t>(m.nacks_received)},
         {"first_pass_recoveries",
          static_cast<std::int64_t>(m.first_pass_recoveries)},
         {"mean_latency_ms", m.mean_latency_ms},
         {"max_latency_ms", m.max_latency_ms}});
  return m;
}

}  // namespace rekey::transport
