// The user (receiver) protocol for one rekey message (paper Fig 27).
//
// During a round a user classifies incoming packets: its own ENC packet
// (frmID <= id <= toID) means immediate success; other ENC packets feed the
// block-id estimator; ENC and PARITY packets of candidate blocks are
// retained (by reference into the session's packet pool) for FEC decoding.
// At each round end the user tries to decode every candidate block with >=
// k shards; if its packet is still missing it emits NACK entries — one
// <parities needed, block> pair per candidate block.
//
// A user that received *nothing* cannot bound its block range; it emits a
// conservative wake-up NACK for block 0 so the server learns it exists
// (the server's unicast fallback then covers it).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "packet/estimate.h"
#include "packet/wire.h"

namespace rekey::transport {

// Packets live in a per-message pool owned by the session; users hold
// indices, so N users retaining the same packet costs N*4 bytes, not N KB.
using PacketPool = std::vector<Bytes>;

class UserTransport {
 public:
  // old_id: the user's id before this rekey message; k: block size;
  // degree: key tree degree; pool: the session packet pool. `wide` selects
  // the v2 wide-slot packet formats (32-bit ids on the wire); it must
  // match the sender's negotiated width.
  UserTransport(std::uint32_t old_id, std::size_t k, unsigned degree,
                const PacketPool* pool, bool wide = false);

  // Deliver the packet stored at pool[pool_index]. `round` is the current
  // multicast round (1-based), used for latency accounting.
  void on_packet(std::size_t pool_index, int round);

  // Deliver a unicast USR packet.
  void on_usr(const packet::UsrPacket& usr);

  // Round-end processing (paper Fig 27 "when timeout"): attempt FEC
  // decoding, then report the NACK entries still needed (empty when
  // recovered).
  std::vector<packet::NackEntry> end_of_round(int round);

  bool recovered() const { return recovered_; }
  // Multicast round in which recovery happened (1-based); 0 if not yet.
  int recovery_round() const { return recovery_round_; }
  // Round-end passes actually processed (decode attempts + NACK builds).
  // The session must drive at most one per multicast round: the unicast
  // wake-up path resends cached NACK entries instead of re-running this.
  int rounds_ended() const { return rounds_ended_; }

  // This user's current id: updated from the first maxKID seen.
  std::uint32_t current_id() const { return id_; }
  std::uint32_t max_kid() const { return max_kid_; }

  // Eager-mode loss detection. With interleaved sending the ENC slots go
  // out wave by wave (seq 0 of every block, then seq 1, ...), so receiving
  // block b's seq-(k-1) slot proves the initial shards of every block
  // <= b have been sent, and any parity proves it for all blocks. A user
  // "detects a loss" (paper Appendix A) once every block that could hold
  // its packet is provably complete yet still undecodable.
  bool initial_pass_complete() const {
    return estimator_.has_value() && estimator_->bounded() &&
           complete_through_ >= static_cast<std::int64_t>(estimator_->high());
  }

  // After recovery: the user's encryption entries (empty when the rekey
  // message carried nothing for this user).
  const std::vector<packet::EncEntry>& entries() const { return entries_; }

 private:
  // Updates this user's id from an advertised maxKID; false (packet
  // ignored) when the id cannot be derived, i.e. the header is corrupt.
  bool note_max_kid(std::uint32_t max_kid);
  void prune_out_of_range();
  // Retains a shard for FEC decoding; duplicate shard indices (duplicated
  // or reordered redelivery) are ignored, keeping per-block counts honest.
  void store_shard(std::uint32_t block, std::uint32_t shard,
                   std::size_t pool_index);
  bool try_decode_block(std::uint32_t block, int round);

  std::uint32_t id_;
  std::size_t k_;
  unsigned degree_;
  const PacketPool* pool_;
  bool wide_;

  bool id_updated_ = false;
  std::uint32_t max_kid_ = 0;
  std::optional<packet::BlockIdEstimator> estimator_;

  // Per candidate block: pool indices of its shards, ENC slots and
  // parities alike (shard index = seq for ENC, k + parity_seq for PARITY).
  struct StoredShard {
    std::uint32_t shard;
    std::uint32_t pool_index;
  };
  std::map<std::uint32_t, std::vector<StoredShard>> blocks_;

  bool recovered_ = false;
  std::int64_t complete_through_ = -1;  // last provably-complete block id
  int recovery_round_ = 0;
  int rounds_ended_ = 0;
  std::vector<packet::EncEntry> entries_;
};

}  // namespace rekey::transport
