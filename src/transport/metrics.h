// Per-message and per-run metrics, matching the quantities the paper plots:
// server bandwidth overhead h'/h, NACKs after round 1, rounds needed per
// user, deadline misses, unicast volume.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace rekey::transport {

struct MessageMetrics {
  std::size_t enc_packets = 0;      // h: real ENC packets (UKA output)
  std::size_t slots = 0;            // ENC slots actually sent (incl. dups)
  std::size_t multicast_sent = 0;   // h': all multicast ENC+PARITY packets
  std::size_t proactive_parities = 0;
  std::size_t reactive_parities = 0;
  std::size_t round1_nacks = 0;     // NACK packets received after round 1
  std::size_t total_nacks = 0;
  std::size_t wakeup_nacks = 0;     // unicast-phase wake-up NACKs sent
  double rho_used = 1.0;            // rho in effect for this message
  int num_nack_target = 0;          // numNACK in effect for this message
  int multicast_rounds = 0;         // rounds actually executed
  std::size_t users = 0;            // users needing encryptions
  // users recovering in multicast round r (1-based).
  std::map<int, std::size_t> recovered_in_round;
  std::size_t unicast_users = 0;
  // users recovering in unicast wave w (1-based): wave w costs
  // multicast_rounds + w rounds, so stragglers that needed several
  // escalation waves are no longer flattened into the "+1" bucket.
  std::map<int, std::size_t> unicast_recovered_in_wave;
  std::size_t unicast_waves = 0;  // waves the unicast phase executed
  std::size_t usr_packets = 0;
  std::size_t usr_bytes = 0;        // USR wire bytes incl. UDP/IP overhead
  std::size_t packet_size = 0;      // multicast packet size (for weighting)
  std::size_t deadline_misses = 0;
  // Degraded-network accounting (zero on a fault-free run).
  std::size_t gave_up_users = 0;        // unicast deadline passed unserved
  std::size_t corrupt_rejected = 0;     // copies dropped by checksum
  std::size_t dup_deliveries = 0;       // duplicate copies delivered
  std::size_t reordered_deliveries = 0; // deliveries deferred by jitter
  std::size_t late_drops = 0;           // deferred copies never released
  std::size_t storm_nacks = 0;          // amplified NACK copies received
  double duration_ms = 0.0;

  // h'/h — the paper's server bandwidth overhead (multicast only).
  double bandwidth_overhead() const;
  // h'/h including the unicast phase: USR bytes are byte-weighted into
  // ENC-packet equivalents, so unicast-heavy policies are not undercounted.
  double total_bandwidth_overhead() const;
  // Mean multicast rounds needed by a user; a unicast recovery in wave w
  // counts as multicast_rounds + w (the wave it actually took, not the
  // paper's flat "needs more rounds" bucket).
  double mean_user_rounds() const;
  // Rounds until every user recovered (multicast-only runs).
  int rounds_to_all() const;

  bool operator==(const MessageMetrics&) const = default;
};

// Aggregates over a run of rekey messages.
struct RunMetrics {
  std::vector<MessageMetrics> messages;

  double mean_bandwidth_overhead() const;
  double mean_total_bandwidth_overhead() const;
  double mean_round1_nacks() const;
  double mean_rounds_to_all() const;
  double mean_user_rounds() const;
  // Fraction of users (over all messages) recovering in round r exactly;
  // a unicast wave-w recovery lands in the r = multicast_rounds + w bucket.
  std::map<int, double> round_distribution() const;
  std::size_t total_deadline_misses() const;

  bool operator==(const RunMetrics&) const = default;
};

}  // namespace rekey::transport
