#include "transport/user.h"

#include <algorithm>
#include <limits>

#include "common/ensure.h"
#include "fec/rse.h"
#include "keytree/ids.h"

namespace rekey::transport {

namespace {

// Decoded FEC region of an ENC packet: maxKID, frmID, toID, entries.
struct DecodedRegion {
  std::uint32_t max_kid = 0;
  std::uint32_t frm_id = 0;
  std::uint32_t to_id = 0;
  std::vector<packet::EncEntry> entries;
};

DecodedRegion parse_region(const Bytes& region, bool wide) {
  REKEY_ENSURE(region.size() >= (wide ? 12u : 6u));
  ByteReader r(region);
  DecodedRegion d;
  if (wide) {
    d.max_kid = r.get_u32();
    d.frm_id = r.get_u32();
    d.to_id = r.get_u32();
  } else {
    d.max_kid = r.get_u16();
    d.frm_id = r.get_u16();
    d.to_id = r.get_u16();
  }
  while (r.remaining() >= packet::kEntrySize) {
    const std::uint32_t id = r.get_u32();
    if (id == 0) break;  // padding
    packet::EncEntry e;
    e.enc_id = id;
    const Bytes ct = r.get_bytes(crypto::SymmetricKey::kSize);
    std::copy(ct.begin(), ct.end(), e.enc.ciphertext.begin());
    e.enc.tag = r.get_u16();
    d.entries.push_back(e);
  }
  return d;
}

}  // namespace

UserTransport::UserTransport(std::uint32_t old_id, std::size_t k,
                             unsigned degree, const PacketPool* pool,
                             bool wide)
    : id_(old_id), k_(k), degree_(degree), pool_(pool), wide_(wide) {
  REKEY_ENSURE(pool != nullptr);
}

bool UserTransport::note_max_kid(std::uint32_t max_kid) {
  if (id_updated_) return true;
  const auto derived = tree::derive_new_user_id(id_, max_kid, degree_);
  // An undecodable maxKID means a corrupted packet (Theorem 4.2 guarantees
  // derivability from genuine headers): ignore it. The bound is the wire
  // format's id width — an id the frame could never carry is equally
  // un-derivable.
  const std::uint64_t id_cap = wide_ ? 0xFFFFFFFFull : 0xFFFFull;
  if (!derived.has_value() || *derived > id_cap) return false;
  max_kid_ = max_kid;
  id_ = static_cast<std::uint32_t>(*derived);
  id_updated_ = true;
  estimator_.emplace(id_, k_, degree_);
  return true;
}

void UserTransport::prune_out_of_range() {
  if (!estimator_ || !estimator_->bounded()) return;
  const std::uint32_t lo = estimator_->low();
  const std::uint32_t hi = estimator_->high();
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->first < lo || it->first > hi) {
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

void UserTransport::on_packet(std::size_t pool_index, int round) {
  if (recovered_) return;
  const Bytes& wire = (*pool_)[pool_index];
  const auto type = packet::peek_type(wire);
  if (!type) return;

  if (*type == packet::PacketType::Enc) {
    const auto h = packet::parse_enc_header(wire, wide_);
    if (!h) return;
    if (!note_max_kid(h->max_kid)) return;  // corrupt header
    if (h->frm_id <= id_ && id_ <= h->to_id) {
      // My specific packet. The full parse can still fail on a damaged
      // entry region that slipped past the header checks (e.g. a
      // corrupted copy whose checksum collided); that is a bad datagram,
      // not a protocol error — drop it and wait for FEC or a resend.
      const auto pkt = packet::EncPacket::parse(wire, wide_);
      if (!pkt.has_value()) return;
      entries_ = pkt->entries;
      recovered_ = true;
      recovery_round_ = round;
      blocks_.clear();
      return;
    }
    estimator_->observe(*h);
    prune_out_of_range();
    if (h->seq + 1u >= k_)
      complete_through_ =
          std::max(complete_through_, static_cast<std::int64_t>(h->block_id));
    if (h->block_id >= estimator_->low() &&
        h->block_id <= estimator_->high()) {
      store_shard(h->block_id, h->seq, pool_index);
    }
    return;
  }

  if (*type == packet::PacketType::Parity) {
    const auto h = packet::parse_parity_header(wire);
    if (!h) return;
    // Parities follow the last ENC slot wave: every block is complete.
    complete_through_ = std::numeric_limits<std::int64_t>::max();
    const bool in_range =
        !estimator_ || !estimator_->bounded() ||
        (h->block_id >= estimator_->low() &&
         h->block_id <= estimator_->high());
    if (in_range) {
      store_shard(h->block_id, static_cast<std::uint32_t>(k_ + h->parity_seq),
                  pool_index);
    }
    return;
  }
}

void UserTransport::store_shard(std::uint32_t block, std::uint32_t shard,
                                std::size_t pool_index) {
  // Idempotent against duplicated and reordered delivery: a shard index
  // already held is ignored, so duplicates can neither inflate the
  // shard count past k (which would fake decodability and understate
  // NACKs) nor feed the decoder a singular system of repeated rows.
  auto& shards = blocks_[block];
  for (const StoredShard& s : shards)
    if (s.shard == shard) return;
  // All shards of a block must be the same wire size (the FEC code is over
  // equal-length regions). The simnet always pads to packet_size, but a
  // real socket can hand us a truncated datagram whose header still parses
  // — storing it would poison the decode. First full-length shard wins;
  // the RSE decoder additionally refuses mixed-size inputs outright.
  if (!shards.empty() &&
      (*pool_)[pool_index].size() != (*pool_)[shards.front().pool_index].size())
    return;
  shards.push_back({shard, static_cast<std::uint32_t>(pool_index)});
}

void UserTransport::on_usr(const packet::UsrPacket& usr) {
  if (recovered_) return;
  max_kid_ = usr.max_kid;
  id_ = usr.new_user_id;
  id_updated_ = true;
  entries_ = usr.entries;
  recovered_ = true;
  blocks_.clear();
}

bool UserTransport::try_decode_block(std::uint32_t block, int round) {
  const auto it = blocks_.find(block);
  if (it == blocks_.end() || it->second.size() < k_) return false;

  std::vector<fec::Shard> shards;
  shards.reserve(it->second.size());
  for (const StoredShard& s : it->second) {
    const Bytes& wire = (*pool_)[s.pool_index];
    fec::Shard shard;
    shard.index = static_cast<int>(s.shard);
    shard.payload.assign(wire.begin() + packet::kFecOffset, wire.end());
    shards.push_back(std::move(shard));
  }
  const fec::RseCoder coder(static_cast<int>(k_));
  const auto decoded = coder.decode(shards);
  if (!decoded.has_value()) return false;

  for (const Bytes& region : *decoded) {
    const DecodedRegion d = parse_region(region, wide_);
    note_max_kid(d.max_kid);
    if (d.frm_id <= id_ && id_ <= d.to_id) {
      entries_ = d.entries;
      recovered_ = true;
      recovery_round_ = round;
      blocks_.clear();
      return true;
    }
  }
  return false;
}

std::vector<packet::NackEntry> UserTransport::end_of_round(int round) {
  if (recovered_) return {};
  ++rounds_ended_;

  if (!estimator_ || !estimator_->bounded()) {
    // Nothing usable arrived: wake-up NACK so the server learns about us.
    packet::NackEntry e;
    e.parities_needed = static_cast<std::uint8_t>(k_);
    e.block_id = 0;
    return {e};
  }

  std::vector<packet::NackEntry> needs;
  for (std::uint32_t blk = estimator_->low(); blk <= estimator_->high();
       ++blk) {
    const auto it = blocks_.find(blk);
    const std::size_t have = it == blocks_.end() ? 0 : it->second.size();
    if (have >= k_) {
      if (try_decode_block(blk, round)) return {};
      continue;  // decodable block that is not mine
    }
    packet::NackEntry e;
    e.parities_needed = static_cast<std::uint8_t>(k_ - have);
    e.block_id = static_cast<std::uint16_t>(blk);
    if (it != blocks_.end()) {
      std::uint32_t max_shard = 0;
      for (const StoredShard& s : it->second)
        max_shard = std::max(max_shard, s.shard);
      e.max_shard_seen =
          static_cast<std::uint8_t>(std::min<std::uint32_t>(max_shard, 255));
    }
    needs.push_back(e);
  }
  REKEY_ENSURE_MSG(!needs.empty(),
                   "all candidate blocks decoded but own packet missing");
  return needs;
}

}  // namespace rekey::transport
