#include "transport/config.h"

#include "common/ensure.h"
#include "packet/wire.h"

namespace rekey::transport {

void ProtocolConfig::validate() const {
  REKEY_ENSURE(block_size >= 1 && block_size <= 127);
  REKEY_ENSURE(initial_rho >= 1.0);
  REKEY_ENSURE(num_nack_target >= 0);
  REKEY_ENSURE(max_nack >= num_nack_target);
  REKEY_ENSURE(max_multicast_rounds >= 0);
  REKEY_ENSURE(usr_initial_duplicates >= 1);
  REKEY_ENSURE(unicast_max_waves >= 0);
  REKEY_ENSURE(packet_size > packet::kEncHeaderSize + packet::kEntrySize);
  REKEY_ENSURE(send_interval_ms > 0.0);
  REKEY_ENSURE(max_rounds_cap >= 1);
}

}  // namespace rekey::transport
