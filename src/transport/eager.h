// Eager (event-driven) rekey transport — the extension the protocol
// paper's Appendix A sketches: "it is feasible for a user to send a NACK
// as soon as it detects a loss, and for the server to multicast PARITY
// packets as soon as it receives a NACK", with each NACK carrying the
// highest sequence number received (after Rubenstein et al.) so the
// server can tell whether packets already in flight satisfy the request.
//
// Differences from the round-based RekeySession:
//   * no rounds: the server paces packets continuously and reacts to each
//     NACK the moment it arrives, deduplicating against its in-flight
//     ledger (shards_scheduled - (max_shard_seen+1) >= needed => wait);
//   * a user NACKs as soon as it sees the tail of the initial
//     transmission pass (a seq k-1 slot or any parity) while its block is
//     still undecodable, and re-NACKs on an RTT-scaled retry timer;
//   * latency is measured in milliseconds per user, not rounds.
//
// The expected win (bench_ab6_eager): markedly lower tail latency at
// essentially the same server bandwidth.
#pragma once

#include <span>

#include "simnet/event_loop.h"
#include "simnet/topology.h"
#include "transport/server.h"
#include "transport/user.h"

namespace rekey::transport {

struct EagerMetrics {
  std::size_t users = 0;
  std::size_t enc_packets = 0;
  std::size_t multicast_sent = 0;
  std::size_t nacks_received = 0;
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  // Users recovered within the initial transmission (no retransmission).
  std::size_t first_pass_recoveries = 0;

  double bandwidth_overhead() const {
    return enc_packets == 0 ? 0.0
                            : static_cast<double>(multicast_sent) /
                                  static_cast<double>(enc_packets);
  }
};

class EagerSession {
 public:
  EagerSession(simnet::Topology& topology, const ProtocolConfig& config);

  // Runs one rekey message to full delivery (every user recovers).
  EagerMetrics run_message(const tree::RekeyPayload& payload,
                           packet::Assignment assignment,
                           std::span<const std::uint16_t> old_ids,
                           int proactive_parities = 0);

 private:
  simnet::Topology& topology_;
  const ProtocolConfig& config_;
  // Advances across messages so the topology's loss processes are always
  // queried at monotone times.
  double clock_ms_ = 0.0;
};

}  // namespace rekey::transport
