#include "transport/workload.h"

#include <map>

#include "common/ensure.h"
#include "common/rng.h"

namespace rekey::transport {

GeneratedMessage generate_message(const WorkloadConfig& config,
                                  std::uint64_t seed, std::uint32_t msg_id) {
  REKEY_ENSURE(config.leaves <= config.group_size);
  Rng rng(seed);

  tree::KeyTree kt(config.degree, rng.next_u64());
  kt.populate(config.group_size, /*first_member=*/0);

  // Leaves: uniform over the current members; joins: fresh member ids.
  std::vector<tree::MemberId> leaving;
  for (const std::uint64_t pick :
       rng.sample_without_replacement(config.group_size, config.leaves))
    leaving.push_back(static_cast<tree::MemberId>(pick));
  std::vector<tree::MemberId> joining;
  joining.reserve(config.joins);
  for (std::size_t j = 0; j < config.joins; ++j)
    joining.push_back(static_cast<tree::MemberId>(config.group_size + j));

  tree::Marker marker(kt);
  const tree::BatchUpdate update = marker.run(joining, leaving);

  GeneratedMessage out;
  out.payload = tree::generate_rekey_payload(kt, update, msg_id);
  out.assignment = packet::assign_keys(out.payload, config.packet_size);
  out.num_users = kt.num_users();

  // Old id per current user, in sorted slot order.
  std::map<tree::NodeId, tree::NodeId> old_of_new;
  for (const auto& [old_slot, new_slot] : update.moved)
    old_of_new.emplace(new_slot, old_slot);
  out.old_ids.reserve(kt.num_users());
  kt.for_each_user_slot([&](tree::NodeId slot) {
    const auto it = old_of_new.find(slot);
    const tree::NodeId old_id = it == old_of_new.end() ? slot : it->second;
    REKEY_ENSURE(old_id <= 0xFFFF);
    out.old_ids.push_back(static_cast<std::uint16_t>(old_id));
  });
  return out;
}

}  // namespace rekey::transport
