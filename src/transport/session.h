// One rekey message simulated end-to-end over the evaluation topology:
// multicast rounds with proactive FEC and NACK feedback, followed (when
// configured) by the unicast phase with escalating USR duplicates.
//
// The session drives real wire bytes through real loss processes; users
// run the full Fig-27 receiver protocol including Theorem-4.2 id updates
// and Appendix-D block estimation. Metrics mirror the paper's quantities.
#pragma once

#include <functional>
#include <span>

#include "keytree/rekey_subtree.h"
#include "packet/assign.h"
#include "simnet/topology.h"
#include "transport/metrics.h"
#include "transport/server.h"
#include "transport/user.h"

namespace rekey::transport {

class RekeySession {
 public:
  // The topology must have at least as many users as any message's group.
  RekeySession(simnet::Topology& topology, const ProtocolConfig& config,
               RhoController& controller);

  // Called whenever a user recovers its encryptions; `user` is the
  // topology index. Used by the full stack to feed UserKeyViews; benches
  // leave it empty.
  using RecoveredFn =
      std::function<void(std::size_t user, const UserTransport& state)>;

  // old_ids[i] is user i's id *before* this batch (joiners use their
  // assigned slot). The message sequence number cycles mod 64.
  MessageMetrics run_message(const tree::RekeyPayload& payload,
                             packet::Assignment assignment,
                             std::span<const std::uint16_t> old_ids,
                             const RecoveredFn& on_recovered = {});

  // The session clock advances monotonically across messages so the
  // topology's loss processes are never queried backwards. A caller that
  // builds a fresh session over a topology that has already been driven
  // must resume from where the previous session left off. Resuming
  // backwards is rejected (EnsureError): a rewound clock would hand the
  // shared Gilbert chains non-monotone query times and trip their
  // monotonicity check deep inside a round, far from the misuse.
  double clock_ms() const { return clock_ms_; }
  void resume_clock_at(double t_ms);

  // Normalizing resume for restored state: a replica rebuilt from a
  // snapshot carries the donor's clock, which may sit ahead of a locally
  // recorded timestamp (the snapshot was cut after the last message the
  // restorer saw). Instead of tripping the monotonicity assert above,
  // clamp forward — the clock never moves backwards — and return the
  // clock actually in effect.
  double resume_clock_at_least(double t_ms);

 private:
  simnet::Topology& topology_;
  const ProtocolConfig& config_;
  RhoController& controller_;
  std::uint8_t next_msg_id_ = 0;
  double clock_ms_ = 0.0;  // advances across messages
};

}  // namespace rekey::transport
