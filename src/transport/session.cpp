#include "transport/session.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/obs.h"
#include "packet/wire.h"

namespace rekey::transport {

RekeySession::RekeySession(simnet::Topology& topology,
                           const ProtocolConfig& config,
                           RhoController& controller)
    : topology_(topology), config_(config), controller_(controller) {
  config.validate();
}

void RekeySession::resume_clock_at(double t_ms) {
  REKEY_ENSURE_MSG(t_ms >= clock_ms_,
                   "session clock resumed backwards: loss processes would "
                   "be queried at non-monotone times");
  clock_ms_ = t_ms;
}

double RekeySession::resume_clock_at_least(double t_ms) {
  if (t_ms > clock_ms_) clock_ms_ = t_ms;
  return clock_ms_;
}

MessageMetrics RekeySession::run_message(
    const tree::RekeyPayload& payload, packet::Assignment assignment,
    std::span<const std::uint16_t> old_ids, const RecoveredFn& on_recovered) {
  const std::size_t n_users = old_ids.size();
  REKEY_ENSURE(topology_.num_users() >= n_users);

  const std::uint8_t msg_id = next_msg_id_;
  next_msg_id_ = static_cast<std::uint8_t>((next_msg_id_ + 1) % 64);

  MessageMetrics m;
  m.enc_packets = assignment.packets.size();
  m.users = n_users;
  m.packet_size = config_.packet_size;
  m.rho_used = controller_.rho();
  m.num_nack_target = controller_.num_nack_target();

  ServerTransport server(config_, payload, std::move(assignment),
                         controller_.proactive_parities(), msg_id);
  m.slots = server.num_slots();

  PacketPool pool;
  std::vector<UserTransport> users;
  users.reserve(n_users);
  for (std::size_t u = 0; u < n_users; ++u)
    users.emplace_back(old_ids[u], config_.block_size,
                       static_cast<unsigned>(payload.degree), &pool);

  const double start_ms = clock_ms_;
  double t = start_ms;
  int round = 0;
  bool to_unicast = false;

  // Compact index of still-unrecovered users (ascending): the per-packet
  // multicast loop walks only these instead of scanning all N users and
  // skipping recovered ones. Compacted once per round, so the loss-process
  // draw sequence per user is identical to the full-scan code.
  std::vector<std::size_t> active(n_users);
  for (std::size_t u = 0; u < n_users; ++u) active[u] = u;
  // Each unrecovered user's latest round-end NACK entries; the unicast
  // wake-up path resends these instead of re-running end_of_round on a
  // round that already ended.
  std::vector<std::vector<packet::NackEntry>> last_nacks(n_users);

  auto notify = [&](std::size_t u) {
    if (on_recovered) on_recovered(u, users[u]);
  };

  // Degraded-network wiring. Every fault behavior below is gated on
  // `faults` being non-null, so a run without an active FaultPlan executes
  // the exact baseline draw sequence (bit-identical metrics and goldens).
  simnet::FaultInjector* faults = topology_.faults();
  if (faults != nullptr && !faults->plan().active()) faults = nullptr;

  // Transport-level counters: the independent "sent" ledger the chaos
  // harness reconciles against the per-message "billed" metrics.
  auto& reg = obs::MetricsRegistry::global();
  obs::Counter& c_mcast_pkts = reg.counter("transport.multicast_packets");
  obs::Counter& c_mcast_bytes = reg.counter("transport.multicast_bytes");
  obs::Counter& c_usr_pkts = reg.counter("transport.usr_packets");
  obs::Counter& c_usr_bytes = reg.counter("transport.usr_bytes");
  obs::Counter& c_corrupt = reg.counter("transport.corrupt_rejected");
  obs::Counter& c_give_up = reg.counter("transport.give_up_users");

  // Per-user bounded queues of jitter-deferred (reordered) deliveries.
  struct Deferred {
    double release_ms;
    std::size_t pool_index;
  };
  std::vector<std::vector<Deferred>> deferred(faults ? n_users : 0);
  auto flush_deferred = [&](std::size_t u, double now_ms, int round_now) {
    auto& q = deferred[u];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].release_ms > now_ms) {
        q[keep++] = q[i];
      } else if (!users[u].recovered()) {
        users[u].on_packet(q[i].pool_index, round_now);
      }
    }
    q.resize(keep);
  };

  while (!active.empty()) {
    ++round;
    const double round_start = t;
    REKEY_ENSURE_MSG(round <= config_.max_rounds_cap,
                     "multicast did not converge within the round cap");

    std::vector<Bytes> wires = server.round_packets(round);
    if (round == 1) {
      m.proactive_parities = wires.size() - server.num_slots();
    } else {
      m.reactive_parities += wires.size();
    }

    // Multicast: one shared source-link draw per packet, then each
    // still-unrecovered user's own receiver link at its arrival time.
    for (Bytes& w : wires) {
      const std::size_t idx = pool.size();
      pool.push_back(std::move(w));
      ++m.multicast_sent;
      c_mcast_pkts.add();
      c_mcast_bytes.add(pool[idx].size() + packet::kUdpIpOverheadBytes);
      const double ts = t;
      t += config_.send_interval_ms;
      // Sender-side checksum of the clean wire: arriving corrupted copies
      // are validated against it (the UDP checksum the overhead constant
      // already charges for).
      const std::uint16_t cksum = faults ? packet::udp_checksum(pool[idx])
                                         : std::uint16_t{0};
      if (topology_.source_lost(ts)) continue;
      for (const std::size_t u : active) {
        if (users[u].recovered()) continue;  // recovered earlier this round
        const double ta = ts + topology_.delay_ms(u);
        if (faults) flush_deferred(u, ta, round);
        if (topology_.user_lost(u, ta)) continue;
        if (!faults) {
          users[u].on_packet(idx, round);
          continue;
        }
        const simnet::FaultInjector::Delivery d =
            faults->user_delivery(u, ta);
        if (d.corrupt) {
          // The copy arrives damaged. The datagram integrity check drops
          // it (counted separately from loss); a copy whose flips cancel
          // in the checksum reaches the parser, which must not throw.
          Bytes damaged = faults->corrupt_copy(u, pool[idx]);
          if (packet::udp_checksum(damaged) != cksum) {
            ++m.corrupt_rejected;
            c_corrupt.add();
          } else {
            const std::size_t didx = pool.size();
            pool.push_back(std::move(damaged));
            users[u].on_packet(didx, round);
          }
        } else if (d.jitter_ms > 0.0) {
          ++m.reordered_deliveries;
          auto& q = deferred[u];
          if (q.size() >= faults->plan().reorder_queue_cap) {
            // Bounded queue: the oldest deferred copy is released now.
            if (!users[u].recovered())
              users[u].on_packet(q.front().pool_index, round);
            q.erase(q.begin());
          }
          q.push_back({ta + d.jitter_ms, idx});
        } else {
          users[u].on_packet(idx, round);
        }
        // Duplicate copies of the clean wire arrive back to back; the
        // receiver's shard dedup keeps them from inflating block counts.
        for (int c = 0; c < d.extra_copies; ++c) {
          ++m.dup_deliveries;
          if (!users[u].recovered()) users[u].on_packet(idx, round);
        }
      }
    }
    // Jitter still in flight at round end is released before the decode
    // pass; anything jittered past this round carries into the next one.
    if (faults)
      for (const std::size_t u : active) {
        if (!users[u].recovered()) flush_deferred(u, t, round);
      }

    // Round end: users that did not get their specific packet try to
    // decode; the rest NACK. NACKs traverse user uplink + source uplink.
    // Decode first (pure receiver work), then run the uplink loss draws in
    // NACK arrival order: the shared source uplink is queried at
    // t + 2*delay(u), and with heterogeneous delays index order would hand
    // the Gilbert process non-monotone times, silently freezing its state
    // and mis-correlating NACK losses across users.
    std::size_t nacks_received = 0;
    std::vector<std::size_t> round_nackers;
    for (const std::size_t u : active) {
      if (users[u].recovered()) continue;
      auto entries = users[u].end_of_round(round);
      if (users[u].recovered()) continue;  // decoded at round end
      last_nacks[u] = std::move(entries);  // kept even when the NACK is lost
      round_nackers.push_back(u);
    }
    std::sort(round_nackers.begin(), round_nackers.end(),
              [&](std::size_t a, std::size_t b) {
                const double da = topology_.delay_ms(a);
                const double db = topology_.delay_ms(b);
                return da != db ? da < db : a < b;
              });
    for (const std::size_t u : round_nackers) {
      const double tn = t + topology_.delay_ms(u);
      if (topology_.user_uplink_lost(u, tn)) continue;
      if (topology_.source_uplink_lost(tn + topology_.delay_ms(u))) continue;
      server.accept_nack(u, last_nacks[u]);
      ++nacks_received;
      ++m.total_nacks;
      if (faults) {
        // Feedback implosion: the network amplifies a delivered NACK into
        // a burst. The server's per-user feedback dedup keeps AdjustRho
        // from reading a storm as "many users are short of parities".
        const int extra = faults->nack_extra_copies(u, tn);
        for (int c = 0; c < extra; ++c) server.accept_nack(u, last_nacks[u]);
        m.storm_nacks += static_cast<std::size_t>(extra);
      }
    }
    if (round == 1) {
      m.round1_nacks = nacks_received;
      auto feedback = server.take_feedback();
      if (config_.adaptive_rho) {
        // A blackout overlapping round 1 (sends through NACK arrivals)
        // makes the feedback unrepresentative: clamp AdjustRho escalation.
        const bool degraded =
            faults != nullptr &&
            faults->blackout_overlaps(round_start,
                                      t + topology_.max_rtt_ms());
        controller_.on_round1_feedback(std::move(feedback), degraded);
      }
    } else {
      server.take_feedback();  // only round-1 feedback drives AdjustRho
    }

    // Account recoveries of this round and compact the active index.
    std::size_t recovered_now = 0;
    for (const std::size_t u : active) {
      if (users[u].recovered()) {
        ++recovered_now;
        notify(u);
      }
    }
    if (recovered_now > 0) m.recovered_in_round[round] = recovered_now;
    std::erase_if(active,
                  [&](std::size_t u) { return users[u].recovered(); });
    m.multicast_rounds = round;
    if (obs::trace_enabled())
      obs::Trace::emit(
          "round", {{"msg", static_cast<int>(msg_id)},
                    {"round", round},
                    {"sent", static_cast<std::int64_t>(wires.size())},
                    {"nackers", static_cast<std::int64_t>(round_nackers.size())},
                    {"nacks_received", static_cast<std::int64_t>(nacks_received)},
                    {"recovered", static_cast<std::int64_t>(recovered_now)},
                    {"unrecovered", static_cast<std::int64_t>(active.size())},
                    {"rho", m.rho_used},
                    {"t_ms", t}});
    t += topology_.max_rtt_ms() + config_.round_slack_ms;

    if (active.empty()) break;
    if (config_.max_multicast_rounds > 0 &&
        round >= config_.max_multicast_rounds) {
      to_unicast = true;
      break;
    }
    if (config_.early_unicast_by_size) {
      // §7.1: switch early when the USR bytes owed do not exceed the
      // parity bytes the next round would multicast.
      std::size_t usr_bytes = 0;
      for (const std::size_t u : server.straggler_set()) {
        const auto new_id = tree::derive_new_user_id(
            old_ids[u], payload.max_kid, payload.degree);
        // Same helper the unicast phase's bandwidth accounting uses, so
        // the switch condition and the F21/AB5 byte counts cannot drift.
        usr_bytes += server.usr_wire_bytes(
            static_cast<std::uint16_t>(new_id.value()));
      }
      const std::size_t parity_bytes =
          server.pending_parities() * config_.packet_size;
      if (usr_bytes > 0 && usr_bytes <= parity_bytes) {
        to_unicast = true;
        break;
      }
    }
  }

  // Unicast phase (paper Fig 22): lockstep waves so shared loss processes
  // see monotone time. Every wave, unknown stragglers NACK; known ones
  // receive an escalating number of duplicate USR packets.
  if (to_unicast && !active.empty()) {
    std::vector<std::size_t> stragglers = active;
    m.unicast_users = stragglers.size();

    std::vector<int> dups(n_users, config_.usr_initial_duplicates);
    int waves = 0;
    while (!stragglers.empty()) {
      if (config_.unicast_max_waves > 0 &&
          waves >= config_.unicast_max_waves) {
        // Persistent outage: the unicast deadline has passed. Give up on
        // the remaining stragglers explicitly (they stay unrecovered and
        // count as deadline misses) instead of retrying forever.
        m.gave_up_users = stragglers.size();
        c_give_up.add(stragglers.size());
        if (obs::trace_enabled())
          for (const std::size_t u : stragglers)
            obs::Trace::emit("give_up",
                             {{"msg", static_cast<int>(msg_id)},
                              {"user", static_cast<std::int64_t>(u)},
                              {"waves", waves}});
        break;
      }
      REKEY_ENSURE_MSG(++waves <= 10000, "unicast did not converge");
      // Serve each wave in receiver-delay order: the wake-up NACK path
      // queries the shared source uplink at ts + 2*delay(u), and with ts
      // only creeping forward within a wave, delay order is what keeps
      // those query times monotone.
      std::sort(stragglers.begin(), stragglers.end(),
                [&](std::size_t a, std::size_t b) {
                  const double da = topology_.delay_ms(a);
                  const double db = topology_.delay_ms(b);
                  return da != db ? da < db : a < b;
                });
      const std::size_t wave_stragglers = stragglers.size();
      std::vector<std::size_t> still;
      double ts = t;
      for (const std::size_t u : stragglers) {
        if (!server.knows_user(u)) {
          // Wake-up NACK until the server learns about this user. The
          // user's last multicast round already ended, so resend its
          // cached round-end entries instead of re-running the decode.
          ++m.total_nacks;
          ++m.wakeup_nacks;
          const double tn = ts + topology_.delay_ms(u);
          if (!topology_.user_uplink_lost(u, tn) &&
              !topology_.source_uplink_lost(tn + topology_.delay_ms(u))) {
            server.accept_nack(u, last_nacks[u]);
            if (faults) {
              const int extra = faults->nack_extra_copies(u, tn);
              for (int c = 0; c < extra; ++c)
                server.accept_nack(u, last_nacks[u]);
              m.storm_nacks += static_cast<std::size_t>(extra);
            }
          }
          still.push_back(u);
          ts += 0.1;
          continue;
        }
        const std::uint16_t new_id = static_cast<std::uint16_t>(
            tree::derive_new_user_id(old_ids[u], payload.max_kid,
                                     static_cast<unsigned>(payload.degree))
                .value());
        const packet::UsrPacket usr = server.usr_for(new_id);
        // USR wire bytes count toward server bandwidth (F21/AB5 would
        // otherwise understate unicast-heavy policies).
        const std::size_t usr_wire = server.usr_wire_bytes(new_id);
        bool got = false;
        for (int i = 0; i < dups[u]; ++i) {
          ++m.usr_packets;
          m.usr_bytes += usr_wire;
          c_usr_pkts.add();
          c_usr_bytes.add(usr_wire);
          const double tsend = ts + 0.1 * i;
          if (!topology_.source_lost(tsend) &&
              !topology_.user_lost(u, tsend + topology_.delay_ms(u)))
            got = true;
        }
        if (got) {
          users[u].on_usr(usr);
          REKEY_ENSURE(users[u].recovered());
          // The wave this user actually recovered in: F21/AB5 latency
          // accounting charges multicast_rounds + wave, not a flat +1.
          ++m.unicast_recovered_in_wave[waves];
          notify(u);
        } else {
          ++dups[u];
          still.push_back(u);
        }
        ts += 0.1 * dups[u];
      }
      if (obs::trace_enabled())
        obs::Trace::emit(
            "unicast_wave",
            {{"msg", static_cast<int>(msg_id)},
             {"wave", waves},
             {"stragglers", static_cast<std::int64_t>(wave_stragglers)},
             {"recovered",
              static_cast<std::int64_t>(wave_stragglers - still.size())},
             {"wakeup_nacks", static_cast<std::int64_t>(m.wakeup_nacks)},
             {"t_ms", t}});
      stragglers.swap(still);
      t = ts + topology_.max_rtt_ms() + config_.round_slack_ms;
    }
    m.unicast_waves = static_cast<std::size_t>(waves);
  }

  // Deferred copies whose jitter outlived the message were never released.
  if (faults)
    for (const auto& q : deferred) m.late_drops += q.size();

  // Deadline accounting: a user meets the deadline iff it recovered in a
  // multicast round <= deadline_rounds.
  if (config_.deadline_rounds > 0) {
    std::size_t met = 0;
    for (const auto& [round_no, count] : m.recovered_in_round)
      if (round_no <= config_.deadline_rounds) met += count;
    m.deadline_misses = n_users - met;
    if (config_.adapt_num_nack)
      controller_.on_deadline_report(m.deadline_misses);
  }

  m.duration_ms = t - start_ms;
  clock_ms_ = t + config_.round_slack_ms;
  if (obs::trace_enabled())
    obs::Trace::emit(
        "message",
        {{"msg", static_cast<int>(msg_id)},
         {"users", static_cast<std::int64_t>(n_users)},
         {"rounds", m.multicast_rounds},
         {"rho", m.rho_used},
         {"num_nack_target", m.num_nack_target},
         {"round1_nacks", static_cast<std::int64_t>(m.round1_nacks)},
         {"total_nacks", static_cast<std::int64_t>(m.total_nacks)},
         {"multicast_sent", static_cast<std::int64_t>(m.multicast_sent)},
         {"unicast_users", static_cast<std::int64_t>(m.unicast_users)},
         {"unicast_waves", static_cast<std::int64_t>(m.unicast_waves)},
         {"usr_packets", static_cast<std::int64_t>(m.usr_packets)},
         {"usr_bytes", static_cast<std::int64_t>(m.usr_bytes)},
         {"deadline_misses", static_cast<std::int64_t>(m.deadline_misses)},
         {"gave_up", static_cast<std::int64_t>(m.gave_up_users)},
         {"corrupt_rejected", static_cast<std::int64_t>(m.corrupt_rejected)},
         {"dup_deliveries", static_cast<std::int64_t>(m.dup_deliveries)},
         {"reordered", static_cast<std::int64_t>(m.reordered_deliveries)},
         {"late_drops", static_cast<std::int64_t>(m.late_drops)},
         {"storm_nacks", static_cast<std::int64_t>(m.storm_nacks)},
         {"duration_ms", m.duration_ms}});
  return m;
}

}  // namespace rekey::transport
