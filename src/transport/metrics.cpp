#include "transport/metrics.h"

namespace rekey::transport {

double MessageMetrics::bandwidth_overhead() const {
  if (enc_packets == 0) return 0.0;
  return static_cast<double>(multicast_sent) /
         static_cast<double>(enc_packets);
}

double MessageMetrics::total_bandwidth_overhead() const {
  if (enc_packets == 0) return 0.0;
  const double usr_equiv =
      packet_size == 0 ? 0.0
                       : static_cast<double>(usr_bytes) /
                             static_cast<double>(packet_size);
  return (static_cast<double>(multicast_sent) + usr_equiv) /
         static_cast<double>(enc_packets);
}

double MessageMetrics::mean_user_rounds() const {
  if (users == 0) return 0.0;
  double total = 0.0;
  for (const auto& [round, count] : recovered_in_round)
    total += static_cast<double>(round) * static_cast<double>(count);
  // Unicast recoveries are charged the wave they actually took
  // (multicast_rounds + w). Metrics built without per-wave detail fall
  // back to wave 1 for any unattributed unicast users.
  std::size_t attributed = 0;
  for (const auto& [wave, count] : unicast_recovered_in_wave) {
    total += static_cast<double>(multicast_rounds + wave) *
             static_cast<double>(count);
    attributed += count;
  }
  if (unicast_users > attributed)
    total += static_cast<double>(multicast_rounds + 1) *
             static_cast<double>(unicast_users - attributed);
  return total / static_cast<double>(users);
}

int MessageMetrics::rounds_to_all() const {
  int last = 1;
  for (const auto& [round, count] : recovered_in_round)
    if (count > 0) last = std::max(last, round);
  std::size_t attributed = 0;
  for (const auto& [wave, count] : unicast_recovered_in_wave) {
    if (count > 0) last = std::max(last, multicast_rounds + wave);
    attributed += count;
  }
  if (unicast_users > attributed) last = std::max(last, multicast_rounds + 1);
  return last;
}

double RunMetrics::mean_bandwidth_overhead() const {
  if (messages.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : messages) s += m.bandwidth_overhead();
  return s / static_cast<double>(messages.size());
}

double RunMetrics::mean_total_bandwidth_overhead() const {
  if (messages.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : messages) s += m.total_bandwidth_overhead();
  return s / static_cast<double>(messages.size());
}

double RunMetrics::mean_round1_nacks() const {
  if (messages.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : messages)
    s += static_cast<double>(m.round1_nacks);
  return s / static_cast<double>(messages.size());
}

double RunMetrics::mean_rounds_to_all() const {
  if (messages.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : messages) s += m.rounds_to_all();
  return s / static_cast<double>(messages.size());
}

double RunMetrics::mean_user_rounds() const {
  if (messages.empty()) return 0.0;
  double s = 0.0;
  for (const auto& m : messages) s += m.mean_user_rounds();
  return s / static_cast<double>(messages.size());
}

std::map<int, double> RunMetrics::round_distribution() const {
  std::map<int, std::size_t> counts;
  std::size_t total = 0;
  for (const auto& m : messages) {
    for (const auto& [round, count] : m.recovered_in_round) {
      counts[round] += count;
      total += count;
    }
    std::size_t attributed = 0;
    for (const auto& [wave, count] : m.unicast_recovered_in_wave) {
      counts[m.multicast_rounds + wave] += count;
      total += count;
      attributed += count;
    }
    if (m.unicast_users > attributed) {
      counts[m.multicast_rounds + 1] += m.unicast_users - attributed;
      total += m.unicast_users - attributed;
    }
  }
  std::map<int, double> out;
  if (total == 0) return out;
  for (const auto& [round, count] : counts)
    out[round] =
        static_cast<double>(count) / static_cast<double>(total);
  return out;
}

std::size_t RunMetrics::total_deadline_misses() const {
  std::size_t s = 0;
  for (const auto& m : messages) s += m.deadline_misses;
  return s;
}

}  // namespace rekey::transport
