#include "common/bytes.h"

#include "common/ensure.h"

namespace rekey {

void ByteWriter::put_bits(std::uint32_t value, int bits) {
  REKEY_ENSURE(bits >= 1 && bits <= 32);
  for (int i = bits - 1; i >= 0; --i) {
    const bool bit = (value >> i) & 1u;
    if (bit_pos_ == 0) buf_.push_back(0);
    if (bit) buf_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_pos_));
    bit_pos_ = (bit_pos_ + 1) % 8;
  }
}

void ByteWriter::ensure_boundary() const {
  REKEY_ENSURE_MSG(bit_pos_ == 0, "byte field written mid-bitfield");
}

void ByteWriter::put_u8(std::uint8_t v) {
  ensure_boundary();
  buf_.push_back(v);
}

void ByteWriter::put_u16(std::uint16_t v) {
  ensure_boundary();
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v >> 16));
  put_u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> data) {
  ensure_boundary();
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::pad_to(std::size_t size) {
  ensure_boundary();
  REKEY_ENSURE(buf_.size() <= size);
  buf_.resize(size, 0);
}

const Bytes& ByteWriter::bytes() const& {
  ensure_boundary();
  return buf_;
}

Bytes ByteWriter::take() && {
  ensure_boundary();
  return std::move(buf_);
}

std::uint32_t ByteReader::get_bits(int bits) {
  REKEY_ENSURE(bits >= 1 && bits <= 32);
  std::uint32_t v = 0;
  for (int i = 0; i < bits; ++i) {
    require(1);
    const std::uint8_t byte = data_[pos_];
    const bool bit = (byte >> (7 - bit_pos_)) & 1u;
    v = (v << 1) | (bit ? 1u : 0u);
    if (++bit_pos_ == 8) {
      bit_pos_ = 0;
      ++pos_;
    }
  }
  return v;
}

void ByteReader::ensure_boundary() const {
  REKEY_ENSURE_MSG(bit_pos_ == 0, "byte field read mid-bitfield");
}

void ByteReader::require(std::size_t n) const {
  REKEY_ENSURE_MSG(pos_ + n <= data_.size(), "packet truncated");
}

std::uint8_t ByteReader::get_u8() {
  ensure_boundary();
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  const std::uint16_t hi = get_u8();
  const std::uint16_t lo = get_u8();
  return static_cast<std::uint16_t>(hi << 8 | lo);
}

std::uint32_t ByteReader::get_u32() {
  const std::uint32_t hi = get_u16();
  const std::uint32_t lo = get_u16();
  return hi << 16 | lo;
}

std::uint64_t ByteReader::get_u64() {
  const std::uint64_t hi = get_u32();
  const std::uint64_t lo = get_u32();
  return hi << 32 | lo;
}

Bytes ByteReader::get_bytes(std::size_t n) {
  ensure_boundary();
  require(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xF]);
  }
  return s;
}

}  // namespace rekey
