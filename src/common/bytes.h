// Wire-format byte and bit I/O.
//
// Packet headers in the rekey protocol are bit-packed (e.g. a 2-bit type
// next to a 6-bit rekey-message id, Fig. 5 of the protocol paper), so the
// writer/reader support both whole-byte fields (big-endian) and sub-byte
// bit fields. Bit fields must be flushed to a byte boundary before byte
// fields are used; the classes enforce this.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rekey {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  // Append `bits` (1..32) low-order bits of `value`, MSB-first.
  void put_bits(std::uint32_t value, int bits);

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bytes(std::span<const std::uint8_t> data);

  // Append zero bytes until the buffer reaches `size`.
  void pad_to(std::size_t size);

  std::size_t size() const { return buf_.size(); }
  bool at_byte_boundary() const { return bit_pos_ == 0; }

  const Bytes& bytes() const&;
  Bytes take() &&;

 private:
  void ensure_boundary() const;

  Bytes buf_;
  int bit_pos_ = 0;  // bits already written into the trailing partial byte
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t get_bits(int bits);
  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  Bytes get_bytes(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_byte_boundary() const { return bit_pos_ == 0; }

 private:
  void ensure_boundary() const;
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  int bit_pos_ = 0;  // bits already consumed from data_[pos_]
};

// Hex encoding, handy for logging and test diagnostics.
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace rekey
