// A small self-contained JSON value: enough for the observability layer
// (metric snapshots, trace events) and the bench emitters, with a strict
// parser so tests can round-trip the documents the benches write.
//
// Deliberate properties:
//  * Objects preserve insertion order, so emitted documents are stable
//    byte-for-byte across runs and easy to diff.
//  * Integers are kept distinct from doubles (the bench-diff tooling
//    compares integer fields exactly, float fields within tolerance).
//  * Doubles serialize via shortest round-trip formatting (std::to_chars),
//    so dump(parse(dump(x))) is a fixed point.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace rekey {

class Json {
 public:
  using Array = std::vector<Json>;
  // Insertion-ordered object; lookups are linear (documents are small).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long long v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  // Any JSON number (integer- or float-valued).
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(value_); }
  double as_double() const;  // accepts either number representation
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  Array& as_array() { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }
  Object& as_object() { return std::get<Object>(value_); }

  // Object access. set() replaces an existing key in place (order kept);
  // find() returns nullptr when absent; at() throws via std::get on a
  // non-object and REKEY-style logic_error when the key is missing.
  Json& set(std::string key, Json value);
  const Json* find(std::string_view key) const;
  Json* find(std::string_view key) {
    return const_cast<Json*>(std::as_const(*this).find(key));
  }
  const Json& at(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }

  // Array append.
  Json& push_back(Json value);

  std::size_t size() const;

  // Compact single-line serialization (indent < 0) or pretty-printed with
  // `indent` spaces per level.
  std::string dump(int indent = -1) const;
  void dump_to(std::ostream& os, int indent = -1) const;

  // Strict parse of a complete document; nullopt on any syntax error or
  // trailing garbage.
  static std::optional<Json> parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  void dump_impl(std::ostream& os, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

// JSON string escaping (used by the trace writer's hand-rolled fast path).
void json_escape_to(std::ostream& os, std::string_view s);

}  // namespace rekey
