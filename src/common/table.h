// ASCII table and series printers for the benchmark harness.
//
// Every bench binary regenerates one figure of the paper; these helpers
// print the same rows/series the paper plots, in aligned columns that are
// easy to diff and to feed to a plotting script. Cells keep their types
// (string / double / integer) until printed, so the JSON bench emitter can
// export the same table with faithful value types.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace rekey {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  using Cell = std::variant<std::string, double, long long>;
  void add_row(std::vector<Cell> cells);

  // Fixed-point precision for double cells (default 3).
  void set_precision(int digits) { precision_ = digits; }

  void print(std::ostream& os) const;

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

// Prints a figure banner: experiment id, caption, and the parameter line
// the paper prints above each plot.
void print_figure_header(std::ostream& os, const std::string& id,
                         const std::string& caption,
                         const std::string& params);

}  // namespace rekey
