#include "common/obs.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/env.h"

namespace rekey::obs {

namespace {
constexpr int kSubBuckets = 16;
}  // namespace

int Histogram::bucket_index(double v) {
  // Bucket 0 holds zero, negatives, and denormal-small values; positive
  // values map to 16 linear sub-buckets per binary order of magnitude.
  if (!(v > 1e-12)) return 0;
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  // frexp exponents of doubles stay within [-1073, 1024].
  return (exp + 1100) * kSubBuckets + sub + 1;
}

void Histogram::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = buckets_[bucket_index(v)];
  ++b.count;
  b.sum += v;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

std::size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank (1-based): the smallest bucket whose cumulative count
  // reaches ceil(q * n).
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cum = 0;
  for (const auto& [idx, b] : buckets_) {
    cum += b.count;
    if (cum >= target) {
      const double rep = b.sum / static_cast<double>(b.count);
      if (rep < min_) return min_;
      if (rep > max_) return max_;
      return rep;
    }
  }
  return max_;
}

Json Histogram::to_json() const {
  Json out = Json::object();
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.set("count", static_cast<std::int64_t>(count_));
    out.set("sum", sum_);
    out.set("min", min_);
    out.set("max", max_);
  }
  out.set("p50", percentile(0.50));
  out.set("p90", percentile(0.90));
  out.set("p99", percentile(0.99));
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_)
    counters.set(name, static_cast<std::int64_t>(c->value()));
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) histograms.set(name, h->to_json());
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace detail {
std::atomic<bool> g_trace_on{false};
}  // namespace detail

namespace {

// The sink behind Trace: a mutex-guarded append stream plus the sequence
// counter. Opened from REKEY_TRACE on first touch of this translation
// unit's statics, or explicitly via Trace::open.
struct TraceSink {
  std::mutex mu;
  std::ofstream out;
  std::uint64_t seq = 0;

  TraceSink() {
    if (const auto path = env::raw("REKEY_TRACE");
        path.has_value() && !path->empty()) {
      out.open(std::string(*path), std::ios::out | std::ios::app);
      if (out.is_open())
        detail::g_trace_on.store(true, std::memory_order_relaxed);
    }
  }
};

TraceSink& sink() {
  static TraceSink s;
  return s;
}

// Force env evaluation at static-initialization time so trace_enabled()
// is accurate before the first emit.
[[maybe_unused]] const bool g_sink_initialized = (sink(), true);

}  // namespace

void Trace::open(const std::string& path) {
  TraceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.out.is_open()) s.out.close();
  s.out.open(path, std::ios::out | std::ios::trunc);
  detail::g_trace_on.store(s.out.is_open(), std::memory_order_relaxed);
}

void Trace::close() {
  TraceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  detail::g_trace_on.store(false, std::memory_order_relaxed);
  if (s.out.is_open()) s.out.close();
}

void Trace::emit(
    std::string_view event,
    std::initializer_list<std::pair<std::string_view, Json>> fields) {
  if (!trace_enabled()) return;
  // Serialize outside the lock; only the write and seq stamp are guarded.
  std::ostringstream line;
  line << "{\"ev\":";
  json_escape_to(line, event);
  for (const auto& [key, value] : fields) {
    line << ',';
    json_escape_to(line, key);
    line << ':';
    value.dump_to(line);
  }
  TraceSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.out.is_open()) return;  // closed between the check and the lock
  s.out << line.str() << ",\"seq\":" << s.seq++ << "}\n";
  s.out.flush();
}

}  // namespace rekey::obs
