#include "common/parallel.h"

#include <chrono>
#include <exception>

#include "common/ensure.h"
#include "common/env.h"

namespace rekey {

unsigned default_thread_count() {
  // Strict parse: non-numeric, negative, or overflowing values warn once
  // and fall through to hardware concurrency instead of silently running
  // with garbage (or zero) workers. 0 explicitly means "serial".
  if (const auto v = env::int_value("REKEY_THREADS", 0, 4096))
    return *v < 1 ? 1u : static_cast<unsigned>(*v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? default_thread_count() : threads) {
  if (threads_ == 1) return;  // inline execution, no workers
  queues_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::try_run_one(unsigned self) {
  std::function<void()> task;
  // Own queue first (front), then steal from the others (back).
  for (unsigned probe = 0; probe < threads_ && !task; ++probe) {
    Queue& q = *queues_[(self + probe) % threads_];
    std::lock_guard lock(q.mutex);
    if (q.tasks.empty()) continue;
    if (probe == 0) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    } else {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
  }
  if (!task) return false;
  task();
  {
    std::lock_guard lock(idle_mutex_);
    --pending_;
  }
  done_cv_.notify_all();
  return true;
}

void ThreadPool::worker_loop(unsigned self) {
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock lock(idle_mutex_);
    if (stop_) return;
    if (pending_ == 0) {
      idle_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
      continue;
    }
    // Pending work exists but every queue looked empty in the scan above:
    // another worker holds it; back off briefly rather than spin.
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto guarded = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  {
    std::lock_guard lock(idle_mutex_);
    REKEY_ENSURE_MSG(pending_ == 0,
                     "ThreadPool::for_each_index is not reentrant");
    pending_ = n;
    for (std::size_t i = 0; i < n; ++i) {
      Queue& q = *queues_[next_queue_];
      next_queue_ = (next_queue_ + 1) % threads_;
      std::lock_guard qlock(q.mutex);
      q.tasks.emplace_back([&guarded, i] { guarded(i); });
    }
  }
  idle_cv_.notify_all();

  {
    std::unique_lock lock(idle_mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

void TaskRunner::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (permute_) {
    // splitmix64 over (seed, round) seeds a Fisher–Yates shuffle; the
    // permutation is a pure function of (seed, round), so a replayed
    // sequence of run() calls sees the same adversarial orders.
    std::uint64_t x = permute_seed_ + (round_++) * 0x9E3779B97F4A7C15ull;
    auto next = [&x]() {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next() % i);
      std::swap(order[i - 1], order[j]);
    }
    for (const std::size_t i : order) fn(i);
    return;
  }
  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->for_each_index(n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

void parallel_for_each_index(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             unsigned threads) {
  const unsigned count = threads == 0 ? default_thread_count() : threads;
  if (count == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(count);
  pool.for_each_index(n, fn);
}

}  // namespace rekey
