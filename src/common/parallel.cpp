#include "common/parallel.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <fstream>
#include <map>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "common/ensure.h"
#include "common/env.h"
#include "common/obs.h"

namespace rekey {

unsigned default_thread_count() {
  // Strict parse: non-numeric, negative, or overflowing values warn once
  // and fall through to hardware concurrency instead of silently running
  // with garbage (or zero) workers. 0 explicitly means "serial".
  if (const auto v = env::int_value("REKEY_THREADS", 0, 4096))
    return *v < 1 ? 1u : static_cast<unsigned>(*v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

bool pin_by_default() {
  if (const auto v = env::int_value("REKEY_PIN", 0, 1)) return *v == 1;
  return false;
}

namespace {

#ifdef __linux__
// topology/core_id (or physical_package_id) for one CPU; -1 when the
// sysfs file is missing (containers often mask /sys).
int topology_value(int cpu, const char* leaf) {
  std::ifstream in("/sys/devices/system/cpu/cpu" + std::to_string(cpu) +
                   "/topology/" + leaf);
  int v = -1;
  if (!(in >> v)) return -1;
  return v;
}
#endif

}  // namespace

std::vector<int> pinning_cpu_order() {
  std::vector<int> order;
#ifdef __linux__
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (sched_getaffinity(0, sizeof allowed, &allowed) != 0) return order;
  std::vector<int> cpus;
  for (int c = 0; c < CPU_SETSIZE; ++c)
    if (CPU_ISSET(c, &allowed)) cpus.push_back(c);

  // Bucket by physical core: (package, core) -> the CPUs (SMT siblings)
  // sharing it. Any unreadable topology entry degrades the whole order to
  // plain ascending — half-known topology is worse than none.
  std::map<std::pair<int, int>, std::vector<int>> cores;
  bool topology_ok = true;
  for (const int c : cpus) {
    const int pkg = topology_value(c, "physical_package_id");
    const int core = topology_value(c, "core_id");
    if (pkg < 0 || core < 0) {
      topology_ok = false;
      break;
    }
    cores[{pkg, core}].push_back(c);
  }
  if (!topology_ok) return cpus;  // already ascending

  // Breadth-first over cores: every distinct core's first sibling, then
  // every core's second, and so on.
  for (std::size_t round = 0; order.size() < cpus.size(); ++round)
    for (auto& [key, siblings] : cores)
      if (round < siblings.size()) order.push_back(siblings[round]);
#endif
  return order;
}

ThreadPool::ThreadPool(unsigned threads, int pin)
    : threads_(threads == 0 ? default_thread_count() : threads) {
  if (threads_ == 1) return;  // inline execution, no workers
  queues_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i)
    queues_.push_back(std::make_unique<Queue>());
  const bool want_pin = pin == 0 ? false : pin == 1 || pin_by_default();
  const std::vector<int> cpu_order =
      want_pin ? pinning_cpu_order() : std::vector<int>{};
  workers_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
#ifdef __linux__
    if (!cpu_order.empty()) {
      cpu_set_t one;
      CPU_ZERO(&one);
      CPU_SET(cpu_order[i % cpu_order.size()], &one);
      if (pthread_setaffinity_np(workers_.back().native_handle(), sizeof one,
                                 &one) == 0)
        ++pinned_;
    }
#endif
  }
  if (pinned_ > 0)
    obs::MetricsRegistry::global().counter("parallel.pinned_workers")
        .add(pinned_);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::try_run_one(unsigned self) {
  std::function<void()> task;
  // Own queue first (front), then steal from the others (back).
  for (unsigned probe = 0; probe < threads_ && !task; ++probe) {
    Queue& q = *queues_[(self + probe) % threads_];
    std::lock_guard lock(q.mutex);
    if (q.tasks.empty()) continue;
    if (probe == 0) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    } else {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
  }
  if (!task) return false;
  task();
  {
    std::lock_guard lock(idle_mutex_);
    --pending_;
  }
  done_cv_.notify_all();
  return true;
}

void ThreadPool::worker_loop(unsigned self) {
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock lock(idle_mutex_);
    if (stop_) return;
    if (pending_ == 0) {
      idle_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
      continue;
    }
    // Pending work exists but every queue looked empty in the scan above:
    // another worker holds it; back off briefly rather than spin.
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto guarded = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  {
    std::lock_guard lock(idle_mutex_);
    REKEY_ENSURE_MSG(pending_ == 0,
                     "ThreadPool::for_each_index is not reentrant");
    pending_ = n;
    for (std::size_t i = 0; i < n; ++i) {
      Queue& q = *queues_[next_queue_];
      next_queue_ = (next_queue_ + 1) % threads_;
      std::lock_guard qlock(q.mutex);
      q.tasks.emplace_back([&guarded, i] { guarded(i); });
    }
  }
  idle_cv_.notify_all();

  {
    std::unique_lock lock(idle_mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

void TaskRunner::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (permute_) {
    // splitmix64 over (seed, round) seeds a Fisher–Yates shuffle; the
    // permutation is a pure function of (seed, round), so a replayed
    // sequence of run() calls sees the same adversarial orders.
    std::uint64_t x = permute_seed_ + (round_++) * 0x9E3779B97F4A7C15ull;
    auto next = [&x]() {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next() % i);
      std::swap(order[i - 1], order[j]);
    }
    for (const std::size_t i : order) fn(i);
    return;
  }
  if (pool_ != nullptr && pool_->size() > 1) {
    pool_->for_each_index(n, fn);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}

void parallel_for_each_index(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             unsigned threads) {
  const unsigned count = threads == 0 ? default_thread_count() : threads;
  if (count == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(count);
  pool.for_each_index(n, fn);
}

}  // namespace rekey
