#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rekey {

namespace {

// Shortest round-trip formatting; JSON has no Infinity/NaN, emit null.
void dump_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  os.write(buf, res.ptr - buf);
  // Integer-valued doubles must not re-parse as integers: the bench-diff
  // tooling keys exact-vs-tolerant comparison off the number's type.
  const std::string_view written(buf, static_cast<std::size_t>(res.ptr - buf));
  if (written.find_first_of(".eE") == std::string_view::npos) os << ".0";
}

}  // namespace

void json_escape_to(std::ostream& os, std::string_view s) {
  os.put('"');
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os.put(c);  // UTF-8 passes through byte-wise
        }
    }
  }
  os.put('"');
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(as_int());
  return std::get<double>(value_);
}

Json& Json::set(std::string key, Json value) {
  Object& obj = std::get<Object>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
  return obj.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_))
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr)
    throw std::logic_error("Json::at: missing key '" + std::string(key) + "'");
  return *v;
}

Json& Json::push_back(Json value) {
  Array& arr = std::get<Array>(value_);
  arr.push_back(std::move(value));
  return arr.back();
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

void Json::dump_impl(std::ostream& os, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    os.put('\n');
    for (int i = 0; i < indent * d; ++i) os.put(' ');
  };
  if (is_null()) {
    os << "null";
  } else if (is_bool()) {
    os << (as_bool() ? "true" : "false");
  } else if (is_int()) {
    os << as_int();
  } else if (is_double()) {
    dump_double(os, std::get<double>(value_));
  } else if (is_string()) {
    json_escape_to(os, as_string());
  } else if (is_array()) {
    const Array& arr = std::get<Array>(value_);
    if (arr.empty()) {
      os << "[]";
      return;
    }
    os.put('[');
    bool first = true;
    for (const Json& v : arr) {
      if (!first) os.put(',');
      first = false;
      newline_pad(depth + 1);
      v.dump_impl(os, indent, depth + 1);
    }
    newline_pad(depth);
    os.put(']');
  } else {
    const Object& obj = std::get<Object>(value_);
    if (obj.empty()) {
      os << "{}";
      return;
    }
    os.put('{');
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) os.put(',');
      first = false;
      newline_pad(depth + 1);
      json_escape_to(os, k);
      os.put(':');
      if (indent >= 0) os.put(' ');
      v.dump_impl(os, indent, depth + 1);
    }
    newline_pad(depth);
    os.put('}');
  }
}

void Json::dump_to(std::ostream& os, int indent) const {
  dump_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  dump_to(os, indent);
  return os.str();
}

namespace {

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse_document() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    // Depth guard: documents are machine-written and shallow; a deeply
    // nested hostile input must not overflow the stack.
    if (depth_ > 200) return std::nullopt;
    const char c = text_[pos_];
    if (c == 'n') return consume_literal("null") ? std::optional(Json())
                                                 : std::nullopt;
    if (c == 't')
      return consume_literal("true") ? std::optional(Json(true)) : std::nullopt;
    if (c == 'f')
      return consume_literal("false") ? std::optional(Json(false))
                                      : std::nullopt;
    if (c == '"') return parse_string();
    if (c == '[') return parse_array();
    if (c == '{') return parse_object();
    return parse_number();
  }

  std::optional<Json> parse_string() {
    auto s = parse_raw_string();
    if (!s) return std::nullopt;
    return Json(std::move(*s));
  }

  std::optional<std::string> parse_raw_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return std::nullopt;
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported;
          // the emitters only escape control characters).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    bool is_float = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_float = true;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_float = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return std::nullopt;
    if (!is_float) {
      std::int64_t iv = 0;
      const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size())
        return Json(iv);
      // Out-of-range integer literal: fall through to double.
    }
    double dv = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size())
      return std::nullopt;
    return Json(dv);
  }

  std::optional<Json> parse_array() {
    if (!consume('[')) return std::nullopt;
    ++depth_;
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      auto v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) break;
      if (!consume(',')) return std::nullopt;
    }
    --depth_;
    return arr;
  }

  std::optional<Json> parse_object() {
    if (!consume('{')) return std::nullopt;
    ++depth_;
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      auto key = parse_raw_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      auto v = parse_value();
      if (!v) return std::nullopt;
      obj.set(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) break;
      if (!consume(',')) return std::nullopt;
    }
    --depth_;
    return obj;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace rekey
