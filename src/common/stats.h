// Streaming and batch statistics used by the benchmark harness and tests.
#pragma once

#include <cstddef>
#include <vector>

namespace rekey {

// Welford's online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile with linear interpolation; q in [0,1]. Sorts a copy.
double percentile(std::vector<double> values, double q);

// Arithmetic mean of a vector (0 for empty).
double mean_of(const std::vector<double>& values);

}  // namespace rekey
