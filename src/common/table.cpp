#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/ensure.h"

namespace rekey {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  REKEY_ENSURE(!headers_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  REKEY_ENSURE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& cells : rows_) {
    std::vector<std::string> row;
    row.reserve(cells.size());
    for (const auto& c : cells) {
      if (const auto* s = std::get_if<std::string>(&c)) {
        row.push_back(*s);
      } else if (const auto* d = std::get_if<double>(&c)) {
        std::ostringstream fmt;
        fmt << std::fixed << std::setprecision(precision_) << *d;
        row.push_back(fmt.str());
      } else {
        row.push_back(std::to_string(std::get<long long>(c)));
      }
    }
    formatted.push_back(std::move(row));
  }

  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : formatted)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[i]))
         << cells[i];
    }
    os << '\n';
  };
  line(headers_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i) rule += "  ";
    rule += std::string(widths[i], '-');
  }
  os << rule << '\n';
  for (const auto& row : formatted) line(row);
}

void print_figure_header(std::ostream& os, const std::string& id,
                         const std::string& caption,
                         const std::string& params) {
  os << "\n== " << id << ": " << caption << "\n";
  if (!params.empty()) os << "   [" << params << "]\n";
  os << '\n';
}

}  // namespace rekey
