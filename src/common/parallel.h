// A small work-stealing thread pool for embarrassingly parallel
// experiment work (independent sweep points, Monte-Carlo cells).
//
// Each worker owns a deque: its own tasks come off the front, idle
// workers steal off the back of a victim's deque, and an external
// submit() round-robins across workers so the initial distribution is
// even. Tasks are expected to be coarse (milliseconds to seconds), so a
// mutex per deque is plenty; there is no lock-free cleverness here.
//
// Determinism contract: the pool never owns RNG state. Callers give every
// task its own seed (see rekey::mix_seed) and a dedicated output slot, so
// results are bit-identical regardless of thread count or scheduling.
//
// The worker count defaults to the REKEY_THREADS environment variable
// when set (minimum 1), else the hardware concurrency. A count of 1 runs
// every task inline on the calling thread — exactly the serial path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rekey {

// REKEY_THREADS when set (values < 1 mean 1), else hardware concurrency
// (at least 1).
unsigned default_thread_count();

// REKEY_PIN=1 opts workers into CPU affinity pinning (default off; strict
// parse through common/env.h, warn-once on nonsense).
bool pin_by_default();

// The CPU ids workers are pinned to, round-robin by worker index:
// the process's allowed CPUs (sched_getaffinity), ordered so distinct
// physical cores come before SMT siblings — worker k lands on the k-th
// least-contended execution resource, which is what the shard pipeline
// wants (one memory-bound marking task per core, hyperthreads only once
// cores are exhausted). Falls back to ascending CPU id when the sysfs
// topology files are unreadable. Empty on non-Linux builds.
std::vector<int> pinning_cpu_order();

class ThreadPool {
 public:
  // threads == 0 picks default_thread_count(). With one thread no workers
  // are spawned and tasks run inline on the submitting thread.
  // `pin` overrides REKEY_PIN: -1 consults the environment, 0 forces
  // unpinned, 1 forces pinning. Workers are pinned round-robin over
  // pinning_cpu_order() from the constructing thread, so by the time the
  // constructor returns pinned_workers() is final.
  explicit ThreadPool(unsigned threads = 0, int pin = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return threads_; }
  // Workers whose affinity mask was successfully applied (0 when pinning
  // is off, on non-Linux builds, or with an inline single-thread pool).
  unsigned pinned_workers() const { return pinned_; }

  // Runs fn(i) for every i in [0, n) across the pool and blocks until all
  // complete. If any invocation throws, the first exception is rethrown
  // on the caller after the remaining iterations finish.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(unsigned self);
  bool try_run_one(unsigned self);

  unsigned threads_;
  unsigned pinned_ = 0;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
  std::size_t next_queue_ = 0;
  bool stop_ = false;
};

// Convenience: run fn(i) for i in [0, n) on a one-shot pool (threads == 0
// picks the default). Serial when the count resolves to 1.
void parallel_for_each_index(std::size_t n,
                             const std::function<void(std::size_t)>& fn,
                             unsigned threads = 0);

// Runs batches of independent tasks that write to disjoint, pre-assigned
// output slots — the execution discipline of the sharded rekey pipeline.
// With a pool of more than one worker the tasks fan out across it;
// otherwise they run inline in index order. A permutation seed (test
// hook) forces inline execution in a seeded adversarial shuffle of the
// index order instead: because every task owns its output slots, every
// order must yield bit-identical results, and the hook lets tests prove
// that without relying on scheduler luck. Successive run() calls under
// one seed use distinct derived permutations.
class TaskRunner {
 public:
  explicit TaskRunner(ThreadPool* pool = nullptr) : pool_(pool) {}

  // Degree of concurrency callers should size chunk counts for.
  unsigned parallelism() const {
    return pool_ == nullptr ? 1u : pool_->size();
  }

  bool has_permutation() const { return permute_; }
  void set_permutation_seed(std::uint64_t seed) {
    permute_ = true;
    permute_seed_ = seed;
    round_ = 0;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  ThreadPool* pool_;
  bool permute_ = false;
  std::uint64_t permute_seed_ = 0;
  std::uint64_t round_ = 0;
};

}  // namespace rekey
