#include "common/rng.h"

#include <cmath>
#include <unordered_set>

#include "common/ensure.h"

namespace rekey {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t x = base;
  std::uint64_t h = splitmix64(x);
  x ^= index * 0xD1B54A32D192ED03ULL;
  h ^= splitmix64(x);
  return splitmix64(h);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A state of all zeros would be a fixed point; splitmix64 cannot produce
  // four zero outputs in a row, but keep the guarantee explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  REKEY_ENSURE(lo <= hi);
  const std::uint64_t range = hi - lo + 1;  // wraps to 0 for the full range
  if (range == 0) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + v % range;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) {
  REKEY_ENSURE(mean > 0.0);
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::uint64_t Rng::next_geometric(double p) {
  REKEY_ENSURE(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u;
  do {
    u = next_double();
  } while (u == 0.0);
  return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  REKEY_ENSURE(k <= n);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k > n / 3) {
    // Dense: partial Fisher–Yates over the whole population.
    std::vector<std::uint64_t> pool(n);
    for (std::uint64_t i = 0; i < n; ++i) pool[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = next_in(i, n - 1);
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
  } else {
    // Sparse: rejection against a hash set.
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(static_cast<std::size_t>(k) * 2);
    while (out.size() < k) {
      const std::uint64_t v = next_in(0, n - 1);
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace rekey
