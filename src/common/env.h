// Hardened environment-variable parsing, shared by every REKEY_* knob.
//
// The knobs (REKEY_THREADS, REKEY_SIMD, REKEY_TRACE, ...) are operator
// input from a shell, not trusted configuration: "REKEY_THREADS=max",
// "REKEY_THREADS=-3" and "REKEY_THREADS=99999999999999999999" have all
// been typed in anger. Before this helper each call site ran its own
// strtol and silently used garbage (or 0 workers) on malformed input;
// now a malformed value produces one warning on stderr per variable per
// process and falls back to the unset behavior.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace rekey::env {

// Raw value of the variable, or nullopt when unset. (An empty string is
// returned as an empty view, not nullopt: "REKEY_SIMD=" was set, however
// uselessly, and callers may want to warn about it.)
std::optional<std::string_view> raw(const char* name);

// Strictly-parsed decimal integer in [min, max]. Returns nullopt when the
// variable is unset. When it is set but non-numeric, has trailing junk,
// overflows long long, or falls outside [min, max], warns once per
// variable on stderr and returns nullopt so the caller applies its
// documented default instead of garbage.
std::optional<long long> int_value(const char* name, long long min,
                                   long long max);

// Emit `message` for `name` at most once per process (used by string
// knobs like REKEY_SIMD that validate against their own token lists but
// want the same warn-once discipline).
void warn_once(const char* name, const std::string& message);

// Test hook: forget which variables have already warned.
void reset_warnings_for_test();

}  // namespace rekey::env
