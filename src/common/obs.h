// Observability: a process-wide metrics registry and an env-gated
// structured event trace.
//
// Metrics registry — named counters, gauges, and histograms. Counters and
// gauges are lock-free atomics; histograms use log-linear buckets (16
// linear sub-buckets per power of two, ~3% relative resolution) with a
// per-bucket running sum, so percentile() returns the mean of the bucket
// the rank falls into — exact when all samples in the bucket coincide and
// within bucket resolution otherwise. Instrument handles returned by the
// registry stay valid for the registry's lifetime; all operations are
// thread-safe (sweep points run on a work-stealing pool).
//
// Event trace — `REKEY_TRACE=path` (or Trace::open in tests) turns on a
// JSON-lines sink; transport hooks emit one object per event: per-round
// NACK/parity/recovery tallies, AdjustRho decisions, unicast waves, eager
// message summaries. When the sink is off, trace_enabled() is a single
// relaxed atomic load and callers skip building the event entirely, so the
// simulation hot path pays nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "common/json.h"

namespace rekey::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  void observe(double v);

  std::size_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;
  // q in [0,1]; nearest-rank over the buckets, clamped to [min, max].
  double percentile(double q) const;

  // {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}
  Json to_json() const;

 private:
  struct Bucket {
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  static int bucket_index(double v);

  mutable std::mutex mu_;
  std::map<int, Bucket> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // The process-wide registry used by the instrumentation hooks.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Snapshot: {"counters":{...},"gauges":{...},"histograms":{...}} with
  // names in lexicographic order.
  Json to_json() const;

  // Drops every instrument (handles become dangling — test use only).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

namespace detail {
extern std::atomic<bool> g_trace_on;
}  // namespace detail

// True iff a trace sink is open. Callers must test this before building
// event fields — that is what makes the disabled path free.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

class Trace {
 public:
  // Opens the sink explicitly (tests; overrides any previous sink).
  static void open(const std::string& path);
  // Flushes and disables the sink.
  static void close();

  // Appends one JSON line {"ev":event,"seq":n,...fields}. A process-wide
  // sequence number stamps each line so interleaved emissions from
  // parallel sweep points stay attributable and ordered.
  static void emit(
      std::string_view event,
      std::initializer_list<std::pair<std::string_view, Json>> fields);
};

}  // namespace rekey::obs
