// Lightweight invariant checking used across librekey.
//
// REKEY_ENSURE is for preconditions and invariants that indicate a
// programming error when violated. It throws (rather than aborts) so tests
// can assert on violations, and it is kept on in release builds: all uses
// are on control paths, never in per-byte inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rekey {

class EnsureError : public std::logic_error {
 public:
  explicit EnsureError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void ensure_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "ENSURE failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw EnsureError(os.str());
}
}  // namespace detail

}  // namespace rekey

#define REKEY_ENSURE(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::rekey::detail::ensure_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define REKEY_ENSURE_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::rekey::detail::ensure_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
