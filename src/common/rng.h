// Deterministic pseudo-random generation for simulations.
//
// All stochastic components of librekey (loss processes, workload
// generators, marking-algorithm experiments) draw from Rng so that a run is
// exactly reproducible from its seed. The generator is xoshiro256**
// seeded via splitmix64; it is not cryptographic (crypto keys come from
// rekey::crypto, not from here).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace rekey {

// Mixes a base seed with a stream index into a well-separated derived
// seed (splitmix64 finalization over both words). Used to give every
// point of a parallel sweep its own independent RNG stream: the derived
// seed depends only on (base, index), never on scheduling.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t index);

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64 uniform bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  // Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  // Geometric: number of Bernoulli(p) failures before the first success.
  std::uint64_t next_geometric(double p);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_in(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // k distinct values sampled uniformly from [0, n). Requires k <= n.
  std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                        std::uint64_t k);

  // Derive an independent generator (for per-entity streams).
  Rng fork();

  // Raw generator state, for snapshot/restore of stateful controllers
  // whose decision streams must survive a failover bit-identically.
  // set_state refuses the all-zero state (a xoshiro fixed point that
  // would make every later draw zero).
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  bool set_state(const std::array<std::uint64_t, 4>& s) {
    if ((s[0] | s[1] | s[2] | s[3]) == 0) return false;
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
    return true;
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace rekey
