#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/ensure.h"

namespace rekey {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

double percentile(std::vector<double> values, double q) {
  REKEY_ENSURE(!values.empty());
  REKEY_ENSURE(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace rekey
