// A minimal open-addressed hash map for integer keys.
//
// The key-tree arena stores the dense id range in plain arrays and spills
// the (rare) sparse tail into this map, so the map is tuned for that use:
// power-of-two capacity, linear probing, tombstone deletion, and a
// splitmix64-mixed hash so sequential NodeIds scatter. Values are stored
// inline next to their keys; there is no per-entry allocation.
//
// Iteration order is the probe-table order, i.e. unspecified — callers
// that need deterministic output must collect and sort keys themselves
// (see KeyTree::for_each_node).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/ensure.h"

namespace rekey {

inline std::uint64_t splitmix64_hash(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename K, typename V>
class FlatMap {
  static constexpr std::uint8_t kEmpty = 0, kFull = 1, kTomb = 2;

 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    keys_.clear();
    values_.clear();
    state_.clear();
    size_ = used_ = 0;
  }

  void reserve(std::size_t n) {
    if (n * 10 >= capacity() * 7) rehash(table_size_for(n));
  }

  bool contains(K key) const { return find(key) != nullptr; }

  const V* find(K key) const {
    if (capacity() == 0) return nullptr;
    const std::size_t mask = capacity() - 1;
    std::size_t i = splitmix64_hash(static_cast<std::uint64_t>(key)) & mask;
    while (true) {
      if (state_[i] == kEmpty) return nullptr;
      if (state_[i] == kFull && keys_[i] == key) return &values_[i];
      i = (i + 1) & mask;
    }
  }

  V* find(K key) {
    return const_cast<V*>(static_cast<const FlatMap*>(this)->find(key));
  }

  // Inserts; returns false (leaving the old value) when the key exists.
  bool insert(K key, V value) {
    grow_if_needed();
    const std::size_t mask = capacity() - 1;
    std::size_t i = splitmix64_hash(static_cast<std::uint64_t>(key)) & mask;
    std::size_t target = capacity();  // first tombstone on the probe path
    while (true) {
      if (state_[i] == kEmpty) {
        if (target == capacity()) target = i;
        break;
      }
      if (state_[i] == kFull && keys_[i] == key) return false;
      if (state_[i] == kTomb && target == capacity()) target = i;
      i = (i + 1) & mask;
    }
    if (state_[target] == kEmpty) ++used_;
    state_[target] = kFull;
    keys_[target] = key;
    values_[target] = std::move(value);
    ++size_;
    return true;
  }

  V& operator[](K key) {
    V* v = find(key);
    if (v != nullptr) return *v;
    insert(key, V{});
    return *find(key);
  }

  bool erase(K key) {
    if (capacity() == 0) return false;
    const std::size_t mask = capacity() - 1;
    std::size_t i = splitmix64_hash(static_cast<std::uint64_t>(key)) & mask;
    while (true) {
      if (state_[i] == kEmpty) return false;
      if (state_[i] == kFull && keys_[i] == key) {
        state_[i] = kTomb;
        values_[i] = V{};
        --size_;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  // Visits every (key, value) pair in unspecified order.
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < capacity(); ++i)
      if (state_[i] == kFull) fn(keys_[i], values_[i]);
  }

  std::size_t memory_bytes() const {
    return capacity() * (sizeof(K) + sizeof(V) + sizeof(std::uint8_t));
  }

 private:
  std::size_t capacity() const { return state_.size(); }

  static std::size_t table_size_for(std::size_t n) {
    std::size_t cap = 16;
    while (cap * 7 < n * 10) cap <<= 1;  // keep load factor under 0.7
    return cap;
  }

  void grow_if_needed() {
    if (capacity() == 0) {
      rehash(16);
    } else if ((used_ + 1) * 10 >= capacity() * 7) {
      // Rehash drops tombstones; grow only when live entries demand it.
      rehash(size_ * 10 >= capacity() * 5 ? capacity() * 2 : capacity());
    }
  }

  void rehash(std::size_t new_cap) {
    REKEY_ENSURE((new_cap & (new_cap - 1)) == 0);
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    keys_.assign(new_cap, K{});
    values_.assign(new_cap, V{});
    state_.assign(new_cap, kEmpty);
    size_ = used_ = 0;
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j =
          splitmix64_hash(static_cast<std::uint64_t>(old_keys[i])) & mask;
      while (state_[j] == kFull) j = (j + 1) & mask;
      state_[j] = kFull;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
      ++size_;
      ++used_;
    }
  }

  std::vector<K> keys_;
  std::vector<V> values_;
  std::vector<std::uint8_t> state_;
  std::size_t size_ = 0;  // live entries
  std::size_t used_ = 0;  // live + tombstones
};

}  // namespace rekey
