#include "common/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace rekey::env {

namespace {

std::mutex& warn_mutex() {
  static std::mutex m;
  return m;
}

std::set<std::string>& warned_set() {
  static std::set<std::string> s;
  return s;
}

}  // namespace

std::optional<std::string_view> raw(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string_view(v);
}

void warn_once(const char* name, const std::string& message) {
  std::lock_guard lock(warn_mutex());
  if (!warned_set().insert(name).second) return;
  std::fprintf(stderr, "rekey: %s\n", message.c_str());
}

void reset_warnings_for_test() {
  std::lock_guard lock(warn_mutex());
  warned_set().clear();
}

std::optional<long long> int_value(const char* name, long long min,
                                   long long max) {
  const auto v = raw(name);
  if (!v.has_value()) return std::nullopt;
  const std::string s(*v);  // strtoll needs NUL termination
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(s.c_str(), &end, 10);
  const bool overflowed = errno == ERANGE;
  const bool numeric = end != s.c_str() && *end == '\0' && !s.empty();
  if (!numeric || overflowed || parsed < min || parsed > max) {
    warn_once(name, std::string(name) + "=" + s +
                        " is not an integer in [" + std::to_string(min) +
                        ", " + std::to_string(max) + "]; ignoring it");
    return std::nullopt;
  }
  return parsed;
}

}  // namespace rekey::env
