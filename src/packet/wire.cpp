#include "packet/wire.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::packet {

namespace {

void put_entry(ByteWriter& w, const EncEntry& e) {
  REKEY_ENSURE_MSG(e.enc_id != 0, "encryption id 0 is reserved for padding");
  w.put_u32(e.enc_id);
  w.put_bytes(e.enc.ciphertext);
  w.put_u16(e.enc.tag);
}

EncEntry get_entry(ByteReader& r, std::uint32_t enc_id) {
  EncEntry e;
  e.enc_id = enc_id;
  const Bytes ct = r.get_bytes(crypto::SymmetricKey::kSize);
  std::copy(ct.begin(), ct.end(), e.enc.ciphertext.begin());
  e.enc.tag = r.get_u16();
  return e;
}

// Reads <encryption, id> entries until zero padding or end of buffer,
// strict about the tail: once the entry loop stops, every remaining byte
// must be zero padding. A nonzero partial tail means the datagram was
// truncated mid-entry or carries trailing garbage — damaged input that
// must be rejected (nullopt), not silently dropped on the floor.
std::optional<std::vector<EncEntry>> get_entries(ByteReader& r) {
  std::vector<EncEntry> out;
  while (r.remaining() >= kEntrySize) {
    const std::uint32_t id = r.get_u32();
    if (id == 0) break;  // padding terminator
    out.push_back(get_entry(r, id));
  }
  while (r.remaining() > 0) {
    if (r.get_u8() != 0) return std::nullopt;
  }
  return out;
}

}  // namespace

tree::Encryption to_tree_encryption(const EncEntry& e, unsigned degree) {
  tree::Encryption t;
  t.enc_id = e.enc_id;
  t.target_id = tree::parent_of(e.enc_id, degree);
  t.payload = e.enc;
  return t;
}

EncEntry to_wire_entry(const tree::Encryption& e) {
  EncEntry w;
  REKEY_ENSURE_MSG(e.enc_id <= 0xFFFFFFFFull, "encryption id overflow");
  w.enc_id = static_cast<std::uint32_t>(e.enc_id);
  w.enc = e.payload;
  return w;
}

Bytes EncPacket::serialize(std::size_t packet_size, bool wide) const {
  REKEY_ENSURE(msg_id < 64);
  REKEY_ENSURE(seq < 128);
  const std::size_t header = wide ? kEncHeaderSizeWide : kEncHeaderSize;
  REKEY_ENSURE_MSG(header + entries.size() * kEntrySize <= packet_size,
                   "too many encryptions for the packet size");
  ByteWriter w;
  w.put_bits(static_cast<std::uint32_t>(PacketType::Enc), 2);
  w.put_bits(msg_id, 6);
  w.put_u16(block_id);
  w.put_bits(duplicate ? 1 : 0, 1);
  w.put_bits(seq, 7);
  if (wide) {
    w.put_u32(max_kid);
    w.put_u32(frm_id);
    w.put_u32(to_id);
  } else {
    // Pre-wide behavior, kept bit-identical: ids silently truncate to 16
    // bits (sim/bench paths that never put these bytes on a real wire
    // depend on the narrow layout — groups that need more negotiate v2).
    w.put_u16(static_cast<std::uint16_t>(max_kid));
    w.put_u16(static_cast<std::uint16_t>(frm_id));
    w.put_u16(static_cast<std::uint16_t>(to_id));
  }
  for (const EncEntry& e : entries) put_entry(w, e);
  w.pad_to(packet_size);
  return std::move(w).take();
}

std::optional<EncPacket> EncPacket::parse(WireView wire, bool wide) {
  const std::size_t header = wide ? kEncHeaderSizeWide : kEncHeaderSize;
  if (wire.size() < header) return std::nullopt;
  ByteReader r(wire);
  if (r.get_bits(2) != static_cast<std::uint32_t>(PacketType::Enc))
    return std::nullopt;
  EncPacket p;
  p.msg_id = static_cast<std::uint8_t>(r.get_bits(6));
  p.block_id = r.get_u16();
  p.duplicate = r.get_bits(1) != 0;
  p.seq = static_cast<std::uint8_t>(r.get_bits(7));
  if (wide) {
    p.max_kid = r.get_u32();
    p.frm_id = r.get_u32();
    p.to_id = r.get_u32();
  } else {
    p.max_kid = r.get_u16();
    p.frm_id = r.get_u16();
    p.to_id = r.get_u16();
  }
  auto entries = get_entries(r);
  if (!entries) return std::nullopt;  // truncated or damaged entry region
  p.entries = std::move(*entries);
  return p;
}

Bytes ParityPacket::serialize() const {
  REKEY_ENSURE(msg_id < 64);
  ByteWriter w;
  w.put_bits(static_cast<std::uint32_t>(PacketType::Parity), 2);
  w.put_bits(msg_id, 6);
  w.put_u16(block_id);
  w.put_u8(parity_seq);
  w.put_bytes(fec);
  return std::move(w).take();
}

std::optional<ParityPacket> ParityPacket::parse(WireView wire) {
  if (wire.size() < kFecOffset) return std::nullopt;
  ByteReader r(wire);
  if (r.get_bits(2) != static_cast<std::uint32_t>(PacketType::Parity))
    return std::nullopt;
  ParityPacket p;
  p.msg_id = static_cast<std::uint8_t>(r.get_bits(6));
  p.block_id = r.get_u16();
  p.parity_seq = r.get_u8();
  p.fec = r.get_bytes(r.remaining());
  return p;
}

Bytes UsrPacket::serialize(bool wide) const {
  REKEY_ENSURE(msg_id < 64);
  ByteWriter w;
  w.put_bits(static_cast<std::uint32_t>(PacketType::Usr), 2);
  w.put_bits(msg_id, 6);
  if (wide) {
    w.put_u32(new_user_id);
    w.put_u32(max_kid);
  } else {
    w.put_u16(static_cast<std::uint16_t>(new_user_id));
    w.put_u16(static_cast<std::uint16_t>(max_kid));
  }
  for (const EncEntry& e : entries) put_entry(w, e);
  return std::move(w).take();
}

std::optional<UsrPacket> UsrPacket::parse(WireView wire, bool wide) {
  if (wire.size() < (wide ? kUsrHeaderSizeWide : kUsrHeaderSize))
    return std::nullopt;
  ByteReader r(wire);
  if (r.get_bits(2) != static_cast<std::uint32_t>(PacketType::Usr))
    return std::nullopt;
  UsrPacket p;
  p.msg_id = static_cast<std::uint8_t>(r.get_bits(6));
  if (wide) {
    p.new_user_id = r.get_u32();
    p.max_kid = r.get_u32();
  } else {
    p.new_user_id = r.get_u16();
    p.max_kid = r.get_u16();
  }
  auto entries = get_entries(r);
  if (!entries) return std::nullopt;  // truncated or damaged entry region
  p.entries = std::move(*entries);
  return p;
}

Bytes NackPacket::serialize() const {
  REKEY_ENSURE(msg_id < 64);
  ByteWriter w;
  w.put_bits(static_cast<std::uint32_t>(PacketType::Nack), 2);
  w.put_bits(msg_id, 6);
  for (const NackEntry& e : entries) {
    w.put_u8(e.parities_needed);
    w.put_u16(e.block_id);
    w.put_u8(e.max_shard_seen);
  }
  return std::move(w).take();
}

std::optional<NackPacket> NackPacket::parse(WireView wire) {
  if (wire.empty()) return std::nullopt;
  ByteReader r(wire);
  if (r.get_bits(2) != static_cast<std::uint32_t>(PacketType::Nack))
    return std::nullopt;
  NackPacket p;
  p.msg_id = static_cast<std::uint8_t>(r.get_bits(6));
  while (r.remaining() >= 4) {
    NackEntry e;
    e.parities_needed = r.get_u8();
    e.block_id = r.get_u16();
    e.max_shard_seen = r.get_u8();
    p.entries.push_back(e);
  }
  // NACKs carry no padding, so a partial trailing entry means truncation.
  if (r.remaining() != 0) return std::nullopt;
  return p;
}

std::optional<PacketType> peek_type(WireView wire) {
  if (wire.empty()) return std::nullopt;
  return static_cast<PacketType>(wire[0] >> 6);
}

std::uint16_t udp_checksum(WireView wire) {
  // Ones'-complement sum of big-endian 16-bit words, odd byte zero-padded,
  // complemented like RFC 768/1071. The end-around-carry fold must loop:
  // on long (jumbo-sized) payloads the first fold can itself carry past
  // bit 16, and a single-pass `~sum & 0xFFFF` would bake that deferred
  // carry into the result.
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < wire.size(); i += 2)
    sum += static_cast<std::uint32_t>(wire[i]) << 8 | wire[i + 1];
  if (i < wire.size()) sum += static_cast<std::uint32_t>(wire[i]) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  const auto folded = static_cast<std::uint16_t>(~sum & 0xFFFF);
  // RFC 768: a computed checksum of zero is transmitted as all ones —
  // on the wire 0x0000 means "no checksum", and a receiver would wave the
  // datagram through unverified.
  return folded == 0 ? std::uint16_t{0xFFFF} : folded;
}

namespace {

std::uint32_t read_u32_at(WireView wire, std::size_t off) {
  return static_cast<std::uint32_t>(wire[off]) << 24 |
         static_cast<std::uint32_t>(wire[off + 1]) << 16 |
         static_cast<std::uint32_t>(wire[off + 2]) << 8 |
         static_cast<std::uint32_t>(wire[off + 3]);
}

}  // namespace

std::optional<EncHeader> parse_enc_header(WireView wire, bool wide) {
  const std::size_t header = wide ? kEncHeaderSizeWide : kEncHeaderSize;
  if (wire.size() < header || peek_type(wire) != PacketType::Enc)
    return std::nullopt;
  EncHeader h;
  h.msg_id = wire[0] & 0x3F;
  h.block_id = static_cast<std::uint16_t>(wire[1] << 8 | wire[2]);
  h.duplicate = (wire[3] & 0x80) != 0;
  h.seq = wire[3] & 0x7F;
  if (wide) {
    h.max_kid = read_u32_at(wire, 4);
    h.frm_id = read_u32_at(wire, 8);
    h.to_id = read_u32_at(wire, 12);
  } else {
    h.max_kid = static_cast<std::uint16_t>(wire[4] << 8 | wire[5]);
    h.frm_id = static_cast<std::uint16_t>(wire[6] << 8 | wire[7]);
    h.to_id = static_cast<std::uint16_t>(wire[8] << 8 | wire[9]);
  }
  return h;
}

std::optional<ParityHeader> parse_parity_header(WireView wire) {
  if (wire.size() < kFecOffset || peek_type(wire) != PacketType::Parity)
    return std::nullopt;
  ParityHeader h;
  h.msg_id = wire[0] & 0x3F;
  h.block_id = static_cast<std::uint16_t>(wire[1] << 8 | wire[2]);
  h.parity_seq = wire[3];
  return h;
}

}  // namespace rekey::packet
