#include "packet/assign.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/ensure.h"
#include "common/parallel.h"

namespace rekey::packet {

double Assignment::duplication_overhead() const {
  if (unique_encryptions == 0) return 0.0;
  return static_cast<double>(total_entries - unique_encryptions) /
         static_cast<double>(unique_encryptions);
}

Assignment assign_keys(const tree::RekeyPayload& payload,
                       std::size_t packet_size, bool wide) {
  const std::size_t capacity = max_entries(packet_size, wide);
  REKEY_ENSURE(capacity >= 1);

  Assignment out;
  out.unique_encryptions = payload.encryptions.size();
  if (payload.user_needs.empty()) return out;

  // user_needs iterates user ids in increasing order. Membership ("is
  // encryption idx already in the open packet?") is O(1): last_pkt[idx]
  // records the packet sequence number that last took idx, so a compare
  // against the current sequence replaces the old sorted-vector binary
  // search — the dominant cost when adjacent users share most of their
  // key chains. The packet itself accumulates unsorted; flush() orders
  // entries by enc_id, which is unique per encryption, so the emitted
  // packets are identical to the sorted-insert version's.
  EncPacket current;
  current.msg_id = static_cast<std::uint8_t>(payload.msg_id % 64);
  current.max_kid = static_cast<std::uint32_t>(payload.max_kid);
  std::vector<std::uint32_t> in_packet;  // encryption indices, unsorted
  in_packet.reserve(capacity);
  std::vector<std::uint32_t> last_pkt(payload.encryptions.size(),
                                      ~std::uint32_t{0});
  std::uint32_t pkt_seq = 0;
  bool open = false;

  const auto member = [&](std::uint32_t idx) {
    return last_pkt[idx] == pkt_seq;
  };

  auto flush = [&]() {
    REKEY_ENSURE(open && !in_packet.empty());
    // Emit entries bottom-up (descending enc_id == descending depth) so a
    // receiver can decrypt its chain in one pass.
    std::sort(in_packet.begin(), in_packet.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return payload.encryptions[a].enc_id >
                       payload.encryptions[b].enc_id;
              });
    current.entries.reserve(in_packet.size());
    for (const std::uint32_t idx : in_packet)
      current.entries.push_back(to_wire_entry(payload.encryptions[idx]));
    out.total_entries += current.entries.size();
    out.packets.push_back(std::move(current));
    current = EncPacket{};
    current.msg_id = static_cast<std::uint8_t>(payload.msg_id % 64);
    current.max_kid = static_cast<std::uint32_t>(payload.max_kid);
    in_packet.clear();
    ++pkt_seq;
    open = false;
  };

  for (const auto& [user, needs] : payload.user_needs) {
    REKEY_ENSURE_MSG(needs.size() <= capacity,
                     "one user's encryptions exceed a packet");
    // How many new entries would this user add?
    std::size_t added = 0;
    for (const std::uint32_t idx : needs)
      if (!member(idx)) ++added;

    if (open && in_packet.size() + added > capacity) flush();

    if (!open) {
      current.frm_id = static_cast<std::uint32_t>(user);
      open = true;
    }
    for (const std::uint32_t idx : needs) {
      if (!member(idx)) {
        last_pkt[idx] = pkt_seq;
        in_packet.push_back(idx);
      }
    }
    current.to_id = static_cast<std::uint32_t>(user);
  }
  if (open) flush();
  return out;
}

Assignment assign_keys(const tree::RekeyPayload& payload,
                       std::size_t packet_size, const tree::ShardPlan& plan,
                       rekey::TaskRunner& runner, bool wide) {
  const std::size_t capacity = max_entries(packet_size, wide);
  REKEY_ENSURE(capacity >= 1);

  Assignment out;
  out.unique_encryptions = payload.encryptions.size();
  if (payload.user_needs.empty()) return out;

  // Phase A: serial boundary scan. Replays the greedy packing decisions
  // of the serial scan — same stamps, same flush points — but only counts
  // entries and records each packet's user range instead of gathering and
  // sorting them.
  struct PacketSpec {
    std::size_t user_begin = 0;  // index into user_needs iteration order
    std::size_t user_end = 0;
    std::size_t entries = 0;
    tree::NodeId frm = 0;
    tree::NodeId to = 0;
  };
  std::vector<PacketSpec> specs;
  {
    std::vector<std::uint32_t> last_pkt(payload.encryptions.size(),
                                        ~std::uint32_t{0});
    std::uint32_t pkt_seq = 0;
    std::size_t in_packet = 0;
    PacketSpec cur;
    bool open = false;
    std::size_t u = 0;
    for (const auto& [user, needs] : payload.user_needs) {
      REKEY_ENSURE_MSG(needs.size() <= capacity,
                       "one user's encryptions exceed a packet");
      std::size_t added = 0;
      for (const std::uint32_t idx : needs)
        if (last_pkt[idx] != pkt_seq) ++added;
      if (open && in_packet + added > capacity) {
        cur.user_end = u;
        cur.entries = in_packet;
        specs.push_back(cur);
        ++pkt_seq;
        in_packet = 0;
        open = false;
      }
      if (!open) {
        cur = PacketSpec{};
        cur.user_begin = u;
        cur.frm = user;
        open = true;
      }
      for (const std::uint32_t idx : needs) {
        if (last_pkt[idx] != pkt_seq) {
          last_pkt[idx] = pkt_seq;
          ++in_packet;
        }
      }
      cur.to = user;
      ++u;
    }
    if (open) {
      cur.user_end = u;
      cur.entries = in_packet;
      specs.push_back(cur);
    }
  }

  // Phase B: independent per-packet fills into preallocated slots. The
  // task count follows the shard count (sharding is the concurrency
  // knob); each task reuses one stamp array across its packets.
  out.packets.resize(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    EncPacket& pkt = out.packets[p];
    pkt.msg_id = static_cast<std::uint8_t>(payload.msg_id % 64);
    pkt.max_kid = static_cast<std::uint32_t>(payload.max_kid);
    pkt.frm_id = static_cast<std::uint32_t>(specs[p].frm);
    pkt.to_id = static_cast<std::uint32_t>(specs[p].to);
    out.total_entries += specs[p].entries;
  }
  const std::size_t chunks = std::max<std::size_t>(
      1, std::min<std::size_t>(specs.size(),
                               static_cast<std::size_t>(plan.shards) * 4));
  // Iterating a CSR range needs positional access; rebuild the per-user
  // spans once (cheap: two vectors of views into the payload).
  std::vector<tree::UserNeeds::needs_span> spans;
  spans.reserve(payload.user_needs.size());
  for (const auto& [user, needs] : payload.user_needs) spans.push_back(needs);
  runner.run(chunks, [&](std::size_t c) {
    const std::size_t pb = specs.size() * c / chunks;
    const std::size_t pe = specs.size() * (c + 1) / chunks;
    std::vector<std::uint32_t> stamp(payload.encryptions.size(),
                                     ~std::uint32_t{0});
    std::vector<std::uint32_t> gathered;
    for (std::size_t p = pb; p < pe; ++p) {
      const PacketSpec& spec = specs[p];
      gathered.clear();
      gathered.reserve(spec.entries);
      const auto mark = static_cast<std::uint32_t>(p);
      for (std::size_t i = spec.user_begin; i < spec.user_end; ++i) {
        for (const std::uint32_t idx : spans[i]) {
          if (stamp[idx] != mark) {
            stamp[idx] = mark;
            gathered.push_back(idx);
          }
        }
      }
      REKEY_ENSURE(gathered.size() == spec.entries);
      // Emit entries bottom-up (descending enc_id == descending depth);
      // enc_id is unique, so the sorted order is independent of the
      // first-encounter gather order above.
      std::sort(gathered.begin(), gathered.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  return payload.encryptions[a].enc_id >
                         payload.encryptions[b].enc_id;
                });
      EncPacket& pkt = out.packets[p];
      pkt.entries.reserve(gathered.size());
      for (const std::uint32_t idx : gathered)
        pkt.entries.push_back(to_wire_entry(payload.encryptions[idx]));
    }
  });
  return out;
}

Assignment assign_keys_sequential(const tree::RekeyPayload& payload,
                                  std::size_t packet_size) {
  const std::size_t capacity = max_entries(packet_size);
  REKEY_ENSURE(capacity >= 1);

  Assignment out;
  out.unique_encryptions = payload.encryptions.size();
  if (payload.encryptions.empty()) return out;

  // Which users each encryption serves (to report per-packet user spans).
  std::map<std::uint32_t, std::pair<tree::NodeId, tree::NodeId>> span;
  for (const auto& [user, needs] : payload.user_needs) {
    for (const std::uint32_t idx : needs) {
      auto [it, inserted] = span.emplace(idx, std::make_pair(user, user));
      if (!inserted) {
        it->second.first = std::min(it->second.first, user);
        it->second.second = std::max(it->second.second, user);
      }
    }
  }

  for (std::size_t off = 0; off < payload.encryptions.size();
       off += capacity) {
    EncPacket pkt;
    pkt.msg_id = static_cast<std::uint8_t>(payload.msg_id % 64);
    pkt.max_kid = static_cast<std::uint32_t>(payload.max_kid);
    tree::NodeId lo = ~tree::NodeId{0}, hi = 0;
    const std::size_t end =
        std::min(off + capacity, payload.encryptions.size());
    for (std::size_t i = off; i < end; ++i) {
      pkt.entries.push_back(to_wire_entry(payload.encryptions[i]));
      const auto it = span.find(static_cast<std::uint32_t>(i));
      if (it != span.end()) {
        lo = std::min(lo, it->second.first);
        hi = std::max(hi, it->second.second);
      }
    }
    pkt.frm_id = static_cast<std::uint32_t>(lo == ~tree::NodeId{0} ? 0 : lo);
    pkt.to_id = static_cast<std::uint32_t>(hi);
    out.total_entries += pkt.entries.size();
    out.packets.push_back(std::move(pkt));
  }
  return out;
}

std::vector<std::size_t> packets_needed_per_user(
    const tree::RekeyPayload& payload, const Assignment& assignment) {
  // Map encryption id -> packet index.
  std::map<std::uint32_t, std::set<std::size_t>> packet_of;
  for (std::size_t p = 0; p < assignment.packets.size(); ++p)
    for (const EncEntry& e : assignment.packets[p].entries)
      packet_of[e.enc_id].insert(p);

  std::vector<std::size_t> out;
  out.reserve(payload.user_needs.size());
  for (const auto& [user, needs] : payload.user_needs) {
    // Greedy lower bound is exact here because duplicated encryptions are
    // rare: count the distinct packets touched, collapsing entries that
    // share a packet.
    std::set<std::size_t> needed_packets;
    for (const std::uint32_t idx : needs) {
      const auto enc_id =
          static_cast<std::uint32_t>(payload.encryptions[idx].enc_id);
      const auto it = packet_of.find(enc_id);
      REKEY_ENSURE_MSG(it != packet_of.end(),
                       "assignment is missing an encryption");
      // If any already-chosen packet carries this encryption, no new
      // packet is needed.
      bool covered = false;
      for (const std::size_t p : it->second)
        covered = covered || needed_packets.count(p) != 0;
      if (!covered) needed_packets.insert(*it->second.begin());
    }
    out.push_back(needed_packets.size());
  }
  return out;
}

}  // namespace rekey::packet
