// Block-id estimation (paper Appendix D).
//
// When a user loses its specific ENC packet it still must NACK the right
// block. Because UKA emits packets in increasing, disjoint <frmID, toID>
// ranges, every *received* ENC packet narrows the range of blocks the lost
// packet can be in:
//   - a packet covering my id pins the block exactly;
//   - a packet "before" me (m > toID) raises the lower bound;
//   - a packet "after" me (m < frmID) lowers the upper bound;
//   - the maxKID field bounds the number of packets that can follow any
//     received packet, bounding `high` even if nothing after me arrives.
// Duplicate ENC packets (last-block filler) are excluded — their headers
// replay an earlier packet's range at a later sequence position.
#pragma once

#include <cstdint>

#include "packet/wire.h"

namespace rekey::packet {

class BlockIdEstimator {
 public:
  // my_id: this user's (current) id; k: block size; degree: key tree degree.
  BlockIdEstimator(std::uint32_t my_id, std::size_t k, unsigned degree);

  // Feed any received ENC packet of the message (header is sufficient).
  void observe(const EncHeader& pkt);

  // True once any packet has been observed (high is bounded from then on).
  bool bounded() const { return bounded_; }
  bool exact() const { return bounded_ && low_ == high_; }
  std::uint32_t low() const { return low_; }
  std::uint32_t high() const { return high_; }

  // Did a packet covering my id arrive? (Then no recovery is needed at all;
  // kept here so the user protocol can reuse the observation pass.)
  bool found_own_packet() const { return found_own_; }

 private:
  std::uint32_t my_id_;
  std::size_t k_;
  unsigned degree_;
  std::uint32_t low_ = 0;
  std::uint32_t high_ = 0xFFFFFFFF;
  bool bounded_ = false;
  bool found_own_ = false;
};

}  // namespace rekey::packet
