// The User-oriented Key Assignment algorithm (UKA, paper §4.3).
//
// UKA packs the encryptions of a rekey message into ENC packets so that
// *all* encryptions needed by any single user land in one packet: users are
// sorted by id and the longest prefix whose (de-duplicated) union of
// encryptions fits is cut into a packet. Successive packets therefore cover
// disjoint, increasing <frmID, toID> user-id ranges — the property that
// makes block-id estimation possible (Appendix D).
//
// The cost of the guarantee is duplication: encryptions shared by users in
// different packets are carried in each such packet. duplication_overhead
// reports the paper's Fig-7 metric.
#pragma once

#include <cstddef>
#include <vector>

#include "keytree/rekey_subtree.h"
#include "keytree/shard.h"
#include "packet/wire.h"

namespace rekey {
class TaskRunner;
}

namespace rekey::packet {

struct Assignment {
  std::vector<EncPacket> packets;
  std::size_t total_entries = 0;       // sum of entries over packets
  std::size_t unique_encryptions = 0;  // encryptions in the rekey subtree

  // (total_entries - unique) / unique — the paper's duplication overhead.
  double duplication_overhead() const;
};

// Builds ENC packets (block ids and sequence numbers still unset; the
// block partitioner fills those in). Every user with at least one needed
// encryption appears in exactly one packet's range. `wide` sizes packet
// capacity for the 16-byte wide (v2) ENC header instead of the 10-byte
// narrow one; the id fields themselves always carry the full 32-bit
// values and only narrow at serialization.
Assignment assign_keys(const tree::RekeyPayload& payload,
                       std::size_t packet_size = kDefaultPacketSize,
                       bool wide = false);

// Sharded/parallel variant. Phase A scans the users serially and decides
// the exact packet boundaries the serial greedy scan would (the cut
// points are inherently sequential); phase B fills the packets as
// independent tasks on `runner` — a packet's entry set is the
// de-duplicated union of its own users' needs, so each packet is
// recomputable in isolation, and entries sort by their globally unique
// enc_id. Packets land in preallocated slots, so the flush order is
// stable and the result is bit-identical to assign_keys regardless of
// shard count, thread count, or task completion order.
Assignment assign_keys(const tree::RekeyPayload& payload,
                       std::size_t packet_size, const tree::ShardPlan& plan,
                       rekey::TaskRunner& runner, bool wide = false);

// Baseline comparator: the *sequential* (encryption-oriented) assignment
// the paper argues against. Encryptions are packed in generation order
// with no duplication, so the message is minimal — but a user's
// encryptions can be spread over several packets, and the single-packet
// guarantee (and with it the <frmID,toID> range discipline that block-id
// estimation relies on) is lost. Returned packets carry the *span* of
// users touched per packet (ranges overlap between packets).
Assignment assign_keys_sequential(
    const tree::RekeyPayload& payload,
    std::size_t packet_size = kDefaultPacketSize);

// For baseline analysis: how many distinct packets of `assignment` does
// each user need to collect all of its encryptions? Index-aligned with
// payload.user_needs iteration order.
std::vector<std::size_t> packets_needed_per_user(
    const tree::RekeyPayload& payload, const Assignment& assignment);

}  // namespace rekey::packet
