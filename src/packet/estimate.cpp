#include "packet/estimate.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::packet {

BlockIdEstimator::BlockIdEstimator(std::uint32_t my_id, std::size_t k,
                                   unsigned degree)
    : my_id_(my_id), k_(k), degree_(degree) {
  REKEY_ENSURE(k >= 1);
}

void BlockIdEstimator::observe(const EncHeader& pkt) {
  if (pkt.duplicate) return;  // replayed header: not usable for estimation
  const std::uint32_t blk = pkt.block_id;
  const std::uint32_t seq = pkt.seq;

  if (pkt.frm_id <= my_id_ && my_id_ <= pkt.to_id) {
    bounded_ = true;
    low_ = high_ = blk;
    found_own_ = true;
    return;
  }

  // Compute the tentative new bounds, then commit only if consistent: a
  // corrupted or forged header must not poison the estimate (consistent
  // packet streams never collapse the range).
  std::uint32_t new_low = low_;
  std::uint32_t new_high = high_;
  if (my_id_ > pkt.to_id) {
    // My packet was generated after this one.
    if (seq == k_ - 1) {
      new_low = std::max(new_low, blk + 1);
    } else {
      new_low = std::max(new_low, blk);
    }
    // Appendix D step 6: at most d*(maxKID+1) - toID further ENC packets
    // can exist (one user per packet in the worst case), so my block id is
    // at most blk + ceil((that - packets remaining in blk) / k).
    const std::uint64_t max_user = static_cast<std::uint64_t>(degree_) *
                                   (static_cast<std::uint64_t>(pkt.max_kid) + 1);
    const std::uint64_t after = max_user > pkt.to_id ? max_user - pkt.to_id : 0;
    const std::uint64_t rest_in_block = k_ - 1 - seq;
    const std::uint64_t extra =
        after > rest_in_block
            ? (after - rest_in_block + k_ - 1) / k_
            : 0;
    new_high = std::min<std::uint32_t>(
        new_high, static_cast<std::uint32_t>(blk + extra));
  } else {
    // my_id_ < pkt.frm_id: my packet was generated before this one.
    if (seq == 0) {
      new_high = std::min(new_high, blk == 0 ? 0 : blk - 1);
    } else {
      new_high = std::min(new_high, blk);
    }
  }
  if (new_low > new_high) return;  // inconsistent observation: ignore
  bounded_ = true;
  low_ = new_low;
  high_ = new_high;
}

}  // namespace rekey::packet
