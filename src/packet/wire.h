// Wire formats of the four protocol packets (paper Fig 5 and Appendix A).
//
//   ENC    — encrypted new keys for a contiguous range of users
//   PARITY — RSE parity over the FEC-covered region of a block's ENC packets
//   USR    — one straggler's encryptions, unicast
//   NACK   — per-block parity counts a user still needs
//
// Layout choices relative to the paper (documented deviations):
//  * Block id is 16 bits rather than 8: the paper's own Fig 16 sweeps to
//    N=16384 with k=1, which needs >255 blocks. The ENC header grows from
//    9 to 10 bytes, and a 1027-byte ENC packet still carries the paper's
//    46 encryptions (10 + 46*22 = 1022 <= 1027).
//  * The "duplicate" flag of §5.1 lives in the top bit of the 8-bit
//    sequence-number field (so block size is limited to 128, far above the
//    paper's k <= 50 sweep).
//  * An encryption entry is <id:4, ciphertext:16, tag:2> = 22 bytes; ids
//    are never 0 on the wire (the root is never an encrypting key), so
//    zero padding is unambiguous, as the paper notes.
//
// PARITY packets protect the ENC bytes from offset kFecOffset (maxKID
// onward — "fields 5 to 8"), so ENC and PARITY packets have equal size.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/keys.h"
#include "keytree/rekey_subtree.h"

namespace rekey::packet {

// Parsers take a borrowed byte view rather than a Bytes: the wire path
// (tools/rekeyd, tools/rekey_load) parses straight out of recvmmsg
// buffers, and a sub-header datagram from a real socket must come back
// nullopt — every fixed offset is bounds-checked against the view length
// before it is read.
using WireView = std::span<const std::uint8_t>;

enum class PacketType : std::uint8_t { Enc = 0, Parity = 1, Usr = 2, Nack = 3 };

constexpr std::size_t kDefaultPacketSize = 1027;  // the paper's ENC size
constexpr std::size_t kEncHeaderSize = 10;
constexpr std::size_t kUsrHeaderSize = 5;  // type/msg byte + new_id + max_kid
// Wide (v2) variants carry 32-bit slot ids — max_kid/frm/to in ENC,
// new_user_id/max_kid in USR — for groups whose BFS slot ids exceed
// 0xFFFF. The narrow layout above stays byte-identical; block_id and
// dup/seq keep their positions so kFecOffset is width-independent.
constexpr std::size_t kEncHeaderSizeWide = 16;
constexpr std::size_t kUsrHeaderSizeWide = 9;
constexpr std::size_t kEntrySize = 22;  // 4 id + 16 ciphertext + 2 tag
constexpr std::size_t kFecOffset = 4;   // FEC covers maxKID onward
// Per-datagram UDP + IPv4 header bytes added to every wire size that feeds
// bandwidth accounting.
constexpr std::size_t kUdpIpOverheadBytes = 28;

// Max encryptions per ENC packet of a given size (46 for 1027 bytes
// narrow, 45 wide).
constexpr std::size_t max_entries(std::size_t packet_size, bool wide = false) {
  return (packet_size - (wide ? kEncHeaderSizeWide : kEncHeaderSize)) /
         kEntrySize;
}

struct EncEntry {
  std::uint32_t enc_id = 0;  // id of the encrypting node; never 0 on wire
  crypto::EncryptedKey enc;

  friend bool operator==(const EncEntry&, const EncEntry&) = default;
};

// Recover the full Encryption (the target is always the parent's key).
tree::Encryption to_tree_encryption(const EncEntry& e, unsigned degree);
EncEntry to_wire_entry(const tree::Encryption& e);

struct EncPacket {
  std::uint8_t msg_id = 0;  // 6 bits
  std::uint16_t block_id = 0;
  std::uint8_t seq = 0;  // 7 bits: sequence within the block
  bool duplicate = false;
  std::uint32_t max_kid = 0;
  std::uint32_t frm_id = 0;  // users in [frm_id, to_id] are served here
  std::uint32_t to_id = 0;
  std::vector<EncEntry> entries;

  // Narrow (default) truncates the id fields to 16 bits exactly as the
  // pre-wide format did; wide emits the 16-byte v2 header.
  Bytes serialize(std::size_t packet_size = kDefaultPacketSize,
                  bool wide = false) const;
  static std::optional<EncPacket> parse(WireView wire, bool wide = false);
};

struct ParityPacket {
  std::uint8_t msg_id = 0;
  std::uint16_t block_id = 0;
  std::uint8_t parity_seq = 0;  // parity index within the block's code
  Bytes fec;                    // packet_size - kFecOffset bytes

  Bytes serialize() const;
  static std::optional<ParityPacket> parse(WireView wire);
};

struct UsrPacket {
  std::uint8_t msg_id = 0;
  std::uint32_t new_user_id = 0;
  std::uint32_t max_kid = 0;
  std::vector<EncEntry> entries;

  Bytes serialize(bool wide = false) const;
  static std::optional<UsrPacket> parse(WireView wire, bool wide = false);
};

struct NackEntry {
  std::uint8_t parities_needed = 0;
  std::uint16_t block_id = 0;
  // Highest shard index received in this block (ENC seq, or k+parity_seq).
  // Appendix A proposes carrying this (after Rubenstein et al.) so the
  // server can tell whether packets already in flight satisfy the request;
  // the eager (event-driven) transport mode relies on it, the round-based
  // mode ignores it.
  std::uint8_t max_shard_seen = 0;

  friend bool operator==(const NackEntry&, const NackEntry&) = default;
};

struct NackPacket {
  std::uint8_t msg_id = 0;
  std::vector<NackEntry> entries;

  Bytes serialize() const;
  static std::optional<NackPacket> parse(WireView wire);
};

// Inspect the 2-bit type tag of any serialized packet.
std::optional<PacketType> peek_type(WireView wire);

// RFC-768-style 16-bit ones'-complement checksum over the wire bytes: the
// UDP checksum already charged in kUdpIpOverheadBytes, made explicit. The
// fault-injected delivery path verifies it so a bit-corrupted copy is
// dropped like a real UDP datagram — counted as corruption, not loss —
// instead of reaching the structural parsers.
std::uint16_t udp_checksum(WireView wire);

// Header-only views: the receive path classifies hundreds of packets per
// round and only fully parses the few it actually consumes, so these avoid
// copying entry lists / parity payloads.
struct EncHeader {
  std::uint8_t msg_id = 0;
  std::uint16_t block_id = 0;
  std::uint8_t seq = 0;
  bool duplicate = false;
  std::uint32_t max_kid = 0;
  std::uint32_t frm_id = 0;
  std::uint32_t to_id = 0;
};
std::optional<EncHeader> parse_enc_header(WireView wire, bool wide = false);

struct ParityHeader {
  std::uint8_t msg_id = 0;
  std::uint16_t block_id = 0;
  std::uint8_t parity_seq = 0;
};
std::optional<ParityHeader> parse_parity_header(WireView wire);

}  // namespace rekey::packet
