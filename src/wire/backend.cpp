#include "wire/backend.h"

#include <string>

#include "common/env.h"
#include "wire/udp.h"
#include "wire/uring.h"

namespace rekey::wire {

std::optional<WireBackend> parse_backend(std::string_view name) {
  if (name == "epoll") return WireBackend::kEpoll;
  if (name == "io_uring" || name == "uring") return WireBackend::kIoUring;
  return std::nullopt;
}

std::string backend_name(WireBackend b) {
  return b == WireBackend::kEpoll ? "epoll" : "io_uring";
}

std::optional<WireBackend> env_wire_backend() {
  const auto raw = env::raw("REKEY_WIRE_BACKEND");
  if (!raw.has_value()) return std::nullopt;
  const auto parsed = parse_backend(*raw);
  if (!parsed.has_value()) {
    env::warn_once("REKEY_WIRE_BACKEND",
                   "unknown wire backend \"" + std::string(*raw) +
                       "\" (expected epoll or io_uring); using epoll");
  }
  return parsed;
}

bool io_uring_supported() { return IoUringWire::supported(); }

WireBackend effective_backend(std::optional<WireBackend> requested) {
  const WireBackend want =
      requested.has_value() ? *requested
                            : env_wire_backend().value_or(WireBackend::kEpoll);
  if (want == WireBackend::kIoUring && !io_uring_supported()) {
    env::warn_once("REKEY_WIRE_BACKEND",
                   "io_uring backend requested but the kernel refuses it "
                   "(old kernel or seccomp filter); falling back to epoll");
    return WireBackend::kEpoll;
  }
  return want;
}

std::unique_ptr<SocketWire> make_socket_wire(
    std::optional<WireBackend> requested, std::uint32_t bind_addr_host,
    std::uint16_t bind_port, std::size_t mtu) {
  if (effective_backend(requested) == WireBackend::kIoUring)
    return std::make_unique<IoUringWire>(bind_addr_host, bind_port, mtu);
  return std::make_unique<UdpWire>(bind_addr_host, bind_port, mtu);
}

obs::Counter& wire_syscalls() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("wire.syscalls");
  return c;
}

}  // namespace rekey::wire
