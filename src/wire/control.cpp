#include "wire/control.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::wire {

namespace {

// Serialized sizes (op byte included).
constexpr std::size_t kSubSize = 9;       // legacy v1 form; +1 with version
constexpr std::size_t kSubAckSize = 17;   // legacy v1 form; +1 with version
constexpr std::size_t kSlotMapHeaderSize = 7;  // op + base_uid + count
constexpr std::size_t kSlotMapAckSize = 5;
constexpr std::size_t kBatchStartSize = 6;
constexpr std::size_t kRoundMarkSize = 9;
constexpr std::size_t kReportHeaderSize = 16;
constexpr std::size_t kReportUserSize = 5;   // uid + entry_count
constexpr std::size_t kReportEntrySize = 4;  // parities + block + max_shard
constexpr std::size_t kUsrFragHeaderSize = 13;
constexpr std::size_t kBatchDoneSize = 6;
constexpr std::size_t kDoneAckSize = 17;
// Replication frames.
constexpr std::size_t kSnapChunkHeaderSize = 15;  // op + seq + part + nparts + len
constexpr std::size_t kSnapAckSize = 5;
constexpr std::size_t kHeartbeatSize = 9;
constexpr std::size_t kResubSize = 25;
// v2 widened frames.
constexpr std::size_t kSlotMapV2HeaderSize = 7;  // op + base_uid + count u16
constexpr std::size_t kReportV2HeaderSize = 20;  // part/nparts are u32
constexpr std::size_t kUsrFragV2HeaderSize = 15; // frag/nfrags are u16

ByteWriter begin_frame(ControlOp op) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(op));
  return w;
}

}  // namespace

Bytes serialize(const SubFrame& f) {
  ByteWriter w = begin_frame(ControlOp::Sub);
  w.put_u32(f.first_uid);
  w.put_u32(f.count);
  // v1 clients emit the 9-byte legacy frame, byte-identical to the
  // pre-negotiation protocol; the version byte only exists from v2 on.
  if (f.max_version >= kWireV2) w.put_u8(f.max_version);
  return std::move(w).take();
}

Bytes serialize(const SubAckFrame& f) {
  ByteWriter w = begin_frame(ControlOp::SubAck);
  w.put_u32(f.group_size);
  w.put_u32(f.expected_clients);
  w.put_u8(f.degree);
  w.put_u8(f.block_size);
  w.put_u16(f.packet_size);
  w.put_u32(f.batches);
  if (f.version >= kWireV2) w.put_u8(f.version);
  return std::move(w).take();
}

std::optional<Bytes> serialize(const SlotMapFrame& f) {
  if (f.slots.size() > 0xFFFF) return std::nullopt;  // count is a u16
  ByteWriter w = begin_frame(ControlOp::SlotMap);
  w.put_u32(f.base_uid);
  w.put_u16(static_cast<std::uint16_t>(f.slots.size()));
  for (const std::uint16_t s : f.slots) w.put_u16(s);
  return std::move(w).take();
}

std::optional<Bytes> serialize(const SlotMapV2Frame& f) {
  if (f.slots.size() > 0xFFFF) return std::nullopt;  // count is a u16
  ByteWriter w = begin_frame(ControlOp::SlotMapV2);
  w.put_u32(f.base_uid);
  w.put_u16(static_cast<std::uint16_t>(f.slots.size()));
  for (const std::uint32_t s : f.slots) w.put_u32(s);
  return std::move(w).take();
}

Bytes serialize(const SlotMapAckFrame& f) {
  ByteWriter w = begin_frame(ControlOp::SlotMapAck);
  w.put_u32(f.first_uid);
  return std::move(w).take();
}

Bytes serialize(const BatchStartFrame& f) {
  ByteWriter w = begin_frame(ControlOp::BatchStart);
  w.put_u32(f.batch_seq);
  w.put_u8(f.msg_id);
  // Epoch 0 keeps the legacy 6-byte frame byte-identical (the fencing
  // field only exists once a failover has happened), mirroring the
  // Sub/SubAck version-byte pattern.
  if (f.epoch > 0) w.put_u32(f.epoch);
  return std::move(w).take();
}

Bytes serialize(const RoundMarkFrame& f) {
  ByteWriter w = begin_frame(ControlOp::RoundMark);
  w.put_u32(f.batch_seq);
  w.put_u8(f.msg_id);
  w.put_u16(f.round);
  w.put_u8(f.phase);
  return std::move(w).take();
}

namespace {

// Shared entry-list emitter of both report widths; false when any user's
// entry list overflows its u8 count field.
bool put_report_users(ByteWriter& w, const std::vector<ReportUser>& users) {
  for (const ReportUser& u : users) {
    if (u.entries.size() > 0xFF) return false;
    w.put_u32(u.uid);
    w.put_u8(static_cast<std::uint8_t>(u.entries.size()));
    for (const packet::NackEntry& e : u.entries) {
      w.put_u8(e.parities_needed);
      w.put_u16(e.block_id);
      w.put_u8(e.max_shard_seen);
    }
  }
  return true;
}

}  // namespace

std::optional<Bytes> serialize(const ReportFrame& f) {
  if (f.users.size() > 0xFFFF) return std::nullopt;  // count is a u16
  ByteWriter w = begin_frame(ControlOp::Report);
  w.put_u32(f.batch_seq);
  w.put_u16(f.round);
  w.put_u8(f.phase);
  w.put_u16(f.part);
  w.put_u16(f.nparts);
  w.put_u32(f.unrecovered);
  w.put_u16(static_cast<std::uint16_t>(f.users.size()));
  if (!put_report_users(w, f.users)) return std::nullopt;
  return std::move(w).take();
}

std::optional<Bytes> serialize(const ReportV2Frame& f) {
  if (f.users.size() > 0xFFFFFFFFull) return std::nullopt;
  ByteWriter w = begin_frame(ControlOp::ReportV2);
  w.put_u32(f.batch_seq);
  w.put_u16(f.round);
  w.put_u8(f.phase);
  w.put_u32(f.part);
  w.put_u32(f.nparts);
  w.put_u32(f.unrecovered);
  w.put_u32(static_cast<std::uint32_t>(f.users.size()));
  if (!put_report_users(w, f.users)) return std::nullopt;
  return std::move(w).take();
}

std::optional<Bytes> serialize(const UsrFragFrame& f) {
  if (f.bytes.size() > 0xFFFF) return std::nullopt;  // length is a u16
  ByteWriter w = begin_frame(ControlOp::UsrFrag);
  w.put_u32(f.batch_seq);
  w.put_u32(f.uid);
  w.put_u8(f.frag);
  w.put_u8(f.nfrags);
  w.put_u16(static_cast<std::uint16_t>(f.bytes.size()));
  w.put_bytes(f.bytes);
  return std::move(w).take();
}

std::optional<Bytes> serialize(const UsrFragV2Frame& f) {
  if (f.bytes.size() > 0xFFFF) return std::nullopt;  // length is a u16
  ByteWriter w = begin_frame(ControlOp::UsrFragV2);
  w.put_u32(f.batch_seq);
  w.put_u32(f.uid);
  w.put_u16(f.frag);
  w.put_u16(f.nfrags);
  w.put_u16(static_cast<std::uint16_t>(f.bytes.size()));
  w.put_bytes(f.bytes);
  return std::move(w).take();
}

Bytes serialize(const BatchDoneFrame& f) {
  ByteWriter w = begin_frame(ControlOp::BatchDone);
  w.put_u32(f.batch_seq);
  w.put_u8(f.last_batch);
  return std::move(w).take();
}

Bytes serialize(const DoneAckFrame& f) {
  ByteWriter w = begin_frame(ControlOp::DoneAck);
  w.put_u32(f.batch_seq);
  w.put_u32(f.recovered);
  w.put_u32(f.via_usr);
  w.put_u32(f.gave_up);
  return std::move(w).take();
}

Bytes serialize(const SnapAckFrame& f) {
  ByteWriter w = begin_frame(ControlOp::SnapAck);
  w.put_u32(f.snap_seq);
  return std::move(w).take();
}

Bytes serialize(const HeartbeatFrame& f) {
  ByteWriter w = begin_frame(ControlOp::Heartbeat);
  w.put_u32(f.epoch);
  w.put_u32(f.next_batch);
  return std::move(w).take();
}

Bytes serialize(const ResubFrame& f) {
  ByteWriter w = begin_frame(ControlOp::Resub);
  w.put_u32(f.first_uid);
  w.put_u32(f.count);
  w.put_u32(f.epoch);
  w.put_u32(f.done_seq);
  w.put_u64(f.first_id);
  return std::move(w).take();
}

std::optional<Bytes> serialize(const SnapChunkFrame& f) {
  if (f.bytes.size() > 0xFFFF) return std::nullopt;
  ByteWriter w = begin_frame(ControlOp::SnapChunk);
  w.put_u32(f.snap_seq);
  w.put_u32(f.part);
  w.put_u32(f.nparts);
  w.put_u16(static_cast<std::uint16_t>(f.bytes.size()));
  w.put_bytes(f.bytes);
  return std::move(w).take();
}

Bytes serialize(const FinFrame&) {
  return std::move(begin_frame(ControlOp::Fin)).take();
}

Bytes serialize(const FinAckFrame&) {
  return std::move(begin_frame(ControlOp::FinAck)).take();
}

std::optional<ControlOp> peek_op(packet::WireView payload) {
  if (payload.empty()) return std::nullopt;
  const std::uint8_t op = payload[0];
  if (op < static_cast<std::uint8_t>(ControlOp::Sub) ||
      op > static_cast<std::uint8_t>(ControlOp::Resub))
    return std::nullopt;
  return static_cast<ControlOp>(op);
}

std::optional<SubFrame> parse_sub(packet::WireView payload) {
  if ((payload.size() != kSubSize && payload.size() != kSubSize + 1) ||
      peek_op(payload) != ControlOp::Sub)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  SubFrame f;
  f.first_uid = r.get_u32();
  f.count = r.get_u32();
  if (r.remaining() > 0) {
    f.max_version = r.get_u8();
    // A trailing version byte announcing v1 (or 0) is not a frame any
    // writer emits — v1 is expressed by the byte's absence.
    if (f.max_version < kWireV2) return std::nullopt;
  }
  return f;
}

std::optional<SubAckFrame> parse_sub_ack(packet::WireView payload) {
  if ((payload.size() != kSubAckSize && payload.size() != kSubAckSize + 1) ||
      peek_op(payload) != ControlOp::SubAck)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  SubAckFrame f;
  f.group_size = r.get_u32();
  f.expected_clients = r.get_u32();
  f.degree = r.get_u8();
  f.block_size = r.get_u8();
  f.packet_size = r.get_u16();
  f.batches = r.get_u32();
  if (r.remaining() > 0) {
    f.version = r.get_u8();
    if (f.version < kWireV2) return std::nullopt;
  }
  return f;
}

std::optional<SlotMapFrame> parse_slot_map(packet::WireView payload) {
  if (payload.size() < kSlotMapHeaderSize ||
      peek_op(payload) != ControlOp::SlotMap)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  SlotMapFrame f;
  f.base_uid = r.get_u32();
  const std::uint16_t n = r.get_u16();
  if (r.remaining() != static_cast<std::size_t>(n) * 2) return std::nullopt;
  f.slots.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) f.slots.push_back(r.get_u16());
  return f;
}

std::optional<SlotMapV2Frame> parse_slot_map_v2(packet::WireView payload) {
  if (payload.size() < kSlotMapV2HeaderSize ||
      peek_op(payload) != ControlOp::SlotMapV2)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  SlotMapV2Frame f;
  f.base_uid = r.get_u32();
  const std::uint16_t n = r.get_u16();
  if (r.remaining() != static_cast<std::size_t>(n) * 4) return std::nullopt;
  f.slots.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) f.slots.push_back(r.get_u32());
  return f;
}

std::optional<SlotMapAckFrame> parse_slot_map_ack(packet::WireView payload) {
  if (payload.size() != kSlotMapAckSize ||
      peek_op(payload) != ControlOp::SlotMapAck)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  SlotMapAckFrame f;
  f.first_uid = r.get_u32();
  return f;
}

std::optional<BatchStartFrame> parse_batch_start(packet::WireView payload) {
  if ((payload.size() != kBatchStartSize &&
       payload.size() != kBatchStartSize + 4) ||
      peek_op(payload) != ControlOp::BatchStart)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  BatchStartFrame f;
  f.batch_seq = r.get_u32();
  f.msg_id = r.get_u8();
  if (r.remaining() > 0) {
    f.epoch = r.get_u32();
    // A trailing epoch field carrying 0 is not a frame any writer emits —
    // epoch 0 is expressed by the field's absence (as with Sub's version
    // byte), so the 6-byte truncation of an epoch'd frame is itself valid.
    if (f.epoch == 0) return std::nullopt;
  }
  return f;
}

std::optional<RoundMarkFrame> parse_round_mark(packet::WireView payload) {
  if (payload.size() != kRoundMarkSize ||
      peek_op(payload) != ControlOp::RoundMark)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  RoundMarkFrame f;
  f.batch_seq = r.get_u32();
  f.msg_id = r.get_u8();
  f.round = r.get_u16();
  f.phase = r.get_u8();
  return f;
}

namespace {

// Shared strict user-list reader of both report widths.
bool get_report_users(ByteReader& r, std::uint32_t n,
                      std::vector<ReportUser>& users) {
  users.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (r.remaining() < kReportUserSize) return false;
    ReportUser u;
    u.uid = r.get_u32();
    const std::uint8_t entries = r.get_u8();
    if (r.remaining() < entries * kReportEntrySize) return false;
    u.entries.reserve(entries);
    for (std::uint8_t e = 0; e < entries; ++e) {
      packet::NackEntry ne;
      ne.parities_needed = r.get_u8();
      ne.block_id = r.get_u16();
      ne.max_shard_seen = r.get_u8();
      u.entries.push_back(ne);
    }
    users.push_back(std::move(u));
  }
  return r.remaining() == 0;  // trailing garbage rejects the frame
}

}  // namespace

std::optional<ReportFrame> parse_report(packet::WireView payload) {
  if (payload.size() < kReportHeaderSize + 2 ||
      peek_op(payload) != ControlOp::Report)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  ReportFrame f;
  f.batch_seq = r.get_u32();
  f.round = r.get_u16();
  f.phase = r.get_u8();
  f.part = r.get_u16();
  f.nparts = r.get_u16();
  f.unrecovered = r.get_u32();
  const std::uint16_t n = r.get_u16();
  if (f.nparts == 0 || f.part >= f.nparts) return std::nullopt;
  if (!get_report_users(r, n, f.users)) return std::nullopt;
  return f;
}

std::optional<ReportV2Frame> parse_report_v2(packet::WireView payload) {
  if (payload.size() < kReportV2HeaderSize + 4 ||
      peek_op(payload) != ControlOp::ReportV2)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  ReportV2Frame f;
  f.batch_seq = r.get_u32();
  f.round = r.get_u16();
  f.phase = r.get_u8();
  f.part = r.get_u32();
  f.nparts = r.get_u32();
  f.unrecovered = r.get_u32();
  const std::uint32_t n = r.get_u32();
  if (f.nparts == 0 || f.part >= f.nparts) return std::nullopt;
  // A count the remaining bytes cannot possibly hold is rejected before
  // reserve() trusts it (each user costs at least kReportUserSize bytes).
  if (static_cast<std::uint64_t>(n) * kReportUserSize > r.remaining())
    return std::nullopt;
  if (!get_report_users(r, n, f.users)) return std::nullopt;
  return f;
}

std::optional<UsrFragFrame> parse_usr_frag(packet::WireView payload) {
  if (payload.size() < kUsrFragHeaderSize ||
      peek_op(payload) != ControlOp::UsrFrag)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  UsrFragFrame f;
  f.batch_seq = r.get_u32();
  f.uid = r.get_u32();
  f.frag = r.get_u8();
  f.nfrags = r.get_u8();
  const std::uint16_t len = r.get_u16();
  if (f.nfrags == 0 || f.frag >= f.nfrags) return std::nullopt;
  if (r.remaining() != len) return std::nullopt;  // truncated or padded
  f.bytes = r.get_bytes(len);
  return f;
}

std::optional<UsrFragV2Frame> parse_usr_frag_v2(packet::WireView payload) {
  if (payload.size() < kUsrFragV2HeaderSize ||
      peek_op(payload) != ControlOp::UsrFragV2)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  UsrFragV2Frame f;
  f.batch_seq = r.get_u32();
  f.uid = r.get_u32();
  f.frag = r.get_u16();
  f.nfrags = r.get_u16();
  const std::uint16_t len = r.get_u16();
  if (f.nfrags == 0 || f.frag >= f.nfrags) return std::nullopt;
  if (r.remaining() != len) return std::nullopt;  // truncated or padded
  f.bytes = r.get_bytes(len);
  return f;
}

std::optional<BatchDoneFrame> parse_batch_done(packet::WireView payload) {
  if (payload.size() != kBatchDoneSize ||
      peek_op(payload) != ControlOp::BatchDone)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  BatchDoneFrame f;
  f.batch_seq = r.get_u32();
  f.last_batch = r.get_u8();
  return f;
}

std::optional<DoneAckFrame> parse_done_ack(packet::WireView payload) {
  if (payload.size() != kDoneAckSize || peek_op(payload) != ControlOp::DoneAck)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  DoneAckFrame f;
  f.batch_seq = r.get_u32();
  f.recovered = r.get_u32();
  f.via_usr = r.get_u32();
  f.gave_up = r.get_u32();
  return f;
}

std::optional<SnapChunkFrame> parse_snap_chunk(packet::WireView payload) {
  if (payload.size() < kSnapChunkHeaderSize ||
      peek_op(payload) != ControlOp::SnapChunk)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  SnapChunkFrame f;
  f.snap_seq = r.get_u32();
  f.part = r.get_u32();
  f.nparts = r.get_u32();
  const std::uint16_t len = r.get_u16();
  if (f.nparts == 0 || f.part >= f.nparts) return std::nullopt;
  if (r.remaining() != len) return std::nullopt;  // truncated or padded
  f.bytes = r.get_bytes(len);
  return f;
}

std::optional<SnapAckFrame> parse_snap_ack(packet::WireView payload) {
  if (payload.size() != kSnapAckSize || peek_op(payload) != ControlOp::SnapAck)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  SnapAckFrame f;
  f.snap_seq = r.get_u32();
  return f;
}

std::optional<HeartbeatFrame> parse_heartbeat(packet::WireView payload) {
  if (payload.size() != kHeartbeatSize ||
      peek_op(payload) != ControlOp::Heartbeat)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  HeartbeatFrame f;
  f.epoch = r.get_u32();
  f.next_batch = r.get_u32();
  return f;
}

std::optional<ResubFrame> parse_resub(packet::WireView payload) {
  if (payload.size() != kResubSize || peek_op(payload) != ControlOp::Resub)
    return std::nullopt;
  ByteReader r(payload.subspan(1));
  ResubFrame f;
  f.first_uid = r.get_u32();
  f.count = r.get_u32();
  f.epoch = r.get_u32();
  f.done_seq = r.get_u32();
  f.first_id = r.get_u64();
  return f;
}

std::vector<SlotMapFrame> chunk_slot_map(
    std::uint32_t first_uid, const std::vector<std::uint16_t>& slots,
    std::size_t max_payload) {
  REKEY_ENSURE(max_payload > kSlotMapHeaderSize + 2);
  const std::size_t per_chunk =
      std::min<std::size_t>((max_payload - kSlotMapHeaderSize) / 2, 0xFFFF);
  std::vector<SlotMapFrame> out;
  for (std::size_t base = 0; base < slots.size(); base += per_chunk) {
    SlotMapFrame f;
    f.base_uid = first_uid + static_cast<std::uint32_t>(base);
    const std::size_t end = std::min(slots.size(), base + per_chunk);
    f.slots.assign(slots.begin() + static_cast<std::ptrdiff_t>(base),
                   slots.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(f));
  }
  if (out.empty()) out.push_back(SlotMapFrame{first_uid, {}});
  return out;
}

std::vector<SlotMapV2Frame> chunk_slot_map_v2(
    std::uint32_t first_uid, const std::vector<std::uint32_t>& slots,
    std::size_t max_payload) {
  REKEY_ENSURE(max_payload > kSlotMapV2HeaderSize + 4);
  const std::size_t per_chunk =
      std::min<std::size_t>((max_payload - kSlotMapV2HeaderSize) / 4, 0xFFFF);
  std::vector<SlotMapV2Frame> out;
  for (std::size_t base = 0; base < slots.size(); base += per_chunk) {
    SlotMapV2Frame f;
    f.base_uid = first_uid + static_cast<std::uint32_t>(base);
    const std::size_t end = std::min(slots.size(), base + per_chunk);
    f.slots.assign(slots.begin() + static_cast<std::ptrdiff_t>(base),
                   slots.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(f));
  }
  if (out.empty()) out.push_back(SlotMapV2Frame{first_uid, {}});
  return out;
}

namespace {

// Shared chunking loop of both report widths. `header` is the serialized
// header size including the user-count field; `user_cap` the per-frame
// user-count limit; `part_cap` the part-counter limit.
template <typename Frame>
std::vector<Frame> chunk_report_impl(std::uint32_t batch_seq,
                                     std::uint16_t round, std::uint8_t phase,
                                     std::uint32_t unrecovered,
                                     const std::vector<ReportUser>& users,
                                     std::size_t max_payload,
                                     std::size_t header, std::size_t user_cap,
                                     std::size_t part_cap) {
  REKEY_ENSURE(max_payload > header + kReportUserSize + kReportEntrySize);
  std::vector<Frame> parts;
  Frame cur;
  cur.batch_seq = batch_seq;
  cur.round = round;
  cur.phase = phase;
  cur.unrecovered = unrecovered;
  std::size_t size = header;
  const auto flush = [&] {
    parts.push_back(std::move(cur));
    cur = Frame{};
    cur.batch_seq = batch_seq;
    cur.round = round;
    cur.phase = phase;
    cur.unrecovered = unrecovered;
    size = header;
  };
  for (const ReportUser& u : users) {
    ReportUser clipped = u;
    // entry_count is a u8, and one user must fit one frame: clip the
    // entry list if need be — the protocol treats missing NACK entries
    // as lost NACKs and retries next round.
    const std::size_t entry_budget = std::min<std::size_t>(
        0xFF, (max_payload - header - kReportUserSize) / kReportEntrySize);
    if (clipped.entries.size() > entry_budget)
      clipped.entries.resize(entry_budget);
    const std::size_t need =
        kReportUserSize + clipped.entries.size() * kReportEntrySize;
    if (size + need > max_payload || cur.users.size() == user_cap) flush();
    size += need;
    cur.users.push_back(std::move(clipped));
  }
  parts.push_back(std::move(cur));
  // More parts than the part counter can number cannot be represented:
  // fail (empty) rather than emit frames that alias each other's part ids.
  if (parts.size() > part_cap) return {};
  for (std::size_t i = 0; i < parts.size(); ++i) {
    parts[i].part = static_cast<decltype(cur.part)>(i);
    parts[i].nparts = static_cast<decltype(cur.nparts)>(parts.size());
  }
  return parts;
}

}  // namespace

std::vector<ReportFrame> chunk_report(std::uint32_t batch_seq,
                                      std::uint16_t round, std::uint8_t phase,
                                      std::uint32_t unrecovered,
                                      const std::vector<ReportUser>& users,
                                      std::size_t max_payload) {
  return chunk_report_impl<ReportFrame>(batch_seq, round, phase, unrecovered,
                                        users, max_payload,
                                        kReportHeaderSize + 2, 0xFFFF, 0xFFFF);
}

std::vector<ReportV2Frame> chunk_report_v2(std::uint32_t batch_seq,
                                           std::uint16_t round,
                                           std::uint8_t phase,
                                           std::uint32_t unrecovered,
                                           const std::vector<ReportUser>& users,
                                           std::size_t max_payload) {
  return chunk_report_impl<ReportV2Frame>(
      batch_seq, round, phase, unrecovered, users, max_payload,
      kReportV2HeaderSize + 4, 0xFFFFFFFFull, 0xFFFFFFFFull);
}

namespace {

// Shared fragmentation loop of both widths; `frag_cap` is the fragment
// counter's limit (u8 for v1, u16 for v2). Empty on overflow: emitting
// aliased fragment ids would reassemble a corrupt USR.
template <typename Frame>
std::vector<Frame> fragment_usr_impl(std::uint32_t batch_seq,
                                     std::uint32_t uid, const Bytes& usr_wire,
                                     std::size_t max_payload,
                                     std::size_t header,
                                     std::size_t frag_cap) {
  REKEY_ENSURE(max_payload > header);
  const std::size_t chunk = std::min<std::size_t>(max_payload - header, 0xFFFF);
  const std::size_t nfrags =
      usr_wire.empty() ? 1 : (usr_wire.size() + chunk - 1) / chunk;
  if (nfrags > frag_cap) return {};  // payload too large to fragment
  std::vector<Frame> out;
  out.reserve(nfrags);
  for (std::size_t i = 0; i < nfrags; ++i) {
    Frame f;
    f.batch_seq = batch_seq;
    f.uid = uid;
    f.frag = static_cast<decltype(f.frag)>(i);
    f.nfrags = static_cast<decltype(f.nfrags)>(nfrags);
    const std::size_t begin = i * chunk;
    const std::size_t end = std::min(usr_wire.size(), begin + chunk);
    f.bytes.assign(usr_wire.begin() + static_cast<std::ptrdiff_t>(begin),
                   usr_wire.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace

std::vector<UsrFragFrame> fragment_usr(std::uint32_t batch_seq,
                                       std::uint32_t uid, const Bytes& usr_wire,
                                       std::size_t max_payload) {
  return fragment_usr_impl<UsrFragFrame>(batch_seq, uid, usr_wire, max_payload,
                                         kUsrFragHeaderSize, 0xFF);
}

std::vector<UsrFragV2Frame> fragment_usr_v2(std::uint32_t batch_seq,
                                            std::uint32_t uid,
                                            const Bytes& usr_wire,
                                            std::size_t max_payload) {
  return fragment_usr_impl<UsrFragV2Frame>(batch_seq, uid, usr_wire,
                                           max_payload, kUsrFragV2HeaderSize,
                                           0xFFFF);
}

std::optional<Bytes> UsrReassembly::add(const UsrFragFrame& frag) {
  return add_impl(frag.uid, frag.frag, frag.nfrags, frag.bytes);
}

std::optional<Bytes> UsrReassembly::add(const UsrFragV2Frame& frag) {
  return add_impl(frag.uid, frag.frag, frag.nfrags, frag.bytes);
}

std::optional<Bytes> UsrReassembly::add_impl(std::uint32_t uid,
                                             std::uint16_t frag,
                                             std::uint16_t nfrags,
                                             const Bytes& bytes) {
  if (nfrags == 0 || frag >= nfrags) return std::nullopt;
  Partial& p = pending_[uid];
  if (p.seen.empty()) {
    p.nfrags = nfrags;
    p.parts.resize(nfrags);
    p.seen.assign(nfrags, false);
  }
  // A fragment disagreeing with the established count is a stale or
  // damaged duplicate; keep the first wave's shape.
  if (nfrags != p.nfrags) return std::nullopt;
  if (p.seen[frag]) return std::nullopt;  // duplicate fragment
  p.seen[frag] = true;
  p.parts[frag] = bytes;
  ++p.have;
  if (p.have < p.nfrags) return std::nullopt;
  Bytes full;
  for (const Bytes& part : p.parts)
    full.insert(full.end(), part.begin(), part.end());
  pending_.erase(uid);
  return full;
}

std::vector<SnapChunkFrame> chunk_snapshot(std::uint32_t snap_seq,
                                           const Bytes& blob,
                                           std::size_t max_payload) {
  if (max_payload <= kSnapChunkHeaderSize) return {};  // header doesn't fit
  const std::size_t chunk =
      std::min<std::size_t>(max_payload - kSnapChunkHeaderSize, 0xFFFF);
  const std::size_t nparts =
      blob.empty() ? 1 : (blob.size() + chunk - 1) / chunk;
  std::vector<SnapChunkFrame> out;
  out.reserve(nparts);
  for (std::size_t i = 0; i < nparts; ++i) {
    SnapChunkFrame f;
    f.snap_seq = snap_seq;
    f.part = static_cast<std::uint32_t>(i);
    f.nparts = static_cast<std::uint32_t>(nparts);
    const std::size_t begin = i * chunk;
    const std::size_t end = std::min(blob.size(), begin + chunk);
    f.bytes.assign(blob.begin() + static_cast<std::ptrdiff_t>(begin),
                   blob.begin() + static_cast<std::ptrdiff_t>(end));
    out.push_back(std::move(f));
  }
  return out;
}

std::optional<Bytes> SnapshotReassembly::add(const SnapChunkFrame& frag) {
  if (frag.nparts == 0 || frag.part >= frag.nparts) return std::nullopt;
  if (frag.nparts > kMaxChunks) return std::nullopt;
  if ((active_ || complete_) && frag.snap_seq < seq_)
    return std::nullopt;  // stale retransmit of a superseded snapshot
  if (frag.snap_seq > seq_ || (!active_ && !complete_)) {
    // Newer snapshot: any partial older blob is dead weight — the primary
    // only retransmits its latest.
    seq_ = frag.snap_seq;
    active_ = true;
    complete_ = false;
    nparts_ = frag.nparts;
    have_ = 0;
    parts_.assign(frag.nparts, Bytes{});
    seen_.assign(frag.nparts, false);
  }
  if (complete_) return std::nullopt;  // duplicate of a delivered snapshot
  // A chunk disagreeing with the established count is a damaged duplicate.
  if (frag.nparts != nparts_) return std::nullopt;
  if (seen_[frag.part]) return std::nullopt;
  seen_[frag.part] = true;
  parts_[frag.part] = frag.bytes;
  ++have_;
  if (have_ < nparts_) return std::nullopt;
  Bytes full;
  for (const Bytes& part : parts_)
    full.insert(full.end(), part.begin(), part.end());
  active_ = false;
  complete_ = true;
  parts_.clear();
  seen_.clear();
  return full;
}

void SnapshotReassembly::clear() {
  seq_ = 0;
  active_ = false;
  complete_ = false;
  nparts_ = 0;
  have_ = 0;
  parts_.clear();
  seen_.clear();
}

}  // namespace rekey::wire
