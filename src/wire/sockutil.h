// Shared IPv4/UDP socket plumbing for the kernel wire backends.
//
// UdpWire (epoll) and IoUringWire (io_uring) differ only in how they
// move datagrams through the kernel; the socket itself — nonblocking
// IPv4 UDP, grown buffers, bind + learned ephemeral port, the
// Endpoint <-> sockaddr_in packing — is identical and lives here so the
// two backends cannot drift.
#pragma once

#include <cstdint>

#include <netinet/in.h>

#include "wire/udp.h"

namespace rekey::wire::sockutil {

sockaddr_in to_sockaddr(Endpoint e);
Endpoint from_sockaddr(const sockaddr_in& sa);

// Creates a nonblocking UDP socket with grown send/receive buffers,
// bound to `bind_addr_host`:`bind_port` (0 = ephemeral), and reports the
// bound address through `local`. Throws EnsureError on failure.
int open_bound_udp_socket(std::uint32_t bind_addr_host,
                          std::uint16_t bind_port, Endpoint* local);

}  // namespace rekey::wire::sockutil
