#include "wire/udp.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/ensure.h"

namespace rekey::wire {

namespace {

// Datagrams per sendmmsg/recvmmsg syscall. 64 keeps the per-call stack
// arrays small while amortizing the syscall across a round's burst.
constexpr std::size_t kIoBatch = 64;

// IPv4 + UDP header bytes (matches packet::kUdpIpOverheadBytes).
constexpr std::size_t kIpUdpOverhead = 28;

sockaddr_in to_sockaddr(Endpoint e) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(endpoint_addr(e));
  sa.sin_port = htons(endpoint_port(e));
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  return make_endpoint(ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port));
}

void grow_socket_buffers(int fd) {
  // A round-1 burst for N=2^15 is tens of MB arriving faster than the
  // fleet drains it; an 8 MB receive queue rides it out. RCVBUFFORCE
  // needs CAP_NET_ADMIN — fall back to the rmem_max-clamped plain knob.
  constexpr int kBytes = 8 << 20;
  int v = kBytes;
#ifdef SO_RCVBUFFORCE
  if (setsockopt(fd, SOL_SOCKET, SO_RCVBUFFORCE, &v, sizeof v) != 0)
#endif
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &v, sizeof v);
  v = kBytes;
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, sizeof v);
}

}  // namespace

std::optional<Endpoint> parse_endpoint(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string host = colon == 0 ? "127.0.0.1" : spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  if (port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  const long port = std::strtol(port_str.c_str(), nullptr, 10);
  if (port < 0 || port > 0xFFFF) return std::nullopt;
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) != 1) return std::nullopt;
  return make_endpoint(ntohl(addr.s_addr), static_cast<std::uint16_t>(port));
}

std::string endpoint_to_string(Endpoint e) {
  const std::uint32_t a = endpoint_addr(e);
  return std::to_string(a >> 24) + "." + std::to_string((a >> 16) & 0xFF) +
         "." + std::to_string((a >> 8) & 0xFF) + "." +
         std::to_string(a & 0xFF) + ":" + std::to_string(endpoint_port(e));
}

UdpWire::UdpWire(std::uint32_t bind_addr_host, std::uint16_t bind_port,
                 std::size_t mtu) {
  REKEY_ENSURE_MSG(mtu > kIpUdpOverhead + 1, "MTU below IP/UDP header size");
  max_payload_ = mtu - kIpUdpOverhead - 1;

  fd_ = socket(AF_INET, SOCK_DGRAM, 0);
  REKEY_ENSURE_MSG(fd_ >= 0, "socket() failed");
  const int flags = fcntl(fd_, F_GETFL, 0);
  REKEY_ENSURE(flags >= 0 && fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0);
  grow_socket_buffers(fd_);

  sockaddr_in sa = to_sockaddr(make_endpoint(bind_addr_host, bind_port));
  REKEY_ENSURE_MSG(
      bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0,
      "bind() failed");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  REKEY_ENSURE(getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
               0);
  local_ = from_sockaddr(bound);

#ifdef __linux__
  epoll_fd_ = epoll_create1(0);
  REKEY_ENSURE_MSG(epoll_fd_ >= 0, "epoll_create1() failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd_;
  REKEY_ENSURE(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd_, &ev) == 0);
#endif
}

UdpWire::~UdpWire() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (fd_ >= 0) close(fd_);
}

bool UdpWire::wait_writable(int timeout_ms) {
  pollfd p{fd_, POLLOUT, 0};
  return poll(&p, 1, timeout_ms) > 0 && (p.revents & POLLOUT) != 0;
}

bool UdpWire::send(Endpoint to, std::uint8_t channel,
                   std::span<const std::uint8_t> payload) {
  // Route through send_frames so both entry points share the iovec
  // assembly and backpressure handling; the copy only costs control-plane
  // frames (data bursts go through send_frames directly).
  const Bytes frame(payload.begin(), payload.end());
  const Bytes* one[] = {&frame};
  return send_frames(to, channel, one) == 1;
}

std::size_t UdpWire::send_frames(Endpoint to, std::uint8_t channel,
                                 std::span<const Bytes* const> frames) {
  sockaddr_in sa = to_sockaddr(to);
  std::uint8_t chan = channel;
  std::size_t sent = 0;
  std::size_t i = 0;
  while (i < frames.size()) {
#ifdef __linux__
    mmsghdr msgs[kIoBatch];
    iovec iovs[kIoBatch][2];
    std::size_t n = 0;
    std::size_t scan = i;
    while (scan < frames.size() && n < kIoBatch) {
      const Bytes& body = *frames[scan];
      ++scan;
      if (body.size() > max_payload_) continue;  // refused, not fragmented
      iovs[n][0] = {&chan, 1};
      iovs[n][1] = {const_cast<std::uint8_t*>(body.data()), body.size()};
      mmsghdr& m = msgs[n];
      std::memset(&m, 0, sizeof m);
      m.msg_hdr.msg_name = &sa;
      m.msg_hdr.msg_namelen = sizeof sa;
      m.msg_hdr.msg_iov = iovs[n];
      m.msg_hdr.msg_iovlen = 2;
      ++n;
    }
    if (n == 0) return sent;  // every remaining frame was oversize
    std::size_t done = 0;
    while (done < n) {
      const int rc = sendmmsg(fd_, msgs + done, static_cast<unsigned>(n - done),
                              0);
      if (rc < 0) {
        if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) &&
            wait_writable(1000))
          continue;
        return sent + done;
      }
      done += static_cast<std::size_t>(rc);
    }
    sent += n;
    i = scan;
#else
    const Bytes& body = *frames[i];
    ++i;
    if (body.size() > max_payload_) continue;
    iovec iov[2] = {{&chan, 1},
                    {const_cast<std::uint8_t*>(body.data()), body.size()}};
    msghdr m{};
    m.msg_name = &sa;
    m.msg_namelen = sizeof sa;
    m.msg_iov = iov;
    m.msg_iovlen = 2;
    while (sendmsg(fd_, &m, 0) < 0) {
      if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) &&
          wait_writable(1000))
        continue;
      return sent;
    }
    ++sent;
#endif
  }
  return sent;
}

std::size_t UdpWire::receive(std::vector<Datagram>& out, int timeout_ms) {
  const std::size_t slot = max_payload_ + 1;
  std::size_t added = 0;

  const auto drain = [&]() {
#ifdef __linux__
    std::vector<std::uint8_t> buf(kIoBatch * slot);
    mmsghdr msgs[kIoBatch];
    iovec iovs[kIoBatch];
    sockaddr_in addrs[kIoBatch];
    for (;;) {
      for (std::size_t j = 0; j < kIoBatch; ++j) {
        iovs[j] = {buf.data() + j * slot, slot};
        std::memset(&msgs[j], 0, sizeof msgs[j]);
        msgs[j].msg_hdr.msg_name = &addrs[j];
        msgs[j].msg_hdr.msg_namelen = sizeof addrs[j];
        msgs[j].msg_hdr.msg_iov = &iovs[j];
        msgs[j].msg_hdr.msg_iovlen = 1;
      }
      const int rc = recvmmsg(fd_, msgs, kIoBatch, MSG_DONTWAIT, nullptr);
      if (rc <= 0) return;
      for (int j = 0; j < rc; ++j) {
        const std::size_t len = msgs[j].msg_len;
        if (len == 0) continue;  // no channel byte: not ours
        Datagram d;
        d.from = from_sockaddr(addrs[j]);
        const std::uint8_t* base = buf.data() + j * slot;
        d.channel = base[0];
        d.payload.assign(base + 1, base + len);
        out.push_back(std::move(d));
        ++added;
      }
      if (static_cast<std::size_t>(rc) < kIoBatch) return;
    }
#else
    std::vector<std::uint8_t> buf(slot);
    for (;;) {
      sockaddr_in from{};
      socklen_t from_len = sizeof from;
      const ssize_t len =
          recvfrom(fd_, buf.data(), buf.size(), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
      if (len <= 0) return;
      Datagram d;
      d.from = from_sockaddr(from);
      d.channel = buf[0];
      d.payload.assign(buf.begin() + 1, buf.begin() + len);
      out.push_back(std::move(d));
      ++added;
    }
#endif
  };

  drain();
  if (added == 0 && timeout_ms > 0) {
#ifdef __linux__
    epoll_event ev;
    if (epoll_wait(epoll_fd_, &ev, 1, timeout_ms) > 0) drain();
#else
    pollfd p{fd_, POLLIN, 0};
    if (poll(&p, 1, timeout_ms) > 0) drain();
#endif
  }
  return added;
}

}  // namespace rekey::wire
