#include "wire/udp.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "common/ensure.h"
#include "common/env.h"
#include "wire/backend.h"
#include "wire/sockutil.h"

namespace rekey::wire {

namespace {

// IPv4 + UDP header bytes (matches packet::kUdpIpOverheadBytes).
constexpr std::size_t kIpUdpOverhead = 28;

std::size_t g_io_batch_override = 0;

}  // namespace

std::size_t io_batch() {
  if (g_io_batch_override != 0) return g_io_batch_override;
  static const std::size_t cached = [] {
    if (const auto v = env::int_value("REKEY_IO_BATCH", 1, 1024))
      return static_cast<std::size_t>(*v);
    return std::size_t{64};
  }();
  return cached;
}

namespace detail {
void set_io_batch_for_test(std::size_t n) { g_io_batch_override = n; }
}  // namespace detail

std::optional<Endpoint> parse_endpoint(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string host = colon == 0 ? "127.0.0.1" : spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  if (port_str.empty() ||
      port_str.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  const long port = std::strtol(port_str.c_str(), nullptr, 10);
  if (port < 0 || port > 0xFFFF) return std::nullopt;
  in_addr addr{};
  if (inet_pton(AF_INET, host.c_str(), &addr) != 1) return std::nullopt;
  return make_endpoint(ntohl(addr.s_addr), static_cast<std::uint16_t>(port));
}

std::string endpoint_to_string(Endpoint e) {
  const std::uint32_t a = endpoint_addr(e);
  return std::to_string(a >> 24) + "." + std::to_string((a >> 16) & 0xFF) +
         "." + std::to_string((a >> 8) & 0xFF) + "." +
         std::to_string(a & 0xFF) + ":" + std::to_string(endpoint_port(e));
}

UdpWire::UdpWire(std::uint32_t bind_addr_host, std::uint16_t bind_port,
                 std::size_t mtu) {
  REKEY_ENSURE_MSG(mtu > kIpUdpOverhead + 1, "MTU below IP/UDP header size");
  max_payload_ = mtu - kIpUdpOverhead - 1;
  batch_ = io_batch();

  fd_ = sockutil::open_bound_udp_socket(bind_addr_host, bind_port, &local_);

#ifdef __linux__
  epoll_fd_ = epoll_create1(0);
  REKEY_ENSURE_MSG(epoll_fd_ >= 0, "epoll_create1() failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd_;
  REKEY_ENSURE(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd_, &ev) == 0);

  msgs_.resize(batch_);
  iovs_.resize(batch_ * 2);
  addrs_.resize(batch_);
  recv_buf_.resize(batch_ * (max_payload_ + 1));
#endif
}

UdpWire::~UdpWire() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (fd_ >= 0) close(fd_);
}

bool UdpWire::wait_writable(int timeout_ms) {
  pollfd p{fd_, POLLOUT, 0};
  for (;;) {
    wire_syscalls().add();
    const int rc = poll(&p, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc > 0 && (p.revents & POLLOUT) != 0;
  }
}

bool UdpWire::send(Endpoint to, std::uint8_t channel,
                   std::span<const std::uint8_t> payload) {
  // Route through send_frames so both entry points share the iovec
  // assembly and backpressure handling; the copy only costs control-plane
  // frames (data bursts go through send_frames directly).
  const Bytes frame(payload.begin(), payload.end());
  const Bytes* one[] = {&frame};
  return send_frames(to, channel, one) == 1;
}

std::size_t UdpWire::send_frames(Endpoint to, std::uint8_t channel,
                                 std::span<const Bytes* const> frames) {
  sockaddr_in sa = sockutil::to_sockaddr(to);
  std::uint8_t chan = channel;
  std::size_t sent = 0;
  std::size_t i = 0;
  while (i < frames.size()) {
#ifdef __linux__
    std::size_t n = 0;
    std::size_t scan = i;
    while (scan < frames.size() && n < batch_) {
      const Bytes& body = *frames[scan];
      ++scan;
      if (body.size() > max_payload_) continue;  // refused, not fragmented
      iovs_[n * 2] = {&chan, 1};
      iovs_[n * 2 + 1] = {const_cast<std::uint8_t*>(body.data()),
                          body.size()};
      mmsghdr& m = msgs_[n];
      std::memset(&m, 0, sizeof m);
      m.msg_hdr.msg_name = &sa;
      m.msg_hdr.msg_namelen = sizeof sa;
      m.msg_hdr.msg_iov = &iovs_[n * 2];
      m.msg_hdr.msg_iovlen = 2;
      ++n;
    }
    if (n == 0) return sent;  // every remaining frame was oversize
    std::size_t done = 0;
    while (done < n) {
      wire_syscalls().add();
      const int rc = sendmmsg(fd_, msgs_.data() + done,
                              static_cast<unsigned>(n - done), 0);
      if (rc < 0) {
        if (errno == EINTR) continue;
        if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) &&
            wait_writable(1000))
          continue;
        return sent + done;
      }
      done += static_cast<std::size_t>(rc);
    }
    sent += n;
    i = scan;
#else
    const Bytes& body = *frames[i];
    ++i;
    if (body.size() > max_payload_) continue;
    iovec iov[2] = {{&chan, 1},
                    {const_cast<std::uint8_t*>(body.data()), body.size()}};
    msghdr m{};
    m.msg_name = &sa;
    m.msg_namelen = sizeof sa;
    m.msg_iov = iov;
    m.msg_iovlen = 2;
    for (;;) {
      wire_syscalls().add();
      if (sendmsg(fd_, &m, 0) >= 0) break;
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) &&
          wait_writable(1000))
        continue;
      return sent;
    }
    ++sent;
#endif
  }
  return sent;
}

std::size_t UdpWire::receive(std::vector<Datagram>& out, int timeout_ms) {
  const std::size_t slot = max_payload_ + 1;
  std::size_t added = 0;

  const auto drain = [&]() {
#ifdef __linux__
    for (;;) {
      for (std::size_t j = 0; j < batch_; ++j) {
        iovs_[j] = {recv_buf_.data() + j * slot, slot};
        std::memset(&msgs_[j], 0, sizeof msgs_[j]);
        msgs_[j].msg_hdr.msg_name = &addrs_[j];
        msgs_[j].msg_hdr.msg_namelen = sizeof addrs_[j];
        msgs_[j].msg_hdr.msg_iov = &iovs_[j];
        msgs_[j].msg_hdr.msg_iovlen = 1;
      }
      wire_syscalls().add();
      const int rc = recvmmsg(fd_, msgs_.data(),
                              static_cast<unsigned>(batch_), MSG_DONTWAIT,
                              nullptr);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return;
      for (int j = 0; j < rc; ++j) {
        const std::size_t len = msgs_[j].msg_len;
        if (len == 0) continue;  // no channel byte: not ours
        Datagram d;
        d.from = sockutil::from_sockaddr(addrs_[j]);
        const std::uint8_t* base = recv_buf_.data() + j * slot;
        d.channel = base[0];
        d.payload.assign(base + 1, base + len);
        out.push_back(std::move(d));
        ++added;
      }
      if (static_cast<std::size_t>(rc) < batch_) return;
    }
#else
    std::vector<std::uint8_t> buf(slot);
    for (;;) {
      sockaddr_in from{};
      socklen_t from_len = sizeof from;
      wire_syscalls().add();
      const ssize_t len =
          recvfrom(fd_, buf.data(), buf.size(), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
      if (len < 0 && errno == EINTR) continue;
      if (len <= 0) return;
      Datagram d;
      d.from = sockutil::from_sockaddr(from);
      d.channel = buf[0];
      d.payload.assign(buf.begin() + 1, buf.begin() + len);
      out.push_back(std::move(d));
      ++added;
    }
#endif
  };

  drain();
  if (added == 0 && timeout_ms > 0) {
#ifdef __linux__
    for (;;) {
      epoll_event ev;
      wire_syscalls().add();
      const int rc = epoll_wait(epoll_fd_, &ev, 1, timeout_ms);
      if (rc < 0 && errno == EINTR) continue;
      if (rc > 0) drain();
      break;
    }
#else
    pollfd p{fd_, POLLIN, 0};
    for (;;) {
      wire_syscalls().add();
      const int rc = poll(&p, 1, timeout_ms);
      if (rc < 0 && errno == EINTR) continue;
      if (rc > 0) drain();
      break;
    }
#endif
  }
  return added;
}

}  // namespace rekey::wire
