// FrameBufferPool — reusable, pool-owned send buffers for the io_uring
// wire backend (wire/uring.h).
//
// The epoll path pays one heap allocation per control frame (UdpWire::
// send copies the payload into a temporary so sendmmsg iovecs have
// stable storage). The io_uring path instead copies into a slot of this
// pool: one contiguous arena, carved into fixed-size slots, registered
// with the kernel once (IORING_REGISTER_BUFFERS) so zero-copy sends can
// reference it by index without per-call page pinning. Slots stay
// "in flight" from acquire() until the kernel reports it no longer reads
// the memory (the SEND_ZC notification CQE, or plain send completion),
// at which point the backend release()s them — the serialize→send path
// is allocation-free per batch.
//
// The pool is intentionally not thread-safe: a SocketWire is owned and
// driven by exactly one thread (the daemon loop or one fleet thread),
// which is the same single-threaded discipline the ring itself requires.
//
// Exhaustion is not an error: acquire() returns kNone and the backend
// falls back to a heap-owned buffer for that frame (counted in
// wire.pool_exhausted), so a burst larger than the pool degrades to the
// epoll path's allocation behavior instead of dropping frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rekey::wire {

class FrameBufferPool {
 public:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // `slot_size` bytes per buffer (channel byte + max payload for a wire),
  // `slot_count` buffers in the arena.
  FrameBufferPool(std::size_t slot_size, std::size_t slot_count);

  FrameBufferPool(const FrameBufferPool&) = delete;
  FrameBufferPool& operator=(const FrameBufferPool&) = delete;

  // Index of a free slot, or kNone when every slot is in flight.
  std::size_t acquire();
  // Returns `index` to the free list. Double release is a hard error
  // (it would let two in-flight sends share kernel-visible memory).
  void release(std::size_t index);

  std::uint8_t* slot(std::size_t index);
  const std::uint8_t* slot(std::size_t index) const;

  // The whole arena, for IORING_REGISTER_BUFFERS.
  std::uint8_t* arena() { return arena_.data(); }
  std::size_t arena_bytes() const { return arena_.size(); }

  std::size_t slot_size() const { return slot_size_; }
  std::size_t slot_count() const { return slot_count_; }
  std::size_t in_flight() const { return slot_count_ - free_.size(); }
  // Most slots ever simultaneously in flight — sizing feedback.
  std::size_t high_water() const { return high_water_; }
  std::uint64_t acquired_total() const { return acquired_; }
  std::uint64_t exhausted_total() const { return exhausted_; }

 private:
  std::size_t slot_size_;
  std::size_t slot_count_;
  std::vector<std::uint8_t> arena_;
  std::vector<std::size_t> free_;
  std::vector<std::uint8_t> in_use_;
  std::size_t high_water_ = 0;
  std::uint64_t acquired_ = 0;
  std::uint64_t exhausted_ = 0;
};

}  // namespace rekey::wire
