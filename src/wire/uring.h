// IoUringWire — the io_uring SocketWire backend (ROADMAP item 1's
// "remaining headroom").
//
// Same socket, same wire bytes, different syscall shape than UdpWire:
//
//   * Sends: a whole round's ENC/slot-map burst is staged as a chain of
//     linked SENDMSG SQEs (two iovecs each — channel byte + frame body,
//     bodies referenced in place in the transport arena, never copied)
//     and pushed to the kernel with one io_uring_enter per <= SQ-depth
//     chunk, instead of one sendmmsg per 64 datagrams. The link flags
//     keep datagram order identical to the epoll path, so the fleet's
//     seeded loss-shaping draws — which index arrivals — see the same
//     stream and every deterministic protocol counter stays equal.
//   * Control frames: copied into a FrameBufferPool slot (wire/bufpool.h)
//     registered with the kernel once; sent with SEND_ZC + fixed buffers
//     when the kernel accepts it (single-frame true zero copy), SENDMSG
//     otherwise. The slot stays owned by the kernel until its completion
//     (and, for SEND_ZC, its notification CQE) arrives; pool exhaustion
//     falls back to a heap-owned frame, never drops.
//   * Receives: one multishot RECVMSG armed against a provided-buffer
//     ring; every arriving datagram posts a CQE naming a buffer — zero
//     syscalls while traffic flows, one timed io_uring_enter when idle.
//
// Everything is raw syscalls against the stable io_uring ABI (no liburing
// dependency); supported() probes the running kernel once — ring setup,
// the opcodes above, provided-buffer rings — and wire/backend.h falls
// back to UdpWire when any of it is missing (pre-6.0 kernels, seccomp).
#pragma once

#include <cstdint>
#include <memory>

#include "wire/bufpool.h"
#include "wire/wire.h"

namespace rekey::wire {

struct IoUringOptions {
  // Send-pool slots (control-plane frames in flight). A slot is
  // 1 + max_payload bytes.
  std::size_t pool_slots = 256;
  // Submission-queue depth = longest linked send chain per enter.
  unsigned sq_entries = 1024;
  // Provided receive buffers (power of two).
  unsigned recv_buffers = 256;
};

class IoUringWire : public SocketWire {
 public:
  using Options = IoUringOptions;

  // Same bind semantics as UdpWire: `bind_port` 0 = ephemeral, bound
  // address via local_endpoint(); max_payload() = mtu - 28 - 1. Throws
  // EnsureError when the socket or the ring cannot be set up — callers
  // are expected to check supported() first (wire/backend.h does).
  IoUringWire(std::uint32_t bind_addr_host, std::uint16_t bind_port,
              std::size_t mtu = 1500, Options options = Options());
  ~IoUringWire() override;

  IoUringWire(const IoUringWire&) = delete;
  IoUringWire& operator=(const IoUringWire&) = delete;

  bool send(Endpoint to, std::uint8_t channel,
            std::span<const std::uint8_t> payload) override;
  std::size_t send_frames(Endpoint to, std::uint8_t channel,
                          std::span<const Bytes* const> frames) override;
  std::size_t receive(std::vector<Datagram>& out, int timeout_ms) override;
  std::size_t max_payload() const override;

  Endpoint local_endpoint() const override;

  // True when the running kernel can drive this backend: io_uring_setup
  // succeeds, the ring features and opcodes we need (SENDMSG, RECVMSG
  // multishot, SEND_ZC) are present, and a provided-buffer ring
  // registers. Probed once per process and cached.
  static bool supported();

  // Introspection for tests and the W1 bench.
  const FrameBufferPool& pool() const;
  FrameBufferPool& pool_for_test();
  // Whether single-frame sends are currently using SEND_ZC fixed buffers
  // (false after a runtime -EINVAL downgrade to SENDMSG).
  bool using_send_zc() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rekey::wire
