// Full-server snapshot (format v3) — everything a warm standby needs to
// take over a live rekey session at a batch boundary.
//
// The sharded tree snapshot (keytree/snapshot.h, v2) already captures the
// key material and the key generator's stream counter; a replica also
// needs the protocol-session state around it: the fencing epoch, the next
// batch to run, the negotiated wire version, the churn rotation (silent
// member pool + next member id), the per-endpoint subscription table, and
// the RhoController (proactive-parity control law + its RNG stream).
// With all of that restored, the standby's replay of the next batch is a
// pure function of the same inputs the primary would have seen — payloads
// and packets come out bit-identical (the determinism contract the
// replica tests enforce).
//
// Snapshots are taken at batch boundaries only: mid-batch transport state
// (rounds in flight, straggler sets) is deliberately absent, because the
// failover protocol re-runs the interrupted batch from its opening
// BatchStart rather than resuming it halfway. The blob embeds the sealed
// v2 tree snapshot length-prefixed and is itself sealed with the shared
// SHA-256 trailer, so truncation or corruption at any byte yields a clean
// nullopt, never a half-restored server.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "keytree/keytree.h"
#include "transport/server.h"
#include "wire/control.h"

namespace rekey::wire {

// One row of the subscription table. Dead endpoints are carried too: the
// standby must keep treating them as dead (their uids stay in gave-up
// accounting) instead of waiting on them forever.
struct SnapshotEndpoint {
  std::uint64_t ep_id = 0;
  std::uint32_t first_uid = 0;
  std::uint32_t count = 0;
  std::uint8_t max_version = kWireV1;
  bool dead = false;
};

struct ServerSnapshot {
  std::uint32_t epoch = 0;       // fencing epoch the snapshot was taken in
  std::uint32_t next_batch = 0;  // first batch the restored server runs
  std::uint8_t session_version = kWireV1;

  // Session shape, cross-checked against the restoring daemon's config —
  // a snapshot from a differently-configured session must not restore.
  std::uint32_t degree = 4;
  std::uint32_t clients = 0;
  std::uint32_t churn_pool = 0;
  std::uint32_t batches = 0;

  // Churn rotation state.
  tree::MemberId next_member = 0;
  std::vector<tree::MemberId> churn_members;  // silent, in join order

  std::vector<SnapshotEndpoint> endpoints;

  transport::RhoController::State rho;

  // Sealed sharded (v2) tree snapshot: structure, key material, member
  // bindings, keygen counter. Restored separately via
  // tree::restore_sharded_tree (ownership-validated) because only the
  // daemon knows the key seed.
  Bytes tree_blob;
};

// Serialize + seal. The inverse of restore_server.
Bytes snapshot_server(const ServerSnapshot& snap);

// Verify the trailer, parse, and structurally validate (endpoint ranges
// inside [0, clients), member ids below next_member, bounded counts).
// nullopt on truncation, corruption, or any structural nonsense; the
// embedded tree blob's own trailer and shard ownership are checked later
// by restore_sharded_tree.
std::optional<ServerSnapshot> restore_server(const Bytes& blob);

}  // namespace rekey::wire
