// UdpWire — the epoll SocketWire backend behind tools/rekeyd and
// tools/rekey_load (wire/backend.h selects it or IoUringWire at runtime).
//
// One nonblocking IPv4 UDP socket, readiness via epoll, and batched I/O:
// sends go through sendmmsg with two iovecs per datagram (the 1-byte
// channel prefix and the frame body), so protocol wires serialized once
// in the keytree/transport arena reach the kernel without an intermediate
// copy; receives drain the socket with recvmmsg into a reusable buffer
// block. On non-Linux builds the same interface degrades to poll() +
// sendmsg/recvmsg loops — slower, same semantics.
//
// Endpoints pack an IPv4 address and port into the 48 low bits of
// Endpoint::id: (host-order address << 16) | port.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "wire/wire.h"

#ifdef __linux__
#include <netinet/in.h>
#include <sys/socket.h>
#endif

namespace rekey::wire {

// Endpoint <-> (IPv4 host-order address, UDP port).
constexpr Endpoint make_endpoint(std::uint32_t addr_host, std::uint16_t port) {
  return Endpoint{(static_cast<std::uint64_t>(addr_host) << 16) | port};
}
constexpr std::uint32_t endpoint_addr(Endpoint e) {
  return static_cast<std::uint32_t>(e.id >> 16);
}
constexpr std::uint16_t endpoint_port(Endpoint e) {
  return static_cast<std::uint16_t>(e.id & 0xFFFF);
}

// Parses "a.b.c.d:port" (or ":port" = 127.0.0.1). Returns nullopt on
// malformed input.
std::optional<Endpoint> parse_endpoint(const std::string& spec);
std::string endpoint_to_string(Endpoint e);

// Datagrams per sendmmsg/recvmmsg syscall: REKEY_IO_BATCH in [1, 1024]
// (strict-parsed through common/env.h, warn-once and default on
// nonsense), default 64 — small per-call arrays, syscall amortized
// across a round's burst. Sampled once per UdpWire construction.
std::size_t io_batch();

namespace detail {
// Test hook: force a batch size for subsequently constructed UdpWires
// (0 restores the REKEY_IO_BATCH / default behavior). The env value is
// cached per process, so tests can't exercise odd batch sizes through
// setenv alone.
void set_io_batch_for_test(std::size_t n);
}  // namespace detail

class UdpWire : public SocketWire {
 public:
  // Binds to `bind_addr_host`:`bind_port` (port 0 = ephemeral; the bound
  // port is available via local_endpoint()). `mtu` caps every emitted
  // datagram: max_payload() = mtu - 28 (IP+UDP) - 1 (channel byte).
  // Throws EnsureError when the socket cannot be created or bound.
  UdpWire(std::uint32_t bind_addr_host, std::uint16_t bind_port,
          std::size_t mtu = 1500);
  ~UdpWire() override;

  UdpWire(const UdpWire&) = delete;
  UdpWire& operator=(const UdpWire&) = delete;

  bool send(Endpoint to, std::uint8_t channel,
            std::span<const std::uint8_t> payload) override;
  std::size_t send_frames(Endpoint to, std::uint8_t channel,
                          std::span<const Bytes* const> frames) override;
  std::size_t receive(std::vector<Datagram>& out, int timeout_ms) override;
  std::size_t max_payload() const override { return max_payload_; }

  Endpoint local_endpoint() const override { return local_; }

 private:
  // Blocks (poll/epoll on POLLOUT) until the socket accepts writes again;
  // a saturated loopback send queue is backpressure, not loss.
  bool wait_writable(int timeout_ms);

  int fd_ = -1;
  int epoll_fd_ = -1;
  std::size_t max_payload_ = 0;
  std::size_t batch_ = 64;
  Endpoint local_{};

#ifdef __linux__
  // Reusable per-call I/O arrays, sized to batch_ at construction (the
  // batch became a runtime knob, so these left the stack).
  std::vector<mmsghdr> msgs_;
  std::vector<iovec> iovs_;  // send: 2 per message; receive: 1 per message
  std::vector<sockaddr_in> addrs_;
  std::vector<std::uint8_t> recv_buf_;
#endif
};

}  // namespace rekey::wire
