// UdpWire — the real-socket WireTransport behind tools/rekeyd and
// tools/rekey_load.
//
// One nonblocking IPv4 UDP socket, readiness via epoll, and batched I/O:
// sends go through sendmmsg with two iovecs per datagram (the 1-byte
// channel prefix and the frame body), so protocol wires serialized once
// in the keytree/transport arena reach the kernel without an intermediate
// copy; receives drain the socket with recvmmsg into a reusable buffer
// block. On non-Linux builds the same interface degrades to poll() +
// sendmsg/recvmsg loops — slower, same semantics.
//
// Endpoints pack an IPv4 address and port into the 48 low bits of
// Endpoint::id: (host-order address << 16) | port.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "wire/wire.h"

namespace rekey::wire {

// Endpoint <-> (IPv4 host-order address, UDP port).
constexpr Endpoint make_endpoint(std::uint32_t addr_host, std::uint16_t port) {
  return Endpoint{(static_cast<std::uint64_t>(addr_host) << 16) | port};
}
constexpr std::uint32_t endpoint_addr(Endpoint e) {
  return static_cast<std::uint32_t>(e.id >> 16);
}
constexpr std::uint16_t endpoint_port(Endpoint e) {
  return static_cast<std::uint16_t>(e.id & 0xFFFF);
}

// Parses "a.b.c.d:port" (or ":port" = 127.0.0.1). Returns nullopt on
// malformed input.
std::optional<Endpoint> parse_endpoint(const std::string& spec);
std::string endpoint_to_string(Endpoint e);

class UdpWire : public WireTransport {
 public:
  // Binds to `bind_addr_host`:`bind_port` (port 0 = ephemeral; the bound
  // port is available via local_endpoint()). `mtu` caps every emitted
  // datagram: max_payload() = mtu - 28 (IP+UDP) - 1 (channel byte).
  // Throws EnsureError when the socket cannot be created or bound.
  UdpWire(std::uint32_t bind_addr_host, std::uint16_t bind_port,
          std::size_t mtu = 1500);
  ~UdpWire() override;

  UdpWire(const UdpWire&) = delete;
  UdpWire& operator=(const UdpWire&) = delete;

  bool send(Endpoint to, std::uint8_t channel,
            std::span<const std::uint8_t> payload) override;
  std::size_t send_frames(Endpoint to, std::uint8_t channel,
                          std::span<const Bytes* const> frames) override;
  std::size_t receive(std::vector<Datagram>& out, int timeout_ms) override;
  std::size_t max_payload() const override { return max_payload_; }

  Endpoint local_endpoint() const { return local_; }

 private:
  // Blocks (poll/epoll on POLLOUT) until the socket accepts writes again;
  // a saturated loopback send queue is backpressure, not loss.
  bool wait_writable(int timeout_ms);

  int fd_ = -1;
  int epoll_fd_ = -1;
  std::size_t max_payload_ = 0;
  Endpoint local_{};
};

}  // namespace rekey::wire
