#include "wire/fleet.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::wire {

namespace {

// Shaper stream tags (the `tag` input of ShapingConfig::drop).
constexpr std::uint64_t kTagData = 1;  // downstream data frames
constexpr std::uint64_t kTagUp = 2;    // upstream NACK suppression
constexpr std::uint64_t kTagUsr = 3;   // downstream USR fragments

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ClientFleet::ClientFleet(WireTransport& wire, Endpoint server,
                         const FleetConfig& config)
    : wire_(wire), server_(server), config_(config) {
  REKEY_ENSURE_MSG(config.count > 0, "empty fleet");
}

void ClientFleet::send_control(const Bytes& frame) {
  wire_.send(server_, kChanControl, frame);
  ++stats_.control_frames;
}

void ClientFleet::subscribe() {
  ids_.assign(config_.count, 0);
  have_slot_.assign(config_.count, false);
  slots_have_ = 0;

  SubFrame sub_frame{config_.first_uid, config_.count};
  sub_frame.max_version = config_.max_version;
  const Bytes sub = serialize(sub_frame);
  const Bytes slot_ack = serialize(SlotMapAckFrame{config_.first_uid});
  bool sub_acked = false;
  // Both slot-map widths land here; ids_ is wide enough for either.
  const auto take_slots = [this](std::uint32_t base_uid, const auto& slots) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::uint64_t uid = base_uid + i;
      if (uid < config_.first_uid || uid >= config_.first_uid + config_.count)
        continue;
      const std::size_t u = uid - config_.first_uid;
      if (!have_slot_[u]) {
        have_slot_[u] = true;
        ids_[u] = slots[i];
        ++slots_have_;
      }
    }
  };
  auto last_heard = Clock::now();
  std::vector<Datagram> in;
  while (!stopped()) {
    if (!sub_acked) send_control(sub);
    in.clear();
    if (wire_.receive(in, config_.retry_ms) > 0) last_heard = Clock::now();
    for (const Datagram& d : in) {
      if (d.channel != kChanControl || d.from != server_) continue;
      const auto op = peek_op(d.payload);
      if (op == ControlOp::SubAck) {
        const auto f = parse_sub_ack(d.payload);
        if (!f || f->version > config_.max_version) continue;
        k_ = f->block_size;
        degree_ = f->degree;
        batches_expected_ = f->batches;
        version_ = f->version;
        stats_.wire_version = version_;
        sub_acked = true;
      } else if (op == ControlOp::SlotMap) {
        const auto f = parse_slot_map(d.payload);
        if (!f) continue;
        take_slots(f->base_uid, f->slots);
        if (slots_have_ == config_.count) send_control(slot_ack);
      } else if (op == ControlOp::SlotMapV2) {
        const auto f = parse_slot_map_v2(d.payload);
        if (!f) continue;
        take_slots(f->base_uid, f->slots);
        if (slots_have_ == config_.count) send_control(slot_ack);
      }
    }
    if (sub_acked && slots_have_ == config_.count) return;
    if (ms_since(last_heard) > config_.idle_timeout_ms) return;  // abort
  }
}

void ClientFleet::open_batch(std::uint32_t seq, std::uint8_t msg_id) {
  batch_.emplace();
  Batch& b = *batch_;
  b.seq = seq;
  b.msg_id = msg_id;
  b.users.reserve(config_.count);
  for (std::size_t u = 0; u < config_.count; ++u)
    b.users.emplace_back(ids_[u], k_, degree_, &b.pool, wide());
  b.via_usr.assign(config_.count, false);
  b.recover_ms.assign(config_.count, -1.0);
  b.usr_frag_arrivals.assign(config_.count, 0);
  b.last_nacks.resize(config_.count);
  b.t0 = Clock::now();
}

void ClientFleet::note_recovered(std::size_t u, bool usr) {
  Batch& b = *batch_;
  b.recover_ms[u] = ms_since(b.t0);
  b.via_usr[u] = usr;
}

void ClientFleet::deliver_data(const Bytes& frame) {
  if (frame.empty()) return;
  const std::uint8_t msg_id = frame[0] & 0x3F;
  if (!batch_) {
    // BatchStart can lose the race against the data burst (or be lost
    // outright): the data-plane msg id, pinned to batch_seq % 64 by the
    // daemon, lets the fleet open the batch lazily.
    if (msg_id != static_cast<std::uint8_t>(next_seq_ % 64)) return;
    if (batches_expected_ > 0 && next_seq_ >= batches_expected_) return;
    if (dies_at(next_seq_)) {
      die_now_ = true;
      return;
    }
    open_batch(next_seq_, msg_id);
  }
  Batch& b = *batch_;
  if (msg_id != b.msg_id) return;  // stale batch traffic

  const std::size_t idx = b.pool.size();
  b.pool.push_back(frame);
  ++stats_.data_frames;
  const std::uint64_t n =
      (static_cast<std::uint64_t>(b.seq) << 40) | b.frame_counter++;
  const int round_now = b.last_round + 1;
  for (std::size_t u = 0; u < config_.count; ++u) {
    transport::UserTransport& user = b.users[u];
    if (user.recovered()) continue;
    if (config_.shaping.drop(config_.first_uid + u, kTagData, n,
                             config_.shaping.down_loss)) {
      ++stats_.shaped_off;
      continue;
    }
    user.on_packet(idx, round_now);
    if (user.recovered()) note_recovered(u, false);
  }
}

void ClientFleet::build_and_send_report(std::uint16_t round,
                                        std::uint8_t phase) {
  Batch& b = *batch_;
  std::vector<ReportUser> users_out;
  std::uint32_t unrecovered = 0;
  for (std::size_t u = 0; u < config_.count; ++u) {
    if (b.users[u].recovered()) continue;
    ++unrecovered;
    const std::uint32_t uid =
        config_.first_uid + static_cast<std::uint32_t>(u);
    if (phase == 0) {
      // Upstream shaping loses the whole NACK, not the user: the report's
      // unrecovered count still carries it (that count is the lockstep
      // stand-in for the protocol's unicast wake-up path).
      if (config_.shaping.drop(
              uid, kTagUp,
              (static_cast<std::uint64_t>(b.seq) << 16) | round,
              config_.shaping.up_loss)) {
        ++stats_.nacks_suppressed;
        continue;
      }
      users_out.push_back(ReportUser{uid, b.last_nacks[u]});
    } else {
      users_out.push_back(ReportUser{uid, {}});
    }
  }
  b.cached_report.clear();
  if (wide()) {
    for (const ReportV2Frame& part :
         chunk_report_v2(b.seq, round, phase, unrecovered, users_out,
                         wire_.max_payload()))
      if (auto w = serialize(part)) b.cached_report.push_back(std::move(*w));
  } else {
    for (const ReportFrame& part :
         chunk_report(b.seq, round, phase, unrecovered, users_out,
                      wire_.max_payload()))
      if (auto w = serialize(part)) b.cached_report.push_back(std::move(*w));
  }
  for (const Bytes& part : b.cached_report) {
    send_control(part);
    ++stats_.reports_sent;
  }
  b.cached_round = round;
  b.cached_phase = phase;
}

void ClientFleet::on_round_mark(const RoundMarkFrame& f) {
  if (config_.die_at_wave >= 0 && f.phase == 1 &&
      f.round >= config_.die_at_wave) {
    // Mid-wave endpoint death: go silent without a report. The server
    // must land our clients in its gave-up accounting, not wait forever.
    die_now_ = true;
    return;
  }
  if (!batch_ || batch_->seq != f.batch_seq) {
    if (f.batch_seq == next_seq_ &&
        (batches_expected_ == 0 || next_seq_ < batches_expected_)) {
      if (dies_at(f.batch_seq)) {
        die_now_ = true;
        return;
      }
      open_batch(f.batch_seq, f.msg_id);
    } else {
      return;  // a finalized or unknown batch
    }
  }
  Batch& b = *batch_;
  if (!b.cached_report.empty() && f.round == b.cached_round &&
      f.phase == b.cached_phase) {
    // Duplicate mark: our report (or part of it) was lost — resend.
    for (const Bytes& part : b.cached_report) {
      send_control(part);
      ++stats_.reports_sent;
    }
    return;
  }
  if (f.phase == 0) {
    if (f.round <= b.last_round) return;  // older than what we reported
    const int round = f.round;
    for (std::size_t u = 0; u < config_.count; ++u) {
      transport::UserTransport& user = b.users[u];
      if (user.recovered()) continue;
      auto entries = user.end_of_round(round);
      if (user.recovered()) {
        note_recovered(u, false);  // decoded at round end
      } else {
        b.last_nacks[u] = std::move(entries);
      }
    }
    b.last_round = round;
  }
  build_and_send_report(f.round, f.phase);
}

template <typename Frame>
void ClientFleet::on_usr_frag(const Frame& f) {
  if (!batch_ || batch_->seq != f.batch_seq) return;
  if (f.uid < config_.first_uid || f.uid >= config_.first_uid + config_.count)
    return;
  Batch& b = *batch_;
  const std::size_t u = f.uid - config_.first_uid;
  transport::UserTransport& user = b.users[u];
  if (user.recovered()) return;
  const std::uint64_t n = (static_cast<std::uint64_t>(b.seq) << 24) |
                          b.usr_frag_arrivals[u]++;
  if (config_.shaping.drop(f.uid, kTagUsr, n, config_.shaping.down_loss)) {
    ++stats_.shaped_off;
    return;
  }
  const auto full = b.reasm.add(f);
  if (!full) return;
  const auto usr = packet::UsrPacket::parse(*full, wide());
  if (!usr) return;  // damaged reassembly — wait for the next wave
  user.on_usr(*usr);
  if (user.recovered()) note_recovered(u, true);
}

bool ClientFleet::maybe_failover(const Datagram& d) {
  if (config_.failover.empty() || d.channel != kChanControl) return false;
  if (peek_op(d.payload) != ControlOp::BatchStart) return false;
  const auto f = parse_batch_start(d.payload);
  if (!f || f->epoch <= epoch_) return false;  // fencing: not newer than ours
  bool known = false;
  for (const Endpoint& ep : config_.failover) known = known || ep == d.from;
  if (!known) return false;
  // A higher-epoch BatchStart from the failover set: a standby has been
  // elected. Drop any half-received batch — the new primary replays it
  // from its opening BatchStart — and re-subscribe with evolved state.
  server_ = d.from;
  epoch_ = f->epoch;
  stats_.epoch = epoch_;
  ++stats_.failovers;
  batch_.reset();
  need_resub_ = true;
  send_resub();
  return true;
}

void ClientFleet::send_resub() {
  ResubFrame f;
  f.first_uid = config_.first_uid;
  f.count = config_.count;
  f.epoch = epoch_;
  f.done_seq = done_seq_;
  f.first_id = ids_.empty() ? 0 : ids_[0];
  send_control(serialize(f));
  ++stats_.resubs_sent;
}

void ClientFleet::on_batch_done(const BatchDoneFrame& f) {
  if (batch_ && batch_->seq == f.batch_seq) {
    Batch& b = *batch_;
    DoneAckFrame ack;
    ack.batch_seq = b.seq;
    for (std::size_t u = 0; u < config_.count; ++u) {
      // Carry the evolved id into the next batch — recovered or not, the
      // id advanced iff a usable maxKID was seen (Theorem 4.2).
      ids_[u] = b.users[u].current_id();
      if (b.users[u].recovered()) {
        ++ack.recovered;
        if (b.via_usr[u]) ++ack.via_usr;
        stats_.recovery_ms.push_back(b.recover_ms[u]);
      } else {
        ++ack.gave_up;
      }
    }
    stats_.recovered += ack.recovered;
    stats_.via_usr += ack.via_usr;
    stats_.unrecovered += ack.gave_up;
    ++stats_.batches;
    cached_done_ack_ = serialize(ack);
    send_control(cached_done_ack_);
    next_seq_ = f.batch_seq + 1;
    done_seq_ = next_seq_;
    batch_.reset();
  } else if (f.batch_seq + 1 == done_seq_ && !cached_done_ack_.empty()) {
    send_control(cached_done_ack_);  // our ack was lost
  }
}

FleetStats ClientFleet::run() {
  stats_.clients = config_.count;
  subscribe();
  if (stopped() || slots_have_ != config_.count) return stats_;

  auto last_heard = Clock::now();
  std::vector<Datagram> in;
  bool fin = false;
  while (!stopped() && !fin) {
    in.clear();
    if (wire_.receive(in, config_.retry_ms) > 0) {
      last_heard = Clock::now();
    } else if (ms_since(last_heard) > config_.idle_timeout_ms) {
      return stats_;  // server went silent: abort without `finished`
    }
    for (const Datagram& d : in) {
      if (d.from != server_) {
        maybe_failover(d);
        continue;
      }
      if (d.channel == kChanData) {
        need_resub_ = false;  // the adopted server reached its data burst
        deliver_data(d.payload);
        if (die_now_) return stats_;
        continue;
      }
      if (d.channel != kChanControl) continue;
      const auto op = peek_op(d.payload);
      if (!op) continue;
      switch (*op) {
        case ControlOp::SlotMap:
        case ControlOp::SlotMapV2:
          // The server is still retransmitting: our ack was lost.
          send_control(serialize(SlotMapAckFrame{config_.first_uid}));
          break;
        case ControlOp::BatchStart: {
          const auto f = parse_batch_start(d.payload);
          if (!f || f->epoch < epoch_) break;  // stale pre-failover primary
          if (f->epoch > epoch_) {
            // The current server re-announcing at a higher epoch (it won
            // an election we didn't witness): adopt and re-subscribe.
            epoch_ = f->epoch;
            stats_.epoch = epoch_;
            need_resub_ = true;
          }
          if (need_resub_) send_resub();
          if (!batch_ && f->batch_seq == next_seq_) {
            if (dies_at(f->batch_seq)) {
              die_now_ = true;
              break;
            }
            open_batch(f->batch_seq, f->msg_id);
          }
          break;
        }
        case ControlOp::RoundMark: {
          const auto f = parse_round_mark(d.payload);
          need_resub_ = false;  // the lockstep is past the resub barrier
          if (f) on_round_mark(*f);
          break;
        }
        case ControlOp::UsrFrag: {
          const auto f = parse_usr_frag(d.payload);
          if (f) on_usr_frag(*f);
          break;
        }
        case ControlOp::UsrFragV2: {
          const auto f = parse_usr_frag_v2(d.payload);
          if (f) on_usr_frag(*f);
          break;
        }
        case ControlOp::BatchDone: {
          const auto f = parse_batch_done(d.payload);
          if (f) on_batch_done(*f);
          break;
        }
        case ControlOp::Fin:
          send_control(serialize(FinAckFrame{}));
          fin = true;
          break;
        default:
          break;
      }
      if (die_now_) return stats_;  // a die_at_* hook fired: go silent
    }
  }
  if (fin) {
    stats_.finished = true;
    // Linger briefly to answer duplicate Fins (our FinAck may be lost).
    const auto until =
        Clock::now() + std::chrono::milliseconds(3 * config_.retry_ms);
    while (Clock::now() < until) {
      in.clear();
      wire_.receive(in, config_.retry_ms);
      for (const Datagram& d : in)
        if (d.channel == kChanControl && d.from == server_ &&
            peek_op(d.payload) == ControlOp::Fin)
          send_control(serialize(FinAckFrame{}));
    }
  }
  return stats_;
}

}  // namespace rekey::wire
