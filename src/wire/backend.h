// Runtime wire-backend selection — the dispatch pattern REKEY_SIMD
// established, applied to the socket layer.
//
// Two kernel backends implement SocketWire (wire/wire.h):
//
//   * epoll    — UdpWire (wire/udp.h): nonblocking socket, readiness via
//     epoll, batched sendmmsg/recvmmsg. Works on every Linux (and, in a
//     degraded poll() form, on non-Linux). This path's wire bytes and
//     syscall ordering are the golden reference; it stays byte-identical
//     no matter which other backends exist.
//   * io_uring — IoUringWire (wire/uring.h): raw-syscall submission/
//     completion rings, registered fixed buffers from a FrameBufferPool,
//     multishot recvmsg, linked send SQEs. Needs kernel >= 6.0 and an
//     unfiltered io_uring (container seccomp policies often deny it).
//
// Selection: explicit request (`--backend`, parse_backend) wins; else the
// REKEY_WIRE_BACKEND environment variable ({epoll, io_uring}, strict,
// warn-once on nonsense); else epoll. An io_uring request on a kernel
// that cannot run it falls back to epoll with a warn-once note instead of
// failing — the protocol is backend-agnostic, so degraded is better than
// down. effective_backend() reports the backend that will actually run.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/obs.h"
#include "wire/wire.h"

namespace rekey::wire {

enum class WireBackend { kEpoll, kIoUring };

// "epoll" / "io_uring" (the canonical spellings; "uring" is accepted as
// shorthand). Returns nullopt on anything else.
std::optional<WireBackend> parse_backend(std::string_view name);
std::string backend_name(WireBackend b);

// REKEY_WIRE_BACKEND when set and well-formed (warn-once and fall back to
// nullopt on nonsense), else nullopt.
std::optional<WireBackend> env_wire_backend();

// True when IoUringWire::supported() — probed once per process.
bool io_uring_supported();

// The backend that make_socket_wire(requested, ...) will really build:
// requested (or env, or epoll) downgraded to epoll when io_uring is
// unavailable (warn-once on the downgrade).
WireBackend effective_backend(std::optional<WireBackend> requested);

// Builds the selected backend bound to `bind_addr_host`:`bind_port` with
// the given MTU. `requested` = nullopt defers to REKEY_WIRE_BACKEND.
std::unique_ptr<SocketWire> make_socket_wire(
    std::optional<WireBackend> requested, std::uint32_t bind_addr_host,
    std::uint16_t bind_port, std::size_t mtu = 1500);

// Process-wide count of per-operation wire-layer syscalls (sendmmsg/
// recvmmsg/sendmsg/recvfrom/epoll_wait/poll on the epoll path,
// io_uring_enter on the io_uring path; one-time setup/registration calls
// are not counted). The W1 bench snapshots it around each scenario to
// report syscalls per batch — the number io_uring exists to shrink.
obs::Counter& wire_syscalls();

}  // namespace rekey::wire
