// WireTransport — the datagram-transport abstraction the real-wire key
// server stack is built on (ROADMAP item 1).
//
// The batch-rekey pipeline (keytree -> payload -> assignment ->
// ServerTransport packets) has always produced real wire bytes; what
// varied was who carried them. Until now the only carrier was the
// in-process simnet (simnet::Topology + transport::RekeySession), which
// models loss analytically. This interface lets the same pipeline drive
// an actual datagram transport:
//
//   * LoopbackWire (wire/loopback.h) — a deterministic in-process hub.
//     Same spirit as the simnet: no sockets, no timing, reproducible;
//     used by the daemon/fleet unit tests and available to benches.
//   * UdpWire (wire/udp.h) — a nonblocking UDP socket on epoll with
//     batched sendmmsg/recvmmsg; what tools/rekeyd and tools/rekey_load
//     run on.
//
// The simulator path (RekeySession over simnet::Topology) is untouched
// and stays bit-identical; KeyServerDaemon (wire/daemon.h) is the wire
// counterpart of RekeySession, running the identical ServerTransport /
// UserTransport state machines over a WireTransport.
//
// Every datagram on a WireTransport carries a 1-byte channel prefix
// (wire/control.h): kChanData frames hold exactly the protocol wire
// bytes of packet/wire.h; kChanControl frames hold the daemon's session
// control messages (subscribe, round marks, NACK reports, USR
// fragments). UDP gives no framing for free, so the prefix is what
// keeps a NACK from masquerading as a control frame.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"

namespace rekey::wire {

// Opaque transport address. UdpWire packs IPv4 address and port;
// LoopbackWire uses small indices handed out by its hub.
struct Endpoint {
  std::uint64_t id = 0;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

struct Datagram {
  Endpoint from;
  Bytes payload;  // channel byte already stripped
  std::uint8_t channel = 0;
};

class WireTransport {
 public:
  virtual ~WireTransport() = default;

  // Sends one datagram of `channel` + `payload`. Returns false when the
  // transport refuses it (payload over max_payload(), transient send
  // failure); the rekey protocol treats that like any other loss.
  virtual bool send(Endpoint to, std::uint8_t channel,
                    std::span<const std::uint8_t> payload) = 0;

  // Batched send of many frames to one endpoint (sendmmsg on UDP, with
  // the channel byte contributed by a separate iovec so the frame bodies
  // are never copied). Returns the number of frames actually queued.
  virtual std::size_t send_frames(Endpoint to, std::uint8_t channel,
                                  std::span<const Bytes* const> frames) = 0;

  // Appends received datagrams to `out`, waiting up to `timeout_ms` for
  // the first one (0 = non-blocking poll). Returns how many were added.
  virtual std::size_t receive(std::vector<Datagram>& out, int timeout_ms) = 0;

  // Largest payload (excluding the channel byte) a frame may carry:
  // MTU - IP/UDP headers - channel byte. The daemon refuses to emit
  // anything larger and fragments control payloads instead.
  virtual std::size_t max_payload() const = 0;
};

// A WireTransport bound to a real socket. Both kernel backends implement
// this interface — UdpWire (wire/udp.h, epoll + sendmmsg/recvmmsg) and
// IoUringWire (wire/uring.h, io_uring submission/completion rings) — and
// wire/backend.h picks between them at runtime (REKEY_WIRE_BACKEND /
// --backend), so tools and tests hold a SocketWire without caring which
// syscall family moves the bytes.
class SocketWire : public WireTransport {
 public:
  // The bound local address (bind with port 0 to learn the ephemeral
  // port), in the Endpoint packing of wire/udp.h.
  virtual Endpoint local_endpoint() const = 0;
};

}  // namespace rekey::wire
