#include "wire/uring.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <deque>
#include <map>

#include "common/ensure.h"
#include "wire/backend.h"

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "wire/sockutil.h"
#endif

#if defined(__linux__) && defined(__NR_io_uring_setup) && \
    defined(__NR_io_uring_enter) && defined(__NR_io_uring_register)
#define REKEY_HAVE_URING 1
#else
#define REKEY_HAVE_URING 0
#endif

namespace rekey::wire {

#if REKEY_HAVE_URING

namespace {

// Clean-room subset of the io_uring UAPI (include/uapi/linux/io_uring.h).
// Declared here instead of including <linux/io_uring.h> so the build
// never depends on the age of the installed kernel headers — the ABI
// itself is stable; only the header that names it moves.
namespace abi {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

struct SqringOffsets {
  u32 head, tail, ring_mask, ring_entries, flags, dropped, array, resv1;
  u64 user_addr;
};

struct CqringOffsets {
  u32 head, tail, ring_mask, ring_entries, overflow, cqes, flags, resv1;
  u64 user_addr;
};

struct Params {
  u32 sq_entries, cq_entries, flags, sq_thread_cpu, sq_thread_idle;
  u32 features, wq_fd;
  u32 resv[3];
  SqringOffsets sq_off;
  CqringOffsets cq_off;
};

struct Sqe {
  u8 opcode;
  u8 flags;
  u16 ioprio;
  s32 fd;
  u64 addr2;  // union with off
  u64 addr;
  u32 len;
  u32 op_flags;  // union: msg_flags / rw_flags / ...
  u64 user_data;
  u16 buf_index;  // union with buf_group
  u16 personality;
  u16 addr_len;  // union with splice_fd_in / file_index (low half)
  u16 pad3;
  u64 addr3;
  u64 pad2;
};
static_assert(sizeof(Sqe) == 64);

struct Cqe {
  u64 user_data;
  s32 res;
  u32 flags;
};
static_assert(sizeof(Cqe) == 16);

// Provided-buffer ring entry; the first entry's resv field doubles as
// the ring tail the producer (us) publishes through.
struct Buf {
  u64 addr;
  u32 len;
  u16 bid;
  u16 resv;
};
static_assert(sizeof(Buf) == 16);

struct BufReg {
  u64 ring_addr;
  u32 ring_entries;
  u16 bgid;
  u16 flags;
  u64 resv[3];
};

struct ProbeOp {
  u8 op, resv;
  u16 flags;
  u32 resv2;
};

struct Probe {
  u8 last_op, ops_len;
  u16 resv;
  u32 resv2[3];
  ProbeOp ops[256];
};

struct GeteventsArg {
  u64 sigmask;
  u32 sigmask_sz;
  u32 pad;
  u64 ts;
};
static_assert(sizeof(GeteventsArg) == 24);

struct KernelTimespec {
  s64 tv_sec;
  s64 tv_nsec;
};

// The multishot-recvmsg buffer header: name/control/payload areas follow
// at the sizes *reserved* in the request msghdr, with the actual lengths
// reported here.
struct RecvmsgOut {
  u32 namelen, controllen, payloadlen, flags;
};

constexpr u64 kOffSqRing = 0;
constexpr u64 kOffSqes = 0x10000000ULL;

constexpr u32 kFeatSingleMmap = 1u << 0;
constexpr u32 kFeatExtArg = 1u << 8;

constexpr u32 kSetupCqsize = 1u << 3;
constexpr u32 kSetupClamp = 1u << 4;

constexpr u32 kEnterGetevents = 1u << 0;
constexpr u32 kEnterExtArg = 1u << 3;

constexpr u32 kRegisterBuffers = 0;
constexpr u32 kRegisterProbe = 8;
constexpr u32 kRegisterPbufRing = 22;
constexpr u32 kUnregisterPbufRing = 23;

constexpr u8 kOpSendmsg = 9;
constexpr u8 kOpRecvmsg = 10;
constexpr u8 kOpSendZc = 47;

constexpr u8 kSqeIoLink = 1u << 2;
constexpr u8 kSqeBufferSelect = 1u << 5;

constexpr u16 kRecvMultishot = 1u << 1;     // IORING_RECV_MULTISHOT
constexpr u16 kRecvsendFixedBuf = 1u << 2;  // IORING_RECVSEND_FIXED_BUF

constexpr u32 kCqeFBuffer = 1u << 0;
constexpr u32 kCqeFMore = 1u << 1;
constexpr u32 kCqeFNotif = 1u << 3;
constexpr u32 kCqeBufferShift = 16;

constexpr u16 kOpSupported = 1u << 0;

inline int sys_setup(unsigned entries, Params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

inline long sys_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                      unsigned flags, const void* arg, std::size_t argsz) {
  return ::syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete,
                   flags, arg, argsz);
}

inline int sys_register(int ring_fd, unsigned opcode, void* arg,
                        unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

}  // namespace abi

// The sockaddr_in the kernel reserves space for in every receive buffer.
constexpr std::size_t kNameReserve = sizeof(sockaddr_in);

// IPv4 + UDP header bytes (matches packet::kUdpIpOverheadBytes).
constexpr std::size_t kIpUdpOverhead = 28;

// user_data tags: kind in the top byte, slot/index below.
enum class UdKind : abi::u64 { kRecv = 1, kBurst = 2, kPool = 3, kHeap = 4 };

constexpr abi::u64 make_ud(UdKind kind, abi::u64 index) {
  return (static_cast<abi::u64>(kind) << 56) | index;
}

bool probe_supported() {
  abi::Params p{};
  p.flags = abi::kSetupClamp;
  const int fd = abi::sys_setup(8, &p);
  if (fd < 0) return false;
  bool ok = (p.features & (abi::kFeatSingleMmap | abi::kFeatExtArg)) ==
            (abi::kFeatSingleMmap | abi::kFeatExtArg);
  if (ok) {
    // Opcode probe: SEND_ZC (kernel 6.0) doubles as the gate for
    // multishot recvmsg (5.19+) and provided-buffer rings (5.19+).
    static abi::Probe probe;
    std::memset(&probe, 0, sizeof probe);
    ok = abi::sys_register(fd, abi::kRegisterProbe, &probe, 256) == 0;
    const auto op_ok = [&](abi::u8 op) {
      return op <= probe.last_op && (probe.ops[op].flags & abi::kOpSupported);
    };
    ok = ok && op_ok(abi::kOpSendmsg) && op_ok(abi::kOpRecvmsg) &&
         op_ok(abi::kOpSendZc);
  }
  if (ok) {
    // A container seccomp policy can pass the probe but reject the
    // registrations the backend needs; try a real provided-buffer ring.
    void* mem = mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    ok = mem != MAP_FAILED;
    if (ok) {
      abi::BufReg reg{};
      reg.ring_addr = reinterpret_cast<abi::u64>(mem);
      reg.ring_entries = 8;
      reg.bgid = 0;
      ok = abi::sys_register(fd, abi::kRegisterPbufRing, &reg, 1) == 0;
      if (ok) abi::sys_register(fd, abi::kUnregisterPbufRing, &reg, 1);
      munmap(mem, 4096);
    }
  }
  close(fd);
  return ok;
}

}  // namespace

struct IoUringWire::Impl {
  // ---- configuration / socket ----
  std::size_t max_payload = 0;
  Endpoint local{};
  int fd = -1;       // the UDP socket
  int ring_fd = -1;  // the io_uring instance

  // ---- ring mappings ----
  void* ring_mem = MAP_FAILED;
  std::size_t ring_bytes = 0;
  abi::Sqe* sqes = nullptr;
  std::size_t sqes_bytes = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_array = nullptr;
  unsigned sq_entry_count = 0;
  unsigned sq_mask = 0;
  unsigned sq_local_tail = 0;  // staged but not yet published
  unsigned unsubmitted = 0;    // staged but not yet consumed by the kernel

  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  abi::Cqe* cqes = nullptr;
  unsigned cq_mask = 0;

  // ---- pooled single-frame sends ----
  FrameBufferPool pool;
  bool send_zc_ok = true;         // downgraded on the first -EINVAL
  bool send_zc_confirmed = false; // one SEND_ZC completed successfully
  std::vector<sockaddr_in> slot_addr;
  std::vector<iovec> slot_iov;
  std::vector<msghdr> slot_msg;
  bool wait_send_done = false;  // completion flag for the in-flight send
  int wait_send_res = 0;

  struct HeapSend {
    Bytes data;
    sockaddr_in sa{};
    iovec iov{};
    msghdr msg{};
  };
  std::map<abi::u64, std::unique_ptr<HeapSend>> heap_sends;
  abi::u64 next_heap_id = 0;

  // ---- linked burst sends ----
  std::vector<msghdr> burst_msgs;
  std::vector<std::array<iovec, 2>> burst_iovs;
  sockaddr_in burst_sa{};
  std::uint8_t burst_chan = 0;
  unsigned burst_outstanding = 0;
  std::size_t burst_ok = 0;

  // ---- multishot receive ----
  void* buf_ring_mem = MAP_FAILED;
  std::size_t buf_ring_bytes = 0;
  abi::Buf* buf_ring = nullptr;
  abi::u16* buf_ring_tail = nullptr;
  abi::u16 buf_ring_tail_local = 0;
  std::vector<std::uint8_t> recv_arena;
  std::size_t recv_slot = 0;
  unsigned recv_entries = 0;
  bool recv_armed = false;
  msghdr recv_msg{};
  std::deque<Datagram> pending_rx;

  explicit Impl(std::size_t pool_slot_size, std::size_t pool_slots)
      : pool(pool_slot_size, pool_slots) {}

  // ---------------------------------------------------------------- ring

  abi::Sqe* get_sqe() {
    const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
    if (sq_local_tail - head >= sq_entry_count) return nullptr;
    abi::Sqe* e = &sqes[sq_local_tail & sq_mask];
    std::memset(e, 0, sizeof *e);
    sq_array[sq_local_tail & sq_mask] = sq_local_tail & sq_mask;
    ++sq_local_tail;
    ++unsubmitted;
    return e;
  }

  abi::Sqe* need_sqe() {
    for (;;) {
      if (abi::Sqe* e = get_sqe()) return e;
      enter(0, nullptr);  // flush: the kernel consumes SQ slots at submit
    }
  }

  // Submits everything staged and (optionally) waits: min_complete > 0
  // blocks for that many completions, ts != nullptr bounds the wait.
  void enter(unsigned min_complete, const abi::KernelTimespec* ts) {
    __atomic_store_n(sq_tail, sq_local_tail, __ATOMIC_RELEASE);
    for (;;) {
      unsigned flags = 0;
      const void* arg = nullptr;
      std::size_t argsz = 0;
      abi::GeteventsArg ga{};
      if (min_complete > 0 || ts != nullptr) flags |= abi::kEnterGetevents;
      if (ts != nullptr) {
        flags |= abi::kEnterExtArg;
        ga.ts = reinterpret_cast<abi::u64>(ts);
        arg = &ga;
        argsz = sizeof ga;
      }
      wire_syscalls().add();
      const long rc = abi::sys_enter(ring_fd, unsubmitted, min_complete,
                                     flags, arg, argsz);
      if (rc >= 0) {
        unsubmitted -= std::min<unsigned>(static_cast<unsigned>(rc),
                                          unsubmitted);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == ETIME) return;  // timed wait expired, nothing submitted
      if (errno == EBUSY) {        // CQ backpressure: drain and retry
        harvest();
        continue;
      }
      REKEY_ENSURE_MSG(false, "io_uring_enter failed");
    }
  }

  void harvest() {
    unsigned head = __atomic_load_n(cq_head, __ATOMIC_RELAXED);
    const unsigned tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
    if (head == tail) return;
    while (head != tail) {
      const abi::Cqe c = cqes[head & cq_mask];
      ++head;
      handle_cqe(c);
    }
    __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
  }

  void handle_cqe(const abi::Cqe& c) {
    const auto kind = static_cast<UdKind>(c.user_data >> 56);
    const abi::u64 index = c.user_data & ((abi::u64{1} << 56) - 1);
    switch (kind) {
      case UdKind::kRecv:
        on_recv_cqe(c);
        break;
      case UdKind::kBurst:
        if (burst_outstanding > 0) --burst_outstanding;
        if (c.res >= 0) ++burst_ok;
        break;
      case UdKind::kPool: {
        const std::size_t slot = static_cast<std::size_t>(index);
        if (c.flags & abi::kCqeFNotif) {
          // The kernel no longer reads the registered slot.
          pool.release(slot);
        } else {
          wait_send_done = true;
          wait_send_res = c.res;
          if (!(c.flags & abi::kCqeFMore)) pool.release(slot);
        }
        break;
      }
      case UdKind::kHeap: {
        wait_send_done = true;
        wait_send_res = c.res;
        heap_sends.erase(c.user_data);
        break;
      }
    }
  }

  // ------------------------------------------------------------- receive

  void buf_ring_add(abi::u16 bid) {
    abi::Buf& b = buf_ring[buf_ring_tail_local & (recv_entries - 1)];
    // Never write b.resv: for entry 0 that field *is* the shared tail.
    b.addr = reinterpret_cast<abi::u64>(recv_arena.data() +
                                        std::size_t{bid} * recv_slot);
    b.len = static_cast<abi::u32>(recv_slot);
    b.bid = bid;
    ++buf_ring_tail_local;
    __atomic_store_n(buf_ring_tail, buf_ring_tail_local, __ATOMIC_RELEASE);
  }

  void arm_recv() {
    abi::Sqe* e = need_sqe();
    e->opcode = abi::kOpRecvmsg;
    e->fd = fd;
    e->addr = reinterpret_cast<abi::u64>(&recv_msg);
    e->len = 1;
    e->ioprio = abi::kRecvMultishot;
    e->flags = abi::kSqeBufferSelect;
    e->buf_index = 0;  // buffer group id
    e->user_data = make_ud(UdKind::kRecv, 0);
    recv_armed = true;
  }

  void on_recv_cqe(const abi::Cqe& c) {
    if (!(c.flags & abi::kCqeFMore)) recv_armed = false;  // rearm later
    if (c.res < 0) return;  // -ENOBUFS etc.; buffers replenish as we parse
    if (!(c.flags & abi::kCqeFBuffer)) return;
    const auto bid =
        static_cast<abi::u16>(c.flags >> abi::kCqeBufferShift);
    const std::uint8_t* base =
        recv_arena.data() + std::size_t{bid} * recv_slot;
    abi::RecvmsgOut oh;
    std::memcpy(&oh, base, sizeof oh);
    // MSG_TRUNC = datagram larger than the buffer; the epoll path would
    // deliver the truncated prefix and let frame parsing reject it, so
    // dropping here is behavior-equivalent.
    if (oh.payloadlen >= 1 && !(oh.flags & MSG_TRUNC) &&
        oh.namelen >= sizeof(sockaddr_in)) {
      sockaddr_in sa;
      std::memcpy(&sa, base + sizeof(abi::RecvmsgOut), sizeof sa);
      const std::uint8_t* payload =
          base + sizeof(abi::RecvmsgOut) + kNameReserve;  // controllen = 0
      Datagram d;
      d.from = sockutil::from_sockaddr(sa);
      d.channel = payload[0];
      d.payload.assign(payload + 1, payload + oh.payloadlen);
      pending_rx.push_back(std::move(d));
    }
    buf_ring_add(bid);
  }

  // --------------------------------------------------------------- sends

  // Blocks until the in-flight single-frame send reports its completion
  // CQE; receive CQEs harvested along the way queue in pending_rx.
  int wait_for_send() {
    wait_send_done = false;
    while (true) {
      harvest();
      if (wait_send_done) return wait_send_res;
      enter(1, nullptr);
    }
  }

  bool pooled_send(Endpoint to, std::uint8_t channel,
                   std::span<const std::uint8_t> payload) {
    const std::size_t slot = pool.acquire();
    if (slot == FrameBufferPool::kNone)
      return heap_send(to, channel, payload);
    std::uint8_t* buf = pool.slot(slot);
    buf[0] = channel;
    std::memcpy(buf + 1, payload.data(), payload.size());
    const std::size_t len = payload.size() + 1;
    slot_addr[slot] = sockutil::to_sockaddr(to);

    const bool zc = send_zc_ok;
    abi::Sqe* e = need_sqe();
    if (zc) {
      e->opcode = abi::kOpSendZc;
      e->fd = fd;
      e->addr = reinterpret_cast<abi::u64>(buf);
      e->len = static_cast<abi::u32>(len);
      e->ioprio = abi::kRecvsendFixedBuf;
      e->buf_index = 0;  // the pool arena is registered buffer 0
      e->addr2 = reinterpret_cast<abi::u64>(&slot_addr[slot]);
      e->addr_len = sizeof(sockaddr_in);
    } else {
      slot_iov[slot] = {buf, len};
      msghdr& m = slot_msg[slot];
      std::memset(&m, 0, sizeof m);
      m.msg_name = &slot_addr[slot];
      m.msg_namelen = sizeof(sockaddr_in);
      m.msg_iov = &slot_iov[slot];
      m.msg_iovlen = 1;
      e->opcode = abi::kOpSendmsg;
      e->fd = fd;
      e->addr = reinterpret_cast<abi::u64>(&m);
      e->len = 1;
    }
    e->user_data = make_ud(UdKind::kPool, slot);

    const int res = wait_for_send();
    if (res == -EINVAL && zc && !send_zc_confirmed) {
      // This kernel parses the ring but rejects SEND_ZC with a fixed
      // buffer + address; downgrade once, permanently, and retry via
      // SENDMSG (the failed CQE already released the slot).
      send_zc_ok = false;
      return pooled_send(to, channel, payload);
    }
    if (res >= 0 && zc) send_zc_confirmed = true;
    return res >= 0;
  }

  bool heap_send(Endpoint to, std::uint8_t channel,
                 std::span<const std::uint8_t> payload) {
    auto hs = std::make_unique<HeapSend>();
    hs->data.reserve(payload.size() + 1);
    hs->data.push_back(channel);
    hs->data.insert(hs->data.end(), payload.begin(), payload.end());
    hs->sa = sockutil::to_sockaddr(to);
    hs->iov = {hs->data.data(), hs->data.size()};
    std::memset(&hs->msg, 0, sizeof hs->msg);
    hs->msg.msg_name = &hs->sa;
    hs->msg.msg_namelen = sizeof(sockaddr_in);
    hs->msg.msg_iov = &hs->iov;
    hs->msg.msg_iovlen = 1;

    const abi::u64 ud =
        make_ud(UdKind::kHeap, next_heap_id++ & ((abi::u64{1} << 56) - 1));
    abi::Sqe* e = need_sqe();
    e->opcode = abi::kOpSendmsg;
    e->fd = fd;
    e->addr = reinterpret_cast<abi::u64>(&hs->msg);
    e->len = 1;
    e->user_data = ud;
    heap_sends[ud] = std::move(hs);
    return wait_for_send() >= 0;
  }
};

IoUringWire::IoUringWire(std::uint32_t bind_addr_host,
                         std::uint16_t bind_port, std::size_t mtu,
                         Options options) {
  REKEY_ENSURE_MSG(supported(),
                   "io_uring backend constructed on a kernel without "
                   "io_uring support (check IoUringWire::supported())");
  REKEY_ENSURE_MSG(mtu > kIpUdpOverhead + 1, "MTU below IP/UDP header size");
  REKEY_ENSURE_MSG(options.pool_slots > 0 && options.sq_entries > 0 &&
                       options.recv_buffers > 0 &&
                       (options.recv_buffers &
                        (options.recv_buffers - 1)) == 0,
                   "bad IoUringWire options (recv_buffers must be 2^k)");
  const std::size_t max_payload = mtu - kIpUdpOverhead - 1;
  impl_ = std::make_unique<Impl>(max_payload + 1, options.pool_slots);
  Impl& im = *impl_;
  im.max_payload = max_payload;

  im.fd = sockutil::open_bound_udp_socket(bind_addr_host, bind_port,
                                          &im.local);

  // Ring setup. CQ is 4x SQ so a full linked burst plus recv completions
  // and SEND_ZC notifications never overflow between harvests.
  abi::Params p{};
  p.flags = abi::kSetupClamp | abi::kSetupCqsize;
  p.cq_entries = options.sq_entries * 4;
  im.ring_fd = abi::sys_setup(options.sq_entries, &p);
  REKEY_ENSURE_MSG(im.ring_fd >= 0, "io_uring_setup failed");
  REKEY_ENSURE((p.features & (abi::kFeatSingleMmap | abi::kFeatExtArg)) ==
               (abi::kFeatSingleMmap | abi::kFeatExtArg));

  const std::size_t sq_bytes = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  const std::size_t cq_bytes = p.cq_off.cqes + p.cq_entries * sizeof(abi::Cqe);
  im.ring_bytes = std::max(sq_bytes, cq_bytes);
  im.ring_mem = mmap(nullptr, im.ring_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, im.ring_fd, abi::kOffSqRing);
  REKEY_ENSURE_MSG(im.ring_mem != MAP_FAILED, "io_uring ring mmap failed");
  im.sqes_bytes = p.sq_entries * sizeof(abi::Sqe);
  void* sqes_mem = mmap(nullptr, im.sqes_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, im.ring_fd, abi::kOffSqes);
  REKEY_ENSURE_MSG(sqes_mem != MAP_FAILED, "io_uring sqe mmap failed");
  im.sqes = static_cast<abi::Sqe*>(sqes_mem);

  auto* ring = static_cast<std::uint8_t*>(im.ring_mem);
  im.sq_head = reinterpret_cast<unsigned*>(ring + p.sq_off.head);
  im.sq_tail = reinterpret_cast<unsigned*>(ring + p.sq_off.tail);
  im.sq_array = reinterpret_cast<unsigned*>(ring + p.sq_off.array);
  im.sq_entry_count = p.sq_entries;
  im.sq_mask = *reinterpret_cast<unsigned*>(ring + p.sq_off.ring_mask);
  im.sq_local_tail = *im.sq_tail;
  im.cq_head = reinterpret_cast<unsigned*>(ring + p.cq_off.head);
  im.cq_tail = reinterpret_cast<unsigned*>(ring + p.cq_off.tail);
  im.cqes = reinterpret_cast<abi::Cqe*>(ring + p.cq_off.cqes);
  im.cq_mask = *reinterpret_cast<unsigned*>(ring + p.cq_off.ring_mask);

  // Register the send pool arena as fixed buffer 0 for SEND_ZC.
  iovec reg_iov{im.pool.arena(), im.pool.arena_bytes()};
  REKEY_ENSURE_MSG(abi::sys_register(im.ring_fd, abi::kRegisterBuffers,
                                     &reg_iov, 1) == 0,
                   "io_uring buffer registration failed");
  im.slot_addr.resize(im.pool.slot_count());
  im.slot_iov.resize(im.pool.slot_count());
  im.slot_msg.resize(im.pool.slot_count());

  im.burst_msgs.resize(p.sq_entries);
  im.burst_iovs.resize(p.sq_entries);

  // Provided-buffer ring + receive arena. Each slot holds the recvmsg
  // header, the reserved sockaddr, and channel byte + max payload.
  im.recv_entries = options.recv_buffers;
  im.recv_slot =
      (sizeof(abi::RecvmsgOut) + kNameReserve + 1 + max_payload + 7) &
      ~std::size_t{7};
  im.recv_arena.resize(im.recv_slot * im.recv_entries);
  im.buf_ring_bytes =
      (im.recv_entries * sizeof(abi::Buf) + 4095) & ~std::size_t{4095};
  im.buf_ring_mem = mmap(nullptr, im.buf_ring_bytes, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  REKEY_ENSURE_MSG(im.buf_ring_mem != MAP_FAILED, "buffer ring mmap failed");
  im.buf_ring = static_cast<abi::Buf*>(im.buf_ring_mem);
  im.buf_ring_tail = &im.buf_ring[0].resv;
  abi::BufReg reg{};
  reg.ring_addr = reinterpret_cast<abi::u64>(im.buf_ring_mem);
  reg.ring_entries = im.recv_entries;
  reg.bgid = 0;
  REKEY_ENSURE_MSG(abi::sys_register(im.ring_fd, abi::kRegisterPbufRing,
                                     &reg, 1) == 0,
                   "provided-buffer ring registration failed");
  for (unsigned bid = 0; bid < im.recv_entries; ++bid)
    im.buf_ring_add(static_cast<abi::u16>(bid));

  std::memset(&im.recv_msg, 0, sizeof im.recv_msg);
  im.recv_msg.msg_namelen = kNameReserve;  // reserve per-datagram name space
  im.arm_recv();
  im.enter(0, nullptr);
}

IoUringWire::~IoUringWire() {
  if (impl_ == nullptr) return;
  Impl& im = *impl_;
  if (im.ring_fd >= 0) close(im.ring_fd);
  if (im.ring_mem != MAP_FAILED) munmap(im.ring_mem, im.ring_bytes);
  if (im.sqes != nullptr) munmap(im.sqes, im.sqes_bytes);
  if (im.buf_ring_mem != MAP_FAILED) munmap(im.buf_ring_mem, im.buf_ring_bytes);
  if (im.fd >= 0) close(im.fd);
}

bool IoUringWire::send(Endpoint to, std::uint8_t channel,
                       std::span<const std::uint8_t> payload) {
  Impl& im = *impl_;
  if (payload.size() > im.max_payload) return false;
  if (!im.recv_armed) im.arm_recv();
  return im.pooled_send(to, channel, payload);
}

std::size_t IoUringWire::send_frames(Endpoint to, std::uint8_t channel,
                                     std::span<const Bytes* const> frames) {
  Impl& im = *impl_;
  if (!im.recv_armed) im.arm_recv();
  im.burst_sa = sockutil::to_sockaddr(to);
  im.burst_chan = channel;
  std::size_t sent_total = 0;
  std::size_t i = 0;
  while (i < frames.size()) {
    // Stage one linked chain of SENDMSG SQEs: the link flags force the
    // kernel to complete them in submission order, so the datagram
    // stream matches the epoll path byte for byte, while the whole
    // chain costs a single io_uring_enter.
    unsigned n = 0;
    abi::Sqe* last = nullptr;
    while (i < frames.size() && n < im.sq_entry_count) {
      const Bytes& body = *frames[i];
      if (body.size() > im.max_payload) {  // refused, not fragmented
        ++i;
        continue;
      }
      abi::Sqe* e = im.get_sqe();
      if (e == nullptr) break;
      auto& iov = im.burst_iovs[n];
      iov[0] = {&im.burst_chan, 1};
      iov[1] = {const_cast<std::uint8_t*>(body.data()), body.size()};
      msghdr& m = im.burst_msgs[n];
      std::memset(&m, 0, sizeof m);
      m.msg_name = &im.burst_sa;
      m.msg_namelen = sizeof im.burst_sa;
      m.msg_iov = iov.data();
      m.msg_iovlen = 2;
      e->opcode = abi::kOpSendmsg;
      e->fd = im.fd;
      e->addr = reinterpret_cast<abi::u64>(&m);
      e->len = 1;
      e->flags = abi::kSqeIoLink;
      e->user_data = make_ud(UdKind::kBurst, n);
      last = e;
      ++n;
      ++i;
    }
    if (n == 0) continue;       // only oversize frames remained
    last->flags &= ~abi::kSqeIoLink;  // terminate the chain
    // Submit the chain and wait for every completion: frame bodies live
    // in the caller's arena (zero copy), so they must stay referenced
    // only while this call is on the stack.
    im.burst_outstanding = n;
    im.burst_ok = 0;
    while (im.burst_outstanding > 0) {
      im.enter(1, nullptr);
      im.harvest();
    }
    sent_total += im.burst_ok;
  }
  return sent_total;
}

std::size_t IoUringWire::receive(std::vector<Datagram>& out, int timeout_ms) {
  Impl& im = *impl_;
  if (!im.recv_armed) im.arm_recv();
  im.harvest();
  if (!im.recv_armed) im.arm_recv();
  if (im.pending_rx.empty() && timeout_ms > 0) {
    const abi::KernelTimespec ts{timeout_ms / 1000,
                                 (timeout_ms % 1000) * 1'000'000LL};
    im.enter(1, &ts);
    im.harvest();
    if (!im.recv_armed) im.arm_recv();
  }
  // Keep the multishot armed (and notifs flowing) even when we return
  // with data: flush any staged SQEs without waiting.
  if (im.unsubmitted > 0) im.enter(0, nullptr);
  const std::size_t added = im.pending_rx.size();
  for (Datagram& d : im.pending_rx) out.push_back(std::move(d));
  im.pending_rx.clear();
  return added;
}

std::size_t IoUringWire::max_payload() const { return impl_->max_payload; }

Endpoint IoUringWire::local_endpoint() const { return impl_->local; }

bool IoUringWire::supported() {
  static const bool ok = probe_supported();
  return ok;
}

const FrameBufferPool& IoUringWire::pool() const { return impl_->pool; }

FrameBufferPool& IoUringWire::pool_for_test() { return impl_->pool; }

bool IoUringWire::using_send_zc() const { return impl_->send_zc_ok; }

#else  // !REKEY_HAVE_URING

struct IoUringWire::Impl {};

IoUringWire::IoUringWire(std::uint32_t, std::uint16_t, std::size_t, Options) {
  REKEY_ENSURE_MSG(false, "io_uring backend is Linux-only");
}

IoUringWire::~IoUringWire() = default;

bool IoUringWire::send(Endpoint, std::uint8_t,
                       std::span<const std::uint8_t>) {
  return false;
}

std::size_t IoUringWire::send_frames(Endpoint, std::uint8_t,
                                     std::span<const Bytes* const>) {
  return 0;
}

std::size_t IoUringWire::receive(std::vector<Datagram>&, int) { return 0; }

std::size_t IoUringWire::max_payload() const { return 0; }

Endpoint IoUringWire::local_endpoint() const { return {}; }

bool IoUringWire::supported() { return false; }

const FrameBufferPool& IoUringWire::pool() const {
  static FrameBufferPool p(1, 1);
  return p;
}

FrameBufferPool& IoUringWire::pool_for_test() {
  static FrameBufferPool p(1, 1);
  return p;
}

bool IoUringWire::using_send_zc() const { return false; }

#endif  // REKEY_HAVE_URING

}  // namespace rekey::wire
