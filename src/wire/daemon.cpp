#include "wire/daemon.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>

#include "common/ensure.h"
#include "common/obs.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "keytree/shard_pipeline.h"
#include "keytree/snapshot.h"
#include "packet/assign.h"

namespace rekey::wire {

namespace {

using Clock = std::chrono::steady_clock;

int ms_until(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

}  // namespace

KeyServerDaemon::KeyServerDaemon(WireTransport& wire,
                                 const DaemonConfig& config)
    : wire_(wire),
      config_(config),
      tree_(config.degree, config.key_seed),
      rho_(config.protocol, config.key_seed ^ 0x5EED) {
  REKEY_ENSURE_MSG(config.clients > 0, "daemon needs at least one client");
  REKEY_ENSURE_MSG(config.churn_pool >= config.churn_leaves,
                   "churn pool smaller than per-batch leaves");
  REKEY_ENSURE_MSG(config.max_multicast_rounds >= 1,
                   "the wire lockstep needs at least one multicast round");
  REKEY_ENSURE_MSG(config.protocol.packet_size <= wire.max_payload(),
                   "protocol packet size exceeds the wire MTU budget");
  REKEY_ENSURE_MSG(config.wire_version <= kMaxWireVersion,
                   "unknown wire protocol version");
  // The round counter travels as a u16 in RoundMark/Report frames; the
  // multicast loop ensures round <= max_rounds_cap, so the cap itself must
  // fit (the unicast wave loop has its own explicit guard).
  REKEY_ENSURE_MSG(config.protocol.max_rounds_cap <= 0xFFFF,
                   "max_rounds_cap exceeds the u16 round counter");
  REKEY_ENSURE_MSG(!config.standby || config.peer.has_value(),
                   "a standby needs the primary's endpoint");
  REKEY_ENSURE_MSG(config.round_quantum_ms > 0.0,
                   "the protocol clock needs a positive quantum");
  config.fault.validate();
  if (config.shards > 1 || config.worker_threads != 1) {
    plan_ = tree::ShardPlan::make(config.degree, std::max(1u, config.shards));
    if (config.worker_threads != 1)
      pool_ = std::make_unique<ThreadPool>(config.worker_threads);
  }
}

void KeyServerDaemon::send_control(Endpoint to, const Bytes& frame) {
  if (dead_) return;  // gone dark: a blacked-out replica emits nothing
  wire_.send(to, kChanControl, frame);
  ++stats_.control_frames;
}

bool KeyServerDaemon::step_clock() {
  fault_clock_ms_ += config_.round_quantum_ms;
  if (!dead_ && config_.fault.blackout_at(fault_clock_ms_)) {
    dead_ = true;
    stats_.died = true;
    stats_.died_at_ms = fault_clock_ms_;
    std::fprintf(stderr,
                 "rekeyd: blackout at protocol clock %.0f ms - going dark\n",
                 fault_clock_ms_);
  }
  return dead_;
}

void KeyServerDaemon::maybe_heartbeat() {
  if (!config_.peer || config_.standby || peer_dead_ || dead_) return;
  const int interval =
      config_.heartbeat_ms > 0 ? config_.heartbeat_ms : config_.retry_ms;
  const auto now = Clock::now();
  if (last_heartbeat_ != Clock::time_point{} &&
      now - last_heartbeat_ < std::chrono::milliseconds(interval))
    return;
  last_heartbeat_ = now;
  send_control(*config_.peer, serialize(HeartbeatFrame{epoch_, next_batch_}));
}

std::size_t KeyServerDaemon::pump(int timeout_ms) {
  maybe_heartbeat();
  std::vector<Datagram> in;
  wire_.receive(in, timeout_ms);
  std::size_t processed = 0;
  for (const Datagram& d : in) {
    if (d.channel != kChanControl) continue;  // clients send control only
    const bool from_peer = config_.peer.has_value() && d.from == *config_.peer;
    if (from_peer) last_peer_heard_ = Clock::now();
    const auto op = peek_op(d.payload);
    if (!op) continue;
    ++processed;
    switch (*op) {
      case ControlOp::Sub: {
        const auto f = parse_sub(d.payload);
        if (!f || f->count == 0 || f->first_uid >= config_.clients ||
            f->first_uid + f->count > config_.clients)
          break;
        if (f->max_version < session_version_) {
          // The session needs frames this client cannot parse: no ack, so
          // the client times out instead of mis-parsing wide slot ids.
          if (endpoints_.find(d.from) == endpoints_.end()) {
            ++stats_.endpoints_incompatible;
            std::fprintf(stderr,
                         "rekeyd: refusing subscription for uids [%u, %u): "
                         "client speaks wire v%u but the session needs v%u\n",
                         f->first_uid, f->first_uid + f->count,
                         static_cast<unsigned>(f->max_version),
                         static_cast<unsigned>(session_version_));
          }
          break;
        }
        EndpointState& es = endpoints_[d.from];
        es.ep = d.from;
        es.first_uid = f->first_uid;
        es.count = f->count;
        es.max_version = f->max_version;
        SubAckFrame ack;
        ack.group_size = config_.clients + config_.churn_pool;
        ack.expected_clients = config_.clients;
        ack.degree = static_cast<std::uint8_t>(config_.degree);
        ack.block_size =
            static_cast<std::uint8_t>(config_.protocol.block_size);
        ack.packet_size =
            static_cast<std::uint16_t>(config_.protocol.packet_size);
        ack.batches = config_.batches;
        ack.version = session_version_;
        send_control(d.from, serialize(ack));
        break;
      }
      case ControlOp::SlotMapAck: {
        const auto f = parse_slot_map_ack(d.payload);
        const auto it = endpoints_.find(d.from);
        if (f && it != endpoints_.end() && f->first_uid == it->second.first_uid)
          it->second.slot_map_acked = true;
        break;
      }
      case ControlOp::Report: {
        const auto f = parse_report(d.payload);
        const auto it = endpoints_.find(d.from);
        if (!f || it == endpoints_.end()) break;
        if (f->batch_seq != cur_batch_ || f->round != cur_round_ ||
            f->phase != cur_phase_)
          break;  // stale retransmit from an earlier lockstep step
        handle_report(it->second,
                      ReportView{f->part, f->nparts, f->unrecovered,
                                 &f->users},
                      cur_server_);
        break;
      }
      case ControlOp::ReportV2: {
        const auto f = parse_report_v2(d.payload);
        const auto it = endpoints_.find(d.from);
        if (!f || it == endpoints_.end()) break;
        if (f->batch_seq != cur_batch_ || f->round != cur_round_ ||
            f->phase != cur_phase_)
          break;
        handle_report(it->second,
                      ReportView{f->part, f->nparts, f->unrecovered,
                                 &f->users},
                      cur_server_);
        break;
      }
      case ControlOp::DoneAck: {
        const auto f = parse_done_ack(d.payload);
        const auto it = endpoints_.find(d.from);
        if (!f || it == endpoints_.end() || f->batch_seq != cur_batch_) break;
        if (!it->second.done_acked) {
          it->second.done_acked = true;
          stats_.recovered += f->recovered;
          stats_.via_usr += f->via_usr;
          stats_.gave_up += f->gave_up;
        }
        break;
      }
      case ControlOp::FinAck: {
        const auto it = endpoints_.find(d.from);
        if (it != endpoints_.end()) it->second.done_acked = true;
        break;
      }
      case ControlOp::SnapChunk: {
        if (!from_peer || !config_.standby) break;
        const auto f = parse_snap_chunk(d.payload);
        if (!f) break;
        if (pending_snap_ && f->snap_seq == pending_snap_->next_batch) {
          // The primary is retransmitting a snapshot we already restored:
          // our ack was lost.
          send_control(d.from, serialize(SnapAckFrame{f->snap_seq}));
          break;
        }
        const auto blob = snap_reasm_.add(*f);
        if (!blob) break;
        auto snap = restore_server(*blob);
        if (!snap || snap->next_batch != f->snap_seq ||
            snap->degree != config_.degree ||
            snap->clients != config_.clients ||
            snap->churn_pool != config_.churn_pool ||
            snap->batches != config_.batches) {
          // No ack: a primary paired with a mismatched (or corrupted-at-
          // source) standby gives up on it instead of failing over to it.
          std::fprintf(stderr,
                       "rekeyd: rejecting snapshot %u (corrupt or config "
                       "mismatch)\n",
                       f->snap_seq);
          break;
        }
        pending_snap_ = std::move(*snap);
        ++stats_.snapshots_restored;
        send_control(d.from, serialize(SnapAckFrame{f->snap_seq}));
        break;
      }
      case ControlOp::SnapAck: {
        if (!from_peer) break;
        const auto f = parse_snap_ack(d.payload);
        if (f)
          snap_acked_ = std::max<std::int64_t>(snap_acked_, f->snap_seq);
        break;
      }
      case ControlOp::Heartbeat:
        break;  // from_peer already refreshed last_peer_heard_
      case ControlOp::Resub: {
        const auto f = parse_resub(d.payload);
        const auto it = endpoints_.find(d.from);
        if (!f || it == endpoints_.end()) break;
        EndpointState& es = it->second;
        if (es.dead || es.resubbed) break;
        if (f->epoch != epoch_ || epoch_ == 0 ||
            f->first_uid != es.first_uid || f->count != es.count ||
            f->done_seq != next_batch_)
          break;  // stale, mis-addressed, or out-of-sync re-subscription
        // Spot-check the Theorem-4.2 id evolution: at a batch boundary a
        // client's id equals its slot in the (restored, pre-churn) tree.
        if (f->first_id !=
            static_cast<std::uint64_t>(tree_.slot_of(f->first_uid))) {
          std::fprintf(stderr,
                       "rekeyd: resub id mismatch for uid %u (client id "
                       "evolution diverged)\n",
                       f->first_uid);
          break;
        }
        es.resubbed = true;
        ++stats_.resubs;
        break;
      }
      case ControlOp::Fin: {
        if (from_peer) peer_fin_ = true;
        break;
      }
      default:
        break;  // server-to-client ops echoed back: ignore
    }
  }
  return processed;
}

void KeyServerDaemon::handle_report(EndpointState& es, const ReportView& f,
                                    transport::ServerTransport* server) {
  if (es.dead || es.report_done) return;
  // Every report part carries at least one user (a clean report is one
  // empty part), so a claimed part count beyond the endpoint's user count
  // is garbage — and must not size parts_seen.
  if (f.nparts == 0 || f.nparts > es.count + 1) return;
  if (es.parts_expected == 0) {
    es.parts_expected = f.nparts;
    es.parts_seen.assign(f.nparts, false);
    es.parts_have = 0;
    es.unrecovered_uids.clear();
  }
  if (f.nparts != es.parts_expected || f.part >= es.parts_expected) return;
  if (es.parts_seen[f.part]) return;  // duplicate part
  es.parts_seen[f.part] = true;
  ++es.parts_have;
  es.reported_unrecovered = f.unrecovered;
  ++stats_.reports;
  for (const ReportUser& u : *f.users) {
    if (u.uid < es.first_uid || u.uid >= es.first_uid + es.count) continue;
    es.unrecovered_uids.push_back(u.uid);
    if (server != nullptr && !u.entries.empty()) {
      server->accept_nack(u.uid, u.entries);
      ++stats_.nack_users;
    }
  }
  if (es.parts_have == es.parts_expected) {
    es.report_done = true;
    es.missed_deadlines = 0;
  }
}

void KeyServerDaemon::wait_for_subscriptions() {
  std::vector<bool> covered(config_.clients, false);
  std::size_t have = 0;
  while (!stopped() && have < config_.clients) {
    pump(config_.retry_ms);
    have = 0;
    std::fill(covered.begin(), covered.end(), false);
    for (const auto& [ep, es] : endpoints_)
      for (std::uint32_t u = es.first_uid; u < es.first_uid + es.count; ++u)
        covered[u] = true;
    for (const bool c : covered) have += c ? 1 : 0;
  }
  stats_.endpoints = static_cast<std::uint32_t>(endpoints_.size());
}

void KeyServerDaemon::send_slot_maps() {
  // Serialize each endpoint's slot map once; retransmit until acked.
  std::map<Endpoint, std::vector<Bytes>> frames;
  for (auto& [ep, es] : endpoints_) {
    auto& out = frames[ep];
    if (wide()) {
      std::vector<std::uint32_t> slots;
      slots.reserve(es.count);
      for (std::uint32_t u = es.first_uid; u < es.first_uid + es.count; ++u)
        slots.push_back(static_cast<std::uint32_t>(tree_.slot_of(u)));
      for (const SlotMapV2Frame& f :
           chunk_slot_map_v2(es.first_uid, slots, wire_.max_payload()))
        if (auto b = serialize(f)) out.push_back(std::move(*b));
    } else {
      // Version selection guarantees narrow slots fit u16 (with split
      // headroom), so the truncating cast below cannot lose bits.
      std::vector<std::uint16_t> slots;
      slots.reserve(es.count);
      for (std::uint32_t u = es.first_uid; u < es.first_uid + es.count; ++u)
        slots.push_back(static_cast<std::uint16_t>(tree_.slot_of(u)));
      for (const SlotMapFrame& f :
           chunk_slot_map(es.first_uid, slots, wire_.max_payload()))
        if (auto b = serialize(f)) out.push_back(std::move(*b));
    }
  }
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.round_wait_ms);
  bool first = true;
  while (!stopped()) {
    bool all = true;
    for (const auto& [ep, es] : endpoints_) all = all && es.slot_map_acked;
    if (all) return;
    REKEY_ENSURE_MSG(Clock::now() < deadline,
                     "slot map delivery timed out before the first batch");
    for (auto& [ep, es] : endpoints_) {
      if (es.slot_map_acked) continue;
      for (const Bytes& f : frames[ep]) send_control(ep, f);
      if (!first) ++stats_.control_retransmits;
    }
    first = false;
    const auto retry =
        Clock::now() + std::chrono::milliseconds(config_.retry_ms);
    while (!stopped() && Clock::now() < retry) pump(ms_until(retry));
  }
}

void KeyServerDaemon::collect_reports(std::uint32_t batch_seq,
                                      std::uint8_t msg_id, std::uint16_t round,
                                      std::uint8_t phase,
                                      transport::ServerTransport& server) {
  cur_batch_ = batch_seq;
  cur_round_ = round;
  cur_phase_ = phase;
  cur_server_ = &server;
  for (auto& [ep, es] : endpoints_) {
    es.parts_expected = 0;
    es.parts_have = 0;
    es.report_done = false;
  }
  const Bytes mark = serialize(RoundMarkFrame{batch_seq, msg_id, round, phase});
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.round_wait_ms);
  bool first = true;
  for (;;) {
    bool all = true;
    for (const auto& [ep, es] : endpoints_)
      all = all && (es.dead || es.report_done);
    if (all || stopped()) break;
    if (Clock::now() >= deadline) {
      // Proceed with partial feedback; an endpoint that keeps missing
      // deadlines is dead weight and gets dropped from the lockstep.
      for (auto& [ep, es] : endpoints_) {
        if (es.dead || es.report_done) continue;
        if (++es.missed_deadlines >= config_.endpoint_dead_after) {
          es.dead = true;
          ++stats_.endpoints_dropped;
        }
      }
      break;
    }
    for (auto& [ep, es] : endpoints_) {
      if (es.dead || es.report_done) continue;
      send_control(ep, mark);
      if (!first) ++stats_.control_retransmits;
    }
    first = false;
    const auto retry = std::min(
        deadline, Clock::now() + std::chrono::milliseconds(config_.retry_ms));
    while (Clock::now() < retry && !stopped()) {
      pump(ms_until(retry));
      bool done = true;
      for (const auto& [ep, es] : endpoints_)
        done = done && (es.dead || es.report_done);
      if (done) break;
    }
  }
  cur_server_ = nullptr;
}

void KeyServerDaemon::collect_done_acks(std::uint32_t batch_seq,
                                        bool last_batch) {
  cur_batch_ = batch_seq;
  for (auto& [ep, es] : endpoints_) es.done_acked = false;
  const Bytes done = serialize(
      BatchDoneFrame{batch_seq, static_cast<std::uint8_t>(last_batch)});
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.round_wait_ms);
  bool first = true;
  for (;;) {
    bool all = true;
    for (const auto& [ep, es] : endpoints_) all = all && (es.dead || es.done_acked);
    if (all || stopped() || Clock::now() >= deadline) break;
    for (auto& [ep, es] : endpoints_) {
      if (es.dead || es.done_acked) continue;
      send_control(ep, done);
      if (!first) ++stats_.control_retransmits;
    }
    first = false;
    const auto retry = std::min(
        deadline, Clock::now() + std::chrono::milliseconds(config_.retry_ms));
    while (Clock::now() < retry && !stopped()) pump(ms_until(retry));
  }
  // DoneAck collection is a lockstep step like any round: an endpoint
  // that blows its deadline takes a missed-deadline strike (and is
  // dropped once it accumulates endpoint_dead_after of them, so the
  // daemon stops bursting data at a corpse for the remaining batches).
  for (auto& [ep, es] : endpoints_) {
    if (es.dead || es.done_acked) continue;
    if (++es.missed_deadlines >= config_.endpoint_dead_after) {
      es.dead = true;
      ++stats_.endpoints_dropped;
    }
  }
  // The batch is closed at the deadline: any endpoint that did not ack —
  // already-dead or merely silent — finalized nothing, and its counts
  // travel only in DoneAcks. Ledger its clients in gave_up_dead so
  // recovered + gave_up + gave_up_dead accounts for every client-batch
  // the daemon ran to completion.
  for (const auto& [ep, es] : endpoints_)
    if (!es.done_acked) stats_.gave_up_dead += es.count;
}

bool KeyServerDaemon::run_batch(std::uint32_t batch_seq) {
  const std::uint8_t msg_id = static_cast<std::uint8_t>(batch_seq % 64);

  // Churn: rotate the silent pool — the oldest pool members leave, fresh
  // member ids join. Fleet members are never touched.
  std::vector<tree::MemberId> joins;
  for (std::uint32_t j = 0; j < config_.churn_joins; ++j)
    joins.push_back(next_member_++);
  const std::size_t leave_n =
      std::min<std::size_t>(config_.churn_leaves, churn_members_.size());
  std::vector<tree::MemberId> leaves(churn_members_.begin(),
                                     churn_members_.begin() +
                                         static_cast<std::ptrdiff_t>(leave_n));
  churn_members_.erase(churn_members_.begin(),
                       churn_members_.begin() +
                           static_cast<std::ptrdiff_t>(leave_n));
  churn_members_.insert(churn_members_.end(), joins.begin(), joins.end());

  tree::Marker marker(tree_);
  TaskRunner runner(pool_.get());
  const tree::BatchUpdate update =
      plan_.has_value()
          ? marker.run_sharded(joins, leaves, *plan_, runner)
          : marker.run(joins, leaves);
  tree::RekeyPayload payload;
  if (plan_.has_value())
    tree::generate_rekey_payload_sharded(tree_, update, msg_id, payload,
                                         *plan_, runner);
  else
    tree::generate_rekey_payload_into(tree_, update, msg_id, payload);
  packet::Assignment assignment =
      plan_.has_value()
          ? packet::assign_keys(payload, config_.protocol.packet_size,
                                *plan_, runner, wide())
          : packet::assign_keys(payload, config_.protocol.packet_size,
                                wide());

  transport::ServerTransport server(config_.protocol, payload,
                                    std::move(assignment),
                                    rho_.proactive_parities(), msg_id);
  stats_.enc_packets += server.enc_packets();
  stats_.slots += server.num_slots();

  const Bytes start = serialize(BatchStartFrame{batch_seq, msg_id, epoch_});
  for (const auto& [ep, es] : endpoints_)
    if (!es.dead) send_control(ep, start);

  // Parity wires of the round in flight. A deque keeps element addresses
  // stable while frames_ holds pointers into it (the zero-copy batch that
  // sendmmsg walks).
  std::deque<Bytes> parity_store;
  std::vector<const Bytes*> frames;

  bool to_unicast = false;
  int round = 0;
  for (;;) {
    ++round;
    REKEY_ENSURE_MSG(round <= config_.protocol.max_rounds_cap,
                     "wire lockstep did not converge within the round cap");
    if (step_clock()) return false;  // death point: before the round burst
    parity_store.clear();
    frames.clear();
    server.for_each_round_wire(
        round, [&](const Bytes& w) { frames.push_back(&w); },
        [&](Bytes&& w) {
          parity_store.push_back(std::move(w));
          frames.push_back(&parity_store.back());
        });
    if (round == 1) {
      stats_.proactive_parities += parity_store.size();
    } else {
      stats_.reactive_parities += parity_store.size();
    }
    std::size_t frame_bytes = 0;
    for (const Bytes* f : frames) frame_bytes += f->size();
    for (const auto& [ep, es] : endpoints_) {
      if (es.dead) continue;
      const std::size_t sent = wire_.send_frames(ep, kChanData, frames);
      stats_.data_frames += sent;
      stats_.data_bytes +=
          sent == frames.size()
              ? frame_bytes
              : sent * (frames.empty() ? 0 : frames[0]->size());
    }
    ++stats_.rounds;

    collect_reports(batch_seq, msg_id, static_cast<std::uint16_t>(round), 0,
                    server);
    if (stopped()) return false;
    auto feedback = server.take_feedback();
    if (round == 1 && config_.protocol.adaptive_rho)
      rho_.on_round1_feedback(std::move(feedback));

    std::uint64_t unrecovered = 0;
    for (const auto& [ep, es] : endpoints_)
      if (!es.dead) unrecovered += es.reported_unrecovered;
    if (obs::trace_enabled())
      obs::Trace::emit("wire_round",
                       {{"batch", static_cast<std::int64_t>(batch_seq)},
                        {"round", round},
                        {"frames", static_cast<std::int64_t>(frames.size())},
                        {"unrecovered",
                         static_cast<std::int64_t>(unrecovered)}});
    if (unrecovered == 0) break;
    if (round >= config_.max_multicast_rounds) {
      to_unicast = true;
      break;
    }
  }

  if (to_unicast) {
    // Unicast phase: fragment-and-duplicate USR delivery to the uids the
    // endpoints reported unrecovered, wave by wave until silence.
    std::set<std::uint32_t> stragglers;
    for (const auto& [ep, es] : endpoints_) {
      if (es.dead) continue;
      stragglers.insert(es.unrecovered_uids.begin(),
                        es.unrecovered_uids.end());
    }
    std::map<std::uint32_t, std::vector<Bytes>> frag_cache;
    int wave = 0;
    while (!stragglers.empty() && !stopped()) {
      if (config_.unicast_max_waves > 0 &&
          wave >= config_.unicast_max_waves)
        break;  // abandoned stragglers surface in the DoneAck gave_up count
      // The wave counter travels as the u16 round field of RoundMark; an
      // unbounded (unicast_max_waves == 0) run must stop before it wraps.
      if (wave >= 0xFFFF) break;
      ++wave;
      if (step_clock()) return false;  // death point: before the wave
      const int dups = config_.protocol.usr_initial_duplicates + wave - 1;
      for (const std::uint32_t uid : stragglers) {
        auto it = frag_cache.find(uid);
        if (it == frag_cache.end()) {
          const tree::NodeId slot = tree_.slot_of(uid);
          const Bytes usr_wire =
              server.usr_for(static_cast<std::uint32_t>(slot))
                  .serialize(wide());
          // A fragmenter overflow (empty result) leaves the uid without
          // USR frames; it surfaces in gave_up instead of aborting.
          std::vector<Bytes> frames_for_uid;
          if (wide()) {
            for (const UsrFragV2Frame& f : fragment_usr_v2(
                     batch_seq, uid, usr_wire, wire_.max_payload()))
              if (auto b = serialize(f))
                frames_for_uid.push_back(std::move(*b));
          } else {
            for (const UsrFragFrame& f : fragment_usr(
                     batch_seq, uid, usr_wire, wire_.max_payload()))
              if (auto b = serialize(f))
                frames_for_uid.push_back(std::move(*b));
          }
          it = frag_cache.emplace(uid, std::move(frames_for_uid)).first;
        }
        // Locate the endpoint owning this uid.
        const EndpointState* owner = nullptr;
        for (const auto& [ep, es] : endpoints_) {
          if (es.dead) continue;
          if (uid >= es.first_uid && uid < es.first_uid + es.count) {
            owner = &es;
            break;
          }
        }
        if (owner == nullptr) continue;
        for (int d = 0; d < dups; ++d)
          for (const Bytes& f : it->second) {
            send_control(owner->ep, f);
            ++stats_.usr_frags;
          }
      }
      ++stats_.unicast_waves;
      collect_reports(batch_seq, msg_id, static_cast<std::uint16_t>(wave), 1,
                      server);
      if (stopped()) return false;
      server.take_feedback();  // unicast-phase reports carry no entries
      stragglers.clear();
      for (const auto& [ep, es] : endpoints_) {
        if (es.dead) continue;
        stragglers.insert(es.unrecovered_uids.begin(),
                          es.unrecovered_uids.end());
      }
    }
  }

  // Death point: before BatchDone. A daemon that survives this step
  // finishes the batch — so at any failover no client has finalized the
  // interrupted batch, and the standby's from-the-top replay re-syncs
  // everyone (the invariant the Resub done_seq check enforces).
  if (step_clock()) return false;
  collect_done_acks(batch_seq, batch_seq + 1 == config_.batches);
  ++stats_.batches_run;
  return !stopped();
}

DaemonStats KeyServerDaemon::run() {
  if (config_.standby) return run_standby();

  // Populate before subscriptions: version selection inspects the initial
  // slot ids, and the SubAck already carries the negotiated version.
  tree_.populate(config_.clients + config_.churn_pool, 0);
  next_member_ = config_.clients + config_.churn_pool;
  churn_members_.clear();
  for (std::uint32_t m = 0; m < config_.churn_pool; ++m)
    churn_members_.push_back(config_.clients + m);

  // Wire version selection. The group's slot ids deepen by at most one
  // tree level per join, so requiring one level of headroom over the
  // initial maximum keeps a narrow session narrow for its whole life.
  tree::NodeId max_slot = 0;
  for (std::uint32_t u = 0; u < config_.clients + config_.churn_pool; ++u)
    max_slot = std::max(max_slot, tree_.slot_of(u));
  const bool needs_wide =
      max_slot * config_.degree + config_.degree > 0xFFFF;
  if (config_.wire_version == 0) {
    session_version_ = needs_wide ? kWireV2 : kWireV1;
  } else {
    REKEY_ENSURE_MSG(!(config_.wire_version == kWireV1 && needs_wide),
                     "group slot ids exceed the forced v1 u16 wire format");
    session_version_ = static_cast<std::uint8_t>(config_.wire_version);
  }
  config_.protocol.wide_slots = wide();
  stats_.wire_version = session_version_;

  wait_for_subscriptions();
  if (stopped()) return stats_;

  send_slot_maps();

  bool aborted = false;
  for (std::uint32_t b = 0; b < config_.batches; ++b) {
    if (stopped()) {
      aborted = true;
      break;
    }
    next_batch_ = b;
    // Ship before the boundary death point: wherever in batch b the
    // blackout lands, the standby already holds snapshot b, and no
    // client can have finalized batch b yet (its BatchStart hasn't been
    // sent) — the done_seq invariant the Resub barrier checks.
    if (config_.peer.has_value() && !peer_dead_) ship_snapshot(b);
    if (step_clock()) {  // death point: batch boundary
      aborted = true;
      break;
    }
    if (!run_batch(b)) {
      aborted = true;
      break;
    }
  }

  stats_.rho_final = rho_.rho();
  stats_.epoch = epoch_;
  stats_.completed = !aborted;
  if (!dead_) fin_handshake();
  return stats_;
}

void KeyServerDaemon::fin_handshake() {
  for (auto& [ep, es] : endpoints_) es.done_acked = false;
  const Bytes fin = serialize(FinFrame{});
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.round_wait_ms);
  while (!stopped() && Clock::now() < deadline) {
    bool all = true;
    for (const auto& [ep, es] : endpoints_) all = all && (es.dead || es.done_acked);
    if (all) break;
    for (const auto& [ep, es] : endpoints_)
      if (!es.dead && !es.done_acked) send_control(ep, fin);
    if (config_.peer.has_value() && !config_.standby && !peer_dead_)
      send_control(*config_.peer, fin);
    const auto retry = std::min(
        deadline, Clock::now() + std::chrono::milliseconds(config_.retry_ms));
    while (Clock::now() < retry && !stopped()) pump(ms_until(retry));
  }
  // Retire a healthy standby even when every client acked on the first
  // try (the loop above may never have reached a Fin broadcast).
  if (config_.peer.has_value() && !config_.standby && !peer_dead_)
    send_control(*config_.peer, fin);
}

void KeyServerDaemon::ship_snapshot(std::uint32_t next_batch) {
  ServerSnapshot s;
  s.epoch = epoch_;
  s.next_batch = next_batch;
  s.session_version = session_version_;
  s.degree = config_.degree;
  s.clients = config_.clients;
  s.churn_pool = config_.churn_pool;
  s.batches = config_.batches;
  s.next_member = next_member_;
  s.churn_members = churn_members_;
  for (const auto& [ep, es] : endpoints_)
    s.endpoints.push_back(SnapshotEndpoint{ep.id, es.first_uid, es.count,
                                           es.max_version, es.dead});
  s.rho = rho_.state();
  // Always the sharded (v2) tree format: it carries the keygen counter,
  // and a serial session is just the one-shard plan.
  s.tree_blob =
      plan_.has_value()
          ? tree::snapshot_sharded_tree(tree_, *plan_)
          : tree::snapshot_sharded_tree(
                tree_, tree::ShardPlan::make(config_.degree, 1));
  const Bytes blob = snapshot_server(s);

  std::vector<Bytes> frames;
  for (const SnapChunkFrame& c :
       chunk_snapshot(next_batch, blob, wire_.max_payload()))
    if (auto b = serialize(c)) frames.push_back(std::move(*b));

  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.round_wait_ms);
  while (!stopped() &&
         snap_acked_ < static_cast<std::int64_t>(next_batch)) {
    if (Clock::now() >= deadline) {
      // A standby that cannot ack is written off: later batches run
      // unreplicated rather than stalling the whole group every batch.
      peer_dead_ = true;
      std::fprintf(stderr,
                   "rekeyd: standby did not ack snapshot %u - replication "
                   "disabled\n",
                   next_batch);
      return;
    }
    for (const Bytes& f : frames) send_control(*config_.peer, f);
    stats_.snapshot_chunks += frames.size();
    const auto retry = std::min(
        deadline, Clock::now() + std::chrono::milliseconds(config_.retry_ms));
    while (Clock::now() < retry && !stopped() &&
           snap_acked_ < static_cast<std::int64_t>(next_batch))
      pump(ms_until(retry));
  }
  if (snap_acked_ >= static_cast<std::int64_t>(next_batch))
    ++stats_.snapshots_sent;
}

DaemonStats KeyServerDaemon::run_standby() {
  last_peer_heard_ = Clock::now();
  for (;;) {
    if (stopped()) return stats_;
    pump(config_.retry_ms);
    if (peer_fin_) {
      stats_.completed = true;  // clean completion: never needed
      return stats_;
    }
    const auto silent_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - last_peer_heard_)
            .count();
    if (pending_snap_ && silent_ms > config_.elect_timeout_ms) break;
    if (!pending_snap_ &&
        silent_ms > std::max(config_.round_wait_ms, config_.elect_timeout_ms))
      return stats_;  // primary died before ever replicating: nothing to serve
  }
  promote();
  resub_barrier();
  if (stopped()) return stats_;

  bool aborted = false;
  for (std::uint32_t b = next_batch_; b < config_.batches; ++b) {
    if (stopped()) {
      aborted = true;
      break;
    }
    next_batch_ = b;
    if (step_clock()) {  // a standby can have its own blackout schedule
      aborted = true;
      break;
    }
    if (!run_batch(b)) {
      aborted = true;
      break;
    }
  }

  stats_.rho_final = rho_.rho();
  stats_.epoch = epoch_;
  stats_.completed = !aborted;
  if (!dead_) fin_handshake();
  return stats_;
}

void KeyServerDaemon::promote() {
  const ServerSnapshot& s = *pending_snap_;
  epoch_ = s.epoch + 1;
  next_batch_ = s.next_batch;
  session_version_ = s.session_version;
  config_.protocol.wide_slots = wide();
  // The outer seal already covered the embedded tree blob byte for byte,
  // so a restore failure here is a logic bug, not wire damage.
  auto restored = tree::restore_sharded_tree(s.tree_blob, config_.key_seed);
  REKEY_ENSURE_MSG(restored.has_value(),
                   "acked server snapshot failed tree restore");
  tree_ = std::move(*restored);
  REKEY_ENSURE_MSG(rho_.restore(s.rho),
                   "acked server snapshot failed rho restore");
  next_member_ = s.next_member;
  churn_members_ = s.churn_members;
  endpoints_.clear();
  for (const SnapshotEndpoint& e : s.endpoints) {
    EndpointState es;
    es.ep = Endpoint{e.ep_id};
    es.first_uid = e.first_uid;
    es.count = e.count;
    es.max_version = e.max_version;
    es.slot_map_acked = true;
    es.dead = e.dead;
    endpoints_.emplace(es.ep, es);
  }
  stats_.endpoints = static_cast<std::uint32_t>(endpoints_.size());
  stats_.wire_version = session_version_;
  stats_.promoted = true;
  peer_dead_ = true;  // the old primary is fenced out; never replicate back
  std::fprintf(stderr,
               "rekeyd: standby promoted at epoch %u, replaying batch %u\n",
               epoch_, next_batch_);
}

void KeyServerDaemon::resub_barrier() {
  for (auto& [ep, es] : endpoints_) es.resubbed = false;
  const std::uint8_t msg_id = static_cast<std::uint8_t>(next_batch_ % 64);
  const Bytes start = serialize(BatchStartFrame{next_batch_, msg_id, epoch_});
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(config_.round_wait_ms);
  for (;;) {
    bool all = true;
    for (const auto& [ep, es] : endpoints_) all = all && (es.dead || es.resubbed);
    if (all || stopped()) return;
    if (Clock::now() >= deadline) {
      // A client that cannot re-sync is dead weight, exactly like one
      // that stops reporting: drop it so the replay can proceed.
      for (auto& [ep, es] : endpoints_) {
        if (es.dead || es.resubbed) continue;
        es.dead = true;
        ++stats_.endpoints_dropped;
      }
      return;
    }
    for (const auto& [ep, es] : endpoints_)
      if (!es.dead && !es.resubbed) send_control(ep, start);
    const auto retry = std::min(
        deadline, Clock::now() + std::chrono::milliseconds(config_.retry_ms));
    while (Clock::now() < retry && !stopped()) {
      pump(ms_until(retry));
      bool done = true;
      for (const auto& [ep, es] : endpoints_) done = done && (es.dead || es.resubbed);
      if (done) break;
    }
  }
}

}  // namespace rekey::wire
