#include "wire/server_snapshot.h"

#include "common/ensure.h"
#include "keytree/snapshot.h"

namespace rekey::wire {

namespace {

constexpr std::uint32_t kServerMagic = 0x524B5353;  // "RKSS"
// v3: the full-server format (v1/v2 are the tree-only formats of
// keytree/snapshot.cpp; the version counter is shared so a blob's
// (magic, version) pair is unambiguous across the family).
constexpr std::uint8_t kServerVersion = 3;

}  // namespace

Bytes snapshot_server(const ServerSnapshot& snap) {
  ByteWriter w;
  w.put_u32(kServerMagic);
  w.put_u8(kServerVersion);
  w.put_u32(snap.epoch);
  w.put_u32(snap.next_batch);
  w.put_u8(snap.session_version);
  w.put_u8(static_cast<std::uint8_t>(snap.degree));
  w.put_u32(snap.clients);
  w.put_u32(snap.churn_pool);
  w.put_u32(snap.batches);
  w.put_u32(snap.next_member);
  w.put_u32(static_cast<std::uint32_t>(snap.churn_members.size()));
  for (const tree::MemberId m : snap.churn_members) w.put_u32(m);
  w.put_u32(static_cast<std::uint32_t>(snap.endpoints.size()));
  for (const SnapshotEndpoint& e : snap.endpoints) {
    w.put_u64(e.ep_id);
    w.put_u32(e.first_uid);
    w.put_u32(e.count);
    w.put_u8(e.max_version);
    w.put_u8(e.dead ? 1 : 0);
  }
  w.put_u32(static_cast<std::uint32_t>(snap.rho.proactive_parities));
  w.put_u32(static_cast<std::uint32_t>(snap.rho.num_nack));
  for (const std::uint64_t s : snap.rho.rng) w.put_u64(s);
  w.put_u64(snap.tree_blob.size());
  w.put_bytes(snap.tree_blob);
  Bytes blob = std::move(w).take();
  tree::snapshot_seal(blob);
  return blob;
}

std::optional<ServerSnapshot> restore_server(const Bytes& blob) {
  const auto body = tree::snapshot_open(blob);
  if (!body) return std::nullopt;
  try {
    ByteReader r(*body);
    if (r.get_u32() != kServerMagic) return std::nullopt;
    if (r.get_u8() != kServerVersion) return std::nullopt;
    ServerSnapshot s;
    s.epoch = r.get_u32();
    s.next_batch = r.get_u32();
    s.session_version = r.get_u8();
    s.degree = r.get_u8();
    s.clients = r.get_u32();
    s.churn_pool = r.get_u32();
    s.batches = r.get_u32();
    s.next_member = r.get_u32();
    if (s.session_version < kWireV1 || s.session_version > kMaxWireVersion)
      return std::nullopt;
    if (s.degree < 2 || s.clients == 0) return std::nullopt;
    if (s.next_batch > s.batches) return std::nullopt;
    // A session's members are the fleet, the initial pool, and every
    // join since; next_member below that floor is structurally corrupt.
    if (s.next_member < s.clients + s.churn_pool) return std::nullopt;

    const std::uint32_t churn_n = r.get_u32();
    if (churn_n > s.churn_pool) return std::nullopt;
    s.churn_members.reserve(churn_n);
    for (std::uint32_t i = 0; i < churn_n; ++i) {
      const tree::MemberId m = r.get_u32();
      if (m < s.clients || m >= s.next_member) return std::nullopt;
      s.churn_members.push_back(m);
    }

    const std::uint32_t ep_n = r.get_u32();
    if (ep_n > s.clients) return std::nullopt;  // >=1 uid per endpoint
    s.endpoints.reserve(ep_n);
    for (std::uint32_t i = 0; i < ep_n; ++i) {
      SnapshotEndpoint e;
      e.ep_id = r.get_u64();
      e.first_uid = r.get_u32();
      e.count = r.get_u32();
      e.max_version = r.get_u8();
      e.dead = r.get_u8() != 0;
      if (e.count == 0 || e.first_uid >= s.clients ||
          e.count > s.clients - e.first_uid)
        return std::nullopt;
      if (e.max_version < kWireV1 || e.max_version > kMaxWireVersion)
        return std::nullopt;
      for (const SnapshotEndpoint& prev : s.endpoints)
        if (prev.ep_id == e.ep_id) return std::nullopt;
      s.endpoints.push_back(e);
    }

    s.rho.proactive_parities = static_cast<int>(r.get_u32());
    s.rho.num_nack = static_cast<int>(r.get_u32());
    if (s.rho.proactive_parities < 0 || s.rho.num_nack < 0)
      return std::nullopt;
    for (std::uint64_t& st : s.rho.rng) st = r.get_u64();

    const std::uint64_t tree_len = r.get_u64();
    if (tree_len != r.remaining()) return std::nullopt;
    s.tree_blob = r.get_bytes(static_cast<std::size_t>(tree_len));
    if (r.remaining() != 0) return std::nullopt;
    return s;
  } catch (const EnsureError&) {
    // Truncated fields: a corrupt snapshot.
    return std::nullopt;
  }
}

}  // namespace rekey::wire
