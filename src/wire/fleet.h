// ClientFleet — a multiplexer of lightweight virtual rekey clients.
//
// One fleet instance owns one WireTransport endpoint and speaks for a
// contiguous range of uids. Every virtual client is a real
// transport::UserTransport — the same parsing, shard dedup, block
// estimation, FEC decoding, and NACK construction the simulator's users
// run — but the fleet shares a single receive loop, a single per-batch
// packet pool, and a single control-plane voice (aggregated Reports)
// across all of them, so a process can multiplex 10^5 clients per a few
// threads (tools/rekey_load spawns one fleet per thread).
//
// Loss/jitter shaping is client-side and deterministic: every potential
// delivery draws from a stateless hash of (seed, uid, batch, counter),
// so two runs with the same seed shape identically regardless of socket
// timing. Downstream draws drop data frames and USR fragments per
// client; upstream draws suppress a client's NACK entries from the
// round report (its unrecovered count still travels — the unicast
// wake-up path is how the real protocol survives lost NACKs, and the
// lockstep report's count plays that role here).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "transport/user.h"
#include "wire/control.h"
#include "wire/wire.h"

namespace rekey::wire {

// SplitMix64 finalizer — the stateless draw behind the shaper.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

struct ShapingConfig {
  double down_loss = 0.0;  // P(drop) per client per data frame / USR frag
  double up_loss = 0.0;    // P(suppress) per client NACK entry per round
  std::uint64_t seed = 1;

  bool active() const { return down_loss > 0.0 || up_loss > 0.0; }
  // Deterministic Bernoulli draw for stream `tag` at position `n`.
  bool drop(std::uint64_t uid, std::uint64_t tag, std::uint64_t n,
            double p) const {
    if (p <= 0.0) return false;
    const std::uint64_t h = mix64(seed ^ mix64(uid ^ mix64(tag ^ mix64(n))));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
  }
};

struct FleetConfig {
  std::uint32_t first_uid = 0;
  std::uint32_t count = 0;
  ShapingConfig shaping;
  int retry_ms = 50;
  // Abort if the server goes silent this long (keeps tests from hanging).
  int idle_timeout_ms = 30000;
  // Highest wire protocol version this fleet advertises in Sub; the
  // server picks the session version (kWireV1 emulates a legacy client).
  std::uint8_t max_version = kMaxWireVersion;

  // Failover set: endpoints whose higher-epoch BatchStart the fleet
  // adopts as its new server. Epoch fencing both ways: a BatchStart at a
  // lower epoch than the one adopted is ignored even from the current
  // server, so a stale primary can never reclaim the fleet.
  std::vector<Endpoint> failover;

  // Deterministic death hooks (dead-endpoint accounting tests): exit
  // run() silently before opening batch `die_at_batch`, or on the
  // phase-1 (unicast) RoundMark of wave `die_at_wave`. -1 = never.
  std::int64_t die_at_batch = -1;
  std::int64_t die_at_wave = -1;
};

struct FleetStats {
  std::uint32_t clients = 0;
  std::uint32_t batches = 0;
  std::uint64_t recovered = 0;    // client-batch recoveries
  std::uint64_t via_usr = 0;      // of which through the unicast phase
  std::uint64_t unrecovered = 0;  // client-batches abandoned by the server
  std::uint64_t data_frames = 0;  // data-plane frames received
  std::uint64_t shaped_off = 0;   // deliveries the shaper suppressed
  std::uint64_t nacks_suppressed = 0;
  std::uint64_t reports_sent = 0;  // report parts (incl. retransmits)
  std::uint64_t control_frames = 0;
  std::uint32_t wire_version = 1;  // session version from SubAck
  bool finished = false;  // saw Fin (false = idle-timeout abort)
  std::uint32_t epoch = 0;       // highest fencing epoch adopted
  std::uint32_t failovers = 0;   // server switches to a failover endpoint
  std::uint64_t resubs_sent = 0;
  // Per recovered client-batch: ms from batch open to group-key recovery.
  std::vector<double> recovery_ms;
};

class ClientFleet {
 public:
  // `server` is the daemon's endpoint. The fleet subscribes
  // [first_uid, first_uid + count) on construction parameters from
  // FleetConfig; run() blocks until Fin (or idle timeout).
  ClientFleet(WireTransport& wire, Endpoint server, const FleetConfig& config);

  FleetStats run();
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Batch {
    std::uint32_t seq = 0;
    std::uint8_t msg_id = 0;
    transport::PacketPool pool;
    std::vector<transport::UserTransport> users;  // index: uid - first_uid
    std::vector<bool> via_usr;
    std::vector<double> recover_ms;  // -1 until recovered
    UsrReassembly reasm;
    std::vector<std::uint32_t> usr_frag_arrivals;  // per client draw counter
    Clock::time_point t0;
    std::uint64_t frame_counter = 0;
    int last_round = 0;  // last multicast round processed
    // Each unrecovered client's latest round-end NACK entries (the same
    // resend-the-cached-entries pattern RekeySession uses: end_of_round
    // runs at most once per round).
    std::vector<std::vector<packet::NackEntry>> last_nacks;
    // Cached serialized report parts of the last (round, phase) for
    // duplicate RoundMark retransmits.
    std::uint16_t cached_round = 0;
    std::uint8_t cached_phase = 0;
    std::vector<Bytes> cached_report;
  };

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }
  void send_control(const Bytes& frame);

  void subscribe();
  void open_batch(std::uint32_t seq, std::uint8_t msg_id);
  void deliver_data(const Bytes& frame);
  void note_recovered(std::size_t u, bool usr);
  void on_round_mark(const RoundMarkFrame& f);
  void build_and_send_report(std::uint16_t round, std::uint8_t phase);
  // Both USR fragment widths share one delivery path (UsrReassembly has
  // an add() overload per frame family).
  template <typename Frame>
  void on_usr_frag(const Frame& f);
  void on_batch_done(const BatchDoneFrame& f);

  // Failover: adopt `d.from` as the new server iff it is in the failover
  // set and carries a BatchStart with a higher epoch than ours. Returns
  // true when the datagram was consumed (adoption or not-for-us).
  bool maybe_failover(const Datagram& d);
  // Re-subscription to the adopted server: our range, epoch, finalized
  // batch count, and the Theorem-4.2 evolved id of our first uid.
  void send_resub();
  // True when the batch about to open is past the die_at_batch hook.
  bool dies_at(std::uint32_t batch_seq) const {
    return config_.die_at_batch >= 0 &&
           batch_seq >= static_cast<std::uint64_t>(config_.die_at_batch);
  }

  // True once SubAck negotiated the wide-slot (v2) frame family.
  bool wide() const { return version_ >= kWireV2; }

  WireTransport& wire_;
  Endpoint server_;
  FleetConfig config_;
  std::atomic<bool> stop_{false};

  // Session parameters from SubAck / SlotMap.
  std::size_t k_ = 10;
  unsigned degree_ = 4;
  std::uint32_t batches_expected_ = 0;
  std::uint8_t version_ = kWireV1;  // negotiated in SubAck
  // Current id per client; evolves per Theorem 4.2 across batches, so it
  // outgrows u16 exactly when the session runs wide slots.
  std::vector<std::uint32_t> ids_;
  std::vector<bool> have_slot_;
  std::size_t slots_have_ = 0;

  std::optional<Batch> batch_;
  std::uint32_t next_seq_ = 0;
  std::uint32_t done_seq_ = 0;  // last finalized batch + 1
  Bytes cached_done_ack_;

  // Failover state.
  std::uint32_t epoch_ = 0;   // highest fencing epoch seen
  bool need_resub_ = false;   // resend Resub per BatchStart until data flows
  bool die_now_ = false;      // a die_at_* hook fired: exit silently

  FleetStats stats_;
};

}  // namespace rekey::wire
