#include "wire/bufpool.h"

#include "common/ensure.h"
#include "common/obs.h"

namespace rekey::wire {

namespace {

obs::Counter& pool_acquires() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("wire.pool_acquires");
  return c;
}

obs::Counter& pool_exhausted() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("wire.pool_exhausted");
  return c;
}

}  // namespace

FrameBufferPool::FrameBufferPool(std::size_t slot_size,
                                 std::size_t slot_count)
    : slot_size_(slot_size), slot_count_(slot_count) {
  REKEY_ENSURE_MSG(slot_size > 0 && slot_count > 0,
                   "FrameBufferPool needs at least one nonempty slot");
  arena_.resize(slot_size_ * slot_count_);
  in_use_.assign(slot_count_, 0);
  free_.reserve(slot_count_);
  // Pop order is LIFO off the back; seed the stack in reverse so the
  // first acquires hand out slots 0, 1, 2, ... (stable, cache-warm).
  for (std::size_t i = slot_count_; i-- > 0;) free_.push_back(i);
}

std::size_t FrameBufferPool::acquire() {
  if (free_.empty()) {
    ++exhausted_;
    pool_exhausted().add();
    return kNone;
  }
  const std::size_t index = free_.back();
  free_.pop_back();
  in_use_[index] = 1;
  ++acquired_;
  pool_acquires().add();
  if (in_flight() > high_water_) high_water_ = in_flight();
  return index;
}

void FrameBufferPool::release(std::size_t index) {
  REKEY_ENSURE_MSG(index < slot_count_, "buffer pool release out of range");
  REKEY_ENSURE_MSG(in_use_[index] != 0, "buffer pool double release");
  in_use_[index] = 0;
  free_.push_back(index);
}

std::uint8_t* FrameBufferPool::slot(std::size_t index) {
  REKEY_ENSURE(index < slot_count_);
  return arena_.data() + index * slot_size_;
}

const std::uint8_t* FrameBufferPool::slot(std::size_t index) const {
  REKEY_ENSURE(index < slot_count_);
  return arena_.data() + index * slot_size_;
}

}  // namespace rekey::wire
