#include "wire/loopback.h"

#include <chrono>

namespace rekey::wire {

LoopbackHub::LoopbackHub(std::size_t max_payload) : max_payload_(max_payload) {}

LoopbackHub::~LoopbackHub() = default;

std::unique_ptr<LoopbackWire> LoopbackHub::attach() {
  std::lock_guard<std::mutex> lock(ports_mu_);
  const Endpoint self{ports_.size()};
  ports_.push_back(std::make_unique<Port>());
  return std::unique_ptr<LoopbackWire>(new LoopbackWire(this, self));
}

bool LoopbackHub::deliver(Endpoint to, Datagram&& d) {
  Port* port = nullptr;
  {
    std::lock_guard<std::mutex> lock(ports_mu_);
    if (to.id >= ports_.size()) return false;
    port = ports_[to.id].get();
  }
  {
    std::lock_guard<std::mutex> lock(port->mu);
    port->inbox.push_back(std::move(d));
  }
  port->cv.notify_one();
  return true;
}

bool LoopbackWire::send(Endpoint to, std::uint8_t channel,
                        std::span<const std::uint8_t> payload) {
  if (payload.size() > hub_->max_payload()) return false;
  Datagram d;
  d.from = self_;
  d.channel = channel;
  d.payload.assign(payload.begin(), payload.end());
  return hub_->deliver(to, std::move(d));
}

std::size_t LoopbackWire::send_frames(Endpoint to, std::uint8_t channel,
                                      std::span<const Bytes* const> frames) {
  std::size_t sent = 0;
  for (const Bytes* frame : frames) {
    if (!send(to, channel, *frame)) break;
    ++sent;
  }
  return sent;
}

std::size_t LoopbackWire::receive(std::vector<Datagram>& out, int timeout_ms) {
  LoopbackHub::Port* port;
  {
    std::lock_guard<std::mutex> lock(hub_->ports_mu_);
    port = hub_->ports_[self_.id].get();
  }
  std::unique_lock<std::mutex> lock(port->mu);
  if (port->inbox.empty() && timeout_ms > 0) {
    port->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [port] { return !port->inbox.empty(); });
  }
  std::size_t n = 0;
  while (!port->inbox.empty()) {
    out.push_back(std::move(port->inbox.front()));
    port->inbox.pop_front();
    ++n;
  }
  return n;
}

}  // namespace rekey::wire
