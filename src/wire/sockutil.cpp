#include "wire/sockutil.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/ensure.h"

namespace rekey::wire::sockutil {

sockaddr_in to_sockaddr(Endpoint e) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(endpoint_addr(e));
  sa.sin_port = htons(endpoint_port(e));
  return sa;
}

Endpoint from_sockaddr(const sockaddr_in& sa) {
  return make_endpoint(ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port));
}

namespace {

void grow_socket_buffers(int fd) {
  // A round-1 burst for N=2^15 is tens of MB arriving faster than the
  // fleet drains it; an 8 MB receive queue rides it out. RCVBUFFORCE
  // needs CAP_NET_ADMIN — fall back to the rmem_max-clamped plain knob.
  constexpr int kBytes = 8 << 20;
  int v = kBytes;
#ifdef SO_RCVBUFFORCE
  if (setsockopt(fd, SOL_SOCKET, SO_RCVBUFFORCE, &v, sizeof v) != 0)
#endif
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &v, sizeof v);
  v = kBytes;
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &v, sizeof v);
}

}  // namespace

int open_bound_udp_socket(std::uint32_t bind_addr_host,
                          std::uint16_t bind_port, Endpoint* local) {
  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  REKEY_ENSURE_MSG(fd >= 0, "socket() failed");
  const int flags = fcntl(fd, F_GETFL, 0);
  REKEY_ENSURE(flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
  grow_socket_buffers(fd);

  sockaddr_in sa = to_sockaddr(make_endpoint(bind_addr_host, bind_port));
  REKEY_ENSURE_MSG(
      bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) == 0,
      "bind() failed");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  REKEY_ENSURE(getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
               0);
  if (local != nullptr) *local = from_sockaddr(bound);
  return fd;
}

}  // namespace rekey::wire::sockutil
