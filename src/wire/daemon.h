// KeyServerDaemon — the batch-rekey key server over a real datagram
// transport (the wire counterpart of transport::RekeySession).
//
// The daemon owns a persistent KeyTree whose members split into two
// populations:
//
//   * the fleet: uids [0, clients), one per remote virtual client, which
//     never leave — their slot ids evolve across batches exactly as the
//     protocol prescribes (Theorem 4.2), and the remote UserTransports
//     track them without any further server help after the initial
//     SlotMap;
//   * a churn pool of silent members that the daemon joins/leaves each
//     batch to generate real rekey traffic. They have no transport; the
//     multicast serves them but nobody reports for them.
//
// Per batch the daemon runs the same pipeline as the simulator —
// Marker -> generate_rekey_payload -> assign_keys -> ServerTransport —
// and drives the rounds over the wire in lockstep:
//
//   1. data burst: every endpoint gets the round's ENC/PARITY frames
//      (ENC slot wires go to sendmmsg straight out of the transport's
//      arena via ServerTransport::for_each_round_wire — no copies);
//   2. RoundMark, re-sent on a timer until every live endpoint's final
//      Report (or the round deadline) arrives;
//   3. NACK feedback into accept_nack / RhoController, then the next
//      round's reactive parities — identical control law to the simnet.
//
// After max_multicast_rounds the unicast phase serves reported
// stragglers with (fragmented, duplicated) USR packets wave by wave.
// Data-plane loss needs no transport-level reliability — FEC and NACKs
// are the protocol's own answer; only control frames are retransmitted.
//
// Replication: two daemons form a primary/standby pair. The primary
// ships a sealed full-server snapshot to the standby before every batch
// and heartbeats between lockstep steps; the standby promotes itself
// after elect_timeout_ms of silence and replays the interrupted batch
// under a higher fencing epoch. Because snapshots sit at batch
// boundaries and every daemon death point is a protocol-clock step, the
// standby's replay is bit-identical to the batch the primary would have
// run — the determinism contract the replica tests enforce.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/parallel.h"
#include "keytree/keytree.h"
#include "keytree/shard.h"
#include "simnet/fault.h"
#include "transport/config.h"
#include "transport/server.h"
#include "wire/control.h"
#include "wire/server_snapshot.h"
#include "wire/wire.h"

namespace rekey::wire {

struct DaemonConfig {
  transport::ProtocolConfig protocol;
  unsigned degree = 4;
  std::uint64_t key_seed = 20010827;  // SIGCOMM'01

  std::uint32_t clients = 0;  // fleet size; uids [0, clients)
  // Silent members available for churn; batch churn rotates through them.
  std::uint32_t churn_pool = 64;
  std::uint32_t batches = 1;
  std::uint32_t churn_joins = 8;
  std::uint32_t churn_leaves = 8;

  // Lockstep timing: a round's report-collection deadline, and the
  // control-frame retransmit cadence within it.
  int round_wait_ms = 5000;
  int retry_ms = 50;
  // Rounds before switching to unicast (the wire path always switches —
  // a multicast-only daemon would wait forever for a dead client).
  int max_multicast_rounds = 8;
  // Unicast waves before the remaining stragglers are abandoned.
  int unicast_max_waves = 64;
  // Consecutive missed report deadlines before an endpoint is declared
  // dead and dropped from the lockstep.
  int endpoint_dead_after = 3;

  // Sharded batch pipeline (keytree/shard.h): shards > 1 runs marking,
  // payload generation, and UKA as per-shard tasks; worker_threads > 1
  // backs them with a pool. Bit-identical output to the serial pipeline
  // (the wire traffic does not change); defaults keep the serial path.
  unsigned shards = 1;          // power of two in [1, 256]
  unsigned worker_threads = 1;  // 0 picks default_thread_count()

  // Wire protocol version: 0 selects automatically (v2 when the group's
  // initial slot ids could outgrow the v1 u16 fields, v1 otherwise so all
  // legacy byte streams stay identical); kWireV1/kWireV2 force a version.
  // Forcing v1 on a group that needs wide slots is refused at startup.
  unsigned wire_version = 0;

  // --- Replication (two-replica failover) ---
  // Peer replica endpoint. A primary with a peer ships a sealed
  // full-server snapshot (wire/server_snapshot.h) to it before every
  // batch (ack-blocked, so the standby's state always sits at a known
  // batch boundary) and heartbeats between lockstep steps. A standby
  // (standby = true) ingests those snapshots and, once the primary has
  // been silent past elect_timeout_ms, promotes itself with fencing
  // epoch = snapshot epoch + 1, re-syncs the fleet via Resub, and
  // replays the interrupted batch from its opening BatchStart.
  std::optional<Endpoint> peer;
  bool standby = false;
  int elect_timeout_ms = 500;
  int heartbeat_ms = 0;  // 0 uses retry_ms

  // Deterministic blackout death: the daemon keeps a protocol clock that
  // advances round_quantum_ms per lockstep step (batch boundary, round
  // burst, unicast wave, batch-done) and goes permanently dark at the
  // first step whose clock lands inside a fault-plan blackout window.
  // Death is a pure function of (fault, config) — never wall time — so a
  // failover scenario replays bit-identically.
  simnet::FaultPlan fault;
  double round_quantum_ms = 100.0;
};

struct DaemonStats {
  std::uint32_t endpoints = 0;
  std::uint32_t batches_run = 0;
  std::uint64_t enc_packets = 0;
  std::uint64_t slots = 0;
  std::uint64_t data_frames = 0;       // ENC+PARITY frames handed to the wire
  std::uint64_t data_bytes = 0;        // payload bytes of those frames
  std::uint64_t proactive_parities = 0;
  std::uint64_t reactive_parities = 0;
  std::uint64_t rounds = 0;            // multicast rounds across batches
  std::uint64_t unicast_waves = 0;
  std::uint64_t usr_frags = 0;
  std::uint64_t control_frames = 0;
  std::uint64_t control_retransmits = 0;
  std::uint64_t reports = 0;        // report parts processed
  std::uint64_t nack_users = 0;     // per-round per-user NACK arrivals
  std::uint64_t recovered = 0;      // client-batch recoveries (DoneAcks)
  std::uint64_t via_usr = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t endpoints_dropped = 0;
  // Subscriptions refused because the client's advertised max version is
  // below what the session requires.
  std::uint64_t endpoints_incompatible = 0;
  std::uint32_t wire_version = 1;  // negotiated session version
  double rho_final = 1.0;

  // Replication & failover. Dead endpoints never DoneAck, so their
  // abandoned client-batches are ledgered here: recovered + gave_up +
  // gave_up_dead covers every client-batch the daemon ran to completion.
  std::uint64_t gave_up_dead = 0;
  std::uint64_t snapshots_sent = 0;      // primary: snapshots the standby acked
  std::uint64_t snapshot_chunks = 0;     // SnapChunk frames sent (incl. resends)
  std::uint64_t snapshots_restored = 0;  // standby: snapshots restored + acked
  std::uint64_t resubs = 0;              // Resub frames accepted at failover
  std::uint32_t epoch = 0;               // final fencing epoch
  bool promoted = false;     // this daemon was a standby that took over
  bool died = false;         // killed by the blackout schedule
  double died_at_ms = -1.0;  // protocol clock at death
  // Every batch this daemon was responsible for ran (for an un-promoted
  // standby: the primary finished cleanly and retired it with Fin).
  bool completed = false;
};

class KeyServerDaemon {
 public:
  KeyServerDaemon(WireTransport& wire, const DaemonConfig& config);

  // Blocks: waits for subscriptions covering every uid, runs the batches,
  // broadcasts Fin, returns the aggregate stats. Safe to call once.
  DaemonStats run();

  // Asks run() to bail out at the next lockstep boundary (test harness
  // timeouts). Callable from another thread.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  struct EndpointState {
    Endpoint ep;
    std::uint32_t first_uid = 0;
    std::uint32_t count = 0;
    std::uint8_t max_version = kWireV1;  // advertised in Sub
    bool slot_map_acked = false;
    bool dead = false;
    int missed_deadlines = 0;

    // Report collection for the lockstep step in progress.
    std::uint32_t parts_expected = 0;
    std::vector<bool> parts_seen;
    std::size_t parts_have = 0;
    std::uint32_t reported_unrecovered = 0;
    bool report_done = false;
    // uids this endpoint last reported unrecovered (feeds the unicast
    // straggler set).
    std::vector<std::uint32_t> unrecovered_uids;

    bool done_acked = false;  // BatchDone / Fin acks
    bool resubbed = false;    // re-subscribed after a failover (Resub)
  };

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  void send_control(Endpoint to, const Bytes& frame);
  // One receive-and-dispatch pass; control frames outside the current
  // lockstep interest (duplicates, stale batches) are answered or
  // dropped here. Returns the number of datagrams processed.
  std::size_t pump(int timeout_ms);

  void wait_for_subscriptions();
  void send_slot_maps();

  // Advances the protocol clock by one lockstep quantum and evaluates the
  // blackout schedule; returns true when the daemon is (now) dead.
  bool step_clock();
  // Rate-limited Heartbeat to the peer (primary role only; no-op otherwise).
  void maybe_heartbeat();
  // Ships the full-server snapshot preceding `next_batch` to the peer and
  // blocks on its SnapAck; a standby that never acks is written off
  // (peer_dead_) so later batches run unreplicated instead of stalling.
  void ship_snapshot(std::uint32_t next_batch);

  // Standby lifecycle: ingest snapshots until the primary falls silent
  // (or Fins), then promote with a higher fencing epoch, re-sync the
  // fleet, and serve the remaining batches.
  DaemonStats run_standby();
  void promote();
  // Election barrier: broadcast the epoch'd BatchStart of the replay
  // batch until every live endpoint has Resub'ed (laggards are dropped at
  // the deadline, like endpoints that stop reporting).
  void resub_barrier();

  // Session teardown: Fin until every live endpoint acks (short grace).
  void fin_handshake();

  // Runs one churn batch end to end; returns false on stop request.
  bool run_batch(std::uint32_t batch_seq);

  // Lockstep report collection: marks the step, retransmits, waits for
  // every live endpoint (deadline round_wait_ms). `phase` 0/1.
  void collect_reports(std::uint32_t batch_seq, std::uint8_t msg_id,
                       std::uint16_t round, std::uint8_t phase,
                       transport::ServerTransport& server);
  void collect_done_acks(std::uint32_t batch_seq, bool last_batch);

  // Width-independent view of a report part; both report frame widths
  // funnel into the same collection logic.
  struct ReportView {
    std::uint32_t part = 0;
    std::uint32_t nparts = 1;
    std::uint32_t unrecovered = 0;
    const std::vector<ReportUser>* users = nullptr;
  };
  void handle_report(EndpointState& es, const ReportView& f,
                     transport::ServerTransport* server);

  // True when the session speaks the wide-slot (v2) frame family.
  bool wide() const { return session_version_ >= kWireV2; }

  WireTransport& wire_;
  DaemonConfig config_;
  std::atomic<bool> stop_{false};

  tree::KeyTree tree_;
  std::optional<tree::ShardPlan> plan_;  // set when config asks for shards
  std::unique_ptr<rekey::ThreadPool> pool_;
  transport::RhoController rho_;
  tree::MemberId next_member_ = 0;
  std::vector<tree::MemberId> churn_members_;  // silent, in join order

  std::map<Endpoint, EndpointState> endpoints_;
  std::uint8_t session_version_ = kWireV1;  // fixed before subscriptions
  // Lockstep the receive pump matches reports against.
  std::uint32_t cur_batch_ = 0;
  std::uint16_t cur_round_ = 0;
  std::uint8_t cur_phase_ = 0;
  transport::ServerTransport* cur_server_ = nullptr;

  // Replication state.
  std::uint32_t epoch_ = 0;       // fencing epoch carried in BatchStart
  std::uint32_t next_batch_ = 0;  // batch being run (or about to run)
  double fault_clock_ms_ = 0.0;   // protocol clock for the blackout schedule
  bool dead_ = false;             // blackout hit: permanently dark
  bool peer_dead_ = false;        // snapshot delivery gave up on the peer
  bool peer_fin_ = false;         // peer announced clean session completion
  std::int64_t snap_acked_ = -1;  // primary: highest snap_seq the peer acked
  SnapshotReassembly snap_reasm_;            // standby: chunk reassembly
  std::optional<ServerSnapshot> pending_snap_;  // standby: latest restored
  std::chrono::steady_clock::time_point last_peer_heard_{};
  std::chrono::steady_clock::time_point last_heartbeat_{};

  DaemonStats stats_;
};

}  // namespace rekey::wire
