// KeyServerDaemon — the batch-rekey key server over a real datagram
// transport (the wire counterpart of transport::RekeySession).
//
// The daemon owns a persistent KeyTree whose members split into two
// populations:
//
//   * the fleet: uids [0, clients), one per remote virtual client, which
//     never leave — their slot ids evolve across batches exactly as the
//     protocol prescribes (Theorem 4.2), and the remote UserTransports
//     track them without any further server help after the initial
//     SlotMap;
//   * a churn pool of silent members that the daemon joins/leaves each
//     batch to generate real rekey traffic. They have no transport; the
//     multicast serves them but nobody reports for them.
//
// Per batch the daemon runs the same pipeline as the simulator —
// Marker -> generate_rekey_payload -> assign_keys -> ServerTransport —
// and drives the rounds over the wire in lockstep:
//
//   1. data burst: every endpoint gets the round's ENC/PARITY frames
//      (ENC slot wires go to sendmmsg straight out of the transport's
//      arena via ServerTransport::for_each_round_wire — no copies);
//   2. RoundMark, re-sent on a timer until every live endpoint's final
//      Report (or the round deadline) arrives;
//   3. NACK feedback into accept_nack / RhoController, then the next
//      round's reactive parities — identical control law to the simnet.
//
// After max_multicast_rounds the unicast phase serves reported
// stragglers with (fragmented, duplicated) USR packets wave by wave.
// Data-plane loss needs no transport-level reliability — FEC and NACKs
// are the protocol's own answer; only control frames are retransmitted.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/parallel.h"
#include "keytree/keytree.h"
#include "keytree/shard.h"
#include "transport/config.h"
#include "transport/server.h"
#include "wire/control.h"
#include "wire/wire.h"

namespace rekey::wire {

struct DaemonConfig {
  transport::ProtocolConfig protocol;
  unsigned degree = 4;
  std::uint64_t key_seed = 20010827;  // SIGCOMM'01

  std::uint32_t clients = 0;  // fleet size; uids [0, clients)
  // Silent members available for churn; batch churn rotates through them.
  std::uint32_t churn_pool = 64;
  std::uint32_t batches = 1;
  std::uint32_t churn_joins = 8;
  std::uint32_t churn_leaves = 8;

  // Lockstep timing: a round's report-collection deadline, and the
  // control-frame retransmit cadence within it.
  int round_wait_ms = 5000;
  int retry_ms = 50;
  // Rounds before switching to unicast (the wire path always switches —
  // a multicast-only daemon would wait forever for a dead client).
  int max_multicast_rounds = 8;
  // Unicast waves before the remaining stragglers are abandoned.
  int unicast_max_waves = 64;
  // Consecutive missed report deadlines before an endpoint is declared
  // dead and dropped from the lockstep.
  int endpoint_dead_after = 3;

  // Sharded batch pipeline (keytree/shard.h): shards > 1 runs marking,
  // payload generation, and UKA as per-shard tasks; worker_threads > 1
  // backs them with a pool. Bit-identical output to the serial pipeline
  // (the wire traffic does not change); defaults keep the serial path.
  unsigned shards = 1;          // power of two in [1, 256]
  unsigned worker_threads = 1;  // 0 picks default_thread_count()

  // Wire protocol version: 0 selects automatically (v2 when the group's
  // initial slot ids could outgrow the v1 u16 fields, v1 otherwise so all
  // legacy byte streams stay identical); kWireV1/kWireV2 force a version.
  // Forcing v1 on a group that needs wide slots is refused at startup.
  unsigned wire_version = 0;
};

struct DaemonStats {
  std::uint32_t endpoints = 0;
  std::uint32_t batches_run = 0;
  std::uint64_t enc_packets = 0;
  std::uint64_t slots = 0;
  std::uint64_t data_frames = 0;       // ENC+PARITY frames handed to the wire
  std::uint64_t data_bytes = 0;        // payload bytes of those frames
  std::uint64_t proactive_parities = 0;
  std::uint64_t reactive_parities = 0;
  std::uint64_t rounds = 0;            // multicast rounds across batches
  std::uint64_t unicast_waves = 0;
  std::uint64_t usr_frags = 0;
  std::uint64_t control_frames = 0;
  std::uint64_t control_retransmits = 0;
  std::uint64_t reports = 0;        // report parts processed
  std::uint64_t nack_users = 0;     // per-round per-user NACK arrivals
  std::uint64_t recovered = 0;      // client-batch recoveries (DoneAcks)
  std::uint64_t via_usr = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t endpoints_dropped = 0;
  // Subscriptions refused because the client's advertised max version is
  // below what the session requires.
  std::uint64_t endpoints_incompatible = 0;
  std::uint32_t wire_version = 1;  // negotiated session version
  double rho_final = 1.0;
};

class KeyServerDaemon {
 public:
  KeyServerDaemon(WireTransport& wire, const DaemonConfig& config);

  // Blocks: waits for subscriptions covering every uid, runs the batches,
  // broadcasts Fin, returns the aggregate stats. Safe to call once.
  DaemonStats run();

  // Asks run() to bail out at the next lockstep boundary (test harness
  // timeouts). Callable from another thread.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  struct EndpointState {
    Endpoint ep;
    std::uint32_t first_uid = 0;
    std::uint32_t count = 0;
    std::uint8_t max_version = kWireV1;  // advertised in Sub
    bool slot_map_acked = false;
    bool dead = false;
    int missed_deadlines = 0;

    // Report collection for the lockstep step in progress.
    std::uint32_t parts_expected = 0;
    std::vector<bool> parts_seen;
    std::size_t parts_have = 0;
    std::uint32_t reported_unrecovered = 0;
    bool report_done = false;
    // uids this endpoint last reported unrecovered (feeds the unicast
    // straggler set).
    std::vector<std::uint32_t> unrecovered_uids;

    bool done_acked = false;  // BatchDone / Fin acks
  };

  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

  void send_control(Endpoint to, const Bytes& frame);
  // One receive-and-dispatch pass; control frames outside the current
  // lockstep interest (duplicates, stale batches) are answered or
  // dropped here. Returns the number of datagrams processed.
  std::size_t pump(int timeout_ms);

  void wait_for_subscriptions();
  void send_slot_maps();

  // Runs one churn batch end to end; returns false on stop request.
  bool run_batch(std::uint32_t batch_seq);

  // Lockstep report collection: marks the step, retransmits, waits for
  // every live endpoint (deadline round_wait_ms). `phase` 0/1.
  void collect_reports(std::uint32_t batch_seq, std::uint8_t msg_id,
                       std::uint16_t round, std::uint8_t phase,
                       transport::ServerTransport& server);
  void collect_done_acks(std::uint32_t batch_seq, bool last_batch);

  // Width-independent view of a report part; both report frame widths
  // funnel into the same collection logic.
  struct ReportView {
    std::uint32_t part = 0;
    std::uint32_t nparts = 1;
    std::uint32_t unrecovered = 0;
    const std::vector<ReportUser>* users = nullptr;
  };
  void handle_report(EndpointState& es, const ReportView& f,
                     transport::ServerTransport* server);

  // True when the session speaks the wide-slot (v2) frame family.
  bool wide() const { return session_version_ >= kWireV2; }

  WireTransport& wire_;
  DaemonConfig config_;
  std::atomic<bool> stop_{false};

  tree::KeyTree tree_;
  std::optional<tree::ShardPlan> plan_;  // set when config asks for shards
  std::unique_ptr<rekey::ThreadPool> pool_;
  transport::RhoController rho_;
  tree::MemberId next_member_ = 0;
  std::vector<tree::MemberId> churn_members_;  // silent, in join order

  std::map<Endpoint, EndpointState> endpoints_;
  std::uint8_t session_version_ = kWireV1;  // fixed before subscriptions
  // Lockstep the receive pump matches reports against.
  std::uint32_t cur_batch_ = 0;
  std::uint16_t cur_round_ = 0;
  std::uint8_t cur_phase_ = 0;
  transport::ServerTransport* cur_server_ = nullptr;

  DaemonStats stats_;
};

}  // namespace rekey::wire
