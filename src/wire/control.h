// Control-plane frames of the wire rekey session (wire/daemon.h,
// wire/fleet.h).
//
// The rekey protocol itself (packet/wire.h) defines only the four data
// packets; the paper's evaluation drives them from a simulator where
// round boundaries and membership are ambient. On a real datagram
// transport those have to travel too. Every datagram starts with a
// 1-byte channel:
//
//   kChanData    — payload is exactly one protocol packet (ENC / PARITY /
//                  USR / NACK wire bytes, unchanged from packet/wire.h).
//   kChanControl — payload is one of the frames below.
//
// Control frames keep the round-based protocol's lockstep over a lossy
// transport: the daemon re-marks a round until every endpoint's final
// report (or the deadline) arrives, and endpoints answer duplicate marks
// by resending their cached reports. Data-plane loss is the protocol's
// own business (FEC + NACK); control frames are the only thing the wire
// layer retransmits.
//
// All integers are big-endian, serialized with ByteWriter like the data
// packets. Parsers are strict: any truncation, trailing bytes, or length
// mismatch returns nullopt — these arrive off a real socket.
//
// Protocol versions. v1 (the original format) carries 16-bit keytree slot
// ids; v2 widens SlotMap/Report/UsrFrag (ops 13–15) and the data-plane
// ENC/USR headers to 32-bit slot ids, and raises the UsrFrag fragment
// count to 16 bits. Versions are negotiated per session: Sub optionally
// carries the client's max supported version (a trailing byte, absent for
// v1 so the 9-byte legacy frame is unchanged) and SubAck optionally
// carries the server's selection the same way. Everything else is shared
// between versions byte-for-byte.
//
// Replication frames (ops 16–19) carry the replicated key server's
// control traffic: full-server snapshots ship replica-to-replica as
// SnapChunk/SnapAck at batch boundaries, Heartbeat lets a warm standby
// detect primary death, and Resub is a client's re-subscription to a
// freshly promoted replica. Epoch fencing rides in BatchStart the same
// trailing-field way as version negotiation: epoch 0 (the unreplicated
// and pre-failover case) keeps the legacy 6-byte frame byte-identical,
// a promoted replica appends its nonzero epoch, and clients reject
// BatchStarts fenced below the highest epoch they have seen.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "packet/wire.h"

namespace rekey::wire {

inline constexpr std::uint8_t kChanData = 0x00;
inline constexpr std::uint8_t kChanControl = 0x01;

enum class ControlOp : std::uint8_t {
  Sub = 1,          // client -> server: subscribe a uid range
  SubAck = 2,       // server -> client: group parameters
  SlotMap = 3,      // server -> client: initial keytree slot of each uid
  SlotMapAck = 4,   // client -> server: slot map fully received
  BatchStart = 5,   // server -> client: a rekey message begins
  RoundMark = 6,    // server -> client: end-of-round, report now
  Report = 7,       // client -> server: aggregated NACKs + unrecovered count
  UsrFrag = 8,      // server -> client: unicast USR payload fragment
  BatchDone = 9,    // server -> client: message delivered / abandoned
  DoneAck = 10,     // client -> server: per-endpoint batch stats
  Fin = 11,         // server -> client: session over
  FinAck = 12,      // client -> server
  SlotMapV2 = 13,   // server -> client: SlotMap with 32-bit slot ids
  ReportV2 = 14,    // client -> server: Report with 32-bit part counters
  UsrFragV2 = 15,   // server -> client: UsrFrag with 16-bit frag counters
  SnapChunk = 16,   // primary -> standby: full-server snapshot fragment
  SnapAck = 17,     // standby -> primary: snapshot fully restored
  Heartbeat = 18,   // primary -> standby: liveness + progress
  Resub = 19,       // client -> promoted standby: failover re-subscribe
};

// Wire protocol versions (see header comment).
inline constexpr std::uint8_t kWireV1 = 1;  // 16-bit slot ids
inline constexpr std::uint8_t kWireV2 = 2;  // 32-bit slot ids
inline constexpr std::uint8_t kMaxWireVersion = kWireV2;

// An endpoint (one load-generator socket) speaks for a contiguous range
// of virtual clients; uid is the stable client identity across batches
// (its keytree slot changes every batch, its uid never does).
struct SubFrame {
  std::uint32_t first_uid = 0;
  std::uint32_t count = 0;
  // Highest wire version this client speaks. kWireV1 serializes to the
  // 9-byte legacy frame (no version byte); higher values append one byte.
  std::uint8_t max_version = kWireV1;
};

struct SubAckFrame {
  std::uint32_t group_size = 0;        // current keytree member count
  std::uint32_t expected_clients = 0;  // fleet size the daemon waits for
  std::uint8_t degree = 4;
  std::uint8_t block_size = 10;  // FEC k
  std::uint16_t packet_size = 0;
  std::uint32_t batches = 0;  // churn batches the daemon will run
  // Wire version the server selected for the session (global: the data
  // plane is multicast, so every endpoint speaks the same width). kWireV1
  // keeps the 17-byte legacy ack; higher values append one byte.
  std::uint8_t version = kWireV1;
};

// Initial keytree slots for a contiguous run of uids. Only sent once per
// session, right after subscription: a client must know its pre-batch-0
// slot id to run the Theorem-4.2 id derivation; from then on ids evolve
// client-side. Chunked to fit the MTU; the client acks once every uid in
// its subscribed range has a slot.
struct SlotMapFrame {
  std::uint32_t base_uid = 0;
  std::vector<std::uint16_t> slots;  // slot of base_uid, base_uid+1, ...
};

// v2: 32-bit slot ids (groups past 2^16 slots).
struct SlotMapV2Frame {
  std::uint32_t base_uid = 0;
  std::vector<std::uint32_t> slots;  // slot of base_uid, base_uid+1, ...
};

struct SlotMapAckFrame {
  std::uint32_t first_uid = 0;  // identifies the endpoint's range
};

struct BatchStartFrame {
  std::uint32_t batch_seq = 0;
  std::uint8_t msg_id = 0;  // 6-bit data-plane message id of this batch
  // Fencing token of the sending replica. 0 (an unreplicated server, or
  // a primary that was never failed over) serializes to the legacy
  // 6-byte frame; a promoted replica's nonzero epoch appends four bytes.
  // Clients track the highest epoch seen and drop BatchStarts below it,
  // so a stale primary that comes back cannot drive the group.
  std::uint32_t epoch = 0;
};

// phase 0 = multicast round `round`; phase 1 = unicast wave `round`.
struct RoundMarkFrame {
  std::uint32_t batch_seq = 0;
  std::uint8_t msg_id = 0;  // lets a client that lost BatchStart bootstrap
  std::uint16_t round = 0;
  std::uint8_t phase = 0;
};

// One client's end-of-round feedback inside a report.
struct ReportUser {
  std::uint32_t uid = 0;
  std::vector<packet::NackEntry> entries;  // empty in the unicast phase
};

// An endpoint's end-of-round report. Large fleets overflow one datagram,
// so a report is `nparts` frames sharing (batch_seq, round, phase), each
// carrying `part` and the authoritative unrecovered total; the server
// holds the round open until all parts of every live endpoint arrive.
struct ReportFrame {
  std::uint32_t batch_seq = 0;
  std::uint16_t round = 0;
  std::uint8_t phase = 0;
  std::uint16_t part = 0;
  std::uint16_t nparts = 1;
  std::uint32_t unrecovered = 0;  // clients of this endpoint still short
  std::vector<ReportUser> users;
};

// v2: part counters and the per-frame user count widen to 32 bits so a
// multi-million-client endpoint's report stream cannot overflow them.
struct ReportV2Frame {
  std::uint32_t batch_seq = 0;
  std::uint16_t round = 0;
  std::uint8_t phase = 0;
  std::uint32_t part = 0;
  std::uint32_t nparts = 1;
  std::uint32_t unrecovered = 0;
  std::vector<ReportUser> users;
};

// One fragment of a serialized USR packet (unicast straggler delivery).
// `bytes` is a raw slice [frag * chunk, ...) of UsrPacket::serialize();
// the receiver concatenates all `nfrags` slices and parses the result,
// so a 9000-byte jumbo USR crosses a 1500-byte wire without the daemon
// ever emitting an over-MTU datagram.
struct UsrFragFrame {
  std::uint32_t batch_seq = 0;
  std::uint32_t uid = 0;
  std::uint8_t frag = 0;
  std::uint8_t nfrags = 1;
  Bytes bytes;
};

// v2: fragment counters widen to 16 bits — a wide-slot USR for a deep
// tree can exceed 255 MTU-sized fragments on a tiny-MTU path.
struct UsrFragV2Frame {
  std::uint32_t batch_seq = 0;
  std::uint32_t uid = 0;
  std::uint16_t frag = 0;
  std::uint16_t nfrags = 1;
  Bytes bytes;
};

struct BatchDoneFrame {
  std::uint32_t batch_seq = 0;
  std::uint8_t last_batch = 0;
};

struct DoneAckFrame {
  std::uint32_t batch_seq = 0;
  std::uint32_t recovered = 0;
  std::uint32_t via_usr = 0;
  std::uint32_t gave_up = 0;
};

// One fragment of a serialized full-server snapshot (wire/server_snapshot.h)
// shipped primary -> standby at a batch boundary. `snap_seq` is the batch
// the snapshot precedes (monotone per session); `bytes` is the raw slice
// [part * chunk, ...) of the snapshot blob, reassembled by concatenation
// exactly like UsrFrag.
struct SnapChunkFrame {
  std::uint32_t snap_seq = 0;
  std::uint32_t part = 0;
  std::uint32_t nparts = 1;
  Bytes bytes;
};

// Standby's confirmation that snapshot `snap_seq` arrived whole and
// restored cleanly; the primary blocks the next batch on it so the
// standby's state always corresponds to a known batch boundary.
struct SnapAckFrame {
  std::uint32_t snap_seq = 0;
};

// Primary -> standby liveness. `next_batch` is the batch the primary is
// running (or about to run); a standby that stops hearing these past its
// election timeout promotes itself with epoch = snapshot epoch + 1.
struct HeartbeatFrame {
  std::uint32_t epoch = 0;
  std::uint32_t next_batch = 0;
};

// A client's re-subscription to a promoted replica. Carries the range
// (as in Sub), the epoch the client is following, the first batch it has
// not finalized, and the Theorem-4.2 evolved id of its first uid — the
// standby spot-checks that id against its restored tree, so a client
// whose id derivation diverged is caught at failover instead of
// silently failing to decrypt.
struct ResubFrame {
  std::uint32_t first_uid = 0;
  std::uint32_t count = 0;
  std::uint32_t epoch = 0;
  std::uint32_t done_seq = 0;   // batches finalized client-side
  std::uint64_t first_id = 0;   // current id of first_uid
};

struct FinFrame {};
struct FinAckFrame {};

Bytes serialize(const SubFrame&);
Bytes serialize(const SubAckFrame&);
Bytes serialize(const SlotMapAckFrame&);
Bytes serialize(const BatchStartFrame&);
Bytes serialize(const RoundMarkFrame&);
Bytes serialize(const BatchDoneFrame&);
Bytes serialize(const DoneAckFrame&);
Bytes serialize(const SnapAckFrame&);
Bytes serialize(const HeartbeatFrame&);
Bytes serialize(const ResubFrame&);
Bytes serialize(const FinFrame&);
Bytes serialize(const FinAckFrame&);

// Variable-length frames can hold more than their length fields express
// (a u16 slot count, a u8 entry count, a u16 fragment byte length).
// Serializers for those return nullopt instead of aborting the daemon on
// such malformed in-memory state — the chunkers below never construct an
// over-limit frame, so a nullopt here means a caller bug, handled like a
// parse failure rather than a crash.
std::optional<Bytes> serialize(const SlotMapFrame&);
std::optional<Bytes> serialize(const SlotMapV2Frame&);
std::optional<Bytes> serialize(const ReportFrame&);
std::optional<Bytes> serialize(const ReportV2Frame&);
std::optional<Bytes> serialize(const UsrFragFrame&);
std::optional<Bytes> serialize(const UsrFragV2Frame&);
std::optional<Bytes> serialize(const SnapChunkFrame&);

// Peek the op of a control payload (nullopt on empty/unknown).
std::optional<ControlOp> peek_op(packet::WireView payload);

std::optional<SubFrame> parse_sub(packet::WireView payload);
std::optional<SubAckFrame> parse_sub_ack(packet::WireView payload);
std::optional<SlotMapFrame> parse_slot_map(packet::WireView payload);
std::optional<SlotMapV2Frame> parse_slot_map_v2(packet::WireView payload);
std::optional<SlotMapAckFrame> parse_slot_map_ack(packet::WireView payload);
std::optional<BatchStartFrame> parse_batch_start(packet::WireView payload);
std::optional<RoundMarkFrame> parse_round_mark(packet::WireView payload);
std::optional<ReportFrame> parse_report(packet::WireView payload);
std::optional<ReportV2Frame> parse_report_v2(packet::WireView payload);
std::optional<UsrFragFrame> parse_usr_frag(packet::WireView payload);
std::optional<UsrFragV2Frame> parse_usr_frag_v2(packet::WireView payload);
std::optional<BatchDoneFrame> parse_batch_done(packet::WireView payload);
std::optional<DoneAckFrame> parse_done_ack(packet::WireView payload);
std::optional<SnapChunkFrame> parse_snap_chunk(packet::WireView payload);
std::optional<SnapAckFrame> parse_snap_ack(packet::WireView payload);
std::optional<HeartbeatFrame> parse_heartbeat(packet::WireView payload);
std::optional<ResubFrame> parse_resub(packet::WireView payload);

// Splits a uid range's slot assignments into SlotMap frames fitting
// `max_payload` each.
std::vector<SlotMapFrame> chunk_slot_map(std::uint32_t first_uid,
                                         const std::vector<std::uint16_t>&
                                             slots,
                                         std::size_t max_payload);
std::vector<SlotMapV2Frame> chunk_slot_map_v2(
    std::uint32_t first_uid, const std::vector<std::uint32_t>& slots,
    std::size_t max_payload);

// Splits one client's end-of-round feedback stream into Report frames
// whose serialized size never exceeds `max_payload`. `users` spans the
// endpoint's unrecovered clients; `unrecovered` is stamped on each part.
// Returns empty (an error, not a report) if the stream needs more parts
// than the part counter can number — practically unreachable for v1 and
// astronomically so for v2.
std::vector<ReportFrame> chunk_report(std::uint32_t batch_seq,
                                      std::uint16_t round, std::uint8_t phase,
                                      std::uint32_t unrecovered,
                                      const std::vector<ReportUser>& users,
                                      std::size_t max_payload);
std::vector<ReportV2Frame> chunk_report_v2(std::uint32_t batch_seq,
                                           std::uint16_t round,
                                           std::uint8_t phase,
                                           std::uint32_t unrecovered,
                                           const std::vector<ReportUser>& users,
                                           std::size_t max_payload);

// Splits a serialized USR packet into UsrFrag frames fitting
// `max_payload` each (at least one, even for an empty payload). Returns
// empty (an error) when the payload needs more fragments than the v1 u8
// counter can number; the v2 u16 counter lifts that to 2^16-1 fragments.
std::vector<UsrFragFrame> fragment_usr(std::uint32_t batch_seq,
                                       std::uint32_t uid, const Bytes& usr_wire,
                                       std::size_t max_payload);
std::vector<UsrFragV2Frame> fragment_usr_v2(std::uint32_t batch_seq,
                                            std::uint32_t uid,
                                            const Bytes& usr_wire,
                                            std::size_t max_payload);

// Splits a snapshot blob into SnapChunk frames fitting `max_payload`
// each (at least one, even for an empty blob). Returns empty (an error)
// only when max_payload cannot fit the chunk header plus one byte.
std::vector<SnapChunkFrame> chunk_snapshot(std::uint32_t snap_seq,
                                           const Bytes& blob,
                                           std::size_t max_payload);

// Reassembles SnapChunk frames into snapshot blobs. Only the newest
// snap_seq is tracked: a chunk of a higher sequence discards any partial
// older state (the primary only ever retransmits its latest snapshot),
// and chunks of completed or stale sequences are ignored. Returns the
// full blob on the chunk that completes it.
class SnapshotReassembly {
 public:
  std::optional<Bytes> add(const SnapChunkFrame& frag);
  void clear();

 private:
  // Chunk-count cap: a hostile nparts must not size a huge vector. At
  // ~1.4 KB per chunk this still admits multi-GB snapshots.
  static constexpr std::uint32_t kMaxChunks = 1u << 20;

  std::uint32_t seq_ = 0;
  bool active_ = false;    // a partial blob of seq_ is in progress
  bool complete_ = false;  // seq_ already delivered (ignore duplicates)
  std::uint32_t nparts_ = 0;
  std::size_t have_ = 0;
  std::vector<Bytes> parts_;
  std::vector<bool> seen_;
};

// Reassembles UsrFrag frames per uid. Duplicate fragments are ignored;
// returns the full USR wire once every fragment of a uid has arrived.
// v1 and v2 fragments feed the same per-uid state (a session only ever
// sees one width, but the counters are compatible).
class UsrReassembly {
 public:
  std::optional<Bytes> add(const UsrFragFrame& frag);
  std::optional<Bytes> add(const UsrFragV2Frame& frag);
  void clear() { pending_.clear(); }

 private:
  std::optional<Bytes> add_impl(std::uint32_t uid, std::uint16_t frag,
                                std::uint16_t nfrags, const Bytes& bytes);
  struct Partial {
    std::uint16_t nfrags = 0;
    std::size_t have = 0;
    std::vector<Bytes> parts;
    std::vector<bool> seen;  // emptiness of a part is not "missing"
  };
  std::map<std::uint32_t, Partial> pending_;
};

}  // namespace rekey::wire
