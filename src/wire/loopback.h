// LoopbackWire — an in-process WireTransport for tests and benches.
//
// A LoopbackHub is a tiny lossless switch: each attach() creates a port
// (its Endpoint id is the port index) with its own locked inbox, so a
// daemon thread and several fleet threads exchange datagrams exactly as
// they would over UDP loopback, minus the sockets, syscalls, and any
// possibility of kernel-side drops. Loss and jitter are injected by the
// fleet's deterministic shaper (wire/fleet.h), never by the hub — that
// keeps loopback runs reproducible.
//
// The hub must outlive every wire attached to it.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "wire/wire.h"

namespace rekey::wire {

class LoopbackWire;

class LoopbackHub {
 public:
  // `max_payload` models the MTU budget (default: 1500-byte ethernet
  // minus IP/UDP headers minus the channel byte). Tests shrink it to
  // force control-plane fragmentation.
  explicit LoopbackHub(std::size_t max_payload = 1471);
  ~LoopbackHub();

  LoopbackHub(const LoopbackHub&) = delete;
  LoopbackHub& operator=(const LoopbackHub&) = delete;

  std::unique_ptr<LoopbackWire> attach();

  std::size_t max_payload() const { return max_payload_; }

 private:
  friend class LoopbackWire;

  struct Port {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Datagram> inbox;
  };

  bool deliver(Endpoint to, Datagram&& d);

  const std::size_t max_payload_;
  std::mutex ports_mu_;
  std::vector<std::unique_ptr<Port>> ports_;
};

class LoopbackWire : public WireTransport {
 public:
  bool send(Endpoint to, std::uint8_t channel,
            std::span<const std::uint8_t> payload) override;
  std::size_t send_frames(Endpoint to, std::uint8_t channel,
                          std::span<const Bytes* const> frames) override;
  std::size_t receive(std::vector<Datagram>& out, int timeout_ms) override;
  std::size_t max_payload() const override { return hub_->max_payload(); }

  Endpoint endpoint() const { return self_; }

 private:
  friend class LoopbackHub;
  LoopbackWire(LoopbackHub* hub, Endpoint self) : hub_(hub), self_(self) {}

  LoopbackHub* hub_;
  Endpoint self_;
};

}  // namespace rekey::wire
