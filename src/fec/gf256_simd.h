// Vectorized GF(2^8) region kernels — the FEC hot path.
//
// Every PARITY packet costs one `dst ^= c * src` pass over the whole
// block, so the byte rate of these kernels bounds the key server's
// rekeying throughput (paper A3). The SIMD paths use the split-nibble
// technique (Plank et al., "Screaming Fast Galois Field Arithmetic Using
// Intel SIMD Instructions"; also ISA-L and klauspost/reedsolomon): each
// product c*x is split as c*(x & 0xF) ^ c*(x >> 4 << 4), both halves
// answered by a 16-entry table shuffle (`pshufb` / `vpshufb` / `vtbl`).
//
// The implementation path is chosen once at startup: best ISA the CPU
// supports among those compiled in, overridable with REKEY_SIMD=
// scalar|ssse3|avx2|neon (auto/native/empty keep autodetection) for
// testing and bench A/B. All paths are exact field arithmetic and produce
// byte-identical output; `gf256_simd_test` enforces this differentially.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/ensure.h"

namespace rekey::fec {

enum class SimdPath { kScalar = 0, kSsse3 = 1, kAvx2 = 2, kNeon = 3 };

const char* simd_path_name(SimdPath path);

// Parses a REKEY_SIMD-style name ("scalar", "ssse3", "avx2", "neon");
// nullopt for anything else (including "auto"/"native"/"").
std::optional<SimdPath> parse_simd_name(std::string_view name);

// One implementation of the two region kernels. `dst == src` (full
// aliasing) is allowed; partially overlapping regions are not.
struct RegionKernels {
  // dst[i] = c * src[i] for i in [0, n)
  void (*mul)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
              std::uint8_t c);
  // dst[i] ^= c * src[i] for i in [0, n)
  void (*addmul)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                 std::uint8_t c);
};

// A path is "compiled" when its translation unit was built into this
// binary, and "supported" when additionally the running CPU executes it.
bool simd_path_compiled(SimdPath path);
bool simd_path_supported(SimdPath path);
std::vector<SimdPath> supported_simd_paths();

// Kernel table for a specific path (for differential tests and bench
// A/B); requires simd_path_supported(path).
const RegionKernels& region_kernels(SimdPath path);

// The path the free functions below dispatch to. Resolved once, at first
// use: REKEY_SIMD override if valid, else the best supported path.
SimdPath active_simd_path();

// Testing/bench hook: swap the active path; returns the previous one.
// Requires simd_path_supported(path). Not thread-safe against concurrent
// region calls — use from single-threaded test setup only.
SimdPath force_simd_path(SimdPath path);

// dst[i] = c * src[i], via the active path.
void mul_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                std::uint8_t c);
// dst[i] ^= c * src[i], via the active path.
void addmul_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                   std::uint8_t c);

inline void mul_region(std::span<std::uint8_t> dst,
                       std::span<const std::uint8_t> src, std::uint8_t c) {
  REKEY_ENSURE(dst.size() == src.size());
  mul_region(dst.data(), src.data(), dst.size(), c);
}

inline void addmul_region(std::span<std::uint8_t> dst,
                          std::span<const std::uint8_t> src, std::uint8_t c) {
  REKEY_ENSURE(dst.size() == src.size());
  addmul_region(dst.data(), src.data(), dst.size(), c);
}

}  // namespace rekey::fec
