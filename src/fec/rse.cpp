#include "fec/rse.h"

#include <algorithm>

#include "common/ensure.h"
#include "fec/gf256.h"
#include "fec/gf256_simd.h"
#include "fec/matrix.h"

namespace rekey::fec {

RseCoder::RseCoder(int k) : k_(k) {
  REKEY_ENSURE_MSG(k >= 1 && k <= 128, "block size out of range");
}

std::uint8_t RseCoder::coeff(int parity_index, int data_index) const {
  // Cauchy element 1 / (x_r + y_c) with x_r = k + parity_index,
  // y_c = data_index; the two index sets are disjoint so x_r != y_c.
  const std::uint8_t x = static_cast<std::uint8_t>(k_ + parity_index);
  const std::uint8_t y = static_cast<std::uint8_t>(data_index);
  return GF256::inv(GF256::add(x, y));
}

Bytes RseCoder::encode_one(std::span<const Bytes> data,
                           int parity_index) const {
  REKEY_ENSURE(static_cast<int>(data.size()) == k_);
  Bytes out(data[0].size());
  encode_one_into(data, parity_index, out);
  return out;
}

void RseCoder::encode_one_into(std::span<const Bytes> data, int parity_index,
                               std::span<std::uint8_t> out) const {
  REKEY_ENSURE(static_cast<int>(data.size()) == k_);
  REKEY_ENSURE_MSG(parity_index >= 0 && parity_index < max_parity(),
                   "parity index exhausted for this block size");
  const std::size_t len = data[0].size();
  REKEY_ENSURE_MSG(out.size() == len, "parity buffer size mismatch");
  for (int c = 0; c < k_; ++c)
    REKEY_ENSURE_MSG(data[c].size() == len, "unequal packet sizes in block");
  // Whole-buffer region kernels: one mul pass seeds the parity, then one
  // addmul pass per remaining data packet.
  mul_region(out.data(), data[0].data(), len, coeff(parity_index, 0));
  for (int c = 1; c < k_; ++c)
    addmul_region(out.data(), data[c].data(), len, coeff(parity_index, c));
}

std::vector<Bytes> RseCoder::encode(std::span<const Bytes> data, int first,
                                    int count) const {
  std::vector<Bytes> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int j = 0; j < count; ++j) out.push_back(encode_one(data, first + j));
  return out;
}

std::optional<std::vector<Bytes>> RseCoder::decode(
    std::span<const Shard> shards) const {
  // Pick k distinct shards, preferring data shards (identity rows are free).
  std::vector<const Shard*> chosen;
  std::vector<bool> have_data(static_cast<std::size_t>(k_), false);
  std::vector<bool> seen_index(256, false);

  for (const Shard& s : shards) {
    REKEY_ENSURE(s.index >= 0 && s.index < k_ + max_parity());
    if (s.index < k_ && !seen_index[static_cast<std::size_t>(s.index)]) {
      seen_index[static_cast<std::size_t>(s.index)] = true;
      have_data[static_cast<std::size_t>(s.index)] = true;
      chosen.push_back(&s);
    }
  }
  for (const Shard& s : shards) {
    if (static_cast<int>(chosen.size()) >= k_) break;
    if (s.index >= k_ && !seen_index[static_cast<std::size_t>(s.index)]) {
      seen_index[static_cast<std::size_t>(s.index)] = true;
      chosen.push_back(&s);
    }
  }
  if (static_cast<int>(chosen.size()) < k_) return std::nullopt;

  // Mixed-length shards cannot come from one block's equal-length regions;
  // on network input (a truncated datagram stored as a shard) this is a
  // decode failure to report, not a programming error to abort on.
  const std::size_t len = chosen[0]->payload.size();
  for (const Shard* s : chosen)
    if (s->payload.size() != len) return std::nullopt;

  const bool all_data =
      std::all_of(have_data.begin(), have_data.end(), [](bool b) { return b; });
  std::vector<Bytes> result(static_cast<std::size_t>(k_));
  if (all_data) {
    for (const Shard* s : chosen)
      if (s->index < k_)
        result[static_cast<std::size_t>(s->index)] = s->payload;
    return result;
  }

  // Build the k x k system: row i of M is the generator row of chosen[i].
  Matrix m(static_cast<std::size_t>(k_), static_cast<std::size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    const int idx = chosen[static_cast<std::size_t>(i)]->index;
    if (idx < k_) {
      m.at(static_cast<std::size_t>(i), static_cast<std::size_t>(idx)) = 1;
    } else {
      for (int c = 0; c < k_; ++c)
        m.at(static_cast<std::size_t>(i), static_cast<std::size_t>(c)) =
            coeff(idx - k_, c);
    }
  }
  const auto inv = m.inverted();
  REKEY_ENSURE_MSG(inv.has_value(), "MDS violated: decode matrix singular");

  // data[r] = sum_i inv[r][i] * chosen[i].payload
  for (int r = 0; r < k_; ++r) {
    Bytes row(len);
    mul_region(row.data(), chosen[0]->payload.data(), len,
               inv->at(static_cast<std::size_t>(r), 0));
    for (int i = 1; i < k_; ++i) {
      addmul_region(row.data(), chosen[static_cast<std::size_t>(i)]->payload.data(),
                    len,
                    inv->at(static_cast<std::size_t>(r),
                            static_cast<std::size_t>(i)));
    }
    result[static_cast<std::size_t>(r)] = std::move(row);
  }
  return result;
}

}  // namespace rekey::fec
