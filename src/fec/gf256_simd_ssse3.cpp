// SSSE3 split-nibble GF(2^8) region kernels: 16 products per `pshufb`
// pair. This file alone is compiled with -mssse3; only leaf kernels may
// live here (see gf256_simd_tables.h).
#if defined(REKEY_SIMD_X86)

#include <tmmintrin.h>

#include "fec/gf256_simd_tables.h"

namespace rekey::fec::detail {

namespace {

inline __m128i product16(__m128i v, __m128i tlo, __m128i thi, __m128i mask) {
  const __m128i lo = _mm_and_si128(v, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
  return _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
}

}  // namespace

void mul_region_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, std::uint8_t c) {
  if (c == 0) {
    const __m128i zero = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), zero);
    for (; i < n; ++i) dst[i] = 0;
    return;
  }
  const NibbleTables& t = nibble_tables();
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     product16(v, tlo, thi, mask));
  }
  for (; i < n; ++i) dst[i] = nibble_mul(t, c, src[i]);
}

void addmul_region_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t n, std::uint8_t c) {
  if (c == 0) return;
  const NibbleTables& t = nibble_tables();
  const __m128i tlo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo[c]));
  const __m128i thi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, product16(v, tlo, thi, mask)));
  }
  for (; i < n; ++i) dst[i] ^= nibble_mul(t, c, src[i]);
}

}  // namespace rekey::fec::detail

#endif  // REKEY_SIMD_X86
