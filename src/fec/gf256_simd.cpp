#include "fec/gf256_simd.h"

#include <cstdio>
#include <string>

#include "common/env.h"
#include "fec/gf256.h"
#include "fec/gf256_simd_tables.h"

namespace rekey::fec {

namespace detail {

const NibbleTables& nibble_tables() {
  static const NibbleTables t = [] {
    NibbleTables nt;
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned x = 0; x < 16; ++x) {
        nt.lo[c][x] = GF256::mul(static_cast<std::uint8_t>(c),
                                 static_cast<std::uint8_t>(x));
        nt.hi[c][x] = GF256::mul(static_cast<std::uint8_t>(c),
                                 static_cast<std::uint8_t>(x << 4));
      }
    }
    return nt;
  }();
  return t;
}

void mul_region_scalar(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n, std::uint8_t c) {
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    if (dst != src)
      for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    return;
  }
  const NibbleTables& t = nibble_tables();
  for (std::size_t i = 0; i < n; ++i) dst[i] = nibble_mul(t, c, src[i]);
}

void addmul_region_scalar(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n, std::uint8_t c) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const NibbleTables& t = nibble_tables();
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= nibble_mul(t, c, src[i]);
}

}  // namespace detail

namespace {

constexpr RegionKernels kScalarKernels{detail::mul_region_scalar,
                                       detail::addmul_region_scalar};
#if defined(REKEY_SIMD_X86)
constexpr RegionKernels kSsse3Kernels{detail::mul_region_ssse3,
                                      detail::addmul_region_ssse3};
constexpr RegionKernels kAvx2Kernels{detail::mul_region_avx2,
                                     detail::addmul_region_avx2};
#endif
#if defined(REKEY_SIMD_NEON)
constexpr RegionKernels kNeonKernels{detail::mul_region_neon,
                                     detail::addmul_region_neon};
#endif

SimdPath detect_best_path() {
#if defined(REKEY_SIMD_X86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdPath::kAvx2;
  if (__builtin_cpu_supports("ssse3")) return SimdPath::kSsse3;
#endif
#if defined(REKEY_SIMD_NEON)
  return SimdPath::kNeon;  // NEON is baseline on aarch64
#endif
  return SimdPath::kScalar;
}

struct ActiveState {
  SimdPath path;
  const RegionKernels* kernels;
};

ActiveState resolve_active() {
  SimdPath path = detect_best_path();
  if (const auto env = rekey::env::raw("REKEY_SIMD")) {
    const std::string_view v = *env;
    if (!v.empty() && v != "auto" && v != "native") {
      const auto requested = parse_simd_name(v);
      if (requested.has_value() && simd_path_supported(*requested)) {
        path = *requested;
      } else {
        rekey::env::warn_once(
            "REKEY_SIMD", "REKEY_SIMD=" + std::string(v) +
                              " is not a supported path on this build/CPU; "
                              "using " + simd_path_name(path));
      }
    }
  }
  return {path, &region_kernels(path)};
}

ActiveState& active_state() {
  static ActiveState s = resolve_active();
  return s;
}

}  // namespace

const char* simd_path_name(SimdPath path) {
  switch (path) {
    case SimdPath::kScalar: return "scalar";
    case SimdPath::kSsse3: return "ssse3";
    case SimdPath::kAvx2: return "avx2";
    case SimdPath::kNeon: return "neon";
  }
  return "?";
}

std::optional<SimdPath> parse_simd_name(std::string_view name) {
  if (name == "scalar") return SimdPath::kScalar;
  if (name == "ssse3") return SimdPath::kSsse3;
  if (name == "avx2") return SimdPath::kAvx2;
  if (name == "neon") return SimdPath::kNeon;
  return std::nullopt;
}

bool simd_path_compiled(SimdPath path) {
  switch (path) {
    case SimdPath::kScalar:
      return true;
    case SimdPath::kSsse3:
    case SimdPath::kAvx2:
#if defined(REKEY_SIMD_X86)
      return true;
#else
      return false;
#endif
    case SimdPath::kNeon:
#if defined(REKEY_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool simd_path_supported(SimdPath path) {
  if (!simd_path_compiled(path)) return false;
#if defined(REKEY_SIMD_X86)
  if (path == SimdPath::kSsse3 || path == SimdPath::kAvx2) {
    __builtin_cpu_init();
    return path == SimdPath::kAvx2 ? __builtin_cpu_supports("avx2") != 0
                                   : __builtin_cpu_supports("ssse3") != 0;
  }
#endif
  return true;
}

std::vector<SimdPath> supported_simd_paths() {
  std::vector<SimdPath> out;
  for (const SimdPath p : {SimdPath::kScalar, SimdPath::kSsse3,
                           SimdPath::kAvx2, SimdPath::kNeon}) {
    if (simd_path_supported(p)) out.push_back(p);
  }
  return out;
}

const RegionKernels& region_kernels(SimdPath path) {
  REKEY_ENSURE_MSG(simd_path_supported(path),
                   "requested SIMD path not supported on this build/CPU");
  switch (path) {
#if defined(REKEY_SIMD_X86)
    case SimdPath::kSsse3: return kSsse3Kernels;
    case SimdPath::kAvx2: return kAvx2Kernels;
#endif
#if defined(REKEY_SIMD_NEON)
    case SimdPath::kNeon: return kNeonKernels;
#endif
    default: return kScalarKernels;
  }
}

SimdPath active_simd_path() { return active_state().path; }

SimdPath force_simd_path(SimdPath path) {
  ActiveState& s = active_state();
  const SimdPath prev = s.path;
  s = {path, &region_kernels(path)};
  return prev;
}

void mul_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                std::uint8_t c) {
  active_state().kernels->mul(dst, src, n, c);
}

void addmul_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                   std::uint8_t c) {
  active_state().kernels->addmul(dst, src, n, c);
}

}  // namespace rekey::fec
