// Dense matrices over GF(2^8) with Gaussian elimination, used to build and
// invert the decoding matrix of the Reed-Solomon erasure coder.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rekey::fec {

class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::uint8_t& at(std::size_t r, std::size_t c);
  std::uint8_t at(std::size_t r, std::size_t c) const;

  // Contiguous row r (cols() bytes) — rows are the unit the elimination
  // inner loops feed to the vectorized region kernels.
  std::uint8_t* row(std::size_t r);
  const std::uint8_t* row(std::size_t r) const;

  Matrix multiply(const Matrix& other) const;

  // Inverse via Gauss-Jordan; nullopt for singular matrices.
  std::optional<Matrix> inverted() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::uint8_t> data_;
};

}  // namespace rekey::fec
