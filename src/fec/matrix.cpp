#include "fec/matrix.h"

#include "common/ensure.h"
#include "fec/gf256.h"

namespace rekey::fec {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {
  REKEY_ENSURE(rows > 0 && cols > 0);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

std::uint8_t& Matrix::at(std::size_t r, std::size_t c) {
  REKEY_ENSURE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::uint8_t Matrix::at(std::size_t r, std::size_t c) const {
  REKEY_ENSURE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix Matrix::multiply(const Matrix& other) const {
  REKEY_ENSURE(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) =
            GF256::add(out.at(i, j), GF256::mul(a, other.at(k, j)));
      }
    }
  }
  return out;
}

std::optional<Matrix> Matrix::inverted() const {
  REKEY_ENSURE(rows_ == cols_);
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.at(pivot, j), a.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    // Normalize the pivot row.
    const std::uint8_t p = a.at(col, col);
    if (p != 1) {
      const std::uint8_t pinv = GF256::inv(p);
      for (std::size_t j = 0; j < n; ++j) {
        a.at(col, j) = GF256::mul(a.at(col, j), pinv);
        inv.at(col, j) = GF256::mul(inv.at(col, j), pinv);
      }
    }
    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t f = a.at(r, col);
      if (f == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a.at(r, j) = GF256::add(a.at(r, j), GF256::mul(f, a.at(col, j)));
        inv.at(r, j) =
            GF256::add(inv.at(r, j), GF256::mul(f, inv.at(col, j)));
      }
    }
  }
  return inv;
}

}  // namespace rekey::fec
