#include "fec/matrix.h"

#include <algorithm>

#include "common/ensure.h"
#include "fec/gf256.h"
#include "fec/gf256_simd.h"

namespace rekey::fec {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {
  REKEY_ENSURE(rows > 0 && cols > 0);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

std::uint8_t& Matrix::at(std::size_t r, std::size_t c) {
  REKEY_ENSURE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::uint8_t Matrix::at(std::size_t r, std::size_t c) const {
  REKEY_ENSURE(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

std::uint8_t* Matrix::row(std::size_t r) {
  REKEY_ENSURE(r < rows_);
  return data_.data() + r * cols_;
}

const std::uint8_t* Matrix::row(std::size_t r) const {
  REKEY_ENSURE(r < rows_);
  return data_.data() + r * cols_;
}

Matrix Matrix::multiply(const Matrix& other) const {
  REKEY_ENSURE(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const std::uint8_t a = at(i, k);
      if (a == 0) continue;
      addmul_region(out.row(i), other.row(k), other.cols_, a);
    }
  }
  return out;
}

std::optional<Matrix> Matrix::inverted() const {
  REKEY_ENSURE(rows_ == cols_);
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot.
    std::size_t pivot = col;
    while (pivot < n && a.at(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;
    if (pivot != col) {
      std::swap_ranges(a.row(pivot), a.row(pivot) + n, a.row(col));
      std::swap_ranges(inv.row(pivot), inv.row(pivot) + n, inv.row(col));
    }
    // Normalize the pivot row (in-place region scale: dst == src is a
    // supported aliasing mode of the kernels).
    const std::uint8_t p = a.at(col, col);
    if (p != 1) {
      const std::uint8_t pinv = GF256::inv(p);
      mul_region(a.row(col), a.row(col), n, pinv);
      mul_region(inv.row(col), inv.row(col), n, pinv);
    }
    // Eliminate the column everywhere else, a whole row per pass.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t f = a.at(r, col);
      if (f == 0) continue;
      addmul_region(a.row(r), a.row(col), n, f);
      addmul_region(inv.row(r), inv.row(col), n, f);
    }
  }
  return inv;
}

}  // namespace rekey::fec
