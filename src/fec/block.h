// Block partitioning of a rekey message (paper §5).
//
// The h ENC packets of a rekey message are partitioned, in generation
// order, into blocks of exactly k packets. The last block is filled by
// duplicating earlier ENC packets of that block (flagged as duplicates so
// they join FEC decoding but not block-id estimation). The send order
// interleaves across blocks so two packets of the same block are separated
// by ~num_blocks send slots, decorrelating them under burst loss.
#pragma once

#include <cstddef>
#include <vector>

namespace rekey::fec {

struct BlockSlot {
  std::size_t block = 0;      // block id
  std::size_t seq = 0;        // sequence number within the block
  std::size_t packet = 0;     // index into the original ENC packet list
  bool duplicate = false;     // last-block filler
};

class BlockPartition {
 public:
  // Partition `num_packets` ENC packets into blocks of size k.
  // Requires num_packets >= 1 and k >= 1.
  BlockPartition(std::size_t num_packets, std::size_t k);

  std::size_t num_packets() const { return num_packets_; }
  std::size_t k() const { return k_; }
  std::size_t num_blocks() const { return num_blocks_; }
  // Total slots actually sent as ENC packets: num_blocks * k
  // (>= num_packets because of last-block duplicates).
  std::size_t num_slots() const { return num_blocks_ * k_; }

  // Block that original packet `p` belongs to.
  std::size_t block_of_packet(std::size_t p) const;
  // Sequence number of original packet `p` within its block.
  std::size_t seq_of_packet(std::size_t p) const;

  // The slot at (block, seq) — resolves last-block duplicates.
  BlockSlot slot(std::size_t block, std::size_t seq) const;

  // All slots in interleaved send order:
  // (b0,s0), (b1,s0), ..., (bN,s0), (b0,s1), (b1,s1), ...
  std::vector<BlockSlot> interleaved_order() const;

  // All slots in sequential order (block by block), for comparison
  // experiments on burst-loss sensitivity.
  std::vector<BlockSlot> sequential_order() const;

 private:
  std::size_t num_packets_;
  std::size_t k_;
  std::size_t num_blocks_;
};

}  // namespace rekey::fec
