// Internal to the GF(2^8) SIMD layer: the split-nibble product tables and
// the per-ISA kernel entry points. The ISA translation units are compiled
// with their own -m flags, so nothing outside the kernel functions may
// live there; dispatch and table construction stay in gf256_simd.cpp.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rekey::fec::detail {

// For every coefficient c: lo[c][x] = c * x and hi[c][x] = c * (x << 4)
// over GF(2^8)/0x11D, so c * b == lo[c][b & 0xF] ^ hi[c][b >> 4]. Each
// half-table is one 16-byte shuffle operand. 8 KiB total, built once.
struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};

const NibbleTables& nibble_tables();

void mul_region_scalar(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t n, std::uint8_t c);
void addmul_region_scalar(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n, std::uint8_t c);

#if defined(REKEY_SIMD_X86)
void mul_region_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, std::uint8_t c);
void addmul_region_ssse3(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t n, std::uint8_t c);
void mul_region_avx2(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n, std::uint8_t c);
void addmul_region_avx2(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t n, std::uint8_t c);
#endif

#if defined(REKEY_SIMD_NEON)
void mul_region_neon(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n, std::uint8_t c);
void addmul_region_neon(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t n, std::uint8_t c);
#endif

// Scalar tail shared by the vector kernels: products via the same nibble
// tables, so tails cost two loads + one xor per byte.
inline std::uint8_t nibble_mul(const NibbleTables& t, std::uint8_t c,
                               std::uint8_t b) {
  return static_cast<std::uint8_t>(t.lo[c][b & 0x0F] ^ t.hi[c][b >> 4]);
}

}  // namespace rekey::fec::detail
