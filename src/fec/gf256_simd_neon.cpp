// NEON split-nibble GF(2^8) region kernels: 16 products per `vqtbl1q_u8`
// pair. NEON is baseline on aarch64, so no per-file -m flag is needed;
// the file is only added to the build on arm64 targets.
#if defined(REKEY_SIMD_NEON)

#include <arm_neon.h>

#include "fec/gf256_simd_tables.h"

namespace rekey::fec::detail {

namespace {

inline uint8x16_t product16(uint8x16_t v, uint8x16_t tlo, uint8x16_t thi) {
  const uint8x16_t lo = vandq_u8(v, vdupq_n_u8(0x0F));
  const uint8x16_t hi = vshrq_n_u8(v, 4);
  return veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi));
}

}  // namespace

void mul_region_neon(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n, std::uint8_t c) {
  if (c == 0) {
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) vst1q_u8(dst + i, vdupq_n_u8(0));
    for (; i < n; ++i) dst[i] = 0;
    return;
  }
  const NibbleTables& t = nibble_tables();
  const uint8x16_t tlo = vld1q_u8(t.lo[c]);
  const uint8x16_t thi = vld1q_u8(t.hi[c]);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16)
    vst1q_u8(dst + i, product16(vld1q_u8(src + i), tlo, thi));
  for (; i < n; ++i) dst[i] = nibble_mul(t, c, src[i]);
}

void addmul_region_neon(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t n, std::uint8_t c) {
  if (c == 0) return;
  const NibbleTables& t = nibble_tables();
  const uint8x16_t tlo = vld1q_u8(t.lo[c]);
  const uint8x16_t thi = vld1q_u8(t.hi[c]);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t prod = product16(vld1q_u8(src + i), tlo, thi);
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] ^= nibble_mul(t, c, src[i]);
}

}  // namespace rekey::fec::detail

#endif  // REKEY_SIMD_NEON
