// Systematic Reed-Solomon erasure coder (RSE) in the style of Rizzo '97.
//
// A block of k equal-length data packets is extended with parity packets;
// any k of the (data + parity) packets reconstruct the block (MDS). Parity
// rows come from a Cauchy matrix over GF(2^8), whose square submatrices are
// all nonsingular, so the systematic generator [I; C] is MDS by
// construction. Up to 256 - k distinct parity packets can be generated per
// block, which comfortably covers the protocol's multi-round reactive
// parities (fresh parity indices every round).
//
// Cost model (relied upon by experiment F8/A4): encoding one parity packet
// costs Theta(k * packet_size), i.e. per-parity time linear in block size.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"

namespace rekey::fec {

struct Shard {
  // index < k: data packet #index; index >= k: parity packet #(index - k).
  int index = 0;
  Bytes payload;
};

class RseCoder {
 public:
  explicit RseCoder(int k);

  int k() const { return k_; }
  int max_parity() const { return 256 - k_; }

  // Parity packet #parity_index (0-based) over the k data packets, which
  // must all have equal size.
  Bytes encode_one(std::span<const Bytes> data, int parity_index) const;

  // Same, into a caller-owned buffer of exactly the packet size —
  // the allocation-free form the server's block encode path uses.
  void encode_one_into(std::span<const Bytes> data, int parity_index,
                       std::span<std::uint8_t> out) const;

  // Parities [first, first + count).
  std::vector<Bytes> encode(std::span<const Bytes> data, int first,
                            int count) const;

  // Reconstruct the k data packets from any >= k distinct shards.
  // Returns nullopt if fewer than k distinct shard indices are present.
  std::optional<std::vector<Bytes>> decode(
      std::span<const Shard> shards) const;

 private:
  std::uint8_t coeff(int parity_index, int data_index) const;

  int k_;
};

}  // namespace rekey::fec
