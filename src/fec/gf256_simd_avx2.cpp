// AVX2 split-nibble GF(2^8) region kernels: 32 products per `vpshufb`
// pair (the 16-byte half-tables are broadcast into both lanes). This file
// alone is compiled with -mavx2; only leaf kernels may live here.
#if defined(REKEY_SIMD_X86)

#include <immintrin.h>

#include "fec/gf256_simd_tables.h"

namespace rekey::fec::detail {

namespace {

inline __m256i product32(__m256i v, __m256i tlo, __m256i thi, __m256i mask) {
  const __m256i lo = _mm256_and_si256(v, mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
  return _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                          _mm256_shuffle_epi8(thi, hi));
}

inline __m256i broadcast_table(const std::uint8_t* table16) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(table16)));
}

}  // namespace

void mul_region_avx2(std::uint8_t* dst, const std::uint8_t* src,
                     std::size_t n, std::uint8_t c) {
  if (c == 0) {
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), zero);
    for (; i < n; ++i) dst[i] = 0;
    return;
  }
  const NibbleTables& t = nibble_tables();
  const __m256i tlo = broadcast_table(t.lo[c]);
  const __m256i thi = broadcast_table(t.hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        product32(v, tlo, thi, mask));
  }
  for (; i < n; ++i) dst[i] = nibble_mul(t, c, src[i]);
}

void addmul_region_avx2(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t n, std::uint8_t c) {
  if (c == 0) return;
  const NibbleTables& t = nibble_tables();
  const __m256i tlo = broadcast_table(t.lo[c]);
  const __m256i thi = broadcast_table(t.hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, product32(v, tlo, thi, mask)));
  }
  for (; i < n; ++i) dst[i] ^= nibble_mul(t, c, src[i]);
}

}  // namespace rekey::fec::detail

#endif  // REKEY_SIMD_X86
