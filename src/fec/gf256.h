// Arithmetic over GF(2^8) with the AES/Rizzo polynomial x^8+x^4+x^3+x^2+1
// (0x11D), via exp/log tables. This is the field underlying the
// Reed-Solomon erasure coder used for PARITY packets.
#pragma once

#include <cstdint>
#include <span>

namespace rekey::fec {

class GF256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return a ^ b;  // characteristic 2: add == subtract == XOR
  }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);  // b != 0
  static std::uint8_t inv(std::uint8_t a);                  // a != 0
  static std::uint8_t pow(std::uint8_t a, unsigned e);

  // dst[i] ^= c * src[i] — the hot loop of encode/decode. Dispatches to
  // the vectorized region kernels (fec/gf256_simd.h).
  static void add_scaled(std::span<std::uint8_t> dst,
                         std::span<const std::uint8_t> src, std::uint8_t c);

  // Exponential of the generator alpha=2: alpha^e with e taken mod 255.
  static std::uint8_t exp(unsigned e);
  // Discrete log base alpha of a != 0.
  static unsigned log(std::uint8_t a);
};

}  // namespace rekey::fec
