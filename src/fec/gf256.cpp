#include "fec/gf256.h"

#include <array>

#include "common/ensure.h"
#include "fec/gf256_simd.h"

namespace rekey::fec {

namespace {

struct Tables {
  // exp_ is doubled so mul can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp_;
  std::array<std::uint16_t, 256> log_;

  Tables() {
    constexpr unsigned kPoly = 0x11D;
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp_[i] = static_cast<std::uint8_t>(x);
      log_[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= kPoly;
    }
    for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // unused; log(0) is rejected by callers
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t GF256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp_[t.log_[a] + t.log_[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) {
  REKEY_ENSURE_MSG(a != 0, "inverse of zero in GF(256)");
  const auto& t = tables();
  return t.exp_[255 - t.log_[a]];
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) {
  REKEY_ENSURE_MSG(b != 0, "division by zero in GF(256)");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

std::uint8_t GF256::pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[(static_cast<unsigned long long>(t.log_[a]) * e) % 255];
}

std::uint8_t GF256::exp(unsigned e) { return tables().exp_[e % 255]; }

unsigned GF256::log(std::uint8_t a) {
  REKEY_ENSURE_MSG(a != 0, "log of zero in GF(256)");
  return tables().log_[a];
}

void GF256::add_scaled(std::span<std::uint8_t> dst,
                       std::span<const std::uint8_t> src, std::uint8_t c) {
  REKEY_ENSURE(dst.size() == src.size());
  addmul_region(dst.data(), src.data(), dst.size(), c);
}

}  // namespace rekey::fec
