#include "fec/block.h"

#include "common/ensure.h"

namespace rekey::fec {

BlockPartition::BlockPartition(std::size_t num_packets, std::size_t k)
    : num_packets_(num_packets), k_(k), num_blocks_(0) {
  REKEY_ENSURE(num_packets >= 1);
  REKEY_ENSURE(k >= 1);
  num_blocks_ = (num_packets + k - 1) / k;
}

std::size_t BlockPartition::block_of_packet(std::size_t p) const {
  REKEY_ENSURE(p < num_packets_);
  return p / k_;
}

std::size_t BlockPartition::seq_of_packet(std::size_t p) const {
  REKEY_ENSURE(p < num_packets_);
  return p % k_;
}

BlockSlot BlockPartition::slot(std::size_t block, std::size_t seq) const {
  REKEY_ENSURE(block < num_blocks_);
  REKEY_ENSURE(seq < k_);
  BlockSlot s;
  s.block = block;
  s.seq = seq;
  const std::size_t linear = block * k_ + seq;
  if (linear < num_packets_) {
    s.packet = linear;
    s.duplicate = false;
  } else {
    // Fill the last block by cycling over the real packets of that block.
    const std::size_t first = block * k_;
    const std::size_t real = num_packets_ - first;  // >= 1
    s.packet = first + (linear - num_packets_) % real;
    s.duplicate = true;
  }
  return s;
}

std::vector<BlockSlot> BlockPartition::interleaved_order() const {
  std::vector<BlockSlot> order;
  order.reserve(num_slots());
  for (std::size_t seq = 0; seq < k_; ++seq)
    for (std::size_t b = 0; b < num_blocks_; ++b)
      order.push_back(slot(b, seq));
  return order;
}

std::vector<BlockSlot> BlockPartition::sequential_order() const {
  std::vector<BlockSlot> order;
  order.reserve(num_slots());
  for (std::size_t b = 0; b < num_blocks_; ++b)
    for (std::size_t seq = 0; seq < k_; ++seq)
      order.push_back(slot(b, seq));
  return order;
}

}  // namespace rekey::fec
