// GroupKeyService — the public facade a downstream application uses.
//
// It bundles the three components of a group key management system
// (paper §1): registration (member admission, individual keys), key
// management (the key tree + marking algorithm), and rekey transport
// (either ideal in-process delivery, or the full simulated multicast +
// unicast protocol over a Topology).
//
// Usage:
//   GroupKeyService svc({.degree = 4});
//   auto alice = svc.bootstrap_members(64);     // initial group
//   svc.request_join(svc.register_member());
//   svc.request_leave(alice[3]);
//   auto report = svc.rekey_interval();         // batch rekey, delivery
//   // every member's group_key() now equals svc.group_key()
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/parallel.h"
#include "core/member.h"
#include "keytree/marking.h"
#include "keytree/shard.h"
#include "simnet/topology.h"
#include "transport/metrics.h"
#include "transport/session.h"

namespace rekey::core {

struct ServiceConfig {
  unsigned degree = 4;
  std::uint64_t key_seed = 0xC0FFEE;
  transport::ProtocolConfig protocol;  // used only with simulated delivery
  // Sharded batch pipeline (keytree/shard.h). shards > 1 partitions
  // marking, payload generation, and packet assignment into per-shard
  // tasks; worker_threads > 1 gives those tasks a pool. Output is
  // bit-identical to the serial pipeline for every setting — the defaults
  // (1, 1) run the exact serial path.
  unsigned shards = 1;          // power of two in [1, 256]
  unsigned worker_threads = 1;  // 0 picks default_thread_count()
};

struct IntervalReport {
  std::uint32_t msg_id = 0;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t encryptions = 0;
  std::size_t enc_packets = 0;
  double duplication_overhead = 0.0;
  // Present only for simulated (lossy) delivery.
  std::optional<transport::MessageMetrics> transport;
};

class GroupKeyService {
 public:
  explicit GroupKeyService(const ServiceConfig& config);

  // Registration: allocate a member id and credentials. The member is not
  // in the group until request_join + the next rekey interval.
  tree::MemberId register_member();

  // Build the initial group of n members (bootstrap hands each its full
  // path keys over the registration channel). Requires an empty group.
  std::vector<tree::MemberId> bootstrap_members(std::size_t n);

  void request_join(tree::MemberId m);   // must be registered, not in group
  void request_leave(tree::MemberId m);  // must be in group

  // Process the batch collected so far and deliver new keys to all member
  // views in-process (ideal transport). Returns the interval report.
  IntervalReport rekey_interval();

  // Same, but deliver over the simulated network with the full multicast +
  // unicast protocol; member views are fed from actual decoded packets.
  IntervalReport rekey_interval_over(simnet::Topology& topology);

  std::size_t group_size() const { return tree_.num_users(); }
  const crypto::SymmetricKey& group_key() const { return tree_.group_key(); }
  const tree::KeyTree& tree() const { return tree_; }

  bool has_member(tree::MemberId m) const { return members_.count(m) != 0; }
  GroupMember& member(tree::MemberId m);
  const GroupMember& member(tree::MemberId m) const;

  std::uint32_t intervals_completed() const { return next_msg_id_; }

  // Crash recovery: serialize the server's key-management state (the key
  // tree plus counters; pending join/leave requests are intentionally
  // dropped — clients re-request, as after any registration timeout).
  Bytes snapshot() const;
  // Rebuild a service from a snapshot. Member views are reconstructed
  // from the tree (the key server knows every key); returns nullopt for
  // corrupt or truncated blobs.
  static std::optional<GroupKeyService> restore(const Bytes& blob,
                                                const ServiceConfig& config);

 private:
  IntervalReport run_batch(simnet::Topology* topology);

  ServiceConfig config_;
  tree::KeyTree tree_;
  // Present when the config asks for the sharded pipeline.
  std::optional<tree::ShardPlan> plan_;
  std::unique_ptr<rekey::ThreadPool> pool_;
  tree::MemberId next_member_ = 0;
  std::uint32_t next_msg_id_ = 0;
  std::vector<tree::MemberId> pending_joins_;
  std::vector<tree::MemberId> pending_leaves_;
  std::map<tree::MemberId, GroupMember> members_;
  // Transport sim time consumed so far: each interval's session resumes
  // here so the caller's persistent topology is queried monotonically.
  // Transient sim state — deliberately not part of snapshot().
  double transport_clock_ms_ = 0.0;
  transport::RhoController rho_;
  // Reused by bootstrap/restore so credential hand-out does not allocate
  // per member.
  std::vector<std::pair<tree::NodeId, crypto::SymmetricKey>> keys_scratch_;
};

}  // namespace rekey::core
