#include "core/service.h"

#include <algorithm>
#include <chrono>

#include "common/ensure.h"
#include "common/obs.h"
#include "keytree/shard_pipeline.h"
#include "keytree/snapshot.h"
#include "packet/assign.h"

namespace rekey::core {

GroupKeyService::GroupKeyService(const ServiceConfig& config)
    : config_(config),
      tree_(config.degree, config.key_seed),
      rho_(config.protocol, config.key_seed ^ 0x5EED) {
  if (config.shards > 1 || config.worker_threads != 1) {
    plan_ = tree::ShardPlan::make(config.degree,
                                  std::max(1u, config.shards));
    const unsigned threads = config.worker_threads;
    if (threads != 1) pool_ = std::make_unique<rekey::ThreadPool>(threads);
  }
}

tree::MemberId GroupKeyService::register_member() { return next_member_++; }

std::vector<tree::MemberId> GroupKeyService::bootstrap_members(std::size_t n) {
  REKEY_ENSURE_MSG(tree_.empty(), "bootstrap requires an empty group");
  const tree::MemberId first = next_member_;
  tree_.populate(n, first);
  next_member_ += static_cast<tree::MemberId>(n);

  std::vector<tree::MemberId> out;
  out.reserve(n);
  // One scratch buffer serves every member: keys_for_slot_into refills it
  // in place, so handing out n credential sets costs one allocation, not n.
  for (std::size_t i = 0; i < n; ++i) {
    const tree::MemberId m = first + static_cast<tree::MemberId>(i);
    const tree::NodeId slot = tree_.slot_of(m);
    tree_.keys_for_slot_into(slot, keys_scratch_);
    members_.emplace(m, GroupMember(m, slot, config_.degree, keys_scratch_));
    out.push_back(m);
  }
  return out;
}

void GroupKeyService::request_join(tree::MemberId m) {
  REKEY_ENSURE_MSG(m < next_member_, "member not registered");
  REKEY_ENSURE_MSG(!tree_.has_member(m), "member already in the group");
  REKEY_ENSURE_MSG(
      std::find(pending_joins_.begin(), pending_joins_.end(), m) ==
          pending_joins_.end(),
      "join already pending");
  pending_joins_.push_back(m);
}

void GroupKeyService::request_leave(tree::MemberId m) {
  REKEY_ENSURE_MSG(tree_.has_member(m), "member not in the group");
  REKEY_ENSURE_MSG(
      std::find(pending_leaves_.begin(), pending_leaves_.end(), m) ==
          pending_leaves_.end(),
      "leave already pending");
  pending_leaves_.push_back(m);
}

GroupMember& GroupKeyService::member(tree::MemberId m) {
  const auto it = members_.find(m);
  REKEY_ENSURE_MSG(it != members_.end(), "unknown member");
  return it->second;
}

const GroupMember& GroupKeyService::member(tree::MemberId m) const {
  const auto it = members_.find(m);
  REKEY_ENSURE_MSG(it != members_.end(), "unknown member");
  return it->second;
}

IntervalReport GroupKeyService::run_batch(simnet::Topology* topology) {
  IntervalReport report;
  report.msg_id = next_msg_id_;
  report.joins = pending_joins_.size();
  report.leaves = pending_leaves_.size();
  if (pending_joins_.empty() && pending_leaves_.empty()) return report;

  const auto batch_start = std::chrono::steady_clock::now();

  tree::Marker marker(tree_);
  rekey::TaskRunner runner(pool_.get());
  const tree::BatchUpdate update =
      plan_.has_value()
          ? marker.run_sharded(pending_joins_, pending_leaves_, *plan_,
                               runner)
          : marker.run(pending_joins_, pending_leaves_);
  pending_joins_.clear();
  pending_leaves_.clear();

  // Departed members lose their views; joined members get fresh ones with
  // only their individual key (path keys arrive via the rekey message).
  for (const auto& [m, slot] : update.departed) members_.erase(m);
  for (const auto& [m, slot] : update.joined) {
    const std::pair<tree::NodeId, crypto::SymmetricKey> cred{
        slot, tree_.key_of(slot)};
    members_.emplace(
        m, GroupMember(m, slot, config_.degree, std::span(&cred, 1)));
  }

  tree::RekeyPayload payload;
  if (plan_.has_value())
    tree::generate_rekey_payload_sharded(tree_, update, next_msg_id_,
                                         payload, *plan_, runner);
  else
    tree::generate_rekey_payload_into(tree_, update, next_msg_id_, payload);
  report.encryptions = payload.encryptions.size();

  packet::Assignment assignment =
      plan_.has_value()
          ? packet::assign_keys(payload, config_.protocol.packet_size,
                                *plan_, runner)
          : packet::assign_keys(payload, config_.protocol.packet_size);
  report.enc_packets = assignment.packets.size();
  report.duplication_overhead = assignment.duplication_overhead();

  // Server-side batch cost (marking + payload generation + UKA), before
  // any delivery.
  {
    const auto batch_end = std::chrono::steady_clock::now();
    const double us = std::chrono::duration<double, std::micro>(
                          batch_end - batch_start)
                          .count();
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("keyserver.batches").add();
    reg.counter("keyserver.encryptions").add(payload.encryptions.size());
    reg.counter("keyserver.nodes_touched").add(update.changed_knodes.size());
    reg.histogram("keyserver.batch_us").observe(us);
    reg.gauge("keyserver.arena_bytes")
        .set(static_cast<double>(tree_.arena_bytes()));
  }

  if (topology == nullptr) {
    // Ideal in-process delivery: every view filters the full list.
    for (auto& [m, member] : members_)
      member.apply_rekey(payload.msg_id, payload.max_kid,
                         payload.encryptions);
  } else {
    // Full protocol over the simulated network.
    const std::vector<tree::NodeId> slots = tree_.user_slots();
    std::map<tree::NodeId, tree::NodeId> old_of_new;
    for (const auto& [old_slot, new_slot] : update.moved)
      old_of_new.emplace(new_slot, old_slot);
    std::vector<std::uint16_t> old_ids;
    old_ids.reserve(slots.size());
    for (const tree::NodeId slot : slots) {
      const auto it = old_of_new.find(slot);
      old_ids.push_back(static_cast<std::uint16_t>(
          it == old_of_new.end() ? slot : it->second));
    }

    transport::RekeySession session(*topology, config_.protocol, rho_);
    // The topology's loss processes live across intervals; resume the
    // transport clock so this session's queries stay monotone (starting at
    // zero again would rewind the shared Gilbert chains).
    session.resume_clock_at(transport_clock_ms_);
    auto metrics = session.run_message(
        payload, std::move(assignment), old_ids,
        [&](std::size_t u, const transport::UserTransport& state) {
          const tree::NodeId slot = slots[u];
          const tree::MemberId m = tree_.node(slot).member;
          std::vector<tree::Encryption> encs;
          encs.reserve(state.entries().size());
          for (const packet::EncEntry& e : state.entries())
            encs.push_back(packet::to_tree_encryption(e, config_.degree));
          member(m).apply_rekey(payload.msg_id, payload.max_kid, encs);
        });
    transport_clock_ms_ = session.clock_ms();
    report.transport = std::move(metrics);
  }

  ++next_msg_id_;
  return report;
}

Bytes GroupKeyService::snapshot() const {
  ByteWriter w;
  w.put_u32(next_member_);
  w.put_u32(next_msg_id_);
  const Bytes tree_blob = tree::snapshot_tree(tree_);
  w.put_u32(static_cast<std::uint32_t>(tree_blob.size()));
  w.put_bytes(tree_blob);
  return std::move(w).take();
}

std::optional<GroupKeyService> GroupKeyService::restore(
    const Bytes& blob, const ServiceConfig& config) {
  try {
    ByteReader r(blob);
    const std::uint32_t next_member = r.get_u32();
    const std::uint32_t next_msg = r.get_u32();
    const std::uint32_t tree_len = r.get_u32();
    if (r.remaining() != tree_len) return std::nullopt;
    const Bytes tree_blob = r.get_bytes(tree_len);
    auto restored_tree =
        tree::restore_tree(tree_blob, config.key_seed ^ next_msg);
    if (!restored_tree.has_value()) return std::nullopt;
    if (restored_tree->degree() != config.degree) return std::nullopt;

    GroupKeyService svc(config);
    svc.tree_ = std::move(*restored_tree);
    svc.next_member_ = next_member;
    svc.next_msg_id_ = next_msg;
    // Rebuild member objects with full path keys — the server holds every
    // key, so reconstruction is exact. The scratch buffer is refilled per
    // slot (one allocation for the whole loop).
    svc.tree_.for_each_user_slot([&](tree::NodeId slot) {
      const tree::MemberId m = svc.tree_.node(slot).member;
      svc.tree_.keys_for_slot_into(slot, svc.keys_scratch_);
      svc.members_.emplace(
          m, GroupMember(m, slot, config.degree, svc.keys_scratch_));
    });
    return svc;
  } catch (const EnsureError&) {
    return std::nullopt;
  }
}

IntervalReport GroupKeyService::rekey_interval() { return run_batch(nullptr); }

IntervalReport GroupKeyService::rekey_interval_over(
    simnet::Topology& topology) {
  return run_batch(&topology);
}

}  // namespace rekey::core
