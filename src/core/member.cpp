#include "core/member.h"

namespace rekey::core {

GroupMember::GroupMember(
    tree::MemberId id, tree::NodeId slot, unsigned degree,
    std::span<const std::pair<tree::NodeId, crypto::SymmetricKey>>
        registration_keys)
    : id_(id), view_(id, slot, degree, registration_keys) {}

}  // namespace rekey::core
