// A group member as seen by an application: its stable member id and a
// UserKeyView that tracks the keys it holds as rekey messages are applied.
//
// Members created at group bootstrap are handed their full path keys by
// the registration component (the paper assumes an authenticated channel,
// e.g. SSL); members joining later receive only their individual key at
// registration — the rekey message of the interval they join in carries
// their entire path (every ancestor of a new slot is a changed k-node).
#pragma once

#include <optional>
#include <span>

#include "keytree/user_view.h"

namespace rekey::core {

class GroupMember {
 public:
  GroupMember(tree::MemberId id, tree::NodeId slot, unsigned degree,
              std::span<const std::pair<tree::NodeId, crypto::SymmetricKey>>
                  registration_keys);

  tree::MemberId id() const { return id_; }
  tree::NodeId current_slot() const { return view_.id(); }

  // The group key as currently known (nullopt until the first rekey
  // message, for members joining mid-stream).
  std::optional<crypto::SymmetricKey> group_key() const {
    return view_.group_key();
  }

  // Apply the encryptions this member extracted from a rekey message (or
  // received in a USR packet). Returns the number of keys learned.
  std::size_t apply_rekey(std::uint32_t msg_id, tree::NodeId max_kid,
                          std::span<const tree::Encryption> encryptions) {
    return view_.apply(msg_id, max_kid, encryptions);
  }

  const tree::UserKeyView& view() const { return view_; }

 private:
  tree::MemberId id_;
  tree::UserKeyView view_;
};

}  // namespace rekey::core
