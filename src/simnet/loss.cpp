#include "simnet/loss.h"

#include "common/ensure.h"

namespace rekey::simnet {

bool BernoulliLoss::lost(double t_ms) {
  REKEY_ENSURE_MSG(!queried_ || t_ms >= last_query_ms_,
                   "BernoulliLoss queried at a backwards time");
  last_query_ms_ = t_ms;
  queried_ = true;
  return rng_.next_bool(p_);
}

GilbertLoss::GilbertLoss(double p, Rng rng, double cycle_ms)
    : p_(p),
      mean_loss_ms_(cycle_ms * p),
      mean_ok_ms_(cycle_ms * (1.0 - p)),
      rng_(rng) {
  REKEY_ENSURE(p >= 0.0 && p <= 1.0);
  if (p_ <= 0.0 || p_ >= 1.0) return;  // degenerate; lost() shortcuts
  // Start in the stationary distribution.
  in_loss_ = rng_.next_bool(p_);
  next_transition_ms_ =
      rng_.next_exponential(in_loss_ ? mean_loss_ms_ : mean_ok_ms_);
}

void GilbertLoss::advance_to(double t_ms) {
  while (next_transition_ms_ <= t_ms) {
    in_loss_ = !in_loss_;
    next_transition_ms_ +=
        rng_.next_exponential(in_loss_ ? mean_loss_ms_ : mean_ok_ms_);
  }
}

bool GilbertLoss::lost(double t_ms) {
  REKEY_ENSURE_MSG(!queried_ || t_ms >= last_query_ms_,
                   "GilbertLoss queried at a backwards time");
  last_query_ms_ = t_ms;
  queried_ = true;
  if (p_ <= 0.0) return false;
  if (p_ >= 1.0) return true;
  advance_to(t_ms);
  return in_loss_;
}

std::unique_ptr<LossProcess> make_loss(bool burst, double p, Rng rng) {
  if (burst) return std::make_unique<GilbertLoss>(p, rng);
  return std::make_unique<BernoulliLoss>(p, rng);
}

}  // namespace rekey::simnet
