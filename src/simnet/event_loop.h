// A minimal discrete-event simulation core.
//
// Time is in milliseconds (double). Events scheduled at equal times fire in
// scheduling order (a monotone sequence number breaks ties), which keeps
// protocol simulations deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rekey::simnet {

class EventLoop {
 public:
  using Action = std::function<void()>;

  double now() const { return now_; }

  // Schedule at an absolute time >= now().
  void schedule_at(double time_ms, Action action);
  // Schedule `delay_ms` from now (delay >= 0).
  void schedule_in(double delay_ms, Action action);

  // Run until the queue drains (or until `max_events`, a runaway guard).
  void run(std::size_t max_events = 100'000'000);
  // Run events with time <= t_ms, then set now() = t_ms.
  void run_until(double t_ms);

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace rekey::simnet
