#include "simnet/topology.h"

#include <algorithm>

#include "common/ensure.h"

namespace rekey::simnet {

Topology::Topology(const TopologyConfig& config, std::uint64_t seed)
    : config_(config) {
  REKEY_ENSURE(config.num_users >= 1);
  REKEY_ENSURE(config.alpha >= 0.0 && config.alpha <= 1.0);
  Rng rng(seed);

  src_down_ = make_loss(config.burst_loss, config.p_source, rng.fork());
  src_up_ = make_loss(config.burst_loss, config.p_source, rng.fork());

  // Exactly floor(alpha * N) high-loss users, spread uniformly.
  const std::size_t num_high =
      static_cast<std::size_t>(config.alpha * config.num_users);
  std::vector<std::uint64_t> picks =
      rng.sample_without_replacement(config.num_users, num_high);
  high_loss_.assign(config.num_users, false);
  for (const std::uint64_t u : picks) high_loss_[u] = true;

  user_down_.reserve(config.num_users);
  user_up_.reserve(config.num_users);
  backbone_delay_ms_.reserve(config.num_users);
  for (std::size_t u = 0; u < config.num_users; ++u) {
    const double p = high_loss_[u] ? config.p_high : config.p_low;
    user_down_.push_back(make_loss(config.burst_loss, p, rng.fork()));
    user_up_.push_back(make_loss(config.burst_loss, p, rng.fork()));
    const double bb = config.backbone_min_ms +
                      rng.next_double() *
                          (config.backbone_max_ms - config.backbone_min_ms);
    backbone_delay_ms_.push_back(bb);
  }
  const double max_bb = backbone_delay_ms_.empty()
                            ? 0.0
                            : *std::max_element(backbone_delay_ms_.begin(),
                                                backbone_delay_ms_.end());
  max_delay_ms_ = 2.0 * config.edge_delay_ms + max_bb;
}

void Topology::install_faults(const FaultPlan& plan, std::uint64_t seed) {
  faults_ = std::make_unique<FaultInjector>(plan, seed, config_.num_users);
}

bool Topology::user_lost(std::size_t user, double t_ms) {
  REKEY_ENSURE(user < user_down_.size());
  if (blacked_out(t_ms)) return true;
  return user_down_[user]->lost(t_ms);
}

bool Topology::user_uplink_lost(std::size_t user, double t_ms) {
  REKEY_ENSURE(user < user_up_.size());
  if (blacked_out(t_ms)) return true;
  return user_up_[user]->lost(t_ms);
}

double Topology::delay_ms(std::size_t user) const {
  REKEY_ENSURE(user < backbone_delay_ms_.size());
  return 2.0 * config_.edge_delay_ms + backbone_delay_ms_[user];
}

}  // namespace rekey::simnet
