// The evaluation topology (paper §5.2, after Nonnenmacher et al.): the key
// server reaches a loss-free backbone through a source link; every user
// hangs off the backbone on its own receiver link. A fraction alpha of the
// users are "high-loss" (p_high), the rest low-loss (p_low); the source
// link has loss rate p_source. Each direction of each link gets an
// independent loss process.
//
// The topology is passive: the transport layer asks it, per packet, whether
// the source link or a given user's link dropped the packet at a given
// time, and what the propagation delays are. This keeps the inner
// simulation loop tight (no per-packet-per-user event scheduling).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "simnet/fault.h"
#include "simnet/loss.h"

namespace rekey::simnet {

struct TopologyConfig {
  std::size_t num_users = 4096;
  double alpha = 0.20;     // fraction of high-loss users
  double p_high = 0.20;    // their receiver-link loss rate
  double p_low = 0.02;     // everyone else's
  double p_source = 0.01;  // source-link loss rate
  bool burst_loss = true;  // two-state Markov (paper) vs Bernoulli
  // One-way propagation delays (ms). Users get a uniform backbone delay in
  // [backbone_min_ms, backbone_max_ms]; links add edge_delay_ms each.
  double backbone_min_ms = 20.0;
  double backbone_max_ms = 80.0;
  double edge_delay_ms = 5.0;
};

class Topology {
 public:
  Topology(const TopologyConfig& config, std::uint64_t seed);

  std::size_t num_users() const { return config_.num_users; }
  const TopologyConfig& config() const { return config_; }

  // Installs a fault-injection layer (simnet/fault.h). Blackout windows
  // apply to every link query below; the finer-grained faults (duplication,
  // reorder, corruption, NACK storms) are consumed by the transport through
  // faults(). During a blackout the underlying loss processes are not
  // queried, so their streams resume unperturbed when the window ends —
  // a scenario stays a pure function of (topology seed, plan, fault seed).
  void install_faults(const FaultPlan& plan, std::uint64_t seed);
  FaultInjector* faults() { return faults_.get(); }

  // Downstream (server -> users).
  bool source_lost(double t_ms) {
    if (blacked_out(t_ms)) return true;
    return src_down_->lost(t_ms);
  }
  bool user_lost(std::size_t user, double t_ms);

  // Upstream (user -> server), independent processes.
  bool user_uplink_lost(std::size_t user, double t_ms);
  bool source_uplink_lost(double t_ms) {
    if (blacked_out(t_ms)) return true;
    return src_up_->lost(t_ms);
  }

  // One-way server->user delay; symmetric paths.
  double delay_ms(std::size_t user) const;
  double max_delay_ms() const { return max_delay_ms_; }
  double rtt_ms(std::size_t user) const { return 2.0 * delay_ms(user); }
  double max_rtt_ms() const { return 2.0 * max_delay_ms_; }

  bool is_high_loss(std::size_t user) const { return high_loss_[user]; }

 private:
  bool blacked_out(double t_ms) {
    if (!faults_ || !faults_->blackout_at(t_ms)) return false;
    faults_->count_blackout_drop();
    return true;
  }

  TopologyConfig config_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<LossProcess> src_down_;
  std::unique_ptr<LossProcess> src_up_;
  std::vector<std::unique_ptr<LossProcess>> user_down_;
  std::vector<std::unique_ptr<LossProcess>> user_up_;
  std::vector<double> backbone_delay_ms_;
  std::vector<bool> high_loss_;
  double max_delay_ms_ = 0.0;
};

}  // namespace rekey::simnet
