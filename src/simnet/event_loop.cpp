#include "simnet/event_loop.h"

#include "common/ensure.h"

namespace rekey::simnet {

void EventLoop::schedule_at(double time_ms, Action action) {
  REKEY_ENSURE_MSG(time_ms >= now_, "event scheduled in the past");
  queue_.push(Event{time_ms, next_seq_++, std::move(action)});
}

void EventLoop::schedule_in(double delay_ms, Action action) {
  REKEY_ENSURE(delay_ms >= 0.0);
  schedule_at(now_ + delay_ms, std::move(action));
}

void EventLoop::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    REKEY_ENSURE_MSG(++fired <= max_events, "event budget exhausted");
    // Copy out before pop: the action may schedule more events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
  }
}

void EventLoop::run_until(double t_ms) {
  REKEY_ENSURE(t_ms >= now_);
  while (!queue_.empty() && queue_.top().time <= t_ms) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
  }
  now_ = t_ms;
}

}  // namespace rekey::simnet
