// Link loss processes.
//
// The paper's evaluation drives links with a two-state continuous-time
// Markov chain (following Nonnenmacher et al.): at loss rate p, the mean
// burst-loss duration is 100*p ms and the mean loss-free duration is
// 100*(1-p) ms, giving a 100 ms mean cycle and stationary loss probability
// exactly p. A memoryless Bernoulli process is provided as the baseline
// used by the analytic transport models.
//
// Processes are queried at (weakly) increasing times — packets on a link
// are sent in time order — and advance their internal state lazily.
#pragma once

#include <memory>

#include "common/rng.h"

namespace rekey::simnet {

class LossProcess {
 public:
  virtual ~LossProcess() = default;
  // Is a transmission at time t_ms (weakly increasing across calls) lost?
  virtual bool lost(double t_ms) = 0;
  virtual double loss_rate() const = 0;
};

class BernoulliLoss final : public LossProcess {
 public:
  BernoulliLoss(double p, Rng rng) : p_(p), rng_(rng) {}
  // Memoryless, so t_ms does not drive the draw — but the class contract
  // (weakly increasing query times) is enforced all the same, keeping
  // every LossProcess behaviorally uniform: a transport path that queries
  // backwards is broken regardless of which process it happens to hit.
  bool lost(double t_ms) override;
  double loss_rate() const override { return p_; }

 private:
  double p_;
  Rng rng_;
  double last_query_ms_ = 0.0;
  bool queried_ = false;
};

class GilbertLoss final : public LossProcess {
 public:
  // p: stationary loss rate; cycle_ms: mean burst + mean gap (100 in the
  // paper). p == 0 or p == 1 degenerate to always-ok / always-lost.
  GilbertLoss(double p, Rng rng, double cycle_ms = 100.0);

  // Enforces the class contract: query times must be weakly increasing.
  // A backwards query would silently freeze the chain's state (advance_to
  // cannot rewind), mis-correlating losses — throwing is strictly better.
  bool lost(double t_ms) override;
  double loss_rate() const override { return p_; }

 private:
  void advance_to(double t_ms);

  double p_;
  double mean_loss_ms_;
  double mean_ok_ms_;
  Rng rng_;
  bool in_loss_ = false;
  double next_transition_ms_ = 0.0;
  double last_query_ms_ = 0.0;
  bool queried_ = false;
};

// Factory matching the experiment configuration.
std::unique_ptr<LossProcess> make_loss(bool burst, double p, Rng rng);

}  // namespace rekey::simnet
