// Deterministic fault injection for the simulated network.
//
// The evaluation topology models loss only; a production key server also
// sees duplicated and reordered datagrams, bit corruption, correlated link
// blackouts, and NACK storms (feedback implosion, after RMTP-II). A
// FaultPlan describes those pathologies declaratively; a FaultInjector
// turns the plan into per-link decision streams that are a pure function
// of (plan, seed): every chaos scenario replays bit-identically.
//
// The injector is passive, like the topology: the transport asks it, per
// delivery, what the adversarial network does to this packet. Blackout
// windows are a deterministic schedule (no RNG); duplication, reorder
// jitter, corruption, and NACK amplification draw from per-user RNG
// streams forked from the injector seed, so decisions for one user never
// perturb another user's stream. Every injected fault is tallied both in
// an injector-local Stats block (per-scenario assertions) and in the
// process-wide MetricsRegistry (fault.* counters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace rekey::obs {
class Counter;
}  // namespace rekey::obs

namespace rekey::simnet {

// A scheduled outage: every link (source and receiver, both directions)
// drops every transmission with start_ms <= t < end_ms.
struct BlackoutWindow {
  double start_ms = 0.0;
  double end_ms = 0.0;
};

struct FaultPlan {
  // Per-delivery probability that a received packet arrives again; each
  // duplication event delivers 1..max_duplicates extra copies.
  double duplicate_prob = 0.0;
  int max_duplicates = 1;

  // Per-delivery probability that a packet is deferred by a uniform jitter
  // in (0, reorder_jitter_ms], delivering it after packets sent later.
  // Each receiver holds at most reorder_queue_cap deferred packets; when
  // the queue is full the oldest deferred packet is delivered immediately.
  double reorder_prob = 0.0;
  double reorder_jitter_ms = 0.0;
  std::size_t reorder_queue_cap = 16;

  // Per-delivery probability that the arriving copy is bit-corrupted with
  // 1..corrupt_max_flips flipped bits. Corrupted copies are subject to the
  // receiver's datagram integrity check (packet::udp_checksum).
  double corrupt_prob = 0.0;
  int corrupt_max_flips = 4;

  // Per-NACK probability that the feedback channel amplifies the NACK
  // into nack_storm_copies extra deliveries at the server.
  double nack_storm_prob = 0.0;
  int nack_storm_copies = 3;

  // Scheduled outages; kept sorted by start_ms by validate()/the injector.
  std::vector<BlackoutWindow> blackouts;

  // True when any fault can actually fire; an inactive plan leaves the
  // transport on its exact fault-free code path.
  bool active() const;
  void validate() const;  // throws EnsureError on nonsense

  // Deterministic blackout schedule, answerable straight off the plan
  // (no RNG, no injector): is t_ms inside any window, and does any
  // window intersect [a_ms, b_ms]? Works on unsorted windows, so a plan
  // is queryable as declared — the wire daemon asks these against its
  // protocol clock to schedule a replica's death without instantiating
  // the per-user fault machinery.
  bool blackout_at(double t_ms) const;
  bool blackout_overlaps(double a_ms, double b_ms) const;
};

class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                std::size_t num_users);

  const FaultPlan& plan() const { return plan_; }

  // Deterministic blackout schedule (no RNG involved).
  bool blackout_at(double t_ms) const;
  // Does any blackout window intersect [a_ms, b_ms]?
  bool blackout_overlaps(double a_ms, double b_ms) const;
  // Called by the topology when a blackout eats a transmission.
  void count_blackout_drop();

  // What the downstream link does to a copy delivered to `user` at t_ms.
  struct Delivery {
    int extra_copies = 0;    // duplicates beyond the original
    double jitter_ms = 0.0;  // > 0: delivery deferred (reordered)
    bool corrupt = false;    // the primary copy arrives bit-corrupted
  };
  Delivery user_delivery(std::size_t user, double t_ms);

  // A corrupted copy of `wire`: 1..corrupt_max_flips bit flips drawn from
  // the user's downstream stream. Never returns the input unchanged.
  Bytes corrupt_copy(std::size_t user, const Bytes& wire);

  // Extra copies of a NACK the feedback path injects (0 = no storm).
  int nack_extra_copies(std::size_t user, double t_ms);

  struct Stats {
    std::uint64_t dup_copies = 0;        // extra downstream copies injected
    std::uint64_t reordered = 0;         // deliveries deferred by jitter
    std::uint64_t corrupted = 0;         // copies bit-corrupted
    std::uint64_t blackout_drops = 0;    // transmissions eaten by blackouts
    std::uint64_t nack_storm_copies = 0; // extra NACK copies injected

    friend bool operator==(const Stats&, const Stats&) = default;
  };
  const Stats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  std::vector<Rng> down_rng_;  // per-user downstream decision streams
  std::vector<Rng> up_rng_;    // per-user feedback decision streams
  Stats stats_;
  // Process-wide fault.* counters, resolved once at construction.
  obs::Counter* c_dup_;
  obs::Counter* c_reordered_;
  obs::Counter* c_corrupted_;
  obs::Counter* c_blackout_;
  obs::Counter* c_storm_;
};

}  // namespace rekey::simnet
