#include "simnet/fault.h"

#include <algorithm>

#include "common/ensure.h"
#include "common/obs.h"

namespace rekey::simnet {

bool FaultPlan::active() const {
  return duplicate_prob > 0.0 || reorder_prob > 0.0 || corrupt_prob > 0.0 ||
         nack_storm_prob > 0.0 || !blackouts.empty();
}

void FaultPlan::validate() const {
  REKEY_ENSURE(duplicate_prob >= 0.0 && duplicate_prob <= 1.0);
  REKEY_ENSURE(reorder_prob >= 0.0 && reorder_prob <= 1.0);
  REKEY_ENSURE(corrupt_prob >= 0.0 && corrupt_prob <= 1.0);
  REKEY_ENSURE(nack_storm_prob >= 0.0 && nack_storm_prob <= 1.0);
  REKEY_ENSURE(max_duplicates >= 1);
  REKEY_ENSURE(corrupt_max_flips >= 1);
  REKEY_ENSURE(nack_storm_copies >= 1);
  REKEY_ENSURE(reorder_prob == 0.0 ||
               (reorder_jitter_ms > 0.0 && reorder_queue_cap >= 1));
  for (const BlackoutWindow& w : blackouts)
    REKEY_ENSURE_MSG(w.end_ms > w.start_ms, "empty blackout window");
}

bool FaultPlan::blackout_at(double t_ms) const {
  for (const BlackoutWindow& w : blackouts)
    if (t_ms >= w.start_ms && t_ms < w.end_ms) return true;
  return false;
}

bool FaultPlan::blackout_overlaps(double a_ms, double b_ms) const {
  for (const BlackoutWindow& w : blackouts)
    if (w.start_ms <= b_ms && w.end_ms > a_ms) return true;
  return false;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t seed,
                             std::size_t num_users)
    : plan_(plan) {
  plan_.validate();
  std::sort(plan_.blackouts.begin(), plan_.blackouts.end(),
            [](const BlackoutWindow& a, const BlackoutWindow& b) {
              return a.start_ms < b.start_ms;
            });
  // Per-user streams forked from a dedicated base: decisions for one user
  // never shift another user's stream, and the whole injector is a pure
  // function of (plan, seed).
  Rng base(seed);
  down_rng_.reserve(num_users);
  up_rng_.reserve(num_users);
  for (std::size_t u = 0; u < num_users; ++u) {
    down_rng_.push_back(base.fork());
    up_rng_.push_back(base.fork());
  }
  auto& reg = obs::MetricsRegistry::global();
  c_dup_ = &reg.counter("fault.dup_copies");
  c_reordered_ = &reg.counter("fault.reordered");
  c_corrupted_ = &reg.counter("fault.corrupted");
  c_blackout_ = &reg.counter("fault.blackout_drops");
  c_storm_ = &reg.counter("fault.nack_storm_copies");
}

bool FaultInjector::blackout_at(double t_ms) const {
  return plan_.blackout_at(t_ms);
}

bool FaultInjector::blackout_overlaps(double a_ms, double b_ms) const {
  return plan_.blackout_overlaps(a_ms, b_ms);
}

void FaultInjector::count_blackout_drop() {
  ++stats_.blackout_drops;
  c_blackout_->add();
}

FaultInjector::Delivery FaultInjector::user_delivery(std::size_t user,
                                                     double /*t_ms*/) {
  REKEY_ENSURE(user < down_rng_.size());
  Rng& rng = down_rng_[user];
  Delivery d;
  if (plan_.duplicate_prob > 0.0 && rng.next_bool(plan_.duplicate_prob)) {
    d.extra_copies = static_cast<int>(
        rng.next_in(1, static_cast<std::uint64_t>(plan_.max_duplicates)));
    stats_.dup_copies += static_cast<std::uint64_t>(d.extra_copies);
    c_dup_->add(static_cast<std::uint64_t>(d.extra_copies));
  }
  if (plan_.reorder_prob > 0.0 && rng.next_bool(plan_.reorder_prob)) {
    // Uniform in (0, jitter]: a zero draw would not reorder anything.
    d.jitter_ms =
        plan_.reorder_jitter_ms * (1.0 - rng.next_double());
    ++stats_.reordered;
    c_reordered_->add();
  }
  if (plan_.corrupt_prob > 0.0 && rng.next_bool(plan_.corrupt_prob)) {
    d.corrupt = true;
    ++stats_.corrupted;
    c_corrupted_->add();
  }
  return d;
}

Bytes FaultInjector::corrupt_copy(std::size_t user, const Bytes& wire) {
  REKEY_ENSURE(user < down_rng_.size());
  REKEY_ENSURE(!wire.empty());
  Rng& rng = down_rng_[user];
  Bytes out = wire;
  const std::uint64_t flips =
      rng.next_in(1, static_cast<std::uint64_t>(plan_.corrupt_max_flips));
  for (std::uint64_t f = 0; f < flips; ++f) {
    const std::size_t pos =
        static_cast<std::size_t>(rng.next_in(0, out.size() - 1));
    out[pos] ^= static_cast<std::uint8_t>(1u << rng.next_in(0, 7));
  }
  // An even number of flips can cancel on the same bit; force a change so
  // "corrupted" always means "differs from the original".
  if (out == wire) out[0] ^= 0x01;
  return out;
}

int FaultInjector::nack_extra_copies(std::size_t user, double /*t_ms*/) {
  REKEY_ENSURE(user < up_rng_.size());
  if (plan_.nack_storm_prob <= 0.0) return 0;
  Rng& rng = up_rng_[user];
  if (!rng.next_bool(plan_.nack_storm_prob)) return 0;
  stats_.nack_storm_copies +=
      static_cast<std::uint64_t>(plan_.nack_storm_copies);
  c_storm_->add(static_cast<std::uint64_t>(plan_.nack_storm_copies));
  return plan_.nack_storm_copies;
}

}  // namespace rekey::simnet
