// rekeyd — the batch-rekey key server on a real UDP socket.
//
// Binds one datagram socket, waits until load generators (rekey_load)
// have subscribed every uid in [0, clients), then runs `--batches` churn
// batches of the paper's protocol over the wire and prints a JSON stats
// document on stdout. Exit code 0 means the daemon met its contract:
// either every batch it was responsible for ran (a standby the primary
// retired with Fin also counts), or a --blackout window killed it on
// schedule; endpoints that died are reported in the stats, not fatal.
//
// Replication: `--replica-of HOST:PORT` names the peer. The primary
// ships a sealed full-state snapshot to it before every batch; a
// `--standby` process restores those snapshots and promotes itself —
// higher fencing epoch, same deterministic batch replay — once the
// primary has been silent past --elect-timeout-ms. `--blackout A:B`
// kills the process at protocol-clock ms A (deterministic: the clock
// advances --round-quantum-ms per lockstep step, never wall time).
//
// Group size is no longer bounded by the legacy 16-bit slot ids: the
// daemon negotiates the wide-slot (v2) control frames automatically when
// the tree's slot ids could outgrow u16, so one group instance scales to
// millions of members — see README "Wire protocol versions".
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/json.h"
#include "wire/backend.h"
#include "wire/daemon.h"
#include "wire/udp.h"

namespace {

using namespace rekey;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --clients N [options]\n"
               "  --bind A.B.C.D:PORT   listen address (default :9915)\n"
               "  --clients N           fleet size the daemon waits for\n"
               "  --batches B           churn batches to run (default 1)\n"
               "  --joins J             joins per batch (default 8)\n"
               "  --leaves L            leaves per batch (default 8)\n"
               "  --churn-pool P        silent churn members (default 64)\n"
               "  --degree D            key tree degree (default 4)\n"
               "  --packet-size S       ENC packet size (default 1027)\n"
               "  --rho R               initial proactivity factor\n"
               "  --no-adaptive-rho     freeze rho at its initial value\n"
               "  --max-rounds R        multicast rounds before unicast\n"
               "  --round-wait-ms MS    report-collection deadline\n"
               "  --retry-ms MS         control retransmit cadence\n"
               "  --mtu BYTES           datagram size cap (default 1500)\n"
               "  --backend B           wire backend: epoll or io_uring\n"
               "                        (default REKEY_WIRE_BACKEND, else "
               "epoll;\n"
               "                        io_uring falls back when "
               "unsupported)\n"
               "  --seed S              key material seed\n"
               "  --shards S            key-tree shards, power of two "
               "(default 1)\n"
               "  --workers W           rekey worker threads (0 = auto, "
               "default 1)\n"
               "  --wire V              wire version: 0 auto (default), "
               "1 legacy u16 slots, 2 wide\n"
               "  --replica-of A.B:PORT peer daemon for snapshot "
               "replication\n"
               "  --standby             run as warm standby (requires "
               "--replica-of)\n"
               "  --elect-timeout-ms MS standby promotes after this much "
               "primary silence\n"
               "  --heartbeat-ms MS     primary->standby heartbeat cadence "
               "(0 = retry-ms)\n"
               "  --blackout A:B        die at protocol-clock ms A "
               "(repeatable; B ends the window)\n"
               "  --round-quantum-ms MS protocol-clock advance per lockstep "
               "step (default 100)\n",
               argv0);
  std::exit(2);
}

long long arg_int(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage(argv[0]);
  char* end = nullptr;
  const long long v = std::strtoll(argv[++i], &end, 10);
  if (end == argv[i] || *end != '\0') usage(argv[0]);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bind_spec = ":9915";
  std::size_t mtu = 1500;
  std::optional<wire::WireBackend> backend;
  bool churn_pool_set = false;
  wire::DaemonConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--bind" && i + 1 < argc) {
      bind_spec = argv[++i];
    } else if (a == "--clients") {
      cfg.clients = static_cast<std::uint32_t>(arg_int(argc, argv, i));
    } else if (a == "--batches") {
      cfg.batches = static_cast<std::uint32_t>(arg_int(argc, argv, i));
    } else if (a == "--joins") {
      cfg.churn_joins = static_cast<std::uint32_t>(arg_int(argc, argv, i));
    } else if (a == "--leaves") {
      cfg.churn_leaves = static_cast<std::uint32_t>(arg_int(argc, argv, i));
    } else if (a == "--churn-pool") {
      cfg.churn_pool = static_cast<std::uint32_t>(arg_int(argc, argv, i));
      churn_pool_set = true;
    } else if (a == "--degree") {
      cfg.degree = static_cast<unsigned>(arg_int(argc, argv, i));
    } else if (a == "--packet-size") {
      cfg.protocol.packet_size =
          static_cast<std::size_t>(arg_int(argc, argv, i));
    } else if (a == "--rho" && i + 1 < argc) {
      cfg.protocol.initial_rho = std::atof(argv[++i]);
    } else if (a == "--no-adaptive-rho") {
      cfg.protocol.adaptive_rho = false;
    } else if (a == "--max-rounds") {
      cfg.max_multicast_rounds = static_cast<int>(arg_int(argc, argv, i));
    } else if (a == "--round-wait-ms") {
      cfg.round_wait_ms = static_cast<int>(arg_int(argc, argv, i));
    } else if (a == "--retry-ms") {
      cfg.retry_ms = static_cast<int>(arg_int(argc, argv, i));
    } else if (a == "--mtu") {
      mtu = static_cast<std::size_t>(arg_int(argc, argv, i));
    } else if (a == "--backend" && i + 1 < argc) {
      backend = wire::parse_backend(argv[++i]);
      if (!backend) {
        std::fprintf(stderr, "rekeyd: bad --backend %s\n", argv[i]);
        return 2;
      }
    } else if (a == "--seed") {
      cfg.key_seed = static_cast<std::uint64_t>(arg_int(argc, argv, i));
    } else if (a == "--shards") {
      cfg.shards = static_cast<unsigned>(arg_int(argc, argv, i));
    } else if (a == "--workers") {
      cfg.worker_threads = static_cast<unsigned>(arg_int(argc, argv, i));
    } else if (a == "--wire") {
      cfg.wire_version = static_cast<unsigned>(arg_int(argc, argv, i));
    } else if (a == "--replica-of" && i + 1 < argc) {
      const auto peer = wire::parse_endpoint(argv[++i]);
      if (!peer) {
        std::fprintf(stderr, "rekeyd: bad --replica-of %s\n", argv[i]);
        return 2;
      }
      cfg.peer = *peer;
    } else if (a == "--standby") {
      cfg.standby = true;
    } else if (a == "--elect-timeout-ms") {
      cfg.elect_timeout_ms = static_cast<int>(arg_int(argc, argv, i));
    } else if (a == "--heartbeat-ms") {
      cfg.heartbeat_ms = static_cast<int>(arg_int(argc, argv, i));
    } else if (a == "--blackout" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto colon = spec.find(':');
      char* e1 = nullptr;
      char* e2 = nullptr;
      double start = 0.0, end = 0.0;
      if (colon != std::string::npos) {
        start = std::strtod(spec.c_str(), &e1);
        end = std::strtod(spec.c_str() + colon + 1, &e2);
      }
      if (colon == std::string::npos || e1 != spec.c_str() + colon ||
          *e2 != '\0' || end <= start) {
        std::fprintf(stderr, "rekeyd: bad --blackout %s (want START:END)\n",
                     spec.c_str());
        return 2;
      }
      cfg.fault.blackouts.push_back({start, end});
    } else if (a == "--round-quantum-ms" && i + 1 < argc) {
      cfg.round_quantum_ms = std::atof(argv[++i]);
    } else {
      usage(argv[0]);
    }
  }
  if (cfg.clients == 0) usage(argv[0]);
  if (cfg.standby && !cfg.peer.has_value()) {
    std::fprintf(stderr, "rekeyd: --standby requires --replica-of\n");
    return 2;
  }
  // The silent pool must absorb each batch's leaves; grow the default to
  // fit large --joins/--leaves instead of aborting on the size check.
  if (!churn_pool_set)
    cfg.churn_pool = std::max(
        {cfg.churn_pool, 2 * cfg.churn_joins, 2 * cfg.churn_leaves});

  const auto bind_ep = wire::parse_endpoint(bind_spec);
  if (!bind_ep) {
    std::fprintf(stderr, "rekeyd: bad --bind %s\n", bind_spec.c_str());
    return 2;
  }

  const wire::WireBackend eff = wire::effective_backend(backend);
  auto udp = wire::make_socket_wire(backend, wire::endpoint_addr(*bind_ep),
                                    wire::endpoint_port(*bind_ep), mtu);
  if (cfg.standby)
    std::fprintf(stderr,
                 "rekeyd: standby on %s (%s), watching primary %s\n",
                 wire::endpoint_to_string(udp->local_endpoint()).c_str(),
                 wire::backend_name(eff).c_str(),
                 wire::endpoint_to_string(*cfg.peer).c_str());
  else
    std::fprintf(stderr,
                 "rekeyd: listening on %s (%s), waiting for %u clients\n",
                 wire::endpoint_to_string(udp->local_endpoint()).c_str(),
                 wire::backend_name(eff).c_str(), cfg.clients);

  wire::KeyServerDaemon daemon(*udp, cfg);
  const wire::DaemonStats st = daemon.run();

  Json out = Json::object();
  out.set("tool", "rekeyd");
  out.set("backend", wire::backend_name(eff));
  out.set("clients", cfg.clients);
  out.set("endpoints", st.endpoints);
  out.set("batches_run", st.batches_run);
  out.set("enc_packets", st.enc_packets);
  out.set("slots", st.slots);
  out.set("data_frames", st.data_frames);
  out.set("data_bytes", st.data_bytes);
  out.set("proactive_parities", st.proactive_parities);
  out.set("reactive_parities", st.reactive_parities);
  out.set("rounds", st.rounds);
  out.set("unicast_waves", st.unicast_waves);
  out.set("usr_frags", st.usr_frags);
  out.set("control_frames", st.control_frames);
  out.set("control_retransmits", st.control_retransmits);
  out.set("reports", st.reports);
  out.set("nack_users", st.nack_users);
  out.set("recovered", st.recovered);
  out.set("via_usr", st.via_usr);
  out.set("gave_up", st.gave_up);
  out.set("gave_up_dead", st.gave_up_dead);
  out.set("endpoints_dropped", st.endpoints_dropped);
  out.set("endpoints_incompatible", st.endpoints_incompatible);
  out.set("wire_version", st.wire_version);
  out.set("rho_final", st.rho_final);
  out.set("snapshots_sent", st.snapshots_sent);
  out.set("snapshot_chunks", st.snapshot_chunks);
  out.set("snapshots_restored", st.snapshots_restored);
  out.set("resubs", st.resubs);
  out.set("epoch", st.epoch);
  out.set("promoted", st.promoted);
  out.set("died", st.died);
  out.set("died_at_ms", st.died_at_ms);
  out.set("completed", st.completed);
  std::cout << out.dump(2) << "\n";

  // A scheduled blackout death is a planned outcome, not a failure — the
  // CI failover smoke kills the primary this way and still wants exit 0.
  return st.completed || st.died ? 0 : 1;
}
