#!/usr/bin/env python3
"""Unit tests for bench_diff.py, run as a subprocess the way CI invokes it.

Each case writes a golden/candidate pair to a temp directory, runs the
script, and asserts on the exit status and (where the contract specifies
it) the report text. Exit codes under test: 0 match, 1 difference, 2 I/O
or usage error.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_diff.py")

DOC = {
    "schema_version": 1,
    "figure": "F8",
    "smoke": True,
    "sections": [
        {
            "id": "F8",
            "columns": ["k", "nacks", "bw_overhead"],
            "rows": [[1, 40, 1.25], [10, 7, 1.5], [50, 3, 2.75]],
        }
    ],
    "seeds": ["0x0000000000000001"],
    "notes": ["shape check"],
}


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_diff(self, golden, candidate, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, golden, candidate, *extra],
            capture_output=True, text=True)

    def diff_docs(self, golden_doc, candidate_doc, *extra):
        return self.run_diff(self.write("golden.json", golden_doc),
                             self.write("candidate.json", candidate_doc),
                             *extra)

    def test_identical_documents_match(self):
        proc = self.diff_docs(DOC, DOC)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("matches", proc.stdout)

    def test_integer_fields_are_exact(self):
        candidate = copy.deepcopy(DOC)
        candidate["sections"][0]["rows"][1][1] = 8  # 7 -> 8
        proc = self.diff_docs(DOC, candidate)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("$.sections[0].rows[1][1]", proc.stdout)

    def test_floats_within_rtol_match(self):
        candidate = copy.deepcopy(DOC)
        candidate["sections"][0]["rows"][2][2] = 2.75 * (1 + 1e-9)
        self.assertEqual(self.diff_docs(DOC, candidate).returncode, 0)

    def test_floats_outside_rtol_differ(self):
        candidate = copy.deepcopy(DOC)
        candidate["sections"][0]["rows"][2][2] = 2.75 * 1.01
        proc = self.diff_docs(DOC, candidate)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("float", proc.stdout)
        # A widened tolerance accepts the same pair.
        self.assertEqual(
            self.diff_docs(DOC, candidate, "--rtol", "0.05").returncode, 0)

    def test_int_vs_float_is_a_type_difference(self):
        # The emitter keeps 2 and 2.0 distinct on the wire; so does the diff.
        candidate = copy.deepcopy(DOC)
        candidate["sections"][0]["rows"][0][0] = 1.0
        proc = self.diff_docs(DOC, candidate)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("type", proc.stdout)

    def test_missing_row_is_reported(self):
        candidate = copy.deepcopy(DOC)
        del candidate["sections"][0]["rows"][1]
        proc = self.diff_docs(DOC, candidate)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("length 3 != 2", proc.stdout)

    def test_missing_key_is_reported_on_both_sides(self):
        candidate = copy.deepcopy(DOC)
        del candidate["notes"]
        proc = self.diff_docs(DOC, candidate)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing in candidate", proc.stdout)

        extra = copy.deepcopy(DOC)
        extra["extra_key"] = 1
        proc = self.diff_docs(DOC, extra)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing in golden", proc.stdout)

    def test_ignore_drops_top_level_keys(self):
        candidate = copy.deepcopy(DOC)
        candidate["notes"] = ["different note"]
        self.assertEqual(self.diff_docs(DOC, candidate).returncode, 1)
        self.assertEqual(
            self.diff_docs(DOC, candidate, "--ignore", "notes").returncode, 0)

    def test_bool_is_not_conflated_with_int(self):
        candidate = copy.deepcopy(DOC)
        candidate["smoke"] = 1  # truthy, but not a bool
        self.assertEqual(self.diff_docs(DOC, candidate).returncode, 1)

    def test_col_rtol_widens_one_named_column(self):
        candidate = copy.deepcopy(DOC)
        candidate["sections"][0]["rows"][2][2] = 2.75 * 3.0  # bw_overhead
        self.assertEqual(self.diff_docs(DOC, candidate).returncode, 1)
        self.assertEqual(
            self.diff_docs(DOC, candidate,
                           "--col-rtol", "bw_overhead=1e9").returncode, 0)
        # Other columns keep the exact/default comparison.
        candidate["sections"][0]["rows"][1][1] = 8  # nacks (int, exact)
        self.assertEqual(
            self.diff_docs(DOC, candidate,
                           "--col-rtol", "bw_overhead=1e9").returncode, 1)

    def test_col_rtol_applies_to_ints_and_zero_values(self):
        # An overridden column compares numerically even for ints, and a
        # huge rtol accepts 0-vs-nonzero (rel >= 1 covers it).
        golden = copy.deepcopy(DOC)
        golden["sections"][0]["rows"][0][2] = 0.0
        candidate = copy.deepcopy(golden)
        candidate["sections"][0]["rows"][0][2] = 123.0
        candidate["sections"][0]["rows"][1][2] = 2  # float 1.5 -> int 2
        self.assertEqual(
            self.diff_docs(golden, candidate,
                           "--col-rtol", "bw_overhead=1e9").returncode, 0)

    def test_col_rtol_report_names_the_column(self):
        candidate = copy.deepcopy(DOC)
        candidate["sections"][0]["rows"][2][2] = 100.0
        proc = self.diff_docs(DOC, candidate,
                              "--col-rtol", "bw_overhead=0.5")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("bw_overhead", proc.stdout)

    def test_require_col_present_matches(self):
        self.assertEqual(
            self.diff_docs(DOC, DOC, "--require-col", "nacks").returncode, 0)

    def test_require_col_missing_in_both_fails(self):
        # The regenerated-golden trap: both documents agree, but the column
        # CI cares about is gone from both. --require-col still fails.
        golden = copy.deepcopy(DOC)
        golden["sections"][0]["columns"] = ["k", "nacks"]
        golden["sections"][0]["rows"] = [[1, 40], [10, 7], [50, 3]]
        proc = self.diff_docs(golden, copy.deepcopy(golden),
                              "--require-col", "bw_overhead")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("required column", proc.stdout)
        self.assertIn("golden", proc.stdout)
        self.assertIn("candidate", proc.stdout)

    def test_require_col_missing_in_one_side_names_it(self):
        candidate = copy.deepcopy(DOC)
        candidate["sections"][0]["columns"] = ["k", "nacks"]
        candidate["sections"][0]["rows"] = [[1, 40], [10, 7], [50, 3]]
        proc = self.diff_docs(DOC, candidate,
                              "--require-col", "bw_overhead")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("candidate section 'F8'", proc.stdout)
        self.assertNotIn("golden section", proc.stdout)

    def test_require_col_applies_to_every_section(self):
        golden = copy.deepcopy(DOC)
        golden["sections"].append({
            "id": "F8b", "columns": ["k"], "rows": [[1]]})
        proc = self.diff_docs(golden, copy.deepcopy(golden),
                              "--require-col", "nacks")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("'F8b'", proc.stdout)
        self.assertNotIn("'F8':", proc.stdout)

    def test_require_col_with_no_sections_fails(self):
        golden = {"schema_version": 1, "figure": "X"}
        proc = self.diff_docs(golden, copy.deepcopy(golden),
                              "--require-col", "nacks")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no sections", proc.stdout)

    def test_col_rtol_bad_spec_is_a_usage_error(self):
        proc = self.diff_docs(DOC, DOC, "--col-rtol", "no_equals_sign")
        self.assertEqual(proc.returncode, 2)
        proc = self.diff_docs(DOC, DOC, "--col-rtol", "col=notafloat")
        self.assertEqual(proc.returncode, 2)

    def test_unreadable_file_is_a_usage_error(self):
        golden = self.write("golden.json", DOC)
        missing = os.path.join(self.tmp.name, "nope.json")
        self.assertEqual(self.run_diff(golden, missing).returncode, 2)

    def test_malformed_json_is_a_usage_error(self):
        golden = self.write("golden.json", DOC)
        broken = os.path.join(self.tmp.name, "broken.json")
        with open(broken, "w") as f:
            f.write("{not json")
        self.assertEqual(self.run_diff(golden, broken).returncode, 2)


if __name__ == "__main__":
    unittest.main()
