// rekey_load — the client-side load generator for rekeyd.
//
// Multiplexes `--clients` virtual rekey clients over `--threads` OS
// threads: each thread owns one UDP socket and one wire::ClientFleet
// speaking for a contiguous uid slice, so 10^5 clients cost ~8 sockets
// and ~8 receive loops, not 10^5 of either. (A single group is no longer
// bounded by 16-bit slot ids: the fleet advertises the wide-slot v2
// frames and the server picks the session version; --wire 1 emulates a
// legacy client.)
//
// Deterministic loss shaping (--down-loss / --up-loss / --shape-seed) is
// applied per virtual client inside the fleet, so a lossy run is exactly
// reproducible regardless of socket timing.
//
// Exit 0 iff every fleet saw the daemon's Fin and every client-batch
// recovered the group key (use --allow-unrecovered with lossy shaping
// where the daemon's give-up path is the expected outcome).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "wire/backend.h"
#include "wire/fleet.h"
#include "wire/udp.h"

namespace {

using namespace rekey;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --server A.B.C.D:PORT --clients N [options]\n"
               "  --threads T           fleets/sockets to spread over "
               "(default 4)\n"
               "  --first-uid U         base uid of this process (default 0)\n"
               "  --down-loss P         P(client misses a data frame)\n"
               "  --up-loss P           P(client NACK suppressed per round)\n"
               "  --shape-seed S        shaping determinism seed\n"
               "  --mtu BYTES           datagram size cap (default 1500)\n"
               "  --backend B           wire backend: epoll or io_uring\n"
               "                        (default REKEY_WIRE_BACKEND, else "
               "epoll)\n"
               "  --idle-timeout-ms MS  abort if the server goes silent\n"
               "  --allow-unrecovered   don't fail on abandoned clients\n"
               "  --wire V              max wire version to advertise "
               "(default 2)\n"
               "  --failover A.B:PORT   standby endpoint to adopt on a "
               "higher-epoch BatchStart (repeatable)\n",
               argv0);
  std::exit(2);
}

long long arg_int(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage(argv[0]);
  char* end = nullptr;
  const long long v = std::strtoll(argv[++i], &end, 10);
  if (end == argv[i] || *end != '\0') usage(argv[0]);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_spec;
  std::uint32_t clients = 0;
  std::uint32_t first_uid = 0;
  unsigned threads = 4;
  std::size_t mtu = 1500;
  int idle_timeout_ms = 30000;
  bool allow_unrecovered = false;
  unsigned max_wire = wire::kMaxWireVersion;
  std::optional<wire::WireBackend> backend;
  wire::ShapingConfig shaping;
  std::vector<wire::Endpoint> failover;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--server" && i + 1 < argc) {
      server_spec = argv[++i];
    } else if (a == "--clients") {
      clients = static_cast<std::uint32_t>(arg_int(argc, argv, i));
    } else if (a == "--threads") {
      threads = static_cast<unsigned>(arg_int(argc, argv, i));
    } else if (a == "--first-uid") {
      first_uid = static_cast<std::uint32_t>(arg_int(argc, argv, i));
    } else if (a == "--down-loss" && i + 1 < argc) {
      shaping.down_loss = std::atof(argv[++i]);
    } else if (a == "--up-loss" && i + 1 < argc) {
      shaping.up_loss = std::atof(argv[++i]);
    } else if (a == "--shape-seed") {
      shaping.seed = static_cast<std::uint64_t>(arg_int(argc, argv, i));
    } else if (a == "--mtu") {
      mtu = static_cast<std::size_t>(arg_int(argc, argv, i));
    } else if (a == "--backend" && i + 1 < argc) {
      backend = wire::parse_backend(argv[++i]);
      if (!backend) {
        std::fprintf(stderr, "rekey_load: bad --backend %s\n", argv[i]);
        return 2;
      }
    } else if (a == "--idle-timeout-ms") {
      idle_timeout_ms = static_cast<int>(arg_int(argc, argv, i));
    } else if (a == "--allow-unrecovered") {
      allow_unrecovered = true;
    } else if (a == "--wire") {
      max_wire = static_cast<unsigned>(arg_int(argc, argv, i));
      if (max_wire < 1 || max_wire > wire::kMaxWireVersion) usage(argv[0]);
    } else if (a == "--failover" && i + 1 < argc) {
      const auto ep = wire::parse_endpoint(argv[++i]);
      if (!ep) {
        std::fprintf(stderr, "rekey_load: bad --failover %s\n", argv[i]);
        return 2;
      }
      failover.push_back(*ep);
    } else {
      usage(argv[0]);
    }
  }
  if (server_spec.empty() || clients == 0) usage(argv[0]);
  const auto server = wire::parse_endpoint(server_spec);
  if (!server) {
    std::fprintf(stderr, "rekey_load: bad --server %s\n", server_spec.c_str());
    return 2;
  }
  threads = std::max(1u, std::min(threads, clients));

  // Contiguous uid slices, remainder spread over the first fleets.
  struct Slice {
    std::uint32_t first, count;
  };
  std::vector<Slice> slices;
  const std::uint32_t base = clients / threads, extra = clients % threads;
  std::uint32_t uid = first_uid;
  for (unsigned t = 0; t < threads; ++t) {
    const std::uint32_t n = base + (t < extra ? 1 : 0);
    slices.push_back({uid, n});
    uid += n;
  }

  std::vector<wire::FleetStats> stats(slices.size());
  std::vector<std::thread> workers;
  workers.reserve(slices.size());
  for (std::size_t t = 0; t < slices.size(); ++t) {
    workers.emplace_back([&, t] {
      // INADDR_ANY, ephemeral port
      auto udp = wire::make_socket_wire(backend, 0, 0, mtu);
      wire::FleetConfig fc;
      fc.first_uid = slices[t].first;
      fc.count = slices[t].count;
      fc.shaping = shaping;
      fc.idle_timeout_ms = idle_timeout_ms;
      fc.max_version = static_cast<std::uint8_t>(max_wire);
      fc.failover = failover;
      wire::ClientFleet fleet(*udp, *server, fc);
      stats[t] = fleet.run();
    });
  }
  for (auto& w : workers) w.join();

  wire::FleetStats sum;
  sum.finished = true;
  for (const wire::FleetStats& s : stats) {
    sum.clients += s.clients;
    sum.batches = std::max(sum.batches, s.batches);
    sum.recovered += s.recovered;
    sum.via_usr += s.via_usr;
    sum.unrecovered += s.unrecovered;
    sum.data_frames += s.data_frames;
    sum.shaped_off += s.shaped_off;
    sum.nacks_suppressed += s.nacks_suppressed;
    sum.reports_sent += s.reports_sent;
    sum.control_frames += s.control_frames;
    sum.wire_version = std::max(sum.wire_version, s.wire_version);
    sum.finished = sum.finished && s.finished;
    sum.epoch = std::max(sum.epoch, s.epoch);
    sum.failovers += s.failovers;
    sum.resubs_sent += s.resubs_sent;
    sum.recovery_ms.insert(sum.recovery_ms.end(), s.recovery_ms.begin(),
                           s.recovery_ms.end());
  }

  Json out = Json::object();
  out.set("tool", "rekey_load");
  out.set("backend", wire::backend_name(wire::effective_backend(backend)));
  out.set("clients", sum.clients);
  out.set("threads", static_cast<unsigned long long>(slices.size()));
  out.set("batches", sum.batches);
  out.set("recovered", sum.recovered);
  out.set("via_usr", sum.via_usr);
  out.set("unrecovered", sum.unrecovered);
  out.set("data_frames", sum.data_frames);
  out.set("shaped_off", sum.shaped_off);
  out.set("nacks_suppressed", sum.nacks_suppressed);
  out.set("reports_sent", sum.reports_sent);
  out.set("control_frames", sum.control_frames);
  out.set("wire_version", sum.wire_version);
  out.set("finished", sum.finished);
  out.set("epoch", sum.epoch);
  out.set("failovers", sum.failovers);
  out.set("resubs_sent", sum.resubs_sent);
  if (!sum.recovery_ms.empty()) {
    std::sort(sum.recovery_ms.begin(), sum.recovery_ms.end());
    const auto pct = [&](double p) {
      const std::size_t i = static_cast<std::size_t>(
          p * static_cast<double>(sum.recovery_ms.size() - 1));
      return sum.recovery_ms[i];
    };
    Json lat = Json::object();
    lat.set("p50_ms", pct(0.50));
    lat.set("p90_ms", pct(0.90));
    lat.set("p99_ms", pct(0.99));
    lat.set("max_ms", sum.recovery_ms.back());
    out.set("recovery_latency", std::move(lat));
  }
  std::printf("%s\n", out.dump(2).c_str());

  if (!sum.finished) return 1;
  if (sum.unrecovered > 0 && !allow_unrecovered) return 1;
  return 0;
}
