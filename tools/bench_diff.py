#!/usr/bin/env python3
"""Compare two bench --json documents.

Integer fields (and booleans/strings) must match exactly; floating-point
fields match within a relative/absolute tolerance. The emitter keeps the
two number kinds distinct on the wire (integer-valued doubles serialize
with a trailing ".0"), so the comparison mode is decided by the JSON type
alone — no schema knowledge needed.

Exit status: 0 when the documents match, 1 on any difference, 2 on usage
or I/O errors.

Usage:
  bench_diff.py golden.json candidate.json [--rtol R] [--atol A]
                [--ignore KEY ...]

--ignore drops a top-level key from both documents before comparing
(e.g. --ignore notes, or --ignore sections for a metadata-only check).
Timing figures such as A4 should be compared with a wide --rtol or not
golden-diffed at all.
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def diff(a, b, rtol, atol, path, out):
    """Appends human-readable difference records to `out`."""
    if isinstance(a, bool) or isinstance(b, bool):
        # bool is an int subclass; compare identity-of-type first.
        if type(a) is not type(b) or a != b:
            out.append(f"{path}: {a!r} != {b!r}")
        return
    if isinstance(a, float) and isinstance(b, float):
        if not math.isclose(a, b, rel_tol=rtol, abs_tol=atol):
            out.append(f"{path}: float {a!r} != {b!r} (rtol={rtol}, atol={atol})")
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
        return
    if isinstance(a, dict):
        for k in a.keys() | b.keys():
            if k not in a:
                out.append(f"{path}.{k}: missing in golden")
            elif k not in b:
                out.append(f"{path}.{k}: missing in candidate")
            else:
                diff(a[k], b[k], rtol, atol, f"{path}.{k}", out)
        return
    if isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, rtol, atol, f"{path}[{i}]", out)
        return
    # int / str / None: exact.
    if a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("golden")
    ap.add_argument("candidate")
    ap.add_argument("--rtol", type=float, default=1e-6,
                    help="relative tolerance for float fields (default 1e-6)")
    ap.add_argument("--atol", type=float, default=1e-12,
                    help="absolute tolerance for float fields (default 1e-12)")
    ap.add_argument("--ignore", action="append", default=[], metavar="KEY",
                    help="top-level key to drop from both documents")
    ap.add_argument("--max-report", type=int, default=20,
                    help="differences to print before truncating")
    args = ap.parse_args()

    golden = load(args.golden)
    candidate = load(args.candidate)
    for key in args.ignore:
        golden.pop(key, None)
        candidate.pop(key, None)

    differences = []
    diff(golden, candidate, args.rtol, args.atol, "$", differences)
    if differences:
        figure = golden.get("figure", "?")
        print(f"bench_diff: {len(differences)} difference(s) in figure "
              f"{figure} ({args.golden} vs {args.candidate}):")
        for d in differences[:args.max_report]:
            print(f"  {d}")
        if len(differences) > args.max_report:
            print(f"  ... and {len(differences) - args.max_report} more")
        return 1
    print(f"bench_diff: {args.candidate} matches {args.golden}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
