#!/usr/bin/env python3
"""Compare two bench --json documents.

Integer fields (and booleans/strings) must match exactly; floating-point
fields match within a relative/absolute tolerance. The emitter keeps the
two number kinds distinct on the wire (integer-valued doubles serialize
with a trailing ".0"), so the comparison mode is decided by the JSON type
alone — no schema knowledge needed.

Exit status: 0 when the documents match, 1 on any difference, 2 on usage
or I/O errors.

Usage:
  bench_diff.py golden.json candidate.json [--rtol R] [--atol A]
                [--ignore KEY ...] [--col-rtol COL=R ...]
                [--require-col COL ...]

--ignore drops a top-level key from both documents before comparing
(e.g. --ignore notes, or --ignore sections for a metadata-only check).
--col-rtol overrides the relative tolerance for one named table column in
every section (repeatable); cells of an overridden column are compared
numerically whether int or float. This is how timing columns (e.g. KS1's
mark_us/payload_us) ride in an otherwise exact golden: give them a huge
tolerance while counts stay exact. Timing figures with no exact columns,
such as A4, should not be golden-diffed at all.
--require-col asserts that a named column exists in every table section
of BOTH documents (repeatable). A structural identity check alone can't
catch a golden that was regenerated after a column was dropped — the two
documents still agree with each other. Requiring the column pins the
schema itself, so CI fails loudly instead of silently diffing less.
"""

import argparse
import json
import math
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def diff_rows(rows_a, rows_b, columns, rtol, atol, col_rtol, path, out):
    """Row-cell comparison with per-column relative-tolerance overrides."""
    if len(rows_a) != len(rows_b):
        out.append(f"{path}: length {len(rows_a)} != {len(rows_b)}")
    for i, (ra, rb) in enumerate(zip(rows_a, rows_b)):
        if not isinstance(ra, list) or not isinstance(rb, list):
            diff(ra, rb, rtol, atol, f"{path}[{i}]", out, col_rtol)
            continue
        if len(ra) != len(rb):
            out.append(f"{path}[{i}]: length {len(ra)} != {len(rb)}")
        for j, (x, y) in enumerate(zip(ra, rb)):
            name = columns[j] if j < len(columns) else None
            cell_path = f"{path}[{i}][{j}]"
            if name in col_rtol and is_number(x) and is_number(y):
                r = col_rtol[name]
                if not math.isclose(x, y, rel_tol=r, abs_tol=atol):
                    out.append(f"{cell_path} ({name}): {x!r} != {y!r} "
                               f"(col rtol={r})")
            else:
                diff(x, y, rtol, atol, cell_path, out, col_rtol)


def diff(a, b, rtol, atol, path, out, col_rtol=None):
    """Appends human-readable difference records to `out`."""
    col_rtol = col_rtol or {}
    if isinstance(a, bool) or isinstance(b, bool):
        # bool is an int subclass; compare identity-of-type first.
        if type(a) is not type(b) or a != b:
            out.append(f"{path}: {a!r} != {b!r}")
        return
    if isinstance(a, float) and isinstance(b, float):
        if not math.isclose(a, b, rel_tol=rtol, abs_tol=atol):
            out.append(f"{path}: float {a!r} != {b!r} (rtol={rtol}, atol={atol})")
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
        return
    if isinstance(a, dict):
        # A figure section: rows get per-column tolerance overrides.
        tabular = (col_rtol and isinstance(a.get("columns"), list)
                   and isinstance(a.get("rows"), list)
                   and isinstance(b.get("rows"), list))
        for k in a.keys() | b.keys():
            if k not in a:
                out.append(f"{path}.{k}: missing in golden")
            elif k not in b:
                out.append(f"{path}.{k}: missing in candidate")
            elif tabular and k == "rows":
                diff_rows(a[k], b[k], a["columns"], rtol, atol, col_rtol,
                          f"{path}.rows", out)
            else:
                diff(a[k], b[k], rtol, atol, f"{path}.{k}", out, col_rtol)
        return
    if isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, rtol, atol, f"{path}[{i}]", out, col_rtol)
        return
    # int / str / None: exact.
    if a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def check_required_columns(doc, which, required, out):
    """One record per (section, missing required column) in `doc`."""
    sections = doc.get("sections")
    if not isinstance(sections, list):
        if required:
            out.append(f"{which}: no sections to satisfy --require-col")
        return
    for i, sec in enumerate(sections):
        columns = sec.get("columns") if isinstance(sec, dict) else None
        if not isinstance(columns, list):
            columns = []
        sec_id = sec.get("id", i) if isinstance(sec, dict) else i
        for col in required:
            if col not in columns:
                out.append(f"{which} section {sec_id!r}: required column "
                           f"{col!r} missing")


def parse_col_rtol(specs):
    out = {}
    for spec in specs:
        name, sep, value = spec.rpartition("=")
        if not sep or not name:
            print(f"bench_diff: bad --col-rtol {spec!r} (expected COL=R)",
                  file=sys.stderr)
            sys.exit(2)
        try:
            out[name] = float(value)
        except ValueError:
            print(f"bench_diff: bad --col-rtol value in {spec!r}",
                  file=sys.stderr)
            sys.exit(2)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("golden")
    ap.add_argument("candidate")
    ap.add_argument("--rtol", type=float, default=1e-6,
                    help="relative tolerance for float fields (default 1e-6)")
    ap.add_argument("--atol", type=float, default=1e-12,
                    help="absolute tolerance for float fields (default 1e-12)")
    ap.add_argument("--ignore", action="append", default=[], metavar="KEY",
                    help="top-level key to drop from both documents")
    ap.add_argument("--col-rtol", action="append", default=[],
                    metavar="COL=R", dest="col_rtol",
                    help="relative tolerance override for a named table "
                         "column (repeatable)")
    ap.add_argument("--require-col", action="append", default=[],
                    metavar="COL", dest="require_col",
                    help="column that must exist in every table section of "
                         "both documents (repeatable)")
    ap.add_argument("--max-report", type=int, default=20,
                    help="differences to print before truncating")
    args = ap.parse_args()

    golden = load(args.golden)
    candidate = load(args.candidate)
    for key in args.ignore:
        golden.pop(key, None)
        candidate.pop(key, None)
    col_rtol = parse_col_rtol(args.col_rtol)

    differences = []
    check_required_columns(golden, "golden", args.require_col, differences)
    check_required_columns(candidate, "candidate", args.require_col,
                           differences)
    diff(golden, candidate, args.rtol, args.atol, "$", differences, col_rtol)
    if differences:
        figure = golden.get("figure", "?")
        print(f"bench_diff: {len(differences)} difference(s) in figure "
              f"{figure} ({args.golden} vs {args.candidate}):")
        for d in differences[:args.max_report]:
            print(f"  {d}")
        if len(differences) > args.max_report:
            print(f"  ... and {len(differences) - args.max_report} more")
        return 1
    print(f"bench_diff: {args.candidate} matches {args.golden}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
