// Real-socket end-to-end tests: KeyServerDaemon and ClientFleet over
// actual UDP on 127.0.0.1 with ephemeral ports. The tier-1 cases keep N
// small; the soak case is the acceptance run — a full N = 2^15 churn
// batch where every client must recover.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "wire/daemon.h"
#include "wire/fleet.h"
#include "wire/udp.h"

namespace rekey::wire {
namespace {

constexpr std::uint32_t kLoopback = 0x7F000001;

struct UdpRun {
  DaemonStats daemon;
  std::vector<FleetStats> fleets;
};

UdpRun run_udp(DaemonConfig dc, const std::vector<FleetConfig>& fleet_configs,
               std::size_t mtu = 1500) {
  UdpWire daemon_wire(kLoopback, 0, mtu);
  const Endpoint server = daemon_wire.local_endpoint();
  KeyServerDaemon daemon(daemon_wire, dc);
  UdpRun r;
  r.fleets.resize(fleet_configs.size());
  std::thread daemon_thread([&] { r.daemon = daemon.run(); });
  std::vector<std::thread> fleet_threads;
  for (std::size_t i = 0; i < fleet_configs.size(); ++i) {
    fleet_threads.emplace_back([&, i] {
      UdpWire wire(kLoopback, 0, mtu);
      ClientFleet fleet(wire, server, fleet_configs[i]);
      r.fleets[i] = fleet.run();
    });
  }
  for (auto& t : fleet_threads) t.join();
  daemon_thread.join();
  return r;
}

FleetConfig slice(std::uint32_t first, std::uint32_t count) {
  FleetConfig fc;
  fc.first_uid = first;
  fc.count = count;
  fc.retry_ms = 20;
  fc.idle_timeout_ms = 60000;
  return fc;
}

TEST(WireUdp, EndpointPackingRoundtrips) {
  const Endpoint e = make_endpoint(0xC0A80164, 54321);
  EXPECT_EQ(endpoint_addr(e), 0xC0A80164u);
  EXPECT_EQ(endpoint_port(e), 54321);
  const auto parsed = parse_endpoint("192.168.1.100:54321");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, e.id);
  EXPECT_EQ(endpoint_to_string(e), "192.168.1.100:54321");
  const auto local = parse_endpoint(":9000");
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(endpoint_addr(*local), kLoopback);
  EXPECT_FALSE(parse_endpoint("no-port").has_value());
  EXPECT_FALSE(parse_endpoint("1.2.3.4:99999").has_value());
  EXPECT_FALSE(parse_endpoint("1.2.3:5").has_value());
}

TEST(WireUdp, DatagramsRoundtripThroughRealSockets) {
  UdpWire a(kLoopback, 0);
  UdpWire b(kLoopback, 0);
  EXPECT_EQ(a.max_payload(), 1500u - 28u - 1u);
  const Bytes payload{1, 2, 3, 4, 5};
  ASSERT_TRUE(a.send(b.local_endpoint(), kChanControl, payload));
  std::vector<Datagram> in;
  ASSERT_EQ(b.receive(in, 2000), 1u);
  EXPECT_EQ(in[0].channel, kChanControl);
  EXPECT_EQ(in[0].payload, payload);
  EXPECT_EQ(in[0].from.id, a.local_endpoint().id);
  // Reply addressing: the receiver can answer the sender's from-endpoint.
  ASSERT_TRUE(b.send(in[0].from, kChanData, payload));
  in.clear();
  ASSERT_EQ(a.receive(in, 2000), 1u);
  EXPECT_EQ(in[0].channel, kChanData);
}

TEST(WireUdp, OversizePayloadIsRefusedNotTruncated) {
  UdpWire a(kLoopback, 0, 600);
  UdpWire b(kLoopback, 0, 600);
  EXPECT_EQ(a.max_payload(), 600u - 28u - 1u);
  const Bytes too_big(a.max_payload() + 1, 0xEE);
  EXPECT_FALSE(a.send(b.local_endpoint(), kChanData, too_big));
  const Bytes exact(a.max_payload(), 0xEE);
  EXPECT_TRUE(a.send(b.local_endpoint(), kChanData, exact));
  std::vector<Datagram> in;
  ASSERT_EQ(b.receive(in, 2000), 1u);
  EXPECT_EQ(in[0].payload.size(), exact.size());
}

TEST(WireUdp, SmallSessionRecoversOverRealSockets) {
  DaemonConfig dc;
  dc.clients = 256;
  dc.batches = 2;
  dc.churn_pool = 64;
  dc.churn_joins = 24;
  dc.churn_leaves = 24;
  dc.retry_ms = 20;
  dc.round_wait_ms = 20000;
  auto r = run_udp(dc, {slice(0, 128), slice(128, 128)});
  EXPECT_EQ(r.daemon.batches_run, 2u);
  EXPECT_EQ(r.daemon.recovered, 512u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_EQ(r.daemon.endpoints, 2u);
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.unrecovered, 0u);
  }
}

TEST(WireUdp, ShapedLossRecoversOverRealSockets) {
  DaemonConfig dc;
  dc.clients = 192;
  dc.batches = 1;
  dc.churn_pool = 128;
  dc.churn_joins = 64;
  dc.churn_leaves = 64;
  dc.protocol.packet_size = 300;  // several FEC blocks => real NACK traffic
  dc.retry_ms = 20;
  dc.round_wait_ms = 20000;
  auto fc = slice(0, 192);
  fc.shaping.down_loss = 0.2;
  fc.shaping.up_loss = 0.1;
  fc.shaping.seed = 0x51CC;
  auto r = run_udp(dc, {fc});
  EXPECT_EQ(r.daemon.recovered, 192u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_GT(r.fleets[0].shaped_off, 0u);
  EXPECT_TRUE(r.fleets[0].finished);
  EXPECT_EQ(r.fleets[0].unrecovered, 0u);
}

// Acceptance run: a full 2^15-client churn batch over UDP loopback with
// every client recovering. Four fleet endpoints multiplex 8192 virtual
// clients each — the tools/rekey_load architecture in miniature.
TEST(WireUdpSoak, FullChurnBatchAt32768Clients) {
  constexpr std::uint32_t kN = 1u << 15;
  DaemonConfig dc;
  dc.clients = kN;
  dc.batches = 1;
  dc.churn_pool = 1024;
  dc.churn_joins = 512;
  dc.churn_leaves = 512;
  dc.retry_ms = 50;
  dc.round_wait_ms = 120000;
  std::vector<FleetConfig> fleets;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto fc = slice(i * (kN / 4), kN / 4);
    fc.idle_timeout_ms = 180000;
    fleets.push_back(fc);
  }
  auto r = run_udp(dc, fleets);
  EXPECT_EQ(r.daemon.batches_run, 1u);
  EXPECT_EQ(r.daemon.endpoints, 4u);
  EXPECT_EQ(r.daemon.recovered, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(r.daemon.gave_up, 0u);
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.recovered, fs.clients);
    EXPECT_EQ(fs.unrecovered, 0u);
  }
}

}  // namespace
}  // namespace rekey::wire
