// Real-socket end-to-end tests: KeyServerDaemon and ClientFleet over
// actual UDP on 127.0.0.1 with ephemeral ports. The socket cases run
// once per kernel backend (epoll and, when the kernel supports it,
// io_uring — wire/backend.h); the tier-1 cases keep N small; the soak
// case is the acceptance run — a full N = 2^15 churn batch where every
// client must recover.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "wire/backend.h"
#include "wire/daemon.h"
#include "wire/fleet.h"
#include "wire/udp.h"

namespace rekey::wire {
namespace {

constexpr std::uint32_t kLoopback = 0x7F000001;

struct UdpRun {
  DaemonStats daemon;
  std::vector<FleetStats> fleets;
};

UdpRun run_udp(WireBackend backend, DaemonConfig dc,
               const std::vector<FleetConfig>& fleet_configs,
               std::size_t mtu = 1500) {
  auto daemon_wire = make_socket_wire(backend, kLoopback, 0, mtu);
  const Endpoint server = daemon_wire->local_endpoint();
  KeyServerDaemon daemon(*daemon_wire, dc);
  UdpRun r;
  r.fleets.resize(fleet_configs.size());
  std::thread daemon_thread([&] { r.daemon = daemon.run(); });
  std::vector<std::thread> fleet_threads;
  for (std::size_t i = 0; i < fleet_configs.size(); ++i) {
    fleet_threads.emplace_back([&, i] {
      auto wire = make_socket_wire(backend, kLoopback, 0, mtu);
      ClientFleet fleet(*wire, server, fleet_configs[i]);
      r.fleets[i] = fleet.run();
    });
  }
  for (auto& t : fleet_threads) t.join();
  daemon_thread.join();
  return r;
}

FleetConfig slice(std::uint32_t first, std::uint32_t count) {
  FleetConfig fc;
  fc.first_uid = first;
  fc.count = count;
  fc.retry_ms = 20;
  fc.idle_timeout_ms = 60000;
  return fc;
}

TEST(WireUdp, EndpointPackingRoundtrips) {
  const Endpoint e = make_endpoint(0xC0A80164, 54321);
  EXPECT_EQ(endpoint_addr(e), 0xC0A80164u);
  EXPECT_EQ(endpoint_port(e), 54321);
  const auto parsed = parse_endpoint("192.168.1.100:54321");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id, e.id);
  EXPECT_EQ(endpoint_to_string(e), "192.168.1.100:54321");
  const auto local = parse_endpoint(":9000");
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(endpoint_addr(*local), kLoopback);
  EXPECT_FALSE(parse_endpoint("no-port").has_value());
  EXPECT_FALSE(parse_endpoint("1.2.3.4:99999").has_value());
  EXPECT_FALSE(parse_endpoint("1.2.3:5").has_value());
}

TEST(WireUdp, BackendNamesRoundtrip) {
  EXPECT_EQ(parse_backend("epoll"), WireBackend::kEpoll);
  EXPECT_EQ(parse_backend("io_uring"), WireBackend::kIoUring);
  EXPECT_EQ(parse_backend("uring"), WireBackend::kIoUring);
  EXPECT_FALSE(parse_backend("kqueue").has_value());
  EXPECT_EQ(backend_name(WireBackend::kEpoll), "epoll");
  EXPECT_EQ(backend_name(WireBackend::kIoUring), "io_uring");
  // Whatever the kernel supports, the factory must hand back a working
  // epoll wire when epoll is requested explicitly.
  EXPECT_EQ(effective_backend(WireBackend::kEpoll), WireBackend::kEpoll);
}

// A tiny sendmmsg/recvmmsg batch still delivers a burst larger than the
// batch (REKEY_IO_BATCH's cached parse is bypassed via the test hook).
TEST(WireUdp, TinyIoBatchStillDelivers) {
  detail::set_io_batch_for_test(3);
  {
    UdpWire a(kLoopback, 0);
    UdpWire b(kLoopback, 0);
    std::vector<Bytes> bodies;
    std::vector<const Bytes*> frames;
    for (std::uint8_t i = 0; i < 10; ++i) bodies.push_back(Bytes{i, i, i});
    for (const Bytes& body : bodies) frames.push_back(&body);
    ASSERT_EQ(a.send_frames(b.local_endpoint(), kChanData, frames), 10u);
    std::vector<Datagram> in;
    while (in.size() < 10 && b.receive(in, 2000) > 0) {
    }
    ASSERT_EQ(in.size(), 10u);
    for (std::uint8_t i = 0; i < 10; ++i)
      EXPECT_EQ(in[i].payload, (Bytes{i, i, i}));
  }
  detail::set_io_batch_for_test(0);
}

// Socket-level cases, once per kernel backend.
class WireUdpBackends : public ::testing::TestWithParam<WireBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == WireBackend::kIoUring && !io_uring_supported())
      GTEST_SKIP() << "kernel lacks io_uring support";
  }
};

TEST_P(WireUdpBackends, DatagramsRoundtripThroughRealSockets) {
  auto a = make_socket_wire(GetParam(), kLoopback, 0);
  auto b = make_socket_wire(GetParam(), kLoopback, 0);
  EXPECT_EQ(a->max_payload(), 1500u - 28u - 1u);
  const Bytes payload{1, 2, 3, 4, 5};
  ASSERT_TRUE(a->send(b->local_endpoint(), kChanControl, payload));
  std::vector<Datagram> in;
  ASSERT_EQ(b->receive(in, 2000), 1u);
  EXPECT_EQ(in[0].channel, kChanControl);
  EXPECT_EQ(in[0].payload, payload);
  EXPECT_EQ(in[0].from.id, a->local_endpoint().id);
  // Reply addressing: the receiver can answer the sender's from-endpoint.
  ASSERT_TRUE(b->send(in[0].from, kChanData, payload));
  in.clear();
  ASSERT_EQ(a->receive(in, 2000), 1u);
  EXPECT_EQ(in[0].channel, kChanData);
}

TEST_P(WireUdpBackends, BurstPreservesSendOrder) {
  auto a = make_socket_wire(GetParam(), kLoopback, 0);
  auto b = make_socket_wire(GetParam(), kLoopback, 0);
  // The fleet's shaping draws index arrivals, so backends must not
  // reorder a burst (io_uring links its send SQEs for exactly this).
  std::vector<Bytes> bodies;
  std::vector<const Bytes*> frames;
  for (unsigned i = 0; i < 300; ++i)
    bodies.push_back(Bytes{static_cast<std::uint8_t>(i >> 8),
                           static_cast<std::uint8_t>(i & 0xFF)});
  for (const Bytes& body : bodies) frames.push_back(&body);
  ASSERT_EQ(a->send_frames(b->local_endpoint(), kChanData, frames), 300u);
  std::vector<Datagram> in;
  while (in.size() < 300 && b->receive(in, 2000) > 0) {
  }
  ASSERT_EQ(in.size(), 300u);
  for (unsigned i = 0; i < 300; ++i) {
    ASSERT_EQ(in[i].payload.size(), 2u);
    EXPECT_EQ((unsigned{in[i].payload[0]} << 8) | in[i].payload[1], i);
  }
}

TEST_P(WireUdpBackends, OversizePayloadIsRefusedNotTruncated) {
  auto a = make_socket_wire(GetParam(), kLoopback, 0, 600);
  auto b = make_socket_wire(GetParam(), kLoopback, 0, 600);
  EXPECT_EQ(a->max_payload(), 600u - 28u - 1u);
  const Bytes too_big(a->max_payload() + 1, 0xEE);
  EXPECT_FALSE(a->send(b->local_endpoint(), kChanData, too_big));
  const Bytes exact(a->max_payload(), 0xEE);
  EXPECT_TRUE(a->send(b->local_endpoint(), kChanData, exact));
  std::vector<Datagram> in;
  ASSERT_EQ(b->receive(in, 2000), 1u);
  EXPECT_EQ(in[0].payload.size(), exact.size());
}

TEST_P(WireUdpBackends, SmallSessionRecoversOverRealSockets) {
  DaemonConfig dc;
  dc.clients = 256;
  dc.batches = 2;
  dc.churn_pool = 64;
  dc.churn_joins = 24;
  dc.churn_leaves = 24;
  dc.retry_ms = 20;
  dc.round_wait_ms = 20000;
  auto r = run_udp(GetParam(), dc, {slice(0, 128), slice(128, 128)});
  EXPECT_EQ(r.daemon.batches_run, 2u);
  EXPECT_EQ(r.daemon.recovered, 512u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_EQ(r.daemon.endpoints, 2u);
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.unrecovered, 0u);
  }
}

TEST_P(WireUdpBackends, ShapedLossRecoversOverRealSockets) {
  DaemonConfig dc;
  dc.clients = 192;
  dc.batches = 1;
  dc.churn_pool = 128;
  dc.churn_joins = 64;
  dc.churn_leaves = 64;
  dc.protocol.packet_size = 300;  // several FEC blocks => real NACK traffic
  dc.retry_ms = 20;
  dc.round_wait_ms = 20000;
  auto fc = slice(0, 192);
  fc.shaping.down_loss = 0.2;
  fc.shaping.up_loss = 0.1;
  fc.shaping.seed = 0x51CC;
  auto r = run_udp(GetParam(), dc, {fc});
  EXPECT_EQ(r.daemon.recovered, 192u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_GT(r.fleets[0].shaped_off, 0u);
  EXPECT_TRUE(r.fleets[0].finished);
  EXPECT_EQ(r.fleets[0].unrecovered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kernel, WireUdpBackends,
    ::testing::Values(WireBackend::kEpoll, WireBackend::kIoUring),
    [](const ::testing::TestParamInfo<WireBackend>& info) {
      return backend_name(info.param);
    });

// Acceptance run: a full 2^15-client churn batch over UDP loopback with
// every client recovering. Four fleet endpoints multiplex 8192 virtual
// clients each — the tools/rekey_load architecture in miniature.
TEST(WireUdpSoak, FullChurnBatchAt32768Clients) {
  constexpr std::uint32_t kN = 1u << 15;
  DaemonConfig dc;
  dc.clients = kN;
  dc.batches = 1;
  dc.churn_pool = 1024;
  dc.churn_joins = 512;
  dc.churn_leaves = 512;
  dc.retry_ms = 50;
  dc.round_wait_ms = 120000;
  std::vector<FleetConfig> fleets;
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto fc = slice(i * (kN / 4), kN / 4);
    fc.idle_timeout_ms = 180000;
    fleets.push_back(fc);
  }
  auto r = run_udp(WireBackend::kEpoll, dc, fleets);
  EXPECT_EQ(r.daemon.batches_run, 1u);
  EXPECT_EQ(r.daemon.endpoints, 4u);
  EXPECT_EQ(r.daemon.recovered, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(r.daemon.gave_up, 0u);
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.recovered, fs.clients);
    EXPECT_EQ(fs.unrecovered, 0u);
  }
}

}  // namespace
}  // namespace rekey::wire
