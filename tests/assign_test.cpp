// UKA (User-oriented Key Assignment) tests: the single-packet-per-user
// guarantee, range monotonicity, capacity limits, and duplication
// accounting (paper §4.3, §4.4).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "keytree/marking.h"
#include "packet/assign.h"

namespace rekey::packet {
namespace {

tree::RekeyPayload make_payload(std::size_t n, std::size_t joins,
                                std::size_t leaves, unsigned d,
                                std::uint64_t seed) {
  Rng rng(seed);
  tree::KeyTree t(d, rng.next_u64());
  t.populate(n);
  std::vector<tree::MemberId> ls;
  for (const auto pick : rng.sample_without_replacement(n, leaves))
    ls.push_back(static_cast<tree::MemberId>(pick));
  std::vector<tree::MemberId> js;
  for (std::size_t j = 0; j < joins; ++j)
    js.push_back(static_cast<tree::MemberId>(n + j));
  tree::Marker m(t);
  const auto upd = m.run(js, ls);
  return tree::generate_rekey_payload(t, upd, 1);
}

// All encryption ids a user needs, from the payload.
std::set<std::uint32_t> needed_ids(const tree::RekeyPayload& p,
                                   tree::NodeId user) {
  std::set<std::uint32_t> out;
  for (const auto idx : p.user_needs.at(user))
    out.insert(static_cast<std::uint32_t>(p.encryptions[idx].enc_id));
  return out;
}

TEST(Uka, EmptyPayloadNoPackets) {
  tree::RekeyPayload p;
  const auto a = assign_keys(p, 1027);
  EXPECT_TRUE(a.packets.empty());
  EXPECT_EQ(a.duplication_overhead(), 0.0);
}

TEST(Uka, EachUserCoveredByExactlyOnePacket) {
  const auto payload = make_payload(256, 0, 64, 4, 1);
  const auto a = assign_keys(payload, 1027);
  for (const auto& [user, needs] : payload.user_needs) {
    int covering = 0;
    for (const auto& pkt : a.packets)
      if (pkt.frm_id <= user && user <= pkt.to_id) ++covering;
    EXPECT_EQ(covering, 1) << "user " << user;
  }
}

TEST(Uka, CoveringPacketContainsAllUserNeeds) {
  const auto payload = make_payload(256, 32, 64, 4, 2);
  const auto a = assign_keys(payload, 1027);
  for (const auto& [user, needs] : payload.user_needs) {
    const auto want = needed_ids(payload, user);
    for (const auto& pkt : a.packets) {
      if (!(pkt.frm_id <= user && user <= pkt.to_id)) continue;
      std::set<std::uint32_t> have;
      for (const auto& e : pkt.entries) have.insert(e.enc_id);
      for (const auto id : want)
        EXPECT_TRUE(have.count(id))
            << "user " << user << " missing encryption " << id;
    }
  }
}

TEST(Uka, RangesSortedAndDisjoint) {
  const auto payload = make_payload(512, 0, 128, 4, 3);
  const auto a = assign_keys(payload, 1027);
  ASSERT_GT(a.packets.size(), 1u);
  for (std::size_t i = 0; i < a.packets.size(); ++i)
    EXPECT_LE(a.packets[i].frm_id, a.packets[i].to_id);
  for (std::size_t i = 1; i < a.packets.size(); ++i)
    EXPECT_LT(a.packets[i - 1].to_id, a.packets[i].frm_id);
}

TEST(Uka, CapacityRespected) {
  const auto payload = make_payload(1024, 0, 256, 4, 4);
  for (const std::size_t size : {200u, 500u, 1027u}) {
    const auto a = assign_keys(payload, size);
    for (const auto& pkt : a.packets) {
      EXPECT_LE(pkt.entries.size(), max_entries(size));
      EXPECT_LE(pkt.serialize(size).size(), size);
    }
  }
}

TEST(Uka, EntriesBottomUpWithinPacket) {
  const auto payload = make_payload(256, 0, 64, 4, 5);
  const auto a = assign_keys(payload, 1027);
  for (const auto& pkt : a.packets)
    for (std::size_t i = 1; i < pkt.entries.size(); ++i)
      EXPECT_GT(pkt.entries[i - 1].enc_id, pkt.entries[i].enc_id);
}

TEST(Uka, HeadersCarryMessageMetadata) {
  const auto payload = make_payload(64, 0, 16, 4, 6);
  const auto a = assign_keys(payload, 1027);
  for (const auto& pkt : a.packets) {
    EXPECT_EQ(pkt.msg_id, payload.msg_id % 64);
    EXPECT_EQ(pkt.max_kid, payload.max_kid);
  }
}

TEST(Uka, SmallerPacketsMeanMorePacketsAndMoreDuplication) {
  const auto payload = make_payload(1024, 0, 256, 4, 7);
  const auto big = assign_keys(payload, 1027);
  const auto small = assign_keys(payload, 300);
  EXPECT_GT(small.packets.size(), big.packets.size());
  EXPECT_GE(small.duplication_overhead(), big.duplication_overhead());
}

TEST(Uka, DuplicationAccountingConsistent) {
  const auto payload = make_payload(512, 128, 128, 4, 8);
  const auto a = assign_keys(payload, 1027);
  std::size_t entries = 0;
  for (const auto& pkt : a.packets) entries += pkt.entries.size();
  EXPECT_EQ(entries, a.total_entries);
  EXPECT_EQ(a.unique_encryptions, payload.encryptions.size());
  EXPECT_GE(a.total_entries, a.unique_encryptions);
  // The paper's empirical bound: duplication < (log_d N - 1) / 46 * ~2.
  EXPECT_LT(a.duplication_overhead(), 0.3);
}

TEST(Uka, SingleUserBatchOnePacket) {
  const auto payload = make_payload(64, 1, 1, 4, 9);
  const auto a = assign_keys(payload, 1027);
  EXPECT_GE(a.packets.size(), 1u);
  // 64 users with a height-3 tree: all needs fit one packet? Not
  // necessarily, but every packet must be non-empty and within range.
  for (const auto& pkt : a.packets) EXPECT_FALSE(pkt.entries.empty());
}

TEST(SequentialBaseline, NoDuplication) {
  const auto payload = make_payload(512, 0, 128, 4, 20);
  const auto a = assign_keys_sequential(payload, 1027);
  EXPECT_EQ(a.total_entries, a.unique_encryptions);
  EXPECT_DOUBLE_EQ(a.duplication_overhead(), 0.0);
}

TEST(SequentialBaseline, FewerOrEqualPacketsThanUka) {
  const auto payload = make_payload(1024, 0, 256, 4, 21);
  const auto seq = assign_keys_sequential(payload, 1027);
  const auto uka = assign_keys(payload, 1027);
  EXPECT_LE(seq.packets.size(), uka.packets.size());
}

TEST(SequentialBaseline, EveryEncryptionCarriedOnce) {
  const auto payload = make_payload(256, 32, 64, 4, 22);
  const auto a = assign_keys_sequential(payload, 1027);
  std::set<std::uint32_t> seen;
  for (const auto& pkt : a.packets)
    for (const auto& e : pkt.entries)
      EXPECT_TRUE(seen.insert(e.enc_id).second);
  EXPECT_EQ(seen.size(), payload.encryptions.size());
}

TEST(SequentialBaseline, UsersNeedMultiplePackets) {
  const auto payload = make_payload(4096, 0, 1024, 4, 23);
  const auto seq = assign_keys_sequential(payload, 1027);
  const auto per_user = packets_needed_per_user(payload, seq);
  double mean = 0;
  for (const auto n : per_user) mean += static_cast<double>(n);
  mean /= static_cast<double>(per_user.size());
  // The whole point of UKA: without it a user's chain spans packets.
  EXPECT_GT(mean, 1.5);
}

TEST(PacketsNeededPerUser, UkaIsAlwaysOne) {
  const auto payload = make_payload(1024, 128, 256, 4, 24);
  const auto uka = assign_keys(payload, 1027);
  for (const auto n : packets_needed_per_user(payload, uka))
    EXPECT_EQ(n, 1u);
}

TEST(PacketsNeededPerUser, EmptyPayload) {
  tree::RekeyPayload payload;
  const auto a = assign_keys(payload, 1027);
  EXPECT_TRUE(packets_needed_per_user(payload, a).empty());
}

TEST(Uka, PaperScaleMessageSize) {
  // N=4096, J=0, L=N/4: the paper reports ~90-107 ENC packets.
  const auto payload = make_payload(4096, 0, 1024, 4, 10);
  const auto a = assign_keys(payload, 1027);
  EXPECT_GT(a.packets.size(), 60u);
  EXPECT_LT(a.packets.size(), 130u);
  // Duplication overhead around 0.05-0.12 at this shape (paper Fig 7).
  EXPECT_GT(a.duplication_overhead(), 0.01);
  EXPECT_LT(a.duplication_overhead(), 0.2);
}

}  // namespace
}  // namespace rekey::packet
