// Analysis-module tests: hypergeometric helpers, the batch-cost model
// against Monte-Carlo marking runs, the Bernoulli transport model against
// the packet-level simulator, and the scalability model's monotonicity.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "analysis/batch_cost.h"
#include "analysis/scalability.h"
#include "analysis/transport_model.h"
#include "common/rng.h"
#include "common/stats.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "transport/session.h"
#include "transport/workload.h"

namespace rekey::analysis {
namespace {

TEST(Hypergeometric, NoDepartureBasics) {
  EXPECT_DOUBLE_EQ(prob_no_departure(10, 0, 4), 1.0);
  EXPECT_DOUBLE_EQ(prob_no_departure(10, 7, 4), 0.0);  // m + L > N
  // One departure among 10, subtree of 4: P(miss) = 6/10... no:
  // C(6,1)... P = C(N-m, L)/C(N, L) = C(6,1)/C(10,1) = 0.6.
  EXPECT_NEAR(prob_no_departure(10, 1, 4), 0.6, 1e-12);
}

TEST(Hypergeometric, AllDepartedBasics) {
  EXPECT_DOUBLE_EQ(prob_all_departed(10, 3, 4), 0.0);  // m > L
  // L=4, m=4: C(6,0)/C(10,4) = 1/210.
  EXPECT_NEAR(prob_all_departed(10, 4, 4), 1.0 / 210.0, 1e-12);
  EXPECT_DOUBLE_EQ(prob_all_departed(10, 10, 10), 1.0);
}

TEST(Hypergeometric, ComplementaryAtFullDeparture) {
  EXPECT_DOUBLE_EQ(prob_no_departure(16, 16, 4), 0.0);
  EXPECT_DOUBLE_EQ(prob_all_departed(16, 16, 4), 1.0);
}

double monte_carlo_encryptions(std::size_t N, std::size_t J, std::size_t L,
                               unsigned d, int trials) {
  RunningStats s;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(t) * 7919 + N + J + L);
    tree::KeyTree kt(d, rng.next_u64());
    kt.populate(N);
    std::vector<tree::MemberId> leaves;
    for (const auto pick : rng.sample_without_replacement(N, L))
      leaves.push_back(static_cast<tree::MemberId>(pick));
    std::vector<tree::MemberId> joins;
    for (std::size_t j = 0; j < J; ++j)
      joins.push_back(static_cast<tree::MemberId>(N + j));
    tree::Marker m(kt);
    const auto upd = m.run(joins, leaves);
    const auto payload = tree::generate_rekey_payload(kt, upd, 1);
    s.add(static_cast<double>(payload.encryptions.size()));
  }
  return s.mean();
}

TEST(BatchCost, MatchesMonteCarloPureLeave) {
  for (const std::size_t L : {64u, 256u, 512u}) {
    const double analytic = expected_encryptions(1024, 0, L, 4);
    const double mc = monte_carlo_encryptions(1024, 0, L, 4, 30);
    EXPECT_NEAR(analytic / mc, 1.0, 0.05) << "L=" << L;
  }
}

TEST(BatchCost, MatchesMonteCarloReplace) {
  for (const std::size_t L : {64u, 256u}) {
    const double analytic = expected_encryptions(1024, L, L, 4);
    const double mc = monte_carlo_encryptions(1024, L, L, 4, 30);
    EXPECT_NEAR(analytic / mc, 1.0, 0.05) << "L=" << L;
  }
}

TEST(BatchCost, MatchesMonteCarloMixedJLeL) {
  const double analytic = expected_encryptions(1024, 128, 256, 4);
  const double mc = monte_carlo_encryptions(1024, 128, 256, 4, 30);
  EXPECT_NEAR(analytic / mc, 1.0, 0.07);
}

TEST(BatchCost, ApproximatesMonteCarloPureJoin) {
  // The J > L regime uses a deterministic fill/split model; allow a wider
  // band.
  const double analytic = expected_encryptions(1024, 256, 0, 4);
  const double mc = monte_carlo_encryptions(1024, 256, 0, 4, 10);
  EXPECT_NEAR(analytic / mc, 1.0, 0.25);
}

TEST(BatchCost, ZeroBatchZeroCost) {
  EXPECT_DOUBLE_EQ(expected_encryptions(1024, 0, 0, 4), 0.0);
}

TEST(BatchCost, ReplaceCostGrowsWithL) {
  double prev = 0.0;
  for (const std::size_t L : {16u, 64u, 256u, 1024u}) {
    const double c = expected_encryptions(4096, L, L, 4);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(BatchCost, PureLeaveCostPeaksNearNOverD) {
  // Paper Fig 6: cost rises then falls as L grows (pruning takes over).
  const double at_quarter = expected_encryptions(4096, 0, 1024, 4);
  const double at_all = expected_encryptions(4096, 0, 4000, 4);
  EXPECT_GT(at_quarter, at_all);
}

TEST(BatchCost, ExpectedPacketsScale) {
  // N=4096, J=0, L=N/4 should be in the paper's ~90-110 packet range.
  const double pkts = expected_enc_packets(4096, 0, 1024, 4, 46);
  EXPECT_GT(pkts, 60.0);
  EXPECT_LT(pkts, 130.0);
}

TEST(BatchCost, NonPowerOfDegreeGroupSizes) {
  // Regression: when N is not a power of d the full-tree capacity d^h
  // exceeds N and the top levels' nominal leaf spans used to overshoot
  // the group, tripping the hypergeometric precondition (m <= N). The
  // spans are clamped to N now; the model must evaluate finitely across
  // the whole KS1 sweep, including N = 2^17 and 2^22 (d = 4).
  for (const std::size_t N :
       {std::size_t{1} << 13, std::size_t{1} << 17, std::size_t{1} << 22}) {
    const std::pair<std::size_t, std::size_t> mixes[] = {
        {N / 16, N / 16}, {0, N / 4}, {N / 4, 0}};
    for (const auto& [J, L] : mixes) {
      const double c = expected_encryptions(N, J, L, 4);
      EXPECT_TRUE(std::isfinite(c)) << "N=" << N << " J=" << J << " L=" << L;
      EXPECT_GT(c, 0.0) << "N=" << N << " J=" << J << " L=" << L;
      // Hard upper bound: every departure/join marks at most its full
      // root path (h levels x d encryptions each) plus a split.
      const unsigned h = 12;  // ceil(log4 2^22)
      EXPECT_LT(c, static_cast<double>((J + L + 1) * (h + 1) * 4))
          << "N=" << N << " J=" << J << " L=" << L;
    }
  }
}

TEST(BatchCost, DuplicationBoundMatchesPaperForm) {
  // (log_d N - 1) / 46 for N = 4096, d = 4 -> 5/46.
  EXPECT_NEAR(duplication_overhead_bound(4096, 4, 46), 5.0 / 46.0, 1e-12);
}

TEST(TransportModel, CombinedLoss) {
  EXPECT_NEAR(combined_loss(0.01, 0.2), 1 - 0.99 * 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(combined_loss(0.0, 0.0), 0.0);
}

TEST(TransportModel, ProbAtLeastEdges) {
  EXPECT_DOUBLE_EQ(prob_at_least(10, 0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(prob_at_least(10, 0.5, 11), 0.0);
  EXPECT_DOUBLE_EQ(prob_at_least(5, 1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(prob_at_least(5, 0.0, 1), 0.0);
  // Bin(2, 0.5) >= 1: 0.75.
  EXPECT_NEAR(prob_at_least(2, 0.5, 1), 0.75, 1e-12);
}

TEST(TransportModel, Round1FailureMonotoneInProactivity) {
  double prev = 1.0;
  for (const std::size_t a : {0u, 2u, 4u, 8u}) {
    const double f = round1_failure_prob(10, a, 0.2);
    EXPECT_LT(f, prev);
    prev = f;
  }
}

TEST(TransportModel, NackPredictionMatchesBernoulliSimulation) {
  // Run the real packet-level session on memoryless links and compare the
  // round-1 NACK count with the analytic expectation.
  transport::ProtocolConfig cfg;
  cfg.adaptive_rho = false;
  cfg.initial_rho = 1.0;
  transport::WorkloadConfig wc;
  wc.group_size = 2048;
  wc.leaves = 512;

  simnet::TopologyConfig tc;
  tc.num_users = 2048;
  tc.alpha = 0.2;
  tc.p_high = 0.2;
  tc.p_low = 0.02;
  tc.p_source = 0.01;
  tc.burst_loss = false;  // the model is memoryless

  RunningStats sim;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto msg = transport::generate_message(wc, 100 + seed, 1);
    simnet::Topology topo(tc, 200 + seed);
    transport::RhoController rho(cfg, seed);
    transport::RekeySession session(topo, cfg, rho);
    const auto m = session.run_message(msg.payload,
                                       std::move(msg.assignment),
                                       msg.old_ids);
    sim.add(static_cast<double>(m.round1_nacks));
  }
  // Predicted NACKs for the post-batch population (N - L users).
  const double predicted =
      expected_round1_nacks(wc.group_size - wc.leaves, tc.alpha, tc.p_high,
                            tc.p_low, tc.p_source, cfg.block_size, 0);
  EXPECT_NEAR(sim.mean() / predicted, 1.0, 0.35)
      << "sim=" << sim.mean() << " model=" << predicted;
}

TEST(TransportModel, ExpectedRoundsNearOneForLowLoss) {
  const double r = expected_user_rounds(10, 0, 0.02);
  EXPECT_GT(r, 1.0);
  EXPECT_LT(r, 1.1);
}

TEST(TransportModel, MoreRoundsUnderHigherLoss) {
  EXPECT_GT(expected_user_rounds(10, 0, 0.3),
            expected_user_rounds(10, 0, 0.05));
}

TEST(Scalability, CostsGrowWithGroupSize) {
  ServerCostParams params;
  double prev_cpu = 0.0, prev_bytes = 0.0;
  for (const std::size_t N : {1024u, 4096u, 16384u}) {
    const auto p = evaluate_scalability(N, 0, N / 4, 4, 10, 1.0, 1027, 46,
                                        params);
    EXPECT_GT(p.cpu_ms, prev_cpu);
    EXPECT_GT(p.bytes, prev_bytes);
    prev_cpu = p.cpu_ms;
    prev_bytes = p.bytes;
  }
}

TEST(Scalability, PacingDominatesAtPaperSendRate) {
  // At 10 packets/s, pushing ~100 packets takes ~10 s: the pacing bound
  // should dominate CPU for paper-scale groups.
  ServerCostParams params;
  const auto p =
      evaluate_scalability(4096, 0, 1024, 4, 10, 1.0, 1027, 46, params);
  EXPECT_DOUBLE_EQ(p.min_interval_s, p.pacing_s);
  EXPECT_GT(p.min_interval_s, 5.0);
  EXPECT_LT(p.max_rekeys_per_hour, 720.0);
}

TEST(Scalability, HigherRhoCostsMoreBandwidth) {
  ServerCostParams params;
  const auto lo =
      evaluate_scalability(4096, 0, 1024, 4, 10, 1.0, 1027, 46, params);
  const auto hi =
      evaluate_scalability(4096, 0, 1024, 4, 10, 2.0, 1027, 46, params);
  EXPECT_GT(hi.bytes, lo.bytes);
  EXPECT_GT(hi.cpu_ms, lo.cpu_ms);
}

}  // namespace
}  // namespace rekey::analysis
