// Additional published test vectors for the crypto substrate: the
// remaining RFC 4231 HMAC cases, further FIPS-180 SHA-256 cases, the
// second RFC 8439 ChaCha20 keystream vector, and chunking-invariance
// properties under randomized splits.
#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace rekey::crypto {
namespace {

Bytes from_ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

Bytes from_hex(const std::string& hex) {
  Bytes out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  return out;
}

std::string digest_hex(const Sha256::Digest& d) {
  return rekey::to_hex(std::span(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP short-message cases.
TEST(Sha256Vectors, OneByte) {
  const Bytes msg{0xbd};
  EXPECT_EQ(digest_hex(Sha256::hash(msg)),
            "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b");
}

TEST(Sha256Vectors, FourBytes) {
  const Bytes msg{0xc9, 0x8c, 0x8e, 0x55};
  EXPECT_EQ(digest_hex(Sha256::hash(msg)),
            "7abc22c0ae5af26ce93dbb94433a0e0b2e119d014f8e7f65bd56c61ccccd9504");
}

TEST(Sha256Vectors, FiftySixBytes) {
  // Exactly the padding boundary (length field wraps to a second block).
  const Bytes msg(56, 0);
  EXPECT_EQ(digest_hex(Sha256::hash(msg)),
            "d4817aa5497628e7c77e6b606107042bbba3130888c5f47a375e6179be789fbb");
}

TEST(Sha256Vectors, SixtyFourByteZeroBlock) {
  const Bytes msg(64, 0);
  EXPECT_EQ(digest_hex(Sha256::hash(msg)),
            "f5a5fd42d16a20302798ef6ed309979b43003d2320d9f0e8ea9831a92759fb4b");
}

// RFC 4231 test case 4: key 0x0102..19, data 0xcd*50.
TEST(HmacVectors, Rfc4231Case4) {
  Bytes key;
  for (int i = 1; i <= 25; ++i) key.push_back(static_cast<std::uint8_t>(i));
  const Bytes data(50, 0xcd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

// RFC 4231 test case 5: truncated output (we compare the full tag's
// leading 128 bits as the RFC specifies the truncation).
TEST(HmacVectors, Rfc4231Case5Truncated) {
  const Bytes key(20, 0x0c);
  const auto mac =
      hmac_sha256(key, from_ascii("Test With Truncation"));
  EXPECT_EQ(rekey::to_hex(std::span(mac.data(), 16)),
            "a3b6167473100ee06e0c796c2955552b");
}

// RFC 4231 test case 7: both key and data larger than one block.
TEST(HmacVectors, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(
      key, from_ascii("This is a test using a larger than block-size key "
                      "and a larger than block-size data. The key needs to "
                      "be hashed before being used by the HMAC algorithm."));
  EXPECT_EQ(digest_hex(mac),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// RFC 8439 §2.3.2 *first* block (counter = 0 keystream from Appendix A.1
// test vector #1: all-zero key and nonce).
TEST(ChaCha20Vectors, AppendixA1Vector1) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  ChaCha20 c(key, nonce);
  const auto block = c.keystream_block(0);
  const Bytes expect = from_hex(
      "76b8e0ada0f13d90405d6ae55386bd28bdd219b8a08ded1aa836efcc8b770dc7"
      "da41597c5157488d7724e03fb8d84a376a43b8f41518a11cc387b669b2ee6586");
  EXPECT_EQ(rekey::to_hex(block), rekey::to_hex(expect));
}

// RFC 8439 Appendix A.1 test vector #2: counter = 1, all-zero key/nonce.
TEST(ChaCha20Vectors, AppendixA1Vector2) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  ChaCha20 c(key, nonce);
  const auto block = c.keystream_block(1);
  EXPECT_EQ(rekey::to_hex(std::span(block.data(), 16)),
            "9f07e7be5551387a98ba977c732d080d");
}

TEST(ChunkingInvariance, Sha256RandomSplits) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t len = rng.next_in(0, 500);
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_in(0, 255));
    const auto oneshot = Sha256::hash(msg);
    Sha256 h;
    std::size_t off = 0;
    while (off < msg.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.next_in(0, 96), msg.size() - off);
      h.update(std::span(msg).subspan(off, n));
      off += n;
    }
    EXPECT_EQ(h.finish(), oneshot) << "len=" << len;
  }
}

TEST(ChunkingInvariance, ChaCha20RandomSplits) {
  Rng rng(2);
  std::array<std::uint8_t, 32> key{};
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i * 3);
  std::array<std::uint8_t, 12> nonce{};
  nonce[0] = 9;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t len = 1 + rng.next_in(0, 400);
    Bytes bulk(len, 0x42);
    Bytes chunked = bulk;
    ChaCha20 a(key, nonce);
    a.apply(bulk);
    ChaCha20 b(key, nonce);
    std::size_t off = 0;
    while (off < chunked.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.next_in(0, 70), chunked.size() - off);
      b.apply(std::span(chunked).subspan(off, n));
      off += n;
    }
    EXPECT_EQ(bulk, chunked) << "len=" << len;
  }
}

TEST(KeystreamDistinctness, BlocksAndNoncesNeverCollide) {
  std::array<std::uint8_t, 32> key{};
  key[31] = 1;
  std::array<std::uint8_t, 12> n1{}, n2{};
  n2[11] = 1;
  ChaCha20 a(key, n1), b(key, n2);
  EXPECT_NE(a.keystream_block(0), b.keystream_block(0));
  EXPECT_NE(a.keystream_block(0), a.keystream_block(1));
}

}  // namespace
}  // namespace rekey::crypto
