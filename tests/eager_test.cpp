// Eager (event-driven) transport tests: full delivery under loss, NACK
// deduplication against the in-flight ledger, and the latency win over
// the round-based session.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "transport/eager.h"
#include "transport/session.h"
#include "transport/workload.h"

namespace rekey::transport {
namespace {

simnet::TopologyConfig topo_config(std::size_t n, double alpha,
                                   double p_high) {
  simnet::TopologyConfig t;
  t.num_users = n;
  t.alpha = alpha;
  t.p_high = p_high;
  t.p_low = 0.02;
  t.p_source = 0.01;
  return t;
}

EagerMetrics run_eager(std::size_t n, std::size_t leaves, double alpha,
                       double p_high, std::uint64_t seed,
                       int proactive = 0, std::size_t k = 10) {
  WorkloadConfig wc;
  wc.group_size = n;
  wc.leaves = leaves;
  auto msg = generate_message(wc, seed, 1);
  simnet::Topology topo(topo_config(n, alpha, p_high), seed ^ 0xEA6E);
  ProtocolConfig cfg;
  cfg.block_size = k;
  EagerSession session(topo, cfg);
  return session.run_message(msg.payload, std::move(msg.assignment),
                             msg.old_ids, proactive);
}

TEST(Eager, LosslessDeliversEveryoneFirstPass) {
  const auto m = run_eager(256, 64, 0.0, 0.0, 1);
  EXPECT_EQ(m.first_pass_recoveries, m.users);
  EXPECT_EQ(m.nacks_received, 0u);
  EXPECT_EQ(m.multicast_sent, m.enc_packets +
                                  (m.enc_packets % 10 == 0
                                       ? 0u
                                       : 10 - m.enc_packets % 10));
  EXPECT_GT(m.max_latency_ms, 0.0);
}

TEST(Eager, LossyNetworkStillDeliversEveryone) {
  // run_message ENSUREs full delivery internally; reaching here means no
  // user was left behind even at high loss.
  const auto m = run_eager(512, 128, 0.3, 0.4, 2);
  EXPECT_EQ(m.users, 512u - 128u);
  EXPECT_GT(m.nacks_received, 0u);
  EXPECT_GT(m.multicast_sent, m.enc_packets);
}

TEST(Eager, ProactiveParitiesImproveFirstPassRecovery) {
  // In eager mode users NACK the moment they detect loss — before the
  // proactive parities have arrived — so the NACK count itself barely
  // moves (the in-flight ledger suppresses the response instead). What
  // proactivity buys is recovery without any retransmission round-trip.
  const auto none = run_eager(512, 128, 0.2, 0.2, 3, 0);
  const auto some = run_eager(512, 128, 0.2, 0.2, 3, 4);
  // Retransmitted (reactive) parities beyond the initial transmission:
  // proactivity pre-empts most of them via the in-flight dedup.
  const std::size_t blocks = (none.enc_packets + 9) / 10;
  const std::size_t retrans_none =
      none.multicast_sent - blocks * 10;  // slots only
  const std::size_t retrans_some =
      some.multicast_sent - blocks * 10 - blocks * 4;  // slots + proactive
  EXPECT_LT(retrans_some, retrans_none);
  // And users that would have waited a retransmission RTT now recover as
  // the proactive wave lands: the mean latency cannot get worse.
  EXPECT_LE(some.mean_latency_ms, none.mean_latency_ms * 1.05);
}

TEST(Eager, DedupKeepsRetransmissionsProportionate) {
  // Even with many NACKers per block, the in-flight ledger should keep
  // total retransmissions within a small multiple of the message size.
  const auto m = run_eager(1024, 256, 0.2, 0.2, 4);
  EXPECT_LT(m.bandwidth_overhead(), 3.0);
}

TEST(Eager, LowerWorstCaseLatencyThanRoundBased) {
  WorkloadConfig wc;
  wc.group_size = 512;
  wc.leaves = 128;
  ProtocolConfig cfg;

  // Round-based reference on identical workload parameters.
  auto msg1 = generate_message(wc, 5, 1);
  simnet::Topology topo1(topo_config(512, 0.2, 0.2), 91);
  RhoController rho(cfg, 5);
  RekeySession round_based(topo1, cfg, rho);
  const auto rb = round_based.run_message(
      msg1.payload, std::move(msg1.assignment), msg1.old_ids);

  auto msg2 = generate_message(wc, 5, 1);
  simnet::Topology topo2(topo_config(512, 0.2, 0.2), 91);
  EagerSession eager(topo2, cfg);
  const auto eg = eager.run_message(msg2.payload,
                                    std::move(msg2.assignment),
                                    msg2.old_ids);

  // The round-based session holds everyone to round boundaries; eager
  // recovery completes well inside that envelope.
  EXPECT_LT(eg.max_latency_ms, rb.duration_ms);
  EXPECT_GT(eg.first_pass_recoveries, eg.users * 8 / 10);
}

TEST(Eager, SmallBlocksWork) {
  const auto m = run_eager(256, 64, 0.2, 0.2, 6, 0, 1);
  EXPECT_EQ(m.users, 192u);
}

TEST(Eager, BandwidthComparableToRoundBased) {
  WorkloadConfig wc;
  wc.group_size = 1024;
  wc.leaves = 256;
  ProtocolConfig cfg;

  auto msg1 = generate_message(wc, 7, 1);
  simnet::Topology topo1(topo_config(1024, 0.2, 0.2), 77);
  RhoController rho(cfg, 7);
  RekeySession round_based(topo1, cfg, rho);
  const auto rb = round_based.run_message(
      msg1.payload, std::move(msg1.assignment), msg1.old_ids);

  auto msg2 = generate_message(wc, 7, 1);
  simnet::Topology topo2(topo_config(1024, 0.2, 0.2), 77);
  EagerSession eager(topo2, cfg);
  const auto eg = eager.run_message(msg2.payload,
                                    std::move(msg2.assignment),
                                    msg2.old_ids);
  EXPECT_LT(eg.bandwidth_overhead(), rb.bandwidth_overhead() * 1.5);
}

}  // namespace
}  // namespace rekey::transport
