// Block-id estimation tests (paper Appendix D): exactness when the
// neighbour conditions hold, range correctness under arbitrary loss, and
// the maxKID-derived upper bound.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/rng.h"
#include "packet/estimate.h"

namespace rekey::packet {
namespace {

// Build a synthetic message: `n` ENC packets each serving exactly 4 user
// ids, partitioned into blocks of k. Returns headers in slot order.
struct SyntheticMessage {
  std::vector<EncHeader> headers;  // index = block * k + seq (no dups)
  std::size_t k;
  unsigned degree = 4;
};

SyntheticMessage make_message(std::size_t n_packets, std::size_t k,
                              std::uint16_t first_user = 100,
                              std::uint16_t users_per_packet = 4) {
  SyntheticMessage m;
  m.k = k;
  std::uint16_t next = first_user;
  const std::size_t blocks = (n_packets + k - 1) / k;
  const std::uint16_t last_user = static_cast<std::uint16_t>(
      first_user + n_packets * users_per_packet - 1);
  // maxKID consistent with ids: users in (nk, 4nk+4] -> nk >= last/4.
  const std::uint16_t max_kid = last_user / 4 + 1;
  for (std::size_t i = 0; i < n_packets; ++i) {
    EncHeader h;
    h.block_id = static_cast<std::uint16_t>(i / k);
    h.seq = static_cast<std::uint8_t>(i % k);
    h.frm_id = next;
    next = static_cast<std::uint16_t>(next + users_per_packet);
    h.to_id = static_cast<std::uint16_t>(next - 1);
    h.max_kid = max_kid;
    m.headers.push_back(h);
  }
  (void)blocks;
  return m;
}

TEST(Estimate, OwnPacketPinsBlock) {
  const auto msg = make_message(30, 10);
  BlockIdEstimator est(/*my_id=*/msg.headers[17].frm_id, 10, 4);
  est.observe(msg.headers[3]);
  est.observe(msg.headers[17]);
  EXPECT_TRUE(est.exact());
  EXPECT_TRUE(est.found_own_packet());
  EXPECT_EQ(est.low(), 1u);
}

TEST(Estimate, UnboundedBeforeAnyPacket) {
  BlockIdEstimator est(500, 10, 4);
  EXPECT_FALSE(est.bounded());
}

TEST(Estimate, NeighboursPinExactly) {
  // Appendix D: receiving one packet of Sl and one of Su pins block i.
  const auto msg = make_message(30, 10);
  const std::size_t lost = 14;  // block 1, seq 4
  const std::uint16_t me = msg.headers[lost].frm_id;
  BlockIdEstimator est(me, 10, 4);
  est.observe(msg.headers[lost - 1]);  // in Sl
  est.observe(msg.headers[lost + 1]);  // in Su
  EXPECT_TRUE(est.exact());
  EXPECT_EQ(est.low(), 1u);
  EXPECT_FALSE(est.found_own_packet());
}

TEST(Estimate, LastSeqOfPreviousBlockRaisesLow) {
  const auto msg = make_message(30, 10);
  const std::size_t lost = 10;  // block 1, seq 0
  const std::uint16_t me = msg.headers[lost].frm_id;
  BlockIdEstimator est(me, 10, 4);
  est.observe(msg.headers[9]);  // block 0, seq 9 == k-1: low becomes 1
  EXPECT_GE(est.low(), 1u);
  est.observe(msg.headers[11]);  // block 1, seq 1 > 0: high <= 1
  EXPECT_TRUE(est.exact());
}

TEST(Estimate, FirstSeqOfNextBlockLowersHigh) {
  const auto msg = make_message(30, 10);
  const std::size_t lost = 9;  // block 0, seq 9
  const std::uint16_t me = msg.headers[lost].frm_id;
  BlockIdEstimator est(me, 10, 4);
  est.observe(msg.headers[10]);  // block 1, seq 0: high <= 0
  EXPECT_TRUE(est.bounded());
  EXPECT_EQ(est.high(), 0u);
}

TEST(Estimate, DuplicatesIgnored) {
  const auto msg = make_message(30, 10);
  EncHeader dup = msg.headers[9];  // would trigger the seq==k-1 rule
  dup.duplicate = true;
  const std::uint16_t me = msg.headers[10].frm_id;
  BlockIdEstimator est(me, 10, 4);
  est.observe(dup);
  EXPECT_FALSE(est.bounded());
}

TEST(Estimate, MaxKidBoundsHighWithoutLaterPackets) {
  const auto msg = make_message(30, 10);
  const std::uint16_t me = msg.headers[29].frm_id;  // last packet's user
  BlockIdEstimator est(me, 10, 4);
  est.observe(msg.headers[0]);  // only the first packet
  EXPECT_TRUE(est.bounded());
  EXPECT_GE(est.high(), 2u);  // truth is block 2
  EXPECT_LT(est.high(), 0xFFFFFFFFu);
}

// Property: under any random loss pattern, the surviving packets' estimate
// always brackets the true block.
class EstimateLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(EstimateLossSweep, RangeAlwaysContainsTruth) {
  const double loss = GetParam();
  Rng rng(static_cast<std::uint64_t>(loss * 1000) + 5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 5 + rng.next_in(0, 40);
    const std::size_t k = 1 + rng.next_in(0, 14);
    const auto msg = make_message(n, k);
    const std::size_t lost = rng.next_in(0, n - 1);
    const std::uint32_t true_block = msg.headers[lost].block_id;
    const std::uint16_t me = static_cast<std::uint16_t>(
        msg.headers[lost].frm_id + rng.next_in(0, 3));

    BlockIdEstimator est(me, k, 4);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == lost) continue;  // own packet always lost in this property
      if (rng.next_bool(loss)) continue;
      est.observe(msg.headers[i]);
    }
    if (!est.bounded()) continue;  // nothing received
    EXPECT_LE(est.low(), true_block) << "n=" << n << " k=" << k;
    EXPECT_GE(est.high(), true_block) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, EstimateLossSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.6, 0.9));

TEST(Estimate, InterleavedReceptionNarrowsQuickly) {
  // With interleaved sending, the seq-0 packets of every block arrive
  // first; after observing them all, the range collapses to one block.
  const auto msg = make_message(40, 10);  // 4 blocks
  const std::size_t lost = 25;            // block 2, seq 5
  const std::uint16_t me = msg.headers[lost].frm_id;
  BlockIdEstimator est(me, 10, 4);
  for (std::size_t b = 0; b < 4; ++b)
    est.observe(msg.headers[b * 10]);  // all seq-0 packets
  // Block 3's seq-0 packet has frm > me -> high <= 2; block 2 seq 0 has
  // to < me and seq 0 < k-1 -> low >= 2.
  EXPECT_TRUE(est.exact());
  EXPECT_EQ(est.low(), 2u);
}

}  // namespace
}  // namespace rekey::packet
