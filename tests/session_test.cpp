// End-to-end transport sessions over the simulated network: reliability
// under loss, multicast-only convergence, unicast fallback, adaptive rho
// behaviour, and deadline accounting.
#include <gtest/gtest.h>

#include <map>

#include "common/ensure.h"
#include "transport/session.h"
#include "transport/workload.h"

namespace rekey::transport {
namespace {

simnet::TopologyConfig topo_config(std::size_t n, double alpha,
                                   double p_high, double p_low,
                                   double p_src, bool burst = true) {
  simnet::TopologyConfig t;
  t.num_users = n;
  t.alpha = alpha;
  t.p_high = p_high;
  t.p_low = p_low;
  t.p_source = p_src;
  t.burst_loss = burst;
  return t;
}

MessageMetrics run_one(std::size_t n, std::size_t leaves,
                       const ProtocolConfig& cfg,
                       const simnet::TopologyConfig& tc,
                       std::uint64_t seed = 1) {
  WorkloadConfig wc;
  wc.group_size = n;
  wc.leaves = leaves;
  auto msg = generate_message(wc, seed, 1);
  simnet::Topology topo(tc, seed ^ 0xABCD);
  RhoController rho(cfg, seed);
  RekeySession session(topo, cfg, rho);
  return session.run_message(msg.payload, std::move(msg.assignment),
                             msg.old_ids);
}

TEST(Session, LosslessNetworkOneRound) {
  ProtocolConfig cfg;
  const auto m =
      run_one(256, 64, cfg, topo_config(256, 0.0, 0.0, 0.0, 0.0));
  EXPECT_EQ(m.multicast_rounds, 1);
  EXPECT_EQ(m.round1_nacks, 0u);
  EXPECT_EQ(m.recovered_in_round.at(1), m.users);
  EXPECT_EQ(m.unicast_users, 0u);
  EXPECT_EQ(m.multicast_sent, m.slots);  // rho = 1: no parities at all
  EXPECT_DOUBLE_EQ(m.rho_used, 1.0);
}

TEST(Session, EveryUserEventuallyRecoversMulticastOnly) {
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 0;  // multicast until done
  const auto m =
      run_one(512, 128, cfg, topo_config(512, 0.2, 0.2, 0.02, 0.01));
  std::size_t recovered = 0;
  for (const auto& [round, count] : m.recovered_in_round) recovered += count;
  EXPECT_EQ(recovered, m.users);
  EXPECT_EQ(m.unicast_users, 0u);
  EXPECT_GE(m.multicast_rounds, 2);
}

TEST(Session, UnicastFallbackCoversStragglers) {
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 1;
  const auto m =
      run_one(512, 128, cfg, topo_config(512, 0.3, 0.4, 0.02, 0.01), 3);
  std::size_t recovered_mc = 0;
  for (const auto& [round, count] : m.recovered_in_round)
    recovered_mc += count;
  EXPECT_EQ(recovered_mc + m.unicast_users, m.users);
  EXPECT_GT(m.unicast_users, 0u);
  EXPECT_GT(m.usr_packets, 0u);
  EXPECT_EQ(m.multicast_rounds, 1);
}

TEST(Session, ExtremeLossStillConverges) {
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 2;
  const auto m =
      run_one(64, 16, cfg, topo_config(64, 1.0, 0.7, 0.7, 0.05), 7);
  std::size_t total = m.unicast_users;
  for (const auto& [round, count] : m.recovered_in_round) total += count;
  EXPECT_EQ(total, m.users);
}

TEST(Session, ProactiveParitiesReduceRound1Nacks) {
  ProtocolConfig low, high;
  low.initial_rho = 1.0;
  low.adaptive_rho = false;
  high.initial_rho = 2.0;
  high.adaptive_rho = false;
  const auto tc = topo_config(1024, 0.2, 0.2, 0.02, 0.01);
  const auto m_low = run_one(1024, 256, low, tc, 11);
  const auto m_high = run_one(1024, 256, high, tc, 11);
  EXPECT_GT(m_low.round1_nacks, 4 * m_high.round1_nacks);
}

TEST(Session, AdaptiveRhoConvergesTowardsTarget) {
  // Run a sequence of messages; the round-1 NACK count should settle
  // near numNACK = 20 (paper Fig 13).
  ProtocolConfig cfg;
  cfg.num_nack_target = 20;
  WorkloadConfig wc;
  wc.group_size = 1024;
  wc.leaves = 256;
  simnet::Topology topo(topo_config(1024, 0.2, 0.2, 0.02, 0.01), 99);
  RhoController rho(cfg, 99);
  RekeySession session(topo, cfg, rho);
  std::vector<std::size_t> nacks;
  for (std::uint32_t i = 0; i < 12; ++i) {
    auto msg = generate_message(wc, 1000 + i, i);
    const auto m = session.run_message(msg.payload,
                                       std::move(msg.assignment),
                                       msg.old_ids);
    nacks.push_back(m.round1_nacks);
  }
  // Settled behaviour: last few messages within a loose band around 20.
  double tail = 0;
  for (std::size_t i = nacks.size() - 4; i < nacks.size(); ++i)
    tail += static_cast<double>(nacks[i]);
  tail /= 4;
  EXPECT_LT(tail, 60.0);
  EXPECT_GT(rho.rho(), 1.0);  // some proactivity was learned
}

TEST(Session, FixedRhoWhenAdaptationDisabled) {
  ProtocolConfig cfg;
  cfg.adaptive_rho = false;
  cfg.initial_rho = 1.3;
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.leaves = 64;
  simnet::Topology topo(topo_config(256, 0.2, 0.2, 0.02, 0.01), 5);
  RhoController rho(cfg, 5);
  RekeySession session(topo, cfg, rho);
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto msg = generate_message(wc, 2000 + i, i);
    session.run_message(msg.payload, std::move(msg.assignment), msg.old_ids);
    EXPECT_DOUBLE_EQ(rho.rho(), 1.3);
  }
}

TEST(Session, DeadlineAccounting) {
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 2;
  cfg.deadline_rounds = 2;
  const auto m =
      run_one(512, 128, cfg, topo_config(512, 0.3, 0.4, 0.05, 0.01), 13);
  std::size_t met = 0;
  for (const auto& [round, count] : m.recovered_in_round)
    if (round <= 2) met += count;
  EXPECT_EQ(m.deadline_misses, m.users - met);
}

TEST(Session, RecoveredCallbackDeliversUsableEntries) {
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 2;
  WorkloadConfig wc;
  wc.group_size = 128;
  wc.leaves = 32;
  auto msg = generate_message(wc, 21, 1);
  simnet::Topology topo(topo_config(128, 0.2, 0.2, 0.02, 0.01), 21);
  RhoController rho(cfg, 21);
  RekeySession session(topo, cfg, rho);
  std::map<std::size_t, std::size_t> entries_per_user;
  const auto m = session.run_message(
      msg.payload, std::move(msg.assignment), msg.old_ids,
      [&](std::size_t u, const UserTransport& state) {
        EXPECT_TRUE(state.recovered());
        entries_per_user[u] = state.entries().size();
      });
  EXPECT_EQ(entries_per_user.size(), m.users);
  for (const auto& [u, n] : entries_per_user) EXPECT_GE(n, 1u);
}

TEST(Session, BandwidthOverheadAtLeastSlotRatio) {
  ProtocolConfig cfg;
  const auto m =
      run_one(512, 128, cfg, topo_config(512, 0.2, 0.2, 0.02, 0.01), 17);
  EXPECT_GE(m.bandwidth_overhead(),
            static_cast<double>(m.slots) /
                static_cast<double>(m.enc_packets));
  EXPECT_GT(m.total_nacks, 0u);
}

TEST(Session, SmallBlockSizeStillReliable) {
  ProtocolConfig cfg;
  cfg.block_size = 1;
  cfg.max_multicast_rounds = 2;
  const auto m =
      run_one(256, 64, cfg, topo_config(256, 0.2, 0.2, 0.02, 0.01), 19);
  std::size_t total = m.unicast_users;
  for (const auto& [round, count] : m.recovered_in_round) total += count;
  EXPECT_EQ(total, m.users);
}

TEST(Session, LargeBlockSizeStillReliable) {
  ProtocolConfig cfg;
  cfg.block_size = 50;
  cfg.max_multicast_rounds = 2;
  const auto m =
      run_one(256, 64, cfg, topo_config(256, 0.2, 0.2, 0.02, 0.01), 23);
  std::size_t total = m.unicast_users;
  for (const auto& [round, count] : m.recovered_in_round) total += count;
  EXPECT_EQ(total, m.users);
}

TEST(Session, EarlyUnicastBySizeSwitches) {
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 0;
  cfg.early_unicast_by_size = true;
  const auto m =
      run_one(512, 128, cfg, topo_config(512, 0.2, 0.2, 0.02, 0.01), 29);
  // With a handful of stragglers after round 1, USR bytes are far below a
  // parity round: the session should have switched instead of multicasting
  // for many rounds.
  EXPECT_LE(m.multicast_rounds, 3);
  std::size_t total = m.unicast_users;
  for (const auto& [round, count] : m.recovered_in_round) total += count;
  EXPECT_EQ(total, m.users);
}

TEST(Session, WakeupResendsCachedNacksWithoutExtraRoundEnds) {
  // Regression: the unicast wake-up path used to call end_of_round again
  // on every wave for users the server had not heard from, re-running
  // round-end decode on a round that had already ended. It must resend
  // the cached entries instead, so a user sees at most one end_of_round
  // per multicast round.
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 1;
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.leaves = 64;
  auto msg = generate_message(wc, 37, 1);
  // Heavy loss on every link: round-1 NACKs are frequently lost, so the
  // unicast phase needs wake-up NACKs for users the server never heard.
  simnet::Topology topo(topo_config(256, 1.0, 0.6, 0.6, 0.05), 37);
  RhoController rho(cfg, 37);
  RekeySession session(topo, cfg, rho);
  int max_rounds_ended = 0;
  const auto m = session.run_message(
      msg.payload, std::move(msg.assignment), msg.old_ids,
      [&](std::size_t, const UserTransport& state) {
        max_rounds_ended = std::max(max_rounds_ended, state.rounds_ended());
      });
  ASSERT_GT(m.wakeup_nacks, 0u);
  EXPECT_LE(max_rounds_ended, m.multicast_rounds);
  std::size_t total = m.unicast_users;
  for (const auto& [round, count] : m.recovered_in_round) total += count;
  EXPECT_EQ(total, m.users);
}

TEST(Session, UsrBytesCountedInTotalBandwidthOverhead) {
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 1;
  const auto m =
      run_one(512, 128, cfg, topo_config(512, 0.3, 0.4, 0.02, 0.01), 3);
  ASSERT_GT(m.usr_packets, 0u);
  EXPECT_GT(m.usr_bytes, 0u);
  EXPECT_EQ(m.packet_size, cfg.packet_size);
  EXPECT_GT(m.total_bandwidth_overhead(), m.bandwidth_overhead());
}

TEST(Session, SplitsSurviveTransport) {
  // J > L workload: users relocated by splits must still recover.
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 2;
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.joins = 128;
  wc.leaves = 16;
  auto msg = generate_message(wc, 31, 1);
  simnet::Topology topo(topo_config(512, 0.2, 0.2, 0.02, 0.01), 31);
  RhoController rho(cfg, 31);
  RekeySession session(topo, cfg, rho);
  const auto m = session.run_message(msg.payload, std::move(msg.assignment),
                                     msg.old_ids);
  std::size_t total = m.unicast_users;
  for (const auto& [round, count] : m.recovered_in_round) total += count;
  EXPECT_EQ(total, m.users);
  EXPECT_EQ(m.users, msg.num_users);
}

TEST(Session, ResumeClockBackwardsRejected) {
  ProtocolConfig cfg;
  simnet::Topology topo(topo_config(32, 0.2, 0.2, 0.02, 0.01), 9);
  RhoController rho(cfg, 9);
  RekeySession session(topo, cfg, rho);
  session.resume_clock_at(0.0);     // equal is fine
  session.resume_clock_at(500.0);   // forward is fine
  EXPECT_DOUBLE_EQ(session.clock_ms(), 500.0);
  // Backwards would hand the shared Gilbert chains non-monotone query
  // times; reject at the API boundary instead of deep inside a round.
  EXPECT_THROW(session.resume_clock_at(499.0), EnsureError);
}

TEST(Session, ResumeClockAtLeastClampsForwardOnly) {
  // The restore path: a replica rebuilt from a snapshot carries the
  // donor's clock, which can sit either side of a locally recorded
  // timestamp. resume_clock_at_least must clamp forward, never trip the
  // monotonicity check, and report the clock actually in effect.
  ProtocolConfig cfg;
  simnet::Topology topo(topo_config(32, 0.2, 0.2, 0.02, 0.01), 9);
  RhoController rho(cfg, 9);
  RekeySession session(topo, cfg, rho);
  session.resume_clock_at(500.0);
  // Behind the clock: a no-op that reports the in-effect clock instead
  // of throwing like resume_clock_at would.
  EXPECT_DOUBLE_EQ(session.resume_clock_at_least(499.0), 500.0);
  EXPECT_DOUBLE_EQ(session.clock_ms(), 500.0);
  // Equal: still a no-op.
  EXPECT_DOUBLE_EQ(session.resume_clock_at_least(500.0), 500.0);
  // Ahead: advances like resume_clock_at.
  EXPECT_DOUBLE_EQ(session.resume_clock_at_least(750.0), 750.0);
  EXPECT_DOUBLE_EQ(session.clock_ms(), 750.0);
}

TEST(Session, UnicastGiveUpAccountsEveryUser) {
  // A topology whose uplinks drop everything: the server never learns any
  // user, so the unicast phase can only spin on wake-up NACKs. With
  // unicast_max_waves armed the message terminates and every user is
  // explicitly accounted as given up.
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 2;
  cfg.unicast_max_waves = 4;
  simnet::TopologyConfig tc =
      topo_config(64, 1.0, 1.0, 1.0, 0.0, /*burst=*/false);
  const MessageMetrics m = run_one(64, 16, cfg, tc, 21);
  EXPECT_EQ(m.gave_up_users, m.users);
  EXPECT_EQ(m.unicast_waves, 4u);
  std::size_t recovered = 0;
  for (const auto& [round, count] : m.recovered_in_round) recovered += count;
  EXPECT_EQ(recovered, 0u);
}

TEST(Session, GiveUpDisabledByDefaultKeepsRetrying) {
  // Same degraded unicast phase but with recoverable loss: the default
  // unicast_max_waves=0 retries until everyone is served, as before.
  ProtocolConfig cfg;
  cfg.max_multicast_rounds = 1;
  simnet::TopologyConfig tc =
      topo_config(64, 1.0, 0.6, 0.6, 0.0, /*burst=*/false);
  const MessageMetrics m = run_one(64, 16, cfg, tc, 22);
  EXPECT_EQ(m.gave_up_users, 0u);
  std::size_t recovered = 0;
  for (const auto& [round, count] : m.recovered_in_round) recovered += count;
  for (const auto& [wave, count] : m.unicast_recovered_in_wave)
    recovered += count;
  EXPECT_EQ(recovered, m.users);
}

}  // namespace
}  // namespace rekey::transport
