// The SIMD kernel swap must not perturb simulation results: GF(2^8)
// arithmetic is exact, so every figure output has to be bit-identical no
// matter which REKEY_SIMD path encodes the parities. These regressions run
// a full transport session and one bench_f08_blocksize sweep point under
// every supported path and require identical metrics, plus a golden check
// pinning the F8 point's integer outputs against silent drift.
#include <gtest/gtest.h>

#include "fec/gf256_simd.h"
#include "sweep.h"
#include "transport/session.h"
#include "transport/workload.h"

namespace rekey::bench {
namespace {

using fec::SimdPath;

// Golden outputs of the F8 point below (seed point_seed(0xF08, 1), scalar
// path) — see F08SweepPointGolden. NACK count moved 569 -> 568 when
// round-end NACK loss draws switched to arrival-time order (the shared
// source uplink was previously queried at non-monotone times).
constexpr std::size_t kGoldenMulticastSent = 404;
constexpr std::size_t kGoldenParities = 164;
constexpr std::size_t kGoldenNacks = 568;

std::vector<SimdPath> paths() { return fec::supported_simd_paths(); }

transport::MessageMetrics run_session_once() {
  transport::WorkloadConfig wc;
  wc.group_size = 256;
  wc.leaves = 64;
  auto msg = transport::generate_message(wc, 22, 1);
  simnet::TopologyConfig tc;
  tc.num_users = 256;
  tc.alpha = 0.2;
  tc.p_high = 0.2;
  tc.p_low = 0.02;
  tc.p_source = 0.01;
  simnet::Topology topo(tc, 11);
  transport::ProtocolConfig cfg;
  transport::RhoController rho(cfg, 1);
  transport::RekeySession session(topo, cfg, rho);
  return session.run_message(msg.payload, std::move(msg.assignment),
                             msg.old_ids);
}

// The F8 point: paper defaults, k=10, rho=1 fixed, alpha=20%, trimmed to
// 3 messages so the regression stays fast.
SweepConfig f08_point() {
  SweepConfig cfg;
  cfg.alpha = 0.2;
  cfg.protocol.block_size = 10;
  cfg.protocol.adaptive_rho = false;
  cfg.protocol.initial_rho = 1.0;
  cfg.protocol.max_multicast_rounds = 0;
  cfg.messages = 3;
  cfg.seed = point_seed(0xF08, 1);
  return cfg;
}

TEST(SimdDeterminism, SessionMetricsIdenticalAcrossPaths) {
  const SimdPath original = fec::active_simd_path();
  fec::force_simd_path(SimdPath::kScalar);
  const auto reference = run_session_once();
  for (const SimdPath p : paths()) {
    fec::force_simd_path(p);
    const auto got = run_session_once();
    EXPECT_EQ(got, reference) << "path " << fec::simd_path_name(p);
  }
  fec::force_simd_path(original);
}

TEST(SimdDeterminism, F08SweepPointIdenticalAcrossPaths) {
  const SimdPath original = fec::active_simd_path();
  fec::force_simd_path(SimdPath::kScalar);
  const auto reference = run_sweep(f08_point());
  for (const SimdPath p : paths()) {
    fec::force_simd_path(p);
    const auto got = run_sweep(f08_point());
    EXPECT_EQ(got, reference) << "path " << fec::simd_path_name(p);
  }
  fec::force_simd_path(original);
}

TEST(SimdDeterminism, F08SweepPointGolden) {
  // Golden integers for the point above, recorded from the scalar path.
  // A change here means figure outputs moved: intended protocol changes
  // must update the golden deliberately; a kernel/dispatch change must not
  // trip it at all.
  const SimdPath original = fec::active_simd_path();
  fec::force_simd_path(SimdPath::kScalar);
  const auto run = run_sweep(f08_point());
  fec::force_simd_path(original);

  ASSERT_EQ(run.messages.size(), 3u);
  std::size_t multicast_sent = 0, parities = 0, nacks = 0;
  for (const auto& m : run.messages) {
    multicast_sent += m.multicast_sent;
    parities += m.proactive_parities + m.reactive_parities;
    nacks += m.total_nacks;
  }
  EXPECT_EQ(multicast_sent, kGoldenMulticastSent);
  EXPECT_EQ(parities, kGoldenParities);
  EXPECT_EQ(nacks, kGoldenNacks);
}

}  // namespace
}  // namespace rekey::bench
