// Backend-differential suite: the io_uring wire must be observationally
// identical to the epoll wire at the protocol layer. Each case runs the
// same daemon/fleet session once per backend and compares every
// deterministic counter — the recovery ledger (recovered + gave_up +
// gave_up_dead), the encoding plan (enc_packets, slots, parities), and
// the wire version — so a backend that reorders, drops, or duplicates
// datagrams cannot pass. Timing-driven counters (control retransmits,
// report traffic) are deliberately excluded: both backends are allowed
// to retry at different wall-clock points, they are just not allowed to
// change what the protocol computes.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "wire/backend.h"
#include "wire/daemon.h"
#include "wire/fleet.h"
#include "wire/udp.h"

namespace rekey::wire {
namespace {

constexpr std::uint32_t kLoopback = 0x7F000001;

struct SessionRun {
  DaemonStats daemon;
  std::vector<FleetStats> fleets;
};

SessionRun run_session(WireBackend backend, const DaemonConfig& dc,
                const std::vector<FleetConfig>& fleet_configs) {
  auto daemon_wire = make_socket_wire(backend, kLoopback, 0);
  const Endpoint server = daemon_wire->local_endpoint();
  KeyServerDaemon daemon(*daemon_wire, dc);
  SessionRun r;
  r.fleets.resize(fleet_configs.size());
  std::thread daemon_thread([&] { r.daemon = daemon.run(); });
  std::vector<std::thread> fleet_threads;
  for (std::size_t i = 0; i < fleet_configs.size(); ++i) {
    fleet_threads.emplace_back([&, i] {
      auto wire = make_socket_wire(backend, kLoopback, 0);
      ClientFleet fleet(*wire, server, fleet_configs[i]);
      r.fleets[i] = fleet.run();
    });
  }
  for (auto& t : fleet_threads) t.join();
  daemon_thread.join();
  return r;
}

FleetConfig slice(std::uint32_t first, std::uint32_t count) {
  FleetConfig fc;
  fc.first_uid = first;
  fc.count = count;
  fc.retry_ms = 20;
  fc.idle_timeout_ms = 60000;
  return fc;
}

// The deterministic daemon-side ledger: everything the protocol computes
// from membership + churn + recovery outcomes, nothing that depends on
// retransmit timing.
void expect_daemon_ledger_eq(const DaemonStats& a, const DaemonStats& b) {
  EXPECT_EQ(a.endpoints, b.endpoints);
  EXPECT_EQ(a.batches_run, b.batches_run);
  EXPECT_EQ(a.enc_packets, b.enc_packets);
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.data_frames, b.data_frames);
  EXPECT_EQ(a.data_bytes, b.data_bytes);
  EXPECT_EQ(a.proactive_parities, b.proactive_parities);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.gave_up_dead, b.gave_up_dead);
  EXPECT_EQ(a.wire_version, b.wire_version);
}

class WireBackendDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!io_uring_supported())
      GTEST_SKIP() << "kernel lacks io_uring support";
  }
};

// Zero loss: with no shaping there is no randomness anywhere, so the
// full ledger — including the reactive-parity and unicast-wave counts,
// which stay zero — must match exactly.
TEST_F(WireBackendDifferential, ZeroLossLedgersMatch) {
  DaemonConfig dc;
  dc.clients = 256;
  dc.batches = 2;
  dc.churn_pool = 64;
  dc.churn_joins = 24;
  dc.churn_leaves = 24;
  dc.retry_ms = 20;
  dc.round_wait_ms = 20000;
  const std::vector<FleetConfig> fleets = {slice(0, 128), slice(128, 128)};

  const SessionRun epoll = run_session(WireBackend::kEpoll, dc, fleets);
  const SessionRun uring = run_session(WireBackend::kIoUring, dc, fleets);

  expect_daemon_ledger_eq(epoll.daemon, uring.daemon);
  EXPECT_EQ(epoll.daemon.reactive_parities, uring.daemon.reactive_parities);
  EXPECT_EQ(epoll.daemon.unicast_waves, uring.daemon.unicast_waves);
  EXPECT_EQ(epoll.daemon.usr_frags, uring.daemon.usr_frags);
  ASSERT_EQ(epoll.fleets.size(), uring.fleets.size());
  for (std::size_t i = 0; i < epoll.fleets.size(); ++i) {
    EXPECT_EQ(epoll.fleets[i].clients, uring.fleets[i].clients);
    EXPECT_EQ(epoll.fleets[i].recovered, uring.fleets[i].recovered);
    EXPECT_EQ(epoll.fleets[i].unrecovered, uring.fleets[i].unrecovered);
    EXPECT_EQ(epoll.fleets[i].shaped_off, 0u);
    EXPECT_EQ(uring.fleets[i].shaped_off, 0u);
    EXPECT_TRUE(epoll.fleets[i].finished);
    EXPECT_TRUE(uring.fleets[i].finished);
  }
}

// Seeded shaped loss: the fleet's loss draws index arrival order, so
// this only holds if the io_uring backend preserves datagram ordering
// within a burst (its linked send chains exist for this). The outcome
// ledger must match; the paths taken to recovery (retransmit counts)
// may differ.
TEST_F(WireBackendDifferential, ShapedLossOutcomesMatch) {
  DaemonConfig dc;
  dc.clients = 192;
  dc.batches = 1;
  dc.churn_pool = 128;
  dc.churn_joins = 64;
  dc.churn_leaves = 64;
  dc.protocol.packet_size = 300;
  dc.retry_ms = 20;
  dc.round_wait_ms = 20000;
  auto fc = slice(0, 192);
  fc.shaping.down_loss = 0.2;
  fc.shaping.up_loss = 0.1;
  fc.shaping.seed = 0x51CC;

  const SessionRun epoll = run_session(WireBackend::kEpoll, dc, {fc});
  const SessionRun uring = run_session(WireBackend::kIoUring, dc, {fc});

  EXPECT_EQ(epoll.daemon.recovered, uring.daemon.recovered);
  EXPECT_EQ(epoll.daemon.gave_up, uring.daemon.gave_up);
  EXPECT_EQ(epoll.daemon.gave_up_dead, uring.daemon.gave_up_dead);
  EXPECT_EQ(epoll.daemon.batches_run, uring.daemon.batches_run);
  EXPECT_EQ(epoll.daemon.enc_packets, uring.daemon.enc_packets);
  EXPECT_EQ(epoll.daemon.slots, uring.daemon.slots);
  EXPECT_EQ(epoll.daemon.rounds, uring.daemon.rounds);
  EXPECT_EQ(epoll.daemon.wire_version, uring.daemon.wire_version);
  EXPECT_EQ(epoll.fleets[0].recovered, uring.fleets[0].recovered);
  EXPECT_EQ(epoll.fleets[0].unrecovered, uring.fleets[0].unrecovered);
  EXPECT_TRUE(epoll.fleets[0].finished);
  EXPECT_TRUE(uring.fleets[0].finished);
  // Both sessions saw shaped traffic at all.
  EXPECT_GT(epoll.fleets[0].shaped_off, 0u);
  EXPECT_GT(uring.fleets[0].shaped_off, 0u);
}

}  // namespace
}  // namespace rekey::wire
