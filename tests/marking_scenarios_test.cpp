// Curated marking-algorithm scenarios with fully hand-computed expected
// trees, including the paper's own running example (§2.1, Figure 1) and
// the corner cases of each Appendix-B rule. These complement the
// randomized sweeps in marking_test.cpp with human-checkable fixtures.
#include <gtest/gtest.h>

#include <set>

#include "common/ensure.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"

namespace rekey::tree {
namespace {

std::vector<MemberId> ids(std::initializer_list<MemberId> l) { return l; }

std::set<NodeId> knodes_of(const KeyTree& t) {
  std::set<NodeId> out;
  for (const auto& [id, n] : t.nodes())
    if (n.kind == NodeKind::KNode) out.insert(id);
  return out;
}

std::set<NodeId> unodes_of(const KeyTree& t) {
  std::set<NodeId> out;
  for (const auto& [id, n] : t.nodes())
    if (n.kind == NodeKind::UNode) out.insert(id);
  return out;
}

// --- The paper's Figure-1 example -----------------------------------------
//
// Degree 3, nine users u1..u9. In our id scheme the tree is:
//   root 0 (k_1-9); level 1: 1 (k_123), 2 (k_456), 3 (k_789);
//   leaves 4..12 = u1..u9.
// u9 (slot 12) leaves. The paper expects: k_789 -> k_78 (node 3 rekeyed),
// k_1-9 -> k_1-8 (root rekeyed), and the rekey message
//   { {k78}_k7, {k78}_k8, {k1-8}_k123, {k1-8}_k456, {k1-8}_k78 }.

TEST(PaperFigure1, LeaveOfU9) {
  KeyTree t(3, 1);
  t.populate(9);  // members 0..8 = u1..u9 at slots 4..12
  EXPECT_EQ(t.slot_of(8), 12u);  // u9

  Marker m(t);
  const auto upd = m.run({}, ids({8}));
  t.check_invariants();

  // Changed k-nodes: node 3 (k_789 -> k_78) and the root.
  EXPECT_EQ(upd.changed_knodes, (std::set<NodeId>{0, 3}));

  const auto payload = generate_rekey_payload(t, upd, 1);
  // Five encryptions, exactly the paper's set (by encrypting-key node):
  //   {k78}_k7 (enc 10), {k78}_k8 (enc 11),
  //   {k1-8}_k123 (enc 1), {k1-8}_k456 (enc 2), {k1-8}_k78 (enc 3).
  std::set<NodeId> enc_ids;
  for (const auto& e : payload.encryptions) enc_ids.insert(e.enc_id);
  EXPECT_EQ(enc_ids, (std::set<NodeId>{1, 2, 3, 10, 11}));

  // u7 (member 6, slot 10) needs exactly {k1-8}_k78 and {k78}_k7.
  const auto& needs = payload.user_needs.at(10);
  std::set<NodeId> u7_ids;
  for (const auto idx : needs) u7_ids.insert(payload.encryptions[idx].enc_id);
  EXPECT_EQ(u7_ids, (std::set<NodeId>{10, 3}));

  // u1 (slot 4) needs only the root key via k_123.
  const auto& u1 = payload.user_needs.at(4);
  ASSERT_EQ(u1.size(), 1u);
  EXPECT_EQ(payload.encryptions[u1[0]].enc_id, 1u);
}

// --- Appendix-B rule 1: J = L ---------------------------------------------

TEST(AppendixB, Rule1SwapPreservesStructure) {
  KeyTree t(4, 2);
  t.populate(16);
  const auto k_before = knodes_of(t);
  const auto u_before = unodes_of(t);
  Marker m(t);
  m.run(ids({100, 101}), ids({4, 9}));
  // Pure replacement: identical node-id structure.
  EXPECT_EQ(knodes_of(t), k_before);
  EXPECT_EQ(unodes_of(t), u_before);
}

// --- Appendix-B rule 2: J < L, iterative pruning ---------------------------

TEST(AppendixB, Rule2PrunesWholeChains) {
  // Degree 2, 8 users at slots 7..14; k-nodes 0..6.
  KeyTree t(2, 3);
  t.populate(8);
  Marker m(t);
  // Remove members 0..3 (slots 7..10): subtrees 3 and 4 die, then 1 dies.
  const auto upd = m.run({}, ids({0, 1, 2, 3}));
  t.check_invariants();
  EXPECT_EQ(knodes_of(t), (std::set<NodeId>{0, 2, 5, 6}));
  EXPECT_EQ(unodes_of(t), (std::set<NodeId>{11, 12, 13, 14}));
  // Only the root's key is re-encrypted (node 2's subtree is untouched).
  EXPECT_EQ(upd.changed_knodes, std::set<NodeId>{0});
  const auto payload = generate_rekey_payload(t, upd, 1);
  // Root has exactly one surviving child (node 2): one encryption.
  ASSERT_EQ(payload.encryptions.size(), 1u);
  EXPECT_EQ(payload.encryptions[0].enc_id, 2u);
}

TEST(AppendixB, Rule2ReplacesSmallestIdsFirst) {
  KeyTree t(4, 4);
  t.populate(16);
  Marker m(t);
  // Leaves at slots 6, 12, 18 (members 1, 7, 13); one join.
  const auto upd = m.run(ids({100}), ids({13, 1, 7}));
  t.check_invariants();
  EXPECT_EQ(t.slot_of(100), 6u);  // smallest departed id
  EXPECT_FALSE(t.contains(12));
  EXPECT_FALSE(t.contains(18));
  EXPECT_EQ(upd.joined.at(100), 6u);
}

// --- Appendix-B rule 3: J > L, fill then split ------------------------------

TEST(AppendixB, Rule3FillOrderIsLowToHigh) {
  // 6 users in a 16-leaf tree: nk = 2, free n-slots (2, 12] = {3, 4, 11, 12}.
  KeyTree t(4, 5);
  t.populate(6);
  Marker m(t);
  const auto upd = m.run(ids({50, 51, 52, 53}), {});
  t.check_invariants();
  EXPECT_EQ(t.slot_of(50), 3u);
  EXPECT_EQ(t.slot_of(51), 4u);
  EXPECT_EQ(t.slot_of(52), 11u);
  EXPECT_EQ(t.slot_of(53), 12u);
  EXPECT_TRUE(upd.moved.empty());
  // nk unchanged: no splits -> max k-node id still 2.
  EXPECT_EQ(upd.max_kid, 2u);
}

TEST(AppendixB, Rule3SplitChainWalksConsecutiveUsers) {
  KeyTree t(4, 6);
  t.populate(16);  // full: every join requires splitting
  Marker m(t);
  // 4 joins: split node 5 (3 slots) then node 6 (1 more needed).
  const auto upd = m.run(ids({50, 51, 52, 53}), {});
  t.check_invariants();
  EXPECT_EQ(upd.moved.size(), 2u);
  EXPECT_EQ(upd.moved.at(5), 21u);
  EXPECT_EQ(upd.moved.at(6), 25u);
  EXPECT_EQ(t.max_knode_id().value(), 6u);
  // Joins fill the split slots low to high: 22, 23, 24, then 26.
  EXPECT_EQ(t.slot_of(50), 22u);
  EXPECT_EQ(t.slot_of(51), 23u);
  EXPECT_EQ(t.slot_of(52), 24u);
  EXPECT_EQ(t.slot_of(53), 26u);
}

TEST(AppendixB, SplitNodesBecomeChangedKNodes) {
  KeyTree t(4, 7);
  t.populate(16);
  Marker m(t);
  const auto upd = m.run(ids({50}), {});
  // Node 5 is now a k-node with fresh key; its children (moved user 21 and
  // join 22) each get one encryption of node 5's key.
  const auto payload = generate_rekey_payload(t, upd, 1);
  int under_5 = 0;
  for (const auto& e : payload.encryptions)
    if (e.target_id == 5) ++under_5;
  EXPECT_EQ(under_5, 2);
}

// --- Appendix-B rule 4: n-node ancestors become k-nodes ---------------------

TEST(AppendixB, Rule4CreatesAncestorsForDeepFills) {
  // 5 users in a 16-leaf tree: nk = 1 (parent of slot 9)... compute:
  // users at 5..9, k-nodes {0, 1, 2}: nk = 2. Free (2, 12] = {3,4,10,11,12}.
  KeyTree t(4, 8);
  t.populate(5);
  Marker m(t);
  // Enough joins to reach slot 13, whose parent 3 must first be a slot
  // itself... fill order: 3, 4, 10, 11, 12 — all direct children of
  // existing k-nodes, no new ancestors; then nk is still 2, next joins
  // split. Verify ancestors stay consistent throughout.
  const auto upd = m.run(ids({50, 51, 52, 53, 54, 55}), {});
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 11u);
  for (const NodeId slot : t.user_slots()) {
    if (slot == kRootId) continue;
    EXPECT_EQ(t.node(parent_of(slot, 4)).kind, NodeKind::KNode);
  }
  (void)upd;
}

// --- Degenerate group sizes --------------------------------------------------

TEST(Degenerate, GroupOfOneLosesItsOnlyMember) {
  KeyTree t(4, 9);
  t.populate(1);
  Marker m(t);
  m.run({}, ids({0}));
  EXPECT_TRUE(t.empty());
  t.check_invariants();
}

TEST(Degenerate, GroupOfOneGrowsByOne) {
  KeyTree t(4, 10);
  t.populate(1);
  Marker m(t);
  const auto upd = m.run(ids({50}), {});
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 2u);
  // Slot 1 held the user; the join lands in a free sibling slot (2).
  EXPECT_EQ(t.slot_of(50), 2u);
  EXPECT_TRUE(upd.moved.empty());
}

TEST(Degenerate, RebuildAfterTotalChurn) {
  KeyTree t(4, 11);
  t.populate(8);
  Marker m(t);
  m.run({}, ids({0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_TRUE(t.empty());
  Marker m2(t);
  const auto upd = m2.run(ids({100, 101, 102}), {});
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 3u);
  EXPECT_EQ(upd.joined.size(), 3u);
}

// --- Rekey subtree shape against hand counts --------------------------------

TEST(SubtreeShape, SingleLeaveEncryptionCount) {
  // Height-3 degree-4 tree, one leave: the replaced... removed slot's
  // parent keeps 3 children, each ancestor above keeps 4: 3 + 4 + 4.
  KeyTree t(4, 12);
  t.populate(64);
  Marker m(t);
  const auto upd = m.run({}, ids({13}));
  const auto payload = generate_rekey_payload(t, upd, 1);
  EXPECT_EQ(payload.encryptions.size(), 3u + 4u + 4u);
}

TEST(SubtreeShape, SingleReplaceEncryptionCount) {
  // Replacement keeps the slot occupied: 4 + 4 + 4.
  KeyTree t(4, 13);
  t.populate(64);
  Marker m(t);
  const auto upd = m.run(ids({100}), ids({13}));
  const auto payload = generate_rekey_payload(t, upd, 1);
  EXPECT_EQ(payload.encryptions.size(), 4u + 4u + 4u);
}

TEST(SubtreeShape, TwoLeavesSameParentShareAncestorEncryptions) {
  KeyTree t(4, 14);
  t.populate(64);
  // Members 0 and 1 share a leaf-parent.
  Marker m(t);
  const auto upd = m.run({}, ids({0, 1}));
  const auto payload = generate_rekey_payload(t, upd, 1);
  // Parent keeps 2 children; the two ancestors keep 4 each: 2 + 4 + 4.
  EXPECT_EQ(payload.encryptions.size(), 2u + 4u + 4u);
}

}  // namespace
}  // namespace rekey::tree
