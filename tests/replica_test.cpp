// Replication tests: the full-server snapshot format (v3), the
// primary/standby daemon pair, and the failover acceptance contract.
//
// The determinism claim under test: because snapshots sit at batch
// boundaries and every daemon death point is a protocol-clock step, a
// promoted standby's replay of the interrupted batch is a pure function
// of (snapshot, config) — so two runs of the same blackout scenario, or
// a serial and a sharded pipeline over the same scenario, must agree on
// every protocol counter. Wall-clock-dependent counters (control-frame
// retransmits, cached-report resends) are explicitly excluded from the
// comparison; everything the protocol itself decides is included.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "keytree/shard.h"
#include "keytree/snapshot.h"
#include "wire/daemon.h"
#include "wire/fleet.h"
#include "wire/loopback.h"
#include "wire/server_snapshot.h"

namespace rekey::wire {
namespace {

tree::KeyTree churned_tree(std::uint32_t members, std::uint64_t seed) {
  tree::KeyTree t(4, seed);
  t.populate(members);
  tree::Marker m(t);
  m.run(std::vector<tree::MemberId>{members, members + 1},
        std::vector<tree::MemberId>{3});
  return t;
}

// A fully-populated snapshot whose every field is distinguishable from
// its default, so the round-trip comparison cannot pass by accident.
ServerSnapshot sample_snapshot(std::uint32_t clients, std::uint32_t pool) {
  ServerSnapshot s;
  s.epoch = 5;
  s.next_batch = 3;
  s.session_version = kWireV2;
  s.degree = 4;
  s.clients = clients;
  s.churn_pool = pool;
  s.batches = 8;
  s.next_member = clients + pool + 10;
  s.churn_members = {clients, clients + 2, s.next_member - 1};
  s.endpoints.push_back(
      SnapshotEndpoint{111, 0, clients / 2, kWireV1, false});
  s.endpoints.push_back(
      SnapshotEndpoint{222, clients / 2, clients - clients / 2, kWireV2, true});
  s.rho.proactive_parities = 7;
  s.rho.num_nack = 3;
  s.rho.rng = {0x1111, 0x2222, 0x3333, 0x4444};
  s.tree_blob = tree::snapshot_sharded_tree(
      churned_tree(s.next_member - 2, 17), tree::ShardPlan::make(4, 2));
  return s;
}

TEST(ServerSnapshotV3, RoundtripPreservesEverything) {
  const ServerSnapshot s = sample_snapshot(64, 32);
  const Bytes blob = snapshot_server(s);
  const auto r = restore_server(blob);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->epoch, s.epoch);
  EXPECT_EQ(r->next_batch, s.next_batch);
  EXPECT_EQ(r->session_version, s.session_version);
  EXPECT_EQ(r->degree, s.degree);
  EXPECT_EQ(r->clients, s.clients);
  EXPECT_EQ(r->churn_pool, s.churn_pool);
  EXPECT_EQ(r->batches, s.batches);
  EXPECT_EQ(r->next_member, s.next_member);
  EXPECT_EQ(r->churn_members, s.churn_members);
  ASSERT_EQ(r->endpoints.size(), s.endpoints.size());
  for (std::size_t i = 0; i < s.endpoints.size(); ++i) {
    EXPECT_EQ(r->endpoints[i].ep_id, s.endpoints[i].ep_id);
    EXPECT_EQ(r->endpoints[i].first_uid, s.endpoints[i].first_uid);
    EXPECT_EQ(r->endpoints[i].count, s.endpoints[i].count);
    EXPECT_EQ(r->endpoints[i].max_version, s.endpoints[i].max_version);
    EXPECT_EQ(r->endpoints[i].dead, s.endpoints[i].dead);
  }
  EXPECT_EQ(r->rho.proactive_parities, s.rho.proactive_parities);
  EXPECT_EQ(r->rho.num_nack, s.rho.num_nack);
  EXPECT_EQ(r->rho.rng, s.rho.rng);
  EXPECT_EQ(r->tree_blob, s.tree_blob);
  // The embedded tree blob restores to the key material it was cut from.
  const auto tree = tree::restore_sharded_tree(r->tree_blob, 17);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->group_key(), churned_tree(s.next_member - 2, 17).group_key());
}

// Every structural validation in restore_server, exercised one field at a
// time. snapshot_server seals whatever it is given, so each mutant
// arrives with a *valid* SHA-256 trailer — what must reject it is the
// structural check itself, not the seal.
TEST(ServerSnapshotV3, StructuralRefusals) {
  const auto rejects = [](const char* what, auto mutate) {
    ServerSnapshot s = sample_snapshot(64, 32);
    mutate(s);
    EXPECT_FALSE(restore_server(snapshot_server(s)).has_value()) << what;
  };
  rejects("zero clients", [](ServerSnapshot& s) { s.clients = 0; });
  rejects("degree below 2", [](ServerSnapshot& s) { s.degree = 1; });
  rejects("session version 0",
          [](ServerSnapshot& s) { s.session_version = 0; });
  rejects("session version above max",
          [](ServerSnapshot& s) { s.session_version = kMaxWireVersion + 1; });
  rejects("next_batch past batches",
          [](ServerSnapshot& s) { s.next_batch = s.batches + 1; });
  rejects("next_member below fleet + pool", [](ServerSnapshot& s) {
    s.next_member = s.clients + s.churn_pool - 1;
    s.churn_members.clear();  // keep the member-range check out of the way
  });
  rejects("churn member inside the fleet",
          [](ServerSnapshot& s) { s.churn_members[0] = s.clients - 1; });
  rejects("churn member past next_member",
          [](ServerSnapshot& s) { s.churn_members[0] = s.next_member; });
  rejects("more churn members than the pool", [](ServerSnapshot& s) {
    s.churn_members.clear();
    for (std::uint32_t i = 0; i <= s.churn_pool; ++i)
      s.churn_members.push_back(s.clients + i);
  });
  rejects("endpoint with zero uids",
          [](ServerSnapshot& s) { s.endpoints[0].count = 0; });
  rejects("endpoint first_uid out of range",
          [](ServerSnapshot& s) { s.endpoints[0].first_uid = s.clients; });
  rejects("endpoint range past clients",
          [](ServerSnapshot& s) { s.endpoints[1].count += 1; });
  rejects("duplicate endpoint id", [](ServerSnapshot& s) {
    s.endpoints[1].ep_id = s.endpoints[0].ep_id;
  });
  rejects("more endpoints than clients", [](ServerSnapshot& s) {
    s.endpoints.clear();
    for (std::uint32_t i = 0; i <= s.clients; ++i)
      s.endpoints.push_back(
          SnapshotEndpoint{1000 + i, i % s.clients, 1, kWireV1, false});
  });
  rejects("endpoint version 0",
          [](ServerSnapshot& s) { s.endpoints[0].max_version = 0; });
  rejects("endpoint version above max", [](ServerSnapshot& s) {
    s.endpoints[0].max_version = kMaxWireVersion + 1;
  });
  rejects("negative proactive parities",
          [](ServerSnapshot& s) { s.rho.proactive_parities = -1; });
  rejects("negative num_nack",
          [](ServerSnapshot& s) { s.rho.num_nack = -1; });
}

TEST(ServerSnapshotV3, CrossFamilyBlobsRejected) {
  // A v2 (tree-only) blob is sealed with the same trailer but the wrong
  // magic for restore_server — and vice versa.
  const tree::KeyTree t = churned_tree(32, 5);
  const Bytes v2 = tree::snapshot_sharded_tree(t, tree::ShardPlan::make(4, 2));
  EXPECT_FALSE(restore_server(v2).has_value());
  const Bytes v3 = snapshot_server(sample_snapshot(16, 8));
  EXPECT_FALSE(tree::restore_sharded_tree(v3, 1).has_value());
  EXPECT_FALSE(tree::restore_tree(v3, 1).has_value());
}

// Exhaustive malformed-input sweeps, mirroring the v1/v2 sweeps in
// snapshot_test.cpp: a v3 blob cut at ANY byte or flipped in ANY single
// bit restores to a clean nullopt — never an abort or a half-restored
// server. Small session shape keeps the quadratic sweep fast.
TEST(ServerSnapshotV3, TruncationAtEveryByteRejected) {
  const Bytes blob = snapshot_server(sample_snapshot(16, 8));
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const Bytes cut(blob.begin(), blob.begin() + len);
    ASSERT_FALSE(restore_server(cut).has_value()) << "len " << len;
  }
}

TEST(ServerSnapshotV3, SingleBitFlipAtEveryPositionRejected) {
  const Bytes blob = snapshot_server(sample_snapshot(16, 8));
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = blob;
      bad[pos] ^= static_cast<std::uint8_t>(1u << bit);
      ASSERT_FALSE(restore_server(bad).has_value())
          << "pos " << pos << " bit " << bit;
    }
  }
}

// ---------------------------------------------------------------------
// Primary/standby pair over the in-process loopback hub.

struct PairResult {
  DaemonStats primary;
  DaemonStats standby;
  std::vector<FleetStats> fleets;
};

struct PairParams {
  std::uint32_t clients = 64;
  unsigned endpoints = 2;
  std::uint32_t batches = 3;
  std::uint32_t churn = 16;
  // Blackout window for the primary's protocol clock; {0, 0} = none.
  double onset_ms = 0.0;
  double end_ms = 0.0;
  unsigned shards = 1;
  unsigned workers = 1;
};

PairResult run_pair(const PairParams& p) {
  LoopbackHub hub;
  auto primary_wire = hub.attach();
  auto standby_wire = hub.attach();

  DaemonConfig dc;
  dc.clients = p.clients;
  dc.churn_pool = std::max<std::uint32_t>(64, 2 * p.churn);
  dc.batches = p.batches;
  dc.churn_joins = p.churn;
  dc.churn_leaves = p.churn;
  dc.retry_ms = 10;
  dc.round_wait_ms = 20000;
  dc.elect_timeout_ms = 250;
  dc.round_quantum_ms = 100.0;
  dc.shards = p.shards;
  dc.worker_threads = p.workers;

  DaemonConfig pc = dc;
  pc.peer = standby_wire->endpoint();
  if (p.end_ms > p.onset_ms)
    pc.fault.blackouts.push_back({p.onset_ms, p.end_ms});

  DaemonConfig stc = dc;
  stc.peer = primary_wire->endpoint();
  stc.standby = true;

  KeyServerDaemon primary(*primary_wire, pc);
  KeyServerDaemon standby(*standby_wire, stc);

  PairResult r;
  r.fleets.resize(p.endpoints);
  std::thread primary_thread([&] { r.primary = primary.run(); });
  std::thread standby_thread([&] { r.standby = standby.run(); });

  std::vector<std::thread> fleet_threads;
  const std::uint32_t per = p.clients / p.endpoints;
  for (unsigned t = 0; t < p.endpoints; ++t) {
    fleet_threads.emplace_back([&, t] {
      auto wire = hub.attach();
      FleetConfig fc;
      fc.first_uid = t * per;
      fc.count = (t + 1 == p.endpoints) ? p.clients - t * per : per;
      fc.retry_ms = 10;
      fc.idle_timeout_ms = 20000;
      fc.failover.push_back(standby_wire->endpoint());
      ClientFleet fleet(*wire, primary_wire->endpoint(), fc);
      r.fleets[t] = fleet.run();
    });
  }
  for (auto& t : fleet_threads) t.join();
  primary_thread.join();
  standby_thread.join();
  return r;
}

// The deterministic projection of the stats: everything the protocol
// decides, nothing wall time decides. Byte-comparing these strings is
// the acceptance criterion's "stats byte-compare excluding timing
// fields" — control_frames / control_retransmits / reports /
// snapshot_chunks / resubs_sent / recovery_ms all depend on retransmit
// timing and are deliberately absent.
std::string det(const DaemonStats& s) {
  std::ostringstream o;
  o << s.endpoints << ' ' << s.batches_run << ' ' << s.enc_packets << ' '
    << s.slots << ' ' << s.data_frames << ' ' << s.data_bytes << ' '
    << s.proactive_parities << ' ' << s.reactive_parities << ' ' << s.rounds
    << ' ' << s.unicast_waves << ' ' << s.usr_frags << ' ' << s.nack_users
    << ' ' << s.recovered << ' ' << s.via_usr << ' ' << s.gave_up << ' '
    << s.gave_up_dead << ' ' << s.endpoints_dropped << ' ' << s.wire_version
    << ' ' << s.rho_final << ' ' << s.snapshots_sent << ' '
    << s.snapshots_restored << ' ' << s.resubs << ' ' << s.epoch << ' '
    << s.promoted << ' ' << s.died << ' ' << s.died_at_ms << ' '
    << s.completed;
  return o.str();
}

std::string det(const std::vector<FleetStats>& fleets) {
  std::ostringstream o;
  for (const FleetStats& s : fleets)
    o << s.clients << ' ' << s.batches << ' ' << s.recovered << ' '
      << s.via_usr << ' ' << s.unrecovered << ' ' << s.data_frames << ' '
      << s.wire_version << ' ' << s.finished << ' ' << s.epoch << ' '
      << s.failovers << " | ";
  return o.str();
}

TEST(Replica, HealthyPrimaryRetiresStandby) {
  PairParams p;
  const PairResult r = run_pair(p);
  EXPECT_TRUE(r.primary.completed);
  EXPECT_FALSE(r.primary.died);
  EXPECT_EQ(r.primary.epoch, 0u);
  EXPECT_EQ(r.primary.batches_run, p.batches);
  EXPECT_EQ(r.primary.snapshots_sent, p.batches);
  EXPECT_EQ(r.primary.recovered, p.clients * p.batches);
  // The standby ingested every snapshot, never promoted, and was retired
  // cleanly by the primary's Fin.
  EXPECT_TRUE(r.standby.completed);
  EXPECT_FALSE(r.standby.promoted);
  EXPECT_EQ(r.standby.batches_run, 0u);
  EXPECT_EQ(r.standby.snapshots_restored, p.batches);
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.recovered, fs.clients * p.batches);
    EXPECT_EQ(fs.epoch, 0u);
    EXPECT_EQ(fs.failovers, 0u);
  }
}

TEST(Replica, StandbyAloneGivesUp) {
  // A standby whose primary dies before ever replicating has nothing to
  // serve: it must give up (completed = false) instead of promoting onto
  // an empty state or spinning forever.
  LoopbackHub hub;
  auto standby_wire = hub.attach();
  auto ghost = hub.attach();  // never speaks
  DaemonConfig stc;
  stc.clients = 16;
  stc.standby = true;
  stc.peer = ghost->endpoint();
  stc.elect_timeout_ms = 100;
  stc.round_wait_ms = 150;
  KeyServerDaemon standby(*standby_wire, stc);
  const DaemonStats s = standby.run();
  EXPECT_FALSE(s.completed);
  EXPECT_FALSE(s.promoted);
  EXPECT_FALSE(s.died);
  EXPECT_EQ(s.batches_run, 0u);
  EXPECT_EQ(s.snapshots_restored, 0u);
}

TEST(Replica, MidBatchBlackoutFailsOver) {
  // Blackout at protocol clock 500: batch 1's pre-burst step (batch 0
  // consumed 100..300, batch 1's boundary is 400). The primary dies with
  // batch 1's BatchStart already on the wire; the standby replays batch
  // 1 from its snapshot and runs batch 2.
  PairParams p;
  p.onset_ms = 495.0;
  p.end_ms = 505.0;
  const PairResult r = run_pair(p);
  EXPECT_TRUE(r.primary.died);
  EXPECT_DOUBLE_EQ(r.primary.died_at_ms, 500.0);
  EXPECT_EQ(r.primary.batches_run, 1u);
  EXPECT_FALSE(r.primary.completed);
  EXPECT_TRUE(r.standby.promoted);
  EXPECT_TRUE(r.standby.completed);
  EXPECT_EQ(r.standby.epoch, 1u);
  EXPECT_EQ(r.standby.batches_run, 2u);
  EXPECT_EQ(r.standby.resubs, p.endpoints);
  std::uint64_t recovered = 0;
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.unrecovered, 0u);
    EXPECT_EQ(fs.epoch, 1u);
    EXPECT_EQ(fs.failovers, 1u);
    recovered += fs.recovered;
  }
  // Recoveries are finalized at BatchDone, so the replayed batch counts
  // exactly once: every client recovers every batch.
  EXPECT_EQ(recovered, std::uint64_t{p.clients} * p.batches);
}

TEST(Replica, FailoverReplaySerialVsShardedDifferential) {
  // The sharded pipeline contract extends across failover: a serial pair
  // and a sharded/threaded pair running the same blackout scenario agree
  // on every protocol counter, because the snapshot carries the keygen
  // counter and the v2 pipeline is bit-identical to the serial one.
  PairParams serial;
  serial.onset_ms = 495.0;
  serial.end_ms = 505.0;
  PairParams sharded = serial;
  sharded.shards = 8;
  sharded.workers = 4;
  const PairResult a = run_pair(serial);
  const PairResult b = run_pair(sharded);
  EXPECT_EQ(det(a.primary), det(b.primary));
  EXPECT_EQ(det(a.standby), det(b.standby));
  EXPECT_EQ(det(a.fleets), det(b.fleets));
  EXPECT_TRUE(a.standby.promoted);
  EXPECT_TRUE(a.standby.completed);
}

// The tier-1 acceptance run: a 2^15-client group over the loopback hub,
// blackout mid-batch, threaded server pipeline. Runs the scenario twice
// and byte-compares the deterministic stats projection — the replay
// must be a pure function of (fault plan, seed), never of socket timing.
TEST(Replica, AcceptanceLargeGroupFailoverIsDeterministic) {
  PairParams p;
  p.clients = 1u << 15;
  p.endpoints = 8;
  p.batches = 3;
  p.churn = 256;
  p.onset_ms = 495.0;
  p.end_ms = 505.0;
  p.shards = 8;
  p.workers = 8;
  const PairResult a = run_pair(p);
  EXPECT_TRUE(a.primary.died);
  EXPECT_DOUBLE_EQ(a.primary.died_at_ms, 500.0);
  EXPECT_TRUE(a.standby.promoted);
  EXPECT_TRUE(a.standby.completed);
  EXPECT_EQ(a.standby.epoch, 1u);
  std::uint64_t recovered = 0;
  for (const FleetStats& fs : a.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.unrecovered, 0u);
    EXPECT_EQ(fs.epoch, 1u);
    recovered += fs.recovered;
  }
  EXPECT_EQ(recovered, std::uint64_t{p.clients} * p.batches);

  const PairResult b = run_pair(p);
  EXPECT_EQ(det(a.primary), det(b.primary));
  EXPECT_EQ(det(a.standby), det(b.standby));
  EXPECT_EQ(det(a.fleets), det(b.fleets));
}

}  // namespace
}  // namespace rekey::wire
