// Marking-algorithm tests (paper §2.2, Appendix B): the three batch
// regimes, splitting, pruning, Lemma 4.1 preservation, Theorem 4.2
// consistency, and randomized multi-batch property sweeps.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/ensure.h"
#include "common/rng.h"
#include "keytree/marking.h"

namespace rekey::tree {
namespace {

std::vector<MemberId> ids(std::initializer_list<MemberId> l) { return l; }

TEST(Marking, EqualJoinLeaveReplacesInPlace) {
  KeyTree t(4, 1);
  t.populate(16);
  const NodeId slot3 = t.slot_of(3);
  Marker m(t);
  const auto upd = m.run(ids({100}), ids({3}));
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 16u);
  EXPECT_FALSE(t.has_member(3));
  EXPECT_EQ(t.slot_of(100), slot3);
  EXPECT_EQ(upd.joined.at(100), slot3);
  EXPECT_EQ(upd.departed.at(3), slot3);
  EXPECT_TRUE(upd.moved.empty());
  // Changed k-nodes: path from slot3 to root (2 nodes in a height-2 tree).
  EXPECT_EQ(upd.changed_knodes.size(), 2u);
  EXPECT_TRUE(upd.changed_knodes.count(kRootId));
}

TEST(Marking, ReplacedUserGetsFreshIndividualKey) {
  KeyTree t(4, 1);
  t.populate(16);
  const NodeId slot = t.slot_of(3);
  const crypto::SymmetricKey old_key = t.node(slot).key;
  Marker m(t);
  m.run(ids({100}), ids({3}));
  EXPECT_NE(t.node(slot).key, old_key);
}

TEST(Marking, PureLeaveRemovesAndPrunes) {
  KeyTree t(4, 1);
  t.populate(16);  // users 5..20, k-nodes 0..4
  Marker m(t);
  // Remove all four users under k-node 1 (slots 5, 6, 7, 8 = members 0-3).
  const auto upd = m.run({}, ids({0, 1, 2, 3}));
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 12u);
  EXPECT_FALSE(t.contains(5));
  EXPECT_FALSE(t.contains(1));  // pruned k-node
  // Only the root changed (node 1 is gone, nodes 2-4 untouched).
  EXPECT_EQ(upd.changed_knodes, std::set<NodeId>{kRootId});
}

TEST(Marking, PureLeavePartialSubtree) {
  KeyTree t(4, 1);
  t.populate(16);
  Marker m(t);
  const auto upd = m.run({}, ids({0, 1}));  // slots 5, 6 leave
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 14u);
  EXPECT_TRUE(t.contains(1));  // still has children 7, 8
  EXPECT_EQ(upd.changed_knodes, (std::set<NodeId>{0, 1}));
}

TEST(Marking, LeaveEverybody) {
  KeyTree t(4, 1);
  t.populate(16);
  std::vector<MemberId> all;
  for (MemberId i = 0; i < 16; ++i) all.push_back(i);
  Marker m(t);
  const auto upd = m.run({}, all);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(upd.changed_knodes.empty());
  t.check_invariants();
}

TEST(Marking, MoreLeavesThanJoinsReplacesSmallestIds) {
  KeyTree t(4, 1);
  t.populate(16);
  Marker m(t);
  // members 2 (slot 7) and 9 (slot 14) leave; one join must take slot 7.
  const auto upd = m.run(ids({50}), ids({9, 2}));
  t.check_invariants();
  EXPECT_EQ(t.slot_of(50), 7u);
  EXPECT_FALSE(t.contains(14));
  EXPECT_EQ(upd.joined.at(50), 7u);
}

TEST(Marking, JoinsFillFreeSlots) {
  KeyTree t(4, 1);
  t.populate(6);  // height 2, users at 5..10, nk = parent(10) = 2
  Marker m(t);
  const auto upd = m.run(ids({50, 51}), {});
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 8u);
  // Free n-node slots in (nk, d*nk+d] = (2, 12], low to high: 3, 4 (the
  // unexpanded level-1 positions), then 11, 12.
  EXPECT_EQ(t.slot_of(50), 3u);
  EXPECT_EQ(t.slot_of(51), 4u);
  EXPECT_TRUE(upd.moved.empty());
}

TEST(Marking, JoinCreatesAncestorKNodesOrFillsLeafGaps) {
  KeyTree t(4, 1);
  t.populate(6);  // nk = 2; free slots in (2, 12]: 3, 4, 11, 12
  Marker m(t);
  const auto upd = m.run(ids({50, 51, 52, 53}), {});
  t.check_invariants();
  EXPECT_EQ(t.slot_of(52), 11u);
  EXPECT_EQ(t.slot_of(53), 12u);
  // Their parent k-node 2 was already present and must be rekeyed.
  EXPECT_TRUE(upd.changed_knodes.count(2));
  // Lemma 4.1 still holds with users at mixed levels.
  EXPECT_LT(t.max_knode_id().value(), 3u);
}

TEST(Marking, JoinSplitsWhenFull) {
  KeyTree t(4, 1);
  t.populate(16);  // full: nk=4, users 5..20, no free slots
  Marker m(t);
  const auto upd = m.run(ids({50}), {});
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 17u);
  // Node 5 splits: its user (member 0) moves to 21, the join lands at 22.
  EXPECT_EQ(upd.moved.at(5), 21u);
  EXPECT_EQ(t.slot_of(0), 21u);
  EXPECT_EQ(t.slot_of(50), 22u);
  EXPECT_EQ(t.node(5).kind, NodeKind::KNode);
  EXPECT_EQ(t.max_knode_id().value(), 5u);
  EXPECT_TRUE(upd.changed_knodes.count(5));
}

TEST(Marking, ManyJoinsMultipleSplits) {
  KeyTree t(4, 1);
  t.populate(16);
  Marker m(t);
  std::vector<MemberId> js;
  for (MemberId i = 0; i < 7; ++i) js.push_back(100 + i);
  const auto upd = m.run(js, {});  // 7 joins need ceil(7/3)=3 splits
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 23u);
  EXPECT_EQ(upd.moved.size(), 3u);
  EXPECT_EQ(t.max_knode_id().value(), 7u);
}

TEST(Marking, JoinsAfterLeavesReuseSlotsFirst) {
  KeyTree t(4, 1);
  t.populate(16);
  Marker m(t);
  const auto upd = m.run(ids({50, 51}), ids({7}));
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 17u);
  // 50 replaces member 7's slot (12); 51 splits node 5.
  EXPECT_EQ(t.slot_of(50), 12u);
  EXPECT_EQ(upd.moved.size(), 1u);
}

TEST(Marking, EmptyBatchIsNoop) {
  KeyTree t(4, 1);
  t.populate(8);
  const auto key = t.group_key();
  Marker m(t);
  const auto upd = m.run({}, {});
  EXPECT_TRUE(upd.changed_knodes.empty());
  EXPECT_EQ(t.group_key(), key);
}

TEST(Marking, BootstrapFromEmptyTree) {
  KeyTree t(4, 1);
  Marker m(t);
  const auto upd = m.run(ids({1, 2, 3, 4, 5}), {});
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 5u);
  EXPECT_EQ(upd.joined.size(), 5u);
  EXPECT_FALSE(upd.changed_knodes.empty());
}

TEST(Marking, GroupKeyAlwaysChangesOnAnyBatch) {
  KeyTree t(4, 1);
  t.populate(64);
  for (int i = 0; i < 5; ++i) {
    const auto before = t.group_key();
    Marker m(t);
    m.run(ids({static_cast<MemberId>(100 + i)}),
          ids({static_cast<MemberId>(i)}));
    EXPECT_NE(t.group_key(), before);
  }
}

TEST(Marking, UnchangedSubtreeKeysStay) {
  KeyTree t(4, 1);
  t.populate(16);
  const auto aux4 = t.node(4).key;  // subtree of users 17..20
  Marker m(t);
  m.run(ids({50}), ids({0}));  // change in subtree 1 only
  EXPECT_EQ(t.node(4).key, aux4);
  EXPECT_NE(t.node(1).key, t.node(4).key);
}

TEST(Marking, JoinOfExistingMemberThrows) {
  KeyTree t(4, 1);
  t.populate(4);
  Marker m(t);
  EXPECT_THROW(m.run(ids({2}), {}), EnsureError);
}

TEST(Marking, LeaveOfUnknownMemberThrows) {
  KeyTree t(4, 1);
  t.populate(4);
  Marker m(t);
  EXPECT_THROW(m.run({}, ids({99})), EnsureError);
}

TEST(Marking, Theorem42HoldsForAllUsersAfterBatch) {
  KeyTree t(4, 1);
  t.populate(16);
  // Record pre-batch slots of survivors.
  std::map<MemberId, NodeId> before;
  for (MemberId i = 0; i < 16; ++i) before[i] = t.slot_of(i);
  Marker m(t);
  std::vector<MemberId> js;
  for (MemberId i = 0; i < 9; ++i) js.push_back(100 + i);
  const auto upd = m.run(js, ids({3, 4}));
  t.check_invariants();
  for (const auto& [member, old_slot] : before) {
    if (member == 3 || member == 4) continue;
    const auto derived = derive_new_user_id(old_slot, upd.max_kid, 4);
    ASSERT_TRUE(derived.has_value()) << "member " << member;
    EXPECT_EQ(*derived, t.slot_of(member)) << "member " << member;
  }
}

// Randomized churn: many consecutive batches with random J/L; after every
// batch the structural invariants (including Lemma 4.1) must hold, and
// Theorem 4.2 must re-derive every survivor's slot.
class ChurnSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ChurnSweep, InvariantsAndTheoremUnderChurn) {
  const unsigned d = GetParam();
  Rng rng(d * 1000 + 17);
  KeyTree t(d, 5);
  t.populate(50);
  MemberId next = 50;
  for (int batch = 0; batch < 30; ++batch) {
    // Random leaves from current members.
    std::vector<MemberId> members;
    for (const NodeId s : t.user_slots()) members.push_back(t.node(s).member);
    const std::size_t L =
        static_cast<std::size_t>(rng.next_in(0, members.size() / 2));
    rng.shuffle(members);
    std::vector<MemberId> leaves(members.begin(), members.begin() + L);
    const std::size_t J = static_cast<std::size_t>(rng.next_in(0, 30));
    std::vector<MemberId> joins;
    for (std::size_t j = 0; j < J; ++j) joins.push_back(next++);

    std::map<MemberId, NodeId> before;
    for (const MemberId mm : members) before[mm] = t.slot_of(mm);

    Marker m(t);
    const auto upd = m.run(joins, leaves);
    t.check_invariants();

    const std::set<MemberId> left(leaves.begin(), leaves.end());
    for (const auto& [member, old_slot] : before) {
      if (left.count(member)) {
        EXPECT_FALSE(t.has_member(member));
        continue;
      }
      const auto derived = derive_new_user_id(old_slot, upd.max_kid, d);
      ASSERT_TRUE(derived.has_value());
      EXPECT_EQ(*derived, t.slot_of(member));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, ChurnSweep, ::testing::Values(2u, 3u, 4u));

}  // namespace
}  // namespace rekey::tree
