// Differential test: the flat arena-backed KeyTree + batched payload
// pipeline against an embedded copy of the original map/set-based
// implementation. Both draw from the same deterministic KeyGenerator, so
// any divergence — in tree structure, key material, changed sets, labels,
// user needs, or the exact encryption sequence — is a hard failure, byte
// for byte. This is the refactor's safety net: the rewrite must be
// observationally identical, not just "equivalent".
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "crypto/keys.h"
#include "keytree/ids.h"
#include "keytree/keytree.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "keytree/shard.h"
#include "keytree/shard_pipeline.h"
#include "packet/assign.h"

namespace rekey::tree {
namespace {

// ---------------------------------------------------------------------------
// Legacy reference implementation (the pre-arena KeyTree/Marker/payload,
// verbatim modulo namespacing). Kept map/set-based on purpose: slow and
// obviously correct.
// ---------------------------------------------------------------------------
namespace legacy {

struct LegacyUpdate {
  std::set<NodeId> changed_knodes;
  std::map<MemberId, NodeId> joined;
  std::map<MemberId, NodeId> departed;
  std::map<NodeId, NodeId> moved;
  NodeId max_kid = 0;
};

class LegacyTree {
 public:
  LegacyTree(unsigned degree, std::uint64_t key_seed)
      : degree_(degree), keygen_(key_seed) {}

  unsigned degree() const { return degree_; }
  bool empty() const { return nodes_.empty(); }
  bool contains(NodeId id) const { return nodes_.count(id) != 0; }
  const Node& node(NodeId id) const { return nodes_.at(id); }
  bool has_member(MemberId m) const { return slot_of_member_.count(m) != 0; }
  NodeId slot_of(MemberId m) const { return slot_of_member_.at(m); }
  const std::map<NodeId, Node>& nodes() const { return nodes_; }

  std::optional<NodeId> max_knode_id() const {
    if (knode_ids_.empty()) return std::nullopt;
    return *knode_ids_.rbegin();
  }

  std::vector<NodeId> user_slots() const {
    return {unode_ids_.begin(), unode_ids_.end()};
  }

  // --- the original Marker, folded into the tree for brevity -------------

  NodeId place_user(MemberId m, NodeId slot) {
    Node u;
    u.kind = NodeKind::UNode;
    u.key = keygen_.next();
    u.member = m;
    nodes_.emplace(slot, u);
    unode_ids_.insert(slot);
    slot_of_member_.emplace(m, slot);
    return slot;
  }

  void remove_user_slot(NodeId slot) {
    const auto it = nodes_.find(slot);
    slot_of_member_.erase(it->second.member);
    unode_ids_.erase(slot);
    nodes_.erase(it);
  }

  void prune_upwards(NodeId from_parent) {
    NodeId id = from_parent;
    while (true) {
      const auto it = nodes_.find(id);
      if (it == nodes_.end() || it->second.kind != NodeKind::KNode) return;
      bool has_child = false;
      for (unsigned j = 0; j < degree_ && !has_child; ++j)
        has_child = nodes_.count(child_of(id, j, degree_)) != 0;
      if (has_child) return;
      knode_ids_.erase(id);
      nodes_.erase(it);
      if (id == kRootId) return;
      id = parent_of(id, degree_);
    }
  }

  void create_ancestors(NodeId slot, LegacyUpdate& upd) {
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, degree_);
      if (nodes_.count(id)) return;
      Node k;
      k.kind = NodeKind::KNode;
      k.key = keygen_.next();
      nodes_.emplace(id, k);
      knode_ids_.insert(id);
      upd.changed_knodes.insert(id);
    }
  }

  void split_first_user(LegacyUpdate& upd, std::vector<NodeId>& free_slots) {
    const auto nk = max_knode_id();
    const NodeId s = *nk + 1;
    const auto it = nodes_.find(s);
    const Node user = it->second;
    const NodeId dest = child_of(s, 0, degree_);
    unode_ids_.erase(s);
    nodes_.erase(it);
    nodes_.emplace(dest, user);
    unode_ids_.insert(dest);
    slot_of_member_[user.member] = dest;

    Node k;
    k.kind = NodeKind::KNode;
    k.key = keygen_.next();
    nodes_.emplace(s, k);
    knode_ids_.insert(s);
    upd.changed_knodes.insert(s);
    upd.moved[s] = dest;
    const auto jit = upd.joined.find(user.member);
    if (jit != upd.joined.end()) jit->second = dest;

    for (unsigned j = degree_ - 1; j >= 1; --j)
      free_slots.push_back(child_of(s, j, degree_));
  }

  LegacyUpdate run(std::span<const MemberId> joins,
                   std::span<const MemberId> leaves) {
    LegacyUpdate upd;
    if (empty()) {
      if (joins.empty()) return upd;
      unsigned height = 1;
      std::size_t capacity = degree_;
      while (capacity < joins.size()) {
        capacity *= degree_;
        ++height;
      }
      const NodeId first_leaf = first_id_at_level(height, degree_);
      for (std::size_t i = 0; i < joins.size(); ++i) {
        const NodeId slot = first_leaf + i;
        place_user(joins[i], slot);
        create_ancestors(slot, upd);
        upd.joined.emplace(joins[i], slot);
      }
      upd.max_kid = max_knode_id().value_or(0);
      return upd;
    }

    const std::size_t J = joins.size();
    const std::size_t L = leaves.size();

    std::vector<NodeId> departed;
    for (const MemberId m : leaves) {
      const NodeId slot = slot_of(m);
      departed.push_back(slot);
      upd.departed.emplace(m, slot);
    }
    std::sort(departed.begin(), departed.end());

    std::vector<NodeId> changed_slots;
    const std::size_t replaced = std::min(J, L);
    for (std::size_t i = 0; i < replaced; ++i) {
      const NodeId slot = departed[i];
      remove_user_slot(slot);
      place_user(joins[i], slot);
      upd.joined.emplace(joins[i], slot);
      changed_slots.push_back(slot);
    }

    if (J < L) {
      for (std::size_t i = J; i < L; ++i) {
        const NodeId slot = departed[i];
        remove_user_slot(slot);
        changed_slots.push_back(slot);
        if (slot != kRootId) prune_upwards(parent_of(slot, degree_));
      }
    } else if (J > L) {
      std::vector<NodeId> free_slots;
      {
        const auto nk = max_knode_id();
        const NodeId lo = *nk + 1;
        const NodeId hi = *nk * degree_ + degree_;
        std::vector<NodeId> ascending;
        NodeId next = lo;
        for (auto it = unode_ids_.lower_bound(lo);
             it != unode_ids_.end() && *it <= hi; ++it) {
          for (NodeId id = next; id < *it; ++id) ascending.push_back(id);
          next = *it + 1;
        }
        for (NodeId id = next; id <= hi; ++id) ascending.push_back(id);
        free_slots.assign(ascending.rbegin(), ascending.rend());
      }
      for (std::size_t i = L; i < J; ++i) {
        if (free_slots.empty()) split_first_user(upd, free_slots);
        const NodeId slot = free_slots.back();
        free_slots.pop_back();
        place_user(joins[i], slot);
        create_ancestors(slot, upd);
        upd.joined.emplace(joins[i], slot);
        changed_slots.push_back(slot);
      }
    }

    for (const auto& [old_slot, new_slot] : upd.moved)
      changed_slots.push_back(new_slot);

    for (const NodeId slot : changed_slots) {
      NodeId id = slot;
      while (id != kRootId) {
        id = parent_of(id, degree_);
        const auto it = nodes_.find(id);
        if (it != nodes_.end() && it->second.kind == NodeKind::KNode)
          upd.changed_knodes.insert(id);
      }
    }
    for (const NodeId x : upd.changed_knodes)
      nodes_.at(x).key = keygen_.next();

    upd.max_kid = max_knode_id().value_or(0);
    return upd;
  }

 private:
  unsigned degree_;
  crypto::KeyGenerator keygen_;
  std::map<NodeId, Node> nodes_;
  std::set<NodeId> knode_ids_;
  std::set<NodeId> unode_ids_;
  std::map<MemberId, NodeId> slot_of_member_;
};

struct LegacyPayload {
  std::vector<Encryption> encryptions;
  std::map<NodeId, std::vector<std::uint32_t>> user_needs;
  std::map<NodeId, Label> labels;
  NodeId max_kid = 0;
};

LegacyPayload generate_payload(const LegacyTree& tree,
                               const LegacyUpdate& update,
                               std::uint32_t msg_id) {
  LegacyPayload out;
  out.max_kid = update.max_kid;
  const unsigned d = tree.degree();

  for (const NodeId x : update.changed_knodes) out.labels[x] = Label::Join;
  auto taint = [&](NodeId slot) {
    NodeId id = slot;
    while (id != kRootId) {
      id = parent_of(id, d);
      const auto it = out.labels.find(id);
      if (it != out.labels.end()) it->second = Label::Replace;
    }
  };
  for (const auto& [member, slot] : update.departed) taint(slot);
  for (const auto& [old_slot, new_slot] : update.moved) {
    taint(old_slot);
    const auto it = out.labels.find(old_slot);
    if (it != out.labels.end()) it->second = Label::Replace;
  }

  std::vector<NodeId> order(update.changed_knodes.begin(),
                            update.changed_knodes.end());
  std::sort(order.begin(), order.end(), std::greater<NodeId>());

  std::map<NodeId, std::uint32_t> index_of_enc;
  for (const NodeId x : order) {
    const crypto::SymmetricKey& new_key = tree.node(x).key;
    for (unsigned j = 0; j < d; ++j) {
      const NodeId c = child_of(x, j, d);
      if (!tree.contains(c)) continue;
      Encryption e;
      e.enc_id = c;
      e.target_id = x;
      e.payload = crypto::encrypt_key(tree.node(c).key, new_key, msg_id, c);
      index_of_enc.emplace(
          c, static_cast<std::uint32_t>(out.encryptions.size()));
      out.encryptions.push_back(e);
    }
  }

  for (const NodeId slot : tree.user_slots()) {
    std::vector<std::uint32_t> needs;
    for (NodeId c = slot; c != kRootId; c = parent_of(c, d)) {
      if (update.changed_knodes.count(parent_of(c, d)))
        needs.push_back(index_of_enc.at(c));
    }
    if (!needs.empty()) out.user_needs.emplace(slot, std::move(needs));
  }
  return out;
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

void expect_trees_equal(const KeyTree& flat, const legacy::LegacyTree& ref,
                        int batch) {
  const std::map<NodeId, Node> a = flat.nodes();
  const std::map<NodeId, Node>& b = ref.nodes();
  ASSERT_EQ(a.size(), b.size()) << "node count diverged at batch " << batch;
  auto ia = a.begin();
  for (auto ib = b.begin(); ib != b.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first) << "node id diverged at batch " << batch;
    ASSERT_EQ(ia->second.kind, ib->second.kind)
        << "kind of node " << ia->first << " diverged at batch " << batch;
    ASSERT_EQ(ia->second.key, ib->second.key)
        << "key of node " << ia->first << " diverged at batch " << batch;
    if (ia->second.kind == NodeKind::UNode) {
      ASSERT_EQ(ia->second.member, ib->second.member)
          << "member at node " << ia->first << " diverged at batch " << batch;
    }
  }
}

void expect_updates_equal(const BatchUpdate& a, const legacy::LegacyUpdate& b,
                          int batch) {
  EXPECT_TRUE(a.changed_knodes == b.changed_knodes)
      << "changed_knodes diverged at batch " << batch;
  EXPECT_EQ(a.joined, b.joined) << "joined diverged at batch " << batch;
  EXPECT_EQ(a.departed, b.departed) << "departed diverged at batch " << batch;
  EXPECT_EQ(a.moved, b.moved) << "moved diverged at batch " << batch;
  EXPECT_EQ(a.max_kid, b.max_kid) << "max_kid diverged at batch " << batch;
}

void expect_payloads_equal(const RekeyPayload& a,
                           const legacy::LegacyPayload& b, int batch) {
  ASSERT_EQ(a.encryptions.size(), b.encryptions.size())
      << "encryption count diverged at batch " << batch;
  for (std::size_t i = 0; i < a.encryptions.size(); ++i) {
    ASSERT_EQ(a.encryptions[i].enc_id, b.encryptions[i].enc_id)
        << "enc_id at position " << i << ", batch " << batch;
    ASSERT_EQ(a.encryptions[i].target_id, b.encryptions[i].target_id)
        << "target_id at position " << i << ", batch " << batch;
    ASSERT_EQ(a.encryptions[i].payload, b.encryptions[i].payload)
        << "ciphertext at position " << i << ", batch " << batch;
  }
  EXPECT_EQ(a.max_kid, b.max_kid);

  ASSERT_EQ(a.user_needs.size(), b.user_needs.size())
      << "user_needs size diverged at batch " << batch;
  auto ib = b.user_needs.begin();
  for (const auto& [slot, needs] : a.user_needs) {
    ASSERT_EQ(slot, ib->first) << "user_needs slot order, batch " << batch;
    ASSERT_EQ(std::vector<std::uint32_t>(needs.begin(), needs.end()),
              ib->second)
        << "needs of slot " << slot << ", batch " << batch;
    ++ib;
  }

  ASSERT_EQ(a.labels.size(), b.labels.size())
      << "label count diverged at batch " << batch;
  auto lb = b.labels.begin();
  for (const auto& [id, label] : a.labels) {
    ASSERT_EQ(id, lb->first) << "label id order, batch " << batch;
    ASSERT_EQ(label, lb->second) << "label of " << id << ", batch " << batch;
    ++lb;
  }
}

// One scripted churn sequence: bootstrap join, then `batches` random
// J/L mixes (including J=0, L=0, J=L, and heavy-join batches that force
// splits). Applied in lockstep to both implementations.
void run_differential(unsigned degree, std::uint64_t seed, int batches,
                      std::size_t initial, rekey::ThreadPool* pool) {
  Rng rng(seed);
  KeyTree flat(degree, seed);
  legacy::LegacyTree ref(degree, seed);
  Marker marker(flat);

  MemberId next_member = 0;
  std::vector<MemberId> population;

  RekeyPayload flat_payload;  // reused across batches, as the service does
  for (int batch = 0; batch < batches; ++batch) {
    std::vector<MemberId> joins, leaves;
    if (batch == 0) {
      for (std::size_t i = 0; i < initial; ++i) joins.push_back(next_member++);
    } else {
      // Mix regimes: 0=churn J==L, 1=leave-heavy, 2=join-heavy (splits).
      const std::uint64_t regime = rng.next_in(0, 2);
      const std::size_t n = population.size();
      std::size_t J = 0, L = 0;
      if (regime == 0) {
        J = L = static_cast<std::size_t>(rng.next_in(0, n / 4));
      } else if (regime == 1) {
        L = static_cast<std::size_t>(rng.next_in(1, 1 + n / 2));
        J = static_cast<std::size_t>(rng.next_in(0, L));
      } else {
        J = static_cast<std::size_t>(rng.next_in(1, 1 + n / 2));
        L = static_cast<std::size_t>(rng.next_in(0, std::min(J, n / 4)));
      }
      L = std::min(L, n);
      for (const auto pick : rng.sample_without_replacement(n, L))
        leaves.push_back(population[pick]);
      for (std::size_t i = 0; i < J; ++i) joins.push_back(next_member++);
    }

    const BatchUpdate upd = marker.run(joins, leaves);
    const legacy::LegacyUpdate ref_upd = ref.run(joins, leaves);
    expect_updates_equal(upd, ref_upd, batch);
    expect_trees_equal(flat, ref, batch);
    if (::testing::Test::HasFatalFailure()) return;
    flat.check_invariants();

    const auto msg_id = static_cast<std::uint32_t>(batch + 1);
    generate_rekey_payload_into(flat, upd, msg_id, flat_payload, pool);
    const legacy::LegacyPayload ref_payload =
        legacy::generate_payload(ref, ref_upd, msg_id);
    expect_payloads_equal(flat_payload, ref_payload, batch);
    if (::testing::Test::HasFatalFailure()) return;

    // Update the scripted population for the next round.
    std::set<MemberId> gone(leaves.begin(), leaves.end());
    std::vector<MemberId> next;
    for (const MemberId m : population)
      if (!gone.count(m)) next.push_back(m);
    next.insert(next.end(), joins.begin(), joins.end());
    population = std::move(next);
    ASSERT_EQ(flat.num_users(), population.size());
  }
}

// ---------------------------------------------------------------------------
// Tests: 200 seeded batches total across degrees, serial payload.
// ---------------------------------------------------------------------------

TEST(KeyTreeDifferential, Degree4SerialChurn) {
  run_differential(/*degree=*/4, /*seed=*/0xD1FF01, /*batches=*/100,
                   /*initial=*/64, /*pool=*/nullptr);
}

TEST(KeyTreeDifferential, Degree2SerialChurn) {
  run_differential(2, 0xD1FF02, 50, 33, nullptr);
}

TEST(KeyTreeDifferential, Degree8SerialChurn) {
  run_differential(8, 0xD1FF08, 50, 100, nullptr);
}

TEST(KeyTreeDifferential, SmallGroupsAndFullDepartures) {
  // Tiny populations exercise root-adjacent splits and total-leave +
  // re-bootstrap paths.
  run_differential(4, 0xD1FF10, 40, 2, nullptr);
  run_differential(2, 0xD1FF11, 40, 1, nullptr);
}

// The parallel payload path must be bit-identical to serial; run the same
// scripted sequences through a thread pool. REKEY_THREADS (when set, e.g.
// 8 in CI) sizes the pool; at 1 the pool runs inline and this repeats the
// serial test.
TEST(KeyTreeDifferential, ParallelPayloadMatchesLegacy) {
  rekey::ThreadPool pool(0);
  run_differential(4, 0xD1FF01, 100, 64, &pool);
}

TEST(KeyTreeDifferential, ParallelPayloadEightWorkers) {
  rekey::ThreadPool pool(8);
  run_differential(4, 0xD1FF20, 60, 300, &pool);
  run_differential(8, 0xD1FF21, 30, 200, &pool);
}

// ---------------------------------------------------------------------------
// Sharded-vs-serial differential: the same scripted churn drives two
// identical trees, one through the serial pipeline (Marker::run ->
// generate_rekey_payload_into -> assign_keys) and one through the sharded
// pipeline (run_sharded -> generate_rekey_payload_sharded -> sharded
// assign_keys). The determinism contract says sharding changes who
// computes what, never what is computed: every artifact — tree nodes and
// key material, the draw-stream counter, the batch update, payload bytes,
// and the assigned packets — must match exactly for every shard count and
// thread count.
// ---------------------------------------------------------------------------

void expect_flat_trees_equal(const KeyTree& a, const KeyTree& b, int batch) {
  EXPECT_EQ(a.key_generator().counter(), b.key_generator().counter())
      << "draw-stream counter diverged at batch " << batch;
  const std::map<NodeId, Node> na = a.nodes();
  const std::map<NodeId, Node> nb = b.nodes();
  ASSERT_EQ(na.size(), nb.size()) << "node count diverged at batch " << batch;
  auto ib = nb.begin();
  for (const auto& [id, n] : na) {
    ASSERT_EQ(id, ib->first) << "node id diverged at batch " << batch;
    ASSERT_EQ(n.kind, ib->second.kind)
        << "kind of node " << id << " diverged at batch " << batch;
    ASSERT_EQ(n.key, ib->second.key)
        << "key of node " << id << " diverged at batch " << batch;
    if (n.kind == NodeKind::UNode) {
      ASSERT_EQ(n.member, ib->second.member)
          << "member at node " << id << " diverged at batch " << batch;
    }
    ++ib;
  }
}

void expect_batch_updates_equal(const BatchUpdate& a, const BatchUpdate& b,
                                int batch) {
  EXPECT_TRUE(a.changed_knodes == b.changed_knodes)
      << "changed_knodes diverged at batch " << batch;
  EXPECT_EQ(a.joined, b.joined) << "joined diverged at batch " << batch;
  EXPECT_EQ(a.departed, b.departed) << "departed diverged at batch " << batch;
  EXPECT_EQ(a.moved, b.moved) << "moved diverged at batch " << batch;
  EXPECT_EQ(a.max_kid, b.max_kid) << "max_kid diverged at batch " << batch;
}

void expect_flat_payloads_equal(const RekeyPayload& a, const RekeyPayload& b,
                                int batch) {
  ASSERT_EQ(a.encryptions.size(), b.encryptions.size())
      << "encryption count diverged at batch " << batch;
  for (std::size_t i = 0; i < a.encryptions.size(); ++i) {
    ASSERT_EQ(a.encryptions[i].enc_id, b.encryptions[i].enc_id)
        << "enc_id at position " << i << ", batch " << batch;
    ASSERT_EQ(a.encryptions[i].target_id, b.encryptions[i].target_id)
        << "target_id at position " << i << ", batch " << batch;
    ASSERT_EQ(a.encryptions[i].payload, b.encryptions[i].payload)
        << "ciphertext at position " << i << ", batch " << batch;
  }
  EXPECT_EQ(a.max_kid, b.max_kid) << "max_kid diverged at batch " << batch;

  ASSERT_EQ(a.user_needs.size(), b.user_needs.size())
      << "user_needs size diverged at batch " << batch;
  auto ib = b.user_needs.begin();
  for (const auto& [slot, needs] : a.user_needs) {
    const auto [slot_b, needs_b] = *ib;
    ASSERT_EQ(slot, slot_b) << "user_needs slot order, batch " << batch;
    ASSERT_TRUE(std::equal(needs.begin(), needs.end(), needs_b.begin(),
                           needs_b.end()))
        << "needs of slot " << slot << ", batch " << batch;
    ++ib;
  }

  ASSERT_EQ(a.labels.size(), b.labels.size())
      << "label count diverged at batch " << batch;
  auto lb = b.labels.begin();
  for (const auto& [id, label] : a.labels) {
    ASSERT_EQ(id, lb->first) << "label id order, batch " << batch;
    ASSERT_EQ(label, lb->second) << "label of " << id << ", batch " << batch;
    ++lb;
  }
}

void expect_assignments_equal(const packet::Assignment& a,
                              const packet::Assignment& b, int batch) {
  ASSERT_EQ(a.packets.size(), b.packets.size())
      << "packet count diverged at batch " << batch;
  for (std::size_t p = 0; p < a.packets.size(); ++p) {
    const packet::EncPacket& pa = a.packets[p];
    const packet::EncPacket& pb = b.packets[p];
    ASSERT_EQ(pa.msg_id, pb.msg_id) << "packet " << p << ", batch " << batch;
    ASSERT_EQ(pa.max_kid, pb.max_kid) << "packet " << p << ", batch " << batch;
    ASSERT_EQ(pa.frm_id, pb.frm_id) << "packet " << p << ", batch " << batch;
    ASSERT_EQ(pa.to_id, pb.to_id) << "packet " << p << ", batch " << batch;
    ASSERT_TRUE(pa.entries == pb.entries)
        << "entries of packet " << p << " diverged at batch " << batch;
  }
  EXPECT_EQ(a.total_entries, b.total_entries) << "batch " << batch;
  EXPECT_EQ(a.unique_encryptions, b.unique_encryptions) << "batch " << batch;
}

// What each non-bootstrap batch of the script should look like.
enum class ShardScript {
  Mixed,             // the serial differential's three churn regimes
  SingleShardDirty,  // J == L leaves confined to one randomly chosen shard
};

void run_sharded_differential(unsigned degree, std::uint64_t seed,
                              int batches, std::size_t initial,
                              unsigned shards, unsigned pool_threads,
                              ShardScript script = ShardScript::Mixed) {
  Rng rng(seed);
  KeyTree serial_tree(degree, seed);
  KeyTree sharded_tree(degree, seed);
  Marker serial_marker(serial_tree);
  Marker sharded_marker(sharded_tree);
  const ShardPlan plan = ShardPlan::make(degree, shards);
  std::unique_ptr<rekey::ThreadPool> pool;
  if (pool_threads != 1)
    pool = std::make_unique<rekey::ThreadPool>(pool_threads);
  rekey::TaskRunner runner(pool.get());

  MemberId next_member = 0;
  std::vector<MemberId> population;
  RekeyPayload serial_payload, sharded_payload;

  for (int batch = 0; batch < batches; ++batch) {
    std::vector<MemberId> joins, leaves;
    unsigned dirty_shard = ShardPlan::kAggregator;
    if (batch == 0) {
      for (std::size_t i = 0; i < initial; ++i) joins.push_back(next_member++);
    } else if (script == ShardScript::SingleShardDirty &&
               !population.empty()) {
      // Leaves confined to one cut subtree's shard, replaced in place
      // (J == L reuses the departed slots), so every below-cut changed
      // k-node belongs to that single shard.
      dirty_shard = static_cast<unsigned>(rng.next_in(0, plan.shards - 1));
      std::vector<MemberId> in_target;
      for (const MemberId m : population)
        if (plan.shard_of(serial_tree.slot_of(m)) == dirty_shard)
          in_target.push_back(m);
      const std::size_t L = in_target.empty()
                                ? 0
                                : static_cast<std::size_t>(rng.next_in(
                                      1, in_target.size()));
      for (const auto pick :
           rng.sample_without_replacement(in_target.size(), L))
        leaves.push_back(in_target[pick]);
      for (std::size_t i = 0; i < L; ++i) joins.push_back(next_member++);
    } else {
      const std::uint64_t regime = rng.next_in(0, 2);
      const std::size_t n = population.size();
      std::size_t J = 0, L = 0;
      if (regime == 0) {
        J = L = static_cast<std::size_t>(rng.next_in(0, n / 4));
      } else if (regime == 1) {
        L = static_cast<std::size_t>(rng.next_in(1, 1 + n / 2));
        J = static_cast<std::size_t>(rng.next_in(0, L));
      } else {
        J = static_cast<std::size_t>(rng.next_in(1, 1 + n / 2));
        L = static_cast<std::size_t>(rng.next_in(0, std::min(J, n / 4)));
      }
      L = std::min(L, n);
      for (const auto pick : rng.sample_without_replacement(n, L))
        leaves.push_back(population[pick]);
      for (std::size_t i = 0; i < J; ++i) joins.push_back(next_member++);
    }

    const BatchUpdate upd_a = serial_marker.run(joins, leaves);
    ShardBatchStats mark_stats;
    const BatchUpdate upd_b =
        sharded_marker.run_sharded(joins, leaves, plan, runner, &mark_stats);
    expect_batch_updates_equal(upd_a, upd_b, batch);
    expect_flat_trees_equal(serial_tree, sharded_tree, batch);
    if (::testing::Test::HasFatalFailure()) return;
    check_sharded_tree(sharded_tree, plan);

    // The per-shard stats partition the changed set exactly.
    std::size_t changed_total = mark_stats.aggregator_changed;
    for (const std::size_t c : mark_stats.shard_changed) changed_total += c;
    ASSERT_EQ(changed_total, upd_b.changed_knodes.size())
        << "shard stats do not partition the changed set at batch " << batch;
    if (dirty_shard != ShardPlan::kAggregator) {
      for (unsigned s = 0; s < plan.shards; ++s) {
        if (s == dirty_shard) continue;
        EXPECT_EQ(mark_stats.shard_changed[s], 0u)
            << "single-shard-dirty batch " << batch << " touched shard " << s;
      }
    }

    const auto msg_id = static_cast<std::uint32_t>(batch + 1);
    generate_rekey_payload_into(serial_tree, upd_a, msg_id, serial_payload);
    ShardBatchStats pay_stats;
    generate_rekey_payload_sharded(sharded_tree, upd_b, msg_id,
                                   sharded_payload, plan, runner, &pay_stats);
    expect_flat_payloads_equal(serial_payload, sharded_payload, batch);
    if (::testing::Test::HasFatalFailure()) return;
    check_enc_id_disjointness(sharded_payload, plan);
    std::size_t enc_total = 0;
    for (const std::size_t c : pay_stats.shard_encryptions) enc_total += c;
    ASSERT_EQ(enc_total, sharded_payload.encryptions.size())
        << "shard stats do not partition the encryptions at batch " << batch;

    const packet::Assignment serial_asn =
        packet::assign_keys(serial_payload, 1027);
    const packet::Assignment sharded_asn =
        packet::assign_keys(sharded_payload, 1027, plan, runner);
    expect_assignments_equal(serial_asn, sharded_asn, batch);
    if (::testing::Test::HasFatalFailure()) return;

    std::set<MemberId> gone(leaves.begin(), leaves.end());
    std::vector<MemberId> next;
    for (const MemberId m : population)
      if (!gone.count(m)) next.push_back(m);
    next.insert(next.end(), joins.begin(), joins.end());
    population = std::move(next);
    ASSERT_EQ(sharded_tree.num_users(), population.size());
  }
}

// The acceptance matrix: shards {1,2,4,8} x worker threads {1,8}. A pool
// of 8 with fewer shards also exercises partially idle task slots.
TEST(ShardedDifferential, ShardByThreadMatrix) {
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    for (const unsigned threads : {1u, 8u}) {
      run_sharded_differential(/*degree=*/4,
                               /*seed=*/0x5AD0 + shards * 16 + threads,
                               /*batches=*/20, /*initial=*/128, shards,
                               threads);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ShardedDifferential, SingleShardDirtyBatches) {
  run_sharded_differential(4, 0x5AD100, 30, 256, 4, 1,
                           ShardScript::SingleShardDirty);
  run_sharded_differential(4, 0x5AD101, 30, 256, 8, 8,
                           ShardScript::SingleShardDirty);
}

// Tiny trees under a deep cut: most (or all) slots live at or above the
// cut level, so the aggregator owns nearly everything and batches
// straddle the cut constantly. Also covers total-leave + re-bootstrap
// through the sharded path.
TEST(ShardedDifferential, AggregatorCutStraddlingSmallTrees) {
  run_sharded_differential(4, 0x5AD200, 30, 4, 8, 1);
  run_sharded_differential(2, 0x5AD201, 30, 3, 8, 8);
  run_sharded_differential(8, 0x5AD202, 25, 12, 64, 8);
}

TEST(ShardedDifferential, OtherDegrees) {
  run_sharded_differential(2, 0x5AD300, 25, 64, 4, 8);
  run_sharded_differential(8, 0x5AD301, 25, 200, 4, 8);
}

}  // namespace
}  // namespace rekey::tree
