// End-to-end wire protocol tests over the in-process loopback hub:
// KeyServerDaemon and ClientFleet threads exchanging real datagrams with
// deterministic client-side loss shaping. These cover the full session
// lifecycle — subscription, slot maps, lockstep rounds, NACK-driven
// reactive parities, the unicast USR phase with fragmentation, id
// evolution across batches, and the Fin handshake — without sockets, so
// they run anywhere and never flake on kernel buffers.
#include <gtest/gtest.h>

#include <thread>

#include "wire/daemon.h"
#include "wire/fleet.h"
#include "wire/loopback.h"

namespace rekey::wire {
namespace {

struct RunResult {
  DaemonStats daemon;
  std::vector<FleetStats> fleets;
};

RunResult run_session(LoopbackHub& hub, DaemonConfig dc,
                      const std::vector<FleetConfig>& fleet_configs) {
  auto daemon_wire = hub.attach();
  KeyServerDaemon daemon(*daemon_wire, dc);
  RunResult r;
  r.fleets.resize(fleet_configs.size());
  std::thread daemon_thread([&] { r.daemon = daemon.run(); });
  std::vector<std::thread> fleet_threads;
  for (std::size_t i = 0; i < fleet_configs.size(); ++i) {
    fleet_threads.emplace_back([&, i] {
      auto wire = hub.attach();
      ClientFleet fleet(*wire, daemon_wire->endpoint(), fleet_configs[i]);
      r.fleets[i] = fleet.run();
    });
  }
  for (auto& t : fleet_threads) t.join();
  daemon_thread.join();
  return r;
}

DaemonConfig base_daemon(std::uint32_t clients) {
  DaemonConfig dc;
  dc.clients = clients;
  dc.churn_pool = 64;
  dc.churn_joins = 16;
  dc.churn_leaves = 16;
  dc.retry_ms = 10;
  dc.round_wait_ms = 10000;
  return dc;
}

FleetConfig fleet_slice(std::uint32_t first, std::uint32_t count) {
  FleetConfig fc;
  fc.first_uid = first;
  fc.count = count;
  fc.retry_ms = 10;
  fc.idle_timeout_ms = 15000;
  return fc;
}

TEST(WireLoopback, ZeroLossDeliversInOneRound) {
  LoopbackHub hub;
  auto r = run_session(hub, base_daemon(64),
                       {fleet_slice(0, 32), fleet_slice(32, 32)});
  EXPECT_EQ(r.daemon.batches_run, 1u);
  EXPECT_EQ(r.daemon.rounds, 1u);  // nothing lost, nobody NACKs
  EXPECT_EQ(r.daemon.recovered, 64u);
  EXPECT_EQ(r.daemon.via_usr, 0u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_EQ(r.daemon.unicast_waves, 0u);
  EXPECT_EQ(r.daemon.endpoints, 2u);
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.recovered, fs.clients);
    EXPECT_EQ(fs.unrecovered, 0u);
  }
}

TEST(WireLoopback, LossyRecoveryViaNacksAndParities) {
  // Small packets force several FEC blocks with little duplication, so
  // shaped loss produces real NACK traffic and reactive parities.
  LoopbackHub hub;
  DaemonConfig dc = base_daemon(128);
  dc.batches = 2;
  dc.churn_pool = 128;
  dc.churn_joins = 64;
  dc.churn_leaves = 64;
  dc.protocol.packet_size = 300;
  auto fc = fleet_slice(0, 128);
  fc.shaping.down_loss = 0.25;
  fc.shaping.seed = 42;
  auto r = run_session(hub, dc, {fc});
  EXPECT_EQ(r.daemon.batches_run, 2u);
  EXPECT_GT(r.daemon.rounds, 2u) << "loss should force extra rounds";
  EXPECT_GT(r.daemon.nack_users, 0u);
  EXPECT_GT(r.daemon.reactive_parities, 0u);
  EXPECT_EQ(r.daemon.recovered, 256u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_TRUE(r.fleets[0].finished);
  EXPECT_EQ(r.fleets[0].unrecovered, 0u);
  EXPECT_GT(r.fleets[0].shaped_off, 0u);
}

TEST(WireLoopback, LossyRunsAreDeterministic) {
  const auto run_once = [] {
    LoopbackHub hub;
    DaemonConfig dc = base_daemon(96);
    dc.batches = 2;
    dc.protocol.packet_size = 300;
    auto fc = fleet_slice(0, 96);
    fc.shaping.down_loss = 0.3;
    fc.shaping.seed = 1234;
    return run_session(hub, dc, {fc});
  };
  const auto a = run_once();
  const auto b = run_once();
  // Socket timing varies between runs; the protocol counters must not.
  EXPECT_EQ(a.daemon.rounds, b.daemon.rounds);
  EXPECT_EQ(a.daemon.reactive_parities, b.daemon.reactive_parities);
  EXPECT_EQ(a.daemon.nack_users, b.daemon.nack_users);
  EXPECT_EQ(a.daemon.usr_frags, b.daemon.usr_frags);
  EXPECT_EQ(a.daemon.recovered, b.daemon.recovered);
  EXPECT_EQ(a.fleets[0].shaped_off, b.fleets[0].shaped_off);
  EXPECT_EQ(a.fleets[0].nacks_suppressed, b.fleets[0].nacks_suppressed);
}

TEST(WireLoopback, MultiBatchIdEvolutionSurvives) {
  // Five churn batches: every client's id moves per Theorem 4.2 after
  // each batch. If the client-side derivation diverged from the server's
  // tree, later batches would address the wrong ids and clients would
  // stop recovering from their ENC packets.
  LoopbackHub hub;
  DaemonConfig dc = base_daemon(64);
  dc.batches = 5;
  auto r = run_session(hub, dc, {fleet_slice(0, 64)});
  EXPECT_EQ(r.daemon.batches_run, 5u);
  EXPECT_EQ(r.daemon.recovered, 5u * 64u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_EQ(r.fleets[0].batches, 5u);
  EXPECT_TRUE(r.fleets[0].finished);
}

TEST(WireLoopback, UnicastPhaseServesStragglersWithFragmentation) {
  // One multicast round, then heavy per-client loss: stragglers must be
  // served by unicast USR packets. The tiny hub MTU forces every USR to
  // fragment, so this also proves the daemon never needs an over-MTU
  // datagram (the hub refuses oversize sends outright).
  LoopbackHub hub(150);
  DaemonConfig dc = base_daemon(48);
  dc.batches = 2;
  dc.max_multicast_rounds = 1;
  dc.protocol.packet_size = 120;
  auto fc = fleet_slice(0, 48);
  fc.shaping.down_loss = 0.5;
  fc.shaping.seed = 7;
  auto r = run_session(hub, dc, {fc});
  EXPECT_EQ(r.daemon.recovered, 96u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_GT(r.daemon.unicast_waves, 0u);
  EXPECT_GT(r.daemon.via_usr, 0u);
  // USR wires (5-byte header + 22-byte entries) cannot fit one 149-byte
  // payload whenever a straggler owes several keys; fragmentation must
  // have produced more frags than stragglers served.
  EXPECT_GT(r.daemon.usr_frags, r.daemon.via_usr);
  EXPECT_TRUE(r.fleets[0].finished);
  EXPECT_EQ(r.fleets[0].unrecovered, 0u);
}

TEST(WireLoopback, UpstreamLossDelaysButDoesNotLoseClients) {
  // Suppressed NACK reports starve the server of parity requests, but the
  // lockstep report's unrecovered count keeps the round open, so every
  // client still converges (possibly via more rounds or unicast).
  LoopbackHub hub;
  DaemonConfig dc = base_daemon(96);
  dc.churn_pool = 128;
  dc.churn_joins = 64;  // enough traffic for multiple FEC blocks
  dc.churn_leaves = 64;
  dc.protocol.packet_size = 300;
  dc.max_multicast_rounds = 4;
  auto fc = fleet_slice(0, 96);
  fc.shaping.down_loss = 0.25;
  fc.shaping.up_loss = 0.5;
  fc.shaping.seed = 99;
  auto r = run_session(hub, dc, {fc});
  EXPECT_EQ(r.daemon.recovered, 96u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_GT(r.fleets[0].nacks_suppressed, 0u);
  EXPECT_TRUE(r.fleets[0].finished);
}

TEST(WireLoopback, NegotiationPicksV1ForSmallGroups) {
  // A v2-capable client against a small group: the server must keep the
  // session on v1 so the byte streams match a pre-wide-slot deployment.
  LoopbackHub hub;
  auto fc = fleet_slice(0, 64);
  ASSERT_EQ(fc.max_version, kWireV2);  // fleets advertise v2 by default
  auto r = run_session(hub, base_daemon(64), {fc});
  EXPECT_EQ(r.daemon.wire_version, 1u);
  EXPECT_EQ(r.fleets[0].wire_version, 1u);
  EXPECT_EQ(r.daemon.recovered, 64u);
  EXPECT_TRUE(r.fleets[0].finished);
}

TEST(WireLoopback, NegotiationForcedV2OnSmallGroup) {
  // Forcing v2 runs the whole stack wide — 16-byte ENC headers, u32 slot
  // maps, v2 reports — on a group small enough to verify cheaply.
  LoopbackHub hub;
  DaemonConfig dc = base_daemon(64);
  dc.wire_version = kWireV2;
  dc.batches = 2;
  auto r = run_session(hub, dc, {fleet_slice(0, 64)});
  EXPECT_EQ(r.daemon.wire_version, 2u);
  EXPECT_EQ(r.fleets[0].wire_version, 2u);
  EXPECT_EQ(r.daemon.recovered, 128u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_TRUE(r.fleets[0].finished);
  EXPECT_EQ(r.fleets[0].unrecovered, 0u);
}

TEST(WireLoopback, NegotiationRefusesLegacyClientOnWideSession) {
  // A v1-only client subscribing to a session that requires wide slots
  // gets no SubAck: it must time out cleanly, not mis-parse v2 frames.
  LoopbackHub hub;
  auto daemon_wire = hub.attach();
  DaemonConfig dc = base_daemon(32);
  dc.wire_version = kWireV2;
  KeyServerDaemon daemon(*daemon_wire, dc);
  DaemonStats ds;
  std::thread daemon_thread([&] { ds = daemon.run(); });
  auto fc = fleet_slice(0, 32);
  fc.max_version = kWireV1;  // legacy client
  fc.idle_timeout_ms = 500;
  auto fleet_wire = hub.attach();
  ClientFleet fleet(*fleet_wire, daemon_wire->endpoint(), fc);
  const FleetStats fs = fleet.run();
  daemon.request_stop();
  daemon_thread.join();
  EXPECT_FALSE(fs.finished);
  EXPECT_EQ(fs.recovered, 0u);
  EXPECT_EQ(ds.endpoints, 0u);
  EXPECT_GE(ds.endpoints_incompatible, 1u);
}

TEST(WireLoopback, WideSlotUnicastServesStragglers) {
  // The unicast USR path in a forced-wide session: 9-byte wide USR
  // headers, v2 fragmentation, and wide reassembly under heavy loss.
  LoopbackHub hub(150);
  DaemonConfig dc = base_daemon(48);
  dc.wire_version = kWireV2;
  dc.max_multicast_rounds = 1;
  dc.protocol.packet_size = 120;
  auto fc = fleet_slice(0, 48);
  fc.shaping.down_loss = 0.5;
  fc.shaping.seed = 7;
  auto r = run_session(hub, dc, {fc});
  EXPECT_EQ(r.daemon.wire_version, 2u);
  EXPECT_EQ(r.daemon.recovered, 48u);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_GT(r.daemon.via_usr, 0u);
  EXPECT_GT(r.daemon.usr_frags, r.daemon.via_usr);
  EXPECT_TRUE(r.fleets[0].finished);
  EXPECT_EQ(r.fleets[0].unrecovered, 0u);
}

TEST(WireLoopback, WideSlotGroupAllClientsRecover) {
  // The tentpole acceptance test: a single wire group of N = 2^17
  // clients — slot ids far past the old u16 ceiling — auto-negotiates
  // v2, runs the sharded batch pipeline, and every client recovers.
  constexpr std::uint32_t kClients = 1u << 17;
  LoopbackHub hub;
  DaemonConfig dc = base_daemon(kClients);
  dc.shards = 16;
  dc.worker_threads = 4;
  dc.round_wait_ms = 60000;
  std::vector<FleetConfig> fleets;
  for (std::uint32_t i = 0; i < 8; ++i) {
    auto fc = fleet_slice(i * (kClients / 8), kClients / 8);
    fc.idle_timeout_ms = 60000;
    fleets.push_back(fc);
  }
  auto r = run_session(hub, dc, fleets);
  EXPECT_EQ(r.daemon.wire_version, 2u);
  EXPECT_EQ(r.daemon.endpoints, 8u);
  EXPECT_EQ(r.daemon.batches_run, 1u);
  EXPECT_EQ(r.daemon.recovered, kClients);
  EXPECT_EQ(r.daemon.gave_up, 0u);
  EXPECT_EQ(r.daemon.endpoints_dropped, 0u);
  std::uint64_t recovered = 0;
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.wire_version, 2u);
    EXPECT_EQ(fs.unrecovered, 0u);
    recovered += fs.recovered;
  }
  EXPECT_EQ(recovered, kClients);
}

TEST(WireLoopback, EndpointDeathMidUnicastLandsInDeadLedger) {
  // An endpoint that goes silent during the unicast phase: the daemon
  // must declare it dead after endpoint_dead_after missed wave
  // deadlines, stop serving its stragglers, and account its clients in
  // gave_up_dead — never hang the lockstep, never count them recovered.
  LoopbackHub hub;
  DaemonConfig dc = base_daemon(64);
  dc.max_multicast_rounds = 1;  // force the unicast phase for stragglers
  dc.protocol.packet_size = 120;
  dc.round_wait_ms = 600;  // 3 missed wave deadlines resolve quickly
  auto live = fleet_slice(0, 48);
  auto dying = fleet_slice(48, 16);
  dying.shaping.down_loss = 0.6;  // guarantees unicast stragglers
  dying.shaping.seed = 77;
  dying.die_at_wave = 0;  // silent from the first unicast wave on
  auto r = run_session(hub, dc, {live, dying});

  EXPECT_EQ(r.daemon.batches_run, 1u);
  EXPECT_GT(r.daemon.unicast_waves, 0u);
  EXPECT_EQ(r.daemon.endpoints_dropped, 1u);
  EXPECT_EQ(r.daemon.gave_up_dead, 16u);
  EXPECT_EQ(r.daemon.gave_up, 0u);  // nobody live was abandoned
  // The byte ledger: every client-batch the daemon ran to completion is
  // either recovered (DoneAck'ed), given up live, or given up dead.
  EXPECT_EQ(r.daemon.recovered + r.daemon.gave_up + r.daemon.gave_up_dead,
            64u * r.daemon.batches_run);
  EXPECT_TRUE(r.fleets[0].finished);
  EXPECT_EQ(r.fleets[0].recovered, 48u);
  EXPECT_FALSE(r.fleets[1].finished);  // died mid-wave, never saw Fin
}

TEST(WireLoopback, EndpointDeathAtBatchBoundaryKeepsLaterBatchesMoving) {
  // Death between batches: the endpoint never reports in the next batch,
  // eats three round deadlines, and is dropped; the remaining fleet
  // finishes every batch. Its clients land in gave_up_dead once per
  // remaining batch.
  LoopbackHub hub;
  DaemonConfig dc = base_daemon(64);
  dc.batches = 3;
  dc.round_wait_ms = 600;
  auto live = fleet_slice(0, 48);
  auto dying = fleet_slice(48, 16);
  dying.die_at_batch = 1;  // finalizes batch 0, silent from batch 1 on
  auto r = run_session(hub, dc, {live, dying});

  EXPECT_EQ(r.daemon.batches_run, 3u);
  EXPECT_EQ(r.daemon.endpoints_dropped, 1u);
  // Batch 0 counted all 64; batches 1 and 2 count the dead 16 each.
  EXPECT_EQ(r.daemon.gave_up_dead, 32u);
  EXPECT_EQ(r.daemon.recovered + r.daemon.gave_up + r.daemon.gave_up_dead,
            64u * 3u);
  EXPECT_TRUE(r.fleets[0].finished);
  EXPECT_EQ(r.fleets[0].recovered, 48u * 3u);
  EXPECT_FALSE(r.fleets[1].finished);
  EXPECT_EQ(r.fleets[1].recovered, 16u);  // batch 0 only
}

TEST(WireLoopback, ManyEndpointsPartitionTheFleet) {
  LoopbackHub hub;
  std::vector<FleetConfig> fleets;
  for (std::uint32_t i = 0; i < 8; ++i) fleets.push_back(fleet_slice(i * 16, 16));
  DaemonConfig dc = base_daemon(128);
  dc.batches = 2;
  auto r = run_session(hub, dc, fleets);
  EXPECT_EQ(r.daemon.endpoints, 8u);
  EXPECT_EQ(r.daemon.recovered, 256u);
  for (const FleetStats& fs : r.fleets) {
    EXPECT_TRUE(fs.finished);
    EXPECT_EQ(fs.unrecovered, 0u);
  }
}

}  // namespace
}  // namespace rekey::wire
