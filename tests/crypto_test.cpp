// Crypto substrate tests: SHA-256 against FIPS vectors, HMAC-SHA256
// against RFC 4231 vectors, ChaCha20 against the RFC 8439 test vector,
// and the key-encryption primitive's roundtrip / tamper properties.
#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "common/ensure.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/sha256.h"

namespace rekey::crypto {
namespace {

Bytes from_ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string digest_hex(const Sha256::Digest& d) {
  return rekey::to_hex(std::span(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(Sha256::hash(from_ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha256::hash(from_ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = from_ascii("the quick brown fox jumps over the lazy dog");
  Sha256 h;
  for (const std::uint8_t b : msg) h.update({&b, 1});
  EXPECT_EQ(h.finish(), Sha256::hash(msg));
}

TEST(Sha256, ExactBlockBoundary) {
  const Bytes msg(64, 0x5A);
  Sha256 a;
  a.update(msg);
  Sha256 b;
  b.update(std::span(msg).subspan(0, 32));
  b.update(std::span(msg).subspan(32));
  EXPECT_EQ(a.finish(), b.finish());
}

TEST(Sha256, FinishTwiceThrows) {
  Sha256 h;
  h.finish();
  EXPECT_THROW(h.finish(), EnsureError);
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, from_ascii("Hi There"));
  EXPECT_EQ(digest_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  const auto mac = hmac_sha256(from_ascii("Jefe"),
                               from_ascii("what do ya want for nothing?"));
  EXPECT_EQ(digest_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key larger than one block.
TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(digest_hex(hmac_sha256(
                key, from_ascii("Test Using Larger Than Block-Size Key - "
                                "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, TagsEqualConstantTime) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 3};
  const Bytes c{1, 2, 4};
  EXPECT_TRUE(tags_equal(a, b));
  EXPECT_FALSE(tags_equal(a, c));
  EXPECT_FALSE(tags_equal(a, Bytes{1, 2}));
}

// RFC 8439 §2.3.2: keystream block test vector.
TEST(ChaCha20, Rfc8439BlockFunction) {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  ChaCha20 c(key, nonce);
  const auto block = c.keystream_block(1);
  EXPECT_EQ(rekey::to_hex(std::span(block.data(), 16)),
            "10f1e7e4d13b5915500fdd1fa32071c4");
  EXPECT_EQ(rekey::to_hex(std::span(block.data() + 48, 16)),
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2: full encryption test vector (first 16 bytes checked).
TEST(ChaCha20, Rfc8439Encryption) {
  std::array<std::uint8_t, 32> key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  std::array<std::uint8_t, 12> nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                                        0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  Bytes plain = from_ascii(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  ChaCha20 c(key, nonce, /*initial_counter=*/1);
  c.apply(plain);
  EXPECT_EQ(rekey::to_hex(std::span(plain.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, ApplyTwiceRestoresPlaintext) {
  std::array<std::uint8_t, 32> key{};
  key[0] = 7;
  std::array<std::uint8_t, 12> nonce{};
  Bytes data = from_ascii("stream ciphers are involutions under same state");
  const Bytes orig = data;
  ChaCha20 enc(key, nonce);
  enc.apply(data);
  EXPECT_NE(data, orig);
  ChaCha20 dec(key, nonce);
  dec.apply(data);
  EXPECT_EQ(data, orig);
}

TEST(ChaCha20, StreamingMatchesBulk) {
  std::array<std::uint8_t, 32> key{};
  key[5] = 99;
  std::array<std::uint8_t, 12> nonce{};
  nonce[11] = 3;
  Bytes bulk(200, 0xAA);
  Bytes stream = bulk;
  ChaCha20 a(key, nonce);
  a.apply(bulk);
  ChaCha20 b(key, nonce);
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, stream.size() - i);
    b.apply(std::span(stream).subspan(i, n));
  }
  EXPECT_EQ(bulk, stream);
}

TEST(KeyGenerator, DeterministicAndDistinct) {
  KeyGenerator a(123), b(123), c(124);
  const SymmetricKey k1 = a.next();
  EXPECT_EQ(k1, b.next());
  EXPECT_NE(k1, c.next());
  EXPECT_NE(a.next(), k1);  // sequence advances
}

TEST(KeyEncryption, Roundtrip) {
  KeyGenerator gen(1);
  const SymmetricKey kek = gen.next();
  const SymmetricKey plain = gen.next();
  const EncryptedKey e = encrypt_key(kek, plain, /*msg_id=*/5, /*enc_id=*/42);
  const auto back = decrypt_key(kek, e, 5, 42);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plain);
}

TEST(KeyEncryption, WrongKeyRejected) {
  KeyGenerator gen(2);
  const SymmetricKey kek = gen.next();
  const SymmetricKey other = gen.next();
  const SymmetricKey plain = gen.next();
  const EncryptedKey e = encrypt_key(kek, plain, 1, 2);
  EXPECT_FALSE(decrypt_key(other, e, 1, 2).has_value());
}

TEST(KeyEncryption, WrongIdsRejected) {
  KeyGenerator gen(3);
  const SymmetricKey kek = gen.next();
  const SymmetricKey plain = gen.next();
  const EncryptedKey e = encrypt_key(kek, plain, 1, 2);
  EXPECT_FALSE(decrypt_key(kek, e, 1, 3).has_value());
  EXPECT_FALSE(decrypt_key(kek, e, 2, 2).has_value());
}

TEST(KeyEncryption, TamperedCiphertextRejected) {
  KeyGenerator gen(4);
  const SymmetricKey kek = gen.next();
  const SymmetricKey plain = gen.next();
  EncryptedKey e = encrypt_key(kek, plain, 1, 2);
  e.ciphertext[0] ^= 0x01;
  EXPECT_FALSE(decrypt_key(kek, e, 1, 2).has_value());
}

TEST(KeyEncryption, DistinctNoncesAcrossMessages) {
  // Same kek and plaintext, different msg ids -> different ciphertexts.
  KeyGenerator gen(5);
  const SymmetricKey kek = gen.next();
  const SymmetricKey plain = gen.next();
  const EncryptedKey a = encrypt_key(kek, plain, 1, 7);
  const EncryptedKey b = encrypt_key(kek, plain, 2, 7);
  EXPECT_NE(a.ciphertext, b.ciphertext);
}

TEST(MessageAuthenticator, DetectsModification) {
  KeyGenerator gen(6);
  const SymmetricKey auth = gen.next();
  Bytes msg = from_ascii("rekey message body");
  const auto tag1 = message_authenticator(auth, msg);
  msg[0] ^= 1;
  const auto tag2 = message_authenticator(auth, msg);
  EXPECT_NE(tag1, tag2);
}

}  // namespace
}  // namespace rekey::crypto
