// The JSON value type underpinning the observability layer: insertion
// order, int/double distinction, round-trip stability, strict parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "common/json.h"

namespace rekey {
namespace {

TEST(Json, ObjectPreservesInsertionOrder) {
  Json o = Json::object();
  o.set("zebra", 1);
  o.set("apple", 2);
  o.set("mango", 3);
  EXPECT_EQ(o.dump(), R"({"zebra":1,"apple":2,"mango":3})");

  // set() on an existing key replaces the value in place, keeping order.
  o.set("apple", 9);
  EXPECT_EQ(o.dump(), R"({"zebra":1,"apple":9,"mango":3})");
}

TEST(Json, IntAndDoubleStayDistinct) {
  Json i(42);
  Json d(42.0);
  EXPECT_TRUE(i.is_int());
  EXPECT_FALSE(i.is_double());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(i.is_number());
  EXPECT_TRUE(d.is_number());
  EXPECT_EQ(i.dump(), "42");
  // Integer-valued doubles still serialize as doubles, so the type
  // survives a dump/parse round trip.
  EXPECT_EQ(d.dump(), "42.0");
  auto rt = Json::parse(d.dump());
  ASSERT_TRUE(rt.has_value());
  EXPECT_TRUE(rt->is_double());
  EXPECT_DOUBLE_EQ(d.as_double(), 42.0);
  EXPECT_DOUBLE_EQ(i.as_double(), 42.0);  // as_double accepts either

  // The parser keeps the distinction: no decimal point/exponent -> int.
  auto pi = Json::parse("42");
  auto pd = Json::parse("42.0");
  ASSERT_TRUE(pi && pd);
  EXPECT_TRUE(pi->is_int());
  EXPECT_TRUE(pd->is_double());
}

TEST(Json, DumpParseRoundTripIsFixedPoint) {
  Json doc(Json::Object{
      {"name", "F17"},
      {"smoke", true},
      {"nothing", nullptr},
      {"count", std::int64_t{1} << 53},
      {"mean", 1.0449},
      {"tiny", 1e-300},
      {"rows", Json(Json::Array{Json(Json::Array{1, 2.5, "x"}),
                                Json(Json::Array{-7, 0.1, ""})})},
  });
  for (int indent : {-1, 0, 1, 2}) {
    const std::string once = doc.dump(indent);
    auto parsed = Json::parse(once);
    ASSERT_TRUE(parsed.has_value()) << once;
    EXPECT_EQ(*parsed, doc);
    EXPECT_EQ(parsed->dump(indent), once);
  }
}

TEST(Json, ShortestDoubleFormatting) {
  // std::to_chars shortest form: these must re-parse to the same bits.
  for (double v : {0.1, 1.0 / 3.0, 6.02e23, -0.0, 5e-324,
                   std::numeric_limits<double>::max()}) {
    const std::string s = Json(v).dump();
    auto parsed = Json::parse(s);
    ASSERT_TRUE(parsed.has_value()) << s;
    EXPECT_EQ(parsed->as_double(), v) << s;
  }
}

TEST(Json, StringEscaping) {
  Json s(std::string("a\"b\\c\n\t\x01z"));
  const std::string dumped = s.dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
  auto parsed = Json::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, s);

  // json_escape_to emits a complete quoted JSON string token.
  std::ostringstream os;
  json_escape_to(os, "x\"\\\n");
  EXPECT_EQ(os.str(), "\"x\\\"\\\\\\n\"");
}

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(Json::parse(""));
  EXPECT_FALSE(Json::parse("{"));
  EXPECT_FALSE(Json::parse("[1,2,]"));
  EXPECT_FALSE(Json::parse("{\"a\":1,}"));
  EXPECT_FALSE(Json::parse("tru"));
  EXPECT_FALSE(Json::parse("nan"));
  EXPECT_FALSE(Json::parse("'single'"));
  EXPECT_FALSE(Json::parse("{\"a\" 1}"));
  // Trailing garbage after a valid document is an error, not ignored.
  EXPECT_FALSE(Json::parse("1 2"));
  EXPECT_FALSE(Json::parse("{\"a\":1} x"));
  // Whitespace padding is fine.
  EXPECT_TRUE(Json::parse("  {\"a\": [1, 2]}\n"));
}

TEST(Json, ObjectAccessors) {
  Json o(Json::Object{{"a", 1}, {"b", "two"}});
  EXPECT_TRUE(o.contains("a"));
  EXPECT_FALSE(o.contains("c"));
  ASSERT_NE(o.find("b"), nullptr);
  EXPECT_EQ(o.find("b")->as_string(), "two");
  EXPECT_EQ(o.find("c"), nullptr);
  EXPECT_EQ(o.at("a").as_int(), 1);
  EXPECT_THROW(o.at("missing"), std::logic_error);
  EXPECT_EQ(o.size(), 2u);

  // push_back returns a reference to the appended element.
  Json a = Json::array();
  Json& first = a.push_back(1);
  EXPECT_EQ(first.as_int(), 1);
  a.push_back("x");
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.as_array()[1].as_string(), "x");
}

TEST(Json, ParsesNestedBenchLikeDocument) {
  const char* text = R"json({
    "schema_version": 1,
    "figure": "F8",
    "smoke": true,
    "sections": [
      {"id": "F8 (left)", "columns": ["k", "alpha=0"],
       "rows": [[1, 1.5], [10, 1.25]]}
    ],
    "seeds": ["0x0000000000000f08"],
    "notes": []
  })json";
  auto doc = Json::parse(text);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->at("schema_version").as_int(), 1);
  EXPECT_EQ(doc->at("figure").as_string(), "F8");
  const auto& rows = doc->at("sections").as_array()[0].at("rows").as_array();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].as_array()[0].is_int());
  EXPECT_TRUE(rows[0].as_array()[1].is_double());
}

}  // namespace
}  // namespace rekey
