// Sharded key-tree tests: the ShardPlan ownership arithmetic, the
// deterministic merge and its partition checks, task-completion-order
// independence (via TaskRunner's adversarial permutation hook), sharded
// snapshot round-trips (mid-epoch, counter-exact, across the dense/
// overflow arena boundary), and the corrupted-shard-boundary regression.
// The sharded-vs-serial pipeline equivalence itself lives in
// keytree_differential_test.cpp.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/ensure.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "crypto/sha256.h"
#include "keytree/ids.h"
#include "keytree/keytree.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "keytree/shard.h"
#include "keytree/shard_pipeline.h"
#include "keytree/snapshot.h"
#include "packet/assign.h"

namespace rekey::tree {
namespace {

// ---------------------------------------------------------------------------
// ShardPlan arithmetic
// ---------------------------------------------------------------------------

TEST(ShardPlan, SingleShardOwnsEverything) {
  const ShardPlan p = ShardPlan::make(4, 1);
  EXPECT_EQ(p.cut_level, 0u);
  EXPECT_EQ(p.first_cut_id, 0u);
  EXPECT_EQ(p.cut_roots, 1u);
  EXPECT_EQ(p.shard_of(kRootId), 0u);
  EXPECT_EQ(p.shard_of(123456), 0u);
  EXPECT_EQ(p.task_count(), 2u);
}

TEST(ShardPlan, CutLevelIsSmallestCovering) {
  EXPECT_EQ(ShardPlan::make(4, 2).cut_level, 1u);
  EXPECT_EQ(ShardPlan::make(4, 4).cut_level, 1u);
  EXPECT_EQ(ShardPlan::make(4, 8).cut_level, 2u);
  EXPECT_EQ(ShardPlan::make(4, 16).cut_level, 2u);
  EXPECT_EQ(ShardPlan::make(4, 32).cut_level, 3u);
  EXPECT_EQ(ShardPlan::make(2, 8).cut_level, 3u);
  EXPECT_EQ(ShardPlan::make(8, 64).cut_level, 2u);
  EXPECT_EQ(ShardPlan::make(8, 256).cut_level, 3u);
  // Each shard owns at least one cut subtree.
  for (const unsigned d : {2u, 4u, 8u})
    for (unsigned s = 1; s <= 256; s *= 2)
      EXPECT_GE(ShardPlan::make(d, s).cut_roots, s) << d << "/" << s;
}

TEST(ShardPlan, AggregatorAboveCutContiguousBlocksBelow) {
  // degree 4, 4 shards: cut at level 1, roots 1..4 map one-to-one.
  const ShardPlan p4 = ShardPlan::make(4, 4);
  EXPECT_EQ(p4.first_cut_id, 1u);
  EXPECT_EQ(p4.shard_of(kRootId), ShardPlan::kAggregator);
  for (unsigned r = 0; r < 4; ++r) EXPECT_EQ(p4.shard_of(1 + r), r);

  // degree 4, 2 shards: 4 cut roots split into two contiguous blocks.
  const ShardPlan p2 = ShardPlan::make(4, 2);
  EXPECT_EQ(p2.shard_of(1), 0u);
  EXPECT_EQ(p2.shard_of(2), 0u);
  EXPECT_EQ(p2.shard_of(3), 1u);
  EXPECT_EQ(p2.shard_of(4), 1u);

  // degree 4, 8 shards: cut at level 2 (16 roots), ids 1..4 are
  // aggregator-owned along with the root.
  const ShardPlan p8 = ShardPlan::make(4, 8);
  EXPECT_EQ(p8.cut_level, 2u);
  for (NodeId id = 0; id < p8.first_cut_id; ++id)
    EXPECT_EQ(p8.shard_of(id), ShardPlan::kAggregator) << "id " << id;
  // Block ownership over the cut roots is monotone non-decreasing and
  // covers every shard.
  unsigned prev = 0;
  std::vector<bool> seen(8, false);
  for (std::uint64_t r = 0; r < p8.cut_roots; ++r) {
    const unsigned s = p8.shard_of(p8.first_cut_id + r);
    ASSERT_LT(s, 8u);
    EXPECT_GE(s, prev);
    prev = s;
    seen[s] = true;
  }
  for (unsigned s = 0; s < 8; ++s) EXPECT_TRUE(seen[s]) << "shard " << s;
}

TEST(ShardPlan, DescendantsInheritTheCutAncestorsShard) {
  for (const unsigned d : {2u, 4u, 8u}) {
    const ShardPlan p = ShardPlan::make(d, 8);
    Rng rng(0x5A11 + d);
    for (int i = 0; i < 2000; ++i) {
      const NodeId id = rng.next_in(p.first_cut_id, 4'000'000);
      NodeId a = id;
      while (level_of(a, d) > p.cut_level) a = parent_of(a, d);
      EXPECT_EQ(p.shard_of(id), p.shard_of(a)) << "id " << id;
      // Children stay with their parent's shard below the cut.
      EXPECT_EQ(p.shard_of(child_of(id, 0, d)), p.shard_of(id));
    }
  }
}

TEST(ShardPlan, RejectsBadParameters) {
  EXPECT_THROW(ShardPlan::make(4, 0), EnsureError);
  EXPECT_THROW(ShardPlan::make(4, 3), EnsureError);
  EXPECT_THROW(ShardPlan::make(4, 6), EnsureError);
  EXPECT_THROW(ShardPlan::make(4, 512), EnsureError);
  EXPECT_THROW(ShardPlan::make(1, 2), EnsureError);
}

// ---------------------------------------------------------------------------
// Deterministic merge and partition checks
// ---------------------------------------------------------------------------

TEST(MergeDisjointSorted, MatchesGlobalSortAcrossPartitions) {
  Rng rng(0x4E12);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.next_in(0, 500));
    std::vector<NodeId> all;
    NodeId next = 0;
    for (std::size_t i = 0; i < n; ++i)
      all.push_back(next += 1 + rng.next_in(0, 9));
    const std::size_t parts_n = 1 + static_cast<std::size_t>(rng.next_in(0, 8));
    std::vector<std::vector<NodeId>> parts(parts_n);
    for (const NodeId id : all)
      parts[static_cast<std::size_t>(rng.next_in(0, parts_n - 1))]
          .push_back(id);
    EXPECT_EQ(merge_disjoint_sorted(std::move(parts)), all) << trial;
  }
  EXPECT_TRUE(merge_disjoint_sorted({}).empty());
  EXPECT_TRUE(merge_disjoint_sorted({{}, {}, {}}).empty());
  EXPECT_EQ(merge_disjoint_sorted({{7, 9}}), (std::vector<NodeId>{7, 9}));
}

TEST(CheckShardPartition, AcceptsAValidPartition) {
  const ShardPlan p = ShardPlan::make(4, 4);
  std::vector<std::vector<NodeId>> sets(4);
  for (unsigned s = 0; s < 4; ++s) {
    const NodeId root = 1 + s;
    sets[s] = {root, child_of(root, 0, 4), child_of(root, 3, 4)};
    std::sort(sets[s].begin(), sets[s].end());
  }
  const std::vector<NodeId> agg = {kRootId};
  EXPECT_NO_THROW(check_shard_partition(p, sets, agg));
}

TEST(CheckShardPartition, RejectsCrossShardLeakage) {
  const ShardPlan p = ShardPlan::make(4, 4);
  std::vector<std::vector<NodeId>> sets(4);
  sets[0] = {2};  // cut root 2 belongs to shard 1
  EXPECT_THROW(check_shard_partition(p, sets, {}), EnsureError);
}

TEST(CheckShardPartition, RejectsBelowCutIdInAggregator) {
  const ShardPlan p = ShardPlan::make(4, 4);
  const std::vector<std::vector<NodeId>> sets(4);
  // Aggregator may only hold ids strictly above the cut (id < 1 here).
  EXPECT_THROW(check_shard_partition(p, sets, {1}), EnsureError);
}

TEST(CheckShardPartition, RejectsUnsortedOrDuplicateSets) {
  const ShardPlan p = ShardPlan::make(4, 4);
  std::vector<std::vector<NodeId>> sets(4);
  sets[1] = {child_of(2, 1, 4), 2};  // both shard 1, but out of order
  EXPECT_THROW(check_shard_partition(p, sets, {}), EnsureError);
  sets[1] = {2, 2};
  EXPECT_THROW(check_shard_partition(p, sets, {}), EnsureError);
  sets[1].clear();
  EXPECT_THROW(check_shard_partition(p, sets, {kRootId, kRootId}),
               EnsureError);
  // Wrong number of shard sets.
  const std::vector<std::vector<NodeId>> three(3);
  EXPECT_THROW(check_shard_partition(p, three, {}), EnsureError);
}

TEST(CheckEncIdDisjointness, PassesRealPayloadsAndCatchesDuplicates) {
  Rng rng(0xE4C);
  KeyTree t(4, rng.next_u64());
  t.populate(256);
  std::vector<MemberId> leaves;
  for (const auto pick : rng.sample_without_replacement(256, 48))
    leaves.push_back(static_cast<MemberId>(pick));
  Marker m(t);
  const BatchUpdate upd = m.run({}, leaves);
  RekeyPayload payload;
  generate_rekey_payload_into(t, upd, 1, payload);
  const ShardPlan plan = ShardPlan::make(4, 8);
  ASSERT_FALSE(payload.encryptions.empty());
  EXPECT_NO_THROW(check_enc_id_disjointness(payload, plan));

  // Two encryptions under one id would collide on the wire (the (msg_id,
  // enc_id) nonce and the per-user entry lookup both assume uniqueness).
  payload.encryptions.back().enc_id = payload.encryptions.front().enc_id;
  EXPECT_THROW(check_enc_id_disjointness(payload, plan), EnsureError);
}

// ---------------------------------------------------------------------------
// Task-completion-order independence. TaskRunner's permutation hook runs
// the per-shard tasks inline in a seeded adversarial shuffle; because the
// merge is deterministic and every task owns its output slots, every
// completion order must yield byte-identical payloads and packet flushes.
// ---------------------------------------------------------------------------

struct BatchArtifacts {
  std::map<NodeId, Node> nodes;
  std::uint64_t counter = 0;
  std::vector<Bytes> packet_wires;  // serialized ENC packets, flush order
  std::vector<Encryption> encryptions;
};

// Replays a fixed churn script through the sharded pipeline under
// `runner`, recording every batch's tree bytes, draw counter, encryption
// sequence, and serialized packet flush.
std::vector<BatchArtifacts> replay_sharded(const ShardPlan& plan,
                                           rekey::TaskRunner& runner,
                                           std::uint64_t seed) {
  Rng rng(seed);
  KeyTree t(plan.degree, seed);
  Marker marker(t);
  MemberId next_member = 0;
  std::vector<MemberId> population;
  std::vector<BatchArtifacts> out;
  RekeyPayload payload;

  for (int batch = 0; batch < 12; ++batch) {
    std::vector<MemberId> joins, leaves;
    if (batch == 0) {
      for (int i = 0; i < 200; ++i) joins.push_back(next_member++);
    } else {
      const std::size_t n = population.size();
      const std::size_t L =
          static_cast<std::size_t>(rng.next_in(0, n / 3));
      const std::size_t J = static_cast<std::size_t>(rng.next_in(0, 60));
      for (const auto pick : rng.sample_without_replacement(n, L))
        leaves.push_back(population[pick]);
      for (std::size_t i = 0; i < J; ++i) joins.push_back(next_member++);
    }

    ShardBatchStats stats;  // non-null => check_shard_partition runs too
    const BatchUpdate upd =
        marker.run_sharded(joins, leaves, plan, runner, &stats);
    generate_rekey_payload_sharded(t, upd, batch + 1, payload, plan, runner);
    const packet::Assignment asn =
        packet::assign_keys(payload, 1027, plan, runner);

    BatchArtifacts a;
    a.nodes = t.nodes();
    a.counter = t.key_generator().counter();
    a.encryptions = payload.encryptions;
    for (const packet::EncPacket& pkt : asn.packets)
      a.packet_wires.push_back(pkt.serialize(1027));
    out.push_back(std::move(a));

    std::set<MemberId> gone(leaves.begin(), leaves.end());
    std::vector<MemberId> next;
    for (const MemberId m : population)
      if (!gone.count(m)) next.push_back(m);
    next.insert(next.end(), joins.begin(), joins.end());
    population = std::move(next);
  }
  return out;
}

void expect_artifacts_equal(const std::vector<BatchArtifacts>& a,
                            const std::vector<BatchArtifacts>& b,
                            std::uint64_t pseed) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].counter, b[i].counter)
        << "draw counter, batch " << i << ", permutation seed " << pseed;
    ASSERT_EQ(a[i].nodes.size(), b[i].nodes.size())
        << "batch " << i << ", permutation seed " << pseed;
    auto ib = b[i].nodes.begin();
    for (const auto& [id, n] : a[i].nodes) {
      ASSERT_EQ(id, ib->first) << "batch " << i << ", seed " << pseed;
      ASSERT_EQ(n.kind, ib->second.kind) << "node " << id;
      ASSERT_EQ(n.key, ib->second.key)
          << "key of node " << id << ", batch " << i << ", seed " << pseed;
      ++ib;
    }
    ASSERT_EQ(a[i].encryptions.size(), b[i].encryptions.size())
        << "batch " << i << ", seed " << pseed;
    for (std::size_t e = 0; e < a[i].encryptions.size(); ++e) {
      ASSERT_EQ(a[i].encryptions[e].enc_id, b[i].encryptions[e].enc_id)
          << "batch " << i << ", position " << e << ", seed " << pseed;
      ASSERT_EQ(a[i].encryptions[e].payload, b[i].encryptions[e].payload)
          << "batch " << i << ", position " << e << ", seed " << pseed;
    }
    ASSERT_EQ(a[i].packet_wires, b[i].packet_wires)
        << "packet flush bytes, batch " << i << ", permutation seed "
        << pseed;
  }
}

TEST(ShardedPermutation, AdversarialTaskOrderIsByteIdentical) {
  const ShardPlan plan = ShardPlan::make(4, 8);
  rekey::TaskRunner inline_runner(nullptr);
  const auto reference = replay_sharded(plan, inline_runner, 0x9E41);

  for (const std::uint64_t pseed : {1ull, 2ull, 0xDEADull, 0xBEEFull}) {
    rekey::TaskRunner permuted(nullptr);
    permuted.set_permutation_seed(pseed);
    const auto got = replay_sharded(plan, permuted, 0x9E41);
    expect_artifacts_equal(reference, got, pseed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ShardedPermutation, OrderIndependenceAcrossShardCounts) {
  for (const unsigned shards : {2u, 4u}) {
    const ShardPlan plan = ShardPlan::make(4, shards);
    rekey::TaskRunner inline_runner(nullptr);
    const auto reference = replay_sharded(plan, inline_runner, 0x9E42);
    rekey::TaskRunner permuted(nullptr);
    permuted.set_permutation_seed(0xA5A5);
    expect_artifacts_equal(reference, replay_sharded(plan, permuted, 0x9E42),
                           0xA5A5);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Parallel UKA against the serial scan, beyond the differential's shapes.
// ---------------------------------------------------------------------------

TEST(ShardedAssign, MatchesSerialAcrossPacketSizes) {
  Rng rng(0xA551);
  KeyTree t(4, rng.next_u64());
  t.populate(1024);
  std::vector<MemberId> leaves;
  for (const auto pick : rng.sample_without_replacement(1024, 256))
    leaves.push_back(static_cast<MemberId>(pick));
  std::vector<MemberId> joins;
  for (int j = 0; j < 64; ++j) joins.push_back(1024 + j);
  Marker m(t);
  const BatchUpdate upd = m.run(joins, leaves);
  RekeyPayload payload;
  generate_rekey_payload_into(t, upd, 3, payload);

  const ShardPlan plan = ShardPlan::make(4, 8);
  rekey::ThreadPool pool(8);
  rekey::TaskRunner runner(&pool);
  for (const std::size_t size : {200u, 500u, 1027u}) {
    const packet::Assignment serial = packet::assign_keys(payload, size);
    const packet::Assignment sharded =
        packet::assign_keys(payload, size, plan, runner);
    ASSERT_EQ(serial.packets.size(), sharded.packets.size()) << size;
    for (std::size_t p = 0; p < serial.packets.size(); ++p)
      ASSERT_EQ(serial.packets[p].serialize(size),
                sharded.packets[p].serialize(size))
          << "packet " << p << " at size " << size;
    EXPECT_EQ(serial.total_entries, sharded.total_entries);
    EXPECT_EQ(serial.unique_encryptions, sharded.unique_encryptions);
  }

  // Empty payload through the sharded path.
  RekeyPayload empty;
  EXPECT_TRUE(packet::assign_keys(empty, 1027, plan, runner).packets.empty());
}

// ---------------------------------------------------------------------------
// Sharded snapshots: mid-epoch round-trip, counter-exact resume, the
// dense/overflow arena boundary, and the corrupted-boundary regression.
// ---------------------------------------------------------------------------

// Runs `batches` sharded batches on `t`, returning the last payload's
// encryption bytes (the probe the resume tests compare).
std::vector<Encryption> run_batches(KeyTree& t, const ShardPlan& plan,
                                    rekey::TaskRunner& runner,
                                    MemberId& next_member, int batches,
                                    std::uint32_t first_msg) {
  Marker marker(t);
  RekeyPayload payload;
  for (int b = 0; b < batches; ++b) {
    std::vector<MemberId> joins, leaves;
    if (t.empty()) {
      for (int i = 0; i < 128; ++i) joins.push_back(next_member++);
    } else {
      const std::vector<NodeId> slots = t.user_slots();
      for (std::size_t i = 0; i < slots.size(); i += 7)
        leaves.push_back(t.node(slots[i]).member);
      for (std::size_t i = 0; i < 11; ++i) joins.push_back(next_member++);
    }
    const BatchUpdate upd =
        marker.run_sharded(joins, leaves, plan, runner, nullptr);
    generate_rekey_payload_sharded(t, upd, first_msg + b, payload, plan,
                                   runner);
  }
  return payload.encryptions;
}

TEST(ShardedSnapshot, MidEpochRoundTripResumesTheExactDrawStream) {
  const std::uint64_t seed = 0x54A9;
  const ShardPlan plan = ShardPlan::make(4, 8);
  rekey::TaskRunner runner(nullptr);

  KeyTree t(4, seed);
  MemberId next_member = 0;
  run_batches(t, plan, runner, next_member, 3, 1);
  EXPECT_GT(t.key_generator().counter(), 0u);  // genuinely mid-epoch

  const Bytes blob = snapshot_sharded_tree(t, plan);
  ShardPlan plan_out = ShardPlan::make(2, 1);
  auto restored = restore_sharded_tree(blob, seed, &plan_out);
  ASSERT_TRUE(restored.has_value());
  restored->check_invariants();
  EXPECT_EQ(plan_out.degree, plan.degree);
  EXPECT_EQ(plan_out.shards, plan.shards);
  EXPECT_EQ(plan_out.cut_level, plan.cut_level);
  EXPECT_EQ(restored->key_generator().counter(), t.key_generator().counter());
  {
    const std::map<NodeId, Node> a = t.nodes();
    const std::map<NodeId, Node> b = restored->nodes();
    ASSERT_EQ(a.size(), b.size());
    auto ib = b.begin();
    for (const auto& [id, n] : a) {
      ASSERT_EQ(id, ib->first);
      ASSERT_EQ(n.kind, ib->second.kind) << "node " << id;
      ASSERT_EQ(n.key, ib->second.key) << "node " << id;
      ++ib;
    }
  }

  // The next batch on the restored tree must be bit-identical to the
  // uninterrupted continuation — same members join, same keys drawn.
  MemberId next_restored = next_member;
  const auto cont = run_batches(t, plan, runner, next_member, 2, 10);
  const auto resumed =
      run_batches(*restored, plan, runner, next_restored, 2, 10);
  ASSERT_EQ(cont.size(), resumed.size());
  for (std::size_t i = 0; i < cont.size(); ++i) {
    ASSERT_EQ(cont[i].enc_id, resumed[i].enc_id) << "position " << i;
    ASSERT_EQ(cont[i].payload, resumed[i].payload) << "position " << i;
  }
}

TEST(ShardedSnapshot, SerialPipelineAlsoResumesExactly) {
  // A v2 snapshot restores into the serial pipeline too: the counter is
  // pipeline-agnostic.
  const std::uint64_t seed = 0x54AA;
  const ShardPlan plan = ShardPlan::make(4, 2);
  rekey::TaskRunner runner(nullptr);
  KeyTree t(4, seed);
  MemberId next_member = 0;
  run_batches(t, plan, runner, next_member, 2, 1);

  const Bytes blob = snapshot_sharded_tree(t, plan);
  auto restored = restore_sharded_tree(blob, seed);
  ASSERT_TRUE(restored.has_value());

  std::vector<MemberId> joins{next_member, next_member + 1};
  const MemberId leave = t.node(t.user_slots()[3]).member;
  Marker ma(t), mb(*restored);
  const BatchUpdate ua = ma.run(joins, std::vector<MemberId>{leave});
  const BatchUpdate ub = mb.run(joins, std::vector<MemberId>{leave});
  EXPECT_TRUE(ua.changed_knodes == ub.changed_knodes);
  const RekeyPayload pa = generate_rekey_payload(t, ua, 9);
  const RekeyPayload pb = generate_rekey_payload(*restored, ub, 9);
  ASSERT_EQ(pa.encryptions.size(), pb.encryptions.size());
  for (std::size_t i = 0; i < pa.encryptions.size(); ++i)
    ASSERT_EQ(pa.encryptions[i].payload, pb.encryptions[i].payload)
        << "position " << i;
}

// A tall degree-2 chain (keytree_flat_test technique): ~25 nodes total
// but ids out to 2^21, so each shard's deepest nodes live in the arena's
// overflow map while the top stays dense. The sharded snapshot must
// round-trip across that boundary inside every section.
std::map<NodeId, Node> chain_tree_nodes(unsigned depth) {
  crypto::KeyGenerator gen(7);
  std::map<NodeId, Node> nodes;
  NodeId id = 0;
  for (unsigned lvl = 0; lvl <= depth; ++lvl) {
    Node k;
    k.kind = NodeKind::KNode;
    k.key = gen.next();
    nodes.emplace(id, k);
    if (lvl < depth) id = child_of(id, 0, 2);
  }
  for (unsigned j = 0; j < 2; ++j) {
    Node u;
    u.kind = NodeKind::UNode;
    u.key = gen.next();
    u.member = 100 + j;
    nodes.emplace(child_of(id, j, 2), u);
  }
  return nodes;
}

TEST(ShardedSnapshot, RoundTripAcrossDenseOverflowBoundary) {
  const KeyTree t = KeyTree::from_nodes(2, 11, chain_tree_nodes(20));
  ASSERT_LT(t.dense_capacity(), NodeId{1} << 21);  // deep ids overflow
  const ShardPlan plan = ShardPlan::make(2, 8);
  const Bytes blob = snapshot_sharded_tree(t, plan);
  const auto restored = restore_sharded_tree(blob, 99);
  ASSERT_TRUE(restored.has_value());
  restored->check_invariants();
  const std::map<NodeId, Node> a = t.nodes();
  const std::map<NodeId, Node> b = restored->nodes();
  ASSERT_EQ(a.size(), b.size());
  auto ib = b.begin();
  for (const auto& [id, n] : a) {
    ASSERT_EQ(id, ib->first);
    ASSERT_EQ(n.kind, ib->second.kind) << "node " << id;
    ASSERT_EQ(n.key, ib->second.key) << "node " << id;
    ++ib;
  }
  EXPECT_EQ(restored->slot_of(101), t.slot_of(101));
}

// ---------------------------------------------------------------------------
// Corrupted shard boundaries
// ---------------------------------------------------------------------------

// One serialized node record in a v2 section: id u64, kind u8, member
// u32, key bytes.
constexpr std::size_t kNodeRecordSize = 8 + 1 + 4 + 16;

// Re-files one node record from its owning shard section into the next
// section and re-seals the digest. The result passes every bytewise check
// (magic, version, digest, counts) — only the section-ownership
// validation can catch it.
Bytes forge_wrong_section(const Bytes& blob) {
  const Bytes body(blob.begin(),
                   blob.end() - static_cast<std::ptrdiff_t>(
                                    crypto::Sha256::kDigestSize));
  ByteReader r(body);
  ByteWriter w;
  w.put_u32(r.get_u32());               // magic
  w.put_u8(r.get_u8());                 // version
  w.put_u8(r.get_u8());                 // degree
  const std::uint32_t shards = r.get_u32();
  w.put_u32(shards);
  w.put_u32(r.get_u32());               // cut level
  w.put_u64(r.get_u64());               // counter

  std::vector<std::vector<Bytes>> sections(shards + 1);
  for (std::uint32_t s = 0; s <= shards; ++s) {
    r.get_u32();  // section id (re-derived below)
    const std::uint32_t count = r.get_u32();
    for (std::uint32_t i = 0; i < count; ++i)
      sections[s].push_back(r.get_bytes(kNodeRecordSize));
  }
  // Move the first record of the first non-empty *shard* section into the
  // following section.
  std::size_t donor = 0;
  while (donor < shards && sections[donor].empty()) ++donor;
  REKEY_ENSURE_MSG(donor < shards, "no shard section to corrupt");
  sections[donor + 1].insert(sections[donor + 1].begin(),
                             sections[donor].front());
  sections[donor].erase(sections[donor].begin());

  for (std::uint32_t s = 0; s <= shards; ++s) {
    w.put_u32(s);
    w.put_u32(static_cast<std::uint32_t>(sections[s].size()));
    for (const Bytes& rec : sections[s]) w.put_bytes(rec);
  }
  Bytes out = std::move(w).take();
  const auto digest = crypto::Sha256::hash(out);
  out.insert(out.end(), digest.begin(), digest.end());
  return out;
}

TEST(ShardedSnapshot, CorruptedShardBoundaryIsCaught) {
  KeyTree t(4, 0xC0);
  t.populate(256);
  const ShardPlan plan = ShardPlan::make(4, 4);
  const Bytes blob = snapshot_sharded_tree(t, plan);
  ASSERT_TRUE(restore_sharded_tree(blob, 0xC0).has_value());

  const Bytes forged = forge_wrong_section(blob);
  // Digest is valid by construction; ownership validation must refuse.
  EXPECT_FALSE(restore_sharded_tree(forged, 0xC0).has_value());
}

TEST(ShardedSnapshot, BitCorruptionAndTruncationDetected) {
  KeyTree t(4, 0xC1);
  t.populate(128);
  const ShardPlan plan = ShardPlan::make(4, 8);
  const Bytes blob = snapshot_sharded_tree(t, plan);
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{5}, blob.size() / 2, blob.size() - 1}) {
    Bytes bad = blob;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(restore_sharded_tree(bad, 0xC1).has_value()) << "pos " << pos;
  }
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{16}, blob.size() - 1}) {
    const Bytes cut(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(restore_sharded_tree(cut, 0xC1).has_value()) << "len " << len;
  }
  // A v1 blob is not a v2 blob and vice versa.
  EXPECT_FALSE(restore_sharded_tree(snapshot_tree(t), 0xC1).has_value());
  EXPECT_FALSE(restore_tree(blob, 0xC1).has_value());
}

TEST(CheckShardedTree, AcceptsLiveTreesAndRejectsDegreeMismatch) {
  KeyTree t(4, 3);
  t.populate(200);
  check_sharded_tree(t, ShardPlan::make(4, 8));   // must not throw
  check_sharded_tree(t, ShardPlan::make(4, 1));   // degenerate plan too
  EXPECT_THROW(check_sharded_tree(t, ShardPlan::make(2, 8)), EnsureError);
}

}  // namespace
}  // namespace rekey::tree
