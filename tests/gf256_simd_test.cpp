// Differential tests for the GF(2^8) SIMD region kernels: every compiled
// path must be byte-identical to the scalar per-byte reference (built
// straight from GF256::mul) over randomized sizes, alignment offsets, and
// coefficients — including c=0, c=1, sizes below one vector width, and
// non-multiple-of-32 tails.
#include <gtest/gtest.h>

#include <vector>

#include "common/ensure.h"
#include "common/rng.h"
#include "fec/gf256.h"
#include "fec/gf256_simd.h"

namespace rekey::fec {
namespace {

constexpr SimdPath kAllPaths[] = {SimdPath::kScalar, SimdPath::kSsse3,
                                  SimdPath::kAvx2, SimdPath::kNeon};

// Sizes chosen to straddle the SSE (16B) and AVX2 (32B) vector widths.
constexpr std::size_t kSizes[] = {0,  1,  2,   3,   15,  16,   17,  31,
                                  32, 33, 63,  64,  65,  100,  255, 256,
                                  257, 511, 1023, 1024, 1027, 4099};

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_in(0, 255));
  return v;
}

class SimdPathSweep : public ::testing::TestWithParam<SimdPath> {
 protected:
  void SetUp() override {
    if (!simd_path_supported(GetParam()))
      GTEST_SKIP() << simd_path_name(GetParam())
                   << " not compiled/supported on this host";
  }
};

TEST_P(SimdPathSweep, AddmulMatchesScalarReference) {
  const RegionKernels& k = region_kernels(GetParam());
  Rng rng(0xD1FF + static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t n : kSizes) {
    for (int rep = 0; rep < 8; ++rep) {
      // Independent alignment offsets for dst and src: both kernels must
      // handle unaligned heads exactly.
      const std::size_t doff = rng.next_in(0, 15);
      const std::size_t soff = rng.next_in(0, 15);
      const std::uint8_t c =
          rep < 4 ? static_cast<std::uint8_t>(rep == 2 ? 255 : rep)  // 0,1,255,3
                  : static_cast<std::uint8_t>(rng.next_in(0, 255));
      auto dst_buf = random_bytes(n + doff, rng);
      const auto src_buf = random_bytes(n + soff, rng);

      std::vector<std::uint8_t> expect(dst_buf.begin() +
                                           static_cast<std::ptrdiff_t>(doff),
                                       dst_buf.end());
      for (std::size_t i = 0; i < n; ++i)
        expect[i] ^= GF256::mul(c, src_buf[soff + i]);

      k.addmul(dst_buf.data() + doff, src_buf.data() + soff, n, c);
      const std::vector<std::uint8_t> got(
          dst_buf.begin() + static_cast<std::ptrdiff_t>(doff), dst_buf.end());
      ASSERT_EQ(got, expect) << "n=" << n << " doff=" << doff
                             << " soff=" << soff << " c=" << int(c);
    }
  }
}

TEST_P(SimdPathSweep, MulMatchesScalarReference) {
  const RegionKernels& k = region_kernels(GetParam());
  Rng rng(0xA11 + static_cast<std::uint64_t>(GetParam()));
  for (const std::size_t n : kSizes) {
    for (int rep = 0; rep < 8; ++rep) {
      const std::size_t doff = rng.next_in(0, 15);
      const std::size_t soff = rng.next_in(0, 15);
      const std::uint8_t c =
          rep < 4 ? static_cast<std::uint8_t>(rep == 2 ? 255 : rep)
                  : static_cast<std::uint8_t>(rng.next_in(0, 255));
      auto dst_buf = random_bytes(n + doff, rng);  // stale contents overwritten
      const auto src_buf = random_bytes(n + soff, rng);

      std::vector<std::uint8_t> expect(n);
      for (std::size_t i = 0; i < n; ++i)
        expect[i] = GF256::mul(c, src_buf[soff + i]);

      k.mul(dst_buf.data() + doff, src_buf.data() + soff, n, c);
      const std::vector<std::uint8_t> got(
          dst_buf.begin() + static_cast<std::ptrdiff_t>(doff), dst_buf.end());
      ASSERT_EQ(got, expect) << "n=" << n << " doff=" << doff
                             << " soff=" << soff << " c=" << int(c);
    }
  }
}

TEST_P(SimdPathSweep, MulSupportsFullAliasing) {
  // dst == src is the in-place row scale of Gauss-Jordan normalization.
  const RegionKernels& k = region_kernels(GetParam());
  Rng rng(0x5E1F);
  for (const std::size_t n : {1u, 16u, 31u, 32u, 100u, 1027u}) {
    auto buf = random_bytes(n, rng);
    std::vector<std::uint8_t> expect(n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = GF256::mul(0x53, buf[i]);
    k.mul(buf.data(), buf.data(), n, 0x53);
    ASSERT_EQ(buf, expect) << "n=" << n;
  }
}

TEST_P(SimdPathSweep, RandomizedSizesAgainstScalarKernel) {
  // Random sizes (heavy on sub-vector and odd tails) cross-checked against
  // the scalar kernel rather than the per-byte loop: both references agree
  // elsewhere, this run hammers size coverage cheaply.
  const RegionKernels& k = region_kernels(GetParam());
  const RegionKernels& scalar = region_kernels(SimdPath::kScalar);
  Rng rng(0xC0FFEE + static_cast<std::uint64_t>(GetParam()));
  for (int rep = 0; rep < 300; ++rep) {
    const std::size_t n = rng.next_bool(0.5) ? rng.next_in(0, 40)
                                             : rng.next_in(41, 5000);
    const std::uint8_t c = static_cast<std::uint8_t>(rng.next_in(0, 255));
    const auto src = random_bytes(n, rng);
    auto got = random_bytes(n, rng);
    auto expect = got;
    scalar.addmul(expect.data(), src.data(), n, c);
    k.addmul(got.data(), src.data(), n, c);
    ASSERT_EQ(got, expect) << "n=" << n << " c=" << int(c);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaths, SimdPathSweep,
                         ::testing::ValuesIn(kAllPaths),
                         [](const auto& info) {
                           return std::string(simd_path_name(info.param));
                         });

TEST(SimdDispatch, ActivePathIsSupported) {
  EXPECT_TRUE(simd_path_supported(active_simd_path()));
  // Scalar is always available; the supported list contains the active path.
  const auto paths = supported_simd_paths();
  EXPECT_FALSE(paths.empty());
  EXPECT_EQ(paths.front(), SimdPath::kScalar);
  EXPECT_NE(std::find(paths.begin(), paths.end(), active_simd_path()),
            paths.end());
}

TEST(SimdDispatch, ForceSimdPathRoundTrips) {
  const SimdPath original = active_simd_path();
  const SimdPath prev = force_simd_path(SimdPath::kScalar);
  EXPECT_EQ(prev, original);
  EXPECT_EQ(active_simd_path(), SimdPath::kScalar);
  force_simd_path(original);
  EXPECT_EQ(active_simd_path(), original);
}

TEST(SimdDispatch, ParseSimdName) {
  EXPECT_EQ(parse_simd_name("scalar"), SimdPath::kScalar);
  EXPECT_EQ(parse_simd_name("ssse3"), SimdPath::kSsse3);
  EXPECT_EQ(parse_simd_name("avx2"), SimdPath::kAvx2);
  EXPECT_EQ(parse_simd_name("neon"), SimdPath::kNeon);
  EXPECT_FALSE(parse_simd_name("").has_value());
  EXPECT_FALSE(parse_simd_name("auto").has_value());
  EXPECT_FALSE(parse_simd_name("AVX2").has_value());
}

TEST(SimdDispatch, UnsupportedKernelRequestThrows) {
  bool any_unsupported = false;
  for (const SimdPath p : kAllPaths) {
    if (simd_path_supported(p)) continue;
    any_unsupported = true;
    EXPECT_THROW(region_kernels(p), EnsureError) << simd_path_name(p);
    EXPECT_THROW(force_simd_path(p), EnsureError) << simd_path_name(p);
  }
  if (!any_unsupported) GTEST_SKIP() << "every path supported on this host";
}

}  // namespace
}  // namespace rekey::fec
