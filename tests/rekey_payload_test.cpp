// Rekey-subtree / encryption-generation tests, including the end-to-end
// security invariants from DESIGN.md §6: remaining users can always
// reconstruct their path keys; departed users cannot learn the new group
// key; joining users cannot learn the old one.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "keytree/rekey_subtree.h"
#include "keytree/user_view.h"

namespace rekey::tree {
namespace {

// Snapshot the full key set a user holds before a batch.
std::vector<std::pair<NodeId, crypto::SymmetricKey>> snapshot_keys(
    const KeyTree& t, MemberId m) {
  return t.keys_for_slot(t.slot_of(m));
}

TEST(RekeyPayload, EncryptionIdsUniqueAndChildBased) {
  KeyTree t(4, 1);
  t.populate(16);
  Marker m(t);
  const auto upd = m.run({}, std::vector<MemberId>{0, 5, 9});
  const auto payload = generate_rekey_payload(t, upd, 1);
  std::set<NodeId> ids;
  for (const Encryption& e : payload.encryptions) {
    EXPECT_TRUE(ids.insert(e.enc_id).second) << "duplicate id " << e.enc_id;
    EXPECT_EQ(parent_of(e.enc_id, 4), e.target_id);
    EXPECT_TRUE(upd.changed_knodes.count(e.target_id));
    EXPECT_NE(e.enc_id, 0u);  // never the root, so 0 can mean padding
  }
}

TEST(RekeyPayload, BottomUpOrder) {
  KeyTree t(4, 1);
  t.populate(64);
  Marker m(t);
  const auto upd = m.run({}, std::vector<MemberId>{0, 17, 40});
  const auto payload = generate_rekey_payload(t, upd, 1);
  // Deeper targets (larger ids) must come first.
  for (std::size_t i = 1; i < payload.encryptions.size(); ++i)
    EXPECT_GE(payload.encryptions[i - 1].target_id,
              payload.encryptions[i].target_id);
}

TEST(RekeyPayload, EveryUserHasNeedsWhenGroupChanges) {
  KeyTree t(4, 1);
  t.populate(16);
  Marker m(t);
  const auto upd = m.run({}, std::vector<MemberId>{7});
  const auto payload = generate_rekey_payload(t, upd, 1);
  // Root always changes, so every remaining user needs >= 1 encryption.
  EXPECT_EQ(payload.user_needs.size(), t.num_users());
  for (const auto& [slot, needs] : payload.user_needs) {
    EXPECT_FALSE(needs.empty());
    // Needs are bottom-up along the path.
    for (std::size_t i = 1; i < needs.size(); ++i)
      EXPECT_GT(payload.encryptions[needs[i - 1]].enc_id,
                payload.encryptions[needs[i]].enc_id);
    // The topmost need is always the root encryption for this user's
    // top-level subtree.
    EXPECT_EQ(payload.encryptions[needs.back()].target_id, kRootId);
  }
}

TEST(RekeyPayload, LabelsJoinVsReplace) {
  KeyTree t(4, 1);
  t.populate(6);  // users 5..10; free slots 11, 12 under k-node 2
  Marker m(t);
  const auto upd = m.run(std::vector<MemberId>{50}, std::vector<MemberId>{0});
  const auto payload = generate_rekey_payload(t, upd, 1);
  // Member 0's slot (5) was replaced: its parent (1) is Replace.
  EXPECT_EQ(payload.labels.at(1), Label::Replace);
  // Root has a departure beneath: Replace as well.
  EXPECT_EQ(payload.labels.at(0), Label::Replace);
}

TEST(RekeyPayload, PureJoinLabels) {
  KeyTree t(4, 1);
  t.populate(6);
  Marker m(t);
  const auto upd = m.run(std::vector<MemberId>{50}, {});
  const auto payload = generate_rekey_payload(t, upd, 1);
  for (const auto& [node, label] : payload.labels)
    EXPECT_EQ(label, Label::Join) << "node " << node;
}

TEST(RekeyPayload, SplitNodeLabelledReplace) {
  KeyTree t(4, 1);
  t.populate(16);
  Marker m(t);
  const auto upd = m.run(std::vector<MemberId>{50}, {});
  const auto payload = generate_rekey_payload(t, upd, 1);
  // The split node (5) relocated a user: Replace.
  EXPECT_EQ(payload.labels.at(5), Label::Replace);
}

TEST(RekeyPayload, RemainingUserRecoversAllPathKeys) {
  KeyTree t(4, 1);
  t.populate(64);
  // Users hold their pre-batch keys.
  std::map<MemberId, UserKeyView> views;
  for (MemberId u = 0; u < 64; ++u) {
    const auto keys = snapshot_keys(t, u);
    views.emplace(u, UserKeyView(u, t.slot_of(u), 4, keys));
  }
  Marker m(t);
  std::vector<MemberId> leaves{3, 17, 40, 41, 42, 43};
  const auto upd = m.run({}, leaves);
  const auto payload = generate_rekey_payload(t, upd, 1);

  const std::set<MemberId> gone(leaves.begin(), leaves.end());
  for (auto& [u, view] : views) {
    if (gone.count(u)) continue;
    view.apply(payload.msg_id, payload.max_kid, payload.encryptions);
    ASSERT_TRUE(view.group_key().has_value());
    EXPECT_EQ(*view.group_key(), t.group_key()) << "user " << u;
    // Every key on the user's current path must be correct.
    for (const auto& [id, key] : t.keys_for_slot(t.slot_of(u))) {
      const auto held = view.key_at(id);
      ASSERT_TRUE(held.has_value());
      EXPECT_EQ(*held, key);
    }
  }
}

TEST(RekeyPayload, DepartedUserCannotDecryptNewGroupKey) {
  KeyTree t(4, 1);
  t.populate(16);
  const MemberId victim = 6;
  UserKeyView view(victim, t.slot_of(victim), 4, snapshot_keys(t, victim));
  Marker m(t);
  const auto upd = m.run({}, std::vector<MemberId>{victim});
  const auto payload = generate_rekey_payload(t, upd, 1);
  // The departed user applies everything it can with its stale keys.
  view.apply(payload.msg_id, payload.max_kid, payload.encryptions);
  const auto key = view.group_key();
  // It may still *hold* the old root key but never the new one.
  if (key.has_value()) {
    EXPECT_NE(*key, t.group_key());
  }
}

TEST(RekeyPayload, DepartedUserStaysLockedOutAcrossBatches) {
  KeyTree t(4, 1);
  t.populate(16);
  const MemberId victim = 2;
  UserKeyView view(victim, t.slot_of(victim), 4, snapshot_keys(t, victim));
  Marker m(t);
  auto upd = m.run({}, std::vector<MemberId>{victim});
  auto payload = generate_rekey_payload(t, upd, 1);
  view.apply(payload.msg_id, payload.max_kid, payload.encryptions);
  // Subsequent batches must remain opaque too.
  for (std::uint32_t msg = 2; msg <= 4; ++msg) {
    Marker mm(t);
    upd = mm.run(std::vector<MemberId>{100 + msg}, std::vector<MemberId>{});
    payload = generate_rekey_payload(t, upd, msg);
    view.apply(payload.msg_id, payload.max_kid, payload.encryptions);
    const auto key = view.group_key();
    if (key.has_value()) {
      EXPECT_NE(*key, t.group_key());
    }
  }
}

TEST(RekeyPayload, NewUserCannotLearnOldGroupKey) {
  KeyTree t(4, 1);
  t.populate(16);
  const crypto::SymmetricKey old_group = t.group_key();
  Marker m(t);
  const auto upd = m.run(std::vector<MemberId>{50}, std::vector<MemberId>{0});
  const auto payload = generate_rekey_payload(t, upd, 1);
  const NodeId slot = upd.joined.at(50);
  const std::pair<NodeId, crypto::SymmetricKey> cred{slot, t.node(slot).key};
  UserKeyView view(50, slot, 4, std::span(&cred, 1));
  view.apply(payload.msg_id, payload.max_kid, payload.encryptions);
  ASSERT_TRUE(view.group_key().has_value());
  EXPECT_EQ(*view.group_key(), t.group_key());
  EXPECT_NE(*view.group_key(), old_group);
  // Nothing in the view equals the old group key.
  EXPECT_NE(view.key_at(kRootId).value(), old_group);
}

TEST(RekeyPayload, NewUserGetsFullPathFromMessageAlone) {
  KeyTree t(4, 1);
  t.populate(64);
  Marker m(t);
  const auto upd = m.run(std::vector<MemberId>{70, 71, 72}, {});
  const auto payload = generate_rekey_payload(t, upd, 9);
  for (const MemberId u : {70u, 71u, 72u}) {
    const NodeId slot = upd.joined.at(u);
    const std::pair<NodeId, crypto::SymmetricKey> cred{slot,
                                                       t.node(slot).key};
    UserKeyView view(u, slot, 4, std::span(&cred, 1));
    view.apply(payload.msg_id, payload.max_kid, payload.encryptions);
    for (const auto& [id, key] : t.keys_for_slot(slot))
      EXPECT_EQ(view.key_at(id).value(), key) << "user " << u;
  }
}

TEST(RekeyPayload, SplitUserFollowsItsSlot) {
  KeyTree t(4, 1);
  t.populate(16);
  // Member 0 sits at slot 5, which will split on join pressure.
  UserKeyView view(0, t.slot_of(0), 4, snapshot_keys(t, 0));
  Marker m(t);
  const auto upd = m.run(std::vector<MemberId>{50, 51, 52}, {});
  const auto payload = generate_rekey_payload(t, upd, 1);
  view.apply(payload.msg_id, payload.max_kid, payload.encryptions);
  EXPECT_EQ(view.id(), t.slot_of(0));
  EXPECT_EQ(view.group_key().value(), t.group_key());
  // It now also holds the key of its former slot (now a k-node above it).
  EXPECT_EQ(view.key_at(5).value(), t.node(5).key);
}

TEST(RekeyPayload, EmptyBatchYieldsEmptyPayload) {
  KeyTree t(4, 1);
  t.populate(8);
  Marker m(t);
  const auto upd = m.run({}, {});
  const auto payload = generate_rekey_payload(t, upd, 1);
  EXPECT_TRUE(payload.encryptions.empty());
  EXPECT_TRUE(payload.user_needs.empty());
}

TEST(RekeyPayload, EncryptionCountMatchesSubtreeEdges) {
  // Every changed k-node contributes one encryption per present child.
  KeyTree t(4, 1);
  t.populate(64);
  Marker m(t);
  const auto upd = m.run({}, std::vector<MemberId>{0, 1, 2, 3, 20});
  const auto payload = generate_rekey_payload(t, upd, 1);
  std::size_t expected = 0;
  for (const NodeId x : upd.changed_knodes)
    for (unsigned j = 0; j < 4; ++j)
      expected += t.contains(child_of(x, j, 4)) ? 1 : 0;
  EXPECT_EQ(payload.encryptions.size(), expected);
}

// Randomized end-to-end security sweep across degrees and churn.
class SecuritySweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecuritySweep, AllSurvivorsTrackGroupKeyUnderChurn) {
  const unsigned d = GetParam();
  Rng rng(d * 31 + 7);
  KeyTree t(d, 3);
  t.populate(40);
  std::map<MemberId, UserKeyView> views;
  for (MemberId u = 0; u < 40; ++u)
    views.emplace(u, UserKeyView(u, t.slot_of(u), d, snapshot_keys(t, u)));
  MemberId next = 40;

  for (std::uint32_t msg = 1; msg <= 12; ++msg) {
    std::vector<MemberId> members;
    for (const NodeId s : t.user_slots()) members.push_back(t.node(s).member);
    rng.shuffle(members);
    const std::size_t L =
        static_cast<std::size_t>(rng.next_in(0, members.size() / 3));
    std::vector<MemberId> leaves(members.begin(), members.begin() + L);
    std::vector<MemberId> joins;
    const std::size_t J = static_cast<std::size_t>(rng.next_in(0, 15));
    for (std::size_t j = 0; j < J; ++j) joins.push_back(next++);
    if (leaves.empty() && joins.empty()) continue;

    Marker m(t);
    const auto upd = m.run(joins, leaves);
    const auto payload = generate_rekey_payload(t, upd, msg);

    for (const MemberId gone : leaves) views.erase(gone);
    for (const auto& [u, slot] : upd.joined) {
      const std::pair<NodeId, crypto::SymmetricKey> cred{slot,
                                                         t.node(slot).key};
      views.emplace(u, UserKeyView(u, slot, d, std::span(&cred, 1)));
    }
    for (auto& [u, view] : views) {
      view.apply(payload.msg_id, payload.max_kid, payload.encryptions);
      ASSERT_TRUE(view.group_key().has_value()) << "user " << u;
      EXPECT_EQ(*view.group_key(), t.group_key()) << "user " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, SecuritySweep,
                         ::testing::Values(2u, 3u, 4u));

}  // namespace
}  // namespace rekey::tree
