// Robustness ("fuzz") tests: the wire parsers and the receiver state
// machine must survive arbitrary byte soup — returning nullopt or simply
// ignoring garbage, never crashing or throwing on network input.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "packet/estimate.h"
#include "packet/wire.h"
#include "transport/user.h"

namespace rekey {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_in(0, 255));
  return b;
}

TEST(Fuzz, ParsersNeverThrowOnRandomInput) {
  Rng rng(1);
  for (int trial = 0; trial < 5000; ++trial) {
    const Bytes wire = random_bytes(rng, rng.next_in(0, 64));
    EXPECT_NO_THROW({
      (void)packet::EncPacket::parse(wire);
      (void)packet::ParityPacket::parse(wire);
      (void)packet::UsrPacket::parse(wire);
      (void)packet::NackPacket::parse(wire);
      (void)packet::parse_enc_header(wire);
      (void)packet::parse_parity_header(wire);
      (void)packet::peek_type(wire);
    });
  }
}

TEST(Fuzz, ParsersNeverThrowOnPacketSizedRandomInput) {
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    const Bytes wire = random_bytes(rng, 1027);
    EXPECT_NO_THROW({
      (void)packet::EncPacket::parse(wire);
      (void)packet::ParityPacket::parse(wire);
      (void)packet::UsrPacket::parse(wire);
      (void)packet::NackPacket::parse(wire);
    });
  }
}

TEST(Fuzz, BitflippedEncPacketsParseOrRejectCleanly) {
  // Start from a valid packet and flip bits: parse must not throw, and if
  // it succeeds the result must be internally consistent enough to print.
  packet::EncPacket p;
  p.msg_id = 5;
  p.block_id = 3;
  p.seq = 2;
  p.max_kid = 100;
  p.frm_id = 101;
  p.to_id = 120;
  crypto::KeyGenerator gen(1);
  for (std::uint32_t i = 1; i <= 10; ++i) {
    packet::EncEntry e;
    e.enc_id = i;
    const auto k = gen.next();
    std::copy(k.bytes.begin(), k.bytes.end(), e.enc.ciphertext.begin());
    p.entries.push_back(e);
  }
  const Bytes base = p.serialize(512);
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes wire = base;
    const std::size_t flips = 1 + rng.next_in(0, 7);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.next_in(0, wire.size() - 1);
      wire[pos] ^= static_cast<std::uint8_t>(1u << rng.next_in(0, 7));
    }
    EXPECT_NO_THROW((void)packet::EncPacket::parse(wire));
  }
}

TEST(Fuzz, UserTransportIgnoresGarbagePackets) {
  Rng rng(4);
  transport::PacketPool pool;
  for (int i = 0; i < 500; ++i)
    pool.push_back(random_bytes(rng, rng.next_in(0, 1027)));
  transport::UserTransport u(/*old_id=*/100, /*k=*/10, /*degree=*/4, &pool);
  for (std::size_t i = 0; i < pool.size(); ++i)
    EXPECT_NO_THROW(u.on_packet(i, 1));
  // With nothing intelligible received, the round ends in a NACK (random
  // bytes can in principle masquerade as this user's ENC packet — the
  // integrity tags reject the garbage keys downstream — so only the
  // not-recovered case is asserted on).
  if (!u.recovered()) {
    std::vector<packet::NackEntry> nack;
    EXPECT_NO_THROW(nack = u.end_of_round(1));
    EXPECT_FALSE(nack.empty());
  }
}

TEST(Fuzz, EstimatorToleratesInconsistentHeaders) {
  // Random (but type-correct) ENC headers: inconsistent observations are
  // dropped, low() <= high() always holds, and observe never throws.
  Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    packet::BlockIdEstimator est(/*my_id=*/500, /*k=*/10, /*degree=*/4);
    for (int i = 0; i < 20; ++i) {
      packet::EncHeader h;
      h.block_id = static_cast<std::uint16_t>(rng.next_in(0, 40));
      h.seq = static_cast<std::uint8_t>(rng.next_in(0, 9));
      h.frm_id = static_cast<std::uint16_t>(rng.next_in(0, 1000));
      h.to_id = static_cast<std::uint16_t>(h.frm_id + rng.next_in(0, 50));
      h.max_kid = static_cast<std::uint16_t>(rng.next_in(125, 2000));
      EXPECT_NO_THROW(est.observe(h));
      EXPECT_LE(est.low(), est.high());
    }
  }
}

// Helpers for the truncation sweep: entries whose serialized id bytes are
// all nonzero, so a cut anywhere inside an entry leaves a nonzero tail
// byte and the strict-tail parser must reject the wire.
std::vector<packet::EncEntry> nonzero_id_entries(std::size_t n) {
  std::vector<packet::EncEntry> out;
  crypto::KeyGenerator gen(7);
  for (std::size_t i = 0; i < n; ++i) {
    packet::EncEntry e;
    e.enc_id = 0x01010101u + static_cast<std::uint32_t>(i);
    const auto k = gen.next();
    std::copy(k.bytes.begin(), k.bytes.end(), e.enc.ciphertext.begin());
    out.push_back(e);
  }
  return out;
}

// Every valid packet type, truncated at every byte boundary: parsing never
// throws, and a cut that lands mid-entry (a nonzero partial tail) parses
// to nullopt. Cuts at entry boundaries are self-delimiting — they are
// byte-identical to a genuine shorter packet, so the parser accepts the
// prefix; detecting those is the UDP length/checksum's job, not the
// format's.
TEST(Fuzz, TruncationSweepEncPacket) {
  packet::EncPacket p;
  p.msg_id = 11;
  p.block_id = 2;
  p.seq = 1;
  p.max_kid = 300;
  p.frm_id = 301;
  p.to_id = 320;
  p.entries = nonzero_id_entries(8);
  const Bytes full = p.serialize(512);
  const std::size_t data_end =
      packet::kEncHeaderSize + p.entries.size() * packet::kEntrySize;
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const Bytes wire(full.begin(), full.begin() + cut);
    std::optional<packet::EncPacket> parsed;
    ASSERT_NO_THROW(parsed = packet::EncPacket::parse(wire)) << "cut " << cut;
    if (cut < packet::kEncHeaderSize) {
      EXPECT_FALSE(parsed.has_value()) << "cut " << cut;
    } else if (cut < data_end &&
               (cut - packet::kEncHeaderSize) % packet::kEntrySize != 0) {
      EXPECT_FALSE(parsed.has_value()) << "mid-entry cut " << cut;
    } else {
      // Entry boundary or inside the zero padding: a valid prefix.
      ASSERT_TRUE(parsed.has_value()) << "cut " << cut;
      const std::size_t expect_entries =
          cut >= data_end ? p.entries.size()
                          : (cut - packet::kEncHeaderSize) / packet::kEntrySize;
      EXPECT_EQ(parsed->entries.size(), expect_entries) << "cut " << cut;
    }
  }
}

TEST(Fuzz, TruncationSweepUsrPacket) {
  packet::UsrPacket p;
  p.msg_id = 12;
  p.new_user_id = 77;
  p.max_kid = 400;
  p.entries = nonzero_id_entries(5);
  const Bytes full = p.serialize();
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const Bytes wire(full.begin(), full.begin() + cut);
    std::optional<packet::UsrPacket> parsed;
    ASSERT_NO_THROW(parsed = packet::UsrPacket::parse(wire)) << "cut " << cut;
    if (cut < packet::kUsrHeaderSize) {
      EXPECT_FALSE(parsed.has_value()) << "cut " << cut;
    } else if ((cut - packet::kUsrHeaderSize) % packet::kEntrySize != 0) {
      EXPECT_FALSE(parsed.has_value()) << "mid-entry cut " << cut;
    } else {
      ASSERT_TRUE(parsed.has_value()) << "cut " << cut;
      EXPECT_EQ(parsed->entries.size(),
                (cut - packet::kUsrHeaderSize) / packet::kEntrySize)
          << "cut " << cut;
    }
  }
}

TEST(Fuzz, TruncationSweepNackPacket) {
  packet::NackPacket p;
  p.msg_id = 13;
  for (int i = 0; i < 6; ++i) {
    packet::NackEntry e;
    e.parities_needed = static_cast<std::uint8_t>(1 + i);
    e.block_id = static_cast<std::uint16_t>(10 + i);
    e.max_shard_seen = static_cast<std::uint8_t>(3 + i);
    p.entries.push_back(e);
  }
  const Bytes full = p.serialize();
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const Bytes wire(full.begin(), full.begin() + cut);
    std::optional<packet::NackPacket> parsed;
    ASSERT_NO_THROW(parsed = packet::NackPacket::parse(wire)) << "cut " << cut;
    if (cut < 1) {
      EXPECT_FALSE(parsed.has_value()) << "cut " << cut;
    } else if ((cut - 1) % 4 != 0) {
      // NACK entries carry no padding: a partial trailing entry is a
      // truncated datagram, rejected outright.
      EXPECT_FALSE(parsed.has_value()) << "mid-entry cut " << cut;
    } else {
      ASSERT_TRUE(parsed.has_value()) << "cut " << cut;
      EXPECT_EQ(parsed->entries.size(), (cut - 1) / 4) << "cut " << cut;
    }
  }
}

TEST(Fuzz, TruncationSweepParityPacket) {
  packet::ParityPacket p;
  p.msg_id = 14;
  p.block_id = 4;
  p.parity_seq = 9;
  p.fec.assign(128, 0xAB);
  const Bytes full = p.serialize();
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    const Bytes wire(full.begin(), full.begin() + cut);
    std::optional<packet::ParityPacket> parsed;
    ASSERT_NO_THROW(parsed = packet::ParityPacket::parse(wire))
        << "cut " << cut;
    // A parity body is opaque FEC bytes with no internal structure; only
    // the header is checkable (the UDP checksum catches body truncation).
    EXPECT_EQ(parsed.has_value(), cut >= packet::kFecOffset) << "cut " << cut;
  }
}

TEST(Fuzz, TruncatedUsrAndNackHandled) {
  packet::UsrPacket usr;
  usr.msg_id = 9;
  usr.new_user_id = 44;
  crypto::KeyGenerator gen(6);
  packet::EncEntry e;
  e.enc_id = 7;
  const auto k = gen.next();
  std::copy(k.bytes.begin(), k.bytes.end(), e.enc.ciphertext.begin());
  usr.entries.push_back(e);
  const Bytes full = usr.serialize();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const Bytes wire(full.begin(), full.begin() + cut);
    EXPECT_NO_THROW((void)packet::UsrPacket::parse(wire));
  }
}

}  // namespace
}  // namespace rekey
