// GF(2^8) field tests: axioms over parameter sweeps, exp/log consistency,
// and the add_scaled hot path.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/rng.h"
#include "fec/gf256.h"

namespace rekey::fec {
namespace {

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x55, 0xAA), 0xFF);
  EXPECT_EQ(GF256::add(0x13, 0x13), 0x00);
}

TEST(GF256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1),
              static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(GF256, MulCommutative) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_in(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.next_in(0, 255));
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
  }
}

TEST(GF256, MulAssociative) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_in(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.next_in(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.next_in(0, 255));
    EXPECT_EQ(GF256::mul(GF256::mul(a, b), c),
              GF256::mul(a, GF256::mul(b, c)));
  }
}

TEST(GF256, Distributive) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_in(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.next_in(0, 255));
    const auto c = static_cast<std::uint8_t>(rng.next_in(0, 255));
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(GF256, EveryNonzeroHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1)
        << "a=" << a;
  }
}

TEST(GF256, InverseOfZeroThrows) {
  EXPECT_THROW(GF256::inv(0), EnsureError);
  EXPECT_THROW(GF256::div(1, 0), EnsureError);
  EXPECT_THROW(GF256::log(0), EnsureError);
}

TEST(GF256, DivisionInvertsMultiplication) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_in(0, 255));
    const auto b = static_cast<std::uint8_t>(rng.next_in(1, 255));
    EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
  }
}

TEST(GF256, ExpLogRoundtrip) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(GF256::exp(GF256::log(static_cast<std::uint8_t>(a))),
              static_cast<std::uint8_t>(a));
  }
}

TEST(GF256, GeneratorHasFullOrder) {
  // alpha = 2 generates the multiplicative group: 255 distinct powers.
  std::vector<bool> seen(256, false);
  for (unsigned e = 0; e < 255; ++e) {
    const auto v = GF256::exp(e);
    EXPECT_FALSE(seen[v]) << "repeat at e=" << e;
    seen[v] = true;
  }
  EXPECT_FALSE(seen[0]);
}

TEST(GF256, PowMatchesRepeatedMul) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_in(1, 255));
    const unsigned e = static_cast<unsigned>(rng.next_in(0, 600));
    std::uint8_t expect = 1;
    for (unsigned j = 0; j < e; ++j) expect = GF256::mul(expect, a);
    EXPECT_EQ(GF256::pow(a, e), expect);
  }
}

TEST(GF256, AddScaledMatchesScalarLoop) {
  Rng rng(6);
  std::vector<std::uint8_t> dst(257), src(257);
  for (auto& b : dst) b = static_cast<std::uint8_t>(rng.next_in(0, 255));
  for (auto& b : src) b = static_cast<std::uint8_t>(rng.next_in(0, 255));
  for (const std::uint8_t c : {0, 1, 2, 97, 255}) {
    auto expect = dst;
    for (std::size_t i = 0; i < expect.size(); ++i)
      expect[i] = GF256::add(expect[i],
                             GF256::mul(c, src[i]));
    auto got = dst;
    GF256::add_scaled(got, src, static_cast<std::uint8_t>(c));
    EXPECT_EQ(got, expect) << "c=" << int(c);
  }
}

TEST(GF256, AddScaledSizeMismatchThrows) {
  std::vector<std::uint8_t> a(4), b(5);
  EXPECT_THROW(GF256::add_scaled(a, b, 3), EnsureError);
}

class GF256FieldSweep : public ::testing::TestWithParam<int> {};

TEST_P(GF256FieldSweep, RowOfMultiplicationTableIsPermutation) {
  const auto a = static_cast<std::uint8_t>(GetParam());
  std::vector<bool> seen(256, false);
  for (int b = 0; b < 256; ++b) {
    const auto v = GF256::mul(a, static_cast<std::uint8_t>(b));
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(NonzeroElements, GF256FieldSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 97, 128, 254,
                                           255));

}  // namespace
}  // namespace rekey::fec
