// Wire-format tests for the four packet types: roundtrips, header peeks,
// padding semantics, and size accounting (the paper's 46 encryptions per
// 1027-byte ENC packet).
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/rng.h"
#include "crypto/keys.h"
#include "packet/wire.h"

namespace rekey::packet {
namespace {

EncEntry make_entry(std::uint32_t id, std::uint64_t seed) {
  crypto::KeyGenerator gen(seed);
  EncEntry e;
  e.enc_id = id;
  const auto k = gen.next();
  std::copy(k.bytes.begin(), k.bytes.end(), e.enc.ciphertext.begin());
  e.enc.tag = static_cast<std::uint16_t>(seed * 7919);
  return e;
}

TEST(Wire, CapacityMatchesPaper) {
  EXPECT_EQ(max_entries(1027), 46u);
  EXPECT_EQ(kEntrySize, 22u);
  // The wide (32-bit slot id) header costs one entry at the paper's
  // packet size: 16 header bytes instead of 10.
  EXPECT_EQ(max_entries(1027, true), 45u);
}

TEST(Wire, EncRoundtrip) {
  EncPacket p;
  p.msg_id = 13;
  p.block_id = 777;
  p.seq = 9;
  p.duplicate = true;
  p.max_kid = 5461;
  p.frm_id = 5462;
  p.to_id = 6000;
  for (std::uint32_t i = 1; i <= 46; ++i) p.entries.push_back(make_entry(i, i));

  const Bytes wire = p.serialize(1027);
  EXPECT_EQ(wire.size(), 1027u);
  const auto back = EncPacket::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->msg_id, p.msg_id);
  EXPECT_EQ(back->block_id, p.block_id);
  EXPECT_EQ(back->seq, p.seq);
  EXPECT_EQ(back->duplicate, p.duplicate);
  EXPECT_EQ(back->max_kid, p.max_kid);
  EXPECT_EQ(back->frm_id, p.frm_id);
  EXPECT_EQ(back->to_id, p.to_id);
  EXPECT_EQ(back->entries, p.entries);
}

TEST(Wire, EncWideRoundtripCarriesBigSlotIds) {
  EncPacket p;
  p.msg_id = 13;
  p.block_id = 777;
  p.seq = 9;
  p.duplicate = true;
  p.max_kid = 0x15554;  // past the u16 ceiling (degree-4, N = 2^17)
  p.frm_id = 0x15555;
  p.to_id = 0x5FFFC;
  for (std::uint32_t i = 1; i <= 45; ++i) p.entries.push_back(make_entry(i, i));

  const Bytes wire = p.serialize(1027, /*wide=*/true);
  EXPECT_EQ(wire.size(), 1027u);
  const auto back = EncPacket::parse(wire, /*wide=*/true);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->max_kid, p.max_kid);
  EXPECT_EQ(back->frm_id, p.frm_id);
  EXPECT_EQ(back->to_id, p.to_id);
  EXPECT_EQ(back->block_id, p.block_id);
  EXPECT_EQ(back->seq, p.seq);
  EXPECT_EQ(back->duplicate, p.duplicate);
  EXPECT_EQ(back->entries, p.entries);

  const auto hdr = parse_enc_header(wire, /*wide=*/true);
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(hdr->max_kid, p.max_kid);
  EXPECT_EQ(hdr->frm_id, p.frm_id);
  EXPECT_EQ(hdr->to_id, p.to_id);

  // The narrow format stays what it always was: ids overflowing u16 wrap
  // silently (the simulator's flat-tree benches rely on the byte layout),
  // which is exactly why the wire daemon negotiates the wide format.
  const Bytes narrow = p.serialize(1027);
  const auto nb = EncPacket::parse(narrow);
  ASSERT_TRUE(nb.has_value());
  EXPECT_EQ(nb->max_kid, p.max_kid & 0xFFFF);
  EXPECT_EQ(nb->frm_id, p.frm_id & 0xFFFF);
  EXPECT_EQ(nb->to_id, p.to_id & 0xFFFF);
}

TEST(Wire, EncPaddingStopsAtZeroId) {
  EncPacket p;
  p.msg_id = 1;
  p.entries.push_back(make_entry(5, 1));
  const Bytes wire = p.serialize(200);
  const auto back = EncPacket::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entries.size(), 1u);
}

TEST(Wire, EncZeroIdRejectedOnSerialize) {
  EncPacket p;
  p.entries.push_back(make_entry(0, 1));
  EXPECT_THROW(p.serialize(200), EnsureError);
}

TEST(Wire, EncOverflowRejected) {
  EncPacket p;
  for (std::uint32_t i = 1; i <= 47; ++i) p.entries.push_back(make_entry(i, i));
  EXPECT_THROW(p.serialize(1027), EnsureError);
}

TEST(Wire, EncHeaderPeekMatchesFullParse) {
  EncPacket p;
  p.msg_id = 63;
  p.block_id = 65535;
  p.seq = 127;
  p.duplicate = false;
  p.max_kid = 1;
  p.frm_id = 2;
  p.to_id = 3;
  p.entries.push_back(make_entry(9, 9));
  const Bytes wire = p.serialize(100);
  const auto h = parse_enc_header(wire);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->msg_id, 63);
  EXPECT_EQ(h->block_id, 65535);
  EXPECT_EQ(h->seq, 127);
  EXPECT_FALSE(h->duplicate);
  EXPECT_EQ(h->max_kid, 1);
  EXPECT_EQ(h->frm_id, 2);
  EXPECT_EQ(h->to_id, 3);
}

TEST(Wire, DuplicateFlagDoesNotDisturbSeq) {
  for (const bool dup : {false, true}) {
    EncPacket p;
    p.seq = 77;
    p.duplicate = dup;
    p.entries.push_back(make_entry(3, 3));
    const auto h = parse_enc_header(p.serialize(64));
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->seq, 77);
    EXPECT_EQ(h->duplicate, dup);
  }
}

TEST(Wire, ParityRoundtrip) {
  ParityPacket p;
  p.msg_id = 7;
  p.block_id = 300;
  p.parity_seq = 200;
  p.fec.assign(1023, 0xA5);
  const Bytes wire = p.serialize();
  EXPECT_EQ(wire.size(), 1027u);  // same length as an ENC packet
  const auto back = ParityPacket::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->msg_id, 7);
  EXPECT_EQ(back->block_id, 300);
  EXPECT_EQ(back->parity_seq, 200);
  EXPECT_EQ(back->fec, p.fec);
}

TEST(Wire, ParityHeaderPeek) {
  ParityPacket p;
  p.msg_id = 2;
  p.block_id = 9;
  p.parity_seq = 4;
  p.fec.assign(16, 0);
  const auto h = parse_parity_header(p.serialize());
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->msg_id, 2);
  EXPECT_EQ(h->block_id, 9);
  EXPECT_EQ(h->parity_seq, 4);
}

TEST(Wire, UsrRoundtrip) {
  UsrPacket p;
  p.msg_id = 44;
  p.new_user_id = 21845;
  p.max_kid = 5461;
  p.entries.push_back(make_entry(21845, 1));
  p.entries.push_back(make_entry(5461, 2));
  const Bytes wire = p.serialize();
  // USR packets are small: header 5 bytes + 22 per entry.
  EXPECT_EQ(wire.size(), 5u + 44u);
  const auto back = UsrPacket::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->new_user_id, p.new_user_id);
  EXPECT_EQ(back->max_kid, p.max_kid);
  EXPECT_EQ(back->entries, p.entries);
}

TEST(Wire, UsrWideRoundtrip) {
  UsrPacket p;
  p.msg_id = 44;
  p.new_user_id = 0x15555;  // wide slot id
  p.max_kid = 0x15554;
  p.entries.push_back(make_entry(0x15555, 1));
  p.entries.push_back(make_entry(0x15554, 2));
  const Bytes wire = p.serialize(/*wide=*/true);
  // Wide USR header is 9 bytes (u32 new_user_id and max_kid).
  EXPECT_EQ(wire.size(), 9u + 44u);
  const auto back = UsrPacket::parse(wire, /*wide=*/true);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->new_user_id, p.new_user_id);
  EXPECT_EQ(back->max_kid, p.max_kid);
  EXPECT_EQ(back->entries, p.entries);
  // A wide wire fed to the narrow parser must not round-trip the ids.
  const auto narrow = UsrPacket::parse(wire);
  if (narrow.has_value()) {
    EXPECT_NE(narrow->new_user_id, p.new_user_id);
  }
}

TEST(Wire, NackRoundtrip) {
  NackPacket p;
  p.msg_id = 3;
  p.entries.push_back({4, 0, 9});
  p.entries.push_back({10, 12, 0});
  const Bytes wire = p.serialize();
  EXPECT_EQ(wire.size(), 1u + 2 * 4u);
  const auto back = NackPacket::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->msg_id, 3);
  EXPECT_EQ(back->entries, p.entries);
}

TEST(Wire, PeekTypeDistinguishesAll) {
  EncPacket e;
  e.entries.push_back(make_entry(1, 1));
  ParityPacket par;
  par.fec.assign(4, 0);
  UsrPacket u;
  NackPacket n;
  EXPECT_EQ(peek_type(e.serialize(64)), PacketType::Enc);
  EXPECT_EQ(peek_type(par.serialize()), PacketType::Parity);
  EXPECT_EQ(peek_type(u.serialize()), PacketType::Usr);
  EXPECT_EQ(peek_type(n.serialize()), PacketType::Nack);
  EXPECT_FALSE(peek_type({}).has_value());
}

TEST(Wire, CrossTypeParseRejected) {
  UsrPacket u;
  u.msg_id = 1;
  const Bytes wire = u.serialize();
  EXPECT_FALSE(EncPacket::parse(wire).has_value());
  EXPECT_FALSE(ParityPacket::parse(wire).has_value());
  EXPECT_FALSE(NackPacket::parse(wire).has_value());
}

TEST(Wire, TruncatedPacketsRejected) {
  EXPECT_FALSE(EncPacket::parse(Bytes{0x00, 0x01}).has_value());
  EXPECT_FALSE(ParityPacket::parse(Bytes{0x40}).has_value());
  EXPECT_FALSE(UsrPacket::parse(Bytes{0x80}).has_value());
  EXPECT_FALSE(NackPacket::parse(Bytes{}).has_value());
}

TEST(Wire, MsgIdRange) {
  EncPacket p;
  p.msg_id = 64;  // 6-bit field
  p.entries.push_back(make_entry(1, 1));
  EXPECT_THROW(p.serialize(64), EnsureError);
}

// Independent RFC 1071 reference: accumulate into 64 bits, then fold the
// carries in a loop until none remain. The production routine must agree
// with this on every input, including ones whose first fold itself
// carries past bit 16.
std::uint16_t reference_checksum(const Bytes& wire) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < wire.size(); i += 2) {
    const std::uint16_t hi = wire[i];
    const std::uint16_t lo = i + 1 < wire.size() ? wire[i + 1] : 0;
    sum += static_cast<std::uint16_t>((hi << 8) | lo);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  const auto c = static_cast<std::uint16_t>(~sum & 0xFFFF);
  return c == 0 ? std::uint16_t{0xFFFF} : c;
}

TEST(Wire, ChecksumMatchesReferenceOnCarryHeavyPayloads) {
  // All-0xFF payloads maximize per-word sums: by ~64 KiB of 0xFFFF words
  // the 32-bit accumulator's first end-around fold carries again, which a
  // single-pass fold would bake into the result as an off-by-one.
  for (const std::size_t n : {2u, 3u, 1500u, 9000u, 65535u, 65536u, 70000u}) {
    const Bytes wire(n, 0xFF);
    EXPECT_EQ(udp_checksum(wire), reference_checksum(wire)) << "n=" << n;
  }
  // Random payloads, jumbo-sized so the sum leaves the low 16 bits.
  Rng rng(0xC5C5);
  for (int t = 0; t < 50; ++t) {
    Bytes wire(9000);
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(udp_checksum(wire), reference_checksum(wire)) << "trial " << t;
  }
}

TEST(Wire, ChecksumZeroTransmitsAsAllOnes) {
  // RFC 768: a computed checksum of zero is transmitted as all ones. A
  // single 0xFFFF word sums to 0xFFFF, whose complement is zero.
  const Bytes wire{0xFF, 0xFF};
  EXPECT_EQ(udp_checksum(wire), 0xFFFF);
  // Same with enough words to require folding first.
  Bytes many;
  for (int i = 0; i < 17; ++i) {
    many.push_back(0xFF);
    many.push_back(0xFF);
  }
  EXPECT_EQ(udp_checksum(many), 0xFFFF);
  EXPECT_EQ(udp_checksum(Bytes{}), 0xFFFF);  // empty sum is zero too
}

TEST(Wire, ChecksumDetectsSingleByteFlips) {
  Rng rng(0xF11F);
  Bytes wire(257);  // odd length: exercises the padded tail byte
  for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next_u64());
  const std::uint16_t good = udp_checksum(wire);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes flipped = wire;
    flipped[i] ^= 0x5A;
    EXPECT_NE(udp_checksum(flipped), good) << "flip at " << i;
  }
}

TEST(Wire, TreeEncryptionConversionRoundtrip) {
  tree::Encryption t;
  t.enc_id = 21;
  t.target_id = 5;  // parent of 21 at degree 4
  crypto::KeyGenerator gen(3);
  t.payload = crypto::encrypt_key(gen.next(), gen.next(), 1, 21);
  const EncEntry e = to_wire_entry(t);
  const tree::Encryption back = to_tree_encryption(e, 4);
  EXPECT_EQ(back.enc_id, t.enc_id);
  EXPECT_EQ(back.target_id, t.target_id);
  EXPECT_EQ(back.payload, t.payload);
}

}  // namespace
}  // namespace rekey::packet
