// Snapshot/restore tests: the key server's crash-recovery path and the
// member-side key persistence.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/rng.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "keytree/shard.h"
#include "keytree/snapshot.h"

namespace rekey::tree {
namespace {

KeyTree churned_tree(std::uint64_t seed) {
  Rng rng(seed);
  KeyTree t(4, rng.next_u64());
  t.populate(64);
  // A couple of batches so the tree has history (splits, holes).
  Marker m(t);
  m.run(std::vector<MemberId>{100, 101, 102}, std::vector<MemberId>{3});
  Marker m2(t);
  m2.run(std::vector<MemberId>{}, std::vector<MemberId>{7, 8, 9, 10});
  return t;
}

TEST(TreeSnapshot, RoundtripPreservesEverything) {
  const KeyTree original = churned_tree(1);
  const Bytes blob = snapshot_tree(original);
  const auto restored = restore_tree(blob, /*key_seed=*/99);
  ASSERT_TRUE(restored.has_value());
  restored->check_invariants();
  EXPECT_EQ(restored->degree(), original.degree());
  EXPECT_EQ(restored->num_users(), original.num_users());
  EXPECT_EQ(restored->group_key(), original.group_key());
  ASSERT_EQ(restored->nodes().size(), original.nodes().size());
  for (const auto& [id, n] : original.nodes()) {
    ASSERT_TRUE(restored->contains(id));
    EXPECT_EQ(restored->node(id).kind, n.kind);
    EXPECT_EQ(restored->node(id).key, n.key);
    if (n.kind == NodeKind::UNode) {
      EXPECT_EQ(restored->node(id).member, n.member);
    }
  }
}

TEST(TreeSnapshot, RestoredTreeKeepsWorking) {
  KeyTree original = churned_tree(2);
  const Bytes blob = snapshot_tree(original);
  auto restored = restore_tree(blob, 7);
  ASSERT_TRUE(restored.has_value());
  // A batch on the restored tree must behave like one on any live tree.
  Marker m(*restored);
  const auto upd = m.run(std::vector<MemberId>{200}, std::vector<MemberId>{5});
  restored->check_invariants();
  const auto payload = generate_rekey_payload(*restored, upd, 9);
  EXPECT_FALSE(payload.encryptions.empty());
  EXPECT_EQ(payload.user_needs.size(), restored->num_users());
}

TEST(TreeSnapshot, CorruptionDetected) {
  const KeyTree original = churned_tree(3);
  Bytes blob = snapshot_tree(original);
  for (const std::size_t pos :
       {std::size_t{0}, blob.size() / 2, blob.size() - 1}) {
    Bytes bad = blob;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(restore_tree(bad, 1).has_value()) << "pos " << pos;
  }
}

TEST(TreeSnapshot, TruncationDetected) {
  const KeyTree original = churned_tree(4);
  const Bytes blob = snapshot_tree(original);
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{10}, blob.size() - 1}) {
    const Bytes cut(blob.begin(), blob.begin() + len);
    EXPECT_FALSE(restore_tree(cut, 1).has_value()) << "len " << len;
  }
}

TEST(TreeSnapshot, WrongMagicRejected) {
  const KeyTree original = churned_tree(5);
  Bytes blob = snapshot_view(
      UserKeyView(1, original.user_slots()[0], 4,
                  original.keys_for_slot(original.user_slots()[0])),
      4);
  EXPECT_FALSE(restore_tree(blob, 1).has_value());
}

TEST(ViewSnapshot, RoundtripPreservesKeys) {
  const KeyTree t = churned_tree(6);
  const NodeId slot = t.user_slots()[5];
  const UserKeyView view(t.node(slot).member, slot, 4, t.keys_for_slot(slot));
  const Bytes blob = snapshot_view(view, 4);
  const auto restored = restore_view(blob);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->member(), view.member());
  EXPECT_EQ(restored->id(), view.id());
  EXPECT_EQ(restored->keys(), view.keys());
  EXPECT_EQ(restored->group_key(), view.group_key());
}

TEST(ViewSnapshot, RestoredViewStillDecrypts) {
  KeyTree t(4, 11);
  t.populate(16);
  const NodeId slot = t.slot_of(6);
  const UserKeyView before(6, slot, 4, t.keys_for_slot(slot));
  const Bytes blob = snapshot_view(before, 4);

  Marker m(t);
  const auto upd = m.run({}, std::vector<MemberId>{3});
  const auto payload = generate_rekey_payload(t, upd, 2);

  auto view = restore_view(blob);
  ASSERT_TRUE(view.has_value());
  view->apply(payload.msg_id, payload.max_kid, payload.encryptions);
  EXPECT_EQ(view->group_key().value(), t.group_key());
}

TEST(ViewSnapshot, CorruptionDetected) {
  const KeyTree t = churned_tree(8);
  const NodeId slot = t.user_slots()[0];
  const UserKeyView view(t.node(slot).member, slot, 4, t.keys_for_slot(slot));
  Bytes blob = snapshot_view(view, 4);
  blob[blob.size() / 2] ^= 0x80;
  EXPECT_FALSE(restore_view(blob).has_value());
}

// Exhaustive malformed-input sweeps: a snapshot cut at ANY byte length or
// flipped in ANY single bit must restore to a clean nullopt — never an
// abort, a throw, or a half-restored tree. The SHA-256 trailer makes the
// corruption half trivially true once sealing is correct; the truncation
// half additionally exercises every reader-side bounds check for cuts
// shorter than the trailer itself.
TEST(TreeSnapshot, TruncationAtEveryByteRejected) {
  const KeyTree original = churned_tree(21);
  const Bytes blob = snapshot_tree(original);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const Bytes cut(blob.begin(), blob.begin() + len);
    ASSERT_FALSE(restore_tree(cut, 1).has_value()) << "len " << len;
  }
}

TEST(TreeSnapshot, SingleBitFlipAtEveryPositionRejected) {
  const KeyTree original = churned_tree(22);
  const Bytes blob = snapshot_tree(original);
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = blob;
      bad[pos] ^= static_cast<std::uint8_t>(1u << bit);
      ASSERT_FALSE(restore_tree(bad, 1).has_value())
          << "pos " << pos << " bit " << bit;
    }
  }
}

TEST(ShardedSnapshot, TruncationAtEveryByteRejected) {
  const KeyTree original = churned_tree(23);
  const Bytes blob = snapshot_sharded_tree(original, ShardPlan::make(4, 4));
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const Bytes cut(blob.begin(), blob.begin() + len);
    ASSERT_FALSE(restore_sharded_tree(cut, 1).has_value()) << "len " << len;
  }
}

TEST(ShardedSnapshot, SingleBitFlipAtEveryPositionRejected) {
  const KeyTree original = churned_tree(24);
  const Bytes blob = snapshot_sharded_tree(original, ShardPlan::make(4, 4));
  for (std::size_t pos = 0; pos < blob.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes bad = blob;
      bad[pos] ^= static_cast<std::uint8_t>(1u << bit);
      ASSERT_FALSE(restore_sharded_tree(bad, 1).has_value())
          << "pos " << pos << " bit " << bit;
    }
  }
}

TEST(FromNodes, RejectsInconsistentData) {
  std::map<NodeId, Node> nodes;
  Node u;
  u.kind = NodeKind::UNode;
  u.member = 1;
  nodes.emplace(5, u);  // orphan u-node: no k-node ancestors
  EXPECT_THROW(KeyTree::from_nodes(4, 1, nodes), EnsureError);
}

TEST(FromNodes, RejectsDuplicateMembers) {
  KeyTree t(4, 1);
  t.populate(4);
  auto nodes = t.nodes();
  // Give two u-nodes the same member id.
  Node dup = nodes.at(1);
  nodes.at(2) = dup;
  EXPECT_THROW(KeyTree::from_nodes(4, 1, nodes), EnsureError);
}

}  // namespace
}  // namespace rekey::tree
