// Unit tests for the foundation module: RNG, statistics, byte/bit I/O and
// the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/bytes.h"
#include "common/ensure.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace rekey {
namespace {

TEST(Ensure, ThrowsWithLocationAndMessage) {
  try {
    REKEY_ENSURE_MSG(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const EnsureError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test"), std::string::npos);
  }
}

TEST(Ensure, PassesSilently) { REKEY_ENSURE(2 + 2 == 4); }

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(11);
  double s = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += r.next_double();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, NextInRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, NextInDegenerateRange) {
  Rng r(3);
  EXPECT_EQ(r.next_in(5, 5), 5u);
}

TEST(Rng, NextInCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_in(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextInRejectsInvertedRange) {
  Rng r(1);
  EXPECT_THROW(r.next_in(3, 2), EnsureError);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.2);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double s = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) s += r.next_exponential(40.0);
  EXPECT_NEAR(s / n, 40.0, 0.5);
}

TEST(Rng, ExponentialPositive) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(r.next_exponential(1.0), 0.0);
}

TEST(Rng, GeometricMean) {
  Rng r(17);
  double s = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    s += static_cast<double>(r.next_geometric(0.25));
  // mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(s / n, 3.0, 0.1);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(19);
  const auto v = r.sample_without_replacement(100, 40);
  std::set<std::uint64_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 40u);
  for (const auto x : v) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng r(19);
  const auto v = r.sample_without_replacement(50, 50);
  std::set<std::uint64_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 50u);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  // Each element should be picked with probability k/n.
  Rng r(23);
  std::vector<int> counts(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t)
    for (const auto x : r.sample_without_replacement(20, 5)) ++counts[x];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependent) {
  Rng a(31);
  Rng b = a.fork();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesBulk) {
  Rng r(37);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double() * 10;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(percentile({4, 1, 2, 3}, 0.5), 2.5);
}

TEST(Percentile, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 1.0), 9.0);
}

TEST(Percentile, RejectsEmpty) {
  EXPECT_THROW(percentile({}, 0.5), EnsureError);
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(ByteWriter, BigEndianOrder) {
  ByteWriter w;
  w.put_u16(0x1234);
  w.put_u32(0xAABBCCDD);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0xAA);
  EXPECT_EQ(b[5], 0xDD);
}

TEST(ByteWriter, BitPacking) {
  ByteWriter w;
  w.put_bits(0b10, 2);
  w.put_bits(0b110101, 6);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 0b10110101);
}

TEST(ByteWriter, ByteFieldMidBitfieldThrows) {
  ByteWriter w;
  w.put_bits(1, 3);
  EXPECT_THROW(w.put_u8(0), EnsureError);
}

TEST(ByteWriter, PadTo) {
  ByteWriter w;
  w.put_u8(0xFF);
  w.pad_to(4);
  EXPECT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[3], 0);
  EXPECT_THROW(w.pad_to(2), EnsureError);  // cannot shrink
}

TEST(ByteRoundtrip, AllWidths) {
  ByteWriter w;
  w.put_bits(2, 2);
  w.put_bits(57, 6);
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  const Bytes wire = std::move(w).take();

  ByteReader r(wire);
  EXPECT_EQ(r.get_bits(2), 2u);
  EXPECT_EQ(r.get_bits(6), 57u);
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, TruncationThrows) {
  const Bytes wire{0x01};
  ByteReader r(wire);
  EXPECT_THROW(r.get_u16(), EnsureError);
}

TEST(ByteReader, GetBytes) {
  const Bytes wire{1, 2, 3, 4};
  ByteReader r(wire);
  EXPECT_EQ(r.get_bytes(2), (Bytes{1, 2}));
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Hex, Encoding) {
  const Bytes b{0x00, 0xFF, 0x1A};
  EXPECT_EQ(to_hex(b), "00ff1a");
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.250"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), EnsureError);
}

TEST(Table, IntegerCells) {
  Table t({"n"});
  t.add_row({static_cast<long long>(42)});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
}

}  // namespace
}  // namespace rekey
