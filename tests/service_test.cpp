// Full-stack integration tests for GroupKeyService: registration, batch
// rekeying, ideal and simulated delivery, and multi-interval consistency.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "core/service.h"

namespace rekey::core {
namespace {

ServiceConfig default_config() {
  ServiceConfig cfg;
  cfg.degree = 4;
  cfg.protocol.max_multicast_rounds = 2;
  return cfg;
}

TEST(Service, BootstrapHandsOutGroupKey) {
  GroupKeyService svc(default_config());
  const auto members = svc.bootstrap_members(64);
  EXPECT_EQ(svc.group_size(), 64u);
  for (const auto m : members) {
    ASSERT_TRUE(svc.member(m).group_key().has_value());
    EXPECT_EQ(*svc.member(m).group_key(), svc.group_key());
  }
}

TEST(Service, BootstrapRequiresEmptyGroup) {
  GroupKeyService svc(default_config());
  svc.bootstrap_members(4);
  EXPECT_THROW(svc.bootstrap_members(4), EnsureError);
}

TEST(Service, LeaveChangesGroupKeyAndLocksOutDeparted) {
  GroupKeyService svc(default_config());
  const auto members = svc.bootstrap_members(32);
  const auto old_key = svc.group_key();
  svc.request_leave(members[5]);
  const auto report = svc.rekey_interval();
  EXPECT_EQ(report.leaves, 1u);
  EXPECT_GT(report.encryptions, 0u);
  EXPECT_NE(svc.group_key(), old_key);
  EXPECT_FALSE(svc.has_member(members[5]));
  for (const auto m : members) {
    if (m == members[5]) continue;
    EXPECT_EQ(*svc.member(m).group_key(), svc.group_key());
  }
}

TEST(Service, JoinGetsKeysOnlyAfterInterval) {
  GroupKeyService svc(default_config());
  svc.bootstrap_members(16);
  const auto newbie = svc.register_member();
  svc.request_join(newbie);
  EXPECT_FALSE(svc.has_member(newbie));
  svc.rekey_interval();
  ASSERT_TRUE(svc.has_member(newbie));
  EXPECT_EQ(*svc.member(newbie).group_key(), svc.group_key());
}

TEST(Service, JoinValidation) {
  GroupKeyService svc(default_config());
  const auto members = svc.bootstrap_members(8);
  EXPECT_THROW(svc.request_join(members[0]), EnsureError);  // already in
  EXPECT_THROW(svc.request_join(1000), EnsureError);        // unregistered
  const auto m = svc.register_member();
  svc.request_join(m);
  EXPECT_THROW(svc.request_join(m), EnsureError);  // already pending
}

TEST(Service, LeaveValidation) {
  GroupKeyService svc(default_config());
  const auto members = svc.bootstrap_members(8);
  svc.request_leave(members[0]);
  EXPECT_THROW(svc.request_leave(members[0]), EnsureError);
  EXPECT_THROW(svc.request_leave(999), EnsureError);
}

TEST(Service, EmptyIntervalIsNoop) {
  GroupKeyService svc(default_config());
  svc.bootstrap_members(8);
  const auto key = svc.group_key();
  const auto report = svc.rekey_interval();
  EXPECT_EQ(report.encryptions, 0u);
  EXPECT_EQ(svc.group_key(), key);
  EXPECT_EQ(svc.intervals_completed(), 0u);
}

TEST(Service, ManyIntervalsOfChurnStayConsistent) {
  GroupKeyService svc(default_config());
  auto members = svc.bootstrap_members(64);
  Rng rng(77);
  for (int interval = 0; interval < 10; ++interval) {
    // A few leaves and joins per interval.
    rng.shuffle(members);
    const std::size_t L = 1 + rng.next_in(0, 5);
    std::vector<tree::MemberId> leaving(members.begin(),
                                        members.begin() + L);
    for (const auto m : leaving) svc.request_leave(m);
    members.erase(members.begin(), members.begin() + L);
    const std::size_t J = rng.next_in(0, 6);
    for (std::size_t j = 0; j < J; ++j) {
      const auto m = svc.register_member();
      svc.request_join(m);
      members.push_back(m);
    }
    svc.rekey_interval();
    EXPECT_EQ(svc.group_size(), members.size());
    for (const auto m : members)
      EXPECT_EQ(*svc.member(m).group_key(), svc.group_key())
          << "interval " << interval << " member " << m;
  }
  EXPECT_EQ(svc.intervals_completed(), 10u);
}

TEST(Service, SimulatedDeliveryLossyNetwork) {
  ServiceConfig cfg = default_config();
  GroupKeyService svc(cfg);
  auto members = svc.bootstrap_members(128);

  simnet::TopologyConfig tc;
  tc.num_users = 128;
  tc.alpha = 0.2;
  tc.p_high = 0.2;
  tc.p_low = 0.02;
  tc.p_source = 0.01;
  simnet::Topology topo(tc, 31337);

  for (int interval = 0; interval < 4; ++interval) {
    svc.request_leave(members.back());
    members.pop_back();
    const auto m = svc.register_member();
    svc.request_join(m);
    members.push_back(m);

    const auto report = svc.rekey_interval_over(topo);
    ASSERT_TRUE(report.transport.has_value());
    EXPECT_GT(report.transport->multicast_sent, 0u);
    for (const auto mem : members)
      EXPECT_EQ(*svc.member(mem).group_key(), svc.group_key())
          << "interval " << interval;
  }
}

TEST(Service, SimulatedDeliveryExtremeLossStillConsistent) {
  ServiceConfig cfg = default_config();
  cfg.protocol.max_multicast_rounds = 1;
  GroupKeyService svc(cfg);
  auto members = svc.bootstrap_members(48);

  simnet::TopologyConfig tc;
  tc.num_users = 48;
  tc.alpha = 1.0;
  tc.p_high = 0.5;
  tc.p_source = 0.05;
  simnet::Topology topo(tc, 4242);

  svc.request_leave(members[0]);
  members.erase(members.begin());
  const auto report = svc.rekey_interval_over(topo);
  ASSERT_TRUE(report.transport.has_value());
  for (const auto m : members)
    EXPECT_EQ(*svc.member(m).group_key(), svc.group_key());
}

TEST(Service, ReportCountsMatchWorkload) {
  GroupKeyService svc(default_config());
  auto members = svc.bootstrap_members(32);
  for (int i = 0; i < 3; ++i) svc.request_leave(members[i]);
  for (int i = 0; i < 5; ++i) svc.request_join(svc.register_member());
  const auto report = svc.rekey_interval();
  EXPECT_EQ(report.joins, 5u);
  EXPECT_EQ(report.leaves, 3u);
  EXPECT_EQ(svc.group_size(), 34u);
  EXPECT_GT(report.enc_packets, 0u);
  EXPECT_GE(report.duplication_overhead, 0.0);
}

}  // namespace
}  // namespace rekey::core
