// Randomized chaos harness for the degraded-network transport: hundreds of
// seeded fault scenarios (duplication, reorder jitter, bit corruption,
// blackout windows, NACK storms in every combination) each run through the
// full rekey session, asserting the graceful-degradation invariants:
//
//   1. No scenario throws: the transport degrades, it does not crash.
//   2. Every user is accounted for: recovered in some multicast round or
//      unicast wave, or explicitly given up on (never silently dropped).
//   3. Billed == sent: the per-message metrics ("billed") reconcile exactly
//      against the process-wide transport.* counters ("sent"), and the
//      fault.* injection counters reconcile against the per-message
//      degraded-network accounting.
//   4. Counters are monotone across scenarios.
//   5. Replay is bit-identical: re-running a scenario from the same
//      (FaultPlan, seed) reproduces the full RunMetrics and the same
//      counter deltas.
//
// Scenario count: 24 in the tier-1 build; tests/chaos_soak_test.cpp
// rebuilds this file with REKEY_CHAOS_SCENARIOS=240 under `ctest -L soak`.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/obs.h"
#include "common/rng.h"
#include "packet/wire.h"
#include "sweep.h"

#ifndef REKEY_CHAOS_SCENARIOS
#define REKEY_CHAOS_SCENARIOS 24
#endif

namespace rekey::bench {
namespace {

constexpr std::uint64_t kScenarios = REKEY_CHAOS_SCENARIOS;

// A fault scenario is a pure function of its index: the generator draws
// the plan and the protocol shape from a dedicated RNG stream, so the
// whole suite replays bit-identically and a failure report's scenario
// index is all that is needed to reproduce it.
SweepConfig make_scenario(std::uint64_t index) {
  Rng rng(mix_seed(0xC4A05ull, index));
  SweepConfig cfg;
  cfg.group_size = 64 + 32 * rng.next_in(0, 2);  // 64 / 96 / 128
  cfg.leaves = cfg.group_size / 4;
  cfg.joins = rng.next_bool(0.3) ? cfg.group_size / 16 : 0;
  cfg.protocol.block_size = rng.next_bool(0.5) ? 4 : 8;
  cfg.protocol.initial_rho = 1.0 + 0.25 * static_cast<double>(rng.next_in(0, 2));
  cfg.protocol.adaptive_rho = true;
  // A bounded multicast phase plus a unicast give-up deadline guarantee
  // termination even under a blackout that swallows every transmission.
  cfg.protocol.max_multicast_rounds = static_cast<int>(rng.next_in(2, 4));
  cfg.protocol.unicast_max_waves = static_cast<int>(rng.next_in(6, 12));
  cfg.protocol.early_unicast_by_size = rng.next_bool(0.3);
  cfg.protocol.deadline_rounds = rng.next_bool(0.5) ? 2 : 0;
  cfg.messages = 2;
  cfg.seed = mix_seed(0xFA17ull, index);

  simnet::FaultPlan& plan = cfg.faults;
  if (rng.next_bool(0.6)) {
    plan.duplicate_prob = 0.02 + 0.38 * rng.next_double();
    plan.max_duplicates = static_cast<int>(rng.next_in(1, 3));
  }
  if (rng.next_bool(0.5)) {
    plan.reorder_prob = 0.02 + 0.28 * rng.next_double();
    plan.reorder_jitter_ms = 50.0 + 350.0 * rng.next_double();
    plan.reorder_queue_cap = rng.next_in(2, 8);
  }
  if (rng.next_bool(0.5)) {
    plan.corrupt_prob = 0.02 + 0.28 * rng.next_double();
    plan.corrupt_max_flips = static_cast<int>(rng.next_in(1, 8));
  }
  if (rng.next_bool(0.4)) {
    plan.nack_storm_prob = 0.1 + 0.7 * rng.next_double();
    plan.nack_storm_copies = static_cast<int>(rng.next_in(1, 4));
  }
  if (rng.next_bool(0.4)) {
    const std::uint64_t windows = rng.next_in(1, 2);
    double cursor = 1000.0 * rng.next_double();
    for (std::uint64_t w = 0; w < windows; ++w) {
      const double len = 500.0 + 3500.0 * rng.next_double();
      plan.blackouts.push_back({cursor, cursor + len});
      cursor += len + 1000.0 + 4000.0 * rng.next_double();
    }
  }
  plan.validate();
  return cfg;
}

// The "sent" side of the reconciliation: process-wide counter values.
struct Ledger {
  std::uint64_t mcast_pkts, mcast_bytes, usr_pkts, usr_bytes;
  std::uint64_t corrupt_rejected, give_up;
  std::uint64_t f_dup, f_reordered, f_corrupted, f_blackout, f_storm;

  static Ledger take() {
    auto& reg = obs::MetricsRegistry::global();
    auto v = [&](const char* name) { return reg.counter(name).value(); };
    return Ledger{v("transport.multicast_packets"),
                  v("transport.multicast_bytes"),
                  v("transport.usr_packets"),
                  v("transport.usr_bytes"),
                  v("transport.corrupt_rejected"),
                  v("transport.give_up_users"),
                  v("fault.dup_copies"),
                  v("fault.reordered"),
                  v("fault.corrupted"),
                  v("fault.blackout_drops"),
                  v("fault.nack_storm_copies")};
  }
  Ledger operator-(const Ledger& o) const {
    return Ledger{mcast_pkts - o.mcast_pkts,
                  mcast_bytes - o.mcast_bytes,
                  usr_pkts - o.usr_pkts,
                  usr_bytes - o.usr_bytes,
                  corrupt_rejected - o.corrupt_rejected,
                  give_up - o.give_up,
                  f_dup - o.f_dup,
                  f_reordered - o.f_reordered,
                  f_corrupted - o.f_corrupted,
                  f_blackout - o.f_blackout,
                  f_storm - o.f_storm};
  }
  friend bool operator==(const Ledger&, const Ledger&) = default;
};

// The "billed" side: the same quantities summed from the per-message
// metrics the figures are built from.
struct Billed {
  std::size_t mcast = 0, usr_pkts = 0, usr_bytes = 0;
  std::size_t corrupt_rejected = 0, give_up = 0;
  std::size_t dup = 0, reordered = 0, late = 0, storm = 0;
};

Billed bill(const transport::RunMetrics& run) {
  Billed b;
  for (const auto& m : run.messages) {
    b.mcast += m.multicast_sent;
    b.usr_pkts += m.usr_packets;
    b.usr_bytes += m.usr_bytes;
    b.corrupt_rejected += m.corrupt_rejected;
    b.give_up += m.gave_up_users;
    b.dup += m.dup_deliveries;
    b.reordered += m.reordered_deliveries;
    b.late += m.late_drops;
    b.storm += m.storm_nacks;
  }
  return b;
}

void check_invariants(const SweepConfig& cfg, const transport::RunMetrics& run,
                      const Ledger& delta) {
  const simnet::FaultPlan& plan = cfg.faults;
  ASSERT_EQ(run.messages.size(), static_cast<std::size_t>(cfg.messages));
  for (std::size_t i = 0; i < run.messages.size(); ++i) {
    const auto& m = run.messages[i];
    SCOPED_TRACE(testing::Message() << "message " << i);
    // Every user recovered in some round/wave or was explicitly given up.
    std::size_t recovered = 0;
    for (const auto& [round, count] : m.recovered_in_round) recovered += count;
    for (const auto& [wave, count] : m.unicast_recovered_in_wave)
      recovered += count;
    EXPECT_EQ(recovered + m.gave_up_users, m.users);
    // Giving up requires the unicast deadline feature to be armed.
    if (cfg.protocol.unicast_max_waves == 0) {
      EXPECT_EQ(m.gave_up_users, 0u);
    }
    // Faults that the plan cannot fire must never be billed.
    if (plan.duplicate_prob == 0.0) {
      EXPECT_EQ(m.dup_deliveries, 0u);
    }
    if (plan.reorder_prob == 0.0) {
      EXPECT_EQ(m.reordered_deliveries, 0u);
      EXPECT_EQ(m.late_drops, 0u);
    }
    if (plan.corrupt_prob == 0.0) {
      EXPECT_EQ(m.corrupt_rejected, 0u);
    }
    if (plan.nack_storm_prob == 0.0) {
      EXPECT_EQ(m.storm_nacks, 0u);
    }
    // A late drop is a deferred delivery that never released.
    EXPECT_LE(m.late_drops, m.reordered_deliveries);
  }

  // Billed == sent. Multicast wires are exactly packet_size bytes (ENC and
  // PARITY alike), so the byte ledger is exact, not approximate.
  const Billed b = bill(run);
  EXPECT_EQ(delta.mcast_pkts, b.mcast);
  EXPECT_EQ(delta.mcast_bytes,
            b.mcast * (cfg.protocol.packet_size + packet::kUdpIpOverheadBytes));
  EXPECT_EQ(delta.usr_pkts, b.usr_pkts);
  EXPECT_EQ(delta.usr_bytes, b.usr_bytes);
  EXPECT_EQ(delta.corrupt_rejected, b.corrupt_rejected);
  EXPECT_EQ(delta.give_up, b.give_up);
  // Injection counters: duplicates and storms are billed one-for-one;
  // reorder/corrupt draws can be superseded (a corrupt primary wins over
  // its jitter draw; a corrupt copy can slip through the checksum), so the
  // injector side bounds the billed side from above.
  EXPECT_EQ(delta.f_dup, b.dup);
  EXPECT_EQ(delta.f_storm, b.storm);
  EXPECT_GE(delta.f_reordered, b.reordered);
  EXPECT_GE(delta.f_corrupted, b.corrupt_rejected);
  if (plan.blackouts.empty()) {
    EXPECT_EQ(delta.f_blackout, 0u);
  }
}

TEST(Chaos, SeededScenarioInvariants) {
  std::uint64_t faults_fired = 0;
  std::size_t gave_up_total = 0;
  for (std::uint64_t i = 0; i < kScenarios; ++i) {
    SCOPED_TRACE(testing::Message() << "scenario " << i);
    const SweepConfig cfg = make_scenario(i);

    const Ledger before = Ledger::take();
    transport::RunMetrics run;
    ASSERT_NO_THROW(run = run_sweep(cfg));
    const Ledger after = Ledger::take();
    const Ledger delta = after - before;
    check_invariants(cfg, run, delta);

    // Monotone: no counter ever decreases (the subtractions above would
    // wrap; check the raw values too for a readable failure).
    EXPECT_GE(after.mcast_pkts, before.mcast_pkts);
    EXPECT_GE(after.f_dup, before.f_dup);
    EXPECT_GE(after.f_blackout, before.f_blackout);

    // Bit-identical replay from (FaultPlan, seed): the full RunMetrics and
    // every counter delta reproduce exactly.
    const Ledger before2 = Ledger::take();
    transport::RunMetrics replay;
    ASSERT_NO_THROW(replay = run_sweep(cfg));
    const Ledger delta2 = Ledger::take() - before2;
    EXPECT_EQ(run, replay);
    EXPECT_EQ(delta, delta2);

    faults_fired += delta.f_dup + delta.f_reordered + delta.f_corrupted +
                    delta.f_blackout + delta.f_storm;
    gave_up_total += bill(run).give_up;
  }
  // The suite must actually exercise the fault machinery, not no-op plans.
  EXPECT_GT(faults_fired, 0u);
  // And at least one blackout scenario must have driven the explicit
  // give-up path (termination under persistent outage).
  EXPECT_GT(gave_up_total, 0u);
}

// A fault-free plan must leave the transport on its exact baseline path:
// same RunMetrics as a run over a topology with no injector installed.
TEST(Chaos, InactivePlanIsByteIdenticalToBaseline) {
  SweepConfig cfg;
  cfg.group_size = 96;
  cfg.leaves = 24;
  cfg.protocol.block_size = 4;
  cfg.protocol.max_multicast_rounds = 3;
  cfg.protocol.unicast_max_waves = 8;
  cfg.messages = 2;
  cfg.seed = 0xBA5E;
  const transport::RunMetrics baseline = run_sweep(cfg);

  SweepConfig with_plan = cfg;  // a default FaultPlan is inactive
  EXPECT_FALSE(with_plan.faults.active());
  EXPECT_EQ(run_sweep(with_plan), baseline);

  for (const auto& m : baseline.messages) {
    EXPECT_EQ(m.dup_deliveries, 0u);
    EXPECT_EQ(m.reordered_deliveries, 0u);
    EXPECT_EQ(m.corrupt_rejected, 0u);
    EXPECT_EQ(m.storm_nacks, 0u);
    EXPECT_EQ(m.late_drops, 0u);
    EXPECT_EQ(m.gave_up_users, 0u);
  }
}

// An all-covering blackout is survivable: every user is given up on, none
// recovered, and the message still terminates.
TEST(Chaos, TotalBlackoutGivesUpOnEveryUser) {
  SweepConfig cfg;
  cfg.group_size = 64;
  cfg.leaves = 16;
  cfg.protocol.block_size = 4;
  cfg.protocol.max_multicast_rounds = 2;
  cfg.protocol.unicast_max_waves = 5;
  cfg.messages = 1;
  cfg.seed = 0xB1AC;
  cfg.faults.blackouts.push_back({0.0, 1e12});

  transport::RunMetrics run;
  ASSERT_NO_THROW(run = run_sweep(cfg));
  ASSERT_EQ(run.messages.size(), 1u);
  const auto& m = run.messages[0];
  EXPECT_EQ(m.gave_up_users, m.users);
  EXPECT_TRUE(m.recovered_in_round.empty());
  EXPECT_TRUE(m.unicast_recovered_in_wave.empty());
}

}  // namespace
}  // namespace rekey::bench
