// Workload-generator tests: the per-message batches the benches and the
// transport tests are built on.
#include <gtest/gtest.h>

#include <set>

#include "common/ensure.h"
#include "transport/workload.h"

namespace rekey::transport {
namespace {

TEST(Workload, PureLeaveShrinksGroup) {
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.leaves = 64;
  const auto msg = generate_message(wc, 1, 1);
  EXPECT_EQ(msg.num_users, 192u);
  EXPECT_EQ(msg.old_ids.size(), 192u);
  EXPECT_FALSE(msg.payload.encryptions.empty());
  EXPECT_FALSE(msg.assignment.packets.empty());
}

TEST(Workload, JoinsGrowGroup) {
  WorkloadConfig wc;
  wc.group_size = 256;
  wc.joins = 32;
  wc.leaves = 8;
  const auto msg = generate_message(wc, 2, 1);
  EXPECT_EQ(msg.num_users, 280u);
}

TEST(Workload, OldIdsDeriveToCurrentSlots) {
  WorkloadConfig wc;
  wc.group_size = 64;
  wc.joins = 40;  // forces splits
  wc.leaves = 4;
  const auto msg = generate_message(wc, 3, 1);
  std::set<tree::NodeId> derived;
  for (const auto old_id : msg.old_ids) {
    const auto now =
        tree::derive_new_user_id(old_id, msg.payload.max_kid,
                                 msg.payload.degree);
    ASSERT_TRUE(now.has_value());
    // Derived ids must be unique (slots are) and have needs in the payload.
    EXPECT_TRUE(derived.insert(*now).second);
    EXPECT_TRUE(msg.payload.user_needs.count(*now));
  }
  EXPECT_EQ(derived.size(), msg.num_users);
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadConfig wc;
  wc.group_size = 128;
  wc.leaves = 32;
  const auto a = generate_message(wc, 77, 1);
  const auto b = generate_message(wc, 77, 1);
  EXPECT_EQ(a.old_ids, b.old_ids);
  EXPECT_EQ(a.payload.encryptions.size(), b.payload.encryptions.size());
  EXPECT_EQ(a.assignment.packets.size(), b.assignment.packets.size());
  const auto c = generate_message(wc, 78, 1);
  EXPECT_NE(a.payload.encryptions.size() + a.old_ids.front(),
            c.payload.encryptions.size() + c.old_ids.front());
}

TEST(Workload, MessageIdPropagates) {
  WorkloadConfig wc;
  wc.group_size = 64;
  wc.leaves = 8;
  const auto msg = generate_message(wc, 5, 37);
  EXPECT_EQ(msg.payload.msg_id, 37u);
  for (const auto& pkt : msg.assignment.packets)
    EXPECT_EQ(pkt.msg_id, 37 % 64);
}

TEST(Workload, LeavesBoundedByGroup) {
  WorkloadConfig wc;
  wc.group_size = 16;
  wc.leaves = 17;
  EXPECT_THROW(generate_message(wc, 1, 1), EnsureError);
}

TEST(Workload, DegreeRespected) {
  WorkloadConfig wc;
  wc.group_size = 64;
  wc.leaves = 16;
  wc.degree = 2;
  const auto msg = generate_message(wc, 9, 1);
  EXPECT_EQ(msg.payload.degree, 2u);
  // Binary tree: more encryptions for the same batch than d=4.
  wc.degree = 4;
  const auto msg4 = generate_message(wc, 9, 1);
  EXPECT_GT(msg.payload.encryptions.size(),
            msg4.payload.encryptions.size());
}

TEST(Workload, PacketSizeControlsFanout) {
  WorkloadConfig wc;
  wc.group_size = 1024;
  wc.leaves = 256;
  wc.packet_size = 1027;
  const auto big = generate_message(wc, 11, 1);
  wc.packet_size = 300;
  const auto small = generate_message(wc, 11, 1);
  EXPECT_GT(small.assignment.packets.size(), big.assignment.packets.size());
}

}  // namespace
}  // namespace rekey::transport
