// KeyTree structure tests: population, invariants, key queries.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "keytree/keytree.h"

namespace rekey::tree {
namespace {

TEST(KeyTree, RejectsDegreeOne) {
  EXPECT_THROW(KeyTree(1, 42), EnsureError);
}

TEST(KeyTree, EmptyTree) {
  KeyTree t(4, 1);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_users(), 0u);
  EXPECT_FALSE(t.max_knode_id().has_value());
  t.check_invariants();
}

TEST(KeyTree, PopulateFullTree) {
  KeyTree t(4, 1);
  t.populate(16);
  EXPECT_EQ(t.num_users(), 16u);
  EXPECT_EQ(t.height(), 2u);
  // Full: k-nodes 0..4, users 5..20.
  EXPECT_EQ(t.max_knode_id().value(), 4u);
  const auto slots = t.user_slots();
  EXPECT_EQ(slots.front(), 5u);
  EXPECT_EQ(slots.back(), 20u);
  t.check_invariants();
}

TEST(KeyTree, PopulatePartialTree) {
  KeyTree t(4, 1);
  t.populate(6);
  EXPECT_EQ(t.num_users(), 6u);
  EXPECT_EQ(t.height(), 2u);  // capacity 16 needed for 6 > 4
  t.check_invariants();
}

TEST(KeyTree, PopulateSingleUser) {
  KeyTree t(4, 1);
  t.populate(1);
  EXPECT_EQ(t.num_users(), 1u);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.max_knode_id().value(), 0u);  // root k-node above the user
  EXPECT_EQ(t.slot_of(0), 1u);
  t.check_invariants();
}

TEST(KeyTree, PopulateTwiceThrows) {
  KeyTree t(4, 1);
  t.populate(4);
  EXPECT_THROW(t.populate(4), EnsureError);
}

TEST(KeyTree, MemberSlotMapping) {
  KeyTree t(3, 7);
  t.populate(9, /*first_member=*/100);
  for (MemberId m = 100; m < 109; ++m) {
    EXPECT_TRUE(t.has_member(m));
    const NodeId slot = t.slot_of(m);
    EXPECT_EQ(t.node(slot).member, m);
  }
  EXPECT_FALSE(t.has_member(99));
  EXPECT_THROW(t.slot_of(99), EnsureError);
}

TEST(KeyTree, GroupKeyIsRootKey) {
  KeyTree t(4, 7);
  t.populate(16);
  EXPECT_EQ(t.group_key(), t.node(kRootId).key);
}

TEST(KeyTree, KeysForSlotIsFullPath) {
  KeyTree t(4, 7);
  t.populate(16);
  const NodeId slot = t.slot_of(10);
  const auto keys = t.keys_for_slot(slot);
  // Height-2 tree: individual + level-1 aux + root = 3 keys.
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys.front().first, slot);
  EXPECT_EQ(keys.back().first, kRootId);
  for (const auto& [id, key] : keys) EXPECT_EQ(key, t.node(id).key);
}

TEST(KeyTree, DistinctKeysAcrossNodes) {
  KeyTree t(4, 7);
  t.populate(64);
  const auto slots = t.user_slots();
  // Individual keys pairwise distinct (spot check a window).
  for (std::size_t i = 1; i < slots.size(); ++i)
    EXPECT_NE(t.node(slots[i]).key, t.node(slots[i - 1]).key);
}

TEST(KeyTree, NodeAccessOnNNodeThrows) {
  KeyTree t(4, 7);
  t.populate(4);  // users at 1..4
  EXPECT_THROW(t.node(99), EnsureError);
}

TEST(KeyTree, UserSlotsSorted) {
  KeyTree t(4, 7);
  t.populate(100);
  const auto slots = t.user_slots();
  EXPECT_TRUE(std::is_sorted(slots.begin(), slots.end()));
  EXPECT_EQ(slots.size(), 100u);
}

class PopulateSweep : public ::testing::TestWithParam<
                          std::pair<unsigned, std::size_t>> {};

TEST_P(PopulateSweep, InvariantsHold) {
  const auto [d, n] = GetParam();
  KeyTree t(d, 99);
  t.populate(n);
  EXPECT_EQ(t.num_users(), n);
  t.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PopulateSweep,
    ::testing::Values(std::pair{2u, std::size_t{1}},
                      std::pair{2u, std::size_t{2}},
                      std::pair{2u, std::size_t{3}},
                      std::pair{2u, std::size_t{1024}},
                      std::pair{3u, std::size_t{10}},
                      std::pair{3u, std::size_t{27}},
                      std::pair{4u, std::size_t{4}},
                      std::pair{4u, std::size_t{5}},
                      std::pair{4u, std::size_t{4096}},
                      std::pair{4u, std::size_t{4097}},
                      std::pair{8u, std::size_t{100}}));

}  // namespace
}  // namespace rekey::tree
