// Matrix algebra over GF(2^8): multiplication, inversion, and the Cauchy
// nonsingularity property the RSE coder's MDS guarantee rests on.
#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/rng.h"
#include "fec/gf256.h"
#include "fec/matrix.h"

namespace rekey::fec {
namespace {

Matrix random_matrix(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      m.at(r, c) = static_cast<std::uint8_t>(rng.next_in(0, 255));
  return m;
}

TEST(Matrix, IdentityMultiplication) {
  Rng rng(1);
  const Matrix m = random_matrix(5, rng);
  const Matrix i = Matrix::identity(5);
  EXPECT_EQ(m.multiply(i), m);
  EXPECT_EQ(i.multiply(m), m);
}

TEST(Matrix, MultiplyDimensionCheck) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), EnsureError);
}

TEST(Matrix, SingularHasNoInverse) {
  Matrix m(3, 3);  // all zeros
  EXPECT_FALSE(m.inverted().has_value());
  // Two equal rows.
  Matrix n(2, 2);
  n.at(0, 0) = 7;
  n.at(0, 1) = 9;
  n.at(1, 0) = 7;
  n.at(1, 1) = 9;
  EXPECT_FALSE(n.inverted().has_value());
}

TEST(Matrix, InverseOfIdentity) {
  const Matrix i = Matrix::identity(4);
  const auto inv = i.inverted();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(*inv, i);
}

TEST(Matrix, InverseRoundtripRandom) {
  Rng rng(2);
  int invertible = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const Matrix m = random_matrix(6, rng);
    const auto inv = m.inverted();
    if (!inv.has_value()) continue;
    ++invertible;
    EXPECT_EQ(m.multiply(*inv), Matrix::identity(6));
    EXPECT_EQ(inv->multiply(m), Matrix::identity(6));
  }
  // Random matrices over GF(256) are invertible with prob ~0.996.
  EXPECT_GT(invertible, 40);
}

TEST(Matrix, InverseRequiresSquare) {
  Matrix m(2, 3);
  EXPECT_THROW(m.inverted(), EnsureError);
}

class CauchySweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

// Every square submatrix of a Cauchy matrix is nonsingular; here we check
// the full k x k Cauchy blocks used by the coder for several (k, shift)
// choices.
TEST_P(CauchySweep, CauchyBlocksInvertible) {
  const auto [k, shift] = GetParam();
  Matrix m(static_cast<std::size_t>(k), static_cast<std::size_t>(k));
  for (int r = 0; r < k; ++r)
    for (int c = 0; c < k; ++c)
      m.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          GF256::inv(GF256::add(static_cast<std::uint8_t>(k + shift + r),
                                static_cast<std::uint8_t>(c)));
  EXPECT_TRUE(m.inverted().has_value()) << "k=" << k << " shift=" << shift;
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, CauchySweep,
    ::testing::Values(std::pair{1, 0}, std::pair{2, 0}, std::pair{5, 0},
                      std::pair{10, 0}, std::pair{10, 50}, std::pair{30, 0},
                      std::pair{50, 100}, std::pair{64, 0}));

}  // namespace
}  // namespace rekey::fec
