// Hardened REKEY_* environment parsing (common/env.h): strict integer
// validation, range clamps rejected rather than saturated, and the
// warn-once-per-variable discipline.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.h"

namespace rekey::env {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("REKEY_TEST_VAR");
    reset_warnings_for_test();
  }
  void TearDown() override { ::unsetenv("REKEY_TEST_VAR"); }
};

TEST_F(EnvTest, RawUnsetIsNullopt) {
  EXPECT_FALSE(raw("REKEY_TEST_VAR").has_value());
}

TEST_F(EnvTest, RawEmptyStringIsSetButEmpty) {
  ::setenv("REKEY_TEST_VAR", "", 1);
  const auto v = raw("REKEY_TEST_VAR");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

TEST_F(EnvTest, IntValueParsesValidInput) {
  ::setenv("REKEY_TEST_VAR", "42", 1);
  EXPECT_EQ(int_value("REKEY_TEST_VAR", 0, 100), 42);
  ::setenv("REKEY_TEST_VAR", "-7", 1);
  EXPECT_EQ(int_value("REKEY_TEST_VAR", -10, 10), -7);
  ::setenv("REKEY_TEST_VAR", "0", 1);
  EXPECT_EQ(int_value("REKEY_TEST_VAR", 0, 100), 0);
}

TEST_F(EnvTest, IntValueUnsetIsNulloptWithoutWarning) {
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 100).has_value());
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(EnvTest, IntValueRejectsNonNumeric) {
  ::setenv("REKEY_TEST_VAR", "abc", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 100).has_value());
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("REKEY_TEST_VAR"),
            std::string::npos);
}

TEST_F(EnvTest, IntValueRejectsTrailingJunk) {
  ::setenv("REKEY_TEST_VAR", "12abc", 1);
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 100).has_value());
  reset_warnings_for_test();
  ::setenv("REKEY_TEST_VAR", "3 ", 1);
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 100).has_value());
}

TEST_F(EnvTest, IntValueRejectsEmpty) {
  ::setenv("REKEY_TEST_VAR", "", 1);
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 100).has_value());
}

TEST_F(EnvTest, IntValueRejectsOutOfRange) {
  ::setenv("REKEY_TEST_VAR", "-3", 1);
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 4096).has_value());
  reset_warnings_for_test();
  ::setenv("REKEY_TEST_VAR", "5000", 1);
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 4096).has_value());
}

TEST_F(EnvTest, IntValueRejectsOverflow) {
  // Larger than any long long: strtoll saturates and sets ERANGE; the
  // helper must reject, not hand back LLONG_MAX.
  ::setenv("REKEY_TEST_VAR", "99999999999999999999", 1);
  EXPECT_FALSE(
      int_value("REKEY_TEST_VAR", 0, (1ll << 62)).has_value());
  reset_warnings_for_test();
  ::setenv("REKEY_TEST_VAR", "-99999999999999999999", 1);
  EXPECT_FALSE(
      int_value("REKEY_TEST_VAR", -(1ll << 62), 0).has_value());
}

TEST_F(EnvTest, WarnsOncePerVariable) {
  ::setenv("REKEY_TEST_VAR", "garbage", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 100).has_value());
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 100).has_value());
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("REKEY_TEST_VAR"), err.rfind("REKEY_TEST_VAR"))
      << "warned more than once: " << err;

  // After a reset (fresh process semantics) it warns again.
  reset_warnings_for_test();
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(int_value("REKEY_TEST_VAR", 0, 100).has_value());
  EXPECT_FALSE(::testing::internal::GetCapturedStderr().empty());
}

TEST_F(EnvTest, WarnOnceCoversStringKnobs) {
  ::testing::internal::CaptureStderr();
  warn_once("REKEY_TEST_VAR", "REKEY_TEST_VAR=weird is not a known mode");
  warn_once("REKEY_TEST_VAR", "REKEY_TEST_VAR=weird is not a known mode");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("weird"), err.rfind("weird")) << err;
}

}  // namespace
}  // namespace rekey::env
