// Soak test: the full stack (service + marking + UKA + FEC + transport +
// member views) run for many intervals of realistic churn over a lossy
// network, with the group growing, shrinking and splitting. Verifies the
// end-to-end guarantee — every member's view tracks the group key after
// every interval — and that protocol state (rho, msg ids) stays sane.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/service.h"

namespace rekey::core {
namespace {

struct SoakParams {
  unsigned degree;
  std::size_t initial;
  double alpha;
  double p_high;
  int intervals;
};

class Soak : public ::testing::TestWithParam<SoakParams> {};

TEST_P(Soak, GroupStaysConsistentUnderChurnAndLoss) {
  const SoakParams sp = GetParam();
  ServiceConfig cfg;
  cfg.degree = sp.degree;
  cfg.protocol.max_multicast_rounds = 2;
  cfg.protocol.deadline_rounds = 2;
  cfg.protocol.adapt_num_nack = true;
  GroupKeyService svc(cfg);
  auto members = svc.bootstrap_members(sp.initial);

  simnet::TopologyConfig tc;
  tc.num_users = sp.initial * 3;  // headroom for growth
  tc.alpha = sp.alpha;
  tc.p_high = sp.p_high;
  tc.p_low = 0.02;
  tc.p_source = 0.01;
  simnet::Topology topo(tc, sp.degree * 1000 + sp.initial);

  Rng rng(sp.degree * 99 + sp.intervals);
  crypto::SymmetricKey prev_key = svc.group_key();
  for (int interval = 0; interval < sp.intervals; ++interval) {
    rng.shuffle(members);
    // Grow early intervals, shrink later ones: exercises splits & pruning.
    const bool grow = interval < sp.intervals / 2;
    const std::size_t L = rng.next_in(1, std::max<std::size_t>(
                                             2, members.size() / 8));
    const std::size_t J = grow ? L + rng.next_in(0, members.size() / 4)
                               : rng.next_in(0, L);
    for (std::size_t i = 0; i < L; ++i) {
      svc.request_leave(members.back());
      members.pop_back();
    }
    for (std::size_t j = 0; j < J; ++j) {
      const auto m = svc.register_member();
      svc.request_join(m);
      members.push_back(m);
    }
    ASSERT_LE(members.size(), tc.num_users);

    const auto report = svc.rekey_interval_over(topo);
    ASSERT_TRUE(report.transport.has_value());
    EXPECT_EQ(svc.group_size(), members.size());
    EXPECT_NE(svc.group_key(), prev_key) << "group key must rotate";
    prev_key = svc.group_key();

    for (const auto m : members) {
      ASSERT_TRUE(svc.member(m).group_key().has_value())
          << "interval " << interval << " member " << m;
      ASSERT_EQ(*svc.member(m).group_key(), svc.group_key())
          << "interval " << interval << " member " << m;
    }
    svc.tree().check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, Soak,
    ::testing::Values(SoakParams{4, 64, 0.2, 0.2, 12},
                      SoakParams{4, 256, 0.2, 0.2, 8},
                      SoakParams{2, 48, 0.3, 0.3, 10},
                      SoakParams{8, 100, 0.1, 0.4, 8},
                      SoakParams{3, 81, 1.0, 0.2, 6}));

}  // namespace
}  // namespace rekey::core
