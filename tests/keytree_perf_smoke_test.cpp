// Tier-1 performance smoke: the batched rekey pipeline (marking +
// payload generation + UKA assignment) on a 2^15-user tree must finish a
// churn batch well under a generous wall-clock bound. This is a
// regression tripwire, not a benchmark — the bound is set an order of
// magnitude above what the arena implementation needs on slow CI
// hardware, so it only fires if the hot path regresses to something like
// the old node-per-allocation behavior (or worse). Real numbers live in
// bench_ks1_server_throughput and EXPERIMENTS.md.
#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "keytree/keytree.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "packet/assign.h"

namespace rekey::tree {
namespace {

using Clock = std::chrono::steady_clock;

TEST(KeyTreePerfSmoke, ChurnBatchAt32kUsersStaysUnderBound) {
  constexpr std::size_t kN = std::size_t{1} << 15;
  constexpr std::size_t kChurn = kN / 16;
  // Sanitizer / debug builds run this code 10-50x slower; the bound only
  // needs to catch order-of-magnitude regressions, so it is generous
  // everywhere and tighter only for optimized builds.
#ifdef NDEBUG
  constexpr auto kBound = std::chrono::milliseconds(2500);
#else
  constexpr auto kBound = std::chrono::seconds(30);
#endif

  double best_ms = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    Rng rng(0x5E15 + static_cast<std::uint64_t>(trial));
    KeyTree kt(4, rng.next_u64());
    kt.populate(kN);
    std::vector<MemberId> joins, leaves;
    for (std::size_t i = 0; i < kChurn; ++i)
      joins.push_back(static_cast<MemberId>(kN + i));
    for (const auto pick : rng.sample_without_replacement(kN, kChurn))
      leaves.push_back(static_cast<MemberId>(pick));

    const auto start = Clock::now();
    Marker marker(kt);
    const BatchUpdate upd = marker.run(joins, leaves);
    const RekeyPayload payload = generate_rekey_payload(kt, upd, 1);
    const auto assignment = packet::assign_keys(payload, 1027);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (ms < best_ms) best_ms = ms;

    ASSERT_FALSE(payload.encryptions.empty());
    ASSERT_FALSE(assignment.packets.empty());
  }

  const double bound_ms =
      std::chrono::duration<double, std::milli>(kBound).count();
  EXPECT_LT(best_ms, bound_ms)
      << "rekey pipeline took " << best_ms << " ms for a J=L=" << kChurn
      << " batch at N=" << kN << " — hot path has regressed";
}

}  // namespace
}  // namespace rekey::tree
