// Service-level crash recovery: a key server restored from its snapshot
// must carry on rekeying the same group seamlessly.
#include <gtest/gtest.h>

#include "core/service.h"

namespace rekey::core {
namespace {

ServiceConfig config() {
  ServiceConfig cfg;
  cfg.degree = 4;
  return cfg;
}

TEST(ServiceRecovery, RestoredServiceMatchesOriginal) {
  GroupKeyService svc(config());
  auto members = svc.bootstrap_members(32);
  svc.request_leave(members[3]);
  svc.request_join(svc.register_member());
  svc.rekey_interval();

  const Bytes blob = svc.snapshot();
  auto restored = GroupKeyService::restore(blob, config());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->group_size(), svc.group_size());
  EXPECT_EQ(restored->group_key(), svc.group_key());
  EXPECT_EQ(restored->intervals_completed(), svc.intervals_completed());
  restored->tree().check_invariants();
  for (const auto m : members) {
    if (!svc.has_member(m)) continue;
    ASSERT_TRUE(restored->has_member(m));
    EXPECT_EQ(*restored->member(m).group_key(), svc.group_key());
  }
}

TEST(ServiceRecovery, RestoredServiceKeepsRekeying) {
  GroupKeyService svc(config());
  auto members = svc.bootstrap_members(16);
  svc.request_leave(members[0]);
  svc.rekey_interval();

  auto restored = GroupKeyService::restore(svc.snapshot(), config());
  ASSERT_TRUE(restored.has_value());

  // New churn on the restored server.
  const auto newbie = restored->register_member();
  restored->request_join(newbie);
  restored->request_leave(members[5]);
  const auto report = restored->rekey_interval();
  EXPECT_GT(report.encryptions, 0u);
  EXPECT_EQ(*restored->member(newbie).group_key(), restored->group_key());
  EXPECT_FALSE(restored->has_member(members[5]));
  restored->tree().check_invariants();
}

TEST(ServiceRecovery, NewKeysAfterRestoreDifferFromCrashTimeline) {
  // Two futures from the same snapshot must not reuse key material blindly
  // across different message counters; the same future replayed twice must
  // be identical (determinism).
  GroupKeyService svc(config());
  auto members = svc.bootstrap_members(8);
  const Bytes blob = svc.snapshot();

  auto a = GroupKeyService::restore(blob, config());
  auto b = GroupKeyService::restore(blob, config());
  ASSERT_TRUE(a.has_value() && b.has_value());
  a->request_leave(members[1]);
  b->request_leave(members[1]);
  a->rekey_interval();
  b->rekey_interval();
  EXPECT_EQ(a->group_key(), b->group_key());
}

TEST(ServiceRecovery, CorruptBlobRejected) {
  GroupKeyService svc(config());
  svc.bootstrap_members(8);
  Bytes blob = svc.snapshot();
  blob[blob.size() / 2] ^= 1;
  EXPECT_FALSE(GroupKeyService::restore(blob, config()).has_value());
  Bytes truncated(blob.begin(), blob.begin() + 5);
  EXPECT_FALSE(GroupKeyService::restore(truncated, config()).has_value());
}

TEST(ServiceRecovery, DegreeMismatchRejected) {
  GroupKeyService svc(config());
  svc.bootstrap_members(8);
  ServiceConfig other = config();
  other.degree = 2;
  EXPECT_FALSE(GroupKeyService::restore(svc.snapshot(), other).has_value());
}

}  // namespace
}  // namespace rekey::core
