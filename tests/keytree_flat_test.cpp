// Flat-arena KeyTree specifics: the dense/overflow split, snapshot and
// from_nodes round-trips that cross it, growth at batch boundaries, and
// the allocation-free hot-path accessors. Complements keytree_test.cpp
// (behavioral API) and keytree_differential_test.cpp (old-vs-new).
#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/ensure.h"
#include "common/rng.h"
#include "keytree/ids.h"
#include "keytree/keytree.h"
#include "keytree/marking.h"
#include "keytree/rekey_subtree.h"
#include "keytree/snapshot.h"

// Global allocation counter for the no-allocation assertions. Counting
// operator new is enough: the accessors under test only ever allocate
// through std::vector.
namespace {
std::atomic<std::size_t> g_allocs{0};
}

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace rekey::tree {
namespace {

void expect_same_nodes(const std::map<NodeId, Node>& a,
                       const std::map<NodeId, Node>& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ib = b.begin();
  for (const auto& [id, n] : a) {
    ASSERT_EQ(id, ib->first);
    EXPECT_EQ(n.kind, ib->second.kind) << "node " << id;
    EXPECT_EQ(n.key, ib->second.key) << "node " << id;
    if (n.kind == NodeKind::UNode) {
      EXPECT_EQ(n.member, ib->second.member) << "node " << id;
    }
    ++ib;
  }
}

// A tall degree-2 chain whose deepest nodes sit far past any reasonable
// dense capacity: k-nodes at 0, 1, 3, ..., 2^depth - 1 (each left child),
// with the two u-nodes under the deepest k-node. Satisfies I1-I4 (every
// k-node has a u-descendant through the chain; max k-node id < min u-node
// id; u-nodes lie in (nk, 2*nk + 2]). With only depth+3 nodes, rebalance
// keeps the dense arrays small, so the deep ids must live in overflow.
std::map<NodeId, Node> chain_tree_nodes(unsigned depth) {
  crypto::KeyGenerator gen(7);
  std::map<NodeId, Node> nodes;
  NodeId id = 0;
  for (unsigned lvl = 0; lvl <= depth; ++lvl) {
    Node k;
    k.kind = NodeKind::KNode;
    k.key = gen.next();
    nodes.emplace(id, k);
    if (lvl < depth) id = child_of(id, 0, 2);
  }
  for (unsigned j = 0; j < 2; ++j) {
    Node u;
    u.kind = NodeKind::UNode;
    u.key = gen.next();
    u.member = 100 + j;
    nodes.emplace(child_of(id, j, 2), u);
  }
  return nodes;
}

TEST(KeyTreeFlat, FromNodesPlacesDeepIdsInOverflow) {
  // depth 20 => deepest u-node id ~ 2^21, while ~23 nodes keep the dense
  // capacity at its 256 floor.
  const std::map<NodeId, Node> nodes = chain_tree_nodes(20);
  const KeyTree t = KeyTree::from_nodes(2, 11, nodes);
  t.check_invariants();
  EXPECT_EQ(t.num_nodes(), nodes.size());
  EXPECT_EQ(t.num_users(), 2u);
  EXPECT_LT(t.dense_capacity(), (NodeId{1} << 21));
  expect_same_nodes(t.nodes(), nodes);  // overflow ids iterate in order too
  // Point lookups cross the dense/overflow boundary transparently.
  const NodeId deep_u = nodes.rbegin()->first;
  EXPECT_TRUE(t.contains(deep_u));
  EXPECT_EQ(t.node(deep_u).member, 101u);
  EXPECT_EQ(t.slot_of(101), deep_u);
  EXPECT_EQ(t.max_knode_id().value(), (NodeId{1} << 20) - 1);
}

TEST(KeyTreeFlat, SnapshotRoundTripWithOverflowNodes) {
  const KeyTree t = KeyTree::from_nodes(2, 11, chain_tree_nodes(18));
  const Bytes blob = snapshot_tree(t);
  const auto restored = restore_tree(blob, 99);
  ASSERT_TRUE(restored.has_value());
  restored->check_invariants();
  expect_same_nodes(restored->nodes(), t.nodes());
  EXPECT_EQ(restored->degree(), t.degree());
  EXPECT_EQ(restored->group_key(), t.group_key());
}

TEST(KeyTreeFlat, SnapshotRoundTripAcrossDegrees) {
  for (const unsigned d : {2u, 4u, 8u}) {
    KeyTree t(d, 5 + d);
    t.populate(137);
    const auto restored = restore_tree(snapshot_tree(t), 1);
    ASSERT_TRUE(restored.has_value()) << "degree " << d;
    restored->check_invariants();
    expect_same_nodes(restored->nodes(), t.nodes());
  }
}

TEST(KeyTreeFlat, FromNodesRoundTripAcrossDegrees) {
  for (const unsigned d : {2u, 4u, 8u}) {
    KeyTree t(d, 21);
    t.populate(200, /*first_member=*/1000);
    const KeyTree u = KeyTree::from_nodes(d, 22, t.nodes());
    u.check_invariants();
    expect_same_nodes(u.nodes(), t.nodes());
    EXPECT_EQ(u.slot_of(1100), t.slot_of(1100)) << "degree " << d;
  }
}

TEST(KeyTreeFlat, DenseArenaGrowsWithBatchesAndMigratesOverflow) {
  KeyTree t(4, 3);
  t.populate(16);
  const std::size_t cap0 = t.dense_capacity();
  Marker m(t);
  std::vector<MemberId> joins;
  for (MemberId i = 16; i < 16 + 2000; ++i) joins.push_back(i);
  m.run(joins, {});
  t.check_invariants();
  EXPECT_EQ(t.num_users(), 2016u);
  // Rebalance at the batch boundary re-covers the grown tree densely.
  EXPECT_GT(t.dense_capacity(), cap0);
  EXPECT_GE(t.dense_capacity(), t.num_nodes());
  EXPECT_GT(t.arena_bytes(), 0u);
}

TEST(KeyTreeFlat, ChurnKeepsInvariantsAcrossDegrees) {
  for (const unsigned d : {2u, 4u, 8u}) {
    Rng rng(0xF1A7 + d);
    KeyTree t(d, d);
    t.populate(64);
    Marker m(t);
    MemberId next = 64;
    std::vector<MemberId> members;
    for (MemberId i = 0; i < 64; ++i) members.push_back(i);
    for (int batch = 0; batch < 30; ++batch) {
      const std::size_t L =
          static_cast<std::size_t>(rng.next_in(0, members.size() / 3));
      const std::size_t J = static_cast<std::size_t>(rng.next_in(0, 40));
      std::vector<MemberId> joins, leaves;
      for (const auto pick :
           rng.sample_without_replacement(members.size(), L))
        leaves.push_back(members[pick]);
      for (std::size_t i = 0; i < J; ++i) joins.push_back(next++);
      const BatchUpdate upd = m.run(joins, leaves);
      t.check_invariants();
      // The payload derives from a consistent changed set.
      const RekeyPayload p = generate_rekey_payload(t, upd, batch + 1);
      for (const auto& e : p.encryptions) EXPECT_TRUE(t.contains(e.enc_id));
      std::set<MemberId> gone(leaves.begin(), leaves.end());
      std::vector<MemberId> rest;
      for (const MemberId x : members)
        if (!gone.count(x)) rest.push_back(x);
      rest.insert(rest.end(), joins.begin(), joins.end());
      members = std::move(rest);
      ASSERT_EQ(t.num_users(), members.size()) << "degree " << d;
    }
  }
}

TEST(KeyTreeFlat, HotPathAccessorsDoNotAllocateAfterWarmup) {
  KeyTree t(4, 9);
  t.populate(4096);

  std::vector<std::pair<NodeId, crypto::SymmetricKey>> keys;
  std::vector<NodeId> slots;
  // Warm up the scratch capacity once.
  t.user_slots_into(slots);
  t.keys_for_slot_into(slots.front(), keys);

  const std::size_t before = g_allocs.load();
  for (int i = 0; i < 100; ++i) {
    t.user_slots_into(slots);
    t.keys_for_slot_into(slots[static_cast<std::size_t>(i) % slots.size()],
                         keys);
  }
  std::size_t count = 0;
  t.for_each_user_slot([&](NodeId) { ++count; });
  EXPECT_EQ(count, 4096u);
  EXPECT_EQ(g_allocs.load(), before)
      << "hot-path accessors allocated on a warmed-up dense tree";
}

TEST(KeyTreeFlat, KeyOfMatchesNodeCopy) {
  KeyTree t(4, 13);
  t.populate(50);
  t.for_each_node([&](NodeId id, const Node& n) {
    EXPECT_EQ(t.key_of(id), n.key);
  });
  EXPECT_THROW(t.key_of(999999), EnsureError);
}

}  // namespace
}  // namespace rekey::tree
